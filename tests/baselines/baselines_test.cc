// Competitor-system simulations: each baseline must compute the same
// results as the native engine (their difference is cost, not semantics).
#include <gtest/gtest.h>

#include "baselines/aidalike/aida.h"
#include "baselines/madliblike/madlib.h"
#include "baselines/rlike/rlike.h"
#include "baselines/scidblike/scidb.h"
#include "core/rma.h"
#include "matrix/blas.h"
#include "rel/operators.h"
#include "test_util.h"
#include "workload/synthetic.h"

namespace rma {
namespace {

namespace rl = baselines::rlike;
namespace ml = baselines::madliblike;
namespace ai = baselines::aidalike;
namespace sc = baselines::scidblike;

using testing::MakeRelation;

Relation SmallNumeric() {
  return MakeRelation({{"id", DataType::kInt64},
                       {"x", DataType::kDouble},
                       {"y", DataType::kDouble}},
                      {{int64_t{0}, 1.0, 2.0},
                       {int64_t{1}, 3.0, 4.0},
                       {int64_t{2}, 5.0, 6.0}},
                      "n");
}

// --- R-like --------------------------------------------------------------------

TEST(RLike, RoundTripPreservesContents) {
  const Relation r = testing::UsersRelation();
  const rl::DataFrame df = rl::FromRelation(r);
  EXPECT_EQ(df.num_rows(), 3);
  const Relation back = rl::ToRelation(df);
  EXPECT_EQ(back.num_rows(), 3);
  EXPECT_EQ(ValueToString(back.Get(0, 0)), "Ann");
  // Numeric columns widen to double in R.
  EXPECT_EQ(back.schema().attribute(2).type, DataType::kDouble);
}

TEST(RLike, JoinMatchesRelationalJoin) {
  const Relation u = testing::UsersRelation();
  const Relation rating = testing::RatingsRelation();
  const rl::DataFrame joined =
      rl::InnerJoin(rl::FromRelation(u), rl::FromRelation(rating), {"User"},
                    {"User"})
          .ValueOrDie();
  const Relation expected =
      rel::HashJoin(u, rating, {"User"}, {"User"}).ValueOrDie();
  EXPECT_EQ(joined.num_rows(), expected.num_rows());
}

TEST(RLike, GroupOpsAndFilter) {
  const rl::DataFrame df = rl::FromRelation(SmallNumeric());
  const rl::DataFrame filtered =
      rl::FilterNumeric(df, "x", ">=", 3.0).ValueOrDie();
  EXPECT_EQ(filtered.num_rows(), 2);
  const rl::DataFrame counts = rl::GroupCount(df, {"id"}).ValueOrDie();
  EXPECT_EQ(counts.num_rows(), 3);
  const rl::DataFrame means = rl::GroupMean(df, {"id"}, "x").ValueOrDie();
  EXPECT_EQ(means.num_rows(), 3);
  EXPECT_EQ(means.Doubles(*means.ColumnIndex("mean"))[0], 1.0);
}

TEST(RLike, AsMatrixRespectsMemoryBudget) {
  const rl::DataFrame df = rl::FromRelation(SmallNumeric());
  rl::Options tiny;
  tiny.memory_budget_bytes = 8;
  EXPECT_STATUS(kResourceExhausted, rl::AsMatrix(df, {"x", "y"}, tiny));
  rl::Options ok;
  const DenseMatrix m = rl::AsMatrix(df, {"x", "y"}, ok).ValueOrDie();
  EXPECT_EQ(m(2, 1), 6.0);
}

// --- AIDA-like ---------------------------------------------------------------------

TEST(AidaLike, NumericColumnsPassZeroCopy) {
  const Relation r = SmallNumeric();
  const ai::TabularData td = ai::TabularData::FromRelation(r);
  const DenseMatrix m = td.ToMatrix({"x", "y"}).ValueOrDie();
  EXPECT_EQ(m(1, 0), 3.0);
  EXPECT_STATUS(kKeyError, td.ToMatrix({"nope"}));
}

TEST(AidaLike, StringsAreBoxedAndUnboxed) {
  const Relation r = testing::UsersRelation();
  const ai::TabularData td = ai::TabularData::FromRelation(r);
  const Relation back = td.ToRelation();
  EXPECT_EQ(ValueToString(back.Get(1, 0)), "Tom");
  EXPECT_STATUS(kTypeError, td.ToMatrix({"User"}));
}

// --- MADlib-like -------------------------------------------------------------------

TEST(MadlibLike, RowTableOpsMatchRelational) {
  const ml::RowTable t = ml::RowTable::FromRelation(SmallNumeric());
  EXPECT_EQ(t.num_rows(), 3);
  const ml::RowTable f = t.Filter([](const std::vector<Value>& row) {
    return ValueToDouble(row[1]) > 2.0;
  });
  EXPECT_EQ(f.num_rows(), 2);
  const Relation back = t.ToRelation("back");
  EXPECT_TRUE(RelationsEqualOrdered(back, SmallNumeric()));
}

TEST(MadlibLike, LinRegrRecoversPlantedModel) {
  // y = 10 + 2x exactly.
  RelationBuilder b(Schema::Make({{"x", DataType::kDouble},
                                  {"y", DataType::kDouble}})
                        .ValueOrDie());
  for (int i = 0; i < 50; ++i) {
    b.AppendRow({static_cast<double>(i), 10.0 + 2.0 * i}).Abort();
  }
  const ml::RowTable t = ml::RowTable::FromRelation(b.Finish().ValueOrDie());
  const std::vector<double> beta = ml::LinRegr(t, {"x"}, "y").ValueOrDie();
  EXPECT_NEAR(beta[0], 10.0, 1e-8);
  EXPECT_NEAR(beta[1], 2.0, 1e-8);
}

TEST(MadlibLike, SingleCoreKernelsMatchBlas) {
  const Relation r = workload::UniformRelation(20, 5, 3, -2, 2, true);
  std::vector<std::string> cols;
  for (int c = 0; c < 5; ++c) cols.push_back("a" + std::to_string(c));
  const ml::RowTable t = ml::RowTable::FromRelation(r);
  const DenseMatrix m = ml::ToMatrix(t, cols).ValueOrDie();
  EXPECT_TRUE(ml::CrossProdSingleCore(m, m).AllClose(
      blas::CrossProd(m, m).ValueOrDie(), 1e-9));
  EXPECT_TRUE(ml::MatMulSingleCore(m.Transposed(), m)
                  .AllClose(blas::MatMul(m.Transposed(), m).ValueOrDie(),
                            1e-9));
  EXPECT_TRUE(ml::AddSingleCore(m, m).AllClose(
      blas::Add(m, m).ValueOrDie(), 1e-9));
}

// --- SciDB-like --------------------------------------------------------------------

TEST(SciDbLike, AddJoinMatchesRmaAdd) {
  const Relation r = workload::UniformRelation(1000, 4, 11, 0, 100, true, "r");
  Relation s = workload::UniformRelation(1000, 4, 12, 0, 100, true, "s");
  s = rel::Rename(s, "id", "id2").ValueOrDie();
  const sc::ChunkedArray a = sc::ChunkedArray::FromRelation(r, "id").ValueOrDie();
  const sc::ChunkedArray b = sc::ChunkedArray::FromRelation(s, "id2").ValueOrDie();
  const sc::ChunkedArray sum = a.AddJoin(b).ValueOrDie();
  EXPECT_EQ(sum.num_cells(), 1000);
  const Relation scidb_out =
      sum.FilterToRelation("a0", ">", 50.0).ValueOrDie();
  // Reference through RMA.
  const Relation rma_sum = Add(r, {"id"}, s, {"id2"}).ValueOrDie();
  const auto col = ToDoubleVector(**rma_sum.ColumnByName("a0"));
  int64_t expected = 0;
  for (double v : col) expected += (v > 50.0);
  EXPECT_EQ(scidb_out.num_rows(), expected);
}

TEST(SciDbLike, ValidatesInputs) {
  const Relation r = testing::UsersRelation();
  EXPECT_STATUS(kTypeError, sc::ChunkedArray::FromRelation(r, "User"));
  const Relation n = SmallNumeric();
  const sc::ChunkedArray a = sc::ChunkedArray::FromRelation(n, "id").ValueOrDie();
  EXPECT_STATUS(kKeyError, a.FilterToRelation("zz", ">", 0));
}

}  // namespace
}  // namespace rma
