// Tests for the matrix-layer threading primitives: ParallelFor budget
// inheritance and exception propagation, ScopedThreadBudget scoping, and
// the ThreadPool's cooperative fork/join.
#include "matrix/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace rma {
namespace {

TEST(ScopedThreadBudgetTest, InstallsAndRestores) {
  EXPECT_EQ(CurrentThreadBudget(), 0);
  {
    ScopedThreadBudget outer(4);
    EXPECT_EQ(CurrentThreadBudget(), 4);
    {
      ScopedThreadBudget inner(2);
      EXPECT_EQ(CurrentThreadBudget(), 2);
      ScopedThreadBudget ignored(0);  // <= 0 leaves the budget unchanged
      EXPECT_EQ(CurrentThreadBudget(), 2);
    }
    EXPECT_EQ(CurrentThreadBudget(), 4);
  }
  EXPECT_EQ(CurrentThreadBudget(), 0);
}

TEST(ParallelForTest, WorkersInheritSplitBudget) {
  // A budget of 4 split across 2 workers: each worker must see an ambient
  // budget of 2 — not 0 (the pre-fix behavior, which let a nested
  // ParallelFor fan out to the full DefaultThreadCount() per worker).
  ScopedThreadBudget budget(4);
  std::mutex mu;
  std::vector<int> seen;
  ParallelFor(
      0, 2,
      [&](int64_t, int64_t) {
        std::lock_guard<std::mutex> lock(mu);
        seen.push_back(CurrentThreadBudget());
      },
      /*min_chunk=*/1, /*max_threads=*/0);
  ASSERT_EQ(seen.size(), 2u);
  for (int b : seen) EXPECT_EQ(b, 2);
}

TEST(ParallelForTest, NestedFanOutStaysWithinBudget) {
  // Outer budget 2 over 2 chunks -> each worker gets budget 1, so the
  // nested ParallelFor must run inline: at most 2 distinct threads ever
  // touch the leaf work.
  ScopedThreadBudget budget(2);
  std::mutex mu;
  std::set<std::thread::id> leaf_threads;
  ParallelFor(
      0, 2,
      [&](int64_t, int64_t) {
        ParallelFor(
            0, 8,
            [&](int64_t, int64_t) {
              std::lock_guard<std::mutex> lock(mu);
              leaf_threads.insert(std::this_thread::get_id());
            },
            /*min_chunk=*/1, /*max_threads=*/0);
      },
      /*min_chunk=*/1, /*max_threads=*/0);
  EXPECT_LE(leaf_threads.size(), 2u);
}

TEST(ParallelForTest, InlineExecutionKeepsCallerBudget) {
  // max_threads = 1 runs inline on the caller; the ambient budget is left
  // untouched for the caller's own nested parallelism.
  ScopedThreadBudget budget(8);
  int seen = -1;
  ParallelFor(
      0, 100, [&](int64_t, int64_t) { seen = CurrentThreadBudget(); },
      /*min_chunk=*/1, /*max_threads=*/1);
  EXPECT_EQ(seen, 8);
}

TEST(ParallelForTest, PropagatesFirstException) {
  // Pre-fix, an exception escaping `fn` on a raw std::thread terminated the
  // whole process. Now every worker is joined and the first exception is
  // rethrown on the calling thread.
  std::atomic<int> completed{0};
  EXPECT_THROW(
      ParallelFor(
          0, 4,
          [&](int64_t lo, int64_t) {
            if (lo == 0) throw std::runtime_error("kernel failure");
            completed.fetch_add(1);
          },
          /*min_chunk=*/1, /*max_threads=*/4),
      std::runtime_error);
  // The other chunks still ran to completion (workers are joined, not
  // abandoned).
  EXPECT_EQ(completed.load(), 3);
}

TEST(ParallelForTest, PropagatesExceptionFromEveryChunkPosition) {
  for (int64_t bad = 0; bad < 3; ++bad) {
    EXPECT_THROW(
        ParallelFor(
            0, 3,
            [&](int64_t lo, int64_t) {
              if (lo == bad) throw std::invalid_argument("boom");
            },
            /*min_chunk=*/1, /*max_threads=*/3),
        std::invalid_argument);
  }
}

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> sum{0};
  std::vector<ThreadPool::TaskPtr> tasks;
  for (int i = 1; i <= 10; ++i) {
    tasks.push_back(pool.Submit([&sum, i] { sum.fetch_add(i); }));
  }
  for (const auto& t : tasks) pool.Wait(t);
  EXPECT_EQ(sum.load(), 55);
}

TEST(ThreadPoolTest, WaitRethrowsTaskException) {
  ThreadPool pool(2);
  auto task = pool.Submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(pool.Wait(task), std::runtime_error);
}

TEST(ThreadPoolTest, ForkJoinDoesNotDeadlockOnSingleWorker) {
  // A task that submits and waits on sub-tasks must complete even when the
  // pool has a single worker: Wait() executes queued tasks cooperatively.
  ThreadPool pool(1);
  std::atomic<int> leaves{0};
  auto root = pool.Submit([&] {
    std::vector<ThreadPool::TaskPtr> subs;
    for (int i = 0; i < 4; ++i) {
      subs.push_back(pool.Submit([&leaves] { leaves.fetch_add(1); }));
    }
    for (const auto& s : subs) pool.Wait(s);
  });
  pool.Wait(root);
  EXPECT_EQ(leaves.load(), 4);
}

TEST(ThreadPoolTest, SharedPoolIsPersistent) {
  ThreadPool& a = ThreadPool::Shared();
  ThreadPool& b = ThreadPool::Shared();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.size(), 2);
  std::atomic<bool> ran{false};
  a.Wait(a.Submit([&] { ran.store(true); }));
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, WorkersStartWithNoAmbientBudget) {
  ThreadPool pool(1);
  int seen = -1;
  auto task = pool.Submit([&] { seen = CurrentThreadBudget(); });
  pool.Wait(task);
  EXPECT_EQ(seen, 0);
}

}  // namespace
}  // namespace rma
