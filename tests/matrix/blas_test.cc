// Level-3 kernels: golden values and agreement with naive reference loops
// over randomized shapes.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "matrix/blas.h"
#include "test_util.h"
#include "util/random.h"

namespace rma {
namespace {

DenseMatrix RandomMatrix(int64_t rows, int64_t cols, uint64_t seed) {
  Rng rng(seed);
  DenseMatrix m(rows, cols);
  for (int64_t i = 0; i < rows; ++i) {
    for (int64_t j = 0; j < cols; ++j) m(i, j) = rng.Uniform(-3, 3);
  }
  return m;
}

DenseMatrix NaiveMatMul(const DenseMatrix& a, const DenseMatrix& b) {
  DenseMatrix c(a.rows(), b.cols(), 0.0);
  for (int64_t i = 0; i < a.rows(); ++i) {
    for (int64_t j = 0; j < b.cols(); ++j) {
      double s = 0;
      for (int64_t p = 0; p < a.cols(); ++p) s += a(i, p) * b(p, j);
      c(i, j) = s;
    }
  }
  return c;
}

struct GemmCase {
  int64_t m;
  int64_t k;
  int64_t n;
  uint64_t seed;
};

class GemmProperty : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmProperty, MatchesNaiveReference) {
  const GemmCase c = GetParam();
  const DenseMatrix a = RandomMatrix(c.m, c.k, c.seed);
  const DenseMatrix b = RandomMatrix(c.k, c.n, c.seed + 100);
  const DenseMatrix fast = blas::MatMul(a, b).ValueOrDie();
  EXPECT_TRUE(fast.AllClose(NaiveMatMul(a, b), 1e-9));
}

TEST_P(GemmProperty, CrossProdIsTransposedMatMul) {
  const GemmCase c = GetParam();
  const DenseMatrix a = RandomMatrix(c.k, c.m, c.seed);
  const DenseMatrix b = RandomMatrix(c.k, c.n, c.seed + 200);
  const DenseMatrix cp = blas::CrossProd(a, b).ValueOrDie();
  EXPECT_TRUE(cp.AllClose(NaiveMatMul(a.Transposed(), b), 1e-9));
}

TEST_P(GemmProperty, OuterProdIsMatMulWithTranspose) {
  const GemmCase c = GetParam();
  const DenseMatrix a = RandomMatrix(c.m, c.k, c.seed);
  const DenseMatrix b = RandomMatrix(c.n, c.k, c.seed + 300);
  const DenseMatrix op = blas::OuterProd(a, b).ValueOrDie();
  EXPECT_TRUE(op.AllClose(NaiveMatMul(a, b.Transposed()), 1e-9));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmProperty,
    ::testing::Values(GemmCase{1, 1, 1, 1}, GemmCase{3, 4, 5, 2},
                      GemmCase{16, 16, 16, 3}, GemmCase{33, 7, 12, 4},
                      GemmCase{64, 100, 17, 5}, GemmCase{200, 2, 3, 6}));

TEST(Blas, SyrkMatchesCrossProdWithSelf) {
  const DenseMatrix a = RandomMatrix(40, 12, 7);
  const DenseMatrix syrk = blas::Syrk(a);
  const DenseMatrix ref = blas::CrossProd(a, a).ValueOrDie();
  EXPECT_TRUE(syrk.AllClose(ref, 1e-9));
  for (int64_t i = 0; i < 12; ++i) {
    for (int64_t j = 0; j < 12; ++j) EXPECT_EQ(syrk(i, j), syrk(j, i));
  }
}

TEST(Blas, ZeroCoefficientSkipsNonFiniteRows) {
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  // k = 6: coefficients 0..3 take the grouped rank-4 path, 4..5 the scalar
  // tail. A zero coefficient must skip its B row entirely in both, so
  // inf/NaN parked there never reach the output (0 * inf would be NaN).
  DenseMatrix a(2, 6, 1.0);
  a(0, 1) = 0.0;  // inside the rank-4 group
  a(0, 5) = 0.0;  // in the scalar tail
  DenseMatrix b(6, 3, 1.0);
  for (int64_t j = 0; j < 3; ++j) {
    b(1, j) = inf;
    b(5, j) = nan;
  }
  const DenseMatrix c = blas::MatMul(a, b).ValueOrDie();
  for (int64_t j = 0; j < 3; ++j) EXPECT_EQ(c(0, j), 4.0);
  // Nonzero coefficients still see the non-finite rows.
  EXPECT_TRUE(std::isnan(c(1, 0)));

  // CrossProd groups over rows of A and B: zeros in a column of A must skip
  // the matching B row.
  DenseMatrix a2(6, 2, 1.0);
  a2(1, 0) = 0.0;
  a2(5, 0) = 0.0;
  const DenseMatrix cp = blas::CrossProd(a2, b).ValueOrDie();
  for (int64_t j = 0; j < 3; ++j) EXPECT_EQ(cp(0, j), 4.0);
  EXPECT_TRUE(std::isnan(cp(1, 0)));

  // Syrk: a zero entry must skip the matching row of A itself, even when
  // that row holds inf in another column of the same rank-4 group.
  DenseMatrix a3(6, 2, 1.0);
  a3(1, 0) = 0.0;
  a3(1, 1) = inf;
  const DenseMatrix sy = blas::Syrk(a3);
  EXPECT_EQ(sy(0, 0), 5.0);
  EXPECT_EQ(sy(0, 1), 5.0);
  EXPECT_EQ(sy(1, 0), 5.0);
  EXPECT_TRUE(std::isinf(sy(1, 1)));
}

TEST(Blas, DimensionMismatchesRejected) {
  EXPECT_STATUS(kInvalidArgument,
                blas::MatMul(DenseMatrix(2, 3), DenseMatrix(4, 2)));
  EXPECT_STATUS(kInvalidArgument,
                blas::CrossProd(DenseMatrix(2, 3), DenseMatrix(4, 2)));
  EXPECT_STATUS(kInvalidArgument,
                blas::OuterProd(DenseMatrix(2, 3), DenseMatrix(2, 4)));
  EXPECT_STATUS(kInvalidArgument,
                blas::Add(DenseMatrix(2, 3), DenseMatrix(3, 2)));
  EXPECT_STATUS(kInvalidArgument,
                blas::MatVec(DenseMatrix(2, 3), std::vector<double>(2)));
}

TEST(Blas, ElementwiseOps) {
  DenseMatrix a(2, 2);
  DenseMatrix b(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  b(0, 0) = 10;
  b(0, 1) = 20;
  b(1, 0) = 30;
  b(1, 1) = 40;
  const DenseMatrix sum = blas::Add(a, b).ValueOrDie();
  const DenseMatrix diff = blas::Sub(b, a).ValueOrDie();
  const DenseMatrix prod = blas::ElemMul(a, b).ValueOrDie();
  EXPECT_EQ(sum(1, 1), 44);
  EXPECT_EQ(diff(0, 1), 18);
  EXPECT_EQ(prod(1, 0), 90);
}

TEST(Blas, MatVec) {
  DenseMatrix a(2, 3);
  for (int64_t i = 0; i < 2; ++i) {
    for (int64_t j = 0; j < 3; ++j) a(i, j) = i * 3 + j + 1.0;
  }
  const std::vector<double> y =
      blas::MatVec(a, {1.0, 0.0, -1.0}).ValueOrDie();
  EXPECT_NEAR(y[0], 1 - 3, 1e-12);
  EXPECT_NEAR(y[1], 4 - 6, 1e-12);
}

TEST(Blas, FrobeniusNorm) {
  DenseMatrix a(2, 2);
  a(0, 0) = 3;
  a(1, 1) = 4;
  EXPECT_NEAR(blas::FrobeniusNorm(a), 5.0, 1e-12);
}

TEST(DenseMatrix, TransposeRoundTrip) {
  const DenseMatrix a = RandomMatrix(13, 29, 8);
  EXPECT_TRUE(a.Transposed().Transposed().AllClose(a, 0.0));
  const DenseMatrix t = a.Transposed();
  for (int64_t i = 0; i < a.rows(); ++i) {
    for (int64_t j = 0; j < a.cols(); ++j) EXPECT_EQ(t(j, i), a(i, j));
  }
}

TEST(DenseMatrix, ColRowAccessors) {
  DenseMatrix a(3, 2);
  a(0, 0) = 1;
  a(1, 0) = 2;
  a(2, 0) = 3;
  a(0, 1) = 4;
  a(1, 1) = 5;
  a(2, 1) = 6;
  EXPECT_EQ(a.Col(0), (std::vector<double>{1, 2, 3}));
  EXPECT_EQ(a.Row(1), (std::vector<double>{2, 5}));
  a.SetCol(1, {7, 8, 9});
  EXPECT_EQ(a(2, 1), 9);
}

TEST(DenseMatrix, FromRowMajorWrapsBuffer) {
  const DenseMatrix m =
      DenseMatrix::FromRowMajor(2, 2, {1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(m(0, 1), 2.0);
  EXPECT_EQ(m(1, 0), 3.0);
}

}  // namespace
}  // namespace rma
