// Decomposition kernels: golden values plus reconstruction properties over
// randomized inputs (TEST_P sweeps).
#include <gtest/gtest.h>

#include <cmath>

#include "matrix/blas.h"
#include "matrix/cholesky.h"
#include "matrix/eigen.h"
#include "matrix/lu.h"
#include "matrix/qr.h"
#include "matrix/svd.h"
#include "test_util.h"
#include "util/random.h"

namespace rma {
namespace {

DenseMatrix RandomMatrix(int64_t rows, int64_t cols, uint64_t seed,
                         double lo = -5, double hi = 5) {
  Rng rng(seed);
  DenseMatrix m(rows, cols);
  for (int64_t i = 0; i < rows; ++i) {
    for (int64_t j = 0; j < cols; ++j) m(i, j) = rng.Uniform(lo, hi);
  }
  return m;
}

DenseMatrix RandomSpd(int64_t n, uint64_t seed) {
  const DenseMatrix a = RandomMatrix(n, n, seed);
  DenseMatrix spd = blas::CrossProd(a, a).ValueOrDie();  // AᵀA is PSD
  for (int64_t i = 0; i < n; ++i) spd(i, i) += n;        // make it PD
  return spd;
}

// --- LU / determinant / inverse ---------------------------------------------

TEST(Lu, DeterminantKnown) {
  DenseMatrix m(2, 2);
  m(0, 0) = 6;
  m(0, 1) = 7;
  m(1, 0) = 8;
  m(1, 1) = 5;
  EXPECT_NEAR(*Determinant(m), -26.0, 1e-12);
}

TEST(Lu, DeterminantIdentity) {
  EXPECT_NEAR(*Determinant(DenseMatrix::Identity(5)), 1.0, 1e-12);
}

TEST(Lu, DeterminantSingularIsZero) {
  DenseMatrix m(2, 2);
  m(0, 0) = 1;
  m(0, 1) = 2;
  m(1, 0) = 2;
  m(1, 1) = 4;
  EXPECT_NEAR(*Determinant(m), 0.0, 1e-12);
}

TEST(Lu, DeterminantOfProductIsProduct) {
  const DenseMatrix a = RandomMatrix(6, 6, 1);
  const DenseMatrix b = RandomMatrix(6, 6, 2);
  const DenseMatrix ab = blas::MatMul(a, b).ValueOrDie();
  EXPECT_NEAR(*Determinant(ab), *Determinant(a) * *Determinant(b), 1e-4);
}

TEST(Lu, DeterminantRejectsNonSquare) {
  EXPECT_STATUS(kInvalidArgument, Determinant(DenseMatrix(2, 3)));
}

TEST(Lu, InverseTimesSelfIsIdentity) {
  for (uint64_t seed : {3u, 4u, 5u}) {
    const DenseMatrix a = RandomMatrix(8, 8, seed);
    const DenseMatrix inv = Inverse(a).ValueOrDie();
    const DenseMatrix id = blas::MatMul(a, inv).ValueOrDie();
    EXPECT_TRUE(id.AllClose(DenseMatrix::Identity(8), 1e-9)) << "seed " << seed;
  }
}

TEST(Lu, InverseSingularFails) {
  DenseMatrix m(2, 2, 0.0);
  m(0, 0) = 1;
  EXPECT_STATUS(kNumericError, Inverse(m));
}

TEST(Lu, SolveSquareMatchesDirect) {
  const DenseMatrix a = RandomMatrix(7, 7, 6);
  const DenseMatrix x_true = RandomMatrix(7, 2, 7);
  const DenseMatrix b = blas::MatMul(a, x_true).ValueOrDie();
  const DenseMatrix x = SolveSquare(a, b).ValueOrDie();
  EXPECT_TRUE(x.AllClose(x_true, 1e-8));
}

TEST(Lu, LeastSquaresRecoversPlantedModel) {
  Rng rng(8);
  const int64_t n = 200;
  DenseMatrix a(n, 3);
  DenseMatrix y(n, 1);
  for (int64_t i = 0; i < n; ++i) {
    a(i, 0) = 1.0;
    a(i, 1) = rng.Uniform(-3, 3);
    a(i, 2) = rng.Uniform(-3, 3);
    y(i, 0) = 2.0 + 0.5 * a(i, 1) - 1.5 * a(i, 2);
  }
  const DenseMatrix beta = SolveLeastSquares(a, y).ValueOrDie();
  EXPECT_NEAR(beta(0, 0), 2.0, 1e-9);
  EXPECT_NEAR(beta(1, 0), 0.5, 1e-9);
  EXPECT_NEAR(beta(2, 0), -1.5, 1e-9);
}

TEST(Lu, LeastSquaresUnderdeterminedRejected) {
  EXPECT_STATUS(kInvalidArgument,
                SolveLeastSquares(DenseMatrix(2, 3), DenseMatrix(2, 1)));
}

// --- QR -----------------------------------------------------------------------

struct QrCase {
  int64_t rows;
  int64_t cols;
  uint64_t seed;
};

class QrProperty : public ::testing::TestWithParam<QrCase> {};

TEST_P(QrProperty, HouseholderReconstructsAndIsOrthonormal) {
  const QrCase c = GetParam();
  const DenseMatrix a = RandomMatrix(c.rows, c.cols, c.seed);
  DenseMatrix q;
  DenseMatrix r;
  ASSERT_OK(HouseholderQr(a, &q, &r));
  // QᵀQ = I.
  const DenseMatrix qtq = blas::CrossProd(q, q).ValueOrDie();
  EXPECT_TRUE(qtq.AllClose(DenseMatrix::Identity(c.cols), 1e-9));
  // QR = A.
  const DenseMatrix qr = blas::MatMul(q, r).ValueOrDie();
  EXPECT_TRUE(qr.AllClose(a, 1e-9));
  // R upper triangular with non-negative diagonal (sign convention).
  for (int64_t i = 0; i < r.rows(); ++i) {
    EXPECT_GE(r(i, i), 0.0);
    for (int64_t j = 0; j < i; ++j) EXPECT_EQ(r(i, j), 0.0);
  }
}

TEST_P(QrProperty, GramSchmidtAgreesWithHouseholder) {
  const QrCase c = GetParam();
  const DenseMatrix a = RandomMatrix(c.rows, c.cols, c.seed);
  DenseMatrix q1;
  DenseMatrix r1;
  DenseMatrix q2;
  DenseMatrix r2;
  ASSERT_OK(HouseholderQr(a, &q1, &r1));
  ASSERT_OK(GramSchmidtQr(a, &q2, &r2));
  // Both are sign-normalized, so the factors agree (QR is unique).
  EXPECT_TRUE(q1.AllClose(q2, 1e-8));
  EXPECT_TRUE(r1.AllClose(r2, 1e-8));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, QrProperty,
    ::testing::Values(QrCase{4, 4, 11}, QrCase{10, 3, 12}, QrCase{25, 7, 13},
                      QrCase{50, 10, 14}, QrCase{100, 1, 15},
                      QrCase{8, 8, 16}));

TEST(Qr, ParallelMatchesSingleThread) {
  // Large enough that the reflector updates cross the parallel threshold;
  // per-column arithmetic is identical on every thread count, so the
  // factors agree to the last bit.
  const DenseMatrix a = RandomMatrix(4000, 70, 21);
  DenseMatrix q1;
  DenseMatrix r1;
  DenseMatrix q2;
  DenseMatrix r2;
  ASSERT_OK(HouseholderQr(a, &q1, &r1, /*threads=*/1));
  ASSERT_OK(HouseholderQr(a, &q2, &r2, /*threads=*/0));
  EXPECT_TRUE(q1.AllClose(q2, 0.0));
  EXPECT_TRUE(r1.AllClose(r2, 0.0));
}

TEST(Qr, RowPermutationOnlyPermutesQ) {
  // The property behind the qqr sort-avoidance optimization.
  const DenseMatrix a = RandomMatrix(12, 4, 17);
  DenseMatrix pa(12, 4);
  std::vector<int64_t> perm = {5, 2, 9, 0, 11, 3, 7, 1, 10, 4, 8, 6};
  for (int64_t i = 0; i < 12; ++i) {
    for (int64_t j = 0; j < 4; ++j) pa(i, j) = a(perm[i], j);
  }
  DenseMatrix q1, r1, q2, r2;
  ASSERT_OK(HouseholderQr(a, &q1, &r1));
  ASSERT_OK(HouseholderQr(pa, &q2, &r2));
  EXPECT_TRUE(r1.AllClose(r2, 1e-9));  // R unchanged
  for (int64_t i = 0; i < 12; ++i) {   // Q rows permuted identically
    for (int64_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(q2(i, j), q1(perm[i], j), 1e-9);
    }
  }
}

TEST(Qr, WideMatrixRejected) {
  DenseMatrix q, r;
  EXPECT_TRUE(HouseholderQr(DenseMatrix(2, 5), &q, &r).IsInvalid());
}

TEST(Qr, FullQExtendsThinQ) {
  const DenseMatrix a = RandomMatrix(9, 3, 18);
  DenseMatrix q, r, qf;
  ASSERT_OK(HouseholderQr(a, &q, &r));
  ASSERT_OK(FullQ(a, &qf));
  ASSERT_EQ(qf.rows(), 9);
  ASSERT_EQ(qf.cols(), 9);
  const DenseMatrix qtq = blas::CrossProd(qf, qf).ValueOrDie();
  EXPECT_TRUE(qtq.AllClose(DenseMatrix::Identity(9), 1e-9));
  for (int64_t i = 0; i < 9; ++i) {
    for (int64_t j = 0; j < 3; ++j) EXPECT_NEAR(qf(i, j), q(i, j), 1e-9);
  }
}

// --- Cholesky -------------------------------------------------------------------

TEST(Cholesky, ReconstructsSpdMatrix) {
  for (uint64_t seed : {21u, 22u, 23u}) {
    const DenseMatrix a = RandomSpd(6, seed);
    const DenseMatrix u = Cholesky(a).ValueOrDie();
    const DenseMatrix utu = blas::CrossProd(u, u).ValueOrDie();
    EXPECT_TRUE(utu.AllClose(a, 1e-8)) << "seed " << seed;
    for (int64_t i = 0; i < 6; ++i) {
      for (int64_t j = 0; j < i; ++j) EXPECT_EQ(u(i, j), 0.0);
    }
  }
}

TEST(Cholesky, RejectsNonSymmetric) {
  DenseMatrix m(2, 2);
  m(0, 0) = 1;
  m(0, 1) = 5;
  m(1, 0) = -5;
  m(1, 1) = 4;
  EXPECT_STATUS(kNumericError, Cholesky(m));
}

TEST(Cholesky, RejectsIndefinite) {
  DenseMatrix m = DenseMatrix::Identity(3);
  m(1, 1) = -1;
  EXPECT_STATUS(kNumericError, Cholesky(m));
}

// --- SVD -------------------------------------------------------------------------

struct SvdCase {
  int64_t rows;
  int64_t cols;
  uint64_t seed;
};

class SvdProperty : public ::testing::TestWithParam<SvdCase> {};

TEST_P(SvdProperty, ReconstructsInput) {
  const SvdCase c = GetParam();
  const DenseMatrix a = RandomMatrix(c.rows, c.cols, c.seed);
  const SvdResult svd = Svd(a).ValueOrDie();
  // A = U diag(σ) Vᵀ.
  DenseMatrix us = svd.u;
  for (int64_t j = 0; j < us.cols(); ++j) {
    for (int64_t i = 0; i < us.rows(); ++i) {
      us(i, j) *= svd.sigma[static_cast<size_t>(j)];
    }
  }
  const DenseMatrix rec =
      blas::MatMul(us, svd.v.Transposed()).ValueOrDie();
  EXPECT_TRUE(rec.AllClose(a, 1e-8));
  // σ descending and non-negative.
  for (size_t i = 1; i < svd.sigma.size(); ++i) {
    EXPECT_LE(svd.sigma[i], svd.sigma[i - 1] + 1e-12);
    EXPECT_GE(svd.sigma[i], 0.0);
  }
  // U, V orthonormal columns.
  EXPECT_TRUE(blas::CrossProd(svd.u, svd.u)
                  .ValueOrDie()
                  .AllClose(DenseMatrix::Identity(svd.u.cols()), 1e-8));
  EXPECT_TRUE(blas::CrossProd(svd.v, svd.v)
                  .ValueOrDie()
                  .AllClose(DenseMatrix::Identity(svd.v.cols()), 1e-8));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SvdProperty,
    ::testing::Values(SvdCase{6, 6, 31}, SvdCase{20, 5, 32},
                      SvdCase{5, 20, 33}, SvdCase{40, 10, 34},
                      SvdCase{3, 1, 35}));

TEST(Svd, SingularValuesOfDiagonal) {
  DenseMatrix d(3, 3, 0.0);
  d(0, 0) = 2;
  d(1, 1) = -5;  // singular value is |−5|
  d(2, 2) = 1;
  const SvdResult svd = Svd(d).ValueOrDie();
  EXPECT_NEAR(svd.sigma[0], 5.0, 1e-10);
  EXPECT_NEAR(svd.sigma[1], 2.0, 1e-10);
  EXPECT_NEAR(svd.sigma[2], 1.0, 1e-10);
}

TEST(Svd, FullUIsSquareOrthogonal) {
  const DenseMatrix a = RandomMatrix(8, 3, 36);
  const DenseMatrix u = SvdFullU(a).ValueOrDie();
  ASSERT_EQ(u.rows(), 8);
  ASSERT_EQ(u.cols(), 8);
  EXPECT_TRUE(blas::CrossProd(u, u).ValueOrDie().AllClose(
      DenseMatrix::Identity(8), 1e-8));
}

TEST(Svd, RankOfLowRankMatrix) {
  // Outer product of two vectors has rank 1.
  DenseMatrix a(6, 1);
  DenseMatrix b(4, 1);
  for (int64_t i = 0; i < 6; ++i) a(i, 0) = i + 1.0;
  for (int64_t i = 0; i < 4; ++i) b(i, 0) = 2.0 * i + 1.0;
  const DenseMatrix m = blas::OuterProd(a, b).ValueOrDie();
  EXPECT_EQ(*MatrixRank(m), 1);
  EXPECT_EQ(*MatrixRank(DenseMatrix::Identity(5)), 5);
  EXPECT_EQ(*MatrixRank(RandomMatrix(10, 4, 37)), 4);
}

// --- Eigen -----------------------------------------------------------------------

TEST(Eigen, SymmetricKnown) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  DenseMatrix m(2, 2);
  m(0, 0) = 2;
  m(0, 1) = 1;
  m(1, 0) = 1;
  m(1, 1) = 2;
  std::vector<double> values;
  DenseMatrix vectors;
  ASSERT_OK(SymmetricEigen(m, &values, &vectors));
  EXPECT_NEAR(values[0], 3.0, 1e-10);
  EXPECT_NEAR(values[1], 1.0, 1e-10);
}

TEST(Eigen, SymmetricSatisfiesDefinition) {
  for (uint64_t seed : {41u, 42u}) {
    const DenseMatrix a = RandomSpd(7, seed);
    std::vector<double> values;
    DenseMatrix vectors;
    ASSERT_OK(SymmetricEigen(a, &values, &vectors));
    // A v_j = λ_j v_j for every eigenpair.
    for (int64_t j = 0; j < 7; ++j) {
      const std::vector<double> v = vectors.Col(j);
      const std::vector<double> av = blas::MatVec(a, v).ValueOrDie();
      for (int64_t i = 0; i < 7; ++i) {
        EXPECT_NEAR(av[static_cast<size_t>(i)],
                    values[static_cast<size_t>(j)] * v[static_cast<size_t>(i)],
                    1e-8);
      }
    }
    // Trace equals the eigenvalue sum.
    double trace = 0;
    double sum = 0;
    for (int64_t i = 0; i < 7; ++i) trace += a(i, i);
    for (double v : values) sum += v;
    EXPECT_NEAR(trace, sum, 1e-8);
  }
}

TEST(Eigen, GeneralUpperTriangularHasDiagonalEigenvalues) {
  DenseMatrix m(3, 3, 0.0);
  m(0, 0) = 3;
  m(0, 1) = 1;
  m(1, 1) = -1;
  m(1, 2) = 2;
  m(2, 2) = 5;
  std::vector<double> values;
  ASSERT_OK(GeneralEigenvalues(m, &values));
  EXPECT_NEAR(values[0], 5.0, 1e-8);
  EXPECT_NEAR(values[1], 3.0, 1e-8);
  EXPECT_NEAR(values[2], -1.0, 1e-8);
}

TEST(Eigen, GeneralNonSymmetricRealEigenvalues) {
  // [[4,1],[2,3]] has eigenvalues 5 and 2.
  DenseMatrix m(2, 2);
  m(0, 0) = 4;
  m(0, 1) = 1;
  m(1, 0) = 2;
  m(1, 1) = 3;
  std::vector<double> values;
  ASSERT_OK(GeneralEigenvalues(m, &values));
  EXPECT_NEAR(values[0], 5.0, 1e-8);
  EXPECT_NEAR(values[1], 2.0, 1e-8);
}

TEST(Eigen, ComplexEigenvaluesReported) {
  // A rotation matrix has complex eigenvalues.
  DenseMatrix m(2, 2);
  m(0, 0) = 0;
  m(0, 1) = -1;
  m(1, 0) = 1;
  m(1, 1) = 0;
  std::vector<double> values;
  EXPECT_TRUE(GeneralEigenvalues(m, &values).IsNumericError());
}

}  // namespace
}  // namespace rma
