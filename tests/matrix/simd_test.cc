// The SIMD wrapper (matrix/simd.h): vector and scalar paths agree on every
// length around the vector width, tails are handled exactly, NaN/inf
// propagate like the scalar loops, pure-data-movement kernels are
// bit-identical across paths, and the ForceScalar/RMA_NO_SIMD escape hatch
// actually pins the scalar path.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "matrix/simd.h"
#include "storage/bat_ops.h"
#include "util/random.h"

namespace rma {
namespace {

/// RAII: force the scalar path for one scope, restore detection after.
struct ScopedScalar {
  ScopedScalar() { simd::ForceScalar(true); }
  ~ScopedScalar() { simd::ForceScalar(false); }
};

std::vector<double> RandomVec(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(static_cast<size_t>(n));
  for (double& x : v) x = rng.Uniform(-3, 3);
  return v;
}

/// The interesting lengths around the vector width: empty, single element,
/// one under/at/over a full vector, and a couple of vectors plus tail.
std::vector<int64_t> EdgeLengths() {
  const int64_t w = std::max(simd::Width(), 4);  // cover 4 even when scalar
  return {0, 1, w - 1, w, w + 1, 2 * w, 2 * w + 3, 64, 65};
}

// --- element-wise kernels: bit-identical to scalar on every length ----------

TEST(SimdParity, ElementwiseBitIdenticalToScalar) {
  for (int64_t n : EdgeLengths()) {
    const std::vector<double> a = RandomVec(n, 100 + static_cast<uint64_t>(n));
    const std::vector<double> b = RandomVec(n, 200 + static_cast<uint64_t>(n));
    std::vector<double> out_simd(static_cast<size_t>(n), 0.0);
    std::vector<double> out_scalar(static_cast<size_t>(n), 0.0);

    simd::Add(a.data(), b.data(), out_simd.data(), n);
    {
      ScopedScalar scalar;
      simd::Add(a.data(), b.data(), out_scalar.data(), n);
    }
    EXPECT_EQ(out_simd, out_scalar) << "Add n=" << n;

    simd::Sub(a.data(), b.data(), out_simd.data(), n);
    {
      ScopedScalar scalar;
      simd::Sub(a.data(), b.data(), out_scalar.data(), n);
    }
    EXPECT_EQ(out_simd, out_scalar) << "Sub n=" << n;

    simd::Mul(a.data(), b.data(), out_simd.data(), n);
    {
      ScopedScalar scalar;
      simd::Mul(a.data(), b.data(), out_scalar.data(), n);
    }
    EXPECT_EQ(out_simd, out_scalar) << "Mul n=" << n;

    std::vector<double> y_simd = a;
    std::vector<double> y_scalar = a;
    simd::Axpy(1.2345, b.data(), y_simd.data(), n);
    {
      ScopedScalar scalar;
      simd::Axpy(1.2345, b.data(), y_scalar.data(), n);
    }
    EXPECT_EQ(y_simd, y_scalar) << "Axpy n=" << n;

    y_simd = a;
    y_scalar = a;
    simd::Scale(-0.75, y_simd.data(), n);
    {
      ScopedScalar scalar;
      simd::Scale(-0.75, y_scalar.data(), n);
    }
    EXPECT_EQ(y_simd, y_scalar) << "Scale n=" << n;
  }
}

TEST(SimdParity, Axpy4AndAxpyTo4BitIdenticalToScalar) {
  const double alpha[4] = {0.5, -1.25, 2.0, 0.125};
  for (int64_t n : EdgeLengths()) {
    std::vector<std::vector<double>> x;
    for (uint64_t q = 0; q < 4; ++q) {
      x.push_back(RandomVec(n, 300 + 10 * q + static_cast<uint64_t>(n)));
    }
    const std::vector<double> y0 = RandomVec(n, 400 + static_cast<uint64_t>(n));

    std::vector<double> y_simd = y0;
    std::vector<double> y_scalar = y0;
    simd::Axpy4(alpha, x[0].data(), x[1].data(), x[2].data(), x[3].data(),
                y_simd.data(), n);
    {
      ScopedScalar scalar;
      simd::Axpy4(alpha, x[0].data(), x[1].data(), x[2].data(), x[3].data(),
                  y_scalar.data(), n);
    }
    EXPECT_EQ(y_simd, y_scalar) << "Axpy4 n=" << n;

    std::vector<std::vector<double>> ys_simd = x;
    std::vector<std::vector<double>> ys_scalar = x;
    simd::AxpyTo4(alpha, y0.data(), ys_simd[0].data(), ys_simd[1].data(),
                  ys_simd[2].data(), ys_simd[3].data(), n);
    {
      ScopedScalar scalar;
      simd::AxpyTo4(alpha, y0.data(), ys_scalar[0].data(),
                    ys_scalar[1].data(), ys_scalar[2].data(),
                    ys_scalar[3].data(), n);
    }
    for (int q = 0; q < 4; ++q) {
      EXPECT_EQ(ys_simd[q], ys_scalar[q]) << "AxpyTo4 q=" << q << " n=" << n;
    }
  }
}

// --- reductions: near-equal (lane association differs), exact on tails ------

TEST(SimdParity, ReductionsMatchScalarWithinTolerance) {
  for (int64_t n : EdgeLengths()) {
    const std::vector<double> a = RandomVec(n, 500 + static_cast<uint64_t>(n));
    const std::vector<double> b = RandomVec(n, 600 + static_cast<uint64_t>(n));
    double dot_scalar, sum_scalar, sq_scalar;
    {
      ScopedScalar scalar;
      dot_scalar = simd::Dot(a.data(), b.data(), n);
      sum_scalar = simd::Sum(a.data(), n);
      sq_scalar = simd::SumSquares(a.data(), n);
    }
    const double tol = 1e-12 * (1.0 + static_cast<double>(n));
    EXPECT_NEAR(simd::Dot(a.data(), b.data(), n), dot_scalar, tol)
        << "Dot n=" << n;
    EXPECT_NEAR(simd::Sum(a.data(), n), sum_scalar, tol) << "Sum n=" << n;
    EXPECT_NEAR(simd::SumSquares(a.data(), n), sq_scalar, tol)
        << "SumSquares n=" << n;

    double d4_simd[4], d4_scalar[4];
    simd::Dot4(a.data(), b.data(), a.data(), b.data(), a.data(), n, d4_simd);
    {
      ScopedScalar scalar;
      simd::Dot4(a.data(), b.data(), a.data(), b.data(), a.data(), n,
                 d4_scalar);
    }
    for (int q = 0; q < 4; ++q) {
      EXPECT_NEAR(d4_simd[q], d4_scalar[q], tol) << "Dot4 q=" << q
                                                 << " n=" << n;
    }
  }
}

TEST(SimdParity, EmptyReductionsAreZero) {
  EXPECT_EQ(simd::Dot(nullptr, nullptr, 0), 0.0);
  EXPECT_EQ(simd::Sum(nullptr, 0), 0.0);
  EXPECT_EQ(simd::SumSquares(nullptr, 0), 0.0);
}

// --- NaN / infinity propagation ---------------------------------------------

TEST(SimdNumerics, NanAndInfPropagateLikeScalar) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const int64_t n = 11;  // two AVX2 vectors + a 3-element tail
  for (int64_t poison = 0; poison < n; ++poison) {
    std::vector<double> a = RandomVec(n, 700);
    std::vector<double> b = RandomVec(n, 701);
    a[static_cast<size_t>(poison)] = nan;
    b[static_cast<size_t>((poison + 5) % n)] = inf;

    std::vector<double> out(static_cast<size_t>(n));
    simd::Add(a.data(), b.data(), out.data(), n);
    EXPECT_TRUE(std::isnan(out[static_cast<size_t>(poison)]))
        << "poison=" << poison;
    EXPECT_TRUE(std::isinf(out[static_cast<size_t>((poison + 5) % n)]) ||
                std::isnan(out[static_cast<size_t>((poison + 5) % n)]));

    // A poisoned lane must reach the reduction result no matter which
    // vector/tail position it lands in.
    EXPECT_TRUE(std::isnan(simd::Sum(a.data(), n))) << "poison=" << poison;
    EXPECT_TRUE(std::isnan(simd::Dot(a.data(), b.data(), n)))
        << "poison=" << poison;

    // inf * 0 through Scale stays NaN-generating exactly like scalar.
    std::vector<double> s_simd = b;
    std::vector<double> s_scalar = b;
    simd::Scale(0.0, s_simd.data(), n);
    {
      ScopedScalar scalar;
      simd::Scale(0.0, s_scalar.data(), n);
    }
    for (int64_t i = 0; i < n; ++i) {
      const bool nan_simd = std::isnan(s_simd[static_cast<size_t>(i)]);
      const bool nan_scalar = std::isnan(s_scalar[static_cast<size_t>(i)]);
      EXPECT_EQ(nan_simd, nan_scalar) << "i=" << i;
    }
  }
}

// --- pack/unpack: pure data movement, bit-identical, any stride >= 4 --------

TEST(SimdPack, Pack4RoundTripsThroughUnpack4) {
  for (int64_t n : EdgeLengths()) {
    // Misaligned, non-multiple-of-width strides exercise the partial-vector
    // row writes.
    for (int64_t stride : {int64_t{4}, int64_t{5}, int64_t{7}}) {
      std::vector<std::vector<double>> cols;
      for (uint64_t q = 0; q < 4; ++q) {
        cols.push_back(RandomVec(n, 800 + q + static_cast<uint64_t>(n)));
      }
      std::vector<double> packed(static_cast<size_t>(n * stride), -7.0);
      std::vector<double> packed_scalar = packed;
      simd::Pack4(cols[0].data(), cols[1].data(), cols[2].data(),
                  cols[3].data(), packed.data(), stride, n);
      {
        ScopedScalar scalar;
        simd::Pack4(cols[0].data(), cols[1].data(), cols[2].data(),
                    cols[3].data(), packed_scalar.data(), stride, n);
      }
      // Bit-identical including the untouched slack between rows.
      EXPECT_EQ(packed, packed_scalar) << "stride=" << stride << " n=" << n;

      std::vector<std::vector<double>> back(
          4, std::vector<double>(static_cast<size_t>(n), 0.0));
      simd::Unpack4(packed.data(), stride, n, back[0].data(), back[1].data(),
                    back[2].data(), back[3].data());
      for (int q = 0; q < 4; ++q) {
        EXPECT_EQ(back[q], cols[q]) << "q=" << q << " stride=" << stride
                                    << " n=" << n;
      }
    }
  }
}

// --- strided copies & tiled transposes over bat_ops -------------------------

TEST(SimdBatOps, StridedCopiesMatchScalarOnMisalignedDsts) {
  for (int64_t n : EdgeLengths()) {
    const std::vector<double> src = RandomVec(n, 900 + static_cast<uint64_t>(n));
    for (int64_t stride : {int64_t{1}, int64_t{3}, int64_t{5}}) {
      // +1 offset makes the destination base misaligned relative to the
      // 32-byte vectors even when the allocation happens to be aligned.
      std::vector<double> dst(static_cast<size_t>(n * stride + 1), -1.0);
      std::vector<double> dst_scalar = dst;
      bat_ops::CopyDenseToStrided(src.data(), n, dst.data() + 1, stride);
      {
        ScopedScalar scalar;
        bat_ops::CopyDenseToStrided(src.data(), n, dst_scalar.data() + 1,
                                    stride);
      }
      EXPECT_EQ(dst, dst_scalar) << "stride=" << stride << " n=" << n;
    }
  }
}

TEST(SimdBatOps, PackColumnsRowMajorMatchesPerColumnGather) {
  Rng rng(42);
  for (int64_t n : EdgeLengths()) {
    for (int64_t k : {int64_t{1}, int64_t{3}, int64_t{4}, int64_t{6}}) {
      std::vector<std::vector<double>> cols;
      std::vector<const double*> ptrs;
      for (uint64_t j = 0; j < static_cast<uint64_t>(k); ++j) {
        cols.push_back(RandomVec(n, 1000 + j + static_cast<uint64_t>(n)));
        ptrs.push_back(cols.back().data());
      }
      // Identity and shuffled permutations.
      std::vector<int64_t> perm(static_cast<size_t>(n));
      for (int64_t i = 0; i < n; ++i) perm[static_cast<size_t>(i)] = i;
      for (int64_t i = n - 1; i > 0; --i) {
        std::swap(perm[static_cast<size_t>(i)],
                  perm[static_cast<size_t>(rng.UniformInt(0, i))]);
      }
      const int64_t* perm_choices[] = {nullptr, perm.data()};
      for (const int64_t* p : perm_choices) {
        std::vector<double> packed(static_cast<size_t>(n * k), 0.0);
        bat_ops::PackColumnsRowMajor(ptrs.data(), k, p, n, packed.data());
        for (int64_t i = 0; i < n; ++i) {
          const int64_t row = p == nullptr ? i : p[i];
          for (int64_t j = 0; j < k; ++j) {
            ASSERT_EQ(packed[static_cast<size_t>(i * k + j)],
                      cols[static_cast<size_t>(j)][static_cast<size_t>(row)])
                << "n=" << n << " k=" << k << " i=" << i << " j=" << j
                << " perm=" << (p != nullptr);
          }
        }
        if (p == nullptr) {
          // Unpack inverts the identity-permutation pack exactly.
          std::vector<std::vector<double>> back(
              static_cast<size_t>(k),
              std::vector<double>(static_cast<size_t>(n), 0.0));
          std::vector<double*> back_ptrs;
          for (auto& c : back) back_ptrs.push_back(c.data());
          bat_ops::UnpackRowMajorToColumns(packed.data(), n, k,
                                           back_ptrs.data());
          for (size_t j = 0; j < static_cast<size_t>(k); ++j) {
            EXPECT_EQ(back[j], cols[j]) << "n=" << n << " k=" << k;
          }
        }
      }
    }
  }
}

// --- the escape hatch --------------------------------------------------------

TEST(SimdConfig, ForceScalarPinsTheScalarPath) {
  {
    ScopedScalar scalar;
    EXPECT_EQ(simd::Width(), 1);
    EXPECT_FALSE(simd::Enabled());
    EXPECT_STREQ(simd::IsaName(), "scalar");
    EXPECT_EQ(simd::Describe(), "scalar");
  }
  // Restored: width is whatever detection says (>= 1 always).
  EXPECT_GE(simd::Width(), 1);
  if (simd::Width() > 1) {
    EXPECT_TRUE(simd::Enabled());
    EXPECT_NE(simd::Describe(), "scalar");
  }
}

}  // namespace
}  // namespace rma
