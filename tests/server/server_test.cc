// End-to-end tests for the server front-end: one process hosts the server,
// clients connect over loopback. Every server binds port 0 (ephemeral), so
// tests never collide with each other or a developer's running server.
#include "server/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <fstream>

#include "client/client.h"
#include "core/calibration.h"
#include "server/wire.h"
#include "sql/database.h"
#include "test_util.h"
#include "util/random.h"
#include "util/socket.h"
#include "workload/synthetic.h"

namespace rma::server {
namespace {

using client::Client;
using client::ExecResult;
using ::rma::testing::RandomKeyedRelation;

void ExpectSameRelation(const Relation& a, const Relation& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.num_columns(), b.num_columns());
  for (int c = 0; c < a.num_columns(); ++c) {
    EXPECT_EQ(a.schema().attribute(c).name, b.schema().attribute(c).name);
    EXPECT_EQ(a.schema().attribute(c).type, b.schema().attribute(c).type);
  }
  for (int64_t r = 0; r < a.num_rows(); ++r) {
    for (int c = 0; c < a.num_columns(); ++c) {
      ASSERT_EQ(a.Get(r, c), b.Get(r, c)) << "row " << r << " col " << c;
    }
  }
}

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_.Register("weather", testing::WeatherRelation()).Abort();
    db_.Register("rating", testing::RatingsRelation()).Abort();
    Rng rng(17);
    db_.Register("m", RandomKeyedRelation(600, 3, &rng, -5.0, 5.0, "m"))
        .Abort();
  }

  // Starts the server on an ephemeral port; call at most once per test.
  void StartServer(ServerOptions opts = {}) {
    opts.port = 0;
    server_ = std::make_unique<Server>(&db_, opts);
    ASSERT_OK(server_->Start());
  }

  Client Connect() {
    auto conn = Client::Connect("127.0.0.1", server_->port());
    EXPECT_TRUE(conn.ok()) << conn.status().ToString();
    return std::move(conn).ValueOrDie();
  }

  sql::Database db_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServerTest, StartStopIdle) {
  StartServer();
  EXPECT_GT(server_->port(), 0);
  server_->Stop();
  const ServerStats stats = server_->stats();
  EXPECT_EQ(stats.sessions_accepted, 0);
  EXPECT_EQ(stats.statements_executed, 0);
}

TEST_F(ServerTest, StopIsIdempotent) {
  StartServer();
  server_->Stop();
  server_->Stop();
}

TEST_F(ServerTest, StreamedResultMatchesInProcessExecute) {
  StartServer();
  Client c = Connect();
  const std::vector<std::string> statements = {
      "SELECT * FROM weather;",
      "SELECT * FROM TRA(weather BY T);",
      "SELECT * FROM MMU(TRA(rating BY User) BY C, rating BY User);",
      "SELECT * FROM QQR(m BY id);",
  };
  for (const std::string& sql : statements) {
    ASSERT_OK_AND_ASSIGN(Relation streamed, c.Query(sql));
    ASSERT_OK_AND_ASSIGN(Relation local, db_.Execute(sql));
    ExpectSameRelation(streamed, local);
  }
}

TEST_F(ServerTest, ResultsStreamInBatches) {
  ServerOptions opts;
  opts.row_batch_rows = 64;
  StartServer(opts);
  Client c = Connect();
  ASSERT_OK_AND_ASSIGN(ExecResult result, c.Execute("SELECT * FROM m;"));
  EXPECT_EQ(result.rows, 600u);
  EXPECT_EQ(result.batches, (600 + 63) / 64);
  EXPECT_EQ(result.relation.num_rows(), 600);

  // Streaming consumption sees every row without accumulating.
  int64_t streamed_rows = 0;
  int64_t callbacks = 0;
  ASSERT_OK_AND_ASSIGN(
      ExecResult stream_result,
      c.ExecuteStreaming("SELECT * FROM m;", [&](const Relation& batch) {
        streamed_rows += batch.num_rows();
        ++callbacks;
        return Status::OK();
      }));
  EXPECT_EQ(streamed_rows, 600);
  EXPECT_EQ(callbacks, stream_result.batches);
  EXPECT_EQ(stream_result.relation.num_rows(), 0);  // not accumulated
}

TEST_F(ServerTest, EmptyResultStreamsHeaderAndComplete) {
  StartServer();
  Client c = Connect();
  ASSERT_OK_AND_ASSIGN(ExecResult result,
                       c.Execute("DROP TABLE weather;"));
  EXPECT_EQ(result.rows, 0u);
  EXPECT_EQ(result.batches, 0);
}

TEST_F(ServerTest, PreparedStatementsReplayThroughPlanCache) {
  StartServer();
  Client c = Connect();
  ASSERT_OK_AND_ASSIGN(uint64_t handle,
                       c.Prepare("SELECT * FROM QQR(m BY id);"));
  ASSERT_OK_AND_ASSIGN(ExecResult first, c.ExecutePrepared(handle));
  ASSERT_OK_AND_ASSIGN(ExecResult second, c.ExecutePrepared(handle));
  EXPECT_EQ(first.rows, second.rows);
  EXPECT_EQ(second.plan_cache, 1) << "second execution must hit the cache";

  // The cache is shared across sessions: a different connection executing
  // the same text also hits.
  Client other = Connect();
  ASSERT_OK_AND_ASSIGN(ExecResult cross,
                       other.Execute("SELECT * FROM QQR(m BY id);"));
  EXPECT_EQ(cross.plan_cache, 1);
}

TEST_F(ServerTest, PrepareRejectsMalformedSql) {
  StartServer();
  Client c = Connect();
  auto result = c.Prepare("SELEC nonsense");
  EXPECT_FALSE(result.ok());
  // The session survives the failed PREPARE.
  ASSERT_OK_AND_ASSIGN(ExecResult ok, c.Execute("SELECT * FROM weather;"));
  EXPECT_EQ(ok.rows, 4u);
}

TEST_F(ServerTest, UnknownPreparedHandleIsIsolatedError) {
  StartServer();
  Client c = Connect();
  auto result = c.ExecutePrepared(999);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().code() == StatusCode::kKeyError)
      << result.status().ToString();
  ASSERT_OK_AND_ASSIGN(ExecResult ok, c.Execute("SELECT * FROM weather;"));
  EXPECT_EQ(ok.rows, 4u);
}

TEST_F(ServerTest, StatementErrorsAreIsolatedPerSession) {
  StartServer();
  Client a = Connect();
  Client b = Connect();
  // A statement-level failure on A answers A with the server-side Status
  // and must not disturb A's session or B's.
  auto bad = a.Execute("SELECT * FROM no_such_table;");
  ASSERT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().code() == StatusCode::kKeyError)
      << bad.status().ToString();
  ASSERT_OK_AND_ASSIGN(ExecResult a_ok, a.Execute("SELECT * FROM weather;"));
  EXPECT_EQ(a_ok.rows, 4u);
  ASSERT_OK_AND_ASSIGN(ExecResult b_ok, b.Execute("SELECT * FROM rating;"));
  EXPECT_EQ(b_ok.rows, 3u);
  server_->Stop();
  EXPECT_EQ(server_->stats().statements_failed, 1);
}

TEST_F(ServerTest, SessionOptionsAreIsolated) {
  StartServer();
  Client a = Connect();
  Client b = Connect();
  // A forces the scalar BAT kernels, B the contiguous (dense) ones; each
  // session's EXPLAIN must reflect its own choice for the same statement.
  ASSERT_OK(a.SetOption("kernel", "bat"));
  ASSERT_OK(a.SetOption("max_threads", "1"));
  ASSERT_OK(b.SetOption("kernel", "contiguous"));
  ASSERT_OK_AND_ASSIGN(
      Relation a_plan,
      a.Query("EXPLAIN SELECT * FROM MMU(TRA(rating BY User) BY C,"
              " rating BY User);"));
  ASSERT_OK_AND_ASSIGN(
      Relation b_plan,
      b.Query("EXPLAIN SELECT * FROM MMU(TRA(rating BY User) BY C,"
              " rating BY User);"));
  auto plan_text = [](const Relation& plan) {
    std::string text;
    for (int64_t r = 0; r < plan.num_rows(); ++r) {
      text += ValueToString(plan.Get(r, 0));
      text += '\n';
    }
    return text;
  };
  EXPECT_NE(plan_text(a_plan).find("kernel=bat"), std::string::npos)
      << plan_text(a_plan);
  EXPECT_EQ(plan_text(b_plan).find("kernel=bat"), std::string::npos)
      << plan_text(b_plan);

  // Invalid values are rejected and leave the session's options unchanged.
  EXPECT_FALSE(a.SetOption("kernel", "gpu").ok());
  EXPECT_FALSE(a.SetOption("no_such_option", "1").ok());
  EXPECT_FALSE(a.SetOption("max_threads", "not_a_number").ok());
  ASSERT_OK_AND_ASSIGN(ExecResult still_ok,
                       a.Execute("SELECT * FROM weather;"));
  EXPECT_EQ(still_ok.rows, 4u);
}

TEST_F(ServerTest, ConcurrentClientsInterleaveDdlAndSelect) {
  StartServer();
  constexpr int kClients = 8;
  constexpr int kRounds = 5;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([this, i, &failures] {
      auto conn = Client::Connect("127.0.0.1", server_->port());
      if (!conn.ok()) {
        ++failures;
        return;
      }
      Client c = std::move(*conn);
      const std::string table = "t" + std::to_string(i);
      for (int round = 0; round < kRounds; ++round) {
        // Per-session table names, so DDL from different sessions
        // interleaves without conflicting.
        auto created = c.Execute("CREATE TABLE " + table +
                                 " AS SELECT * FROM QQR(m BY id);");
        if (!created.ok()) ++failures;
        auto select = c.Execute("SELECT * FROM " + table + ";");
        if (!select.ok() || select->rows != 600) ++failures;
        auto dropped = c.Execute("DROP TABLE " + table + ";");
        if (!dropped.ok()) ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  server_->Stop();
  const ServerStats stats = server_->stats();
  EXPECT_EQ(stats.sessions_accepted, kClients);
  EXPECT_EQ(stats.statements_executed, kClients * kRounds * 3);
  EXPECT_EQ(stats.statements_failed, 0);
}

TEST_F(ServerTest, AdmissionBoundsInFlightStatements) {
  ServerOptions opts;
  opts.max_inflight_statements = 2;
  StartServer(opts);
  constexpr int kClients = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([this, &failures] {
      auto conn = Client::Connect("127.0.0.1", server_->port());
      if (!conn.ok()) {
        ++failures;
        return;
      }
      Client c = std::move(*conn);
      for (int round = 0; round < 3; ++round) {
        auto result = c.Execute("SELECT * FROM QQR(m BY id);");
        if (!result.ok() || result->rows != 600) ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  server_->Stop();
  const ServerStats stats = server_->stats();
  // The acceptance bar: the admission counter never exceeds the budget.
  EXPECT_LE(stats.peak_in_flight, 2);
  EXPECT_EQ(stats.statements_executed, kClients * 3);
}

TEST_F(ServerTest, MidStreamDisconnectLeavesServerServing) {
  ServerOptions opts;
  opts.row_batch_rows = 32;  // many batches, so the hang-up lands mid-stream
  StartServer(opts);
  {
    Client c = Connect();
    int64_t seen = 0;
    auto result = c.ExecuteStreaming(
        "SELECT * FROM m;", [&](const Relation& batch) -> Status {
          seen += batch.num_rows();
          return Status::IoError("client bails mid-stream");
        });
    EXPECT_FALSE(result.ok());
    EXPECT_EQ(seen, 32);
    EXPECT_FALSE(c.connected());
  }
  // The server must shrug the broken socket off and serve new sessions.
  Client fresh = Connect();
  ASSERT_OK_AND_ASSIGN(ExecResult ok, fresh.Execute("SELECT * FROM m;"));
  EXPECT_EQ(ok.rows, 600u);
}

TEST_F(ServerTest, SessionCapacityRefusalCarriesReason) {
  ServerOptions opts;
  opts.max_sessions = 1;
  StartServer(opts);
  Client first = Connect();
  auto second = Client::Connect("127.0.0.1", server_->port());
  ASSERT_FALSE(second.ok());
  EXPECT_TRUE(second.status().code() == StatusCode::kResourceExhausted)
      << second.status().ToString();
  // Capacity frees when the first session ends.
  first.Close();
  for (int attempt = 0; attempt < 50; ++attempt) {
    auto retry = Client::Connect("127.0.0.1", server_->port());
    if (retry.ok()) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  FAIL() << "session slot never freed after disconnect";
}

TEST_F(ServerTest, ProtocolVersionMismatchIsRefused) {
  StartServer();
  ASSERT_OK_AND_ASSIGN(Socket raw,
                       ConnectSocket("127.0.0.1", server_->port()));
  WireWriter hello;
  hello.PutU32(kProtocolVersion + 41);
  ASSERT_OK(SendFrame(raw, MessageType::kHello, hello.str()));
  ASSERT_OK_AND_ASSIGN(Frame frame, RecvFrame(raw));
  ASSERT_TRUE(frame.type == MessageType::kError);
  const Status err = DecodeError(frame.payload);
  EXPECT_TRUE(err.code() == StatusCode::kInvalidArgument) << err.ToString();
  EXPECT_NE(err.message().find("version"), std::string::npos);
}

TEST_F(ServerTest, StopReturnsDespiteStalledConnections) {
  ServerOptions opts;
  opts.drain_timeout_ms = 200;
  StartServer(opts);
  // A client that connects and never sends a byte: the session's pre-HELLO
  // drain poll notices Stop() within its poll interval.
  ASSERT_OK_AND_ASSIGN(Socket silent,
                       ConnectSocket("127.0.0.1", server_->port()));
  // A client that sends half a frame: the header promises 64 bytes that
  // never arrive, so after WaitReadable fires the session wedges inside
  // RecvFrame — only Stop()'s post-deadline socket Shutdown() can free it.
  ASSERT_OK_AND_ASSIGN(Socket torn,
                       ConnectSocket("127.0.0.1", server_->port()));
  const char partial_header[4] = {64, 0, 0, 0};
  ASSERT_OK(torn.SendAll(partial_header, sizeof(partial_header)));
  // Let both sessions reach their blocked states, and a healthy client
  // keep working alongside them.
  Client healthy = Connect();
  ASSERT_OK_AND_ASSIGN(ExecResult ok, healthy.Execute("SELECT * FROM m;"));
  EXPECT_EQ(ok.rows, 600u);
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  const auto t0 = std::chrono::steady_clock::now();
  server_->Stop();  // must not hang on either stalled connection
  const auto stop_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  EXPECT_LT(stop_ms, 4000) << "Stop() hung on a stalled connection";
}

TEST_F(ServerTest, FinishedSessionThreadsAreReaped) {
  StartServer();
  constexpr int kChurn = 20;
  for (int i = 0; i < kChurn; ++i) {
    Client c = Connect();
    ASSERT_OK_AND_ASSIGN(ExecResult r, c.Execute("SELECT * FROM weather;"));
    EXPECT_EQ(r.rows, 4u);
  }
  // Each accept sweeps threads of sessions that have since finished, so the
  // tracked set must settle near the live connection count, never the
  // churn total. Sessions end asynchronously after the GOODBYE; each probe
  // connection triggers another sweep.
  int tracked = kChurn;
  for (int attempt = 0; attempt < 100 && tracked > 3; ++attempt) {
    Client probe = Connect();
    tracked = server_->tracked_session_threads();
    probe.Close();
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_LE(tracked, 3) << "finished session threads accumulate";
}

TEST_F(ServerTest, CalibrationPathRefusedWithoutConfiguredDir) {
  StartServer();
  Client c = Connect();
  EXPECT_FALSE(c.SetOption("calibration_path", "profile.json").ok());
  // The refusal is an option-level error; the session lives on.
  ASSERT_OK_AND_ASSIGN(ExecResult ok, c.Execute("SELECT * FROM weather;"));
  EXPECT_EQ(ok.rows, 4u);
}

TEST_F(ServerTest, CalibrationPathConfinedToConfiguredDir) {
  ServerOptions opts;
  opts.calibration_dir = ::testing::TempDir();
  StartServer(opts);
  const std::string name = "rma_server_session_profile.json";
  ASSERT_OK(CostProfile::Analytic().SaveFile(opts.calibration_dir + "/" +
                                             name));
  Client c = Connect();
  ASSERT_OK(c.SetOption("calibration_path", name));
  ASSERT_OK_AND_ASSIGN(ExecResult ok, c.Execute("SELECT * FROM m;"));
  EXPECT_EQ(ok.rows, 600u);

  // Anything but a bare file name inside the allowlist is refused: path
  // separators, traversal, hidden files, absolute paths.
  EXPECT_FALSE(c.SetOption("calibration_path", "../" + name).ok());
  EXPECT_FALSE(c.SetOption("calibration_path", "/etc/hostname").ok());
  EXPECT_FALSE(c.SetOption("calibration_path", "sub/" + name).ok());
  EXPECT_FALSE(c.SetOption("calibration_path", ".hidden.json").ok());
  EXPECT_FALSE(c.SetOption("calibration_path", "").ok());

  // A missing profile is an error, never a server-side probe-and-save —
  // the in-process LoadOrProbe lifecycle would have written this file.
  const std::string missing = "rma_server_no_such_profile.json";
  EXPECT_FALSE(c.SetOption("calibration_path", missing).ok());
  std::ifstream probe(opts.calibration_dir + "/" + missing);
  EXPECT_FALSE(probe.good())
      << "refused calibration_path still wrote a probe profile";
}

TEST_F(ServerTest, GracefulShutdownDrainsInFlightStatements) {
  StartServer();
  constexpr int kClients = 6;
  std::atomic<int> completed{0};
  std::atomic<int> refused{0};
  std::atomic<int> broken{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([this, &completed, &refused, &broken] {
      auto conn = Client::Connect("127.0.0.1", server_->port());
      if (!conn.ok()) {
        ++broken;
        return;
      }
      Client c = std::move(*conn);
      for (int round = 0; round < 10; ++round) {
        auto result = c.Execute("SELECT * FROM QQR(m BY id);");
        if (result.ok() && result->rows == 600) {
          ++completed;
        } else if (!result.ok() &&
                   result.status().code() == StatusCode::kResourceExhausted) {
          // Refused during drain: the documented outcome.
          ++refused;
          return;
        } else {
          // Connection torn down during shutdown; also a clean outcome.
          ++broken;
          return;
        }
      }
    });
  }
  // Let some statements land, then drain while others are still running.
  // (Bounded wait: Stop() below unsticks everything even if this times out.)
  for (int spin = 0; completed.load() < kClients && spin < 30000; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server_->Stop();
  for (auto& t : threads) t.join();
  // Every admitted statement either completed with its full result or was
  // explicitly refused/disconnected; nothing hangs.
  EXPECT_GE(completed.load(), kClients);
  const ServerStats stats = server_->stats();
  EXPECT_EQ(stats.statements_refused, refused.load());
}

}  // namespace
}  // namespace rma::server
