#include "server/wire.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "test_util.h"

namespace rma::server {
namespace {

using ::rma::testing::MakeRelation;

TEST(WireWriterReader, ScalarRoundTrip) {
  WireWriter w;
  w.PutU8(0xAB);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFULL);
  w.PutI64(-42);
  w.PutF64(3.25);
  w.PutString("hello");
  w.PutString("");

  WireReader r(w.str());
  ASSERT_OK_AND_ASSIGN(uint8_t u8, r.GetU8());
  EXPECT_EQ(u8, 0xAB);
  ASSERT_OK_AND_ASSIGN(uint32_t u32, r.GetU32());
  EXPECT_EQ(u32, 0xDEADBEEFu);
  ASSERT_OK_AND_ASSIGN(uint64_t u64, r.GetU64());
  EXPECT_EQ(u64, 0x0123456789ABCDEFULL);
  ASSERT_OK_AND_ASSIGN(int64_t i64, r.GetI64());
  EXPECT_EQ(i64, -42);
  ASSERT_OK_AND_ASSIGN(double f64, r.GetF64());
  EXPECT_EQ(f64, 3.25);
  ASSERT_OK_AND_ASSIGN(std::string s, r.GetString());
  EXPECT_EQ(s, "hello");
  ASSERT_OK_AND_ASSIGN(std::string empty, r.GetString());
  EXPECT_EQ(empty, "");
  EXPECT_TRUE(r.AtEnd());
}

TEST(WireWriterReader, LittleEndianLayout) {
  WireWriter w;
  w.PutU32(0x01020304);
  const std::string bytes = w.str();
  ASSERT_EQ(bytes.size(), 4u);
  EXPECT_EQ(static_cast<unsigned char>(bytes[0]), 0x04);
  EXPECT_EQ(static_cast<unsigned char>(bytes[3]), 0x01);
}

TEST(WireWriterReader, TruncatedReadsFail) {
  WireWriter w;
  w.PutU32(7);
  WireReader r(w.str());
  EXPECT_FALSE(r.GetU64().ok());  // only 4 bytes available

  WireWriter w2;
  w2.PutU32(100);  // string length prefix promising 100 bytes
  WireReader r2(w2.str());
  EXPECT_FALSE(r2.GetString().ok());
}

TEST(ResultHeader, RoundTrip) {
  const Relation rel = MakeRelation({{"id", DataType::kInt64},
                                     {"name", DataType::kString},
                                     {"score", DataType::kDouble}},
                                    {});
  ASSERT_OK_AND_ASSIGN(Schema schema,
                       DecodeResultHeader(EncodeResultHeader(rel.schema())));
  ASSERT_EQ(schema.num_attributes(), 3);
  EXPECT_EQ(schema.attribute(0).name, "id");
  EXPECT_EQ(schema.attribute(0).type, DataType::kInt64);
  EXPECT_EQ(schema.attribute(1).name, "name");
  EXPECT_EQ(schema.attribute(1).type, DataType::kString);
  EXPECT_EQ(schema.attribute(2).name, "score");
  EXPECT_EQ(schema.attribute(2).type, DataType::kDouble);
}

TEST(RowBatch, RoundTripAllTypes) {
  const Relation rel = MakeRelation(
      {{"id", DataType::kInt64},
       {"name", DataType::kString},
       {"score", DataType::kDouble}},
      {{int64_t{1}, std::string("ann"), 0.5},
       {int64_t{-7}, std::string(""), -2.25},
       {int64_t{1} << 40, std::string("a longer string value"), 1e300}});
  ASSERT_OK_AND_ASSIGN(
      Relation decoded,
      DecodeRowBatch(rel.schema(), EncodeRowBatch(rel, 0, rel.num_rows())));
  ASSERT_EQ(decoded.num_rows(), rel.num_rows());
  ASSERT_EQ(decoded.num_columns(), rel.num_columns());
  for (int64_t r = 0; r < rel.num_rows(); ++r) {
    for (int c = 0; c < rel.num_columns(); ++c) {
      EXPECT_EQ(decoded.Get(r, c), rel.Get(r, c)) << "row " << r << " col " << c;
    }
  }
}

TEST(RowBatch, SliceEncodesOnlyRequestedRows) {
  const Relation rel = MakeRelation({{"id", DataType::kInt64}},
                                    {{int64_t{10}}, {int64_t{20}},
                                     {int64_t{30}}, {int64_t{40}}});
  ASSERT_OK_AND_ASSIGN(Relation decoded,
                       DecodeRowBatch(rel.schema(), EncodeRowBatch(rel, 1, 2)));
  ASSERT_EQ(decoded.num_rows(), 2);
  EXPECT_EQ(decoded.Get(0, 0), Value(int64_t{20}));
  EXPECT_EQ(decoded.Get(1, 0), Value(int64_t{30}));
}

TEST(RowBatch, TrailingBytesRejected) {
  const Relation rel =
      MakeRelation({{"id", DataType::kInt64}}, {{int64_t{1}}});
  std::string payload = EncodeRowBatch(rel, 0, 1);
  payload.push_back('\0');
  EXPECT_FALSE(DecodeRowBatch(rel.schema(), payload).ok());
}

TEST(RowBatch, HostileRowCountRejectedBeforeAllocation) {
  // A tiny frame claiming 2^32-1 rows must fail as IoError, not attempt a
  // ~34 GB allocation sized by the untrusted count.
  for (const DataType type :
       {DataType::kInt64, DataType::kDouble, DataType::kString}) {
    const Relation rel = MakeRelation({{"c", type}}, {});
    WireWriter w;
    w.PutU32(0xFFFFFFFFu);
    w.PutI64(1);  // far too few payload bytes for the claimed count
    auto result = DecodeRowBatch(rel.schema(), w.str());
    ASSERT_FALSE(result.ok());
    EXPECT_TRUE(result.status().code() == StatusCode::kIoError)
        << result.status().ToString();
  }
}

TEST(ResultHeader, HostileColumnCountRejectedBeforeAllocation) {
  WireWriter w;
  w.PutU32(0xFFFFFFFFu);
  auto result = DecodeResultHeader(w.str());
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().code() == StatusCode::kIoError)
      << result.status().ToString();
}

TEST(ErrorFrame, StatusRoundTrip) {
  const Status original = Status::KeyError("unknown table: nope");
  const Status decoded = DecodeError(EncodeError(original));
  EXPECT_TRUE(decoded.code() == original.code());
  EXPECT_EQ(decoded.message(), original.message());
}

}  // namespace
}  // namespace rma::server
