#ifndef RMA_TESTS_TEST_UTIL_H_
#define RMA_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "storage/relation.h"
#include "util/random.h"

namespace rma::testing {

/// Builds a relation from a schema spec and rows of values. Aborts on
/// failure (test construction errors are programmer errors).
inline Relation MakeRelation(std::vector<Attribute> attrs,
                             std::vector<std::vector<Value>> rows,
                             std::string name = "r") {
  RelationBuilder b(Schema::Make(std::move(attrs)).ValueOrDie());
  for (auto& row : rows) {
    b.AppendRow(std::move(row)).Abort();
  }
  return b.Finish(std::move(name)).ValueOrDie();
}

/// The weather relation of Fig. 2/9: (T, H, W) with unsorted times.
inline Relation WeatherRelation() {
  return MakeRelation(
      {{"T", DataType::kString}, {"H", DataType::kDouble}, {"W", DataType::kDouble}},
      {{std::string("5am"), 1.0, 3.0},
       {std::string("8am"), 8.0, 5.0},
       {std::string("7am"), 6.0, 7.0},
       {std::string("6am"), 1.0, 4.0}},
      "r");
}

/// The example database of Fig. 5 (users, films, ratings).
inline Relation UsersRelation() {
  return MakeRelation({{"User", DataType::kString},
                       {"State", DataType::kString},
                       {"YoB", DataType::kInt64}},
                      {{std::string("Ann"), std::string("CA"), int64_t{1980}},
                       {std::string("Tom"), std::string("FL"), int64_t{1965}},
                       {std::string("Jan"), std::string("CA"), int64_t{1970}}},
                      "u");
}

inline Relation FilmsRelation() {
  return MakeRelation(
      {{"Title", DataType::kString},
       {"RelY", DataType::kInt64},
       {"Director", DataType::kString}},
      {{std::string("Heat"), int64_t{1995}, std::string("Lee")},
       {std::string("Balto"), int64_t{1995}, std::string("Lee")},
       {std::string("Net"), int64_t{1995}, std::string("Smith")}},
      "f");
}

inline Relation RatingsRelation() {
  return MakeRelation({{"User", DataType::kString},
                       {"Balto", DataType::kDouble},
                       {"Heat", DataType::kDouble},
                       {"Net", DataType::kDouble}},
                      {{std::string("Ann"), 2.0, 1.5, 0.5},
                       {std::string("Tom"), 0.0, 0.0, 1.5},
                       {std::string("Jan"), 1.0, 4.0, 1.0}},
                      "rating");
}

/// Random numeric relation: one INT key attribute "id" (a permutation of
/// 0..n-1, shuffled) plus `cols` DOUBLE attributes "a0","a1",...
inline Relation RandomKeyedRelation(int64_t n, int cols, Rng* rng,
                                    double lo = -10.0, double hi = 10.0,
                                    std::string name = "r") {
  std::vector<int64_t> ids(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) ids[static_cast<size_t>(i)] = i;
  std::shuffle(ids.begin(), ids.end(), rng->engine());
  std::vector<Attribute> attrs = {{"id", DataType::kInt64}};
  std::vector<BatPtr> colsv = {MakeInt64Bat(std::move(ids))};
  for (int c = 0; c < cols; ++c) {
    std::vector<double> v(static_cast<size_t>(n));
    for (auto& x : v) x = rng->Uniform(lo, hi);
    attrs.push_back(Attribute{"a" + std::to_string(c), DataType::kDouble});
    colsv.push_back(MakeDoubleBat(std::move(v)));
  }
  return Relation::Make(Schema::Make(std::move(attrs)).ValueOrDie(),
                        std::move(colsv), std::move(name))
      .ValueOrDie();
}

/// Gathers one double column of a relation.
inline std::vector<double> ColumnDoubles(const Relation& r,
                                         const std::string& name) {
  return ToDoubleVector(**r.ColumnByName(name));
}

#define ASSERT_OK(expr)                                    \
  do {                                                     \
    const ::rma::Status _st = (expr);                      \
    ASSERT_TRUE(_st.ok()) << _st.ToString();               \
  } while (0)

#define ASSERT_OK_AND_ASSIGN(lhs, expr)                    \
  auto RMA_CONCAT(_r_, __LINE__) = (expr);                 \
  ASSERT_TRUE(RMA_CONCAT(_r_, __LINE__).ok())              \
      << RMA_CONCAT(_r_, __LINE__).status().ToString();    \
  lhs = std::move(RMA_CONCAT(_r_, __LINE__)).ValueUnsafe();

#define EXPECT_STATUS(expected_code, expr)                            \
  do {                                                                \
    const auto& _res = (expr);                                        \
    EXPECT_FALSE(_res.ok());                                          \
    EXPECT_TRUE(::rma::StatusCode::expected_code == _res.status().code()) \
        << _res.status().ToString();                                  \
  } while (0)

}  // namespace rma::testing

#endif  // RMA_TESTS_TEST_UTIL_H_
