// Workload generators and CSV I/O.
#include <gtest/gtest.h>

#include <cstdio>

#include "rel/operators.h"
#include "storage/bat_ops.h"
#include "storage/sparse_bat.h"
#include "test_util.h"
#include "workload/bixi.h"
#include "workload/csv.h"
#include "workload/dblp.h"
#include "workload/synthetic.h"

namespace rma::workload {
namespace {

namespace rel = ::rma::rel;

TEST(Synthetic, UniformRelationShapeAndKeys) {
  const Relation r = UniformRelation(100, 3, 7);
  EXPECT_EQ(r.num_rows(), 100);
  EXPECT_EQ(r.num_columns(), 4);
  EXPECT_TRUE(bat_ops::IsKey({r.column(0)}));
  const Relation sorted = UniformRelation(50, 1, 7, 0, 1, true);
  EXPECT_TRUE(bat_ops::IsSorted({sorted.column(0)}));
}

TEST(Synthetic, DeterministicPerSeed) {
  const Relation a = UniformRelation(20, 2, 9);
  const Relation b = UniformRelation(20, 2, 9);
  EXPECT_TRUE(RelationsEqualOrdered(a, b));
}

TEST(Synthetic, ManyOrderColumnsSharedKeys) {
  const Relation r = ManyOrderColumnsRelation(50, 4, 1, 2);
  const Relation s = ManyOrderColumnsRelation(50, 4, 1, 3);
  EXPECT_EQ(r.num_columns(), 5);
  // Same keys (seeded identically), different values.
  std::vector<BatPtr> rk;
  std::vector<BatPtr> sk;
  for (int c = 0; c < 4; ++c) {
    rk.push_back(r.column(c));
    sk.push_back(s.column(c));
  }
  EXPECT_TRUE(bat_ops::AlignByKey(sk, rk).ok());
  EXPECT_TRUE(bat_ops::IsKey(rk));
}

TEST(Synthetic, SparseRelationZeroShare) {
  const Relation r = SparseRelation(2000, 2, 0.7, 5);
  const auto col = ToDoubleVector(*r.column(1));
  int64_t zeros = 0;
  for (double v : col) zeros += (v == 0.0);
  EXPECT_GT(zeros, 1200);
  EXPECT_LT(zeros, 1600);
  const Relation compressed = CompressRelation(r, 0.5);
  EXPECT_NE(nullptr, dynamic_cast<const SparseDoubleBat*>(
                         compressed.column(1).get()));
  // Contents unchanged.
  EXPECT_EQ(ToDoubleVector(*compressed.column(1)), col);
}

TEST(Bixi, SchemaAndDistributions) {
  const BixiData data = GenerateBixi(5000, 50, 3);
  EXPECT_EQ(data.stations.num_rows(), 50);
  EXPECT_EQ(data.trips.num_rows(), 5000);
  EXPECT_EQ(data.trips.schema().attribute(1).type, DataType::kString);
  // Some station pair must be popular enough for the >= 50 filter.
  const Relation agg =
      rel::Aggregate(data.trips, {"start_station", "end_station"},
                     {{"COUNT", "", "n"}})
          .ValueOrDie();
  int64_t popular = 0;
  for (int64_t i = 0; i < agg.num_rows(); ++i) {
    if (std::get<int64_t>(agg.Get(i, 2)) >= 50) ++popular;
  }
  EXPECT_GT(popular, 0);
  // Timestamps look like timestamps.
  const std::string ts = ValueToString(data.trips.Get(0, 1));
  EXPECT_EQ(ts.size(), 19u);
  EXPECT_EQ(ts[4], '-');
  EXPECT_EQ(ts[13], ':');
}

TEST(Bixi, JourneysPopularEdges) {
  const Relation j = GenerateJourneys(20000, 50, 4);
  EXPECT_EQ(j.num_columns(), 6);
  const Relation agg = rel::Aggregate(j, {"s1", "s2"}, {{"COUNT", "", "n"}})
                           .ValueOrDie();
  int64_t popular = 0;
  for (int64_t i = 0; i < agg.num_rows(); ++i) {
    if (std::get<int64_t>(agg.Get(i, 2)) >= 50) ++popular;
  }
  EXPECT_GT(popular, 10);           // the commuter edges
  EXPECT_LE(popular, agg.num_rows());
}

TEST(Bixi, JourneysChainMeetsInStation) {
  // Consecutive trips of one rider connect: s2 of seq j is s1 of seq j+1 —
  // the invariant the Fig. 16 chaining joins rely on.
  const Relation j = GenerateJourneys(1000, 50, 4);
  for (int64_t i = 0; i + 1 < j.num_rows(); ++i) {
    const int64_t rider = std::get<int64_t>(j.Get(i, 1));
    const int64_t rider_next = std::get<int64_t>(j.Get(i + 1, 1));
    if (rider != rider_next) continue;
    EXPECT_EQ(std::get<int64_t>(j.Get(i + 1, 2)),
              std::get<int64_t>(j.Get(i, 2)) + 1);
    EXPECT_EQ(std::get<int64_t>(j.Get(i + 1, 3)),
              std::get<int64_t>(j.Get(i, 4)));
  }
}

TEST(Bixi, TripCountsShape) {
  const Relation t = GenerateTripCounts(100, 10, 5);
  EXPECT_EQ(t.num_rows(), 100);
  EXPECT_EQ(t.num_columns(), 11);
  EXPECT_TRUE(bat_ops::IsKey({t.column(0)}));
}

TEST(Dblp, PublicationsAndRanking) {
  const DblpData data = GenerateDblp(500, 20, 6);
  EXPECT_EQ(data.publications.num_rows(), 500);
  EXPECT_EQ(data.publications.num_columns(), 21);
  EXPECT_EQ(data.ranking.num_rows(), 20);
  // Counts are non-negative and not all zero.
  double total = 0;
  for (int c = 1; c <= 20; ++c) {
    for (double v : ToDoubleVector(*data.publications.column(c))) {
      EXPECT_GE(v, 0.0);
      total += v;
    }
  }
  EXPECT_GT(total, 0.0);
}

TEST(Dblp, PublicationListPivots) {
  const Relation list = GeneratePublicationList(300, 40, 8, 7);
  const Relation wide =
      rel::PivotCount(list, "Author", "Conf").ValueOrDie();
  EXPECT_LE(wide.num_rows(), 40);
  EXPECT_LE(wide.num_columns(), 9);
  // Total count preserved.
  double total = 0;
  for (int c = 1; c < wide.num_columns(); ++c) {
    for (double v : ToDoubleVector(*wide.column(c))) total += v;
  }
  EXPECT_EQ(total, 300.0);
}

TEST(Csv, RoundTrip) {
  const Relation r = testing::UsersRelation();
  const std::string path = "/tmp/rma_test_roundtrip.csv";
  ASSERT_OK(WriteCsv(r, path));
  const Relation back = ReadCsv(path, r.schema()).ValueOrDie();
  EXPECT_TRUE(RelationsEqualOrdered(r, back));
  std::remove(path.c_str());
}

TEST(Csv, QuotingHandled) {
  RelationBuilder b(Schema::Make({{"s", DataType::kString},
                                  {"v", DataType::kInt64}})
                        .ValueOrDie());
  b.AppendRow({std::string("a,b"), int64_t{1}}).Abort();
  b.AppendRow({std::string("quote\"inside"), int64_t{2}}).Abort();
  const Relation r = b.Finish().ValueOrDie();
  const std::string path = "/tmp/rma_test_quoting.csv";
  ASSERT_OK(WriteCsv(r, path));
  const Relation back = ReadCsv(path, r.schema()).ValueOrDie();
  EXPECT_TRUE(RelationsEqualOrdered(r, back));
  std::remove(path.c_str());
}

TEST(Csv, Errors) {
  EXPECT_STATUS(kIoError, ReadCsv("/nonexistent/file.csv",
                                  Schema::Make({{"a", DataType::kInt64}})
                                      .ValueOrDie()));
  const Relation r = testing::UsersRelation();
  const std::string path = "/tmp/rma_test_schema.csv";
  ASSERT_OK(WriteCsv(r, path));
  EXPECT_STATUS(kInvalidArgument,
                ReadCsv(path, Schema::Make({{"x", DataType::kInt64}})
                                  .ValueOrDie()));
  std::remove(path.c_str());
}

TEST(Csv, ParseErrorsCite1BasedLineNumbers) {
  const std::string path = "/tmp/rma_test_lines.csv";
  const Schema schema =
      Schema::Make({{"a", DataType::kInt64}, {"b", DataType::kDouble}})
          .ValueOrDie();
  {
    // Header is physical line 1; the arity error sits on line 4.
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("a,b\n1,2.5\n2,3.5\n3\n", f);
    std::fclose(f);
    const auto r = ReadCsv(path, schema);
    EXPECT_STATUS(kParseError, r);
    EXPECT_NE(r.status().message().find("line 4"), std::string::npos)
        << r.status().ToString();
  }
  {
    // Unparseable numeric cell names the line and the column.
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("a,b\n1,2.5\nnope,3.5\n", f);
    std::fclose(f);
    const auto r = ReadCsv(path, schema);
    EXPECT_STATUS(kParseError, r);
    EXPECT_NE(r.status().message().find("line 3"), std::string::npos)
        << r.status().ToString();
    EXPECT_NE(r.status().message().find("column 'a'"), std::string::npos)
        << r.status().ToString();
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rma::workload
