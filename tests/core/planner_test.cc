// Planner, execution-context, and staged-pipeline tests: kernel choice per
// shape and policy, prepared-argument cache reuse, and golden equivalence of
// the pipeline's paths (cached vs uncached, BAT vs contiguous, shared vs
// fresh contexts).
#include <gtest/gtest.h>

#include "core/algebra.h"
#include "core/exec_context.h"
#include "core/planner.h"
#include "core/rma.h"
#include "matrix/parallel.h"
#include "storage/sparse_bat.h"
#include "test_util.h"

namespace rma {
namespace {

using testing::MakeRelation;
using testing::RandomKeyedRelation;

ArgShape Shape(int64_t rows, int64_t cols, double density = 1.0) {
  ArgShape s;
  s.rows = rows;
  s.cols = cols;
  s.density = density;
  return s;
}

// --- kernel choice per shape and policy -------------------------------------

TEST(PlannerTest, WideCpdDelegatesToContiguous) {
  // Fig. 17b: cpd over wide relations is exactly where delegation pays off
  // 24-70x — the planner must pick the dense kernel.
  RmaOptions opts;
  const ArgShape a = Shape(100000, 50);
  const ArgShape b = Shape(100000, 50);
  const OpPlan plan = PlanOp(MatrixOp::kCpd, opts, a, &b);
  EXPECT_EQ(plan.kernel, KernelChoice::kDense);
  EXPECT_GT(plan.cost_bat, plan.cost_dense);
}

TEST(PlannerTest, SelfCrossProductUsesSyrk) {
  RmaOptions opts;
  const ArgShape a = Shape(100000, 50);
  const OpPlan plan = PlanOp(MatrixOp::kCpd, opts, a, &a, /*self_cross=*/true);
  EXPECT_EQ(plan.kernel, KernelChoice::kDenseSyrk);
}

TEST(PlannerTest, ElementwiseStaysOnBats) {
  RmaOptions opts;
  const ArgShape a = Shape(1000000, 10);
  const OpPlan add = PlanOp(MatrixOp::kAdd, opts, a, &a);
  EXPECT_EQ(add.kernel, KernelChoice::kBat);
  const OpPlan emu = PlanOp(MatrixOp::kEmu, opts, a, &a);
  EXPECT_EQ(emu.kernel, KernelChoice::kBat);
}

TEST(PlannerTest, SparseInputLowersBatCost) {
  RmaOptions opts;
  const ArgShape dense_in = Shape(1000000, 10, 1.0);
  const ArgShape sparse_in = Shape(1000000, 10, 0.05);
  const OpPlan d = PlanOp(MatrixOp::kAdd, opts, dense_in, &dense_in);
  const OpPlan s = PlanOp(MatrixOp::kAdd, opts, sparse_in, &sparse_in);
  EXPECT_EQ(s.kernel, KernelChoice::kBat);
  EXPECT_LT(s.cost_bat, d.cost_bat / 10);
}

TEST(PlannerTest, OverBudgetComplexOpFallsBackToBat) {
  RmaOptions opts;
  opts.contiguous_budget_bytes = 1;
  const OpPlan plan = PlanOp(MatrixOp::kQqr, opts, Shape(1000, 8), nullptr);
  EXPECT_TRUE(plan.over_budget);
  EXPECT_EQ(plan.kernel, KernelChoice::kBat);
}

TEST(PlannerTest, ComplexOpWithinBudgetDelegates) {
  RmaOptions opts;
  const OpPlan qqr = PlanOp(MatrixOp::kQqr, opts, Shape(1000, 8), nullptr);
  EXPECT_EQ(qqr.kernel, KernelChoice::kDense);
  const OpPlan inv = PlanOp(MatrixOp::kInv, opts, Shape(64, 64), nullptr);
  EXPECT_EQ(inv.kernel, KernelChoice::kDense);
}

TEST(PlannerTest, PolicyOverridesCostModel) {
  RmaOptions bat;
  bat.kernel = KernelPolicy::kBat;
  EXPECT_EQ(PlanOp(MatrixOp::kCpd, bat, Shape(1000, 50), nullptr).kernel,
            KernelChoice::kBat);
  RmaOptions contiguous;
  contiguous.kernel = KernelPolicy::kContiguous;
  EXPECT_EQ(PlanOp(MatrixOp::kAdd, contiguous, Shape(1000, 4), nullptr).kernel,
            KernelChoice::kDense);
}

TEST(PlannerTest, NoBatKernelAlwaysRunsDense) {
  // svd/eigen have no column-at-a-time algorithm: even KernelPolicy::kBat
  // falls through to the contiguous kernels.
  RmaOptions bat;
  bat.kernel = KernelPolicy::kBat;
  EXPECT_EQ(PlanOp(MatrixOp::kEvc, bat, Shape(64, 64), nullptr).kernel,
            KernelChoice::kDense);
}

TEST(PlannerTest, StageListsMatchKernelChoice) {
  RmaOptions opts;
  const ArgShape a = Shape(1000, 4);
  const OpPlan add = PlanOp(MatrixOp::kAdd, opts, a, &a);
  EXPECT_EQ(add.stages, (std::vector<Stage>{Stage::kPrepare, Stage::kKernel,
                                            Stage::kMorph}));
  const OpPlan qqr = PlanOp(MatrixOp::kQqr, opts, Shape(1000, 8), nullptr);
  EXPECT_EQ(qqr.stages,
            (std::vector<Stage>{Stage::kPrepare, Stage::kGather, Stage::kKernel,
                                Stage::kScatter, Stage::kMorph}));
  EXPECT_NE(qqr.DebugString().find("kernel=dense"), std::string::npos);
}

// --- prepared-argument cache -------------------------------------------------

TEST(ExecContextTest, SecondOpOnSameRelationSkipsSort) {
  Rng rng(7);
  const Relation r = RandomKeyedRelation(4000, 6, &rng);
  RmaOptions opts;  // SortPolicy::kAlways: every prepare sorts
  ExecContext ctx(opts);

  RmaStats first;
  ctx.mutable_options().stats = &first;
  ASSERT_OK(RmaUnary(&ctx, MatrixOp::kQqr, r, {"id"}).status());
  EXPECT_GT(first.sort_seconds, 0.0);

  RmaStats second;
  ctx.mutable_options().stats = &second;
  ASSERT_OK(RmaUnary(&ctx, MatrixOp::kRqr, r, {"id"}).status());
  EXPECT_EQ(second.sort_seconds, 0.0);  // permutation reused, no re-sort
  EXPECT_EQ(ctx.cache_hits(), 1);
}

TEST(ExecContextTest, CacheRespectsOrderSchema) {
  Rng rng(8);
  Relation r = RandomKeyedRelation(500, 3, &rng);
  // A second key column so two different order schemas exist.
  ASSERT_OK_AND_ASSIGN(r, r.RenameColumn(1, "id2"));
  ExecContext ctx{RmaOptions{}};
  ASSERT_OK(RmaUnary(&ctx, MatrixOp::kQqr, r, {"id"}).status());
  ASSERT_OK(RmaUnary(&ctx, MatrixOp::kQqr, r, {"id2"}).status());
  EXPECT_EQ(ctx.cache_hits(), 0);  // different order schema: no reuse
  ASSERT_OK(RmaUnary(&ctx, MatrixOp::kQqr, r, {"id"}).status());
  EXPECT_EQ(ctx.cache_hits(), 1);
}

TEST(ExecContextTest, CacheCanBeDisabled) {
  Rng rng(9);
  const Relation r = RandomKeyedRelation(500, 3, &rng);
  RmaOptions opts;
  opts.enable_prepared_cache = false;
  ExecContext ctx(opts);
  ASSERT_OK(RmaUnary(&ctx, MatrixOp::kQqr, r, {"id"}).status());
  ASSERT_OK(RmaUnary(&ctx, MatrixOp::kQqr, r, {"id"}).status());
  EXPECT_EQ(ctx.cache_hits(), 0);
}

TEST(ExecContextTest, PlansAreRecorded) {
  Rng rng(10);
  const Relation r = RandomKeyedRelation(100, 4, &rng);
  ExecContext ctx{RmaOptions{}};
  ASSERT_OK(RmaUnary(&ctx, MatrixOp::kQqr, r, {"id"}).status());
  ASSERT_EQ(ctx.plans().size(), 1u);
  EXPECT_EQ(ctx.plans()[0].op, MatrixOp::kQqr);
  EXPECT_EQ(ctx.plans()[0].kernel, KernelChoice::kDense);
  EXPECT_GT(ctx.totals().TotalSeconds(), 0.0);
}

// --- golden equivalence across pipeline paths --------------------------------

/// Runs `op` on `r` under every (kernel policy, cache on/off, shared/fresh
/// context) combination and checks all results are the same relation.
void ExpectAllPathsAgree(MatrixOp op, const Relation& r,
                         const std::vector<std::string>& order) {
  RmaOptions base;
  ASSERT_OK_AND_ASSIGN(const Relation reference, RmaUnary(op, r, order, base));

  for (KernelPolicy policy : {KernelPolicy::kAuto, KernelPolicy::kBat,
                              KernelPolicy::kContiguous}) {
    for (bool cache : {true, false}) {
      RmaOptions opts;
      opts.kernel = policy;
      opts.enable_prepared_cache = cache;
      ExecContext ctx(opts);
      // Twice on one context: the second run exercises the cached prepare.
      ASSERT_OK_AND_ASSIGN(const Relation once, RmaUnary(&ctx, op, r, order));
      ASSERT_OK_AND_ASSIGN(const Relation twice, RmaUnary(&ctx, op, r, order));
      EXPECT_TRUE(RelationsEqualUnordered(reference, once, 1e-6))
          << GetOpInfo(op).name << " diverged (policy "
          << static_cast<int>(policy) << ", cache " << cache << ")";
      EXPECT_TRUE(RelationsEqualUnordered(once, twice, 1e-9))
          << GetOpInfo(op).name << " not reproducible on a shared context";
    }
  }
}

TEST(PipelineGoldenTest, UnaryOpsAgreeAcrossPaths) {
  Rng rng(11);
  const Relation tall = RandomKeyedRelation(60, 5, &rng);
  ExpectAllPathsAgree(MatrixOp::kQqr, tall, {"id"});
  ExpectAllPathsAgree(MatrixOp::kRqr, tall, {"id"});
  const Relation square = RandomKeyedRelation(6, 6, &rng);
  ExpectAllPathsAgree(MatrixOp::kInv, square, {"id"});
  ExpectAllPathsAgree(MatrixOp::kDet, square, {"id"});
  ExpectAllPathsAgree(MatrixOp::kTra, tall, {"id"});
}

TEST(PipelineGoldenTest, BinaryOpsAgreeAcrossPaths) {
  Rng rng(12);
  const Relation r = RandomKeyedRelation(80, 4, &rng);
  Relation s = RandomKeyedRelation(80, 4, &rng, -10, 10, "s");
  ASSERT_OK_AND_ASSIGN(s, s.RenameColumn(0, "id2"));

  RmaOptions base;
  for (MatrixOp op : {MatrixOp::kAdd, MatrixOp::kSub, MatrixOp::kEmu,
                      MatrixOp::kCpd}) {
    ASSERT_OK_AND_ASSIGN(const Relation reference,
                         RmaBinary(op, r, {"id"}, s, {"id2"}, base));
    for (KernelPolicy policy : {KernelPolicy::kAuto, KernelPolicy::kBat,
                                KernelPolicy::kContiguous}) {
      RmaOptions opts;
      opts.kernel = policy;
      ExecContext ctx(opts);
      ASSERT_OK_AND_ASSIGN(const Relation got,
                           RmaBinary(&ctx, op, r, {"id"}, s, {"id2"}));
      EXPECT_TRUE(RelationsEqualUnordered(reference, got, 1e-6))
          << GetOpInfo(op).name << " diverged under policy "
          << static_cast<int>(policy);
    }
  }
}

TEST(PipelineGoldenTest, ExpressionSharedContextMatchesDirectCalls) {
  // The covariance shape: cpd(x, x) via the rewritten mmu(tra(x), x) on one
  // shared context must equal the direct two-call evaluation.
  Rng rng(13);
  const Relation x = RandomKeyedRelation(50, 4, &rng, -5, 5, "x");
  auto leaf = RmaExpr::Leaf(x);
  auto tra = RmaExpr::Unary(MatrixOp::kTra, leaf, {"id"});
  auto mmu = RmaExpr::Binary(MatrixOp::kMmu, tra, {kContextAttrName}, leaf,
                             {"id"});
  RmaOptions opts;
  ASSERT_OK_AND_ASSIGN(const Relation rewritten,
                       EvaluateOptimized(mmu, opts, nullptr));
  RmaOptions no_rewrites;
  no_rewrites.rewrites.enabled = false;
  ASSERT_OK_AND_ASSIGN(const Relation plain,
                       EvaluateOptimized(mmu, no_rewrites, nullptr));
  EXPECT_TRUE(RelationsEqualUnordered(rewritten, plain, 1e-6));
}

// --- expression planning (EXPLAIN backend) -----------------------------------

TEST(PlanExpressionTest, RendersKernelsStagesAndCacheReuse) {
  Rng rng(14);
  const Relation x = RandomKeyedRelation(100, 6, &rng, -5, 5, "x");
  auto leaf = RmaExpr::Leaf(x);
  auto cpd = RmaExpr::Binary(MatrixOp::kCpd, leaf, {"id"}, leaf, {"id"});
  RmaOptions opts;
  RewriteReport report;
  ASSERT_OK_AND_ASSIGN(PlanNodePtr plan, PlanExpression(cpd, opts, &report));
  const std::string text = RenderPlan(plan);
  EXPECT_NE(text.find("cpd"), std::string::npos);
  EXPECT_NE(text.find("kernel=dense-syrk"), std::string::npos);
  EXPECT_NE(text.find("prepare cached"), std::string::npos) << text;
  EXPECT_NE(text.find("scan x"), std::string::npos);
}

TEST(PlanExpressionTest, ShapePropagationThroughNestedOps) {
  Rng rng(15);
  const Relation x = RandomKeyedRelation(40, 3, &rng, -5, 5, "x");
  auto qqr = RmaExpr::Unary(MatrixOp::kQqr, RmaExpr::Leaf(x), {"id"});
  RmaOptions opts;
  ASSERT_OK_AND_ASSIGN(PlanNodePtr plan, PlanExpression(qqr, opts, nullptr));
  EXPECT_EQ(plan->out_shape.rows, 40);
  EXPECT_EQ(plan->out_shape.cols, 3);
}

// --- thread-budget plumbing --------------------------------------------------

TEST(ThreadBudgetTest, ScopedBudgetInstallsAndRestores) {
  EXPECT_EQ(CurrentThreadBudget(), 0);
  {
    ScopedThreadBudget budget(2);
    EXPECT_EQ(CurrentThreadBudget(), 2);
    {
      ScopedThreadBudget inner(5);
      EXPECT_EQ(CurrentThreadBudget(), 5);
    }
    EXPECT_EQ(CurrentThreadBudget(), 2);
  }
  EXPECT_EQ(CurrentThreadBudget(), 0);
}

TEST(ThreadBudgetTest, SingleThreadBudgetMatchesDefault) {
  Rng rng(16);
  const Relation r = RandomKeyedRelation(300, 6, &rng);
  RmaOptions single;
  single.max_threads = 1;
  ASSERT_OK_AND_ASSIGN(const Relation a, Qqr(r, {"id"}, single));
  ASSERT_OK_AND_ASSIGN(const Relation b, Qqr(r, {"id"}));
  EXPECT_TRUE(RelationsEqualUnordered(a, b, 1e-9));
}

TEST(PlannerTest, ShapeOfReportsSparsity) {
  std::vector<double> dense_vals = {1.0, 0.0, 0.0, 0.0};
  auto sparse = SparseDoubleBat::FromDense(dense_vals);
  const Relation r =
      Relation::Make(
          Schema::Make({{"id", DataType::kInt64}, {"v", DataType::kDouble}})
              .ValueOrDie(),
          {MakeInt64Bat({0, 1, 2, 3}), sparse}, "r")
          .ValueOrDie();
  ASSERT_OK_AND_ASSIGN(const ArgShape shape, ShapeOf(r, {"id"}));
  EXPECT_EQ(shape.rows, 4);
  EXPECT_EQ(shape.cols, 1);
  EXPECT_NEAR(shape.density, 0.25, 1e-12);
}

}  // namespace
}  // namespace rma
