// The calibration subsystem: cost-profile JSON round-trips, planner kernel
// choices flipping under synthetic profiles, EWMA refinement from measured
// stats, corrupt/missing-file fallback, and plan-cache interaction
// (fingerprint invalidation on a materially changed profile).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "core/calibration.h"
#include "core/exec_context.h"
#include "core/planner.h"
#include "core/query_cache.h"
#include "core/rma.h"
#include "sql/database.h"
#include "test_util.h"

namespace rma {
namespace {

using testing::RandomKeyedRelation;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

ArgShape Shape(int64_t rows, int64_t cols) {
  ArgShape s;
  s.rows = rows;
  s.cols = cols;
  return s;
}

/// A profile that inverts the analytic ordering: the BAT families are nearly
/// free while the contiguous path (gather/flop/scatter) is exorbitant.
CostProfilePtr BatAlwaysWinsProfile() {
  auto p = std::make_shared<CostProfile>(CostProfile::Analytic());
  for (CostKernel k : {CostKernel::kBatStream, CostKernel::kBatAxpy,
                       CostKernel::kBatDecomp, CostKernel::kBatTranspose,
                       CostKernel::kBatFetch}) {
    p->Set(k, {1e-6, 0.0, CostSource::kProbed, 0});
  }
  for (CostKernel k :
       {CostKernel::kDenseFlop, CostKernel::kGather, CostKernel::kScatter}) {
    p->Set(k, {1e3, 0.0, CostSource::kProbed, 0});
  }
  return p;
}

/// The mirror image: BAT work is exorbitant, the contiguous path nearly free.
CostProfilePtr DenseAlwaysWinsProfile() {
  auto p = std::make_shared<CostProfile>(CostProfile::Analytic());
  for (CostKernel k : {CostKernel::kBatStream, CostKernel::kBatAxpy,
                       CostKernel::kBatDecomp, CostKernel::kBatTranspose,
                       CostKernel::kBatFetch}) {
    p->Set(k, {1e3, 0.0, CostSource::kProbed, 0});
  }
  for (CostKernel k :
       {CostKernel::kDenseFlop, CostKernel::kGather, CostKernel::kScatter}) {
    p->Set(k, {1e-6, 0.0, CostSource::kProbed, 0});
  }
  return p;
}

// --- JSON round-trip ----------------------------------------------------------

TEST(CostProfileJsonTest, RoundTripsThroughJson) {
  CostProfile profile = CostProfile::Analytic();
  profile.Set(CostKernel::kBatFetch, {3.25e-9, 1.5e-7, CostSource::kProbed, 0});
  profile.Set(CostKernel::kDenseFlop, {7.5e-10, 0.0, CostSource::kRefined, 12});
  ASSERT_OK_AND_ASSIGN(const CostProfile parsed,
                       CostProfile::FromJson(profile.ToJson()));
  const KernelCost fetch = parsed.Get(CostKernel::kBatFetch);
  EXPECT_DOUBLE_EQ(fetch.per_element, 3.25e-9);
  EXPECT_DOUBLE_EQ(fetch.fixed, 1.5e-7);
  EXPECT_EQ(fetch.source, CostSource::kProbed);
  const KernelCost flop = parsed.Get(CostKernel::kDenseFlop);
  EXPECT_EQ(flop.source, CostSource::kRefined);
  EXPECT_EQ(flop.refinements, 12);
  // Untouched entries keep the analytic constants.
  EXPECT_DOUBLE_EQ(parsed.Get(CostKernel::kBatAxpy).per_element, 1.5);
  // A parsed profile accepts refinement (it is a real measurement basis).
  EXPECT_TRUE(parsed.refinable());
}

TEST(CostProfileJsonTest, RoundTripsThroughFile) {
  const std::string path = TempPath("calibration_roundtrip.json");
  CostProfile profile = CostProfile::Analytic();
  profile.Set(CostKernel::kSort, {9.9e-9, 2e-6, CostSource::kProbed, 0});
  ASSERT_OK(profile.SaveFile(path));
  ASSERT_OK_AND_ASSIGN(const CostProfile loaded,
                       CostProfile::LoadFile(path));
  EXPECT_DOUBLE_EQ(loaded.Get(CostKernel::kSort).per_element, 9.9e-9);
  EXPECT_EQ(loaded.Fingerprint(), profile.Fingerprint());
  std::remove(path.c_str());
}

TEST(CostProfileJsonTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(CostProfile::FromJson("").ok());
  EXPECT_FALSE(CostProfile::FromJson("not json at all").ok());
  EXPECT_FALSE(CostProfile::FromJson("{\"version\": 1}").ok());  // no kernels
  EXPECT_FALSE(CostProfile::FromJson("{\"version\": 99, \"kernels\": {}}")
                   .ok());
  // Non-positive rates are rejected (a zero rate would break cost ratios).
  EXPECT_FALSE(
      CostProfile::FromJson(
          "{\"version\": 1, \"kernels\": {\"sort\": "
          "{\"per_element\": 0, \"fixed\": 0}}}")
          .ok());
}

TEST(CostProfileJsonTest, IgnoresUnknownKernelNames) {
  // Forward compatibility: newer files may name families this binary does
  // not know; they parse and are skipped.
  ASSERT_OK_AND_ASSIGN(
      const CostProfile parsed,
      CostProfile::FromJson(
          "{\"version\": 1, \"kernels\": {\"warp_shuffle\": "
          "{\"per_element\": 1e-9, \"fixed\": 0}}}"));
  EXPECT_DOUBLE_EQ(parsed.Get(CostKernel::kBatStream).per_element, 1.0);
}

// --- planner integration ------------------------------------------------------

TEST(CalibratedPlannerTest, SyntheticProfileFlipsKernelChoice) {
  // cpd over a wide shape delegates to dense under the analytic model; a
  // profile where BUNfetch is nearly free and the contiguous path exorbitant
  // must flip it to the column-at-a-time kernel — and vice versa for an
  // element-wise op that analytically stays on BATs.
  const ArgShape wide = Shape(100000, 50);
  RmaOptions opts;
  const OpPlan analytic = PlanOp(MatrixOp::kCpd, opts, wide, &wide);
  ASSERT_EQ(analytic.kernel, KernelChoice::kDense);
  EXPECT_EQ(analytic.cost_source, CostSource::kAnalytic);

  opts.cost_profile = BatAlwaysWinsProfile();
  const OpPlan flipped = PlanOp(MatrixOp::kCpd, opts, wide, &wide);
  EXPECT_EQ(flipped.kernel, KernelChoice::kBat);
  EXPECT_LT(flipped.cost_bat, flipped.cost_dense);
  EXPECT_EQ(flipped.cost_source, CostSource::kProbed);

  const ArgShape tall = Shape(1000000, 10);
  RmaOptions dense_opts;
  ASSERT_EQ(PlanOp(MatrixOp::kAdd, dense_opts, tall, &tall).kernel,
            KernelChoice::kBat);
  dense_opts.cost_profile = DenseAlwaysWinsProfile();
  EXPECT_EQ(PlanOp(MatrixOp::kAdd, dense_opts, tall, &tall).kernel,
            KernelChoice::kDense);
}

TEST(CalibratedPlannerTest, OverBudgetCeilingStillBeatsTheProfile) {
  // The memory ceiling is a hard constraint, not a cost: even a profile
  // that makes the contiguous path free must not gather past the budget.
  RmaOptions opts;
  opts.cost_profile = DenseAlwaysWinsProfile();
  opts.contiguous_budget_bytes = 1;
  const OpPlan plan = PlanOp(MatrixOp::kQqr, opts, Shape(1000, 8), nullptr);
  EXPECT_TRUE(plan.over_budget);
  EXPECT_EQ(plan.kernel, KernelChoice::kBat);
}

TEST(CalibratedPlannerTest, ExplainShowsTheFlippedKernelAndProvenance) {
  // Acceptance: with a synthetic inverted profile, EXPLAIN over SQL provably
  // selects the other kernel family and names the model that priced it.
  sql::Database db;
  db.Register("rating", rma::testing::RatingsRelation()).Abort();
  const std::string q =
      "EXPLAIN SELECT * FROM CPD(rating BY User, rating BY User)";

  auto analytic = db.Execute(q);
  ASSERT_TRUE(analytic.ok()) << analytic.status().ToString();
  std::string text;
  for (int64_t i = 0; i < analytic->num_rows(); ++i) {
    text += analytic->column(0)->GetString(i) + "\n";
  }
  EXPECT_NE(text.find("cpd kernel=dense"), std::string::npos) << text;
  EXPECT_NE(text.find("cost-model=analytic"), std::string::npos) << text;

  db.rma_options.cost_profile = BatAlwaysWinsProfile();
  auto flipped = db.Execute(q);
  ASSERT_TRUE(flipped.ok()) << flipped.status().ToString();
  text.clear();
  for (int64_t i = 0; i < flipped->num_rows(); ++i) {
    text += flipped->column(0)->GetString(i) + "\n";
  }
  EXPECT_NE(text.find("cpd kernel=bat"), std::string::npos) << text;
  EXPECT_NE(text.find("cost-model=probed"), std::string::npos) << text;
}

// --- probes -------------------------------------------------------------------

TEST(ProbeTest, ProducesPositiveRefinableCosts) {
  ProbeOptions small;
  small.small_elements = 1 << 10;
  small.large_elements = 1 << 13;
  small.repetitions = 1;
  const CostProfile probed = ProbeCostProfile(small);
  EXPECT_TRUE(probed.refinable());
  EXPECT_EQ(probed.Source(), CostSource::kProbed);
  for (int i = 0; i < kNumCostKernels; ++i) {
    const KernelCost c = probed.Get(static_cast<CostKernel>(i));
    EXPECT_GT(c.per_element, 0) << CostKernelName(static_cast<CostKernel>(i));
    EXPECT_GE(c.fixed, 0);
    EXPECT_EQ(c.source, CostSource::kProbed);
  }
}

// --- piecewise (cache-breakpoint) cost model ----------------------------------

KernelCost PiecewiseCost() {
  KernelCost c{1e-9, 0.0, CostSource::kProbed, 0};
  c.breakpoints = {1 << 10, 1 << 16};       // l2 / l3 regime upper bounds
  c.rates = {1e-9, 2e-9, 8e-9};             // l2, l3, dram per-element rates
  return c;
}

TEST(PiecewiseCostTest, RegimeSelectionAndRates) {
  const KernelCost c = PiecewiseCost();
  EXPECT_EQ(c.NumRegimes(), 3);
  EXPECT_EQ(c.RegimeOf(0), 0);
  EXPECT_EQ(c.RegimeOf(1 << 10), 0);        // boundary is inclusive
  EXPECT_EQ(c.RegimeOf((1 << 10) + 1), 1);
  EXPECT_EQ(c.RegimeOf(1 << 16), 1);
  EXPECT_EQ(c.RegimeOf(1e12), 2);           // last regime is unbounded
  EXPECT_DOUBLE_EQ(c.RateFor(100), 1e-9);
  EXPECT_DOUBLE_EQ(c.RateFor(1 << 14), 2e-9);
  EXPECT_DOUBLE_EQ(c.RateFor(1e12), 8e-9);
  // A legacy single-rate entry stays linear.
  const KernelCost linear{5e-9, 1e-7, CostSource::kProbed, 0};
  EXPECT_EQ(linear.NumRegimes(), 1);
  EXPECT_DOUBLE_EQ(linear.RateFor(1e12), 5e-9);
}

TEST(PiecewiseCostTest, ProfileCostUsesTheContainingRegime) {
  CostProfile p = CostProfile::Analytic();
  p.Set(CostKernel::kDenseFlop, PiecewiseCost());
  EXPECT_DOUBLE_EQ(p.Cost(CostKernel::kDenseFlop, 100), 100 * 1e-9);
  EXPECT_DOUBLE_EQ(p.Cost(CostKernel::kDenseFlop, 1 << 14),
                   (1 << 14) * 2e-9);
  EXPECT_DOUBLE_EQ(p.Cost(CostKernel::kDenseFlop, 1e8), 1e8 * 8e-9);
  EXPECT_EQ(p.MaxRegimes(), 3);
  EXPECT_EQ(CostProfile::Analytic().MaxRegimes(), 1);
}

TEST(PiecewiseCostTest, RegimeLabels) {
  EXPECT_EQ(CostRegimeLabel(0, 1), "linear");
  EXPECT_EQ(CostRegimeLabel(0, 3), "l2");
  EXPECT_EQ(CostRegimeLabel(1, 3), "l3");
  EXPECT_EQ(CostRegimeLabel(2, 3), "dram");
  EXPECT_EQ(CostRegimeLabel(1, 2), "r1");  // non-canonical count: positional
}

TEST(PiecewiseCostTest, RefineMovesOnlyTheContainingRegime) {
  auto p = std::make_shared<CostProfile>(CostProfile::Analytic());
  p->Set(CostKernel::kDenseFlop, PiecewiseCost());
  p->set_refinable(true);
  // An observation inside the middle (l3) regime: only rates[1] moves.
  const double elements = 1 << 14;
  p->Refine(CostKernel::kDenseFlop, elements, elements * 1e-8);
  const KernelCost c = p->Get(CostKernel::kDenseFlop);
  EXPECT_DOUBLE_EQ(c.rates[0], 1e-9);
  EXPECT_DOUBLE_EQ(c.rates[2], 8e-9);
  const double expected = (1.0 - CostProfile::kRefineAlpha) * 2e-9 +
                          CostProfile::kRefineAlpha * 1e-8;
  EXPECT_NEAR(c.rates[1], expected, expected * 1e-9);
  // per_element mirrors regime 0, which did not move.
  EXPECT_DOUBLE_EQ(c.per_element, 1e-9);

  // An observation inside regime 0 keeps per_element in sync. 1024 sits at
  // the regime-0 boundary (inclusive) and at the refinement element floor.
  p->Refine(CostKernel::kDenseFlop, 1024, 1024 * 4e-9);
  const KernelCost c2 = p->Get(CostKernel::kDenseFlop);
  EXPECT_GT(c2.rates[0], 1e-9);
  EXPECT_DOUBLE_EQ(c2.per_element, c2.rates[0]);
}

TEST(PiecewiseCostTest, JsonV2RoundTripsBreakpointsAndRates) {
  CostProfile profile = CostProfile::Analytic();
  profile.Set(CostKernel::kDenseFlop, PiecewiseCost());
  const std::string json = profile.ToJson();
  EXPECT_NE(json.find("\"version\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"simd\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"breakpoints\""), std::string::npos) << json;
  ASSERT_OK_AND_ASSIGN(const CostProfile parsed,
                       CostProfile::FromJson(json));
  const KernelCost c = parsed.Get(CostKernel::kDenseFlop);
  ASSERT_EQ(c.NumRegimes(), 3);
  EXPECT_EQ(c.breakpoints, PiecewiseCost().breakpoints);
  EXPECT_DOUBLE_EQ(c.rates[1], 2e-9);
  EXPECT_EQ(parsed.Fingerprint(), profile.Fingerprint());
}

TEST(PiecewiseCostTest, RejectsInconsistentPiecewiseDocuments) {
  const std::string prefix = "{\"version\": 2, \"kernels\": {\"dense_flop\": ";
  // breakpoints.size() must be rates.size() - 1.
  EXPECT_FALSE(CostProfile::FromJson(
                   prefix + "{\"per_element\": 1e-9, \"fixed\": 0, "
                            "\"breakpoints\": [100, 200], "
                            "\"rates\": [1e-9, 2e-9]}}}")
                   .ok());
  // Breakpoints must be strictly ascending and positive.
  EXPECT_FALSE(CostProfile::FromJson(
                   prefix + "{\"per_element\": 1e-9, \"fixed\": 0, "
                            "\"breakpoints\": [200, 100], "
                            "\"rates\": [1e-9, 2e-9, 3e-9]}}}")
                   .ok());
  // Breakpoints without rates make no sense.
  EXPECT_FALSE(CostProfile::FromJson(
                   prefix + "{\"per_element\": 1e-9, \"fixed\": 0, "
                            "\"breakpoints\": [100]}}}")
                   .ok());
  // A non-positive regime rate is as broken as a non-positive per_element.
  EXPECT_FALSE(CostProfile::FromJson(
                   prefix + "{\"per_element\": 1e-9, \"fixed\": 0, "
                            "\"breakpoints\": [100], "
                            "\"rates\": [1e-9, 0]}}}")
                   .ok());
}

TEST(PiecewiseCostTest, ProbeWithBreakpointsYieldsMonotonicRegimeRates) {
  ProbeOptions opts;
  opts.small_elements = 1 << 10;
  opts.large_elements = 1 << 13;
  opts.repetitions = 1;
  opts.cache_breakpoints = true;
  opts.max_probe_elements = 1 << 16;  // keep the deep-regime probes fast
  const CostProfile probed = ProbeCostProfile(opts);
  const CacheSizes caches = DetectCacheSizes();
  EXPECT_GT(caches.l2_bytes, 0);
  EXPECT_GT(caches.l3_bytes, caches.l2_bytes);
  for (int i = 0; i < kNumCostKernels; ++i) {
    const KernelCost c = probed.Get(static_cast<CostKernel>(i));
    ASSERT_GE(c.NumRegimes(), 1);
    if (c.rates.empty()) continue;
    EXPECT_DOUBLE_EQ(c.per_element, c.rates[0]);
    for (size_t r = 1; r < c.rates.size(); ++r) {
      // Deeper memory is never priced cheaper: noise must not teach the
      // planner to prefer DRAM-sized working sets.
      EXPECT_GE(c.rates[r], c.rates[r - 1])
          << CostKernelName(static_cast<CostKernel>(i)) << " regime " << r;
    }
  }
  // Disabling breakpoints restores the legacy single-rate shape.
  opts.cache_breakpoints = false;
  const CostProfile flat = ProbeCostProfile(opts);
  EXPECT_EQ(flat.MaxRegimes(), 1);
}

TEST(PiecewiseCostTest, RegimeRateShiftChangesTheFingerprint) {
  auto p = std::make_shared<CostProfile>(CostProfile::Analytic());
  p->Set(CostKernel::kDenseFlop, PiecewiseCost());
  const uint64_t before = p->Fingerprint();
  KernelCost shifted = PiecewiseCost();
  shifted.rates[2] *= 4.0;  // dram regime repriced; regime 0 untouched
  p->Set(CostKernel::kDenseFlop, shifted);
  EXPECT_NE(p->Fingerprint(), before);
}

// --- refinement ---------------------------------------------------------------

TEST(RefineTest, MeasuredStatsOverrideProbeValues) {
  auto profile = std::make_shared<CostProfile>(CostProfile::Analytic());
  profile->Set(CostKernel::kDenseFlop, {1e-9, 0.0, CostSource::kProbed, 0});
  profile->set_refinable(true);
  // Observed throughput is 10x slower than the probe said: the EWMA must
  // move toward it and mark the entry refined.
  profile->Refine(CostKernel::kDenseFlop, 1e6, 1e-2);
  const KernelCost c = profile->Get(CostKernel::kDenseFlop);
  EXPECT_EQ(c.source, CostSource::kRefined);
  EXPECT_EQ(c.refinements, 1);
  EXPECT_GT(c.per_element, 1e-9);
  const double expected = (1.0 - CostProfile::kRefineAlpha) * 1e-9 +
                          CostProfile::kRefineAlpha * (1e-2 / 1e6);
  EXPECT_NEAR(c.per_element, expected, expected * 1e-9);
}

TEST(RefineTest, NonRefinableProfileIgnoresObservations) {
  CostProfile analytic = CostProfile::Analytic();
  analytic.Refine(CostKernel::kDenseFlop, 1e6, 123.0);
  EXPECT_EQ(analytic.Get(CostKernel::kDenseFlop).refinements, 0);
  EXPECT_EQ(analytic.Source(), CostSource::kAnalytic);
}

TEST(RefineTest, TinyObservationsAreDiscarded) {
  auto profile = BatAlwaysWinsProfile();
  profile->set_refinable(true);
  profile->Refine(CostKernel::kSort, 10, 1e-3);   // under the element floor
  profile->Refine(CostKernel::kSort, 1e6, 0.0);   // no measurable time
  EXPECT_EQ(profile->Get(CostKernel::kSort).refinements, 0);
}

TEST(RefineTest, ExecutionFeedsMeasuredStatsIntoTheProfile) {
  // Close the loop end-to-end: run a real operation with a refinable profile
  // attached and watch the measured stage seconds land in it.
  Rng rng(21);
  const Relation r = RandomKeyedRelation(4000, 6, &rng);
  auto profile = std::make_shared<CostProfile>(CostProfile::Analytic());
  profile->set_refinable(true);
  RmaOptions opts;
  opts.cost_profile = profile;
  ExecContext ctx(opts);
  ASSERT_OK(RmaUnary(&ctx, MatrixOp::kQqr, r, {"id"}).status());
  // qqr delegates to the dense kernel: flops = 2nk^2 >> the element floor,
  // so the kernel stage must have refined kDenseFlop (and the copies their
  // families, sizes permitting).
  EXPECT_GT(profile->Get(CostKernel::kDenseFlop).refinements, 0);
  EXPECT_EQ(profile->Get(CostKernel::kDenseFlop).source, CostSource::kRefined);
  EXPECT_EQ(profile->Source(), CostSource::kRefined);

  // Refinement must not apply when the options opt out.
  auto frozen = std::make_shared<CostProfile>(CostProfile::Analytic());
  frozen->set_refinable(true);
  RmaOptions no_refine;
  no_refine.cost_profile = frozen;
  no_refine.refine_cost_profile = false;
  ExecContext ctx2(no_refine);
  ASSERT_OK(RmaUnary(&ctx2, MatrixOp::kQqr, r, {"id"}).status());
  EXPECT_EQ(frozen->Get(CostKernel::kDenseFlop).refinements, 0);
}

// --- corrupt / missing files --------------------------------------------------

TEST(CalibrationFileTest, MissingFileIsAnIoErrorNotACrash) {
  const auto result = CostProfile::LoadFile(TempPath("does_not_exist.json"));
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIoError());
}

TEST(CalibrationFileTest, CorruptFileFallsBackToAnalyticConstants) {
  const std::string path = TempPath("corrupt_calibration.json");
  {
    std::ofstream f(path);
    f << "{\"version\": 1, \"kernels\": {\"bat_stream\": GARBAGE";
  }
  // Resolution through options must warn (stderr) and serve the analytic
  // constants — same plans as an uncalibrated run, and no crash.
  RmaOptions opts;
  opts.calibration_path = path;
  const CostProfilePtr resolved = ResolveCostProfile(opts);
  ASSERT_NE(resolved, nullptr);
  EXPECT_EQ(resolved->Source(), CostSource::kAnalytic);
  EXPECT_FALSE(resolved->refinable());
  EXPECT_DOUBLE_EQ(resolved->Get(CostKernel::kBatFetch).per_element, 12.0);
  // The planner keeps working on top of the fallback.
  const OpPlan plan =
      PlanOp(MatrixOp::kCpd, opts, Shape(100000, 50), nullptr);
  EXPECT_EQ(plan.kernel, KernelChoice::kDense);
  std::remove(path.c_str());
}

TEST(CalibrationFileTest, MissingPathProbesOnceAndSaves) {
  const std::string path = TempPath("probe_once_calibration.json");
  std::remove(path.c_str());
  RmaOptions opts;
  opts.calibration_path = path;
  const CostProfilePtr first = ResolveCostProfile(opts);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->Source(), CostSource::kProbed);
  // The probe result was persisted for the next process...
  std::ifstream f(path);
  EXPECT_TRUE(f.good());
  // ...and re-resolution within this process is memoized (same instance,
  // no second probe pass).
  EXPECT_EQ(ResolveCostProfile(opts).get(), first.get());
  std::remove(path.c_str());
}

// --- resolution & plan-cache interaction --------------------------------------

TEST(ResolveCostProfileTest, ExplicitProfileWinsOverPathAndDefault) {
  auto explicit_profile = BatAlwaysWinsProfile();
  RmaOptions opts;
  opts.cost_profile = explicit_profile;
  opts.calibration_path = TempPath("never_touched.json");
  EXPECT_EQ(ResolveCostProfile(opts).get(), explicit_profile.get());
  std::ifstream f(opts.calibration_path);
  EXPECT_FALSE(f.good());  // the path was not consulted, let alone written
}

TEST(ResolveCostProfileTest, DefaultIsAnalyticAndStable) {
  RmaOptions opts;
  const CostProfilePtr a = ResolveCostProfile(opts);
  EXPECT_EQ(a.get(), ResolveCostProfile(opts).get());
  EXPECT_FALSE(a->refinable());
}

TEST(CostProfileFingerprintTest, MaterialShiftChangesFingerprintJitterDoesNot) {
  auto p = std::make_shared<CostProfile>(CostProfile::Analytic());
  const uint64_t before = p->Fingerprint();
  // ~2% jitter: quantized away.
  p->Set(CostKernel::kDenseFlop, {1.02, 0.0, CostSource::kRefined, 1});
  EXPECT_EQ(p->Fingerprint(), before);
  // 4x shift: a different model.
  p->Set(CostKernel::kDenseFlop, {4.0, 0.0, CostSource::kRefined, 2});
  EXPECT_NE(p->Fingerprint(), before);
}

TEST(CostProfileFingerprintTest, ChangedProfileInvalidatesCachedPlans) {
  RmaOptions a;
  RmaOptions b;
  b.cost_profile = BatAlwaysWinsProfile();
  // Different pricing must produce a different plan-cache fingerprint: a
  // plan recorded under the analytic model cannot serve the flipped one.
  EXPECT_NE(QueryCache::OptionsFingerprint(a),
            QueryCache::OptionsFingerprint(b));
}

}  // namespace
}  // namespace rma
