// Matrix/relation constructors and casts (Sec. 3-4).
#include <gtest/gtest.h>

#include "core/constructors.h"
#include "storage/bat_ops.h"
#include "test_util.h"

namespace rma {
namespace {

using testing::MakeRelation;
using testing::WeatherRelation;

TEST(Constructors, SplitSchemaPartitionsAttributes) {
  const Relation r = WeatherRelation();
  const OrderSplit split = SplitSchema(r, {"T"}).ValueOrDie();
  EXPECT_EQ(split.order_idx, (std::vector<int>{0}));
  EXPECT_EQ(split.app_idx, (std::vector<int>{1, 2}));
  // Multi-attribute order schema, given order preserved.
  const OrderSplit split2 = SplitSchema(r, {"W", "T"}).ValueOrDie();
  EXPECT_EQ(split2.order_idx, (std::vector<int>{2, 0}));
  EXPECT_EQ(split2.app_idx, (std::vector<int>{1}));
}

TEST(Constructors, SplitSchemaRejectsNonNumericApplication) {
  const Relation r = MakeRelation(
      {{"k", DataType::kInt64}, {"s", DataType::kString}},
      {{int64_t{1}, std::string("x")}});
  EXPECT_STATUS(kTypeError, SplitSchema(r, {"k"}));
  EXPECT_STATUS(kKeyError, SplitSchema(r, {"nope"}));
}

TEST(Constructors, MatrixConstructorSortsByOrderSchema) {
  // Example 4.3 / Fig. 3: µ_T over the filtered weather relation.
  const Relation r = MakeRelation(
      {{"T", DataType::kString}, {"H", DataType::kDouble}, {"W", DataType::kDouble}},
      {{std::string("8am"), 8.0, 5.0}, {std::string("7am"), 6.0, 7.0}});
  const DenseMatrix m = MatrixConstructor(r, {"T"}).ValueOrDie();
  ASSERT_EQ(m.rows(), 2);
  ASSERT_EQ(m.cols(), 2);
  EXPECT_EQ(m(0, 0), 6.0);  // 7am row first
  EXPECT_EQ(m(0, 1), 7.0);
  EXPECT_EQ(m(1, 0), 8.0);
  EXPECT_EQ(m(1, 1), 5.0);
}

TEST(Constructors, MatrixConstructorChecksKey) {
  const Relation dup = MakeRelation(
      {{"k", DataType::kInt64}, {"x", DataType::kDouble}},
      {{int64_t{1}, 1.0}, {int64_t{1}, 2.0}});
  EXPECT_STATUS(kInvalidArgument, MatrixConstructor(dup, {"k"}));
  EXPECT_STATUS(kInvalidArgument, MatrixConstructor(dup, {}));
}

TEST(Constructors, RelationConstructorRoundTrip) {
  DenseMatrix m(2, 2);
  m(0, 0) = 1;
  m(0, 1) = 2;
  m(1, 0) = 3;
  m(1, 1) = 4;
  const Schema schema = Schema::Make({{"x", DataType::kDouble},
                                      {"y", DataType::kDouble}})
                            .ValueOrDie();
  const Relation r = RelationConstructor(m, schema, "g").ValueOrDie();
  EXPECT_EQ(r.name(), "g");
  EXPECT_EQ(r.num_rows(), 2);
  EXPECT_EQ(ValueToDouble(r.Get(1, 0)), 3.0);
  EXPECT_STATUS(kInvalidArgument,
                RelationConstructor(m, Schema::Make({{"x", DataType::kDouble}})
                                           .ValueOrDie()));
}

TEST(Constructors, SchemaCastReturnsNames) {
  const Relation r = WeatherRelation();
  EXPECT_EQ(SchemaCast(r.schema(), {1, 2}),
            (std::vector<std::string>{"H", "W"}));
  EXPECT_EQ(SchemaCast(r.schema(), {2, 0}),
            (std::vector<std::string>{"W", "T"}));
}

TEST(Constructors, ColumnCastStringifiesSortedValues) {
  const Relation r = WeatherRelation();
  const std::vector<int64_t> perm = bat_ops::ArgSort({r.column(0)});
  EXPECT_EQ(ColumnCast(r, 0, perm).ValueOrDie(),
            (std::vector<std::string>{"5am", "6am", "7am", "8am"}));
  // Numeric values render without a decimal point (FormatDouble).
  const Relation n = MakeRelation({{"k", DataType::kDouble}},
                                  {{2.0}, {1.0}, {1.5}});
  const std::vector<int64_t> perm2 = bat_ops::ArgSort({n.column(0)});
  EXPECT_EQ(ColumnCast(n, 0, perm2).ValueOrDie(),
            (std::vector<std::string>{"1", "1.5", "2"}));
}

}  // namespace
}  // namespace rma
