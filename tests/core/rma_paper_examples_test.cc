// Golden tests: every worked example in the paper, end to end.
#include <gtest/gtest.h>

#include <cmath>

#include "core/rma.h"
#include "rel/operators.h"
#include "test_util.h"

namespace rma {
namespace {

using testing::ColumnDoubles;
using testing::MakeRelation;
using testing::WeatherRelation;

// Fig. 3: v = inv_T(σ_{T>6am}(r)). The selection keeps 8am and 7am; the
// result is sorted by T and holds the inverse of [[6,7],[8,5]].
TEST(PaperExamples, Figure3Inversion) {
  const Relation r = MakeRelation(
      {{"T", DataType::kString}, {"H", DataType::kDouble}, {"W", DataType::kDouble}},
      {{std::string("8am"), 8.0, 5.0}, {std::string("7am"), 6.0, 7.0}});
  ASSERT_OK_AND_ASSIGN(const Relation v, Inv(r, {"T"}));
  ASSERT_EQ(v.num_rows(), 2);
  EXPECT_EQ(v.schema().Names(), (std::vector<std::string>{"T", "H", "W"}));
  // Rows sorted by T: 7am first.
  EXPECT_EQ(ValueToString(v.Get(0, 0)), "7am");
  EXPECT_EQ(ValueToString(v.Get(1, 0)), "8am");
  // inv([[6,7],[8,5]]) = 1/(30-56) * [[5,-7],[-8,6]] = [[-0.1923, 0.2692],
  // [0.3077, -0.2308]].
  EXPECT_NEAR(ValueToDouble(v.Get(0, 1)), -5.0 / 26.0, 1e-12);
  EXPECT_NEAR(ValueToDouble(v.Get(0, 2)), 7.0 / 26.0, 1e-12);
  EXPECT_NEAR(ValueToDouble(v.Get(1, 1)), 8.0 / 26.0, 1e-12);
  EXPECT_NEAR(ValueToDouble(v.Get(1, 2)), -6.0 / 26.0, 1e-12);
}

// The matrix-consistency requirement on Fig. 3: reducing the result with the
// result order schema yields INV of the reduced input.
TEST(PaperExamples, Figure3MatrixConsistency) {
  const Relation r = MakeRelation(
      {{"T", DataType::kString}, {"H", DataType::kDouble}, {"W", DataType::kDouble}},
      {{std::string("8am"), 8.0, 5.0}, {std::string("7am"), 6.0, 7.0}});
  ASSERT_OK_AND_ASSIGN(const Relation v, Inv(r, {"T"}));
  // Multiplying the result matrix by the input matrix gives the identity.
  ASSERT_OK_AND_ASSIGN(const Relation id, Mmu(v, {"T"}, r, {"T"}));
  EXPECT_NEAR(ValueToDouble(id.Get(0, 1)), 1.0, 1e-12);
  EXPECT_NEAR(ValueToDouble(id.Get(0, 2)), 0.0, 1e-12);
  EXPECT_NEAR(ValueToDouble(id.Get(1, 1)), 0.0, 1e-12);
  EXPECT_NEAR(ValueToDouble(id.Get(1, 2)), 1.0, 1e-12);
}

// Fig. 4b: tra_T(r) — transpose with the column cast of T as result schema
// and attribute C holding the application schema names.
TEST(PaperExamples, Figure4Transpose) {
  ASSERT_OK_AND_ASSIGN(const Relation t, Tra(WeatherRelation(), {"T"}));
  EXPECT_EQ(t.schema().Names(),
            (std::vector<std::string>{"C", "5am", "6am", "7am", "8am"}));
  ASSERT_EQ(t.num_rows(), 2);
  EXPECT_EQ(ValueToString(t.Get(0, 0)), "H");
  EXPECT_EQ(ValueToString(t.Get(1, 0)), "W");
  // Row H: 1 1 6 8 ; row W: 3 4 7 5 (sorted by time).
  EXPECT_EQ(ColumnDoubles(t, "5am"), (std::vector<double>{1, 3}));
  EXPECT_EQ(ColumnDoubles(t, "6am"), (std::vector<double>{1, 4}));
  EXPECT_EQ(ColumnDoubles(t, "7am"), (std::vector<double>{6, 7}));
  EXPECT_EQ(ColumnDoubles(t, "8am"), (std::vector<double>{8, 5}));
}

// Fig. 4a: qqr_T(r) keeps the order part and the application schema.
TEST(PaperExamples, Figure4QqrShape) {
  ASSERT_OK_AND_ASSIGN(const Relation q, Qqr(WeatherRelation(), {"T"}));
  EXPECT_EQ(q.schema().Names(), (std::vector<std::string>{"T", "H", "W"}));
  ASSERT_EQ(q.num_rows(), 4);
  // Rows sorted by T.
  EXPECT_EQ(ValueToString(q.Get(0, 0)), "5am");
  EXPECT_EQ(ValueToString(q.Get(3, 0)), "8am");
  // Columns of Q are orthonormal.
  const std::vector<double> h = ColumnDoubles(q, "H");
  const std::vector<double> w = ColumnDoubles(q, "W");
  double hh = 0;
  double hw = 0;
  double ww = 0;
  for (size_t i = 0; i < h.size(); ++i) {
    hh += h[i] * h[i];
    hw += h[i] * w[i];
    ww += w[i] * w[i];
  }
  EXPECT_NEAR(hh, 1.0, 1e-12);
  EXPECT_NEAR(ww, 1.0, 1e-12);
  EXPECT_NEAR(hw, 0.0, 1e-12);
}

// Fig. 8: rqr_T(r) — matrix consistency of the R factor. The paper reports
// R = [[-10.1, -8.8], [0, -4.6]] (sign convention differs; magnitudes and
// the QR property are what matter).
TEST(PaperExamples, Figure8Rqr) {
  ASSERT_OK_AND_ASSIGN(const Relation rr, Rqr(WeatherRelation(), {"T"}));
  EXPECT_EQ(rr.schema().Names(), (std::vector<std::string>{"C", "H", "W"}));
  ASSERT_EQ(rr.num_rows(), 2);
  EXPECT_EQ(ValueToString(rr.Get(0, 0)), "H");
  EXPECT_EQ(ValueToString(rr.Get(1, 0)), "W");
  // |r11| = ||(1,1,6,8)|| = sqrt(102) ≈ 10.0995, r21 = 0.
  EXPECT_NEAR(std::fabs(ValueToDouble(rr.Get(0, 1))), std::sqrt(102.0), 1e-9);
  EXPECT_NEAR(ValueToDouble(rr.Get(1, 1)), 0.0, 1e-12);
  // R reconstructs the input Gram matrix: RᵀR = AᵀA.
  const double r11 = ValueToDouble(rr.Get(0, 1));
  const double r12 = ValueToDouble(rr.Get(0, 2));
  const double r22 = ValueToDouble(rr.Get(1, 2));
  EXPECT_NEAR(r11 * r12, 1 * 3 + 1 * 4 + 6 * 7 + 8 * 5, 1e-9);  // (AᵀA)₁₂
  EXPECT_NEAR(r12 * r12 + r22 * r22, 9 + 16 + 49 + 25, 1e-9);   // (AᵀA)₂₂
}

// Fig. 9 (p1): rnk over the application part of π_{H,W}(r) ordered by H...
// the paper projects to (H, W) and uses H as order schema, giving a 4x1
// matrix of rank 1, with origins C='r', column 'rnk'.
TEST(PaperExamples, Figure9Rank) {
  const Relation r = MakeRelation(
      {{"H", DataType::kDouble}, {"W", DataType::kDouble}},
      {{1.0, 3.0}, {8.0, 5.0}, {6.0, 7.0}, {2.0, 4.0}});
  ASSERT_OK_AND_ASSIGN(const Relation p1, Rnk(r, {"H"}));
  EXPECT_EQ(p1.schema().Names(), (std::vector<std::string>{"C", "rnk"}));
  ASSERT_EQ(p1.num_rows(), 1);
  EXPECT_EQ(ValueToString(p1.Get(0, 0)), "r");
  EXPECT_NEAR(ValueToDouble(p1.Get(0, 1)), 1.0, 1e-12);
}

// Fig. 9 (p2): usv_T(r) — full U is 4x4; columns are named by the sorted
// times (column cast), rows carry the order part.
TEST(PaperExamples, Figure9Usv) {
  ASSERT_OK_AND_ASSIGN(const Relation p2, Usv(WeatherRelation(), {"T"}));
  EXPECT_EQ(p2.schema().Names(),
            (std::vector<std::string>{"T", "5am", "6am", "7am", "8am"}));
  ASSERT_EQ(p2.num_rows(), 4);
  for (int64_t i = 0; i < 4; ++i) {
    // U is orthogonal: rows have unit norm.
    double s = 0;
    for (int c = 1; c <= 4; ++c) {
      const double v = ValueToDouble(p2.Get(i, c));
      s += v * v;
    }
    EXPECT_NEAR(s, 1.0, 1e-9);
  }
}

// Fig. 9 (p3): qqr with a two-attribute order schema (W, T).
TEST(PaperExamples, Figure9QqrTwoOrderAttrs) {
  ASSERT_OK_AND_ASSIGN(const Relation p3, Qqr(WeatherRelation(), {"W", "T"}));
  EXPECT_EQ(p3.schema().Names(), (std::vector<std::string>{"W", "T", "H"}));
  ASSERT_EQ(p3.num_rows(), 4);
  // Sorted by (W, T): 3,4,5,7 -> times 5am, 6am, 8am, 7am.
  EXPECT_EQ(ValueToString(p3.Get(0, 1)), "5am");
  EXPECT_EQ(ValueToString(p3.Get(1, 1)), "6am");
  EXPECT_EQ(ValueToString(p3.Get(2, 1)), "8am");
  EXPECT_EQ(ValueToString(p3.Get(3, 1)), "7am");
}

// Fig. 10: tra_C(tra_T(r)) restores the original relation contents with
// schema (C, H, W) and rows sorted by time.
TEST(PaperExamples, Figure10DoubleTranspose) {
  ASSERT_OK_AND_ASSIGN(const Relation r1, Tra(WeatherRelation(), {"T"}));
  ASSERT_OK_AND_ASSIGN(const Relation r2, Tra(r1, {"C"}));
  EXPECT_EQ(r2.schema().Names(), (std::vector<std::string>{"C", "H", "W"}));
  ASSERT_EQ(r2.num_rows(), 4);
  const std::vector<std::string> times = {"5am", "6am", "7am", "8am"};
  const std::vector<double> h = {1, 1, 6, 8};
  const std::vector<double> w = {3, 4, 7, 5};
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(ValueToString(r2.Get(i, 0)), times[static_cast<size_t>(i)]);
    EXPECT_EQ(ValueToDouble(r2.Get(i, 1)), h[static_cast<size_t>(i)]);
    EXPECT_EQ(ValueToDouble(r2.Get(i, 2)), w[static_cast<size_t>(i)]);
  }
}

// Sec. 5 / Fig. 6+7: the full covariance workload over the example database
// (w1..w8), mixing relational and matrix operations.
TEST(PaperExamples, Section5CovarianceWorkload) {
  const Relation u = testing::UsersRelation();
  const Relation f = testing::FilmsRelation();
  const Relation r = testing::RatingsRelation();

  // w1 = π_{U,B,H,N}(σ_{S='CA'}(u ⋈ r))
  ASSERT_OK_AND_ASSIGN(Relation joined,
                       rel::HashJoin(u, r, {"User"}, {"User"}));
  ASSERT_OK_AND_ASSIGN(
      Relation ca,
      rel::Select(joined, rel::Expr::Binary("=", rel::Expr::Column("State"),
                                            rel::Expr::LiteralString("CA"))));
  ASSERT_OK_AND_ASSIGN(Relation w1, rel::ProjectNames(
                                        ca, {"User", "Balto", "Heat", "Net"}));
  ASSERT_EQ(w1.num_rows(), 2);  // Ann and Jan

  // w2 = ϑ_{AVG(B),AVG(H),AVG(N)}(w1)
  ASSERT_OK_AND_ASSIGN(Relation w2,
                       rel::Aggregate(w1, {},
                                      {{"AVG", "Balto", "Balto"},
                                       {"AVG", "Heat", "Heat"},
                                       {"AVG", "Net", "Net"}}));
  EXPECT_NEAR(ValueToDouble(w2.Get(0, 0)), 1.5, 1e-12);   // avg(2,1)
  EXPECT_NEAR(ValueToDouble(w2.Get(0, 1)), 2.75, 1e-12);  // avg(1.5,4)
  EXPECT_NEAR(ValueToDouble(w2.Get(0, 2)), 0.75, 1e-12);  // avg(.5,1)

  // w3 = π(sub_{U;V}(w1, ρ_V(π_U(w1)) × w2))
  ASSERT_OK_AND_ASSIGN(Relation users_only, rel::ProjectNames(w1, {"User"}));
  ASSERT_OK_AND_ASSIGN(Relation v_users, rel::Rename(users_only, "User", "V"));
  ASSERT_OK_AND_ASSIGN(Relation means, rel::CrossJoin(v_users, w2));
  ASSERT_OK_AND_ASSIGN(Relation w3_full, Sub(w1, {"User"}, means, {"V"}));
  ASSERT_OK_AND_ASSIGN(
      Relation w3,
      rel::ProjectNames(w3_full, {"User", "Balto", "Heat", "Net"}));
  // Fig. 7: w3 = (Ann: -1.25 .5 .25 / Jan: 1.25? ...) — paper's w3 holds
  // centered ratings: Ann Balto 2-1.5=0.5 ... (the figure's exact numbers
  // differ from 2.0-1.5; verify centering algebraically instead).
  ASSERT_EQ(w3.num_rows(), 2);
  for (int c = 1; c <= 3; ++c) {
    const double sum =
        ValueToDouble(w3.Get(0, c)) + ValueToDouble(w3.Get(1, c));
    EXPECT_NEAR(sum, 0.0, 1e-12);  // centered columns sum to zero
  }

  // w4 = tra_U(w3); w5 = mmu_{C;U}(w4, w3)
  ASSERT_OK_AND_ASSIGN(Relation w4, Tra(w3, {"User"}));
  EXPECT_EQ(w4.schema().Names(), (std::vector<std::string>{"C", "Ann", "Jan"}));
  ASSERT_OK_AND_ASSIGN(Relation w5, Mmu(w4, {"C"}, w3, {"User"}));
  EXPECT_EQ(w5.schema().Names(),
            (std::vector<std::string>{"C", "Balto", "Heat", "Net"}));

  // w6/w7: scale by 1/(M-1) with M = COUNT(*) = 2.
  ASSERT_OK_AND_ASSIGN(Relation cnt,
                       rel::Aggregate(w1, {}, {{"COUNT", "", "M"}}));
  const double m = ValueToDouble(cnt.Get(0, 0));
  ASSERT_EQ(m, 2.0);
  std::vector<rel::ProjectItem> items = {{rel::Expr::Column("C"), "C"}};
  for (const std::string col : {"Balto", "Heat", "Net"}) {
    items.push_back({rel::Expr::Binary("/", rel::Expr::Column(col),
                                       rel::Expr::LiteralDouble(m - 1)),
                     col});
  }
  ASSERT_OK_AND_ASSIGN(Relation w7, rel::Project(w5, items));

  // Covariance of the CA ratings: var(Balto) = (0.5² + (-0.5)²)/1 = 0.5,
  // cov(Balto, Heat) = (0.5·(-1.25) + (-0.5)(1.25))/1 = -1.25.
  ASSERT_EQ(w7.num_rows(), 3);
  EXPECT_EQ(ValueToString(w7.Get(0, 0)), "Balto");
  EXPECT_NEAR(ValueToDouble(w7.Get(0, 1)), 0.5, 1e-12);
  EXPECT_NEAR(ValueToDouble(w7.Get(0, 2)), -1.25, 1e-12);

  // w8 = π(σ_{D='Lee'}(w7 ⋈_{C=Title} f))
  ASSERT_OK_AND_ASSIGN(Relation w8_join,
                       rel::HashJoin(w7, f, {"C"}, {"Title"}));
  ASSERT_OK_AND_ASSIGN(
      Relation w8_sel,
      rel::Select(w8_join,
                  rel::Expr::Binary("=", rel::Expr::Column("Director"),
                                    rel::Expr::LiteralString("Lee"))));
  ASSERT_OK_AND_ASSIGN(Relation w8, rel::ProjectNames(
                                        w8_sel, {"Title", "Balto", "Heat", "Net"}));
  EXPECT_EQ(w8.num_rows(), 2);  // Heat and Balto are Lee's films
}

}  // namespace
}  // namespace rma
