// Tests for the cross-algebra rewriter (core/algebra.h): rule firing
// conditions, semantic equivalence of rewritten plans, the double-transpose
// closed form, and the SQL integration.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/algebra.h"
#include "core/rma.h"
#include "sql/database.h"
#include "test_util.h"
#include "util/random.h"

namespace rma {
namespace {

using testing::MakeRelation;
using testing::RandomKeyedRelation;
using testing::RatingsRelation;
using testing::WeatherRelation;

RmaOptions NoRewrites() {
  RmaOptions opts;
  opts.rewrites.enabled = false;
  return opts;
}

/// Evaluates `expr` twice — rewrites off and on — and requires identical
/// relations (schema + multiset of tuples).
void ExpectRewriteEquivalent(const RmaExprPtr& expr, int expected_fired) {
  ASSERT_OK_AND_ASSIGN(Relation plain, EvaluateExpression(expr, NoRewrites()));
  RewriteReport report;
  ASSERT_OK_AND_ASSIGN(Relation optimized,
                       EvaluateOptimized(expr, RmaOptions{}, &report));
  EXPECT_EQ(report.fired(), expected_fired);
  EXPECT_TRUE(RelationsEqualUnordered(plain, optimized))
      << "plain:\n"
      << plain.ToString() << "optimized:\n"
      << optimized.ToString();
}

// --- rule firing ------------------------------------------------------------

TEST(AlgebraRewrite, MmuOfTraBecomesCpd) {
  auto x = RmaExpr::Leaf(RatingsRelation());
  auto expr = RmaExpr::Binary(
      MatrixOp::kMmu, RmaExpr::Unary(MatrixOp::kTra, x, {"User"}), {"C"}, x,
      {"User"});
  RewriteReport report;
  RmaExprPtr rewritten = RewriteExpression(expr, RewriteRules{}, &report);
  ASSERT_EQ(report.fired(), 1);
  EXPECT_EQ(report.applied[0], "mmu_tra_to_cpd");
  ASSERT_EQ(rewritten->kind, RmaExpr::Kind::kOp);
  EXPECT_EQ(rewritten->op, MatrixOp::kCpd);
  EXPECT_EQ(rewritten->orders[0], (std::vector<std::string>{"User"}));
  EXPECT_EQ(rewritten->orders[1], (std::vector<std::string>{"User"}));
}

TEST(AlgebraRewrite, MmuOuterOrderMustBeContextAttribute) {
  // BY something ≠ C: the outer µ is not the transpose of the inner matrix.
  auto x = RmaExpr::Leaf(RatingsRelation());
  auto tra = RmaExpr::Unary(MatrixOp::kTra, x, {"User"});
  auto expr = RmaExpr::Binary(MatrixOp::kMmu, tra, {"Ann"}, x, {"User"});
  RewriteReport report;
  RewriteExpression(expr, RewriteRules{}, &report);
  EXPECT_EQ(report.fired(), 0);
}

TEST(AlgebraRewrite, AliasedInnerTransposeIsNotSubstituted) {
  // An alias on the inner node becomes the relation name that a downstream
  // det/rnk would report; substituting it away would change that name.
  auto x = RmaExpr::Leaf(RatingsRelation());
  auto tra = RmaExpr::Unary(MatrixOp::kTra, x, {"User"});
  tra->alias = "t";
  auto expr = RmaExpr::Binary(MatrixOp::kMmu, tra, {"C"}, x, {"User"});
  RewriteReport report;
  RewriteExpression(expr, RewriteRules{}, &report);
  EXPECT_EQ(report.fired(), 0);
}

TEST(AlgebraRewrite, RulesCanBeDisabledIndividually) {
  auto x = RmaExpr::Leaf(RatingsRelation());
  auto expr = RmaExpr::Binary(
      MatrixOp::kMmu, RmaExpr::Unary(MatrixOp::kTra, x, {"User"}), {"C"}, x,
      {"User"});
  RewriteRules rules;
  rules.mmu_tra_to_cpd = false;
  RewriteReport report;
  RmaExprPtr rewritten = RewriteExpression(expr, rules, &report);
  EXPECT_EQ(report.fired(), 0);
  EXPECT_EQ(rewritten->op, MatrixOp::kMmu);

  rules = RewriteRules{};
  rules.enabled = false;
  report = {};
  rewritten = RewriteExpression(expr, rules, &report);
  EXPECT_EQ(report.fired(), 0);
}

TEST(AlgebraRewrite, MmuOfTraOnRightBecomesOpd) {
  Rng rng(7);
  // App schemas a0..a3 are lexicographically sorted, so the rule is sound.
  auto x = RmaExpr::Leaf(RandomKeyedRelation(5, 4, &rng, -2, 2, "x"));
  auto y = RmaExpr::Leaf(RandomKeyedRelation(6, 4, &rng, -2, 2, "y"));
  auto expr = RmaExpr::Binary(MatrixOp::kMmu, x, {"id"},
                              RmaExpr::Unary(MatrixOp::kTra, y, {"id"}), {"C"});
  RewriteReport report;
  RmaExprPtr rewritten = RewriteExpression(expr, RewriteRules{}, &report);
  ASSERT_EQ(report.fired(), 1);
  EXPECT_EQ(report.applied[0], "mmu_tra_to_opd");
  EXPECT_EQ(rewritten->op, MatrixOp::kOpd);
}

TEST(AlgebraRewrite, OpdRuleRequiresSortedApplicationSchema) {
  // App schema (b, a) is not sorted: µ_C(tra(y)) pairs x's columns with
  // y's attributes in sorted-name order, opd in schema order — rewriting
  // would change the result.
  Relation y = MakeRelation({{"id", DataType::kInt64},
                             {"b", DataType::kDouble},
                             {"a", DataType::kDouble}},
                            {{int64_t{0}, 1.0, 2.0}, {int64_t{1}, 3.0, 4.0}},
                            "y");
  Rng rng(8);
  auto x = RmaExpr::Leaf(RandomKeyedRelation(3, 2, &rng, -2, 2, "x"));
  auto expr =
      RmaExpr::Binary(MatrixOp::kMmu, x, {"id"},
                      RmaExpr::Unary(MatrixOp::kTra, RmaExpr::Leaf(y), {"id"}),
                      {"C"});
  RewriteReport report;
  RewriteExpression(expr, RewriteRules{}, &report);
  EXPECT_EQ(report.fired(), 0);
}

TEST(AlgebraRewrite, MalformedArityIsSkippedNotCrashed) {
  // A binary operation built with a single child: the rewriter must not
  // index past the children; evaluation reports the arity error.
  auto bad = RmaExpr::Unary(MatrixOp::kMmu, RmaExpr::Leaf(RatingsRelation()),
                            {"C"});
  RewriteReport report;
  RmaExprPtr out = RewriteExpression(bad, RewriteRules{}, &report);
  EXPECT_EQ(report.fired(), 0);
  EXPECT_STATUS(kInvalidArgument, EvaluateExpression(out));
}

TEST(AlgebraRewrite, DoubleTransposeBecomesRelabel) {
  auto expr = RmaExpr::Unary(
      MatrixOp::kTra,
      RmaExpr::Unary(MatrixOp::kTra, RmaExpr::Leaf(WeatherRelation()), {"T"}),
      {"C"});
  RewriteReport report;
  RmaExprPtr rewritten = RewriteExpression(expr, RewriteRules{}, &report);
  ASSERT_EQ(report.fired(), 1);
  EXPECT_EQ(report.applied[0], "eliminate_double_tra");
  EXPECT_EQ(rewritten->kind, RmaExpr::Kind::kRelabel);
  EXPECT_EQ(rewritten->relabel_attr, "T");
}

TEST(AlgebraRewrite, RnkOfTraDropsTheTranspose) {
  Rng rng(9);
  auto x = RmaExpr::Leaf(RandomKeyedRelation(4, 3, &rng, -2, 2, "x"));
  auto expr = RmaExpr::Unary(
      MatrixOp::kRnk, RmaExpr::Unary(MatrixOp::kTra, x, {"id"}), {"C"});
  RewriteReport report;
  RmaExprPtr rewritten = RewriteExpression(expr, RewriteRules{}, &report);
  ASSERT_EQ(report.fired(), 1);
  EXPECT_EQ(report.applied[0], "rnk_of_tra");
  EXPECT_EQ(rewritten->op, MatrixOp::kRnk);
  EXPECT_EQ(rewritten->children[0]->kind, RmaExpr::Kind::kLeaf);
}

TEST(AlgebraRewrite, DetOfTraRequiresSortedApplicationSchema) {
  Rng rng(10);
  // Sorted app schema (a0..a2): fires.
  auto x = RmaExpr::Leaf(RandomKeyedRelation(3, 3, &rng, -2, 2, "x"));
  auto fires = RmaExpr::Unary(
      MatrixOp::kDet, RmaExpr::Unary(MatrixOp::kTra, x, {"id"}), {"C"});
  RewriteReport report;
  RewriteExpression(fires, RewriteRules{}, &report);
  EXPECT_EQ(report.fired(), 1);

  // Unsorted app schema (b, a): blocked — dropping the row permutation
  // of µ_C(tra(x)) could flip the determinant's sign.
  Relation odd = MakeRelation({{"id", DataType::kInt64},
                               {"b", DataType::kDouble},
                               {"a", DataType::kDouble}},
                              {{int64_t{0}, 1.0, 2.0}, {int64_t{1}, 3.0, 4.0}},
                              "odd");
  auto blocked = RmaExpr::Unary(
      MatrixOp::kDet,
      RmaExpr::Unary(MatrixOp::kTra, RmaExpr::Leaf(odd), {"id"}), {"C"});
  report = {};
  RewriteExpression(blocked, RewriteRules{}, &report);
  EXPECT_EQ(report.fired(), 0);
}

TEST(AlgebraRewrite, SignFlipWitnessForDetPrecondition) {
  // The blocked case above is not hypothetical: with app schema (b, a) the
  // transposed determinant differs by a factor of -1.
  Relation odd = MakeRelation({{"id", DataType::kInt64},
                               {"b", DataType::kDouble},
                               {"a", DataType::kDouble}},
                              {{int64_t{0}, 1.0, 2.0}, {int64_t{1}, 3.0, 4.0}},
                              "odd");
  ASSERT_OK_AND_ASSIGN(Relation det_x, Det(odd, {"id"}));
  ASSERT_OK_AND_ASSIGN(Relation tra_x, Tra(odd, {"id"}));
  ASSERT_OK_AND_ASSIGN(Relation det_tra_x, Det(tra_x, {"C"}));
  const double d1 = ValueToDouble(det_x.Get(0, 1));
  const double d2 = ValueToDouble(det_tra_x.Get(0, 1));
  EXPECT_NEAR(d1, -d2, 1e-12);
}

// --- semantic equivalence ----------------------------------------------------

TEST(AlgebraEquivalence, CovariancePatternMatchesUnrewritten) {
  // The Sec. 5 pattern: w5 = mmu(tra(w3 BY U) BY C, w3 BY U).
  auto x = RmaExpr::Leaf(RatingsRelation());
  auto expr = RmaExpr::Binary(
      MatrixOp::kMmu, RmaExpr::Unary(MatrixOp::kTra, x, {"User"}), {"C"}, x,
      {"User"});
  ExpectRewriteEquivalent(expr, 1);
}

TEST(AlgebraEquivalence, CpdRewriteOnDistinctRelations) {
  Rng rng(11);
  Relation xr = RandomKeyedRelation(7, 3, &rng, -3, 3, "x");
  Relation yr = RandomKeyedRelation(7, 5, &rng, -3, 3, "y");
  auto expr = RmaExpr::Binary(
      MatrixOp::kMmu,
      RmaExpr::Unary(MatrixOp::kTra, RmaExpr::Leaf(xr), {"id"}), {"C"},
      RmaExpr::Leaf(yr), {"id"});
  ExpectRewriteEquivalent(expr, 1);
}

TEST(AlgebraEquivalence, OpdRewriteMatchesUnrewritten) {
  Rng rng(12);
  Relation xr = RandomKeyedRelation(5, 4, &rng, -3, 3, "x");
  Relation yr = RandomKeyedRelation(6, 4, &rng, -3, 3, "y");
  auto expr = RmaExpr::Binary(
      MatrixOp::kMmu, RmaExpr::Leaf(xr), {"id"},
      RmaExpr::Unary(MatrixOp::kTra, RmaExpr::Leaf(yr), {"id"}), {"C"});
  ExpectRewriteEquivalent(expr, 1);
}

TEST(AlgebraEquivalence, DoubleTransposeMatchesFig10) {
  auto expr = RmaExpr::Unary(
      MatrixOp::kTra,
      RmaExpr::Unary(MatrixOp::kTra, RmaExpr::Leaf(WeatherRelation()), {"T"}),
      {"C"});
  ExpectRewriteEquivalent(expr, 1);

  // Fig. 10's r2: schema (C, H, W), C holding the times.
  ASSERT_OK_AND_ASSIGN(Relation r2, EvaluateOptimized(expr));
  EXPECT_EQ(r2.schema().Names(), (std::vector<std::string>{"C", "H", "W"}));
  ASSERT_EQ(r2.num_rows(), 4);
  Relation expected = MakeRelation(
      {{"C", DataType::kString},
       {"H", DataType::kDouble},
       {"W", DataType::kDouble}},
      {{std::string("5am"), 1.0, 3.0},
       {std::string("6am"), 1.0, 4.0},
       {std::string("7am"), 6.0, 7.0},
       {std::string("8am"), 8.0, 5.0}},
      "r");
  EXPECT_TRUE(RelationsEqualUnordered(r2, expected)) << r2.ToString();
}

TEST(AlgebraEquivalence, RnkOfTraMatchesUnrewritten) {
  Rng rng(13);
  auto x = RmaExpr::Leaf(RandomKeyedRelation(6, 4, &rng, -3, 3, "x"));
  auto expr = RmaExpr::Unary(
      MatrixOp::kRnk, RmaExpr::Unary(MatrixOp::kTra, x, {"id"}), {"C"});
  ExpectRewriteEquivalent(expr, 1);
}

TEST(AlgebraEquivalence, DetOfTraMatchesUnrewritten) {
  Rng rng(14);
  auto x = RmaExpr::Leaf(RandomKeyedRelation(4, 4, &rng, -3, 3, "x"));
  auto expr = RmaExpr::Unary(
      MatrixOp::kDet, RmaExpr::Unary(MatrixOp::kTra, x, {"id"}), {"C"});
  ExpectRewriteEquivalent(expr, 1);
}

TEST(AlgebraEquivalence, NestedRewritesComposeToFixpoint) {
  // rnk(tra(tra(tra(x BY id) BY C) BY C) BY C): the inner transpose pair
  // collapses to a relabel first; the remaining rnk(tra(relabel)) then
  // fires rnk_of_tra against the relabel child.
  Rng rng(15);
  auto x = RmaExpr::Leaf(RandomKeyedRelation(5, 3, &rng, -3, 3, "x"));
  auto expr = RmaExpr::Unary(
      MatrixOp::kRnk,
      RmaExpr::Unary(
          MatrixOp::kTra,
          RmaExpr::Unary(MatrixOp::kTra,
                         RmaExpr::Unary(MatrixOp::kTra, x, {"id"}), {"C"}),
          {"C"}),
      {"C"});
  ASSERT_OK_AND_ASSIGN(Relation plain, EvaluateExpression(expr, NoRewrites()));
  RewriteReport report;
  ASSERT_OK_AND_ASSIGN(Relation optimized,
                       EvaluateOptimized(expr, RmaOptions{}, &report));
  EXPECT_GE(report.fired(), 1);
  EXPECT_TRUE(RelationsEqualUnordered(plain, optimized));
}

// --- relabel error behaviour --------------------------------------------------

TEST(AlgebraRelabel, NonKeyOrderAttributeFailsLikeUnrewritten) {
  Relation dup = MakeRelation(
      {{"T", DataType::kString}, {"H", DataType::kDouble}},
      {{std::string("5am"), 1.0}, {std::string("5am"), 2.0}}, "dup");
  auto expr = RmaExpr::Unary(
      MatrixOp::kTra,
      RmaExpr::Unary(MatrixOp::kTra, RmaExpr::Leaf(dup), {"T"}), {"C"});
  EXPECT_STATUS(kInvalidArgument, EvaluateExpression(expr, NoRewrites()));
  EXPECT_STATUS(kInvalidArgument, EvaluateOptimized(expr));
}

TEST(AlgebraRelabel, StringifiedCollisionFailsLikeUnrewritten) {
  // Distinct doubles that render identically ("%g", 6 significant digits)
  // would collide as attribute names of the inner transpose: both plans
  // must reject them.
  Relation tricky = MakeRelation(
      {{"k", DataType::kDouble}, {"v", DataType::kDouble}},
      {{1.00000001, 10.0}, {1.00000002, 20.0}}, "tricky");
  auto expr = RmaExpr::Unary(
      MatrixOp::kTra,
      RmaExpr::Unary(MatrixOp::kTra, RmaExpr::Leaf(tricky), {"k"}), {"C"});
  EXPECT_STATUS(kInvalidArgument, EvaluateExpression(expr, NoRewrites()));
  EXPECT_STATUS(kInvalidArgument, EvaluateOptimized(expr));
}

TEST(AlgebraRelabel, NumericOrderAttributeIsStringified) {
  Relation r = MakeRelation(
      {{"k", DataType::kInt64}, {"v", DataType::kDouble}},
      {{int64_t{2}, 10.0}, {int64_t{1}, 20.0}}, "r");
  auto expr = RmaExpr::Unary(
      MatrixOp::kTra, RmaExpr::Unary(MatrixOp::kTra, RmaExpr::Leaf(r), {"k"}),
      {"C"});
  ExpectRewriteEquivalent(expr, 1);
  ASSERT_OK_AND_ASSIGN(Relation out, EvaluateOptimized(expr));
  ASSERT_OK_AND_ASSIGN(BatPtr c, out.ColumnByName("C"));
  EXPECT_EQ(c->type(), DataType::kString);
}

// --- SQL integration ----------------------------------------------------------

TEST(AlgebraSql, CovarianceQueryRewritesInsideFrom) {
  sql::Database db;
  ASSERT_OK(db.Register("rating", RatingsRelation()));
  const std::string q =
      "SELECT * FROM MMU(TRA(rating BY User) BY C, rating BY User)";
  ASSERT_OK_AND_ASSIGN(Relation optimized, db.Query(q));

  sql::Database plain_db;
  ASSERT_OK(plain_db.Register("rating", RatingsRelation()));
  plain_db.rma_options.rewrites.enabled = false;
  ASSERT_OK_AND_ASSIGN(Relation plain, plain_db.Query(q));

  EXPECT_TRUE(RelationsEqualUnordered(plain, optimized))
      << "plain:\n"
      << plain.ToString() << "optimized:\n"
      << optimized.ToString();

  // Both match the direct cpd.
  ASSERT_OK_AND_ASSIGN(
      Relation cpd, db.Query("SELECT * FROM CPD(rating BY User, "
                             "rating BY User)"));
  EXPECT_TRUE(RelationsEqualUnordered(cpd, optimized));
}

TEST(AlgebraSql, RewriteKeepsSubqueryLeavesIntact) {
  sql::Database db;
  ASSERT_OK(db.Register("rating", RatingsRelation()));
  // The subquery is evaluated relationally and enters the tree as a leaf.
  ASSERT_OK_AND_ASSIGN(
      Relation out,
      db.Query("SELECT * FROM MMU(TRA((SELECT User, Balto, Heat, Net "
               "FROM rating) w3 BY User) BY C, rating BY User)"));
  ASSERT_OK_AND_ASSIGN(
      Relation cpd, db.Query("SELECT * FROM CPD(rating BY User, "
                             "rating BY User)"));
  EXPECT_TRUE(RelationsEqualUnordered(out, cpd));
}

}  // namespace
}  // namespace rma
