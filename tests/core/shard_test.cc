// Sharded stage execution tests: shard/unshard equivalence (bit-exact for
// concat-merged element-wise ops, tolerance-bounded for tree-reduced cross
// products), zero-copy row-range slice views and their identity stability,
// the planner's shards=1 fallback, dispatch-time clamping, and RmaOptions
// validation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "core/exec_context.h"
#include "core/exec_internal.h"
#include "core/planner.h"
#include "core/rma.h"
#include "core/shard.h"
#include "matrix/simd.h"
#include "storage/bat.h"
#include "test_util.h"
#include "util/random.h"

namespace rma {
namespace {

/// Dense relation with an already-sorted INT key (identity permutation) and
/// `cols` random DOUBLE columns. `specials` injects NaN and +-inf rows.
Relation DenseKeyed(int64_t n, int cols, const std::string& key, uint64_t seed,
                    bool specials = false, std::string name = "r") {
  Rng rng(seed);
  std::vector<int64_t> ids(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) ids[static_cast<size_t>(i)] = i;
  std::vector<Attribute> attrs = {{key, DataType::kInt64}};
  std::vector<BatPtr> colsv = {MakeInt64Bat(std::move(ids))};
  for (int c = 0; c < cols; ++c) {
    std::vector<double> v(static_cast<size_t>(n));
    for (auto& x : v) x = rng.Uniform(-10.0, 10.0);
    if (specials && n >= 8) {
      v[1] = std::numeric_limits<double>::quiet_NaN();
      v[static_cast<size_t>(n) / 2] = std::numeric_limits<double>::infinity();
      v[static_cast<size_t>(n) - 2] = -std::numeric_limits<double>::infinity();
    }
    attrs.push_back(Attribute{"a" + std::to_string(c), DataType::kDouble});
    colsv.push_back(MakeDoubleBat(std::move(v)));
  }
  return Relation::Make(Schema::Make(std::move(attrs)).ValueOrDie(),
                        std::move(colsv), std::move(name))
      .ValueOrDie();
}

/// Bit-pattern equality (distinguishes NaN payloads and signed zeros the way
/// the concat contract promises: the sharded write pattern is byte-identical).
bool BitEqual(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  return a.empty() ||
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

/// Runs one binary op through the staged executor with a handcrafted shard
/// plan (bypasses the planner's cost decision so equivalence is exercised
/// even on machines where sharding would not pay).
Result<std::vector<BatPtr>> RunForced(ExecContext& ctx, MatrixOp op,
                                      const Relation& r, const std::string& kr,
                                      const Relation& s, const std::string& ks,
                                      int shards, MergeKind merge,
                                      bool self_cross = false) {
  const OpInfo& info = GetOpInfo(op);
  RMA_ASSIGN_OR_RETURN(
      internal::BinaryArgs args,
      internal::PrepareBinaryArgs(ctx, info, r, {kr}, s, {ks}));
  const ArgShape right_shape = args.right->Shape();
  OpPlan plan = PlanOp(op, ctx.options(), args.left->Shape(), &right_shape,
                       self_cross);
  plan.shards = shards;
  plan.merge = merge;
  if (std::find(plan.stages.begin(), plan.stages.end(), Stage::kMerge) ==
      plan.stages.end()) {
    plan.stages.insert(plan.stages.end() - 1, Stage::kMerge);
  }
  return internal::DispatchShardedBinary(ctx, plan, *args.left, *args.right);
}

/// Unsharded reference through the same staged path.
Result<std::vector<BatPtr>> RunSerial(ExecContext& ctx, MatrixOp op,
                                      const Relation& r, const std::string& kr,
                                      const Relation& s, const std::string& ks,
                                      bool self_cross = false) {
  const OpInfo& info = GetOpInfo(op);
  RMA_ASSIGN_OR_RETURN(
      internal::BinaryArgs args,
      internal::PrepareBinaryArgs(ctx, info, r, {kr}, s, {ks}));
  const ArgShape right_shape = args.right->Shape();
  OpPlan plan = PlanOp(op, ctx.options(), args.left->Shape(), &right_shape,
                       self_cross);
  plan.shards = 1;
  plan.merge = MergeKind::kNone;
  return internal::DispatchBinary(ctx, plan, *args.left, *args.right);
}

RmaOptions ShardOpts(int threads = 4) {
  RmaOptions opts;
  opts.max_threads = threads;
  opts.shard_min_rows = 64;
  return opts;
}

// --- shard specs and slice views ---------------------------------------------

TEST(ShardSpecTest, BalancedNonDivisibleSplit) {
  const auto specs = MakeShardSpecs(10, 4);
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(specs[0].rows(), 3);
  EXPECT_EQ(specs[1].rows(), 3);
  EXPECT_EQ(specs[2].rows(), 2);
  EXPECT_EQ(specs[3].rows(), 2);
  int64_t expected_begin = 0;
  for (size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(specs[i].shard, static_cast<int>(i));
    EXPECT_EQ(specs[i].begin, expected_begin);  // contiguous, ordered cover
    expected_begin = specs[i].end;
  }
  EXPECT_EQ(expected_begin, 10);
}

TEST(ShardSpecTest, SliceBatIsZeroCopyAndComposes) {
  std::vector<double> v(100);
  for (size_t i = 0; i < v.size(); ++i) v[i] = static_cast<double>(i);
  const BatPtr base = MakeDoubleBat(std::move(v));
  const double* base_ptr = base->ContiguousDoubleData();
  ASSERT_NE(base_ptr, nullptr);

  const BatPtr slice = SliceBat(base, 10, 50);
  ASSERT_EQ(slice->size(), 50);
  EXPECT_EQ(slice->ContiguousDoubleData(), base_ptr + 10);  // no copy
  EXPECT_EQ(slice->GetDouble(0), 10.0);

  // Re-slicing a slice composes offsets against the original owner.
  const BatPtr nested = SliceBat(slice, 5, 10);
  ASSERT_EQ(nested->size(), 10);
  EXPECT_EQ(nested->ContiguousDoubleData(), base_ptr + 15);
  EXPECT_EQ(nested->GetDouble(9), 24.0);
}

TEST(ShardSpecTest, SliceBatOnNonDoubleFallsBackToCopy) {
  const BatPtr ints = MakeInt64Bat({5, 6, 7, 8, 9});
  const BatPtr slice = SliceBat(ints, 1, 3);
  ASSERT_EQ(slice->size(), 3);
  EXPECT_EQ(slice->ContiguousDoubleData(), nullptr);
  EXPECT_EQ(slice->GetDouble(0), 6.0);
  EXPECT_EQ(slice->GetDouble(2), 8.0);
}

TEST(ShardSpecTest, SliceColumnsRespectsShardRange) {
  const Relation r = DenseKeyed(100, 2, "i", /*seed=*/1);
  const std::vector<BatPtr> cols = {r.column(1), r.column(2)};
  const auto specs = MakeShardSpecs(100, 3);
  const auto sliced = SliceColumns(cols, specs[1]);
  ASSERT_EQ(sliced.size(), 2u);
  EXPECT_EQ(sliced[0]->size(), specs[1].rows());
  EXPECT_EQ(sliced[0]->GetDouble(0), cols[0]->GetDouble(specs[1].begin));
}

TEST(ShardSpecTest, SliceRowsIdentityStableAndDistinct) {
  const Relation r = DenseKeyed(64, 2, "i", /*seed=*/2);
  const Relation a = r.SliceRows(0, 32);
  const Relation b = r.SliceRows(0, 32);
  const Relation c = r.SliceRows(32, 32);
  // Same range twice: same cache identity (prepared-argument cache keys stay
  // valid across repeated shard lowering). Distinct ranges and the parent
  // must never collide.
  EXPECT_EQ(a.identity(), b.identity());
  EXPECT_NE(a.identity(), r.identity());
  EXPECT_NE(a.identity(), c.identity());
  EXPECT_EQ(a.num_rows(), 32);
  EXPECT_EQ(a.column(1)->GetDouble(5), r.column(1)->GetDouble(5));
  EXPECT_EQ(c.column(1)->GetDouble(0), r.column(1)->GetDouble(32));
}

// --- shard/unshard equivalence ----------------------------------------------

TEST(ShardEquivalenceTest, ConcatElementwiseBitExact) {
  // 7001 rows: non-divisible by 4, so shard boundaries are unequal.
  const Relation r = DenseKeyed(7001, 3, "i", /*seed=*/3, false, "r");
  const Relation s = DenseKeyed(7001, 3, "j", /*seed=*/4, false, "s");
  for (MatrixOp op : {MatrixOp::kAdd, MatrixOp::kSub, MatrixOp::kEmu}) {
    ExecContext ctx(ShardOpts());
    ASSERT_OK_AND_ASSIGN(std::vector<BatPtr> sharded,
                         RunForced(ctx, op, r, "i", s, "j", 4,
                                   MergeKind::kConcat));
    ExecContext serial_ctx{RmaOptions{}};
    ASSERT_OK_AND_ASSIGN(std::vector<BatPtr> serial,
                         RunSerial(serial_ctx, op, r, "i", s, "j"));
    ASSERT_EQ(sharded.size(), serial.size());
    for (size_t j = 0; j < sharded.size(); ++j) {
      EXPECT_TRUE(BitEqual(ToDoubleVector(*sharded[j]),
                           ToDoubleVector(*serial[j])))
          << "op=" << static_cast<int>(op) << " col=" << j;
    }
  }
}

TEST(ShardEquivalenceTest, ConcatPropagatesNanAndInfBitwise) {
  const Relation r = DenseKeyed(4096, 2, "i", /*seed=*/5, /*specials=*/true);
  const Relation s = DenseKeyed(4096, 2, "j", /*seed=*/6, /*specials=*/true);
  ExecContext ctx(ShardOpts());
  ASSERT_OK_AND_ASSIGN(std::vector<BatPtr> sharded,
                       RunForced(ctx, MatrixOp::kAdd, r, "i", s, "j", 4,
                                 MergeKind::kConcat));
  ExecContext serial_ctx{RmaOptions{}};
  ASSERT_OK_AND_ASSIGN(std::vector<BatPtr> serial,
                       RunSerial(serial_ctx, MatrixOp::kAdd, r, "i", s, "j"));
  for (size_t j = 0; j < sharded.size(); ++j) {
    const std::vector<double> got = ToDoubleVector(*sharded[j]);
    EXPECT_TRUE(BitEqual(got, ToDoubleVector(*serial[j]))) << "col=" << j;
    // The specials actually crossed the pipeline (inf + finite = inf,
    // NaN + anything = NaN).
    EXPECT_TRUE(std::isnan(got[1]));
    EXPECT_TRUE(std::isinf(got[got.size() / 2]));
  }
}

TEST(ShardEquivalenceTest, ConcatScalarKernelParity) {
  // RMA_NO_SIMD / ForceScalar: the sharded path must stay bit-exact when the
  // element-wise kernels run their scalar fallbacks.
  simd::ForceScalar(true);
  const Relation r = DenseKeyed(3000, 2, "i", /*seed=*/7);
  const Relation s = DenseKeyed(3000, 2, "j", /*seed=*/8);
  ExecContext ctx(ShardOpts());
  auto sharded = RunForced(ctx, MatrixOp::kAdd, r, "i", s, "j", 3,
                           MergeKind::kConcat);
  ExecContext serial_ctx{RmaOptions{}};
  auto serial = RunSerial(serial_ctx, MatrixOp::kAdd, r, "i", s, "j");
  simd::ForceScalar(false);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  for (size_t j = 0; j < (*sharded).size(); ++j) {
    EXPECT_TRUE(BitEqual(ToDoubleVector(*(*sharded)[j]),
                         ToDoubleVector(*(*serial)[j])));
  }
}

TEST(ShardEquivalenceTest, TreeReduceCrossProductWithinTolerance) {
  // Tree-reduced partials associate differently from the serial kernel, so
  // the contract is tolerance-bounded, not bit-exact.
  const Relation r = DenseKeyed(5003, 4, "i", /*seed=*/9, false, "r");
  const Relation s = DenseKeyed(5003, 3, "j", /*seed=*/10, false, "s");
  ExecContext ctx(ShardOpts());
  ASSERT_OK_AND_ASSIGN(std::vector<BatPtr> sharded,
                       RunForced(ctx, MatrixOp::kCpd, r, "i", s, "j", 4,
                                 MergeKind::kTreeReduce));
  ExecContext serial_ctx{RmaOptions{}};
  ASSERT_OK_AND_ASSIGN(std::vector<BatPtr> serial,
                       RunSerial(serial_ctx, MatrixOp::kCpd, r, "i", s, "j"));
  ASSERT_EQ(sharded.size(), serial.size());
  for (size_t j = 0; j < sharded.size(); ++j) {
    const std::vector<double> a = ToDoubleVector(*sharded[j]);
    const std::vector<double> b = ToDoubleVector(*serial[j]);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      const double scale = std::max(1.0, std::abs(b[i]));
      EXPECT_NEAR(a[i], b[i], 1e-9 * scale) << "col=" << j << " row=" << i;
    }
  }
}

TEST(ShardEquivalenceTest, TreeReduceSyrkSelfCrossWithinTolerance) {
  const Relation r = DenseKeyed(4099, 5, "i", /*seed=*/11);
  ExecContext ctx(ShardOpts(8));
  ASSERT_OK_AND_ASSIGN(std::vector<BatPtr> sharded,
                       RunForced(ctx, MatrixOp::kCpd, r, "i", r, "i", 8,
                                 MergeKind::kTreeReduce, /*self_cross=*/true));
  ExecContext serial_ctx{RmaOptions{}};
  ASSERT_OK_AND_ASSIGN(std::vector<BatPtr> serial,
                       RunSerial(serial_ctx, MatrixOp::kCpd, r, "i", r, "i",
                                 /*self_cross=*/true));
  for (size_t j = 0; j < sharded.size(); ++j) {
    const std::vector<double> a = ToDoubleVector(*sharded[j]);
    const std::vector<double> b = ToDoubleVector(*serial[j]);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      const double scale = std::max(1.0, std::abs(b[i]));
      EXPECT_NEAR(a[i], b[i], 1e-9 * scale);
    }
  }
}

TEST(ShardEquivalenceTest, EndToEndShardedAddMatchesSerial) {
  // Public API, planner decides: whatever shard count it picks (including
  // the shards=1 fallback), the result must match the serial options run.
  const Relation r = DenseKeyed(300000, 4, "i", /*seed=*/12, false, "r");
  const Relation s = DenseKeyed(300000, 4, "j", /*seed=*/13, false, "s");
  RmaOptions sharded_opts = ShardOpts();
  RmaOptions serial_opts;
  serial_opts.max_shards = 1;
  ASSERT_OK_AND_ASSIGN(const Relation a,
                       Add(r, {"i"}, s, {"j"}, sharded_opts));
  ASSERT_OK_AND_ASSIGN(const Relation b, Add(r, {"i"}, s, {"j"}, serial_opts));
  ASSERT_EQ(a.num_rows(), b.num_rows());
  for (int c = 0; c < a.schema().num_attributes(); ++c) {
    if (a.schema().attribute(c).type != DataType::kDouble) continue;
    EXPECT_TRUE(BitEqual(ToDoubleVector(*a.column(c)),
                         ToDoubleVector(*b.column(c))))
        << "col=" << c;
  }
}

// --- planner decision and dispatch-time clamping -----------------------------

ArgShape Shape(int64_t rows, int64_t cols) {
  ArgShape s;
  s.rows = rows;
  s.cols = cols;
  s.density = 1.0;
  return s;
}

TEST(ShardPlanTest, LargeSelfCrossShards) {
  RmaOptions opts;
  opts.max_threads = 8;
  const ArgShape a = Shape(400000, 32);
  const OpPlan plan = PlanOp(MatrixOp::kCpd, opts, a, &a, /*self_cross=*/true);
  EXPECT_GT(plan.shards, 1);
  EXPECT_EQ(plan.merge, MergeKind::kTreeReduce);
  EXPECT_NE(std::find(plan.stages.begin(), plan.stages.end(), Stage::kMerge),
            plan.stages.end());
  // EXPLAIN surfaces the decision.
  EXPECT_NE(plan.DebugString().find("merge=tree-reduce"), std::string::npos);
}

TEST(ShardPlanTest, SmallInputFallsBackToOneShard) {
  RmaOptions opts;
  opts.max_threads = 8;
  const ArgShape a = Shape(2000, 4);
  const OpPlan cpd = PlanOp(MatrixOp::kCpd, opts, a, &a, /*self_cross=*/true);
  EXPECT_EQ(cpd.shards, 1);
  EXPECT_EQ(cpd.merge, MergeKind::kNone);
  const OpPlan add = PlanOp(MatrixOp::kAdd, opts, a, &a);
  EXPECT_EQ(add.shards, 1);
  EXPECT_EQ(std::count(add.stages.begin(), add.stages.end(), Stage::kMerge),
            0);
}

TEST(ShardPlanTest, SingleThreadBudgetNeverShards) {
  RmaOptions opts;
  opts.max_threads = 1;
  const ArgShape a = Shape(400000, 32);
  const OpPlan plan = PlanOp(MatrixOp::kCpd, opts, a, &a, /*self_cross=*/true);
  EXPECT_EQ(plan.shards, 1);
}

TEST(ShardPlanTest, ClampRevertsPlanUnderShrunkBudget) {
  RmaOptions opts;
  opts.max_threads = 8;
  const ArgShape a = Shape(400000, 32);
  OpPlan plan = PlanOp(MatrixOp::kCpd, opts, a, &a, /*self_cross=*/true);
  ASSERT_GT(plan.shards, 1);
  RmaOptions narrow;
  narrow.max_threads = 1;
  ExecContext ctx(narrow);
  internal::ClampShards(ctx, &plan);
  EXPECT_EQ(plan.shards, 1);
  EXPECT_EQ(plan.merge, MergeKind::kNone);
  EXPECT_EQ(std::count(plan.stages.begin(), plan.stages.end(), Stage::kMerge),
            0);
}

// --- options validation ------------------------------------------------------

TEST(ShardOptionsTest, ValidateRejectsZeroCounts) {
  RmaOptions opts;
  opts.max_shards = 0;
  const Status st = ValidateRmaOptions(opts);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.ToString().find("max_shards"), std::string::npos);

  RmaOptions rows;
  rows.shard_min_rows = 0;
  EXPECT_EQ(ValidateRmaOptions(rows).code(), StatusCode::kInvalidArgument);

  RmaOptions threads;
  threads.max_threads = -1;
  EXPECT_EQ(ValidateRmaOptions(threads).code(),
            StatusCode::kInvalidArgument);

  EXPECT_TRUE(ValidateRmaOptions(RmaOptions{}).ok());
}

TEST(ShardOptionsTest, EntryPointsRejectInvalidOptions) {
  const Relation r = DenseKeyed(16, 2, "i", /*seed=*/14);
  const Relation s = DenseKeyed(16, 2, "j", /*seed=*/15);
  RmaOptions opts;
  opts.max_shards = 0;
  EXPECT_STATUS(kInvalidArgument, Add(r, {"i"}, s, {"j"}, opts));
  EXPECT_STATUS(kInvalidArgument, Tra(r, {"i"}, opts));
}

}  // namespace
}  // namespace rma
