// Property sweeps over every relational matrix operation (Sec. 6):
//
//  * Matrix consistency (Def. 6.3): reducing the result relation with the
//    result order schema yields exactly OP applied to the reduced input,
//    where OP is computed independently through the dense reference kernels.
//  * Origin inheritance (Def. 6.6 / Table 3): the result carries the row and
//    column origins prescribed by its shape type.
//  * Execution-policy equivalence: the BAT algorithms, the contiguous
//    kernels, and the sort-avoidance optimizations all produce the same
//    relation (as a set of tuples).
#include <gtest/gtest.h>

#include <algorithm>

#include "core/constructors.h"
#include "core/kernels.h"
#include "core/rma.h"
#include "storage/bat_ops.h"
#include "test_util.h"
#include "util/random.h"

namespace rma {
namespace {

using testing::RandomKeyedRelation;

struct UnaryCase {
  MatrixOp op;
  int64_t rows;
  int cols;
  uint64_t seed;
  bool symmetric_input;  // evc/evl/chf need symmetric (SPD) inputs
};

std::string UnaryCaseName(const ::testing::TestParamInfo<UnaryCase>& info) {
  return std::string(GetOpInfo(info.param.op).name) + "_" +
         std::to_string(info.param.rows) + "x" +
         std::to_string(info.param.cols) + "_s" +
         std::to_string(info.param.seed);
}

/// A keyed relation whose application part is symmetric positive definite.
Relation RandomSpdRelation(int64_t n, uint64_t seed) {
  Rng rng(seed);
  // A = BᵀB + n·I over a shuffled key.
  std::vector<std::vector<double>> b(
      static_cast<size_t>(n), std::vector<double>(static_cast<size_t>(n)));
  for (auto& row : b) {
    for (auto& v : row) v = rng.Uniform(-2, 2);
  }
  std::vector<int64_t> ids(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) ids[static_cast<size_t>(i)] = i;
  std::shuffle(ids.begin(), ids.end(), rng.engine());
  std::vector<Attribute> attrs = {{"id", DataType::kInt64}};
  std::vector<BatPtr> cols = {MakeInt64Bat(ids)};
  for (int64_t j = 0; j < n; ++j) {
    std::vector<double> col(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      double s = 0;
      for (int64_t k = 0; k < n; ++k) {
        s += b[static_cast<size_t>(k)][static_cast<size_t>(i)] *
             b[static_cast<size_t>(k)][static_cast<size_t>(j)];
      }
      // Rows are keyed by shuffled ids: row order must follow the key sort
      // for the matrix to be the intended SPD matrix.
      col[static_cast<size_t>(i)] =
          s + (i == j ? static_cast<double>(n) : 0.0);
    }
    // Scatter the sorted-row values into the shuffled physical order.
    std::vector<double> phys(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      phys[static_cast<size_t>(i)] = col[static_cast<size_t>(ids[static_cast<size_t>(i)])];
    }
    attrs.push_back(Attribute{"a" + std::to_string(j), DataType::kDouble});
    cols.push_back(MakeDoubleBat(std::move(phys)));
  }
  return Relation::Make(Schema::Make(std::move(attrs)).ValueOrDie(),
                        std::move(cols), "spd")
      .ValueOrDie();
}

Relation MakeInput(const UnaryCase& c, Rng* rng) {
  if (c.symmetric_input) return RandomSpdRelation(c.rows, c.seed);
  return RandomKeyedRelation(c.rows, c.cols, rng);
}

class UnaryProperty : public ::testing::TestWithParam<UnaryCase> {};

// Matrix consistency: µ_{U'}(op_U(r)) == OP(µ_U(r)).
TEST_P(UnaryProperty, MatrixConsistency) {
  const UnaryCase c = GetParam();
  Rng rng(c.seed);
  const Relation r = MakeInput(c, &rng);
  const OpInfo& info = GetOpInfo(c.op);

  const Relation result = RmaUnary(c.op, r, {"id"}).ValueOrDie();
  // Reduce the result with its order schema U' (Table 2: the inherited
  // order schema for (r1,*) shapes, the C attribute for (c1,*) and (1,1)).
  const std::string u_prime =
      info.shape.rows == Extent::kR1 ? "id" : "C";
  const DenseMatrix reduced =
      MatrixConstructor(result, {u_prime}).ValueOrDie();

  // Independent reference: OP on the reduced input.
  const DenseMatrix input = MatrixConstructor(r, {"id"}).ValueOrDie();
  const DenseMatrix expected =
      kernel::DenseCompute(c.op, input, nullptr).ValueOrDie();

  // Reducing sorts by U'; for (c1,*) results the C values are attribute
  // names whose sort order may differ from the base result's row order, so
  // compare as row sets.
  ASSERT_EQ(reduced.rows(), expected.rows());
  ASSERT_EQ(reduced.cols(), expected.cols());
  if (info.shape.rows == Extent::kR1 || info.shape.rows == Extent::kOne) {
    EXPECT_TRUE(reduced.AllClose(expected, 1e-8));
  } else {
    // Row multiset comparison.
    std::vector<bool> used(static_cast<size_t>(expected.rows()), false);
    for (int64_t i = 0; i < reduced.rows(); ++i) {
      bool matched = false;
      for (int64_t j = 0; j < expected.rows() && !matched; ++j) {
        if (used[static_cast<size_t>(j)]) continue;
        bool close = true;
        for (int64_t k = 0; k < reduced.cols(); ++k) {
          if (std::fabs(reduced(i, k) - expected(j, k)) > 1e-8) close = false;
        }
        if (close) {
          used[static_cast<size_t>(j)] = true;
          matched = true;
        }
      }
      EXPECT_TRUE(matched) << "result row " << i << " has no match";
    }
  }
}

// Origins: row and column origins per Table 3.
TEST_P(UnaryProperty, Origins) {
  const UnaryCase c = GetParam();
  Rng rng(c.seed);
  const Relation r = MakeInput(c, &rng);
  const OpInfo& info = GetOpInfo(c.op);
  const Relation result = RmaUnary(c.op, r, {"id"}).ValueOrDie();

  const OrderSplit split = SplitSchema(r, {"id"}).ValueOrDie();
  switch (info.shape.rows) {
    case Extent::kR1: {
      // Row origin = r.U sorted: the result's id column is the sorted ids.
      const auto ids = ToDoubleVector(**result.ColumnByName("id"));
      for (size_t i = 1; i < ids.size(); ++i) EXPECT_LT(ids[i - 1], ids[i]);
      EXPECT_EQ(result.num_rows(), r.num_rows());
      break;
    }
    case Extent::kC1: {
      // Row origin = ∆U: the C column holds the application schema names.
      const auto names = SchemaCast(r.schema(), split.app_idx);
      ASSERT_EQ(result.num_rows(), static_cast<int64_t>(names.size()));
      for (int64_t i = 0; i < result.num_rows(); ++i) {
        EXPECT_EQ(ValueToString(result.Get(i, 0)), names[static_cast<size_t>(i)]);
      }
      break;
    }
    case Extent::kOne:
      ASSERT_EQ(result.num_rows(), 1);
      EXPECT_EQ(ValueToString(result.Get(0, 0)), r.name());
      break;
    default:
      FAIL() << "unexpected unary row extent";
  }
  switch (info.shape.cols) {
    case Extent::kC1:
      // Column origin = U: application schema names inherited.
      for (size_t j = 0; j < split.app_idx.size(); ++j) {
        EXPECT_EQ(result.schema().attribute(static_cast<int>(j) + 1).name,
                  r.schema().attribute(split.app_idx[j]).name);
      }
      break;
    case Extent::kR1: {
      // Column origin = ▽U: sorted key values as names.
      std::vector<int64_t> perm =
          bat_ops::ArgSort({r.column(split.order_idx[0])});
      const auto names =
          ColumnCast(r, split.order_idx[0], perm).ValueOrDie();
      for (size_t j = 0; j < names.size(); ++j) {
        EXPECT_EQ(result.schema().attribute(static_cast<int>(j) + 1).name,
                  names[j]);
      }
      break;
    }
    case Extent::kOne:
      EXPECT_EQ(result.schema().attribute(1).name, info.name);
      break;
    default:
      FAIL() << "unexpected unary column extent";
  }
}

// All execution paths agree.
TEST_P(UnaryProperty, PolicyEquivalence) {
  const UnaryCase c = GetParam();
  Rng rng(c.seed);
  const Relation r = MakeInput(c, &rng);
  RmaOptions bat;
  bat.kernel = KernelPolicy::kBat;
  RmaOptions contiguous;
  contiguous.kernel = KernelPolicy::kContiguous;
  RmaOptions optimized;
  optimized.sort = SortPolicy::kOptimized;
  const Relation a = RmaUnary(c.op, r, {"id"}, bat).ValueOrDie();
  const Relation b = RmaUnary(c.op, r, {"id"}, contiguous).ValueOrDie();
  const Relation d = RmaUnary(c.op, r, {"id"}, optimized).ValueOrDie();
  EXPECT_TRUE(RelationsEqualUnordered(a, b, 1e-7));
  EXPECT_TRUE(RelationsEqualUnordered(a, d, 1e-7));
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, UnaryProperty,
    ::testing::Values(
        UnaryCase{MatrixOp::kTra, 7, 3, 1, false},
        UnaryCase{MatrixOp::kTra, 1, 4, 2, false},
        UnaryCase{MatrixOp::kInv, 5, 5, 3, true},
        UnaryCase{MatrixOp::kInv, 9, 9, 4, true},
        UnaryCase{MatrixOp::kQqr, 12, 4, 5, false},
        UnaryCase{MatrixOp::kQqr, 6, 6, 6, false},
        UnaryCase{MatrixOp::kRqr, 12, 4, 7, false},
        UnaryCase{MatrixOp::kDsv, 10, 3, 8, false},
        UnaryCase{MatrixOp::kUsv, 6, 2, 9, false},
        UnaryCase{MatrixOp::kVsv, 10, 3, 10, false},
        UnaryCase{MatrixOp::kDet, 6, 6, 11, true},
        UnaryCase{MatrixOp::kRnk, 9, 4, 12, false},
        UnaryCase{MatrixOp::kEvl, 7, 7, 13, true},
        UnaryCase{MatrixOp::kEvc, 7, 7, 14, true},
        UnaryCase{MatrixOp::kChf, 6, 6, 15, true}),
    UnaryCaseName);

// --- binary properties ------------------------------------------------------------

struct BinaryCase {
  MatrixOp op;
  int64_t rows_r;
  int cols_r;
  int64_t rows_s;
  int cols_s;
  uint64_t seed;
};

std::string BinaryCaseName(const ::testing::TestParamInfo<BinaryCase>& info) {
  return std::string(GetOpInfo(info.param.op).name) + "_s" +
         std::to_string(info.param.seed);
}

class BinaryProperty : public ::testing::TestWithParam<BinaryCase> {};

TEST_P(BinaryProperty, MatrixConsistencyAndPolicies) {
  const BinaryCase c = GetParam();
  Rng rng(c.seed);
  const Relation r = RandomKeyedRelation(c.rows_r, c.cols_r, &rng);
  Relation s = RandomKeyedRelation(c.rows_s, c.cols_s, &rng, -10, 10, "s");
  s = *s.RenameColumn(0, "id2");
  const OpInfo& info = GetOpInfo(c.op);

  const Relation result =
      RmaBinary(c.op, r, {"id"}, s, {"id2"}).ValueOrDie();
  const DenseMatrix ma = MatrixConstructor(r, {"id"}).ValueOrDie();
  const DenseMatrix mb = MatrixConstructor(s, {"id2"}).ValueOrDie();
  const DenseMatrix expected =
      kernel::DenseCompute(c.op, ma, &mb).ValueOrDie();

  // For (r*,c*) shapes the result also inherits s's order part (schema
  // U ◦ V ◦ Ū), which is not part of the base result: project it away
  // before reducing.
  if (info.shape.rows == Extent::kRStar) {
    const Relation app = result.SelectColumns([&] {
      std::vector<int> keep = {0};  // id
      for (int col = 2; col < result.num_columns(); ++col) keep.push_back(col);
      return keep;
    }());
    const DenseMatrix m = MatrixConstructor(app, {"id"}).ValueOrDie();
    ASSERT_EQ(m.rows(), expected.rows());
    ASSERT_EQ(m.cols(), expected.cols());
    EXPECT_TRUE(m.AllClose(expected, 1e-8));
  } else {
    const std::string u_prime =
        info.shape.rows == Extent::kR1 ? "id" : "C";
    const DenseMatrix reduced =
        MatrixConstructor(result, {u_prime}).ValueOrDie();
    ASSERT_EQ(reduced.rows(), expected.rows());
    ASSERT_EQ(reduced.cols(), expected.cols());
    EXPECT_TRUE(reduced.AllClose(expected, 1e-8));
  }

  // Policies agree.
  RmaOptions bat;
  bat.kernel = KernelPolicy::kBat;
  RmaOptions opt;
  opt.sort = SortPolicy::kOptimized;
  const Relation a = RmaBinary(c.op, r, {"id"}, s, {"id2"}, bat).ValueOrDie();
  const Relation b = RmaBinary(c.op, r, {"id"}, s, {"id2"}, opt).ValueOrDie();
  EXPECT_TRUE(RelationsEqualUnordered(result, a, 1e-7));
  EXPECT_TRUE(RelationsEqualUnordered(result, b, 1e-7));
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, BinaryProperty,
    ::testing::Values(
        BinaryCase{MatrixOp::kAdd, 8, 3, 8, 3, 21},
        BinaryCase{MatrixOp::kSub, 8, 3, 8, 3, 22},
        BinaryCase{MatrixOp::kEmu, 5, 2, 5, 2, 23},
        BinaryCase{MatrixOp::kMmu, 7, 4, 4, 3, 24},
        BinaryCase{MatrixOp::kCpd, 9, 3, 9, 2, 25},
        BinaryCase{MatrixOp::kSol, 6, 3, 6, 1, 26},
        BinaryCase{MatrixOp::kOpd, 5, 3, 4, 3, 27}),
    BinaryCaseName);

// The wait-free reduced check above needs the consistency reduction to hold
// for mmu's (r1,c2) shape as well; the binary reduction uses "id".

// --- closure / nesting -----------------------------------------------------------

TEST(RmaClosure, OperationsNestArbitrarily) {
  Rng rng(31);
  const Relation r = RandomKeyedRelation(6, 6, &rng);
  // tra(tra(r)) reduces back to r's application part (Fig. 10).
  const Relation t1 = Tra(r, {"id"}).ValueOrDie();
  const Relation t2 = Tra(t1, {"C"}).ValueOrDie();
  const DenseMatrix round =
      MatrixConstructor(t2, {"C"}).ValueOrDie();
  const DenseMatrix orig = MatrixConstructor(r, {"id"}).ValueOrDie();
  EXPECT_TRUE(round.AllClose(orig, 1e-10));
}

TEST(RmaClosure, QqrTimesRqrReconstructsInput) {
  Rng rng(32);
  const Relation r = RandomKeyedRelation(9, 4, &rng);
  const Relation q = Qqr(r, {"id"}).ValueOrDie();
  const Relation rr = Rqr(r, {"id"}).ValueOrDie();
  const Relation qr = Mmu(q, {"id"}, rr, {"C"}).ValueOrDie();
  const DenseMatrix got = MatrixConstructor(qr, {"id"}).ValueOrDie();
  const DenseMatrix want = MatrixConstructor(r, {"id"}).ValueOrDie();
  EXPECT_TRUE(got.AllClose(want, 1e-8));
}

TEST(RmaClosure, InvIsSelfInverse) {
  const Relation r = RandomSpdRelation(5, 33);
  const Relation once = Inv(r, {"id"}).ValueOrDie();
  const Relation twice = Inv(once, {"id"}).ValueOrDie();
  const DenseMatrix got = MatrixConstructor(twice, {"id"}).ValueOrDie();
  const DenseMatrix want = MatrixConstructor(r, {"id"}).ValueOrDie();
  EXPECT_TRUE(got.AllClose(want, 1e-6));
}

// --- stats instrumentation ---------------------------------------------------------

TEST(RmaStatsTest, ContiguousPathReportsTransformTime) {
  Rng rng(34);
  const Relation r = RandomKeyedRelation(5000, 8, &rng);
  RmaOptions opts;
  opts.kernel = KernelPolicy::kContiguous;
  RmaStats stats;
  opts.stats = &stats;
  Qqr(r, {"id"}, opts).ValueOrDie();
  EXPECT_GT(stats.TransformSeconds(), 0.0);
  EXPECT_GT(stats.compute_seconds, 0.0);
  EXPECT_GT(stats.TotalSeconds(), 0.0);
}

TEST(RmaStatsTest, BatPathHasNoTransformTime) {
  Rng rng(35);
  const Relation r = RandomKeyedRelation(1000, 4, &rng);
  Relation s = RandomKeyedRelation(1000, 4, &rng, -10, 10, "s");
  s = *s.RenameColumn(0, "id2");
  RmaOptions opts;
  opts.kernel = KernelPolicy::kBat;
  RmaStats stats;
  opts.stats = &stats;
  Add(r, {"id"}, s, {"id2"}, opts).ValueOrDie();
  EXPECT_EQ(stats.TransformSeconds(), 0.0);
}

// --- kAuto policy ------------------------------------------------------------------

TEST(KernelPolicyTest, AutoSwitchesToBatBeyondBudget) {
  Rng rng(36);
  const Relation r = RandomKeyedRelation(64, 8, &rng);
  RmaOptions opts;
  opts.kernel = KernelPolicy::kAuto;
  opts.contiguous_budget_bytes = 1;  // force the BAT fallback
  RmaStats stats;
  opts.stats = &stats;
  Qqr(r, {"id"}, opts).ValueOrDie();
  EXPECT_EQ(stats.TransformSeconds(), 0.0);  // no contiguous copy happened
}

}  // namespace
}  // namespace rma
