// The database-level QueryCache: statement normalization, catalog-versioned
// plan invalidation, cross-context prepared-argument sharing, precise
// relation eviction, and capacity-bounded LRU eviction.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/exec_context.h"
#include "core/query_cache.h"
#include "core/rma.h"
#include "test_util.h"

namespace rma {
namespace {

using testing::RandomKeyedRelation;

TEST(NormalizeStatementTest, CaseWhitespaceAndSemicolon) {
  EXPECT_EQ(QueryCache::NormalizeStatement("SELECT  *\n FROM   t ;"),
            "select * from t");
  EXPECT_EQ(QueryCache::NormalizeStatement("select * from t"),
            "select * from t");
}

TEST(NormalizeStatementTest, PreservesStringLiterals) {
  EXPECT_EQ(QueryCache::NormalizeStatement("SELECT * FROM t WHERE s = 'A  B'"),
            "select * from t where s = 'A  B'");
}

TEST(NormalizeStatementTest, EscapedQuoteDoesNotDesyncQuoteState) {
  // '' is an escaped quote inside a literal (lexer semantics): the literal
  // continues, so the differing trailing characters must keep the two
  // statements on different keys.
  EXPECT_NE(
      QueryCache::NormalizeStatement("SELECT * FROM t WHERE s = 'X''y'"),
      QueryCache::NormalizeStatement("SELECT * FROM t WHERE s = 'X''Y'"));
  EXPECT_EQ(
      QueryCache::NormalizeStatement("SELECT * FROM t WHERE s = 'X''Y'  "),
      "select * from t where s = 'X''Y'");
}

TEST(NormalizeStatementTest, StripsLineComments) {
  // Comment-only differences must share one plan entry, and an apostrophe
  // inside a comment must not flip the quote-tracking state.
  EXPECT_EQ(QueryCache::NormalizeStatement(
                "SELECT * FROM t -- don't trip the quote tracker\n"),
            "select * from t");
  EXPECT_EQ(QueryCache::NormalizeStatement(
                "SELECT a, -- pick a\n b FROM t"),
            QueryCache::NormalizeStatement("SELECT a, b FROM t"));
  // The comment separates tokens like whitespace.
  EXPECT_EQ(QueryCache::NormalizeStatement("SELECT a--c\nFROM t"),
            "select a from t");
}

TEST(NormalizeStatementTest, StripsBlockComments) {
  EXPECT_EQ(QueryCache::NormalizeStatement(
                "SELECT /* don't */ * FROM /* t? no: */ t"),
            "select * from t");
  EXPECT_EQ(QueryCache::NormalizeStatement("SELECT a/* tight */FROM t"),
            "select a from t");
  // Multi-line block comment, with a quote on its own line.
  EXPECT_EQ(QueryCache::NormalizeStatement(
                "SELECT * FROM t /* line one\n 'line two'\n*/ WHERE a > 1"),
            "select * from t where a > 1");
}

TEST(NormalizeStatementTest, CommentMarkersInsideLiteralsArePreserved) {
  EXPECT_EQ(QueryCache::NormalizeStatement("SELECT '--x' FROM t"),
            "select '--x' from t");
  EXPECT_EQ(QueryCache::NormalizeStatement("SELECT '/* x */' FROM t"),
            "select '/* x */' from t");
}

TEST(NormalizeStatementTest, StripsExplainAnalyzePrefix) {
  const std::string base = QueryCache::NormalizeStatement("SELECT * FROM t");
  EXPECT_EQ(QueryCache::NormalizeStatement("EXPLAIN SELECT * FROM t"), base);
  EXPECT_EQ(QueryCache::NormalizeStatement("EXPLAIN ANALYZE  SELECT * FROM t"),
            base);
}

TEST(OptionsFingerprintTest, PlanAffectingFieldsChangeTheFingerprint) {
  RmaOptions a;
  RmaOptions b;
  EXPECT_EQ(QueryCache::OptionsFingerprint(a),
            QueryCache::OptionsFingerprint(b));
  b.kernel = KernelPolicy::kBat;
  EXPECT_NE(QueryCache::OptionsFingerprint(a),
            QueryCache::OptionsFingerprint(b));
  b = a;
  b.rewrites.mmu_tra_to_cpd = false;
  EXPECT_NE(QueryCache::OptionsFingerprint(a),
            QueryCache::OptionsFingerprint(b));
  // The stats sink is an output channel, not plan content.
  b = a;
  RmaStats sink;
  b.stats = &sink;
  EXPECT_EQ(QueryCache::OptionsFingerprint(a),
            QueryCache::OptionsFingerprint(b));
}

TEST(QueryCacheTest, PlanHitsOnlyAtItsCatalogVersion) {
  QueryCache cache;
  auto plan = std::make_shared<QueryCache::StatementPlan>();
  plan->catalog_version = 3;
  plan->options_fingerprint = 42;
  cache.StorePlan("select * from t", plan);

  EXPECT_NE(cache.LookupPlan("select * from t", 3, 42), nullptr);
  // Register/Drop between runs bumps the version: the entry must miss.
  EXPECT_EQ(cache.LookupPlan("select * from t", 4, 42), nullptr);
  // Changed options must miss too.
  EXPECT_EQ(cache.LookupPlan("select * from t", 3, 43), nullptr);
  EXPECT_EQ(cache.counters().plan_hits, 1);
  EXPECT_EQ(cache.counters().plan_misses, 2);
}

QueryCache::StatementPlanPtr PlanReading(QueryCache::TableSnapshot tables,
                                         uint64_t version,
                                         uint64_t fingerprint = 42) {
  auto plan = std::make_shared<QueryCache::StatementPlan>();
  plan->catalog_version = version;
  plan->options_fingerprint = fingerprint;
  plan->base_tables = std::move(tables);
  plan->tables_known = true;
  return plan;
}

TEST(QueryCacheTest, IdentitySnapshotHitsAcrossVersionBumps) {
  // A plan with an attributed read set hits for any caller whose current
  // snapshot matches — mutations of *other* tables bumped the version but
  // changed none of this plan's relations.
  QueryCache cache;
  const QueryCache::TableSnapshot snap = {{"a", 11}, {"b", 12}};
  cache.StorePlan("q", PlanReading(snap, /*version=*/3));
  EXPECT_NE(cache.LookupPlan("q", 3, 42, &snap), nullptr);
  EXPECT_NE(cache.LookupPlan("q", 9, 42, &snap), nullptr);  // version moved on
  // A different identity for either table must miss (the relation was
  // replaced, or the caller is a different catalog sharing the cache).
  const QueryCache::TableSnapshot replaced = {{"a", 11}, {"b", 99}};
  EXPECT_EQ(cache.LookupPlan("q", 9, 42, &replaced), nullptr);
  // The options fingerprint still gates identity hits.
  EXPECT_EQ(cache.LookupPlan("q", 3, 43, &snap), nullptr);
  // A caller without a snapshot falls back to exact-version matching.
  EXPECT_NE(cache.LookupPlan("q", 3, 42), nullptr);
  EXPECT_EQ(cache.LookupPlan("q", 9, 42), nullptr);
}

TEST(QueryCacheTest, InvalidatePlansForTablesEvictsOnlyIntersectingPlans) {
  QueryCache cache;
  cache.StorePlan("qa", PlanReading({{"a", 1}}, 5));
  cache.StorePlan("qb", PlanReading({{"b", 2}}, 5));
  cache.StorePlan("qab", PlanReading({{"a", 1}, {"b", 2}}, 5));
  ASSERT_EQ(cache.plan_entries(), 3u);

  // Mutating `a` evicts exactly the plans reading `a`; the counter stays
  // precise (two evictions, not three).
  cache.InvalidatePlansForTables({"a"}, /*current_version=*/6);
  EXPECT_EQ(cache.plan_entries(), 1u);
  EXPECT_EQ(cache.counters().plan_invalidations, 2);
  const QueryCache::TableSnapshot snap_b = {{"b", 2}};
  EXPECT_NE(cache.LookupPlan("qb", 6, 42, &snap_b), nullptr);

  // Mutating an unrelated table costs nothing further.
  cache.InvalidatePlansForTables({"c"}, 7);
  EXPECT_EQ(cache.plan_entries(), 1u);
  EXPECT_EQ(cache.counters().plan_invalidations, 2);
}

TEST(QueryCacheTest, InvalidatePlansForTablesVersionBackstopsUnattributed) {
  // Entries without an attributed read set cannot be matched by name: any
  // mutation strands them at their old version, and the sweep drops them.
  QueryCache cache;
  auto unattributed = std::make_shared<QueryCache::StatementPlan>();
  unattributed->catalog_version = 5;
  unattributed->options_fingerprint = 42;
  cache.StorePlan("qu", unattributed);
  cache.StorePlan("qb", PlanReading({{"b", 2}}, 5));
  cache.InvalidatePlansForTables({"a"}, 6);
  EXPECT_EQ(cache.plan_entries(), 1u);  // only the attributed plan survives
  EXPECT_EQ(cache.counters().plan_invalidations, 1);
  const QueryCache::TableSnapshot snap_b = {{"b", 2}};
  EXPECT_NE(cache.LookupPlan("qb", 6, 42, &snap_b), nullptr);
}

TEST(QueryCacheTest, PreparedArgumentsSharedAcrossContexts) {
  Rng rng(21);
  const Relation r = RandomKeyedRelation(4000, 6, &rng);
  auto shared = std::make_shared<QueryCache>();

  RmaOptions opts;  // SortPolicy::kAlways: every prepare sorts
  ExecContext first(opts, shared);
  RmaStats cold;
  first.mutable_options().stats = &cold;
  ASSERT_OK(RmaUnary(&first, MatrixOp::kQqr, r, {"id"}).status());
  EXPECT_GT(cold.sort_seconds, 0.0);
  EXPECT_EQ(cold.prepared_cache_misses, 1);

  // A *different* context borrowing the same cache — the database-level
  // promotion: the sort permutation survives the statement boundary.
  ExecContext second(opts, shared);
  RmaStats warm;
  second.mutable_options().stats = &warm;
  ASSERT_OK(RmaUnary(&second, MatrixOp::kRqr, r, {"id"}).status());
  EXPECT_EQ(warm.sort_seconds, 0.0);
  EXPECT_EQ(warm.prepared_cache_hits, 1);
  EXPECT_EQ(shared->counters().prepared_hits, 1);
}

TEST(QueryCacheTest, EvictRelationForcesResort) {
  Rng rng(22);
  const Relation r = RandomKeyedRelation(1000, 4, &rng);
  auto shared = std::make_shared<QueryCache>();
  ExecContext ctx(RmaOptions{}, shared);
  ASSERT_OK(RmaUnary(&ctx, MatrixOp::kQqr, r, {"id"}).status());
  ASSERT_EQ(shared->prepared_entries(), 1u);

  shared->EvictRelation(r.identity());
  EXPECT_EQ(shared->prepared_entries(), 0u);
  EXPECT_GE(shared->counters().evictions, 1);

  RmaStats again;
  ctx.mutable_options().stats = &again;
  ASSERT_OK(RmaUnary(&ctx, MatrixOp::kQqr, r, {"id"}).status());
  EXPECT_GT(again.sort_seconds, 0.0);  // re-sorted, not served stale
}

TEST(QueryCacheTest, ReRegisteredRelationCannotServeStaleArguments) {
  // The invalidation contract behind DROP + re-Register with different
  // data: fresh relations carry fresh identity tokens, so the stale entry
  // can never be keyed to again.
  Rng rng1(23);
  Rng rng2(24);
  const Relation old_rel = RandomKeyedRelation(500, 3, &rng1);
  const Relation new_rel = RandomKeyedRelation(500, 3, &rng2);
  EXPECT_NE(old_rel.identity(), new_rel.identity());
  const Relation copy = old_rel;
  EXPECT_EQ(copy.identity(), old_rel.identity());  // copies share contents

  auto shared = std::make_shared<QueryCache>();
  ExecContext ctx(RmaOptions{}, shared);
  ASSERT_OK(RmaUnary(&ctx, MatrixOp::kQqr, old_rel, {"id"}).status());
  RmaStats warm;
  ctx.mutable_options().stats = &warm;
  ASSERT_OK(RmaUnary(&ctx, MatrixOp::kQqr, new_rel, {"id"}).status());
  EXPECT_EQ(warm.prepared_cache_hits, 0);
  EXPECT_EQ(warm.prepared_cache_misses, 1);
}

TEST(QueryCacheTest, PreparedCapacityIsBoundedWithLruEviction) {
  QueryCache cache;
  for (int i = 0; i < 300; ++i) {
    cache.StorePrepared("key" + std::to_string(i),
                        {static_cast<uint64_t>(i) + 1000000},
                        std::make_shared<const PreparedArg>());
  }
  EXPECT_LE(cache.prepared_entries(), 256u);
  EXPECT_GE(cache.counters().evictions, 300 - 256);
  // The most recently stored keys survive.
  EXPECT_NE(cache.LookupPrepared("key299"), nullptr);
  EXPECT_EQ(cache.LookupPrepared("key0"), nullptr);
}

TEST(QueryCacheTest, ValidationVariantIsPartOfThePreparedKey) {
  // A prepared argument computed with validate_keys=false must not satisfy
  // a later context that requires validation: the lax entry skipped the
  // key-uniqueness check, and serving it would mask the Invalid error.
  const Relation dup =
      Relation::Make(Schema::Make({{"id", DataType::kInt64},
                                   {"a", DataType::kDouble}})
                         .ValueOrDie(),
                     {MakeInt64Bat({1, 1}), MakeDoubleBat({2.0, 3.0})}, "dup")
          .ValueOrDie();
  auto shared = std::make_shared<QueryCache>();
  RmaOptions lax;
  lax.validate_keys = false;
  ExecContext trusting(lax, shared);
  ASSERT_OK(RmaUnary(&trusting, MatrixOp::kQqr, dup, {"id"}).status());

  ExecContext strict(RmaOptions{}, shared);  // validate_keys = true
  const auto checked = RmaUnary(&strict, MatrixOp::kQqr, dup, {"id"});
  EXPECT_TRUE(checked.status().IsInvalid())
      << "duplicate keys must be rejected, not served from the lax entry: "
      << checked.status().ToString();
}

TEST(QueryCacheTest, AlignedPermutationReusedAcrossElementwiseOps) {
  // The shared-sort extension of PrepareBinaryArgs: add then sub over the
  // same (r, s) pair under SortPolicy::kOptimized hash-aligns once and
  // serves the second op from the cache.
  Rng rng(25);
  const Relation r = RandomKeyedRelation(2000, 4, &rng);
  Relation s = RandomKeyedRelation(2000, 4, &rng, -10, 10, "s");
  ASSERT_OK_AND_ASSIGN(s, s.RenameColumn(0, "id2"));

  RmaOptions opts;
  opts.sort = SortPolicy::kOptimized;
  ExecContext ctx(opts);
  ASSERT_OK(RmaBinary(&ctx, MatrixOp::kAdd, r, {"id"}, s, {"id2"}).status());
  RmaStats second;
  ctx.mutable_options().stats = &second;
  ASSERT_OK(RmaBinary(&ctx, MatrixOp::kSub, r, {"id"}, s, {"id2"}).status());
  EXPECT_GE(second.prepared_cache_hits, 1);
  EXPECT_EQ(second.sort_seconds, 0.0);  // alignment reused, no hash pass
}

// --- in-flight plan dedupe ----------------------------------------------------

TEST(PlanDedupeTest, FirstAcquirerLeadsThenWaitersBorrow) {
  QueryCache cache;
  const std::string key = "select * from t";
  QueryCache::PlanTicket first = cache.AcquirePlan(key, 3, 42);
  EXPECT_TRUE(first.leader);
  EXPECT_EQ(first.plan, nullptr);

  // A concurrent identical statement blocks until the leader publishes.
  std::thread waiter([&] {
    QueryCache::PlanTicket t = cache.AcquirePlan(key, 3, 42);
    EXPECT_FALSE(t.leader);
    EXPECT_TRUE(t.borrowed);
    ASSERT_NE(t.plan, nullptr);
    EXPECT_EQ(t.plan->catalog_version, 3u);
  });
  // The wait counter bumps right before the waiter blocks; publishing only
  // after observing it makes the borrow path deterministic.
  while (cache.counters().plan_dedup_waits == 0) std::this_thread::yield();
  auto plan = std::make_shared<QueryCache::StatementPlan>();
  plan->catalog_version = 3;
  plan->options_fingerprint = 42;
  cache.PublishPlan(key, plan);
  waiter.join();

  // After publication the entry is a normal cache hit.
  QueryCache::PlanTicket later = cache.AcquirePlan(key, 3, 42);
  EXPECT_FALSE(later.leader);
  EXPECT_FALSE(later.borrowed);
  EXPECT_NE(later.plan, nullptr);

  const QueryCache::Counters c = cache.counters();
  EXPECT_EQ(c.plan_misses, 1);      // only the leader planned
  EXPECT_EQ(c.plan_dedup_waits, 1);
  EXPECT_EQ(c.plan_hits, 2);        // the borrower and the later hit
}

TEST(PlanDedupeTest, AbandonedLeaderHandsOffToAWaiter) {
  QueryCache cache;
  const std::string key = "select * from broken";
  QueryCache::PlanTicket first = cache.AcquirePlan(key, 1, 7);
  ASSERT_TRUE(first.leader);

  std::thread waiter([&] {
    // Wakes empty-handed when the leader abandons, retries, and is elected
    // the new leader.
    QueryCache::PlanTicket t = cache.AcquirePlan(key, 1, 7);
    EXPECT_TRUE(t.leader);
    EXPECT_EQ(t.plan, nullptr);
    cache.AbandonPlan(key);  // resolve its own leadership for the test
  });
  cache.AbandonPlan(key);
  waiter.join();
  EXPECT_EQ(cache.plan_entries(), 0u);  // nothing was ever stored
}

TEST(PlanDedupeTest, WaiterWithMatchingSnapshotBorrowsAcrossVersions) {
  // A leader and a waiter at different catalog versions are compatible as
  // long as their identity snapshots match: the versions diverged on a
  // table neither statement reads.
  QueryCache cache;
  const std::string key = "select * from t";
  const QueryCache::TableSnapshot snap = {{"t", 7}};
  QueryCache::PlanTicket leader = cache.AcquirePlan(key, 3, 42, &snap);
  ASSERT_TRUE(leader.leader);

  std::thread waiter([&] {
    QueryCache::PlanTicket t = cache.AcquirePlan(key, 9, 42, &snap);
    EXPECT_FALSE(t.leader);
    ASSERT_NE(t.plan, nullptr);
  });
  while (cache.counters().plan_dedup_waits == 0) std::this_thread::yield();
  auto plan = std::make_shared<QueryCache::StatementPlan>();
  plan->catalog_version = 3;
  plan->options_fingerprint = 42;
  plan->base_tables = snap;
  plan->tables_known = true;
  cache.PublishPlan(key, std::move(plan));
  waiter.join();

  // A snapshot naming a different relation is incompatible with the stored
  // entry and plans independently.
  const QueryCache::TableSnapshot other = {{"t", 8}};
  QueryCache::PlanTicket t = cache.AcquirePlan(key, 9, 42, &other);
  EXPECT_TRUE(t.leader);  // entry cannot serve it; no leader in flight
  cache.AbandonPlan(key);
}

TEST(PlanDedupeTest, BorrowRevalidatesThePublishedPlan) {
  // The leader advertises its acquire-time snapshot, but a catalog
  // mutation landing mid-flight can make it bind (and publish) a plan
  // over a *different* relation. A waiter whose snapshot matched the
  // advertisement must re-validate the published plan and plan
  // independently instead of borrowing another catalog state's leaves.
  QueryCache cache;
  const std::string key = "select * from t";
  const QueryCache::TableSnapshot snap = {{"t", 7}};
  QueryCache::PlanTicket leader = cache.AcquirePlan(key, 3, 42, &snap);
  ASSERT_TRUE(leader.leader);

  std::thread waiter([&] {
    QueryCache::PlanTicket t = cache.AcquirePlan(key, 3, 42, &snap);
    EXPECT_FALSE(t.leader);
    EXPECT_FALSE(t.borrowed);
    EXPECT_EQ(t.plan, nullptr);  // rejected: the plan embeds relation 8
  });
  while (cache.counters().plan_dedup_waits == 0) std::this_thread::yield();
  auto plan = std::make_shared<QueryCache::StatementPlan>();
  plan->catalog_version = 3;
  plan->options_fingerprint = 42;
  plan->base_tables = {{"t", 8}};  // what the leader actually bound
  plan->tables_known = true;
  cache.PublishPlan(key, std::move(plan));
  waiter.join();
}

TEST(PlanDedupeTest, IncompatibleInflightLeaderDoesNotBlock) {
  QueryCache cache;
  const std::string key = "select * from t";
  QueryCache::PlanTicket leader = cache.AcquirePlan(key, 1, 7);
  ASSERT_TRUE(leader.leader);
  // Same text, different catalog version: the leader's plan could never
  // serve this statement, so it must not wait — it plans independently.
  QueryCache::PlanTicket other = cache.AcquirePlan(key, 2, 7);
  EXPECT_FALSE(other.leader);
  EXPECT_FALSE(other.borrowed);
  EXPECT_EQ(other.plan, nullptr);
  cache.AbandonPlan(key);
}

TEST(PlanDedupeTest, ManyConcurrentAcquirersPlanExactlyOnce) {
  QueryCache cache;
  const std::string key = "select * from hot";
  constexpr int kThreads = 8;
  std::atomic<int> leaders{0};
  std::atomic<int> served{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      QueryCache::PlanTicket t = cache.AcquirePlan(key, 5, 9);
      if (t.leader) {
        ++leaders;
        auto plan = std::make_shared<QueryCache::StatementPlan>();
        plan->catalog_version = 5;
        plan->options_fingerprint = 9;
        cache.PublishPlan(key, std::move(plan));
      } else if (t.plan != nullptr) {
        ++served;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(leaders.load(), 1);
  EXPECT_EQ(served.load(), kThreads - 1);
  EXPECT_EQ(cache.counters().plan_misses, 1);
}

}  // namespace
}  // namespace rma
