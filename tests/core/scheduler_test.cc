// Tests for the concurrent stage scheduler (core/scheduler.h), the
// thread-safe ExecContext aggregation it relies on, and the evict-on-error
// audit of the borrowed prepared-argument cache.
#include "core/scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/algebra.h"
#include "core/exec_context.h"
#include "core/query_cache.h"
#include "core/rma.h"
#include "test_util.h"
#include "util/random.h"

namespace rma {
namespace {

using testing::RandomKeyedRelation;

/// Cell-exact relation comparison (schema names + stringified values).
void ExpectSameRelation(const Relation& a, const Relation& b) {
  ASSERT_EQ(a.num_columns(), b.num_columns());
  ASSERT_EQ(a.num_rows(), b.num_rows());
  for (int c = 0; c < a.num_columns(); ++c) {
    EXPECT_EQ(a.schema().attribute(c).name, b.schema().attribute(c).name);
    for (int64_t i = 0; i < a.num_rows(); ++i) {
      EXPECT_EQ(a.column(c)->GetString(i), b.column(c)->GetString(i))
          << "column " << c << " row " << i;
    }
  }
}

/// add(qqr(r BY id), qqr(s BY id2)): two independent non-leaf subtrees — the
/// smallest expression with a genuine fork and a shape-dependent barrier.
RmaExprPtr ForkExpression(const Relation& r, const Relation& s) {
  return RmaExpr::Binary(
      MatrixOp::kAdd,
      RmaExpr::Unary(MatrixOp::kQqr, RmaExpr::Leaf(r), {"id"}), {"id"},
      RmaExpr::Unary(MatrixOp::kQqr, RmaExpr::Leaf(s), {"id2"}), {"id2"});
}

Relation MakeRightRelation(int64_t n, int cols, Rng* rng) {
  Relation s = RandomKeyedRelation(n, cols, rng, -10.0, 10.0, "s");
  return s.RenameColumn(0, "id2").ValueOrDie();
}

TEST(SchedulerTest, ConcurrentMatchesSerialEvaluation) {
  Rng rng(42);
  const Relation r = RandomKeyedRelation(300, 4, &rng);
  const Relation s = MakeRightRelation(300, 4, &rng);
  const RmaExprPtr expr = ForkExpression(r, s);

  RmaOptions serial_opts;
  serial_opts.concurrent_subtrees = false;
  ExecContext serial_ctx(serial_opts);
  ASSERT_OK_AND_ASSIGN(Relation expected,
                       EvaluateExpression(expr, &serial_ctx));

  RmaOptions par_opts;
  par_opts.max_threads = 4;
  ExecContext par_ctx(par_opts);
  ASSERT_OK_AND_ASSIGN(Relation actual,
                       EvaluateExpressionConcurrent(expr, &par_ctx));

  ExpectSameRelation(expected, actual);
}

TEST(SchedulerTest, PlanOrderMatchesSerialEvaluation) {
  // Offloaded subtrees are merged at the join in child order, so the
  // recorded plans come out exactly as serial evaluation would record them
  // (EXPLAIN ANALYZE stays deterministic).
  Rng rng(43);
  const Relation r = RandomKeyedRelation(200, 3, &rng);
  const Relation s = MakeRightRelation(200, 3, &rng);
  const RmaExprPtr expr = ForkExpression(r, s);

  RmaOptions serial_opts;
  serial_opts.concurrent_subtrees = false;
  ExecContext serial_ctx(serial_opts);
  ASSERT_OK(EvaluateExpression(expr, &serial_ctx).status());

  RmaOptions par_opts;
  par_opts.max_threads = 4;
  ExecContext par_ctx(par_opts);
  ASSERT_OK(EvaluateExpressionConcurrent(expr, &par_ctx).status());

  ASSERT_EQ(par_ctx.plans().size(), serial_ctx.plans().size());
  ASSERT_EQ(par_ctx.op_stats().size(), par_ctx.plans().size());
  for (size_t i = 0; i < par_ctx.plans().size(); ++i) {
    EXPECT_EQ(par_ctx.plans()[i].op, serial_ctx.plans()[i].op) << "op " << i;
    EXPECT_EQ(par_ctx.plans()[i].kernel, serial_ctx.plans()[i].kernel)
        << "op " << i;
  }
}

TEST(SchedulerTest, RespectsParallelMinElements) {
  // With an element floor far above the subtree shapes, the scheduler must
  // fall back to inline evaluation (still correct, no forking) when the
  // lowered plan is available to reveal the shapes.
  Rng rng(44);
  const Relation r = RandomKeyedRelation(50, 3, &rng);
  const Relation s = MakeRightRelation(50, 3, &rng);
  const RmaExprPtr expr = ForkExpression(r, s);

  RmaOptions opts;
  opts.max_threads = 4;
  opts.parallel_min_elements = int64_t{1} << 40;
  ExecContext ctx(opts);
  ASSERT_OK_AND_ASSIGN(PlanNodePtr plan, PlanExpression(expr, opts));
  ASSERT_OK_AND_ASSIGN(Relation out,
                       EvaluateExpressionConcurrent(expr, &ctx, plan));

  RmaOptions serial_opts;
  serial_opts.concurrent_subtrees = false;
  ExecContext serial_ctx(serial_opts);
  ASSERT_OK_AND_ASSIGN(Relation expected, EvaluateExpression(expr, &serial_ctx));
  ExpectSameRelation(expected, out);
}

TEST(SchedulerTest, SerialFallbackWhenBudgetIsOne) {
  Rng rng(45);
  const Relation r = RandomKeyedRelation(60, 3, &rng);
  const Relation s = MakeRightRelation(60, 3, &rng);
  RmaOptions opts;
  opts.max_threads = 1;  // no headroom: must behave exactly like serial
  ExecContext ctx(opts);
  ASSERT_OK(EvaluateExpressionConcurrent(ForkExpression(r, s), &ctx).status());
  EXPECT_EQ(ctx.plans().size(), 3u);
}

TEST(SchedulerTest, DeepTreeWithRewritesMatchesSerial) {
  // The covariance pattern mmu(tra(x) BY C, x): the rewriter turns it into
  // cpd(x, x) whose children are leaves — the scheduler must degrade to
  // serial evaluation gracefully and produce identical results.
  Rng rng(46);
  const Relation x = RandomKeyedRelation(120, 4, &rng);
  RmaExprPtr tra =
      RmaExpr::Unary(MatrixOp::kTra, RmaExpr::Leaf(x), {"id"});
  RmaExprPtr mmu = RmaExpr::Binary(MatrixOp::kMmu, tra, {kContextAttrName},
                                   RmaExpr::Leaf(x), {"id"});
  RmaOptions opts;
  opts.max_threads = 4;
  ExecContext ctx(opts);
  RewriteReport report;
  const RmaExprPtr rewritten = RewriteExpression(mmu, opts.rewrites, &report);
  ASSERT_OK_AND_ASSIGN(Relation out,
                       EvaluateExpressionConcurrent(rewritten, &ctx));

  ExecContext serial_ctx{RmaOptions{}};
  ASSERT_OK_AND_ASSIGN(Relation expected,
                       EvaluateExpression(rewritten, &serial_ctx));
  ExpectSameRelation(expected, out);
}

TEST(SchedulerTest, FailingSubtreeSurfacesError) {
  Rng rng(47);
  const Relation r = RandomKeyedRelation(100, 3, &rng);
  // Right subtree fails: qqr over a relation with fewer rows than columns.
  const Relation bad = MakeRightRelation(2, 5, &rng);
  const RmaExprPtr expr = ForkExpression(r, bad);
  RmaOptions opts;
  opts.max_threads = 4;
  ExecContext ctx(opts);
  EXPECT_FALSE(EvaluateExpressionConcurrent(expr, &ctx).ok());
}

// --- evict-on-error ----------------------------------------------------------

TEST(EvictOnErrorTest, FailedUnaryOpLeavesNoPreparedEntry) {
  Rng rng(48);
  // 2 rows x 4 app cols: the sort succeeds (and would be stored), then the
  // qr row-count check fails. The op must take its cache stores back out.
  const Relation r = RandomKeyedRelation(2, 4, &rng);
  ExecContext ctx{RmaOptions{}};
  EXPECT_FALSE(RmaUnary(&ctx, MatrixOp::kQqr, r, {"id"}).ok());
  EXPECT_EQ(ctx.cache()->prepared_entries(), 0u);
  EXPECT_EQ(ctx.plans().size(), 0u);
  EXPECT_EQ(ctx.op_stats().size(), 0u);
}

TEST(EvictOnErrorTest, FailedBinaryOpLeavesNoPreparedEntries) {
  Rng rng(49);
  const Relation r = RandomKeyedRelation(40, 3, &rng);
  const Relation s = MakeRightRelation(30, 3, &rng);  // row-count mismatch
  ExecContext ctx{RmaOptions{}};
  // Both arguments prepare (two sorts stored), then the add shape check
  // fails.
  EXPECT_FALSE(RmaBinary(&ctx, MatrixOp::kAdd, r, {"id"}, s, {"id2"}).ok());
  EXPECT_EQ(ctx.cache()->prepared_entries(), 0u);
}

TEST(EvictOnErrorTest, SuccessfulOpKeepsPreparedEntry) {
  Rng rng(50);
  const Relation r = RandomKeyedRelation(40, 3, &rng);
  ExecContext ctx{RmaOptions{}};
  ASSERT_OK(RmaUnary(&ctx, MatrixOp::kQqr, r, {"id"}).status());
  EXPECT_EQ(ctx.cache()->prepared_entries(), 1u);
  ASSERT_EQ(ctx.plans().size(), 1u);
  ASSERT_EQ(ctx.op_stats().size(), 1u);
}

TEST(EvictOnErrorTest, FailureDoesNotEvictOtherStatementsEntries) {
  Rng rng(51);
  const Relation good = RandomKeyedRelation(40, 3, &rng);
  const Relation bad = RandomKeyedRelation(2, 4, &rng);
  ExecContext ctx{RmaOptions{}};
  ASSERT_OK(RmaUnary(&ctx, MatrixOp::kQqr, good, {"id"}).status());
  EXPECT_FALSE(RmaUnary(&ctx, MatrixOp::kQqr, bad, {"id"}).ok());
  // Only the failed op's stores were evicted; the earlier committed entry
  // survives.
  EXPECT_EQ(ctx.cache()->prepared_entries(), 1u);
}

// --- thread-safe stats aggregation -------------------------------------------

TEST(ExecContextConcurrencyTest, ConcurrentOpsOnOneContextStayConsistent) {
  Rng rng(52);
  const int kThreads = 8;
  const int kOpsPerThread = 16;
  std::vector<Relation> rels;
  for (int t = 0; t < kThreads; ++t) {
    rels.push_back(RandomKeyedRelation(64, 3, &rng, -10.0, 10.0,
                                       "r" + std::to_string(t)));
  }
  ExecContext ctx{RmaOptions{}};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int k = 0; k < kOpsPerThread; ++k) {
        if (!RmaUnary(&ctx, MatrixOp::kQqr, rels[static_cast<size_t>(t)],
                      {"id"})
                 .ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  const size_t total = static_cast<size_t>(kThreads) * kOpsPerThread;
  // Concurrent EndOp must neither lose nor duplicate entries, and the
  // plans/op_stats alignment must hold.
  EXPECT_EQ(ctx.plans().size(), total);
  EXPECT_EQ(ctx.op_stats().size(), total);
  // Every op performed exactly one prepare lookup.
  EXPECT_EQ(ctx.cache_hits() + ctx.cache_misses(),
            static_cast<int64_t>(total));
  EXPECT_EQ(ctx.totals().prepared_cache_hits +
                ctx.totals().prepared_cache_misses,
            static_cast<int64_t>(total));
}

}  // namespace
}  // namespace rma
