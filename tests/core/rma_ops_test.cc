// Per-operation unit tests for all 19 relational matrix operations:
// result schemas (Table 2), origins, values, and error conditions.
#include <gtest/gtest.h>

#include <cmath>

#include "core/constructors.h"
#include "core/rma.h"
#include "test_util.h"

namespace rma {
namespace {

using testing::ColumnDoubles;
using testing::MakeRelation;
using testing::WeatherRelation;

Relation Square2(const std::string& key_name = "k") {
  // 2x2 application part [[6,7],[8,5]] keyed by strings "a","b".
  return MakeRelation({{key_name, DataType::kString},
                       {"x", DataType::kDouble},
                       {"y", DataType::kDouble}},
                      {{std::string("a"), 6.0, 7.0},
                       {std::string("b"), 8.0, 5.0}},
                      "sq");
}

Relation Tall(const std::string& key = "id") {
  return MakeRelation({{key, DataType::kInt64},
                       {"x", DataType::kDouble},
                       {"y", DataType::kDouble}},
                      {{int64_t{3}, 1.0, 2.0},
                       {int64_t{1}, 3.0, 4.0},
                       {int64_t{2}, 5.0, 6.0}},
                      "tall");
}

// --- shapes and origins per op ------------------------------------------------

TEST(RmaOps, InvSchemaAndValue) {
  const Relation v = Inv(Square2(), {"k"}).ValueOrDie();
  EXPECT_EQ(v.schema().Names(), (std::vector<std::string>{"k", "x", "y"}));
  EXPECT_NEAR(ValueToDouble(v.Get(0, 1)), -5.0 / 26.0, 1e-12);
}

TEST(RmaOps, InvRequiresSquare) {
  EXPECT_STATUS(kInvalidArgument, Inv(Tall(), {"id"}));
}

TEST(RmaOps, InvSingularReported) {
  const Relation r = MakeRelation({{"k", DataType::kInt64},
                                   {"x", DataType::kDouble},
                                   {"y", DataType::kDouble}},
                                  {{int64_t{1}, 1.0, 2.0},
                                   {int64_t{2}, 2.0, 4.0}});
  EXPECT_STATUS(kNumericError, Inv(r, {"k"}));
}

TEST(RmaOps, TraColumnCastRequiresSingleOrderAttr) {
  EXPECT_STATUS(kInvalidArgument, Tra(WeatherRelation(), {"T", "H"}));
}

TEST(RmaOps, TraNumericKeyValuesBecomeNames) {
  const Relation t = Tra(Tall(), {"id"}).ValueOrDie();
  EXPECT_EQ(t.schema().Names(), (std::vector<std::string>{"C", "1", "2", "3"}));
  EXPECT_EQ(ColumnDoubles(t, "1"), (std::vector<double>{3, 4}));  // id=1 row
}

TEST(RmaOps, QqrRequiresTall) {
  const Relation wide = MakeRelation({{"k", DataType::kInt64},
                                      {"x", DataType::kDouble},
                                      {"y", DataType::kDouble},
                                      {"z", DataType::kDouble}},
                                     {{int64_t{1}, 1.0, 2.0, 3.0},
                                      {int64_t{2}, 4.0, 5.0, 6.0}});
  EXPECT_STATUS(kInvalidArgument, Qqr(wide, {"k"}));
}

TEST(RmaOps, RqrIsUpperTriangular) {
  const Relation rr = Rqr(Tall(), {"id"}).ValueOrDie();
  EXPECT_EQ(rr.schema().Names(), (std::vector<std::string>{"C", "x", "y"}));
  ASSERT_EQ(rr.num_rows(), 2);
  EXPECT_EQ(ValueToDouble(rr.Get(1, 1)), 0.0);
  EXPECT_GT(ValueToDouble(rr.Get(0, 1)), 0.0);  // sign convention
}

TEST(RmaOps, DetOfKnownMatrix) {
  const Relation d = Det(Square2(), {"k"}).ValueOrDie();
  EXPECT_EQ(d.schema().Names(), (std::vector<std::string>{"C", "det"}));
  ASSERT_EQ(d.num_rows(), 1);
  EXPECT_EQ(ValueToString(d.Get(0, 0)), "sq");  // relation-name origin
  EXPECT_NEAR(ValueToDouble(d.Get(0, 1)), -26.0, 1e-9);
}

TEST(RmaOps, RnkFullAndDeficient) {
  const Relation full = Rnk(Tall(), {"id"}).ValueOrDie();
  EXPECT_NEAR(ValueToDouble(full.Get(0, 1)), 2.0, 1e-12);
  const Relation deficient = MakeRelation(
      {{"k", DataType::kInt64}, {"x", DataType::kDouble}, {"y", DataType::kDouble}},
      {{int64_t{1}, 1.0, 2.0},
       {int64_t{2}, 2.0, 4.0},
       {int64_t{3}, 3.0, 6.0}});
  EXPECT_NEAR(ValueToDouble(Rnk(deficient, {"k"}).ValueOrDie().Get(0, 1)),
              1.0, 1e-12);
}

TEST(RmaOps, EvlSymmetricKnown) {
  const Relation r = MakeRelation({{"k", DataType::kInt64},
                                   {"x", DataType::kDouble},
                                   {"y", DataType::kDouble}},
                                  {{int64_t{1}, 2.0, 1.0},
                                   {int64_t{2}, 1.0, 2.0}});
  const Relation evl = Evl(r, {"k"}).ValueOrDie();
  EXPECT_EQ(evl.schema().Names(), (std::vector<std::string>{"k", "evl"}));
  EXPECT_NEAR(ValueToDouble(evl.Get(0, 1)), 3.0, 1e-10);
  EXPECT_NEAR(ValueToDouble(evl.Get(1, 1)), 1.0, 1e-10);
}

TEST(RmaOps, EvcRequiresSymmetric) {
  EXPECT_STATUS(kNumericError, Evc(Square2(), {"k"}));
}

TEST(RmaOps, EvcEigenvectorProperty) {
  const Relation r = MakeRelation({{"k", DataType::kInt64},
                                   {"x", DataType::kDouble},
                                   {"y", DataType::kDouble}},
                                  {{int64_t{1}, 2.0, 1.0},
                                   {int64_t{2}, 1.0, 2.0}});
  const Relation evc = Evc(r, {"k"}).ValueOrDie();
  // First eigenvector of [[2,1],[1,2]] is (1,1)/sqrt(2).
  EXPECT_NEAR(std::fabs(ValueToDouble(evc.Get(0, 1))), 1 / std::sqrt(2.0),
              1e-10);
}

TEST(RmaOps, ChfUpperFactor) {
  const Relation spd = MakeRelation({{"k", DataType::kInt64},
                                     {"x", DataType::kDouble},
                                     {"y", DataType::kDouble}},
                                    {{int64_t{1}, 4.0, 2.0},
                                     {int64_t{2}, 2.0, 5.0}});
  const Relation u = Chf(spd, {"k"}).ValueOrDie();
  // chol([[4,2],[2,5]]) upper = [[2,1],[0,2]].
  EXPECT_NEAR(ValueToDouble(u.Get(0, 1)), 2.0, 1e-12);
  EXPECT_NEAR(ValueToDouble(u.Get(0, 2)), 1.0, 1e-12);
  EXPECT_NEAR(ValueToDouble(u.Get(1, 1)), 0.0, 1e-12);
  EXPECT_NEAR(ValueToDouble(u.Get(1, 2)), 2.0, 1e-12);
}

TEST(RmaOps, DsvDiagonalOfSingularValues) {
  const Relation d = Dsv(Tall(), {"id"}).ValueOrDie();
  EXPECT_EQ(d.schema().Names(), (std::vector<std::string>{"C", "x", "y"}));
  ASSERT_EQ(d.num_rows(), 2);
  EXPECT_NEAR(ValueToDouble(d.Get(0, 2)), 0.0, 1e-12);  // off-diagonal
  EXPECT_NEAR(ValueToDouble(d.Get(1, 1)), 0.0, 1e-12);
  EXPECT_GE(ValueToDouble(d.Get(0, 1)), ValueToDouble(d.Get(1, 2)));
}

TEST(RmaOps, UsvRequiresSingleOrderAttrAndIsSquare) {
  EXPECT_STATUS(kInvalidArgument, Usv(Qqr(WeatherRelation(), {"W", "T"})
                                          .ValueOrDie(),
                                      {"W", "T"}));
  const Relation u = Usv(Tall(), {"id"}).ValueOrDie();
  EXPECT_EQ(u.schema().Names(),
            (std::vector<std::string>{"id", "1", "2", "3"}));
  EXPECT_EQ(u.num_rows(), 3);
}

TEST(RmaOps, VsvRightSingularVectors) {
  const Relation v = Vsv(Tall(), {"id"}).ValueOrDie();
  // DESIGN.md deviation: (c1,c1) with schema (C) ∘ app schema.
  EXPECT_EQ(v.schema().Names(), (std::vector<std::string>{"C", "x", "y"}));
  ASSERT_EQ(v.num_rows(), 2);
  // Columns are orthonormal.
  const double a = ValueToDouble(v.Get(0, 1));
  const double b = ValueToDouble(v.Get(1, 1));
  EXPECT_NEAR(a * a + b * b, 1.0, 1e-10);
}

// --- binary operations -----------------------------------------------------------

TEST(RmaOps, AddKeepsBothOrderParts) {
  const Relation r = MakeRelation({{"k", DataType::kInt64},
                                   {"x", DataType::kDouble}},
                                  {{int64_t{2}, 10.0}, {int64_t{1}, 20.0}});
  const Relation s = MakeRelation({{"j", DataType::kInt64},
                                   {"x", DataType::kDouble}},
                                  {{int64_t{1}, 1.0}, {int64_t{2}, 2.0}});
  const Relation sum = Add(r, {"k"}, s, {"j"}).ValueOrDie();
  EXPECT_EQ(sum.schema().Names(), (std::vector<std::string>{"k", "j", "x"}));
  // Sorted by k: (1, 1, 20+1), (2, 2, 10+2).
  EXPECT_EQ(std::get<int64_t>(sum.Get(0, 0)), 1);
  EXPECT_EQ(std::get<int64_t>(sum.Get(0, 1)), 1);
  EXPECT_NEAR(ValueToDouble(sum.Get(0, 2)), 21.0, 1e-12);
  EXPECT_NEAR(ValueToDouble(sum.Get(1, 2)), 12.0, 1e-12);
}

TEST(RmaOps, AddRejectsOverlappingOrderSchemas) {
  const Relation r = MakeRelation({{"k", DataType::kInt64},
                                   {"x", DataType::kDouble}},
                                  {{int64_t{1}, 1.0}});
  EXPECT_STATUS(kInvalidArgument, Add(r, {"k"}, r, {"k"}));
}

TEST(RmaOps, AddRejectsShapeMismatch) {
  const Relation r = MakeRelation({{"k", DataType::kInt64},
                                   {"x", DataType::kDouble}},
                                  {{int64_t{1}, 1.0}});
  const Relation s = MakeRelation({{"j", DataType::kInt64},
                                   {"x", DataType::kDouble}},
                                  {{int64_t{1}, 1.0}, {int64_t{2}, 2.0}});
  EXPECT_STATUS(kInvalidArgument, Add(r, {"k"}, s, {"j"}));
}

TEST(RmaOps, SubAndEmuValues) {
  const Relation r = MakeRelation({{"k", DataType::kInt64},
                                   {"x", DataType::kDouble}},
                                  {{int64_t{1}, 10.0}, {int64_t{2}, 20.0}});
  const Relation s = MakeRelation({{"j", DataType::kInt64},
                                   {"x", DataType::kDouble}},
                                  {{int64_t{1}, 3.0}, {int64_t{2}, 4.0}});
  EXPECT_NEAR(ValueToDouble(Sub(r, {"k"}, s, {"j"}).ValueOrDie().Get(0, 2)),
              7.0, 1e-12);
  EXPECT_NEAR(ValueToDouble(Emu(r, {"k"}, s, {"j"}).ValueOrDie().Get(1, 2)),
              80.0, 1e-12);
}

TEST(RmaOps, MmuInnerDimensionChecked) {
  const Relation r = Tall();          // 3x2
  const Relation s = Square2("k2");   // 2x2
  const Relation prod = Mmu(r, {"id"}, s, {"k2"}).ValueOrDie();
  EXPECT_EQ(prod.schema().Names(), (std::vector<std::string>{"id", "x", "y"}));
  EXPECT_EQ(prod.num_rows(), 3);
  // Row id=1: (3,4) x [[6,7],[8,5]] = (50, 41).
  EXPECT_NEAR(ValueToDouble(prod.Get(0, 1)), 50.0, 1e-12);
  EXPECT_NEAR(ValueToDouble(prod.Get(0, 2)), 41.0, 1e-12);
  EXPECT_STATUS(kInvalidArgument, Mmu(r, {"id"}, Tall("id2"), {"id2"}));
}

TEST(RmaOps, CpdIsTransposedProduct) {
  const Relation r = Tall();
  const Relation cpd = Cpd(r, {"id"}, r, {"id"}).ValueOrDie();
  EXPECT_EQ(cpd.schema().Names(), (std::vector<std::string>{"C", "x", "y"}));
  // AᵀA for A sorted by id = [[3,4],[5,6],[1,2]]: xx=35, xy=44, yy=56.
  EXPECT_NEAR(ValueToDouble(cpd.Get(0, 1)), 35.0, 1e-12);
  EXPECT_NEAR(ValueToDouble(cpd.Get(0, 2)), 44.0, 1e-12);
  EXPECT_NEAR(ValueToDouble(cpd.Get(1, 2)), 56.0, 1e-12);
}

TEST(RmaOps, CpdSelfApplicationUsesSyrkAndMatchesGeneric) {
  // cpd(x, x) with the same Relation object takes the symmetric SYRK fast
  // path (the paper's cblas_dsyrk for covariance); a copy of the relation
  // goes through the generic kernel. Results must agree.
  Rng rng(31);
  const Relation x = testing::RandomKeyedRelation(40, 6, &rng);
  const Relation x_copy = x;  // different object, same columns
  RmaOptions contiguous;
  contiguous.kernel = KernelPolicy::kContiguous;
  const Relation self = Cpd(x, {"id"}, x, {"id"}, contiguous).ValueOrDie();
  const Relation generic =
      Cpd(x, {"id"}, x_copy, {"id"}, contiguous).ValueOrDie();
  EXPECT_TRUE(RelationsEqualOrdered(self, generic, 1e-9));
  // And the BAT kernel agrees too.
  RmaOptions bat;
  bat.kernel = KernelPolicy::kBat;
  const Relation on_bats = Cpd(x, {"id"}, x, {"id"}, bat).ValueOrDie();
  EXPECT_TRUE(RelationsEqualOrdered(self, on_bats, 1e-9));
}

TEST(RmaOps, OpdOuterProduct) {
  const Relation r = MakeRelation({{"k", DataType::kString},
                                   {"x", DataType::kDouble}},
                                  {{std::string("r1"), 2.0},
                                   {std::string("r2"), 3.0}});
  const Relation s = MakeRelation({{"m", DataType::kString},
                                   {"x", DataType::kDouble}},
                                  {{std::string("s1"), 10.0},
                                   {std::string("s2"), 20.0}});
  const Relation opd = Opd(r, {"k"}, s, {"m"}).ValueOrDie();
  // Columns named by s's order values (column cast of V).
  EXPECT_EQ(opd.schema().Names(), (std::vector<std::string>{"k", "s1", "s2"}));
  EXPECT_NEAR(ValueToDouble(opd.Get(0, 1)), 20.0, 1e-12);  // 2*10
  EXPECT_NEAR(ValueToDouble(opd.Get(1, 2)), 60.0, 1e-12);  // 3*20
}

TEST(RmaOps, SolSolvesSystem) {
  // x + y = 3 ; x - y = 1  =>  x=2, y=1.
  const Relation a = MakeRelation({{"k", DataType::kInt64},
                                   {"x", DataType::kDouble},
                                   {"y", DataType::kDouble}},
                                  {{int64_t{1}, 1.0, 1.0},
                                   {int64_t{2}, 1.0, -1.0}});
  const Relation b = MakeRelation({{"j", DataType::kInt64},
                                   {"rhs", DataType::kDouble}},
                                  {{int64_t{1}, 3.0}, {int64_t{2}, 1.0}});
  const Relation x = Sol(a, {"k"}, b, {"j"}).ValueOrDie();
  EXPECT_EQ(x.schema().Names(), (std::vector<std::string>{"C", "rhs"}));
  EXPECT_EQ(ValueToString(x.Get(0, 0)), "x");
  EXPECT_NEAR(ValueToDouble(x.Get(0, 1)), 2.0, 1e-12);
  EXPECT_NEAR(ValueToDouble(x.Get(1, 1)), 1.0, 1e-12);
}

TEST(RmaOps, SolRejectsMultiColumnRhs) {
  const Relation a = Tall();
  EXPECT_STATUS(kInvalidArgument, Sol(a, {"id"}, Tall("id2"), {"id2"}));
}

// --- generic validation -------------------------------------------------------------

TEST(RmaOps, EmptyOrderSchemaRejected) {
  EXPECT_STATUS(kInvalidArgument, Inv(Square2(), {}));
}

TEST(RmaOps, UnknownOrderAttributeRejected) {
  EXPECT_STATUS(kKeyError, Inv(Square2(), {"nope"}));
}

TEST(RmaOps, NonNumericApplicationAttributeRejected) {
  const Relation r = MakeRelation({{"k", DataType::kInt64},
                                   {"s", DataType::kString}},
                                  {{int64_t{1}, std::string("x")}});
  EXPECT_STATUS(kTypeError, Tra(r, {"k"}));
}

TEST(RmaOps, NonKeyOrderSchemaRejected) {
  const Relation r = MakeRelation({{"k", DataType::kInt64},
                                   {"x", DataType::kDouble}},
                                  {{int64_t{1}, 1.0}, {int64_t{1}, 2.0}});
  EXPECT_STATUS(kInvalidArgument, Qqr(r, {"k"}));
  // ... also on the sort-avoiding path.
  RmaOptions opt;
  opt.sort = SortPolicy::kOptimized;
  EXPECT_STATUS(kInvalidArgument, Qqr(r, {"k"}, opt));
}

TEST(RmaOps, ArityMismatchRejected) {
  EXPECT_STATUS(kInvalidArgument,
                RmaUnary(MatrixOp::kAdd, Square2(), {"k"}));
  EXPECT_STATUS(kInvalidArgument,
                RmaBinary(MatrixOp::kInv, Square2(), {"k"}, Square2("k2"),
                          {"k2"}));
}

TEST(RmaOps, NameCollisionInResultRejected) {
  // usv result columns are named by key values; a key value equal to the
  // order attribute name collides.
  const Relation r = MakeRelation({{"id", DataType::kString},
                                   {"x", DataType::kDouble}},
                                  {{std::string("id"), 1.0}});
  EXPECT_STATUS(kInvalidArgument, Usv(r, {"id"}));
}

TEST(RmaOps, ParseMatrixOpNames) {
  EXPECT_EQ(*ParseMatrixOp("INV"), MatrixOp::kInv);
  EXPECT_EQ(*ParseMatrixOp("qqr"), MatrixOp::kQqr);
  EXPECT_EQ(*ParseMatrixOp("Tra"), MatrixOp::kTra);
  EXPECT_STATUS(kKeyError, ParseMatrixOp("nope"));
}

TEST(RmaOps, ShapeTypesMatchTable1) {
  EXPECT_EQ(GetOpInfo(MatrixOp::kMmu).shape.rows, Extent::kR1);
  EXPECT_EQ(GetOpInfo(MatrixOp::kMmu).shape.cols, Extent::kC2);
  EXPECT_EQ(GetOpInfo(MatrixOp::kTra).shape.rows, Extent::kC1);
  EXPECT_EQ(GetOpInfo(MatrixOp::kTra).shape.cols, Extent::kR1);
  EXPECT_EQ(GetOpInfo(MatrixOp::kDet).shape.rows, Extent::kOne);
  EXPECT_EQ(GetOpInfo(MatrixOp::kAdd).shape.rows, Extent::kRStar);
  EXPECT_EQ(GetOpInfo(MatrixOp::kUsv).shape.cols, Extent::kR1);
  EXPECT_EQ(GetOpInfo(MatrixOp::kOpd).shape.cols, Extent::kR2);
}

}  // namespace
}  // namespace rma
