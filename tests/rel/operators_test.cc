// Relational algebra operators and the expression layer.
#include <gtest/gtest.h>

#include "rel/expression.h"
#include "rel/operators.h"
#include "test_util.h"

namespace rma {
namespace {

using rel::Expr;
using testing::MakeRelation;

Relation People() {
  return MakeRelation({{"name", DataType::kString},
                       {"dept", DataType::kString},
                       {"age", DataType::kInt64},
                       {"salary", DataType::kDouble}},
                      {{std::string("ann"), std::string("db"), int64_t{30}, 100.0},
                       {std::string("bob"), std::string("ml"), int64_t{40}, 120.0},
                       {std::string("cat"), std::string("db"), int64_t{25}, 90.0},
                       {std::string("dan"), std::string("ml"), int64_t{35}, 110.0}},
                      "people");
}

// --- expressions ------------------------------------------------------------

TEST(Expression, ArithmeticAndTypes) {
  const Relation r = People();
  const auto e = Expr::Binary("*", Expr::Column("salary"),
                              Expr::LiteralInt(2));
  const rel::BoundExpr be = Bind(e, r.schema()).ValueOrDie();
  EXPECT_EQ(be.type(), DataType::kDouble);
  EXPECT_EQ(be.EvalDouble(r, 0), 200.0);
  // Integer arithmetic stays integral except division.
  const auto ie = Expr::Binary("+", Expr::Column("age"), Expr::LiteralInt(1));
  EXPECT_EQ(Bind(ie, r.schema()).ValueOrDie().type(), DataType::kInt64);
  const auto de = Expr::Binary("/", Expr::Column("age"), Expr::LiteralInt(2));
  EXPECT_EQ(Bind(de, r.schema()).ValueOrDie().type(), DataType::kDouble);
}

TEST(Expression, ComparisonsAndLogic) {
  const Relation r = People();
  const auto e = Expr::Binary(
      "AND",
      Expr::Binary(">", Expr::Column("age"), Expr::LiteralInt(28)),
      Expr::Binary("=", Expr::Column("dept"), Expr::LiteralString("db")));
  const rel::BoundExpr be = Bind(e, r.schema()).ValueOrDie();
  EXPECT_TRUE(be.EvalBool(r, 0));   // ann: 30, db
  EXPECT_FALSE(be.EvalBool(r, 1));  // bob: ml
  EXPECT_FALSE(be.EvalBool(r, 2));  // cat: 25
  const auto ne = Expr::Unary("NOT", e);
  EXPECT_FALSE(Bind(ne, r.schema()).ValueOrDie().EvalBool(r, 0));
}

TEST(Expression, Functions) {
  const Relation r = People();
  const auto e = Expr::Call("SQRT", {Expr::Column("salary")});
  EXPECT_NEAR(Bind(e, r.schema()).ValueOrDie().EvalDouble(r, 0), 10.0, 1e-12);
  const auto p = Expr::Call(
      "POW", {Expr::LiteralDouble(2.0), Expr::LiteralDouble(10.0)});
  EXPECT_NEAR(Bind(p, r.schema()).ValueOrDie().EvalDouble(r, 0), 1024.0, 1e-12);
}

TEST(Expression, BindErrors) {
  const Relation r = People();
  EXPECT_STATUS(kKeyError, Bind(Expr::Column("nope"), r.schema()));
  EXPECT_STATUS(kTypeError,
                Bind(Expr::Binary("+", Expr::Column("name"),
                                  Expr::LiteralInt(1)),
                     r.schema()));
  EXPECT_STATUS(kInvalidArgument,
                Bind(Expr::Call("NOSUCH", {}), r.schema()));
  EXPECT_STATUS(kTypeError,
                Bind(Expr::Call("SQRT", {Expr::Column("name")}), r.schema()));
}

TEST(Expression, PositionalColumnRefs) {
  const Relation r = People();
  const rel::BoundExpr be = Bind(Expr::ColumnAt(2), r.schema()).ValueOrDie();
  EXPECT_EQ(be.EvalDouble(r, 1), 40.0);
  EXPECT_STATUS(kKeyError, Bind(Expr::ColumnAt(9), r.schema()));
}

// --- operators -----------------------------------------------------------------

TEST(Operators, SelectFiltersRows) {
  const Relation out =
      rel::Select(People(), Expr::Binary(">=", Expr::Column("salary"),
                                         Expr::LiteralDouble(110)))
          .ValueOrDie();
  EXPECT_EQ(out.num_rows(), 2);
}

TEST(Operators, SelectOnEmptyRelation) {
  const Relation empty = MakeRelation({{"x", DataType::kInt64}}, {});
  const Relation out =
      rel::Select(empty, Expr::Binary(">", Expr::Column("x"),
                                      Expr::LiteralInt(0)))
          .ValueOrDie();
  EXPECT_EQ(out.num_rows(), 0);
}

TEST(Operators, ProjectComputesAndShares) {
  const Relation people = People();
  const Relation out =
      rel::Project(people, {{Expr::Column("name"), "who"},
                            {Expr::Binary("/", Expr::Column("salary"),
                                          Expr::LiteralDouble(10)),
                             "k"}})
          .ValueOrDie();
  EXPECT_EQ(out.schema().Names(), (std::vector<std::string>{"who", "k"}));
  EXPECT_EQ(ValueToDouble(out.Get(1, 1)), 12.0);
  // Bare column projection shares the underlying BAT (no copy).
  EXPECT_EQ(out.column(0).get(), people.column(0).get());
}

TEST(Operators, HashJoinInner) {
  const Relation dept = MakeRelation(
      {{"dept", DataType::kString}, {"floor", DataType::kInt64}},
      {{std::string("db"), int64_t{3}}, {std::string("ml"), int64_t{5}}});
  const Relation out =
      rel::HashJoin(People(), dept, {"dept"}, {"dept"}).ValueOrDie();
  EXPECT_EQ(out.num_rows(), 4);
  // Right-side duplicate name suffixed.
  EXPECT_TRUE(out.schema().Contains("dept_2"));
}

TEST(Operators, HashJoinNumericKeyWidening) {
  const Relation l = MakeRelation({{"k", DataType::kInt64}}, {{int64_t{1}}});
  const Relation r = MakeRelation({{"k2", DataType::kDouble}}, {{1.0}});
  const Relation out = rel::HashJoin(l, r, {"k"}, {"k2"}).ValueOrDie();
  EXPECT_EQ(out.num_rows(), 1);
}

TEST(Operators, HashJoinEmptyResult) {
  const Relation l = MakeRelation({{"k", DataType::kInt64}}, {{int64_t{1}}});
  const Relation r = MakeRelation({{"j", DataType::kInt64}}, {{int64_t{2}}});
  EXPECT_EQ(rel::HashJoin(l, r, {"k"}, {"j"}).ValueOrDie().num_rows(), 0);
}

TEST(Operators, CrossJoin) {
  const Relation l = MakeRelation({{"a", DataType::kInt64}},
                                  {{int64_t{1}}, {int64_t{2}}});
  const Relation r = MakeRelation({{"b", DataType::kInt64}},
                                  {{int64_t{10}}, {int64_t{20}}});
  const Relation out = rel::CrossJoin(l, r).ValueOrDie();
  EXPECT_EQ(out.num_rows(), 4);
}

TEST(Operators, AggregateGrouped) {
  const Relation out =
      rel::Aggregate(People(), {"dept"},
                     {{"COUNT", "", "n"},
                      {"AVG", "salary", "avg_sal"},
                      {"MIN", "age", "min_age"},
                      {"MAX", "age", "max_age"},
                      {"SUM", "salary", "sum_sal"}})
          .ValueOrDie();
  const Relation sorted = rel::SortBy(out, {"dept"}).ValueOrDie();
  ASSERT_EQ(sorted.num_rows(), 2);
  EXPECT_EQ(ValueToString(sorted.Get(0, 0)), "db");
  EXPECT_EQ(ValueToDouble(sorted.Get(0, 1)), 2.0);
  EXPECT_EQ(ValueToDouble(sorted.Get(0, 2)), 95.0);
  EXPECT_EQ(ValueToDouble(sorted.Get(0, 3)), 25.0);
  EXPECT_EQ(ValueToDouble(sorted.Get(0, 4)), 30.0);
  EXPECT_EQ(ValueToDouble(sorted.Get(0, 5)), 190.0);
}

TEST(Operators, AggregateGlobalAndEmpty) {
  const Relation global =
      rel::Aggregate(People(), {}, {{"COUNT", "", "n"}}).ValueOrDie();
  ASSERT_EQ(global.num_rows(), 1);
  EXPECT_EQ(std::get<int64_t>(global.Get(0, 0)), 4);
  const Relation empty = MakeRelation({{"x", DataType::kDouble}}, {});
  const Relation ge =
      rel::Aggregate(empty, {}, {{"COUNT", "", "n"}}).ValueOrDie();
  ASSERT_EQ(ge.num_rows(), 1);
  EXPECT_EQ(std::get<int64_t>(ge.Get(0, 0)), 0);
}

TEST(Operators, AggregateErrors) {
  EXPECT_STATUS(kInvalidArgument,
                rel::Aggregate(People(), {}, {{"AVG", "", "x"}}));
  EXPECT_STATUS(kTypeError,
                rel::Aggregate(People(), {}, {{"AVG", "name", "x"}}));
  EXPECT_STATUS(kInvalidArgument,
                rel::Aggregate(People(), {}, {{"MEDIAN", "age", "x"}}));
}

TEST(Operators, RenameAndRenameAll) {
  const Relation out = rel::Rename(People(), "age", "years").ValueOrDie();
  EXPECT_TRUE(out.schema().Contains("years"));
  EXPECT_FALSE(out.schema().Contains("age"));
  EXPECT_STATUS(kKeyError, rel::Rename(People(), "nope", "x"));
  EXPECT_STATUS(kInvalidArgument, rel::RenameAll(People(), {"just_one"}));
}

TEST(Operators, DistinctRemovesDuplicateRows) {
  const Relation r = MakeRelation(
      {{"a", DataType::kInt64}, {"b", DataType::kString}},
      {{int64_t{1}, std::string("x")},
       {int64_t{1}, std::string("x")},
       {int64_t{1}, std::string("y")}});
  EXPECT_EQ(rel::Distinct(r).ValueOrDie().num_rows(), 2);
}

TEST(Operators, SortByMultipleKeys) {
  const Relation out = rel::SortBy(People(), {"dept", "age"}).ValueOrDie();
  EXPECT_EQ(ValueToString(out.Get(0, 0)), "cat");  // db, 25
  EXPECT_EQ(ValueToString(out.Get(1, 0)), "ann");  // db, 30
  EXPECT_EQ(ValueToString(out.Get(2, 0)), "dan");  // ml, 35
}

TEST(Operators, UnionAllAndLimit) {
  const Relation r = People();
  const Relation u = rel::UnionAll(r, r).ValueOrDie();
  EXPECT_EQ(u.num_rows(), 8);
  EXPECT_EQ(rel::Limit(u, 2, 3).ValueOrDie().num_rows(), 3);
  EXPECT_EQ(rel::Limit(u, 7, 5).ValueOrDie().num_rows(), 1);
  const Relation other = MakeRelation({{"z", DataType::kInt64}}, {});
  EXPECT_STATUS(kInvalidArgument, rel::UnionAll(r, other));
}

TEST(Operators, PivotCountBuildsWideTable) {
  const Relation pubs = MakeRelation(
      {{"Author", DataType::kString}, {"Conf", DataType::kString}},
      {{std::string("ann"), std::string("sigmod")},
       {std::string("ann"), std::string("sigmod")},
       {std::string("ann"), std::string("vldb")},
       {std::string("bob"), std::string("vldb")}});
  const Relation wide =
      rel::PivotCount(pubs, "Author", "Conf").ValueOrDie();
  EXPECT_EQ(wide.schema().Names(),
            (std::vector<std::string>{"Author", "sigmod", "vldb"}));
  ASSERT_EQ(wide.num_rows(), 2);
  EXPECT_EQ(ValueToString(wide.Get(0, 0)), "ann");
  EXPECT_EQ(ValueToDouble(wide.Get(0, 1)), 2.0);
  EXPECT_EQ(ValueToDouble(wide.Get(0, 2)), 1.0);
  EXPECT_EQ(ValueToDouble(wide.Get(1, 1)), 0.0);
}

}  // namespace
}  // namespace rma
