// End-to-end SQL tests, including the paper's SQL extension (Sec. 7.2).
#include <gtest/gtest.h>

#include "sql/database.h"
#include "test_util.h"

namespace rma {
namespace {

sql::Database ExampleDb() {
  sql::Database db;
  db.Register("u", testing::UsersRelation()).Abort();
  db.Register("f", testing::FilmsRelation()).Abort();
  db.Register("rating", testing::RatingsRelation()).Abort();
  db.Register("r", testing::WeatherRelation()).Abort();
  return db;
}

// The introduction's query: SELECT * FROM INV(rating BY User).
TEST(SqlEndToEnd, IntroInversion) {
  sql::Database db = ExampleDb();
  ASSERT_OK_AND_ASSIGN(Relation v,
                       db.Query("SELECT * FROM INV(rating BY User)"));
  EXPECT_EQ(v.schema().Names(),
            (std::vector<std::string>{"User", "Balto", "Heat", "Net"}));
  ASSERT_EQ(v.num_rows(), 3);
  // Users sorted: Ann, Jan, Tom.
  EXPECT_EQ(ValueToString(v.Get(0, 0)), "Ann");
  EXPECT_EQ(ValueToString(v.Get(1, 0)), "Jan");
  EXPECT_EQ(ValueToString(v.Get(2, 0)), "Tom");
}

TEST(SqlEndToEnd, UnaryAndBinaryRmaCalls) {
  sql::Database db = ExampleDb();
  ASSERT_OK_AND_ASSIGN(
      Relation id,
      db.Query("SELECT * FROM MMU(INV(rating BY User) BY User, "
               "rating BY User)"));
  // inv(A) * A = I.
  ASSERT_EQ(id.num_rows(), 3);
  for (int64_t i = 0; i < 3; ++i) {
    for (int c = 1; c <= 3; ++c) {
      const double expect = (c - 1 == i) ? 1.0 : 0.0;
      EXPECT_NEAR(ValueToDouble(id.Get(i, c)), expect, 1e-9);
    }
  }
}

TEST(SqlEndToEnd, WhereGroupByAggregates) {
  sql::Database db = ExampleDb();
  ASSERT_OK_AND_ASSIGN(
      Relation agg,
      db.Query("SELECT State, COUNT(*) AS n, AVG(YoB) AS avg_yob "
               "FROM u GROUP BY State ORDER BY State"));
  ASSERT_EQ(agg.num_rows(), 2);
  EXPECT_EQ(ValueToString(agg.Get(0, 0)), "CA");
  EXPECT_EQ(ValueToDouble(agg.Get(0, 1)), 2.0);
  EXPECT_NEAR(ValueToDouble(agg.Get(0, 2)), 1975.0, 1e-9);
  EXPECT_EQ(ValueToString(agg.Get(1, 0)), "FL");
}

TEST(SqlEndToEnd, JoinOnQualifiedColumns) {
  sql::Database db = ExampleDb();
  ASSERT_OK_AND_ASSIGN(
      Relation joined,
      db.Query("SELECT u.User, rating.Heat FROM u "
               "JOIN rating ON u.User = rating.User WHERE u.State = 'CA' "
               "ORDER BY u.User"));
  ASSERT_EQ(joined.num_rows(), 2);
  EXPECT_EQ(ValueToString(joined.Get(0, 0)), "Ann");
  EXPECT_NEAR(ValueToDouble(joined.Get(0, 1)), 1.5, 1e-12);
  EXPECT_EQ(ValueToString(joined.Get(1, 0)), "Jan");
}

// The paper's folded expression (Sec. 7.2): MMU + CROSS JOIN of a COUNT
// subquery + arithmetic over the joined columns.
TEST(SqlEndToEnd, PaperFoldedCovarianceQuery) {
  sql::Database db = ExampleDb();
  // Stage the intermediates with CREATE TABLE AS (w1 and w3 from Sec. 5).
  ASSERT_OK_AND_ASSIGN(
      Relation w1,
      db.Execute("CREATE TABLE w1 AS SELECT u.User AS U, Balto AS B, "
                 "Heat AS H, Net AS N FROM u JOIN rating "
                 "ON u.User = rating.User WHERE State = 'CA'"));
  ASSERT_EQ(w1.num_rows(), 2);
  ASSERT_OK_AND_ASSIGN(
      Relation w3,
      db.Execute(
          "CREATE TABLE w3 AS "
          "SELECT w1.U, w1.B - t.B AS B, w1.H - t.H AS H, w1.N - t.N AS N "
          "FROM w1 CROSS JOIN (SELECT AVG(B) AS B, AVG(H) AS H, "
          "AVG(N) AS N FROM w1) AS t"));
  ASSERT_OK_AND_ASSIGN(Relation w4,
                       db.Execute("CREATE TABLE w4 AS "
                                  "SELECT * FROM TRA(w3 BY U)"));
  EXPECT_EQ(w4.schema().Names(), (std::vector<std::string>{"C", "Ann", "Jan"}));
  ASSERT_OK_AND_ASSIGN(
      Relation w7,
      db.Query("SELECT C, B/(M-1) AS B, H/(M-1) AS H, N/(M-1) AS N "
               "FROM MMU(w4 BY C, w3 BY U) AS w5 "
               "CROSS JOIN ( SELECT COUNT(*) AS M FROM w1 ) AS t"));
  ASSERT_EQ(w7.num_rows(), 3);
  // var(B) over {2.0, 1.0} = 0.5 ; cov(B,H) over centered = -1.25.
  EXPECT_EQ(ValueToString(w7.Get(0, 0)), "B");
  EXPECT_NEAR(ValueToDouble(w7.Get(0, 1)), 0.5, 1e-9);
  EXPECT_NEAR(ValueToDouble(w7.Get(0, 2)), -1.25, 1e-9);
}

TEST(SqlEndToEnd, OrderSchemaWithParenthesizedList) {
  sql::Database db = ExampleDb();
  ASSERT_OK_AND_ASSIGN(Relation q,
                       db.Query("SELECT * FROM QQR(r BY (W, T))"));
  EXPECT_EQ(q.schema().Names(), (std::vector<std::string>{"W", "T", "H"}));
}

TEST(SqlEndToEnd, ErrorsArePropagated) {
  sql::Database db = ExampleDb();
  EXPECT_STATUS(kKeyError, db.Query("SELECT * FROM nosuch"));
  EXPECT_STATUS(kParseError, db.Query("SELEC * FROM u"));
  EXPECT_STATUS(kKeyError, db.Query("SELECT nosuch FROM u"));
  // Non-numeric application attribute.
  EXPECT_STATUS(kTypeError, db.Query("SELECT * FROM INV(u BY State)"));
  // Order schema that is not a key (H has a duplicate in the weather data).
  EXPECT_STATUS(
      kInvalidArgument,
      db.Query("SELECT * FROM INV((SELECT H, W FROM r) AS x BY H)"));
}

TEST(SqlEndToEnd, DetCarriesRelationNameOrigin) {
  sql::Database db = ExampleDb();
  ASSERT_OK_AND_ASSIGN(Relation d,
                       db.Query("SELECT * FROM DET(rating BY User)"));
  EXPECT_EQ(d.schema().Names(), (std::vector<std::string>{"C", "det"}));
  EXPECT_EQ(ValueToString(d.Get(0, 0)), "rating");
}

TEST(SqlEndToEnd, ScalarFunctionsInProjection) {
  sql::Database db = ExampleDb();
  ASSERT_OK_AND_ASSIGN(
      Relation out,
      db.Query("SELECT User, SQRT(ABS(Balto - 4)) AS s, POW(Heat, 2) AS p "
               "FROM rating ORDER BY User"));
  ASSERT_EQ(out.num_rows(), 3);
  // Ann: Balto 2.0 -> sqrt(2); Heat 1.5 -> 2.25.
  EXPECT_NEAR(ValueToDouble(out.Get(0, 1)), std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(ValueToDouble(out.Get(0, 2)), 2.25, 1e-12);
}

TEST(SqlEndToEnd, OrderByDescWithLimit) {
  sql::Database db = ExampleDb();
  ASSERT_OK_AND_ASSIGN(
      Relation top,
      db.Query("SELECT User, Heat FROM rating ORDER BY Heat DESC LIMIT 2"));
  ASSERT_EQ(top.num_rows(), 2);
  EXPECT_EQ(ValueToString(top.Get(0, 0)), "Jan");   // 4.0
  EXPECT_EQ(ValueToString(top.Get(1, 0)), "Ann");   // 1.5
}

TEST(SqlEndToEnd, BooleanConnectivesInWhere) {
  sql::Database db = ExampleDb();
  ASSERT_OK_AND_ASSIGN(
      Relation out,
      db.Query("SELECT User FROM rating "
               "WHERE Balto >= 1 AND (Heat > 3 OR Net < 1) ORDER BY User"));
  ASSERT_EQ(out.num_rows(), 2);
  EXPECT_EQ(ValueToString(out.Get(0, 0)), "Ann");  // Net 0.5
  EXPECT_EQ(ValueToString(out.Get(1, 0)), "Jan");  // Heat 4.0
}

TEST(SqlEndToEnd, CreateDropLifecycle) {
  sql::Database db = ExampleDb();
  ASSERT_OK_AND_ASSIGN(
      Relation t, db.Execute("CREATE TABLE ca AS "
                             "SELECT * FROM u WHERE State = 'CA'"));
  EXPECT_EQ(t.num_rows(), 2);
  EXPECT_TRUE(db.Has("ca"));
  ASSERT_OK_AND_ASSIGN(Relation again, db.Query("SELECT COUNT(*) AS n FROM ca"));
  EXPECT_EQ(ValueToDouble(again.Get(0, 0)), 2.0);
  ASSERT_OK_AND_ASSIGN(Relation dropped, db.Execute("DROP TABLE ca"));
  (void)dropped;
  EXPECT_FALSE(db.Has("ca"));
  EXPECT_STATUS(kKeyError, db.Query("SELECT * FROM ca"));
}

TEST(SqlEndToEnd, NestedRmaOverSubqueryAndJoin) {
  // Closure in SQL: an RMA op over a subquery that itself joins two tables.
  sql::Database db = ExampleDb();
  ASSERT_OK_AND_ASSIGN(
      Relation q,
      db.Query("SELECT * FROM QQR((SELECT u.User AS U, Balto, Heat "
               "FROM u JOIN rating ON u.User = rating.User) x BY U)"));
  EXPECT_EQ(q.schema().Names(),
            (std::vector<std::string>{"U", "Balto", "Heat"}));
  ASSERT_EQ(q.num_rows(), 3);
  // Q has orthonormal columns: sum of squares of each app column is 1.
  for (int c = 1; c <= 2; ++c) {
    double ss = 0;
    for (int64_t i = 0; i < q.num_rows(); ++i) {
      const double v = ValueToDouble(q.Get(i, c));
      ss += v * v;
    }
    EXPECT_NEAR(ss, 1.0, 1e-9);
  }
}

TEST(SqlEndToEnd, DropMissingTableIsNotFoundWithName) {
  sql::Database db = ExampleDb();
  const Status direct = db.Drop("nosuch");
  EXPECT_TRUE(direct.IsNotFound()) << direct.ToString();
  EXPECT_NE(direct.message().find("nosuch"), std::string::npos)
      << direct.ToString();
  EXPECT_STATUS(kNotFound, db.Execute("DROP TABLE also_missing"));
}

// Status discipline end-to-end: [[nodiscard]] keeps a Status from being
// dropped at compile time, and this pins the runtime half — a failing DROP
// inside a script must land in its own result slot (not vanish, not abort
// the batch), with the statements around it unaffected.
TEST(SqlEndToEnd, ScriptSurfacesFailedDropInItsSlot) {
  sql::Database db = ExampleDb();
  std::vector<Result<Relation>> results = db.ExecuteScript(
      "CREATE TABLE t AS SELECT * FROM u;"
      "DROP TABLE no_such_table;"
      "SELECT * FROM t");
  ASSERT_EQ(results.size(), 3u);
  ASSERT_OK(results[0].status());
  ASSERT_FALSE(results[1].ok());
  EXPECT_TRUE(results[1].status().IsNotFound())
      << results[1].status().ToString();
  EXPECT_NE(results[1].status().message().find("no_such_table"),
            std::string::npos)
      << results[1].status().ToString();
  ASSERT_OK(results[2].status());
}

// Same discipline on the dependency-ordered path: a failed DROP of a real
// table fences later statements reading it. The drop succeeds, so the
// following SELECT must fail with the table gone — proof the error slot and
// the schedule agree on statement order.
TEST(SqlEndToEnd, ScriptDropFencesLaterReaders) {
  sql::Database db = ExampleDb();
  std::vector<Result<Relation>> results = db.ExecuteScript(
      "DROP TABLE u;"
      "SELECT * FROM u");
  ASSERT_EQ(results.size(), 2u);
  ASSERT_OK(results[0].status());
  // Binding a vanished table in a SELECT is a KeyError (same as
  // CreateDropLifecycle above) — the point here is only that the read runs
  // strictly after the drop.
  EXPECT_STATUS(kKeyError, results[1]);
}

TEST(SqlEndToEnd, CachedQueryDoesNotServeStaleDataAfterReRegister) {
  // The invalidation contract: a cached query re-run after DROP +
  // re-Register with different data must reflect the new data — neither a
  // stale plan (whose leaves embed old relations) nor a stale sort may
  // survive the catalog change.
  sql::Database db;
  db.Register("m", testing::MakeRelation({{"id", DataType::kInt64},
                                          {"a", DataType::kDouble}},
                                         {{int64_t{1}, 2.0}}, "m"))
      .Abort();
  const std::string q = "SELECT * FROM INV(m BY id)";
  ASSERT_OK_AND_ASSIGN(Relation cold, db.Query(q));
  EXPECT_NEAR(ValueToDouble(cold.Get(0, 1)), 0.5, 1e-12);
  ASSERT_OK_AND_ASSIGN(Relation cached, db.Query(q));  // plan-cache hit
  EXPECT_NEAR(ValueToDouble(cached.Get(0, 1)), 0.5, 1e-12);
  EXPECT_GE(db.query_cache()->counters().plan_hits, 1);

  ASSERT_OK(db.Drop("m"));
  db.Register("m", testing::MakeRelation({{"id", DataType::kInt64},
                                          {"a", DataType::kDouble}},
                                         {{int64_t{1}, 4.0}}, "m"))
      .Abort();
  ASSERT_OK_AND_ASSIGN(Relation fresh, db.Query(q));
  EXPECT_NEAR(ValueToDouble(fresh.Get(0, 1)), 0.25, 1e-12);
}

TEST(SqlEndToEnd, CopiedDatabasesDoNotServeEachOthersPlans) {
  // Copies share the QueryCache (shared_ptr) but have independent catalogs;
  // versions come from a process-wide counter, so post-copy mutations can
  // never coincide and leak one copy's cached plans into the other.
  auto table = [](double v) {
    return testing::MakeRelation(
        {{"id", DataType::kInt64}, {"a", DataType::kDouble}},
        {{int64_t{1}, v}}, "m");
  };
  sql::Database db1;
  db1.Register("m", table(2.0)).Abort();
  sql::Database db2 = db1;
  db1.Register("m", table(4.0)).Abort();
  db2.Register("m", table(8.0)).Abort();
  const std::string q = "SELECT * FROM INV(m BY id)";
  ASSERT_OK_AND_ASSIGN(Relation r1, db1.Query(q));
  EXPECT_NEAR(ValueToDouble(r1.Get(0, 1)), 0.25, 1e-12);
  ASSERT_OK_AND_ASSIGN(Relation r2, db2.Query(q));
  EXPECT_NEAR(ValueToDouble(r2.Get(0, 1)), 0.125, 1e-12);
  ASSERT_OK_AND_ASSIGN(Relation r1_again, db1.Query(q));
  EXPECT_NEAR(ValueToDouble(r1_again.Get(0, 1)), 0.25, 1e-12);
}

TEST(SqlEndToEnd, CatalogVersionAdvancesOnMutations) {
  sql::Database db;
  const uint64_t v0 = db.catalog_version();
  db.Register("t", testing::WeatherRelation()).Abort();
  EXPECT_GT(db.catalog_version(), v0);
  const uint64_t v1 = db.catalog_version();
  ASSERT_TRUE(db.Execute("CREATE TABLE t2 AS SELECT * FROM t").ok());
  EXPECT_GT(db.catalog_version(), v1);
  const uint64_t v2 = db.catalog_version();
  ASSERT_OK(db.Drop("t2"));
  EXPECT_GT(db.catalog_version(), v2);
}

}  // namespace
}  // namespace rma
