// SQL lexer and parser.
#include <gtest/gtest.h>

#include "sql/lexer.h"
#include "sql/parser.h"
#include "test_util.h"

namespace rma::sql {
namespace {

TEST(Lexer, TokenKinds) {
  const auto tokens = Lex("SELECT x, 42, 4.5, 'it''s' FROM t;").ValueOrDie();
  ASSERT_GE(tokens.size(), 10u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdent);
  EXPECT_EQ(tokens[0].text, "SELECT");
  EXPECT_EQ(tokens[3].kind, TokenKind::kInt);
  EXPECT_EQ(tokens[3].int_value, 42);
  EXPECT_EQ(tokens[5].kind, TokenKind::kFloat);
  EXPECT_DOUBLE_EQ(tokens[5].float_value, 4.5);
  EXPECT_EQ(tokens[7].kind, TokenKind::kString);
  EXPECT_EQ(tokens[7].text, "it's");
  EXPECT_EQ(tokens.back().kind, TokenKind::kEnd);
}

TEST(Lexer, TwoCharSymbolsAndComments) {
  const auto tokens = Lex("a <= b -- comment\n <> c != d").ValueOrDie();
  EXPECT_EQ(tokens[1].text, "<=");
  EXPECT_EQ(tokens[3].text, "<>");
  EXPECT_EQ(tokens[5].text, "!=");
}

TEST(Lexer, BlockComments) {
  // A block comment is a token separator, exactly like a line comment;
  // `/` and `*` inside it never lex as operators.
  const auto tokens =
      Lex("a /* x * y / z */ <= /* multi\nline -- and line marker */ b")
          .ValueOrDie();
  ASSERT_EQ(tokens.size(), 4u);  // a, <=, b, end
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].text, "<=");
  EXPECT_EQ(tokens[2].text, "b");
}

TEST(Lexer, BlockCommentWithApostropheDoesNotOpenAString) {
  const auto tokens =
      Lex("SELECT a /* don't */ FROM t").ValueOrDie();
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[3].text, "t");
}

TEST(Lexer, BlockCommentMarkersInsideStringsStayLiteral) {
  const auto tokens = Lex("'/* not a comment */'").ValueOrDie();
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kString);
  EXPECT_EQ(tokens[0].text, "/* not a comment */");
}

TEST(Lexer, DivisionAndMultiplicationStillLex) {
  const auto tokens = Lex("a / b * c").ValueOrDie();
  ASSERT_EQ(tokens.size(), 6u);
  EXPECT_EQ(tokens[1].text, "/");
  EXPECT_EQ(tokens[3].text, "*");
}

TEST(Lexer, Errors) {
  EXPECT_STATUS(kParseError, Lex("'unterminated"));
  EXPECT_STATUS(kParseError, Lex("a ? b"));
  EXPECT_STATUS(kParseError, Lex("1e"));
  // Unterminated block comments are rejected with a clear error, and the
  // '*' of the opener cannot double as the '*' of a closer.
  const Status unterminated = Lex("SELECT a /* comment").status();
  EXPECT_TRUE(unterminated.IsParseError());
  EXPECT_NE(unterminated.message().find("block comment"), std::string::npos)
      << unterminated.ToString();
  EXPECT_STATUS(kParseError, Lex("a /*/ b"));
}

TEST(Parser, StatementWithBlockCommentParses) {
  const auto stmt =
      Parse("SELECT a /* pick the key */, b FROM t /* base table */ "
            "WHERE a > 1")
          .ValueOrDie();
  ASSERT_EQ(stmt.kind, Statement::Kind::kSelect);
  EXPECT_EQ(stmt.select->items.size(), 2u);
  EXPECT_NE(stmt.select->where, nullptr);
}

TEST(Parser, BasicSelect) {
  const auto stmt = ParseSelect("SELECT a, b AS bb FROM t WHERE a > 1 "
                                "GROUP BY a ORDER BY a DESC LIMIT 10")
                        .ValueOrDie();
  EXPECT_EQ(stmt->items.size(), 2u);
  EXPECT_EQ(stmt->items[1].alias, "bb");
  EXPECT_NE(stmt->where, nullptr);
  EXPECT_EQ(stmt->group_by.size(), 1u);
  ASSERT_EQ(stmt->order_by.size(), 1u);
  EXPECT_FALSE(stmt->order_by[0].ascending);
  EXPECT_EQ(stmt->limit, 10);
}

TEST(Parser, SelectStar) {
  const auto stmt = ParseSelect("SELECT * FROM t").ValueOrDie();
  ASSERT_EQ(stmt->items.size(), 1u);
  EXPECT_EQ(stmt->items[0].expr->kind, SqlExpr::Kind::kStar);
}

TEST(Parser, RmaTableFunctionUnary) {
  const auto stmt = ParseSelect("SELECT * FROM INV(r BY u)").ValueOrDie();
  ASSERT_EQ(stmt->from->kind, TableRef::Kind::kRmaOp);
  EXPECT_EQ(stmt->from->op, MatrixOp::kInv);
  ASSERT_EQ(stmt->from->rma_args.size(), 1u);
  EXPECT_EQ(stmt->from->rma_args[0].order,
            (std::vector<std::string>{"u"}));
}

TEST(Parser, RmaTableFunctionBinaryWithLists) {
  const auto stmt =
      ParseSelect("SELECT * FROM MMU(a BY (x, y), b BY z) AS m")
          .ValueOrDie();
  ASSERT_EQ(stmt->from->kind, TableRef::Kind::kRmaOp);
  EXPECT_EQ(stmt->from->op, MatrixOp::kMmu);
  EXPECT_EQ(stmt->from->alias, "m");
  ASSERT_EQ(stmt->from->rma_args.size(), 2u);
  EXPECT_EQ(stmt->from->rma_args[0].order,
            (std::vector<std::string>{"x", "y"}));
}

TEST(Parser, NestedRmaCalls) {
  const auto stmt =
      ParseSelect("SELECT * FROM TRA(INV(r BY u) BY u)").ValueOrDie();
  ASSERT_EQ(stmt->from->kind, TableRef::Kind::kRmaOp);
  EXPECT_EQ(stmt->from->op, MatrixOp::kTra);
  EXPECT_EQ(stmt->from->rma_args[0].table->kind, TableRef::Kind::kRmaOp);
}

TEST(Parser, JoinsAndSubqueries) {
  const auto stmt = ParseSelect(
                        "SELECT * FROM a JOIN b ON a.x = b.y CROSS JOIN "
                        "(SELECT c FROM d) AS sub, e")
                        .ValueOrDie();
  // Left-deep join tree: ((a ⋈ b) × sub) × e.
  ASSERT_EQ(stmt->from->kind, TableRef::Kind::kJoin);
  EXPECT_EQ(stmt->from->right->kind, TableRef::Kind::kTable);
  EXPECT_EQ(stmt->from->right->table_name, "e");
  const auto& mid = stmt->from->left;
  ASSERT_EQ(mid->kind, TableRef::Kind::kJoin);
  EXPECT_EQ(mid->right->kind, TableRef::Kind::kSubquery);
  EXPECT_EQ(mid->right->alias, "sub");
  const auto& inner = mid->left;
  ASSERT_EQ(inner->kind, TableRef::Kind::kJoin);
  EXPECT_EQ(inner->join_kind, TableRef::JoinKind::kInner);
  EXPECT_NE(inner->on, nullptr);
}

TEST(Parser, ExpressionPrecedence) {
  const auto stmt =
      ParseSelect("SELECT a + b * c - d FROM t").ValueOrDie();
  // (a + (b*c)) - d
  const auto& e = stmt->items[0].expr;
  ASSERT_EQ(e->kind, SqlExpr::Kind::kBinary);
  EXPECT_EQ(e->name, "-");
  EXPECT_EQ(e->args[0]->name, "+");
  EXPECT_EQ(e->args[0]->args[1]->name, "*");
}

TEST(Parser, LogicPrecedence) {
  const auto stmt =
      ParseSelect("SELECT * FROM t WHERE NOT a = 1 OR b = 2 AND c = 3")
          .ValueOrDie();
  // (NOT (a=1)) OR ((b=2) AND (c=3))
  const auto& w = stmt->where;
  ASSERT_EQ(w->name, "OR");
  EXPECT_EQ(w->args[0]->name, "NOT");
  EXPECT_EQ(w->args[1]->name, "AND");
}

TEST(Parser, CreateAndDrop) {
  const Statement c =
      Parse("CREATE TABLE x AS SELECT * FROM t").ValueOrDie();
  EXPECT_EQ(c.kind, Statement::Kind::kCreateTableAs);
  EXPECT_EQ(c.table_name, "x");
  const Statement d = Parse("DROP TABLE x;").ValueOrDie();
  EXPECT_EQ(d.kind, Statement::Kind::kDropTable);
}

TEST(Parser, Errors) {
  EXPECT_STATUS(kParseError, ParseSelect("FROM t"));
  EXPECT_STATUS(kParseError, ParseSelect("SELECT a FROM"));
  EXPECT_STATUS(kParseError, ParseSelect("SELECT a FROM t WHERE"));
  EXPECT_STATUS(kParseError, ParseSelect("SELECT * FROM INV(r)"));  // no BY
  EXPECT_STATUS(kParseError,
                ParseSelect("SELECT * FROM MMU(a BY x)"));  // arity
  EXPECT_STATUS(kParseError, ParseSelect("SELECT * FROM t extra garbage ,"));
  EXPECT_STATUS(kParseError, ParseSelect("SELECT a FROM t LIMIT x"));
}

TEST(Parser, QualifiedColumnsAndFunctions) {
  const auto stmt =
      ParseSelect("SELECT t.a, SQRT(b), COUNT(*) FROM t").ValueOrDie();
  EXPECT_EQ(stmt->items[0].expr->qualifier, "t");
  EXPECT_EQ(stmt->items[0].expr->name, "a");
  EXPECT_EQ(stmt->items[1].expr->kind, SqlExpr::Kind::kCall);
  EXPECT_EQ(stmt->items[1].expr->name, "SQRT");
  EXPECT_EQ(stmt->items[2].expr->name, "COUNT");
  EXPECT_EQ(stmt->items[2].expr->args[0]->kind, SqlExpr::Kind::kStar);
}

}  // namespace
}  // namespace rma::sql
