// EXPLAIN: the SQL surface of the physical planner.
#include <gtest/gtest.h>

#include <string>

#include "sql/database.h"
#include "test_util.h"

namespace rma::sql {
namespace {

std::string PlanText(const Relation& plan) {
  std::string text;
  for (int64_t i = 0; i < plan.num_rows(); ++i) {
    text += plan.column(0)->GetString(i);
    text += '\n';
  }
  return text;
}

Database MakeDb() {
  Database db;
  db.Register("rating", rma::testing::RatingsRelation()).Abort();
  db.Register("weather", rma::testing::WeatherRelation()).Abort();
  return db;
}

TEST(ExplainTest, PrintsPhysicalPlanWithoutExecuting) {
  Database db = MakeDb();
  auto result = db.Execute("EXPLAIN SELECT * FROM QQR(weather BY T)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->num_columns(), 1);
  EXPECT_EQ(result->schema().attribute(0).name, "plan");
  const std::string text = PlanText(*result);
  EXPECT_NE(text.find("qqr kernel=dense"), std::string::npos) << text;
  EXPECT_NE(text.find("stages=[prepare gather kernel scatter morph]"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("scan weather"), std::string::npos) << text;
}

TEST(ExplainTest, ReportsFiredRewritesAndSyrk) {
  Database db = MakeDb();
  auto result = db.Execute(
      "EXPLAIN SELECT * FROM MMU(TRA(rating BY User) BY C, rating BY User)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const std::string text = PlanText(*result);
  EXPECT_NE(text.find("rewrites fired: mmu_tra_to_cpd"), std::string::npos)
      << text;
  EXPECT_NE(text.find("cpd kernel=dense"), std::string::npos) << text;
  EXPECT_NE(text.find("prepare cached"), std::string::npos) << text;
}

TEST(ExplainTest, DescribesRelationalPipeline) {
  Database db = MakeDb();
  auto result = db.Execute(
      "EXPLAIN SELECT T FROM TRA(weather BY T) WHERE H > 1 LIMIT 2");
  // TRA's result has no T column; EXPLAIN only binds shapes, so the
  // projection is not resolved — the statement still explains.
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const std::string text = PlanText(*result);
  EXPECT_NE(text.find("project"), std::string::npos);
  EXPECT_NE(text.find("filter (WHERE)"), std::string::npos);
  EXPECT_NE(text.find("limit 2"), std::string::npos);
  EXPECT_NE(text.find("tra kernel="), std::string::npos) << text;
}

TEST(ExplainTest, BatKernelPolicyShowsInPlan) {
  Database db = MakeDb();
  db.rma_options.kernel = KernelPolicy::kBat;
  auto result = db.Execute("EXPLAIN SELECT * FROM QQR(weather BY T)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const std::string text = PlanText(*result);
  EXPECT_NE(text.find("qqr kernel=bat"), std::string::npos) << text;
  EXPECT_NE(text.find("stages=[prepare kernel morph]"), std::string::npos)
      << text;
}

}  // namespace
}  // namespace rma::sql
