// EXPLAIN: the SQL surface of the physical planner.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/calibration.h"
#include "sql/database.h"
#include "test_util.h"

namespace rma::sql {
namespace {

std::string PlanText(const Relation& plan) {
  std::string text;
  for (int64_t i = 0; i < plan.num_rows(); ++i) {
    text += plan.column(0)->GetString(i);
    text += '\n';
  }
  return text;
}

Database MakeDb() {
  Database db;
  db.Register("rating", rma::testing::RatingsRelation()).Abort();
  db.Register("weather", rma::testing::WeatherRelation()).Abort();
  return db;
}

TEST(ExplainTest, PrintsPhysicalPlanWithoutExecuting) {
  Database db = MakeDb();
  auto result = db.Execute("EXPLAIN SELECT * FROM QQR(weather BY T)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->num_columns(), 1);
  EXPECT_EQ(result->schema().attribute(0).name, "plan");
  const std::string text = PlanText(*result);
  EXPECT_NE(text.find("qqr kernel=dense"), std::string::npos) << text;
  EXPECT_NE(text.find("stages=[prepare gather kernel scatter morph]"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("scan weather"), std::string::npos) << text;
}

TEST(ExplainTest, ReportsFiredRewritesAndSyrk) {
  Database db = MakeDb();
  auto result = db.Execute(
      "EXPLAIN SELECT * FROM MMU(TRA(rating BY User) BY C, rating BY User)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const std::string text = PlanText(*result);
  EXPECT_NE(text.find("rewrites fired: mmu_tra_to_cpd"), std::string::npos)
      << text;
  EXPECT_NE(text.find("cpd kernel=dense"), std::string::npos) << text;
  EXPECT_NE(text.find("prepare cached"), std::string::npos) << text;
}

TEST(ExplainTest, DescribesRelationalPipeline) {
  Database db = MakeDb();
  auto result = db.Execute(
      "EXPLAIN SELECT T FROM TRA(weather BY T) WHERE H > 1 LIMIT 2");
  // TRA's result has no T column; EXPLAIN only binds shapes, so the
  // projection is not resolved — the statement still explains.
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const std::string text = PlanText(*result);
  EXPECT_NE(text.find("project"), std::string::npos);
  EXPECT_NE(text.find("filter (WHERE)"), std::string::npos);
  EXPECT_NE(text.find("limit 2"), std::string::npos);
  EXPECT_NE(text.find("tra kernel="), std::string::npos) << text;
}

TEST(ExplainTest, BatKernelPolicyShowsInPlan) {
  Database db = MakeDb();
  db.rma_options.kernel = KernelPolicy::kBat;
  auto result = db.Execute("EXPLAIN SELECT * FROM QQR(weather BY T)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const std::string text = PlanText(*result);
  EXPECT_NE(text.find("qqr kernel=bat"), std::string::npos) << text;
  EXPECT_NE(text.find("stages=[prepare kernel morph]"), std::string::npos)
      << text;
}

// --- EXPLAIN for CREATE TABLE AS ---------------------------------------------

TEST(ExplainTest, CreateTableAsIsExplainedWithoutExecuting) {
  Database db = MakeDb();
  auto result = db.Execute(
      "EXPLAIN CREATE TABLE q AS SELECT * FROM QQR(weather BY T)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const std::string text = PlanText(*result);
  EXPECT_NE(text.find("create table q as [not executed]"), std::string::npos)
      << text;
  EXPECT_NE(text.find("qqr kernel=dense"), std::string::npos) << text;
  EXPECT_FALSE(db.Has("q"));  // plain EXPLAIN must not register the table
}

TEST(ExplainTest, AnalyzeCreateTableAsExecutesAndRegisters) {
  Database db = MakeDb();
  auto result = db.Execute(
      "EXPLAIN ANALYZE CREATE TABLE q AS SELECT * FROM QQR(weather BY T)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const std::string text = PlanText(*result);
  EXPECT_NE(text.find("create table q as"), std::string::npos) << text;
  EXPECT_NE(text.find("execution:"), std::string::npos) << text;
  EXPECT_NE(text.find("rows: 4"), std::string::npos) << text;
  EXPECT_TRUE(db.Has("q"));  // ANALYZE executes, side effects included
}

// --- cost-profile attribution ------------------------------------------------

TEST(ExplainTest, CostProfileLineNamesSimdIsaAndRegimeCount) {
  // EXPLAIN ANALYZE's cost-profile line attributes the run to the kernel
  // build: the active vector ISA and the profile's regime count, so a plan
  // pasted into an issue pins down what produced its numbers.
  Database db = MakeDb();
  auto analytic = db.Execute(
      "EXPLAIN ANALYZE SELECT * FROM QQR(weather BY T)");
  ASSERT_TRUE(analytic.ok()) << analytic.status().ToString();
  const std::string text = PlanText(*analytic);
  EXPECT_NE(text.find("cost profile:"), std::string::npos) << text;
  EXPECT_NE(text.find("simd="), std::string::npos) << text;
  EXPECT_NE(text.find("regimes=1"), std::string::npos) << text;
}

TEST(ExplainTest, PiecewiseProfileShowsTheChosenRegime) {
  // With a piecewise profile the planner records which cache regime priced
  // the op; single-rate profiles omit the annotation entirely.
  Database db = MakeDb();
  auto flat = db.Execute("EXPLAIN SELECT * FROM QQR(weather BY T)");
  ASSERT_TRUE(flat.ok()) << flat.status().ToString();
  EXPECT_EQ(PlanText(*flat).find("regime="), std::string::npos);

  auto profile = std::make_shared<CostProfile>(CostProfile::Analytic());
  KernelCost piecewise = profile->Get(CostKernel::kDenseFlop);
  piecewise.breakpoints = {1 << 10, 1 << 16};
  piecewise.rates = {piecewise.per_element, piecewise.per_element * 2,
                     piecewise.per_element * 8};
  profile->Set(CostKernel::kDenseFlop, piecewise);
  db.rma_options.cost_profile = profile;
  auto priced = db.Execute("EXPLAIN SELECT * FROM QQR(weather BY T)");
  ASSERT_TRUE(priced.ok()) << priced.status().ToString();
  const std::string text = PlanText(*priced);
  // 4-row weather: the flops land in the first (L2) regime.
  EXPECT_NE(text.find("regime=l2"), std::string::npos) << text;
}

// --- EXPLAIN ANALYZE + the database-level query cache -----------------------

/// Big enough that a cold order-schema sort takes measurable time, so the
/// cached run's sort=0.000000s is meaningful.
Database MakeBigDb() {
  Database db = MakeDb();
  Rng rng(31);
  db.Register("big", rma::testing::RandomKeyedRelation(20000, 6, &rng))
      .Abort();
  return db;
}

TEST(ExplainAnalyzeTest, RepeatedQueryHitsPlanCacheWithZeroSort) {
  Database db = MakeBigDb();
  const std::string q = "EXPLAIN ANALYZE SELECT * FROM QQR(big BY id)";

  auto first = db.Execute(q);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  const std::string cold = PlanText(*first);
  EXPECT_NE(cold.find("plan cache: miss"), std::string::npos) << cold;
  EXPECT_NE(cold.find("prepared: 0 hit, 1 miss"), std::string::npos) << cold;
  EXPECT_EQ(cold.find("sort=0.000000s"), std::string::npos)
      << "cold run should pay a measurable sort:\n"
      << cold;

  auto second = db.Execute(q);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  const std::string warm = PlanText(*second);
  EXPECT_NE(warm.find("plan cache: hit"), std::string::npos) << warm;
  EXPECT_NE(warm.find("sort=0.000000s"), std::string::npos)
      << "cached run must skip the sort entirely:\n"
      << warm;
  EXPECT_NE(warm.find("prepared: 1 hit, 0 miss"), std::string::npos) << warm;
}

TEST(ExplainAnalyzeTest, PlainQueryWarmsTheCacheForAnalyze) {
  // Query() and EXPLAIN ANALYZE share one plan entry: the EXPLAIN prefix is
  // stripped from the normalized statement.
  Database db = MakeBigDb();
  ASSERT_TRUE(db.Query("SELECT * FROM QQR(big BY id)").ok());
  auto analyzed =
      db.Execute("EXPLAIN ANALYZE SELECT * FROM QQR(big BY id)");
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  const std::string text = PlanText(*analyzed);
  EXPECT_NE(text.find("plan cache: hit"), std::string::npos) << text;
  EXPECT_NE(text.find("sort=0.000000s"), std::string::npos) << text;
}

TEST(ExplainAnalyzeTest, RegisterBetweenRunsForcesMiss) {
  Database db = MakeBigDb();
  const std::string q = "EXPLAIN ANALYZE SELECT * FROM QQR(big BY id)";
  ASSERT_TRUE(db.Execute(q).ok());

  // Any catalog mutation bumps the version: the cached plan must not hit.
  Rng rng(32);
  db.Register("big", rma::testing::RandomKeyedRelation(20000, 6, &rng))
      .Abort();
  auto after_register = db.Execute(q);
  ASSERT_TRUE(after_register.ok()) << after_register.status().ToString();
  const std::string text = PlanText(*after_register);
  EXPECT_NE(text.find("plan cache: miss"), std::string::npos) << text;
  EXPECT_NE(text.find("prepared: 0 hit, 1 miss"), std::string::npos)
      << "re-registered data must re-sort, not serve stale arguments:\n"
      << text;
}

TEST(ExplainAnalyzeTest, DropOfUnrelatedTableKeepsThePlan) {
  // Invalidation is per-table: the cached plan records that it reads only
  // `big`, so dropping an unrelated table (which still bumps the catalog
  // version) must not cost it — the identity snapshot still matches.
  Database db = MakeBigDb();
  const std::string q = "EXPLAIN ANALYZE SELECT * FROM QQR(big BY id)";
  ASSERT_TRUE(db.Execute(q).ok());
  ASSERT_TRUE(db.Execute("DROP TABLE weather").ok());  // unrelated table
  auto after_drop = db.Execute(q);
  ASSERT_TRUE(after_drop.ok()) << after_drop.status().ToString();
  const std::string text = PlanText(*after_drop);
  EXPECT_NE(text.find("plan cache: hit"), std::string::npos) << text;
  EXPECT_NE(text.find("sort=0.000000s"), std::string::npos)
      << "surviving plan must keep its prepared arguments too:\n"
      << text;
}

TEST(ExplainAnalyzeTest, DropOfTheReadTableForcesMiss) {
  Database db = MakeBigDb();
  const std::string q = "EXPLAIN ANALYZE SELECT * FROM QQR(big BY id)";
  ASSERT_TRUE(db.Execute(q).ok());
  EXPECT_EQ(db.query_cache()->counters().plan_invalidations, 0);
  ASSERT_TRUE(db.Execute("DROP TABLE big").ok());
  // Eager per-table eviction: exactly the one plan reading `big` is gone.
  EXPECT_EQ(db.query_cache()->counters().plan_invalidations, 1);
  Rng rng(33);
  db.Register("big", rma::testing::RandomKeyedRelation(20000, 6, &rng))
      .Abort();
  auto after = db.Execute(q);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  const std::string text = PlanText(*after);
  EXPECT_NE(text.find("plan cache: miss"), std::string::npos) << text;
}

}  // namespace
}  // namespace rma::sql
