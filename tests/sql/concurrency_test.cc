// Concurrency tests for the SQL layer: the batched entry points
// (ExecuteBatch / ExecuteScript), and a stress test driving one Database
// from many threads while the catalog is mutated underneath (plan
// invalidations + prepared-argument evictions racing cached statements).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/query_cache.h"
#include "sql/database.h"
#include "sql/effects.h"
#include "sql/parser.h"
#include "test_util.h"
#include "util/random.h"

namespace rma::sql {
namespace {

using rma::testing::RandomKeyedRelation;
using rma::testing::RatingsRelation;

Database MakeDb(int max_threads = 4) {
  Database db;
  db.rma_options.max_threads = max_threads;
  Rng rng(7);
  db.Register("r", RandomKeyedRelation(500, 4, &rng, -10.0, 10.0, "r"))
      .Abort();
  db.Register("s", RandomKeyedRelation(500, 4, &rng, -10.0, 10.0, "s"))
      .Abort();
  db.Register("rating", RatingsRelation()).Abort();
  return db;
}

// --- SplitStatements ---------------------------------------------------------

TEST(SplitStatementsTest, SplitsOnTopLevelSemicolons) {
  auto parts = SplitStatements(
      "SELECT * FROM r; SELECT * FROM s ;\n SELECT id FROM r");
  ASSERT_TRUE(parts.ok()) << parts.status().ToString();
  ASSERT_EQ(parts->size(), 3u);
  EXPECT_EQ((*parts)[0], "SELECT * FROM r");
  EXPECT_EQ((*parts)[2], "\n SELECT id FROM r");
}

TEST(SplitStatementsTest, RespectsStringLiterals) {
  auto parts = SplitStatements(
      "SELECT * FROM rating WHERE User = 'a;b'; SELECT * FROM rating");
  ASSERT_TRUE(parts.ok()) << parts.status().ToString();
  ASSERT_EQ(parts->size(), 2u);
  EXPECT_EQ((*parts)[0], "SELECT * FROM rating WHERE User = 'a;b'");
}

TEST(SplitStatementsTest, DropsEmptyStatements) {
  auto parts = SplitStatements(";;SELECT * FROM r;; ;");
  ASSERT_TRUE(parts.ok()) << parts.status().ToString();
  ASSERT_EQ(parts->size(), 1u);
}

TEST(SplitStatementsTest, SemicolonsInsideCommentsDoNotSplit) {
  auto parts = SplitStatements(
      "SELECT * FROM r -- not a boundary: ;\n"
      "WHERE id > 0; SELECT /* nor this one: ; */ * FROM s");
  ASSERT_TRUE(parts.ok()) << parts.status().ToString();
  ASSERT_EQ(parts->size(), 2u);
  EXPECT_NE((*parts)[0].find("-- not a boundary"), std::string::npos);
  EXPECT_NE((*parts)[1].find("/* nor this one"), std::string::npos);
}

TEST(SplitStatementsTest, CommentOnlyScriptIsEmpty) {
  auto parts = SplitStatements("-- nothing here\n/* or here; */ ;");
  ASSERT_TRUE(parts.ok()) << parts.status().ToString();
  EXPECT_TRUE(parts->empty());
}

TEST(SplitStatementsTest, ReportsLexErrors) {
  EXPECT_FALSE(SplitStatements("SELECT 'unterminated").ok());
  EXPECT_FALSE(SplitStatements("SELECT * FROM r /* unterminated").ok());
}

// --- statement effects and dependency scheduling -----------------------------

std::vector<StatementEffects> EffectsOf(
    const std::vector<std::string>& statements) {
  std::vector<StatementEffects> out;
  for (const std::string& sql : statements) {
    out.push_back(AnalyzeEffects(Parse(sql).ValueOrDie()));
  }
  return out;
}

TEST(StatementEffectsTest, ExtractsReadAndWriteSets) {
  const StatementEffects select = AnalyzeEffects(
      Parse("SELECT * FROM INV(CPD(R BY id, s BY id) BY C), s "
            "JOIN (SELECT id FROM q) sub ON s.id = sub.id")
          .ValueOrDie());
  EXPECT_EQ(select.reads, (std::vector<std::string>{"q", "r", "s"}));
  EXPECT_TRUE(select.writes.empty());

  const StatementEffects ctas = AnalyzeEffects(
      Parse("CREATE TABLE Out AS SELECT * FROM r").ValueOrDie());
  EXPECT_EQ(ctas.reads, (std::vector<std::string>{"r"}));
  EXPECT_EQ(ctas.writes, (std::vector<std::string>{"out"}));

  const StatementEffects drop =
      AnalyzeEffects(Parse("DROP TABLE r").ValueOrDie());
  EXPECT_TRUE(drop.reads.empty());
  EXPECT_EQ(drop.writes, (std::vector<std::string>{"r"}));

  // Plain EXPLAIN executes nothing — pure read, even over a CTAS; only
  // EXPLAIN ANALYZE of a CTAS registers its result.
  const StatementEffects explain = AnalyzeEffects(
      Parse("EXPLAIN CREATE TABLE t2 AS SELECT * FROM r").ValueOrDie());
  EXPECT_EQ(explain.reads, (std::vector<std::string>{"r"}));
  EXPECT_TRUE(explain.writes.empty());
  const StatementEffects analyze = AnalyzeEffects(
      Parse("EXPLAIN ANALYZE CREATE TABLE t2 AS SELECT * FROM r")
          .ValueOrDie());
  EXPECT_EQ(analyze.writes, (std::vector<std::string>{"t2"}));
}

TEST(ScheduleWavesTest, CtasFencesOnlyStatementsTouchingItsTable) {
  // The acceptance shape: the t1-SELECT shares wave 0 with the CTAS (they
  // touch disjoint tables), while the t2-SELECT waits for its producer.
  const std::vector<int> waves = ScheduleWaves(EffectsOf({
      "CREATE TABLE t2 AS SELECT * FROM QQR(t0 BY id)",
      "SELECT * FROM t1",
      "SELECT * FROM t2",
  }));
  EXPECT_EQ(waves, (std::vector<int>{0, 0, 1}));
}

TEST(ScheduleWavesTest, ExplainIsNotABarrier) {
  // Regression: EXPLAIN used to serialize the whole batch. Read-only
  // statements never fence each other, so the entire run is one wave.
  const std::vector<int> waves = ScheduleWaves(EffectsOf({
      "SELECT * FROM t1",
      "EXPLAIN SELECT * FROM t1",
      "EXPLAIN ANALYZE SELECT * FROM t1",
      "SELECT * FROM t1",
  }));
  EXPECT_EQ(waves, (std::vector<int>{0, 0, 0, 0}));
}

TEST(ScheduleWavesTest, DropRecreateSelectChainsSequentially) {
  // WAW (drop after create), then WAR/RAW ordering around the re-create:
  // every step on one table forms a chain, while an unrelated SELECT rides
  // wave 0.
  const std::vector<int> waves = ScheduleWaves(EffectsOf({
      "CREATE TABLE t AS SELECT * FROM src",
      "DROP TABLE t",
      "CREATE TABLE t AS SELECT * FROM other_src",
      "SELECT * FROM t",
      "SELECT * FROM unrelated",
  }));
  EXPECT_EQ(waves, (std::vector<int>{0, 1, 2, 3, 0}));
}

TEST(ScheduleWavesTest, DisjointChainsOverlap) {
  // Two CTAS+SELECT chains over disjoint tables: the second chain does not
  // wait for the first — both producers share wave 0, both consumers wave 1.
  const std::vector<int> waves = ScheduleWaves(EffectsOf({
      "CREATE TABLE ca AS SELECT * FROM QQR(a BY id)",
      "SELECT * FROM ca",
      "CREATE TABLE cb AS SELECT * FROM QQR(b BY id)",
      "SELECT * FROM cb",
  }));
  EXPECT_EQ(waves, (std::vector<int>{0, 1, 0, 1}));
}

TEST(ScheduleWavesTest, WriteAfterReadWaits) {
  // A DROP must wait for earlier readers of its table (they are entitled to
  // the pre-drop catalog), and a barrier-flagged statement fences both ways.
  std::vector<StatementEffects> effects = EffectsOf({
      "SELECT * FROM t",
      "DROP TABLE t",
  });
  EXPECT_EQ(ScheduleWaves(effects), (std::vector<int>{0, 1}));
  StatementEffects barrier;
  barrier.barrier = true;
  effects.insert(effects.begin() + 1, barrier);
  EXPECT_EQ(ScheduleWaves(effects), (std::vector<int>{0, 1, 2}));
}

// --- ExecuteBatch ------------------------------------------------------------

TEST(ExecuteBatchTest, MatchesSerialExecution) {
  const std::vector<std::string> statements = {
      "SELECT * FROM QQR(r BY id)",
      "SELECT * FROM QQR(s BY id)",
      "SELECT * FROM INV(CPD(r BY id, r BY id) BY C)",
      "SELECT COUNT(*) AS n FROM r",
  };
  Database serial_db = MakeDb(/*max_threads=*/1);
  Database batch_db = MakeDb(/*max_threads=*/4);

  std::vector<Result<Relation>> batched = batch_db.ExecuteBatch(statements);
  ASSERT_EQ(batched.size(), statements.size());
  for (size_t i = 0; i < statements.size(); ++i) {
    ASSERT_TRUE(batched[i].ok())
        << statements[i] << ": " << batched[i].status().ToString();
    auto expected = serial_db.Execute(statements[i]);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    EXPECT_EQ(batched[i]->num_rows(), expected->num_rows()) << statements[i];
    EXPECT_EQ(batched[i]->num_columns(), expected->num_columns())
        << statements[i];
  }
}

TEST(ExecuteBatchTest, SharedContextSharesThePlanCache) {
  Database db = MakeDb();
  const std::vector<std::string> statements(
      8, std::string("SELECT * FROM QQR(r BY id)"));
  std::vector<Result<Relation>> results = db.ExecuteBatch(statements);
  for (const auto& r : results) {
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->num_rows(), 500);
  }
  const QueryCache::Counters c = db.query_cache()->counters();
  // Eight identical statements on a cold cache: the in-flight dedupe elects
  // one leader to plan while the rest wait and borrow (or hit, if the
  // leader already published) — one miss total, never eight statements
  // racing to fill the same entry.
  EXPECT_EQ(c.plan_hits + c.plan_misses, 8);
  EXPECT_EQ(c.plan_misses, 1);
  EXPECT_EQ(c.plan_hits, 7);
  std::vector<Result<Relation>> warm = db.ExecuteBatch(statements);
  const QueryCache::Counters c2 = db.query_cache()->counters();
  EXPECT_EQ(c2.plan_hits + c2.plan_misses, 16);
  EXPECT_EQ(c2.plan_hits - c.plan_hits, 8);  // the warm batch fully hits
}

TEST(ExecuteBatchTest, MixedDuplicatesPlanOncePerDistinctStatement) {
  Database db = MakeDb();
  std::vector<std::string> statements;
  for (int i = 0; i < 4; ++i) {
    statements.push_back("SELECT * FROM QQR(r BY id)");
    statements.push_back("SELECT * FROM QQR(s BY id)");
  }
  std::vector<Result<Relation>> results = db.ExecuteBatch(statements);
  for (const auto& r : results) ASSERT_TRUE(r.ok()) << r.status().ToString();
  const QueryCache::Counters c = db.query_cache()->counters();
  EXPECT_EQ(c.plan_misses, 2);  // one leader per distinct normalized text
  EXPECT_EQ(c.plan_hits, 6);
  EXPECT_EQ(db.query_cache()->plan_entries(), 2u);
}

TEST(ExecuteBatchTest, DdlOrderingIsPreserved) {
  // DDL is no longer a global barrier, but every statement still observes
  // the catalog state its script position implies: the dependency DAG
  // orders producers before consumers and drops after readers.
  Database db = MakeDb();
  const std::vector<std::string> statements = {
      "SELECT * FROM r",
      "CREATE TABLE q AS SELECT * FROM QQR(r BY id)",
      "SELECT * FROM q",          // must see the table created above
      "DROP TABLE q",
      "SELECT * FROM q",          // must fail: dropped above
  };
  std::vector<Result<Relation>> results = db.ExecuteBatch(statements);
  ASSERT_EQ(results.size(), 5u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_TRUE(results[1].ok());
  ASSERT_TRUE(results[2].ok()) << results[2].status().ToString();
  EXPECT_EQ(results[2]->num_rows(), 500);
  EXPECT_TRUE(results[3].ok());
  EXPECT_FALSE(results[4].ok());
  EXPECT_FALSE(db.Has("q"));
}

TEST(ExecuteBatchTest, ExplainDoesNotFenceASelectRun) {
  // Regression for the EXPLAIN barrier: a run of SELECTs with EXPLAINs
  // interleaved executes as one wave, so the identical SELECTs still
  // deduplicate at the plan cache — under the old barrier semantics each
  // EXPLAIN split the run and the dedupe never engaged across it.
  Database db = MakeDb();
  const std::vector<std::string> statements = {
      "SELECT * FROM QQR(r BY id)",
      "EXPLAIN SELECT * FROM QQR(r BY id)",
      "SELECT * FROM QQR(r BY id)",
      "EXPLAIN SELECT * FROM QQR(r BY id)",
      "SELECT * FROM QQR(r BY id)",
  };
  std::vector<Result<Relation>> results = db.ExecuteBatch(statements);
  for (size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok())
        << statements[i] << ": " << results[i].status().ToString();
  }
  // Plain EXPLAIN renders without consulting the plan cache; the three
  // SELECTs resolve as one leader plus two borrows/hits.
  const QueryCache::Counters c = db.query_cache()->counters();
  EXPECT_EQ(c.plan_misses, 1);
  EXPECT_EQ(c.plan_hits, 2);
}

TEST(ExecuteBatchTest, MutatingOneTableKeepsPlansReadingOthers) {
  // Per-table plan invalidation end-to-end: a batch whose DDL touches only
  // `q` leaves the cached plan over `r` serving hits, and the invalidation
  // counter records only genuinely evicted plans.
  Database db = MakeDb();
  ASSERT_TRUE(db.Query("SELECT * FROM QQR(r BY id)").ok());   // cache r-plan
  ASSERT_TRUE(db.Query("SELECT * FROM QQR(s BY id)").ok());   // cache s-plan
  const QueryCache::Counters before = db.query_cache()->counters();
  EXPECT_EQ(before.plan_invalidations, 0);

  std::vector<Result<Relation>> results = db.ExecuteBatch({
      "CREATE TABLE q AS SELECT * FROM QQR(s BY id)",
      "SELECT * FROM QQR(r BY id)",  // concurrent with the CTAS, still a hit
      "DROP TABLE q",
  });
  for (const auto& res : results) {
    ASSERT_TRUE(res.ok()) << res.status().ToString();
  }
  const QueryCache::Counters after = db.query_cache()->counters();
  // The r-SELECT hit its surviving plan across two catalog mutations.
  EXPECT_EQ(after.plan_hits - before.plan_hits, 1);
  // Neither mutation evicted anything: no cached plan *reads* q (the CTAS's
  // own plan reads s), so the precise counter stays at zero.
  EXPECT_EQ(after.plan_invalidations, 0);
  // …and both pre-batch plans still serve.
  ASSERT_TRUE(db.Query("SELECT * FROM QQR(s BY id)").ok());
  EXPECT_EQ(db.query_cache()->counters().plan_hits - after.plan_hits, 1);

  // Dropping a table a plan *does* read evicts exactly that plan.
  ASSERT_OK(db.Drop("s"));
  const QueryCache::Counters dropped = db.query_cache()->counters();
  EXPECT_GE(dropped.plan_invalidations, 1);
  ASSERT_TRUE(db.Query("SELECT * FROM QQR(r BY id)").ok());  // still cached
  EXPECT_EQ(db.query_cache()->counters().plan_hits,
            dropped.plan_hits + 1);
}

TEST(ExecuteBatchTest, DisjointDdlSelectChainsRunConcurrently) {
  // Two CTAS+SELECT chains over disjoint tables plus independent SELECTs:
  // the waves overlap the chains (asserted deterministically in
  // ScheduleWavesTest; here the full execution path runs under TSan in CI)
  // and every result matches its script position.
  Database db = MakeDb(/*max_threads=*/4);
  const std::vector<std::string> statements = {
      "CREATE TABLE ca AS SELECT * FROM QQR(r BY id)",
      "SELECT COUNT(*) AS n FROM ca",
      "CREATE TABLE cb AS SELECT * FROM QQR(s BY id)",
      "SELECT COUNT(*) AS n FROM cb",
      "SELECT * FROM rating",
      "DROP TABLE ca",
      "DROP TABLE cb",
  };
  for (int round = 0; round < 3; ++round) {
    std::vector<Result<Relation>> results = db.ExecuteBatch(statements);
    ASSERT_EQ(results.size(), statements.size());
    for (size_t i = 0; i < results.size(); ++i) {
      ASSERT_TRUE(results[i].ok())
          << statements[i] << ": " << results[i].status().ToString();
    }
    EXPECT_EQ(ValueToDouble(results[1]->Get(0, 0)), 500.0);
    EXPECT_EQ(ValueToDouble(results[3]->Get(0, 0)), 500.0);
  }
  EXPECT_FALSE(db.Has("ca"));
  EXPECT_FALSE(db.Has("cb"));
}

// --- readiness vs. waves ------------------------------------------------------

/// The mixed-script shape from bench_batch: disjoint CTAS → SELECT chains
/// with independent analytic SELECTs between them. Exercises every edge
/// type (RAW on the created table, WAR before the drop, WAW on re-create).
std::vector<std::string> MixedChainScript() {
  return {
      "CREATE TABLE ca AS SELECT * FROM QQR(r BY id)",
      "SELECT * FROM CPD(s BY id, s BY id)",
      "SELECT COUNT(*) AS n FROM ca",
      "DROP TABLE ca",
      "CREATE TABLE cb AS SELECT * FROM QQR(s BY id)",
      "SELECT COUNT(*) AS n FROM cb",
      "DROP TABLE cb",
      "SELECT * FROM rating",
  };
}

TEST(BatchScheduleTest, ReadinessAndWavesProduceIdenticalResults) {
  // Same script, both schedulers, slot-by-slot agreement on ok-ness and
  // shape. Readiness is the default; waves stays selectable per database.
  const std::vector<std::string> statements = MixedChainScript();
  Database readiness_db = MakeDb(/*max_threads=*/4);
  ASSERT_EQ(readiness_db.rma_options.batch_schedule,
            BatchSchedule::kReadiness);
  Database waves_db = MakeDb(/*max_threads=*/4);
  waves_db.rma_options.batch_schedule = BatchSchedule::kWaves;

  for (int round = 0; round < 3; ++round) {
    std::vector<Result<Relation>> ready = readiness_db.ExecuteBatch(statements);
    std::vector<Result<Relation>> waves = waves_db.ExecuteBatch(statements);
    ASSERT_EQ(ready.size(), statements.size());
    ASSERT_EQ(waves.size(), statements.size());
    for (size_t i = 0; i < statements.size(); ++i) {
      ASSERT_TRUE(ready[i].ok())
          << statements[i] << ": " << ready[i].status().ToString();
      ASSERT_TRUE(waves[i].ok())
          << statements[i] << ": " << waves[i].status().ToString();
      EXPECT_EQ(ready[i]->num_rows(), waves[i]->num_rows()) << statements[i];
      EXPECT_EQ(ready[i]->num_columns(), waves[i]->num_columns())
          << statements[i];
    }
    EXPECT_EQ(ValueToDouble(ready[2]->Get(0, 0)), 500.0);
    EXPECT_EQ(ValueToDouble(ready[5]->Get(0, 0)), 500.0);
  }
  EXPECT_FALSE(readiness_db.Has("ca"));
  EXPECT_FALSE(readiness_db.Has("cb"));
}

TEST(BatchScheduleTest, ReadinessHonorsDependentOrdering) {
  // The DdlOrderingIsPreserved contract, pinned explicitly to the readiness
  // scheduler: a consumer launches only when its own producers finished, a
  // post-drop reader fails, and slots stay aligned with script positions.
  Database db = MakeDb(/*max_threads=*/4);
  db.rma_options.batch_schedule = BatchSchedule::kReadiness;
  const std::vector<std::string> statements = {
      "CREATE TABLE q AS SELECT * FROM QQR(r BY id)",
      "SELECT COUNT(*) AS n FROM q",
      "DROP TABLE q",
      "SELECT * FROM q",
  };
  for (int round = 0; round < 5; ++round) {
    std::vector<Result<Relation>> results = db.ExecuteBatch(statements);
    ASSERT_EQ(results.size(), 4u);
    ASSERT_TRUE(results[0].ok()) << results[0].status().ToString();
    ASSERT_TRUE(results[1].ok()) << results[1].status().ToString();
    EXPECT_EQ(ValueToDouble(results[1]->Get(0, 0)), 500.0);
    EXPECT_TRUE(results[2].ok());
    EXPECT_FALSE(results[3].ok());  // reads the post-drop catalog
    EXPECT_FALSE(db.Has("q"));
  }
}

TEST(BatchScheduleTest, ReadinessPreservesParseErrorSlots) {
  // Unparseable statements hold their error in place; their slots take no
  // scheduler edges, so surrounding statements still overlap and succeed.
  Database db = MakeDb(/*max_threads=*/4);
  const std::vector<std::string> statements = {
      "SELECT * FROM QQR(r BY id)",
      "SELECT broken syntax here",
      "CREATE TABLE q AS SELECT * FROM QQR(s BY id)",
      "SELECT * FROM no_such_table",
      "SELECT COUNT(*) AS n FROM q",
      "DROP TABLE q",
  };
  std::vector<Result<Relation>> results = db.ExecuteBatch(statements);
  ASSERT_EQ(results.size(), 6u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_FALSE(results[1].ok());  // parse error, preserved in its slot
  EXPECT_TRUE(results[2].ok());
  EXPECT_FALSE(results[3].ok());  // execution error (unknown table)
  ASSERT_TRUE(results[4].ok()) << results[4].status().ToString();
  EXPECT_EQ(ValueToDouble(results[4]->Get(0, 0)), 500.0);
  EXPECT_TRUE(results[5].ok());
}

TEST(BatchScheduleTest, SingleThreadBudgetFallsBackSafely) {
  // budget < 2 cannot overlap anything: the readiness default quietly takes
  // the serial waves path and the script still honors its ordering.
  Database db = MakeDb(/*max_threads=*/1);
  std::vector<Result<Relation>> results =
      db.ExecuteBatch(MixedChainScript());
  ASSERT_EQ(results.size(), 8u);
  for (size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << results[i].status().ToString();
  }
  EXPECT_EQ(ValueToDouble(results[2]->Get(0, 0)), 500.0);
  EXPECT_FALSE(db.Has("ca"));
  EXPECT_FALSE(db.Has("cb"));
}

TEST(ExecuteScriptTest, CommentsFlowThroughEndToEnd) {
  // The acceptance path for the comment bugfixes: a script with block
  // comments, apostrophes inside comments, and comment-adjacent semicolons
  // splits, parses, normalizes, and executes.
  Database db = MakeDb();
  std::vector<Result<Relation>> results = db.ExecuteScript(
      "-- don't let this apostrophe desync anything; really\n"
      "CREATE TABLE q AS SELECT * FROM QQR(r BY id); /* q's lifecycle:\n"
      "   created above; dropped below */\n"
      "SELECT COUNT(*) AS n FROM q -- trailing comment with ; inside\n;"
      "DROP TABLE q;");
  ASSERT_EQ(results.size(), 3u);
  for (const auto& r : results) ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(ValueToDouble(results[1]->Get(0, 0)), 500.0);
  EXPECT_FALSE(db.Has("q"));

  // Comment-only differences share one plan entry: the normalized key
  // strips comments, so the commented spelling hits the cached plan.
  Database db2 = MakeDb();
  ASSERT_TRUE(db2.Query("SELECT * FROM QQR(r BY id)").ok());
  ASSERT_TRUE(
      db2.Query("SELECT * /* same plan, don't replan */ FROM QQR(r BY id)")
          .ok());
  EXPECT_EQ(db2.query_cache()->counters().plan_hits, 1);
  EXPECT_EQ(db2.query_cache()->counters().plan_misses, 1);
}

TEST(ExecuteBatchTest, FailedStatementDoesNotStopTheBatch) {
  Database db = MakeDb();
  const std::vector<std::string> statements = {
      "SELECT * FROM r",
      "SELECT * FROM no_such_table",
      "SELECT broken syntax here",
      "SELECT * FROM s",
  };
  std::vector<Result<Relation>> results = db.ExecuteBatch(statements);
  ASSERT_EQ(results.size(), 4u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_FALSE(results[1].ok());
  EXPECT_FALSE(results[2].ok());
  EXPECT_TRUE(results[3].ok());
}

TEST(ExecuteBatchTest, EmptyBatch) {
  Database db = MakeDb();
  EXPECT_TRUE(db.ExecuteBatch({}).empty());
}

TEST(ExecuteScriptTest, RunsMultiStatementScripts) {
  Database db = MakeDb();
  std::vector<Result<Relation>> results = db.ExecuteScript(
      "CREATE TABLE q AS SELECT * FROM QQR(r BY id);"
      "SELECT * FROM q; SELECT COUNT(*) AS n FROM q; DROP TABLE q;");
  ASSERT_EQ(results.size(), 4u);
  for (const auto& r : results) ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(results[1]->num_rows(), 500);
}

TEST(ExecuteScriptTest, SplitErrorYieldsSingleErrorResult) {
  Database db = MakeDb();
  std::vector<Result<Relation>> results =
      db.ExecuteScript("SELECT 'unterminated");
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].ok());
}

// --- stress: concurrent cached statements vs. catalog mutations --------------

TEST(ConcurrencyStressTest, ManyThreadsWithInterleavedInvalidations) {
  Database db = MakeDb(/*max_threads=*/4);
  const std::vector<std::string> queries = {
      "SELECT * FROM QQR(r BY id)",
      "SELECT * FROM RQR(r BY id)",
      "SELECT * FROM QQR(s BY id)",
      "SELECT * FROM CPD(r BY id, r BY id)",
      "SELECT id, a0 FROM r WHERE a0 > 0",
  };
  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 12;
  std::atomic<int> failures{0};
  std::atomic<bool> stop_mutator{false};

  // Reader threads hammer the cached statements.
  std::vector<std::thread> readers;
  readers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    readers.emplace_back([&, t] {
      for (int k = 0; k < kItersPerThread; ++k) {
        const std::string& q =
            queries[static_cast<size_t>(t + k) % queries.size()];
        auto result = db.Query(q);
        if (!result.ok() || result->num_rows() <= 0) failures.fetch_add(1);
      }
    });
  }

  // Mutator thread: Register/Drop an unrelated table in a loop — every
  // mutation bumps the catalog version and runs per-table invalidation
  // (the readers' plans survive by identity, exercising the hit path
  // against concurrent version churn) while readers execute.
  std::thread mutator([&] {
    Rng rng(99);
    int round = 0;
    while (!stop_mutator.load()) {
      const Relation tmp =
          RandomKeyedRelation(64, 2, &rng, -1.0, 1.0, "tmp");
      if (!db.Register("tmp", tmp).ok()) failures.fetch_add(1);
      if (++round % 2 == 0) {
        if (!db.Drop("tmp").ok()) failures.fetch_add(1);
      }
      std::this_thread::yield();
    }
  });

  for (auto& th : readers) th.join();
  stop_mutator.store(true);
  mutator.join();

  EXPECT_EQ(failures.load(), 0);
  // The cache stayed coherent: counters add up to the total consults
  // (readers only; the mutator never consults the plan cache).
  const QueryCache::Counters c = db.query_cache()->counters();
  EXPECT_EQ(c.plan_hits + c.plan_misses,
            int64_t{kThreads} * kItersPerThread);
  // Catalog round-trips leave exactly the original tables plus possibly the
  // mutator's last registration.
  EXPECT_TRUE(db.Has("r"));
  EXPECT_TRUE(db.Has("s"));
}

TEST(ConcurrencyStressTest, ConcurrentBatchesShareOneDatabase) {
  Database db = MakeDb(/*max_threads=*/2);
  const std::vector<std::string> statements = {
      "SELECT * FROM QQR(r BY id)",
      "SELECT * FROM QQR(s BY id)",
      "SELECT COUNT(*) AS n FROM r",
  };
  constexpr int kThreads = 4;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int k = 0; k < 4; ++k) {
        std::vector<Result<Relation>> results = db.ExecuteBatch(statements);
        for (const auto& r : results) {
          if (!r.ok()) failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace rma::sql
