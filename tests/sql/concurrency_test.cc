// Concurrency tests for the SQL layer: the batched entry points
// (ExecuteBatch / ExecuteScript), and a stress test driving one Database
// from many threads while the catalog is mutated underneath (plan
// invalidations + prepared-argument evictions racing cached statements).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/query_cache.h"
#include "sql/database.h"
#include "sql/parser.h"
#include "test_util.h"
#include "util/random.h"

namespace rma::sql {
namespace {

using rma::testing::RandomKeyedRelation;
using rma::testing::RatingsRelation;

Database MakeDb(int max_threads = 4) {
  Database db;
  db.rma_options.max_threads = max_threads;
  Rng rng(7);
  db.Register("r", RandomKeyedRelation(500, 4, &rng, -10.0, 10.0, "r"))
      .Abort();
  db.Register("s", RandomKeyedRelation(500, 4, &rng, -10.0, 10.0, "s"))
      .Abort();
  db.Register("rating", RatingsRelation()).Abort();
  return db;
}

// --- SplitStatements ---------------------------------------------------------

TEST(SplitStatementsTest, SplitsOnTopLevelSemicolons) {
  auto parts = SplitStatements(
      "SELECT * FROM r; SELECT * FROM s ;\n SELECT id FROM r");
  ASSERT_TRUE(parts.ok()) << parts.status().ToString();
  ASSERT_EQ(parts->size(), 3u);
  EXPECT_EQ((*parts)[0], "SELECT * FROM r");
  EXPECT_EQ((*parts)[2], "\n SELECT id FROM r");
}

TEST(SplitStatementsTest, RespectsStringLiterals) {
  auto parts = SplitStatements(
      "SELECT * FROM rating WHERE User = 'a;b'; SELECT * FROM rating");
  ASSERT_TRUE(parts.ok()) << parts.status().ToString();
  ASSERT_EQ(parts->size(), 2u);
  EXPECT_EQ((*parts)[0], "SELECT * FROM rating WHERE User = 'a;b'");
}

TEST(SplitStatementsTest, DropsEmptyStatements) {
  auto parts = SplitStatements(";;SELECT * FROM r;; ;");
  ASSERT_TRUE(parts.ok()) << parts.status().ToString();
  ASSERT_EQ(parts->size(), 1u);
}

TEST(SplitStatementsTest, ReportsLexErrors) {
  EXPECT_FALSE(SplitStatements("SELECT 'unterminated").ok());
}

// --- ExecuteBatch ------------------------------------------------------------

TEST(ExecuteBatchTest, MatchesSerialExecution) {
  const std::vector<std::string> statements = {
      "SELECT * FROM QQR(r BY id)",
      "SELECT * FROM QQR(s BY id)",
      "SELECT * FROM INV(CPD(r BY id, r BY id) BY C)",
      "SELECT COUNT(*) AS n FROM r",
  };
  Database serial_db = MakeDb(/*max_threads=*/1);
  Database batch_db = MakeDb(/*max_threads=*/4);

  std::vector<Result<Relation>> batched = batch_db.ExecuteBatch(statements);
  ASSERT_EQ(batched.size(), statements.size());
  for (size_t i = 0; i < statements.size(); ++i) {
    ASSERT_TRUE(batched[i].ok())
        << statements[i] << ": " << batched[i].status().ToString();
    auto expected = serial_db.Execute(statements[i]);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    EXPECT_EQ(batched[i]->num_rows(), expected->num_rows()) << statements[i];
    EXPECT_EQ(batched[i]->num_columns(), expected->num_columns())
        << statements[i];
  }
}

TEST(ExecuteBatchTest, SharedContextSharesThePlanCache) {
  Database db = MakeDb();
  const std::vector<std::string> statements(
      8, std::string("SELECT * FROM QQR(r BY id)"));
  std::vector<Result<Relation>> results = db.ExecuteBatch(statements);
  for (const auto& r : results) {
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->num_rows(), 500);
  }
  const QueryCache::Counters c = db.query_cache()->counters();
  // Eight identical statements on a cold cache: the in-flight dedupe elects
  // one leader to plan while the rest wait and borrow (or hit, if the
  // leader already published) — one miss total, never eight statements
  // racing to fill the same entry.
  EXPECT_EQ(c.plan_hits + c.plan_misses, 8);
  EXPECT_EQ(c.plan_misses, 1);
  EXPECT_EQ(c.plan_hits, 7);
  std::vector<Result<Relation>> warm = db.ExecuteBatch(statements);
  const QueryCache::Counters c2 = db.query_cache()->counters();
  EXPECT_EQ(c2.plan_hits + c2.plan_misses, 16);
  EXPECT_EQ(c2.plan_hits - c.plan_hits, 8);  // the warm batch fully hits
}

TEST(ExecuteBatchTest, MixedDuplicatesPlanOncePerDistinctStatement) {
  Database db = MakeDb();
  std::vector<std::string> statements;
  for (int i = 0; i < 4; ++i) {
    statements.push_back("SELECT * FROM QQR(r BY id)");
    statements.push_back("SELECT * FROM QQR(s BY id)");
  }
  std::vector<Result<Relation>> results = db.ExecuteBatch(statements);
  for (const auto& r : results) ASSERT_TRUE(r.ok()) << r.status().ToString();
  const QueryCache::Counters c = db.query_cache()->counters();
  EXPECT_EQ(c.plan_misses, 2);  // one leader per distinct normalized text
  EXPECT_EQ(c.plan_hits, 6);
  EXPECT_EQ(db.query_cache()->plan_entries(), 2u);
}

TEST(ExecuteBatchTest, DdlActsAsBarrier) {
  Database db = MakeDb();
  const std::vector<std::string> statements = {
      "SELECT * FROM r",
      "CREATE TABLE q AS SELECT * FROM QQR(r BY id)",
      "SELECT * FROM q",          // must see the table created above
      "DROP TABLE q",
      "SELECT * FROM q",          // must fail: dropped above
  };
  std::vector<Result<Relation>> results = db.ExecuteBatch(statements);
  ASSERT_EQ(results.size(), 5u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_TRUE(results[1].ok());
  ASSERT_TRUE(results[2].ok()) << results[2].status().ToString();
  EXPECT_EQ(results[2]->num_rows(), 500);
  EXPECT_TRUE(results[3].ok());
  EXPECT_FALSE(results[4].ok());
  EXPECT_FALSE(db.Has("q"));
}

TEST(ExecuteBatchTest, FailedStatementDoesNotStopTheBatch) {
  Database db = MakeDb();
  const std::vector<std::string> statements = {
      "SELECT * FROM r",
      "SELECT * FROM no_such_table",
      "SELECT broken syntax here",
      "SELECT * FROM s",
  };
  std::vector<Result<Relation>> results = db.ExecuteBatch(statements);
  ASSERT_EQ(results.size(), 4u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_FALSE(results[1].ok());
  EXPECT_FALSE(results[2].ok());
  EXPECT_TRUE(results[3].ok());
}

TEST(ExecuteBatchTest, EmptyBatch) {
  Database db = MakeDb();
  EXPECT_TRUE(db.ExecuteBatch({}).empty());
}

TEST(ExecuteScriptTest, RunsMultiStatementScripts) {
  Database db = MakeDb();
  std::vector<Result<Relation>> results = db.ExecuteScript(
      "CREATE TABLE q AS SELECT * FROM QQR(r BY id);"
      "SELECT * FROM q; SELECT COUNT(*) AS n FROM q; DROP TABLE q;");
  ASSERT_EQ(results.size(), 4u);
  for (const auto& r : results) ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(results[1]->num_rows(), 500);
}

TEST(ExecuteScriptTest, SplitErrorYieldsSingleErrorResult) {
  Database db = MakeDb();
  std::vector<Result<Relation>> results =
      db.ExecuteScript("SELECT 'unterminated");
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].ok());
}

// --- stress: concurrent cached statements vs. catalog mutations --------------

TEST(ConcurrencyStressTest, ManyThreadsWithInterleavedInvalidations) {
  Database db = MakeDb(/*max_threads=*/4);
  const std::vector<std::string> queries = {
      "SELECT * FROM QQR(r BY id)",
      "SELECT * FROM RQR(r BY id)",
      "SELECT * FROM QQR(s BY id)",
      "SELECT * FROM CPD(r BY id, r BY id)",
      "SELECT id, a0 FROM r WHERE a0 > 0",
  };
  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 12;
  std::atomic<int> failures{0};
  std::atomic<bool> stop_mutator{false};

  // Reader threads hammer the cached statements.
  std::vector<std::thread> readers;
  readers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    readers.emplace_back([&, t] {
      for (int k = 0; k < kItersPerThread; ++k) {
        const std::string& q =
            queries[static_cast<size_t>(t + k) % queries.size()];
        auto result = db.Query(q);
        if (!result.ok() || result->num_rows() <= 0) failures.fetch_add(1);
      }
    });
  }

  // Mutator thread: Register/Drop an unrelated table in a loop — every
  // mutation bumps the catalog version (invalidating cached plans) and
  // evicts the table's prepared arguments while readers execute.
  std::thread mutator([&] {
    Rng rng(99);
    int round = 0;
    while (!stop_mutator.load()) {
      const Relation tmp =
          RandomKeyedRelation(64, 2, &rng, -1.0, 1.0, "tmp");
      if (!db.Register("tmp", tmp).ok()) failures.fetch_add(1);
      if (++round % 2 == 0) {
        if (!db.Drop("tmp").ok()) failures.fetch_add(1);
      }
      std::this_thread::yield();
    }
  });

  for (auto& th : readers) th.join();
  stop_mutator.store(true);
  mutator.join();

  EXPECT_EQ(failures.load(), 0);
  // The cache stayed coherent: counters add up to the total consults
  // (readers only; the mutator never consults the plan cache).
  const QueryCache::Counters c = db.query_cache()->counters();
  EXPECT_EQ(c.plan_hits + c.plan_misses,
            int64_t{kThreads} * kItersPerThread);
  // Catalog round-trips leave exactly the original tables plus possibly the
  // mutator's last registration.
  EXPECT_TRUE(db.Has("r"));
  EXPECT_TRUE(db.Has("s"));
}

TEST(ConcurrencyStressTest, ConcurrentBatchesShareOneDatabase) {
  Database db = MakeDb(/*max_threads=*/2);
  const std::vector<std::string> statements = {
      "SELECT * FROM QQR(r BY id)",
      "SELECT * FROM QQR(s BY id)",
      "SELECT COUNT(*) AS n FROM r",
  };
  constexpr int kThreads = 4;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int k = 0; k < 4; ++k) {
        std::vector<Result<Relation>> results = db.ExecuteBatch(statements);
        for (const auto& r : results) {
          if (!r.ok()) failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace rma::sql
