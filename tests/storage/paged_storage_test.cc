// Out-of-core storage tier: pager checksums, buffer-pool eviction, durable
// catalog recovery, and paged-vs-malloc result parity.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/rma.h"
#include "rel/operators.h"
#include "sql/database.h"
#include "storage/buffer_pool.h"
#include "storage/paged_bat.h"
#include "storage/paged_store.h"
#include "storage/pager.h"
#include "test_util.h"
#include "workload/synthetic.h"

namespace rma {
namespace {

/// Fresh scratch directory per test (removed by the next run's mkdtemp
/// collisions being impossible; /tmp is tmpfs in CI).
std::string TempDir() {
  char tmpl[] = "/tmp/rma_paged_test_XXXXXX";
  const char* dir = mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir;
}

/// Flips one byte at `offset` of `path` (simulates a torn or bit-rotted
/// write that fsync ordering cannot prevent).
void CorruptByte(const std::string& path, long offset) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
  const int c = std::fgetc(f);
  ASSERT_NE(c, EOF);
  ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
  std::fputc(c ^ 0x5a, f);
  std::fclose(f);
}

TEST(Pager, RoundTripAndReopen) {
  const std::string dir = TempDir();
  const std::string path = dir + "/t.col";
  const int64_t page_bytes = 4096;
  uint64_t first = 0;
  {
    ASSERT_OK_AND_ASSIGN(std::shared_ptr<Pager> pager,
                         Pager::Create(path, page_bytes));
    EXPECT_EQ(pager->page_count(), 0u);
    ASSERT_OK_AND_ASSIGN(first, pager->AllocateExtent(3));
    std::vector<char> page(static_cast<size_t>(pager->payload_bytes()));
    for (uint64_t p = 0; p < 3; ++p) {
      std::memset(page.data(), static_cast<int>('a' + p), page.size());
      ASSERT_OK(pager->WritePage(first + p, page.data()));
    }
    ASSERT_OK(pager->Sync());
  }
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<Pager> pager, Pager::Open(path));
  EXPECT_EQ(pager->page_bytes(), page_bytes);
  EXPECT_EQ(pager->page_count(), 3u);
  std::vector<char> page(static_cast<size_t>(pager->payload_bytes()));
  ASSERT_OK(pager->ReadPage(first + 1, page.data()));
  EXPECT_EQ(page[0], 'b');
  EXPECT_EQ(page[page.size() - 1], 'b');
}

TEST(Pager, ChecksumRejectsCorruptPage) {
  const std::string dir = TempDir();
  const std::string path = dir + "/t.col";
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<Pager> pager,
                       Pager::Create(path, 1024));
  ASSERT_OK_AND_ASSIGN(const uint64_t first, pager->AllocateExtent(1));
  std::vector<char> page(static_cast<size_t>(pager->payload_bytes()), 'x');
  ASSERT_OK(pager->WritePage(first, page.data()));
  ASSERT_OK(pager->Sync());
  // Corrupt one payload byte in the middle of the (only) data page; the
  // file layout is [header page][data page...].
  CorruptByte(path, 1024 + 512);
  const Status st = pager->ReadPage(first, page.data());
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("checksum"), std::string::npos)
      << st.ToString();
}

TEST(Pager, OpenRejectsTruncatedFile) {
  const std::string dir = TempDir();
  const std::string path = dir + "/t.col";
  {
    ASSERT_OK_AND_ASSIGN(std::shared_ptr<Pager> pager,
                         Pager::Create(path, 1024));
    ASSERT_OK_AND_ASSIGN(const uint64_t first, pager->AllocateExtent(4));
    std::vector<char> page(static_cast<size_t>(pager->payload_bytes()), 'y');
    for (uint64_t p = 0; p < 4; ++p) {
      ASSERT_OK(pager->WritePage(first + p, page.data()));
    }
    ASSERT_OK(pager->Sync());
  }
  // A kill mid-write can leave the header's committed page count pointing
  // past the file end; Open must refuse rather than serve short reads.
  ASSERT_EQ(truncate(path.c_str(), 3 * 1024), 0);
  const auto reopened = Pager::Open(path);
  EXPECT_FALSE(reopened.ok());
  EXPECT_NE(reopened.status().message().find("truncated"), std::string::npos)
      << reopened.status().ToString();
}

TEST(BufferPool, HitMissEvictionStats) {
  const std::string dir = TempDir();
  const int64_t page_bytes = 1024;
  const int64_t payload = page_bytes - Pager::kPageHeaderBytes;
  // Pool holds exactly two one-page frames.
  BufferPool pool(2 * page_bytes);
  std::vector<std::shared_ptr<Pager>> pagers;
  std::vector<uint64_t> firsts;
  for (int i = 0; i < 3; ++i) {
    ASSERT_OK_AND_ASSIGN(
        std::shared_ptr<Pager> pager,
        Pager::Create(dir + "/p" + std::to_string(i) + ".col", page_bytes));
    ASSERT_OK_AND_ASSIGN(const uint64_t first, pager->AllocateExtent(1));
    std::vector<char> page(static_cast<size_t>(payload),
                           static_cast<char>('0' + i));
    ASSERT_OK(pager->WritePage(first, page.data()));
    ASSERT_OK(pager->Sync());
    pagers.push_back(std::move(pager));
    firsts.push_back(first);
  }
  {
    ASSERT_OK_AND_ASSIGN(PinnedExtent a,
                         pool.Pin(pagers[0], firsts[0], 1, payload));
    EXPECT_EQ(a.data()[0], '0');
  }
  {
    // Re-pin: resident, counts a hit.
    ASSERT_OK_AND_ASSIGN(PinnedExtent a,
                         pool.Pin(pagers[0], firsts[0], 1, payload));
    ASSERT_OK_AND_ASSIGN(PinnedExtent b,
                         pool.Pin(pagers[1], firsts[1], 1, payload));
    // Third frame exceeds the budget; `a` and `b` are pinned, so the pool
    // overcommits rather than evicting them.
    ASSERT_OK_AND_ASSIGN(PinnedExtent c,
                         pool.Pin(pagers[2], firsts[2], 1, payload));
    EXPECT_EQ(c.data()[0], '2');
    const BufferPoolStats mid = pool.stats();
    EXPECT_EQ(mid.hits, 1);
    EXPECT_EQ(mid.misses, 3);
    EXPECT_GE(mid.overcommits, 1);
    EXPECT_EQ(mid.evictions, 0);
  }
  // All unpinned now; a fresh extent misses and evicts LRU frames down to
  // capacity.
  ASSERT_OK_AND_ASSIGN(
      std::shared_ptr<Pager> extra,
      Pager::Create(dir + "/p3.col", page_bytes));
  ASSERT_OK_AND_ASSIGN(const uint64_t extra_first, extra->AllocateExtent(1));
  std::vector<char> page(static_cast<size_t>(payload), '3');
  ASSERT_OK(extra->WritePage(extra_first, page.data()));
  ASSERT_OK(extra->Sync());
  {
    ASSERT_OK_AND_ASSIGN(PinnedExtent d,
                         pool.Pin(extra, extra_first, 1, payload));
    EXPECT_EQ(d.data()[0], '3');
  }
  const BufferPoolStats end = pool.stats();
  EXPECT_GT(end.evictions, 0);
  EXPECT_LE(end.resident_bytes, pool.capacity_bytes());
  // An evicted extent re-reads correctly.
  ASSERT_OK_AND_ASSIGN(PinnedExtent again,
                       pool.Pin(pagers[2], firsts[2], 1, payload));
  EXPECT_EQ(again.data()[0], '2');
}

TEST(PagedStore, SaveReopenRoundTrip) {
  const std::string dir = TempDir();
  const Relation r = workload::UniformRelation(500, 3, 11, 0.0, 100.0,
                                               /*sorted=*/false, "m");
  {
    ASSERT_OK_AND_ASSIGN(std::shared_ptr<PagedStore> store,
                         PagedStore::Open(dir));
    ASSERT_OK_AND_ASSIGN(const Relation stored, store->SaveTable("m", r));
    EXPECT_TRUE(RelationsEqualOrdered(r, stored, 0.0));
  }
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<PagedStore> store,
                       PagedStore::Open(dir));
  ASSERT_EQ(store->recovered().size(), 1u);
  EXPECT_EQ(store->recovered()[0].first, "m");
  const Relation& back = store->recovered()[0].second;
  EXPECT_TRUE(RelationsEqualOrdered(r, back, 0.0));
  // Numeric columns come back paged: unstable until pinned.
  EXPECT_FALSE(back.column(1)->StableData());
}

TEST(PagedStore, RecoveryDiscardsTableWithMissingFile) {
  const std::string dir = TempDir();
  std::string victim_file;
  {
    ASSERT_OK_AND_ASSIGN(std::shared_ptr<PagedStore> store,
                         PagedStore::Open(dir));
    ASSERT_OK(store
                  ->SaveTable("keep", workload::UniformRelation(
                                          50, 1, 3, 0.0, 1.0, false, "keep"))
                  .status());
    ASSERT_OK(store
                  ->SaveTable("lose", workload::UniformRelation(
                                          50, 1, 4, 0.0, 1.0, false, "lose"))
                  .status());
  }
  // Delete one of the second table's column files: recovery must discard
  // exactly that table and keep the other.
  ASSERT_EQ(std::remove((dir + "/c3.col").c_str()), 0);
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<PagedStore> store,
                       PagedStore::Open(dir));
  ASSERT_EQ(store->recovered().size(), 1u);
  EXPECT_EQ(store->recovered()[0].first, "keep");
}

TEST(Database, DurableCatalogSurvivesReopen) {
  const std::string dir = TempDir();
  const Relation m = workload::UniformRelation(300, 2, 21, 0.0, 10.0,
                                               /*sorted=*/false, "m");
  {
    ASSERT_OK_AND_ASSIGN(sql::Database db, sql::Database::Open(dir));
    ASSERT_OK(db.Register("m", m));
    ASSERT_OK(db.Register("gone", testing::WeatherRelation()));
    ASSERT_OK(db.Drop("gone"));
  }
  ASSERT_OK_AND_ASSIGN(sql::Database db, sql::Database::Open(dir));
  EXPECT_FALSE(db.Has("gone"));
  ASSERT_OK_AND_ASSIGN(const Relation back, db.Get("m"));
  EXPECT_TRUE(RelationsEqualOrdered(m, back, 0.0));
  // SQL over the recovered (paged) table matches SQL over the original.
  sql::Database mem;
  ASSERT_OK(mem.Register("m", m));
  ASSERT_OK_AND_ASSIGN(const Relation paged_q,
                       db.Query("SELECT * FROM m WHERE a0 > 5"));
  ASSERT_OK_AND_ASSIGN(const Relation mem_q,
                       mem.Query("SELECT * FROM m WHERE a0 > 5"));
  EXPECT_TRUE(RelationsEqualOrdered(mem_q, paged_q, 0.0));
}

TEST(Database, CorruptPageSurfacesAsIoError) {
  const std::string dir = TempDir();
  {
    ASSERT_OK_AND_ASSIGN(sql::Database db, sql::Database::Open(dir));
    ASSERT_OK(db.Register("m", workload::UniformRelation(2000, 1, 5, 0.0, 1.0,
                                                         false, "m")));
  }
  // Corrupt a payload byte of the double column (file c2.col: id is c1).
  // The page checksum catches it at pin time and the statement fails with
  // IoError instead of returning wrong data.
  CorruptByte(dir + "/c2.col", Pager::kDefaultPageBytes + 256);
  ASSERT_OK_AND_ASSIGN(sql::Database db, sql::Database::Open(dir));
  const auto q = db.Query("SELECT * FROM m");
  EXPECT_STATUS(kIoError, q);
  EXPECT_NE(q.status().message().find("checksum"), std::string::npos)
      << q.status().ToString();
}

/// Fig. 13-shaped parity check: `add` and `qqr` over a dataset about twice
/// the pool budget must run eviction traffic and still produce bit-identical
/// results to the malloc-backed baseline.
TEST(Database, PagedVsMallocBitIdenticalUnderEviction) {
  const std::string dir = TempDir();
  const int64_t rows = 20000;
  const Relation r =
      workload::ManyOrderColumnsRelation(rows, 3, 7, 11, "r");
  std::vector<std::string> order;
  for (int c = 0; c < 3; ++c) order.push_back("o" + std::to_string(c));

  // Budget ~half the table bytes so pin traffic must evict.
  PagedStoreOptions opts;
  opts.pool_bytes = r.ByteSize() / 2;
  opts.page_bytes = 16 * 1024;
  ASSERT_OK_AND_ASSIGN(sql::Database db, sql::Database::Open(dir, opts));
  ASSERT_OK(db.Register("r", r));
  ASSERT_OK_AND_ASSIGN(const Relation paged, db.Get("r"));
  EXPECT_FALSE(paged.column(3)->StableData());

  // `add` needs disjoint order-schema names; alias the second operand.
  const std::vector<std::string> renamed = {"p0", "p1", "p2", "val"};
  std::vector<std::string> order_s(renamed.begin(), renamed.end() - 1);
  ASSERT_OK_AND_ASSIGN(const Relation s, rel::RenameAll(r, renamed));
  ASSERT_OK_AND_ASSIGN(const Relation paged_s,
                       rel::RenameAll(paged, renamed));
  ASSERT_OK_AND_ASSIGN(const Relation base_add, Add(r, order, s, order_s));
  ASSERT_OK_AND_ASSIGN(const Relation paged_add,
                       Add(paged, order, paged_s, order_s));
  EXPECT_TRUE(RelationsEqualOrdered(base_add, paged_add, 0.0));

  ASSERT_OK_AND_ASSIGN(const Relation base_qqr, Qqr(r, order));
  ASSERT_OK_AND_ASSIGN(const Relation paged_qqr, Qqr(paged, order));
  EXPECT_TRUE(RelationsEqualOrdered(base_qqr, paged_qqr, 0.0));

  const BufferPoolStats stats = db.paged_store()->pool()->stats();
  EXPECT_GT(stats.evictions, 0) << "pool never evicted; shrink pool_bytes";
  EXPECT_GT(stats.misses, 0);
}

/// Eviction stress with concurrent readers over one store-backed table:
/// transient pins from row accessors race with whole-column pins while the
/// pool thrashes. Run under TSan in the nightly job.
TEST(BufferPool, ConcurrentReadsUnderEvictionPressure) {
  const std::string dir = TempDir();
  const int64_t rows = 8000;
  const Relation r =
      workload::UniformRelation(rows, 4, 17, 0.0, 1.0, false, "m");
  PagedStoreOptions opts;
  opts.pool_bytes = r.ByteSize() / 3;
  opts.page_bytes = 8 * 1024;
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<PagedStore> store,
                       PagedStore::Open(dir, opts));
  ASSERT_OK_AND_ASSIGN(const Relation paged, store->SaveTable("m", r));

  std::vector<std::thread> threads;
  std::vector<double> pinned_sums(4, 0.0);
  std::vector<double> transient_sums(4, 0.0);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      // Each thread scans one column twice: once via the pin bracket
      // (contiguous), once via transient per-row pins.
      const BatPtr& col = paged.column(t + 1);
      double sum = 0;
      if (col->PinData().ok()) {
        const double* d = col->ContiguousDoubleData();
        for (int64_t i = 0; i < rows; ++i) sum += d[i];
        col->UnpinData();
      }
      pinned_sums[static_cast<size_t>(t)] = sum;
      sum = 0;
      for (int64_t i = 0; i < rows; ++i) sum += col->GetDouble(i);
      transient_sums[static_cast<size_t>(t)] = sum;
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < 4; ++t) {
    double expect = 0;
    const double* base = r.column(t + 1)->ContiguousDoubleData();
    for (int64_t i = 0; i < rows; ++i) expect += base[i];
    EXPECT_EQ(pinned_sums[static_cast<size_t>(t)], expect);
    EXPECT_EQ(transient_sums[static_cast<size_t>(t)], expect);
  }
  EXPECT_GT(store->pool()->stats().evictions, 0);
}

TEST(SliceMemo, LruBoundAndStabilityWithinBound) {
  const size_t previous = SetSliceIdentityMemoCapacity(8);
  const Relation r = workload::UniformRelation(64, 1, 1, 0.0, 1.0, false, "r");
  // Within the bound, repeated slicing of the same range is token-stable.
  EXPECT_EQ(r.SliceRows(0, 8).identity(), r.SliceRows(0, 8).identity());
  // Slicing more distinct ranges than the capacity keeps the memo bounded.
  for (int64_t b = 0; b < 32; ++b) r.SliceRows(b, 2);
  EXPECT_LE(SliceIdentityMemoSize(), size_t{8});
  // The early entry aged out: re-slicing mints a fresh (but still stable)
  // token.
  const uint64_t reminted = r.SliceRows(0, 8).identity();
  EXPECT_EQ(reminted, r.SliceRows(0, 8).identity());
  SetSliceIdentityMemoCapacity(previous);
}

}  // namespace
}  // namespace rma
