// Column store: BATs, schemas, relations, and the vectorized BAT ops.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "storage/bat.h"
#include "storage/bat_ops.h"
#include "storage/relation.h"
#include "storage/schema.h"
#include "storage/sparse_bat.h"
#include "test_util.h"

namespace rma {
namespace {

using testing::MakeRelation;

// --- BATs -------------------------------------------------------------------

TEST(Bat, TypedAccessors) {
  const BatPtr ints = MakeInt64Bat({3, 1, 2});
  const BatPtr dbls = MakeDoubleBat({1.5, -2.0});
  const BatPtr strs = MakeStringBat({"b", "a"});
  EXPECT_EQ(ints->type(), DataType::kInt64);
  EXPECT_EQ(dbls->type(), DataType::kDouble);
  EXPECT_EQ(strs->type(), DataType::kString);
  EXPECT_EQ(ints->size(), 3);
  EXPECT_EQ(ints->GetDouble(0), 3.0);
  EXPECT_EQ(dbls->GetString(0), "1.5");
  EXPECT_EQ(strs->GetString(1), "a");
  EXPECT_EQ(ValueToString(ints->GetValue(2)), "2");
}

TEST(Bat, TakeIsLeftFetchJoin) {
  const BatPtr b = MakeInt64Bat({10, 20, 30, 40});
  const BatPtr taken = b->Take({3, 0, 0, 2});
  ASSERT_EQ(taken->size(), 4);
  EXPECT_EQ(taken->GetDouble(0), 40);
  EXPECT_EQ(taken->GetDouble(1), 10);
  EXPECT_EQ(taken->GetDouble(2), 10);
  EXPECT_EQ(taken->GetDouble(3), 30);
}

TEST(Bat, CompareAndHash) {
  const BatPtr a = MakeStringBat({"x", "y"});
  const BatPtr b = MakeStringBat({"y", "x"});
  EXPECT_LT(a->Compare(0, *b, 1), 1);  // "x" vs "x" -> 0
  EXPECT_EQ(a->Compare(0, *b, 1), 0);
  EXPECT_LT(a->Compare(0, *a, 1), 0);
  EXPECT_EQ(a->Hash(0), b->Hash(1));
}

TEST(Bat, ConstantBat) {
  const BatPtr c = MakeConstantBat(Value(7.5), 3);
  EXPECT_EQ(c->size(), 3);
  EXPECT_EQ(c->GetDouble(2), 7.5);
  const BatPtr s = MakeConstantBat(Value(std::string("hi")), 2);
  EXPECT_EQ(s->GetString(1), "hi");
}

TEST(Bat, GatherDoubleVectorCastsAndPermutes) {
  const BatPtr b = MakeInt64Bat({5, 6, 7});
  EXPECT_EQ(GatherDoubleVector(*b, {2, 0}), (std::vector<double>{7, 5}));
  EXPECT_EQ(ToDoubleVector(*b), (std::vector<double>{5, 6, 7}));
}

// --- sparse BATs ---------------------------------------------------------------

TEST(SparseBat, RoundTripAndAccess) {
  const std::vector<double> dense = {0, 1.5, 0, 0, -2, 0};
  const auto sparse = SparseDoubleBat::FromDense(dense);
  EXPECT_EQ(sparse->size(), 6);
  EXPECT_EQ(sparse->NumNonZero(), 2);
  EXPECT_EQ(sparse->ToDense(), dense);
  EXPECT_EQ(sparse->GetDouble(1), 1.5);
  EXPECT_EQ(sparse->GetDouble(3), 0.0);
}

TEST(SparseBat, MaybeCompressRespectsThreshold) {
  const BatPtr mostly_zero = MakeDoubleBat({0, 0, 0, 1});
  const BatPtr dense = MakeDoubleBat({1, 2, 3, 0});
  EXPECT_NE(nullptr, dynamic_cast<const SparseDoubleBat*>(
                         SparseDoubleBat::MaybeCompress(mostly_zero, 0.5).get()));
  EXPECT_EQ(nullptr, dynamic_cast<const SparseDoubleBat*>(
                         SparseDoubleBat::MaybeCompress(dense, 0.5).get()));
}

TEST(SparseBat, SparseAddMatchesDense) {
  Rng rng(5);
  std::vector<double> a(200);
  std::vector<double> b(200);
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.Bernoulli(0.7) ? 0.0 : rng.Uniform(-5, 5);
    b[i] = rng.Bernoulli(0.7) ? 0.0 : rng.Uniform(-5, 5);
  }
  const auto sum = SparseAdd(*SparseDoubleBat::FromDense(a),
                             *SparseDoubleBat::FromDense(b));
  const std::vector<double> got = sum->ToDense();
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(got[i], a[i] + b[i], 1e-12);
  }
}

TEST(SparseBat, AddColumnsDispatchesSparseFastPath) {
  const BatPtr a = SparseDoubleBat::FromDense({0, 1, 0, 2});
  const BatPtr b = SparseDoubleBat::FromDense({3, 0, 0, 4});
  const BatPtr sum = bat_ops::AddColumns(a, b);
  EXPECT_NE(nullptr, dynamic_cast<const SparseDoubleBat*>(sum.get()));
  EXPECT_EQ(ToDoubleVector(*sum), (std::vector<double>{3, 1, 0, 6}));
}

// --- bat_ops ----------------------------------------------------------------------

TEST(BatOps, ArgSortSingleAndMultiKey) {
  const BatPtr k1 = MakeInt64Bat({2, 1, 2, 1});
  const BatPtr k2 = MakeStringBat({"b", "b", "a", "a"});
  EXPECT_EQ(bat_ops::ArgSort({k1}), (std::vector<int64_t>{1, 3, 0, 2}));
  EXPECT_EQ(bat_ops::ArgSort({k1, k2}), (std::vector<int64_t>{3, 1, 2, 0}));
}

TEST(BatOps, ArgSortIsStable) {
  const BatPtr k = MakeInt64Bat({1, 1, 1});
  EXPECT_EQ(bat_ops::ArgSort({k}), (std::vector<int64_t>{0, 1, 2}));
}

TEST(BatOps, ArgSortUniqueDetectsDuplicates) {
  bool unique = false;
  bat_ops::ArgSortUnique({MakeInt64Bat({3, 1, 3})}, &unique);
  EXPECT_FALSE(unique);
  bat_ops::ArgSortUnique({MakeInt64Bat({3, 1, 2})}, &unique);
  EXPECT_TRUE(unique);
  // Composite key: duplicates only if all parts repeat.
  bat_ops::ArgSortUnique(
      {MakeInt64Bat({1, 1}), MakeStringBat({"a", "b"})}, &unique);
  EXPECT_TRUE(unique);
}

TEST(BatOps, IsSortedAndIsKey) {
  EXPECT_TRUE(bat_ops::IsSorted({MakeInt64Bat({1, 2, 2, 3})}));
  EXPECT_FALSE(bat_ops::IsSorted({MakeInt64Bat({1, 3, 2})}));
  EXPECT_TRUE(bat_ops::IsKey({MakeInt64Bat({1, 3, 2})}));
  EXPECT_FALSE(bat_ops::IsKey({MakeInt64Bat({1, 3, 1})}));
}

TEST(BatOps, AlignByKeyMatchesRows) {
  const std::vector<BatPtr> build = {MakeInt64Bat({30, 10, 20})};
  const std::vector<BatPtr> probe = {MakeInt64Bat({10, 20, 30})};
  const std::vector<int64_t> align =
      bat_ops::AlignByKey(build, probe).ValueOrDie();
  EXPECT_EQ(align, (std::vector<int64_t>{1, 2, 0}));
}

TEST(BatOps, AlignByKeyReportsMisses) {
  const std::vector<BatPtr> build = {MakeInt64Bat({1, 2})};
  const std::vector<BatPtr> probe = {MakeInt64Bat({1, 9})};
  EXPECT_STATUS(kKeyError, bat_ops::AlignByKey(build, probe));
}

TEST(BatOps, AlignByKeyRejectsDuplicateBuildKeys) {
  // Duplicate keys on either side mean the order schema is not a key; the
  // caller falls back to the sorting path, which reports the proper error.
  const std::vector<BatPtr> build = {MakeInt64Bat({1, 1, 2})};
  const std::vector<BatPtr> probe = {MakeInt64Bat({1, 2, 3})};
  EXPECT_STATUS(kKeyError, bat_ops::AlignByKey(build, probe));
}

TEST(BatOps, AlignByKeyRejectsDuplicateProbeKeys) {
  // Probe {2, 2, 1} has a duplicate; the consumed-slot check catches it
  // even though every probe row finds some build match.
  const std::vector<BatPtr> build = {MakeInt64Bat({1, 2, 3})};
  const std::vector<BatPtr> probe = {MakeInt64Bat({2, 2, 1})};
  EXPECT_STATUS(kKeyError, bat_ops::AlignByKey(build, probe));
}

TEST(BatOps, AlignByKeyCompositeKeys) {
  const std::vector<BatPtr> build = {MakeInt64Bat({1, 1, 2}),
                                     MakeStringBat({"b", "a", "a"})};
  const std::vector<BatPtr> probe = {MakeInt64Bat({1, 2, 1}),
                                     MakeStringBat({"a", "a", "b"})};
  const std::vector<int64_t> align =
      bat_ops::AlignByKey(build, probe).ValueOrDie();
  EXPECT_EQ(align, (std::vector<int64_t>{1, 2, 0}));
}

TEST(BatOps, AlignByKeyAgreesWithRankAlignment) {
  // Property: when both sides hold the same key set, hash alignment must
  // produce exactly the sorted-rank pairing that full sorting would.
  Rng rng(77);
  const int64_t n = 500;
  std::vector<int64_t> keys(static_cast<size_t>(n));
  std::iota(keys.begin(), keys.end(), 1000);
  std::shuffle(keys.begin(), keys.end(), rng.engine());
  std::vector<int64_t> probe_keys = keys;
  std::shuffle(probe_keys.begin(), probe_keys.end(), rng.engine());
  const std::vector<BatPtr> build = {MakeInt64Bat(std::move(keys))};
  const std::vector<BatPtr> probe = {MakeInt64Bat(std::move(probe_keys))};
  const std::vector<int64_t> align =
      bat_ops::AlignByKey(build, probe).ValueOrDie();
  // Rank pairing: sort both sides, match i-th smallest with i-th smallest.
  const std::vector<int64_t> pb = bat_ops::ArgSort(build);
  const std::vector<int64_t> pp = bat_ops::ArgSort(probe);
  std::vector<int64_t> expected(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    expected[static_cast<size_t>(pp[static_cast<size_t>(i)])] =
        pb[static_cast<size_t>(i)];
  }
  EXPECT_EQ(align, expected);
}

TEST(BatOps, IsKeyLargeCollisionHeavy) {
  // Flat-table probe with many equal-hash rows (all values identical except
  // one duplicate pair at the end).
  std::vector<int64_t> v(2000);
  std::iota(v.begin(), v.end(), 0);
  EXPECT_TRUE(bat_ops::IsKey({MakeInt64Bat(std::vector<int64_t>(v))}));
  v.push_back(1234);  // duplicate
  EXPECT_FALSE(bat_ops::IsKey({MakeInt64Bat(std::move(v))}));
}

TEST(BatOps, SelectNumericOperators) {
  const BatPtr b = MakeDoubleBat({1, 5, 3, 5, 2});
  EXPECT_EQ(bat_ops::SelectNumeric(*b, ">", 2.5),
            (std::vector<int64_t>{1, 2, 3}));
  EXPECT_EQ(bat_ops::SelectNumeric(*b, "==", 5.0),
            (std::vector<int64_t>{1, 3}));
  EXPECT_EQ(bat_ops::SelectNumeric(*b, "<=", 1.0),
            (std::vector<int64_t>{0}));
}

TEST(BatOps, ColumnArithmetic) {
  const BatPtr a = MakeDoubleBat({1, 2, 3});
  const BatPtr b = MakeDoubleBat({10, 20, 30});
  EXPECT_EQ(ToDoubleVector(*bat_ops::AddColumns(a, b)),
            (std::vector<double>{11, 22, 33}));
  EXPECT_EQ(ToDoubleVector(*bat_ops::SubColumns(b, a)),
            (std::vector<double>{9, 18, 27}));
  EXPECT_EQ(ToDoubleVector(*bat_ops::MulColumns(a, b)),
            (std::vector<double>{10, 40, 90}));
  std::vector<double> y = {1, 1, 1};
  bat_ops::Axpy(2.0, {1, 2, 3}, &y);
  EXPECT_EQ(y, (std::vector<double>{3, 5, 7}));
  EXPECT_EQ(bat_ops::Dot({1, 2}, {3, 4}), 11);
  EXPECT_EQ(bat_ops::Sum({1, 2, 3}), 6);
}

// --- schema ------------------------------------------------------------------------

TEST(Schema, MakeRejectsDuplicates) {
  EXPECT_STATUS(kInvalidArgument,
                Schema::Make({{"a", DataType::kInt64},
                              {"a", DataType::kDouble}}));
}

TEST(Schema, Lookup) {
  const Schema s = Schema::Make({{"A", DataType::kInt64},
                                 {"b", DataType::kDouble}})
                       .ValueOrDie();
  EXPECT_EQ(*s.IndexOf("b"), 1);
  EXPECT_STATUS(kKeyError, s.IndexOf("B"));
  EXPECT_EQ(*s.IndexOfIgnoreCase("B"), 1);
  EXPECT_EQ(*s.IndexOfIgnoreCase("a"), 0);
}

TEST(Schema, IgnoreCaseAmbiguityIsError) {
  const Schema s = Schema::Make({{"ab", DataType::kInt64},
                                 {"AB", DataType::kDouble}})
                       .ValueOrDie();
  EXPECT_STATUS(kKeyError, s.IndexOfIgnoreCase("Ab"));
}

TEST(Schema, ConcatSelectComplement) {
  const Schema a = Schema::Make({{"x", DataType::kInt64}}).ValueOrDie();
  const Schema b = Schema::Make({{"y", DataType::kDouble}}).ValueOrDie();
  const Schema ab = Schema::Concat(a, b).ValueOrDie();
  EXPECT_EQ(ab.Names(), (std::vector<std::string>{"x", "y"}));
  EXPECT_STATUS(kInvalidArgument, Schema::Concat(a, a));
  EXPECT_EQ(ab.Select({1}).Names(), (std::vector<std::string>{"y"}));
  EXPECT_EQ(ab.ComplementOf({1}), (std::vector<int>{0}));
}

// --- relation ----------------------------------------------------------------------

TEST(Relation, MakeValidates) {
  const Schema s = Schema::Make({{"a", DataType::kInt64}}).ValueOrDie();
  EXPECT_STATUS(kInvalidArgument, Relation::Make(s, {}));
  EXPECT_STATUS(kTypeError, Relation::Make(s, {MakeDoubleBat({1.0})}));
  const Schema s2 = Schema::Make({{"a", DataType::kInt64},
                                  {"b", DataType::kInt64}})
                        .ValueOrDie();
  EXPECT_STATUS(kInvalidArgument,
                Relation::Make(s2, {MakeInt64Bat({1}), MakeInt64Bat({1, 2})}));
}

TEST(Relation, BuilderTypeChecksAndWidensInts) {
  RelationBuilder b(Schema::Make({{"a", DataType::kDouble}}).ValueOrDie());
  ASSERT_OK(b.AppendRow({int64_t{4}}));  // int literal into double column
  ASSERT_OK(b.AppendRow({4.5}));
  EXPECT_FALSE(b.AppendRow({std::string("no")}).ok());
  const Relation r = b.Finish().ValueOrDie();
  EXPECT_EQ(ValueToDouble(r.Get(0, 0)), 4.0);
}

TEST(Relation, TakeAndSelectColumns) {
  const Relation r = MakeRelation(
      {{"a", DataType::kInt64}, {"b", DataType::kString}},
      {{int64_t{1}, std::string("x")}, {int64_t{2}, std::string("y")}});
  const Relation taken = r.TakeRows({1});
  EXPECT_EQ(taken.num_rows(), 1);
  EXPECT_EQ(ValueToString(taken.Get(0, 1)), "y");
  const Relation cols = r.SelectColumns({1});
  EXPECT_EQ(cols.schema().Names(), (std::vector<std::string>{"b"}));
}

TEST(Relation, EqualityHelpers) {
  const Relation a = MakeRelation({{"x", DataType::kDouble}}, {{1.0}, {2.0}});
  const Relation b = MakeRelation({{"x", DataType::kDouble}}, {{2.0}, {1.0}});
  EXPECT_TRUE(RelationsEqualUnordered(a, b));
  EXPECT_FALSE(RelationsEqualOrdered(a, b));
  const Relation c = MakeRelation({{"x", DataType::kDouble}}, {{2.0}, {3.0}});
  EXPECT_FALSE(RelationsEqualUnordered(a, c));
}

TEST(Relation, ToStringRendersAlignedTable) {
  const Relation r = MakeRelation(
      {{"name", DataType::kString}, {"v", DataType::kDouble}},
      {{std::string("a"), 1.0}});
  const std::string s = r.ToString();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("a"), std::string::npos);
}

}  // namespace
}  // namespace rma
