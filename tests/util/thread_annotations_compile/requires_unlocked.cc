// VIOLATION: calls an RMA_REQUIRES function without holding the required
// mutex. Under clang with -Wthread-safety -Werror this must fail to
// compile; the *Locked-helper convention across src/ relies on exactly this
// check to keep lock contracts enforced at call sites.
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

rma::Mutex g_mu;
int g_value RMA_GUARDED_BY(g_mu) = 0;

void BumpLocked() RMA_REQUIRES(g_mu) { ++g_value; }

}  // namespace

int main() {
  BumpLocked();  // g_mu not held
  return 0;
}
