// Correct locking discipline: must compile under every supported compiler,
// including clang with -Wthread-safety -Werror. If this snippet stops
// building, the wrapper types in util/mutex.h broke, not the analysis.
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Counter {
 public:
  void Increment() {
    rma::MutexLock lock(mu_);
    ++value_;
  }

  int Value() const {
    rma::MutexLock lock(mu_);
    return value_;
  }

 private:
  mutable rma::Mutex mu_;
  int value_ RMA_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Increment();
  return c.Value() == 1 ? 0 : 1;
}
