// VIOLATION: calls an RMA_EXCLUDES (self-locking) function while already
// holding the excluded mutex — a guaranteed self-deadlock on std::mutex.
// Under clang with -Wthread-safety -Werror this must fail to compile. The
// snippet is only ever compiled, never run.
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

rma::Mutex g_mu;

void SelfLocking() RMA_EXCLUDES(g_mu) { rma::MutexLock lock(g_mu); }

void Caller() {
  rma::MutexLock lock(g_mu);
  SelfLocking();  // g_mu already held
}

}  // namespace

int main() {
  Caller();
  return 0;
}
