// VIOLATION: writes an RMA_GUARDED_BY member without holding its mutex.
// Under clang with -Wthread-safety -Werror this must fail to compile; where
// the annotations expand to nothing (GCC, MSVC) it compiles — and would be
// a genuine data race if two threads ever called Increment.
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Counter {
 public:
  void Increment() { ++value_; }  // mu_ not held

 private:
  rma::Mutex mu_;
  int value_ RMA_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Increment();
  return 0;
}
