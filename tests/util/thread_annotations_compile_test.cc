// Asserts the configure-time negative-compilation results for
// util/thread_annotations.h (cmake/ThreadAnnotationChecks.cmake compiles
// the snippets under tests/util/thread_annotations_compile/ and bakes the
// outcomes into the generated header).
//
// Two regressions this guards against:
//  - clang builds where the analysis silently stopped firing (a macro
//    definition typo, a dropped -Wthread-safety): the VIOLATION snippets
//    would start compiling;
//  - non-clang builds where the no-op fallback broke (a macro expanding to
//    something GCC rejects): every snippet would stop compiling.
#include <gtest/gtest.h>

#include "thread_annotations_check_results.h"

namespace {

TEST(ThreadAnnotationsCompile, CorrectUsageCompilesEverywhere) {
  EXPECT_EQ(RMA_CHECK_OK_LOCKED_COMPILES, 1)
      << "util/mutex.h wrappers failed to compile in a well-locked snippet";
}

TEST(ThreadAnnotationsCompile, GuardedByViolationRejectedUnderClang) {
#if RMA_CHECK_COMPILER_IS_CLANG
  EXPECT_EQ(RMA_CHECK_GUARDED_NO_LOCK_COMPILES, 0)
      << "clang accepted an unlocked write to an RMA_GUARDED_BY member — "
         "is -Wthread-safety still wired up?";
#else
  EXPECT_EQ(RMA_CHECK_GUARDED_NO_LOCK_COMPILES, 1)
      << "no-op annotation macros must not reject code on this compiler";
#endif
}

TEST(ThreadAnnotationsCompile, RequiresViolationRejectedUnderClang) {
#if RMA_CHECK_COMPILER_IS_CLANG
  EXPECT_EQ(RMA_CHECK_REQUIRES_UNLOCKED_COMPILES, 0)
      << "clang accepted a call to an RMA_REQUIRES function without the "
         "lock held";
#else
  EXPECT_EQ(RMA_CHECK_REQUIRES_UNLOCKED_COMPILES, 1)
      << "no-op annotation macros must not reject code on this compiler";
#endif
}

TEST(ThreadAnnotationsCompile, ExcludesViolationRejectedUnderClang) {
#if RMA_CHECK_COMPILER_IS_CLANG
  EXPECT_EQ(RMA_CHECK_EXCLUDES_VIOLATION_COMPILES, 0)
      << "clang accepted re-acquiring a mutex through an RMA_EXCLUDES "
         "function (self-deadlock)";
#else
  EXPECT_EQ(RMA_CHECK_EXCLUDES_VIOLATION_COMPILES, 1)
      << "no-op annotation macros must not reject code on this compiler";
#endif
}

}  // namespace
