// Status/Result error model and the small utility layer.
#include <gtest/gtest.h>

#include "test_util.h"
#include "util/random.h"
#include "util/result.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace rma {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
  EXPECT_TRUE(st.message().empty());
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  const Status st = Status::Invalid("bad order schema");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalid());
  EXPECT_EQ(st.message(), "bad order schema");
  EXPECT_EQ(st.ToString(), "Invalid: bad order schema");
  EXPECT_TRUE(Status::KeyError("").IsKeyError());
  EXPECT_TRUE(Status::TypeError("").IsTypeError());
  EXPECT_TRUE(Status::NumericError("").IsNumericError());
  EXPECT_TRUE(Status::ResourceExhausted("").IsResourceExhausted());
  EXPECT_TRUE(Status::ParseError("").IsParseError());
  EXPECT_TRUE(Status::NotImplemented("").IsNotImplemented());
  EXPECT_TRUE(Status::IoError("").IsIoError());
  EXPECT_TRUE(Status::OutOfRange("").IsOutOfRange());
}

TEST(StatusTest, CopyIsCheap) {
  const Status a = Status::Invalid("x");
  const Status b = a;  // shared state
  EXPECT_EQ(b.message(), "x");
}

Result<int> Half(int v) {
  if (v % 2 != 0) return Status::Invalid("odd");
  return v / 2;
}

Status UseHalf(int v, int* out) {
  RMA_ASSIGN_OR_RETURN(*out, Half(v));
  return Status::OK();
}

TEST(ResultTest, ValueAndErrorPaths) {
  Result<int> ok = Half(4);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  Result<int> err = Half(3);
  EXPECT_FALSE(err.ok());
  EXPECT_TRUE(err.status().IsInvalid());
}

TEST(ResultTest, MacroPropagation) {
  int out = 0;
  EXPECT_TRUE(UseHalf(8, &out).ok());
  EXPECT_EQ(out, 4);
  EXPECT_TRUE(UseHalf(7, &out).IsInvalid());
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  std::unique_ptr<int> v = std::move(r).ValueUnsafe();
  EXPECT_EQ(*v, 7);
}

TEST(StringUtil, JoinSplitTrim) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Trim("  x y\t\n"), "x y");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtil, CaseHelpers) {
  EXPECT_EQ(ToLower("SeLeCt"), "select");
  EXPECT_EQ(ToUpper("qqr"), "QQR");
  EXPECT_TRUE(EqualsIgnoreCase("By", "bY"));
  EXPECT_FALSE(EqualsIgnoreCase("by", "byte"));
}

TEST(StringUtil, FormatDouble) {
  EXPECT_EQ(FormatDouble(7.0), "7");
  EXPECT_EQ(FormatDouble(-3.0), "-3");
  EXPECT_EQ(FormatDouble(7.25), "7.25");
  EXPECT_EQ(FormatDouble(0.0), "0");
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, RangesRespected) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(2.0, 3.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 3.0);
    const int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
  }
}

TEST(TimerTest, MeasuresElapsedTime) {
  Timer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  const double s = t.Seconds();
  EXPECT_GT(s, 0.0);
  EXPECT_GE(t.Millis(), s * 1e3);  // monotone
  t.Restart();
  EXPECT_LT(t.Seconds(), s + 1.0);
}

TEST(ValueTest, TypeAndConversions) {
  EXPECT_EQ(ValueType(Value(int64_t{1})), DataType::kInt64);
  EXPECT_EQ(ValueType(Value(1.5)), DataType::kDouble);
  EXPECT_EQ(ValueType(Value(std::string("x"))), DataType::kString);
  EXPECT_EQ(ValueToDouble(Value(int64_t{3})), 3.0);
  EXPECT_EQ(ValueToString(Value(2.5)), "2.5");
  EXPECT_TRUE(ValueLess(Value(int64_t{1}), Value(2.0)));   // cross numeric
  EXPECT_TRUE(ValueEquals(Value(int64_t{2}), Value(2.0)));
  EXPECT_TRUE(ValueLess(Value(std::string("a")), Value(std::string("b"))));
  EXPECT_FALSE(ValueEquals(Value(std::string("a")), Value(1.0)));
}

}  // namespace
}  // namespace rma
