// Interactive SQL shell over the RMA database.
//
//   ./build/examples/sql_shell
//
// Starts with the paper's example tables (u, f, rating, weather) loaded.
// Try:
//   SELECT * FROM INV(rating BY User);
//   SELECT * FROM TRA(weather BY T);
//   CREATE TABLE q AS SELECT * FROM QQR(weather BY T);
//   SELECT State, COUNT(*) AS n FROM u GROUP BY State;
//   EXPLAIN SELECT * FROM MMU(TRA(rating BY User) BY C, rating BY User);
//   \tables   \quit
//
// EXPLAIN prints the physical plan: chosen kernels (bat / dense /
// dense-syrk), execution stages, cost estimates, prepared-argument cache
// reuse, and the cross-algebra rewrites that fired.
#include <cstdio>
#include <iostream>
#include <string>

#include "sql/database.h"

using namespace rma;

namespace {

void Load(sql::Database& db) {
  {
    RelationBuilder b(Schema::Make({{"User", DataType::kString},
                                    {"State", DataType::kString},
                                    {"YoB", DataType::kInt64}})
                          .ValueOrDie());
    b.AppendRow({std::string("Ann"), std::string("CA"), int64_t{1980}}).Abort();
    b.AppendRow({std::string("Tom"), std::string("FL"), int64_t{1965}}).Abort();
    b.AppendRow({std::string("Jan"), std::string("CA"), int64_t{1970}}).Abort();
    db.Register("u", b.Finish().ValueOrDie()).Abort();
  }
  {
    RelationBuilder b(Schema::Make({{"Title", DataType::kString},
                                    {"RelY", DataType::kInt64},
                                    {"Director", DataType::kString}})
                          .ValueOrDie());
    b.AppendRow({std::string("Heat"), int64_t{1995}, std::string("Lee")})
        .Abort();
    b.AppendRow({std::string("Balto"), int64_t{1995}, std::string("Lee")})
        .Abort();
    b.AppendRow({std::string("Net"), int64_t{1995}, std::string("Smith")})
        .Abort();
    db.Register("f", b.Finish().ValueOrDie()).Abort();
  }
  {
    RelationBuilder b(Schema::Make({{"User", DataType::kString},
                                    {"Balto", DataType::kDouble},
                                    {"Heat", DataType::kDouble},
                                    {"Net", DataType::kDouble}})
                          .ValueOrDie());
    b.AppendRow({std::string("Ann"), 2.0, 1.5, 0.5}).Abort();
    b.AppendRow({std::string("Tom"), 0.0, 0.0, 1.5}).Abort();
    b.AppendRow({std::string("Jan"), 1.0, 4.0, 1.0}).Abort();
    db.Register("rating", b.Finish().ValueOrDie()).Abort();
  }
  {
    RelationBuilder b(Schema::Make({{"T", DataType::kString},
                                    {"H", DataType::kDouble},
                                    {"W", DataType::kDouble}})
                          .ValueOrDie());
    b.AppendRow({std::string("5am"), 1.0, 3.0}).Abort();
    b.AppendRow({std::string("8am"), 8.0, 5.0}).Abort();
    b.AppendRow({std::string("7am"), 6.0, 7.0}).Abort();
    b.AppendRow({std::string("6am"), 1.0, 4.0}).Abort();
    db.Register("weather", b.Finish().ValueOrDie()).Abort();
  }
}

}  // namespace

int main() {
  sql::Database db;
  Load(db);
  std::printf("RMA SQL shell. Tables: u, f, rating, weather. "
              "\\tables lists, \\quit exits; EXPLAIN SELECT ... prints "
              "the physical plan.\n");
  std::string line;
  std::string stmt;
  while (true) {
    std::printf(stmt.empty() ? "rma> " : "...> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line == "\\quit" || line == "\\q") break;
    if (line == "\\tables") {
      for (const auto& t : db.TableNames()) std::printf("  %s\n", t.c_str());
      continue;
    }
    stmt += line;
    stmt += ' ';
    // Execute once the statement is terminated (or the line is non-empty
    // and contains no semicolon convention: run single-line statements).
    if (line.find(';') == std::string::npos && !line.empty()) {
      // allow multi-line input until a ';'
      continue;
    }
    if (stmt.find_first_not_of(" ;") == std::string::npos) {
      stmt.clear();
      continue;
    }
    auto result = db.Execute(stmt);
    if (result.ok()) {
      std::printf("%s", result->ToString(40).c_str());
    } else {
      std::printf("error: %s\n", result.status().ToString().c_str());
    }
    stmt.clear();
  }
  return 0;
}
