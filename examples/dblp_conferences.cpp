// DBLP conferences: covariance between venues based on per-author
// publication counts, joined with the ranking table (the Fig. 17 workload).
//
// Shows why origins matter: the covariance relation keeps conference names
// in its C attribute, so it joins directly with the ranking — no manual
// bookkeeping as in R/AIDA.
#include <cstdio>

#include "core/rma.h"
#include "rel/operators.h"
#include "workload/dblp.h"

using namespace rma;
using rel::Expr;

int main() {
  const workload::DblpData data = workload::GenerateDblp(5000, 24, 9);
  std::printf("publications: %lld authors x %d conferences\n",
              static_cast<long long>(data.publications.num_rows()),
              data.publications.num_columns() - 1);

  std::vector<std::string> confs;
  for (int c = 1; c < data.publications.num_columns(); ++c) {
    confs.push_back(data.publications.schema().attribute(c).name);
  }

  // Column means, broadcast to every author, then centered counts via sub.
  std::vector<rel::AggSpec> aggs;
  for (const auto& c : confs) aggs.push_back({"AVG", c, c});
  Relation means = rel::Aggregate(data.publications, {}, aggs).ValueOrDie();
  Relation authors =
      rel::ProjectNames(data.publications, {"Author"}).ValueOrDie();
  Relation v_authors = rel::Rename(authors, "Author", "V").ValueOrDie();
  Relation means_x = rel::CrossJoin(v_authors, means).ValueOrDie();
  Relation centered =
      Sub(data.publications, {"Author"}, means_x, {"V"}).ValueOrDie();
  std::vector<std::string> keep = {"Author"};
  for (const auto& c : confs) keep.push_back(c);
  centered = rel::ProjectNames(centered, keep).ValueOrDie();

  // Covariance = CPD(centered, centered) / (n - 1).
  Relation covn =
      Cpd(centered, {"Author"}, centered, {"Author"}).ValueOrDie();
  const double n = static_cast<double>(data.publications.num_rows());
  std::vector<rel::ProjectItem> scale = {{Expr::Column("C"), "C"}};
  for (const auto& c : confs) {
    scale.push_back(
        {Expr::Binary("/", Expr::Column(c), Expr::LiteralDouble(n - 1)), c});
  }
  Relation cov = rel::Project(covn, scale).ValueOrDie();

  // The C attribute holds conference names — join with the ranking.
  Relation joined = rel::HashJoin(cov, data.ranking, {"C"}, {"Conf"})
                        .ValueOrDie();
  Relation top = rel::Select(joined, Expr::Binary("=", Expr::Column("Rating"),
                                                  Expr::LiteralString("A++")))
                     .ValueOrDie();
  Relation out =
      rel::ProjectNames(top, [&] {
        std::vector<std::string> cols = {"C", "Rating"};
        for (size_t c = 0; c < 4 && c < confs.size(); ++c) {
          cols.push_back(confs[c]);
        }
        return cols;
      }())
          .ValueOrDie();
  std::printf("covariance rows for A++ conferences (first 4 venues shown):\n%s\n",
              out.ToString().c_str());
  return 0;
}
