// Quickstart: the paper's introduction example.
//
// A rating relation (User, Balto, Heat, Net) is inverted as a matrix while
// the user names travel along as contextual information:
//
//   SELECT * FROM INV(rating BY User);
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/rma.h"
#include "sql/database.h"

using namespace rma;

int main() {
  // Build the rating relation of Fig. 5.
  RelationBuilder builder(Schema::Make({{"User", DataType::kString},
                                        {"Balto", DataType::kDouble},
                                        {"Heat", DataType::kDouble},
                                        {"Net", DataType::kDouble}})
                              .ValueOrDie());
  builder.AppendRow({std::string("Ann"), 2.0, 1.5, 0.5}).Abort();
  builder.AppendRow({std::string("Tom"), 0.0, 0.0, 1.5}).Abort();
  builder.AppendRow({std::string("Jan"), 1.0, 4.0, 1.0}).Abort();
  const Relation rating = builder.Finish("rating").ValueOrDie();
  std::printf("rating:\n%s\n", rating.ToString().c_str());

  // 1) The algebra API: order schema {User} splits the relation into the
  //    order part (user names) and the numeric application part.
  const Relation inv = Inv(rating, {"User"}).ValueOrDie();
  std::printf("inv_User(rating):\n%s\n", inv.ToString().c_str());

  // 2) The same through SQL (the paper's syntax extension).
  sql::Database db;
  db.Register("rating", rating).Abort();
  const Relation via_sql =
      db.Query("SELECT * FROM INV(rating BY User)").ValueOrDie();
  std::printf("SELECT * FROM INV(rating BY User):\n%s\n",
              via_sql.ToString().c_str());

  // 3) Closure: results are ordinary relations, so operations nest.
  const Relation check =
      db.Query("SELECT * FROM MMU(INV(rating BY User) BY User, "
               "rating BY User)")
          .ValueOrDie();
  std::printf("INV(rating) x rating (identity):\n%s\n",
              check.ToString().c_str());
  return 0;
}
