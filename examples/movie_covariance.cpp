// The full Section 5 walk-through: how similar are Lee's films to other
// films, by the covariance of their ratings from California users?
//
// Demonstrates a mixed workload: joins, selections and aggregations
// interleaved with relational matrix operations (sub, tra, mmu), with all
// contextual information maintained throughout — the final join works
// because the covariance relation still carries film names.
#include <cstdio>

#include "sql/database.h"

using namespace rma;

namespace {

Relation Users() {
  RelationBuilder b(Schema::Make({{"User", DataType::kString},
                                  {"State", DataType::kString},
                                  {"YoB", DataType::kInt64}})
                        .ValueOrDie());
  b.AppendRow({std::string("Ann"), std::string("CA"), int64_t{1980}}).Abort();
  b.AppendRow({std::string("Tom"), std::string("FL"), int64_t{1965}}).Abort();
  b.AppendRow({std::string("Jan"), std::string("CA"), int64_t{1970}}).Abort();
  return b.Finish("u").ValueOrDie();
}

Relation Films() {
  RelationBuilder b(Schema::Make({{"Title", DataType::kString},
                                  {"RelY", DataType::kInt64},
                                  {"Director", DataType::kString}})
                        .ValueOrDie());
  b.AppendRow({std::string("Heat"), int64_t{1995}, std::string("Lee")}).Abort();
  b.AppendRow({std::string("Balto"), int64_t{1995}, std::string("Lee")}).Abort();
  b.AppendRow({std::string("Net"), int64_t{1995}, std::string("Smith")}).Abort();
  return b.Finish("f").ValueOrDie();
}

Relation Ratings() {
  RelationBuilder b(Schema::Make({{"User", DataType::kString},
                                  {"Balto", DataType::kDouble},
                                  {"Heat", DataType::kDouble},
                                  {"Net", DataType::kDouble}})
                        .ValueOrDie());
  b.AppendRow({std::string("Ann"), 2.0, 1.5, 0.5}).Abort();
  b.AppendRow({std::string("Tom"), 0.0, 0.0, 1.5}).Abort();
  b.AppendRow({std::string("Jan"), 1.0, 4.0, 1.0}).Abort();
  return b.Finish("r").ValueOrDie();
}

Relation Step(sql::Database& db, const char* name, const std::string& sql) {
  const Relation r =
      db.Execute("CREATE TABLE " + std::string(name) + " AS " + sql)
          .ValueOrDie();
  std::printf("%s = %s\n%s\n", name, sql.c_str(), r.ToString().c_str());
  return r;
}

}  // namespace

int main() {
  sql::Database db;
  db.Register("u", Users()).Abort();
  db.Register("f", Films()).Abort();
  db.Register("r", Ratings()).Abort();

  // w1: ratings of California users.
  Step(db, "w1",
       "SELECT u.User AS U, Balto AS B, Heat AS H, Net AS N "
       "FROM u JOIN r ON u.User = r.User WHERE State = 'CA'");
  // w3: centered ratings (w2, the averages, folds into the cross join).
  Step(db, "w3",
       "SELECT w1.U, w1.B - t.B AS B, w1.H - t.H AS H, w1.N - t.N AS N "
       "FROM w1 CROSS JOIN "
       "(SELECT AVG(B) AS B, AVG(H) AS H, AVG(N) AS N FROM w1) AS t");
  // w4: transposed — the film names become the C attribute.
  Step(db, "w4", "SELECT * FROM TRA(w3 BY U)");
  // w7: the unbiased covariance matrix, via mmu and COUNT(*).
  Step(db, "w7",
       "SELECT C, B/(M-1) AS B, H/(M-1) AS H, N/(M-1) AS N "
       "FROM MMU(w4 BY C, w3 BY U) AS w5 "
       "CROSS JOIN (SELECT COUNT(*) AS M FROM w1) AS t");
  // w8: join back with the film table — possible only because the
  // covariance relation kept the film names as origins.
  const Relation w8 =
      db.Query("SELECT Title, B, H, N FROM w7 "
               "JOIN f ON w7.C = f.Title WHERE Director = 'Lee'")
          .ValueOrDie();
  std::printf("w8 (Lee's films and their rating covariances):\n%s\n",
              w8.ToString().c_str());
  return 0;
}
