// BIXI trips: ordinary least squares between trip distance and duration
// (the Fig. 15 workload as an application).
//
// Pipeline: aggregate popular station pairs, join station coordinates,
// compute distances, then run OLS entirely inside the algebra:
//   beta = MMU(INV(CPD(A, A)), CPD(A, V)).
#include <cstdio>

#include "core/rma.h"
#include "rel/operators.h"
#include "workload/bixi.h"

using namespace rma;
using rel::Expr;

int main() {
  const workload::BixiData data = workload::GenerateBixi(200000, 400, 7);
  std::printf("generated %lld trips over %lld stations\n",
              static_cast<long long>(data.trips.num_rows()),
              static_cast<long long>(data.stations.num_rows()));

  // Popular station pairs (>= 50 trips).
  Relation agg = rel::Aggregate(data.trips, {"start_station", "end_station"},
                                {{"COUNT", "", "n"}})
                     .ValueOrDie();
  Relation pop = rel::Select(agg, Expr::Binary(">=", Expr::Column("n"),
                                               Expr::LiteralInt(50)))
                     .ValueOrDie();
  std::printf("%lld station pairs used at least 50 times\n",
              static_cast<long long>(pop.num_rows()));

  // Station coordinates for both endpoints, then the planar distance.
  Relation j1 = rel::HashJoin(pop, data.stations, {"start_station"}, {"code"})
                    .ValueOrDie();
  j1 = rel::Project(j1, {{Expr::Column("start_station"), "start_station"},
                         {Expr::Column("end_station"), "end_station"},
                         {Expr::Column("lat"), "lat1"},
                         {Expr::Column("lon"), "lon1"}})
           .ValueOrDie();
  Relation j2 = rel::HashJoin(j1, data.stations, {"end_station"}, {"code"})
                    .ValueOrDie();
  auto dy = Expr::Binary("*", Expr::Binary("-", Expr::Column("lat"),
                                           Expr::Column("lat1")),
                         Expr::LiteralDouble(111.0));
  auto dx = Expr::Binary("*", Expr::Binary("-", Expr::Column("lon"),
                                           Expr::Column("lon1")),
                         Expr::LiteralDouble(78.0));
  Relation pairs =
      rel::Project(j2, {{Expr::Column("start_station"), "start_station"},
                        {Expr::Column("end_station"), "end_station"},
                        {Expr::Call("SQRT",
                                    {Expr::Binary(
                                        "+", Expr::Binary("*", dy, dy),
                                        Expr::Binary("*", dx, dx))}),
                         "dist"}})
          .ValueOrDie();

  // Per-trip design matrix A = [1, dist] and target V = duration.
  Relation trips_d =
      rel::HashJoin(data.trips, pairs, {"start_station", "end_station"},
                    {"start_station", "end_station"})
          .ValueOrDie();
  Relation a = rel::Project(trips_d, {{Expr::Column("id"), "id"},
                                      {Expr::LiteralDouble(1.0), "c0"},
                                      {Expr::Column("dist"), "c1"}})
                   .ValueOrDie();
  Relation v = rel::Project(trips_d, {{Expr::Column("id"), "id"},
                                      {Expr::Column("duration"), "y"}})
                   .ValueOrDie();

  // OLS through relational matrix operations.
  RmaOptions opts;
  opts.sort = SortPolicy::kOptimized;
  Relation ata = Cpd(a, {"id"}, a, {"id"}, opts).ValueOrDie();
  Relation atv = Cpd(a, {"id"}, v, {"id"}, opts).ValueOrDie();
  Relation inv = Inv(ata, {"C"}, opts).ValueOrDie();
  Relation beta = Mmu(inv, {"C"}, atv, {"C"}, opts).ValueOrDie();
  std::printf("\nbeta = MMU(INV(CPD(A,A)), CPD(A,V)):\n%s\n",
              beta.ToString().c_str());
  std::printf("The generator draws durations around 300s + 240 s/km, so the\n"
              "c1 (distance) coefficient should be close to 240 and the\n"
              "c0 (intercept) close to 300.\n");
  return 0;
}
