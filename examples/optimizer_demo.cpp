// Cross-algebra optimizer demo (core/algebra.h).
//
// The paper's Sec. 5 covariance workload multiplies a relation with its own
// transpose: w4 = tra_U(w3); w5 = mmu_{C;U}(w4, w3). The rewriter recognizes
// the pattern and collapses it to cpd(w3, w3), which runs on the symmetric
// SYRK kernel and never materializes the (wide) transposed relation. This
// demo builds the pattern programmatically, shows which rules fire, checks
// both plans return the same relation, and compares their runtimes.
//
// Build & run:  ./build/examples/optimizer_demo
#include <cstdio>

#include "core/algebra.h"
#include "core/rma.h"
#include "sql/database.h"
#include "util/timer.h"
#include "workload/synthetic.h"

using namespace rma;

int main() {
  // A numeric relation: key "id" plus 40 application columns.
  const Relation x = workload::UniformRelation(20000, 40, 7, 0.0, 10.0,
                                               /*sorted=*/true, "x");
  std::printf("input: %lld rows x %d columns\n\n",
              static_cast<long long>(x.num_rows()), x.num_columns());

  // The covariance pattern as an expression tree.
  auto leaf = RmaExpr::Leaf(x);
  auto pattern = RmaExpr::Binary(
      MatrixOp::kMmu, RmaExpr::Unary(MatrixOp::kTra, leaf, {"id"}), {"C"},
      leaf, {"id"});

  // What does the rewriter do with it?
  RewriteReport report;
  RmaExprPtr rewritten = RewriteExpression(pattern, RewriteRules{}, &report);
  std::printf("rewrites fired: %d\n", report.fired());
  for (const auto& rule : report.applied) {
    std::printf("  - %s\n", rule.c_str());
  }
  std::printf("rewritten root op: %s\n\n",
              GetOpInfo(rewritten->op).name);

  // Evaluate both plans and compare.
  RmaOptions no_rewrites;
  no_rewrites.rewrites.enabled = false;
  Timer t;
  const Relation plain = EvaluateExpression(pattern, no_rewrites).ValueOrDie();
  const double t_plain = t.Seconds();
  t.Restart();
  const Relation optimized = EvaluateOptimized(pattern).ValueOrDie();
  const double t_opt = t.Seconds();
  std::printf("mmu(tra(x), x) unrewritten: %.3f s\n", t_plain);
  std::printf("rewritten to cpd(x, x):    %.3f s  (%.1fx)\n", t_opt,
              t_plain / t_opt);
  std::printf("results identical: %s\n\n",
              RelationsEqualUnordered(plain, optimized) ? "yes" : "NO");

  // The same happens transparently inside SQL FROM clauses.
  sql::Database db;
  db.Register("x", x).Abort();
  t.Restart();
  const Relation via_sql =
      db.Query("SELECT * FROM MMU(TRA(x BY id) BY C, x BY id)").ValueOrDie();
  std::printf("SQL MMU(TRA(x BY id) BY C, x BY id): %.3f s, %lld rows\n",
              t.Seconds(), static_cast<long long>(via_sql.num_rows()));

  // Fig. 10's double transpose collapses to a relabeling.
  auto round_trip = RmaExpr::Unary(
      MatrixOp::kTra, RmaExpr::Unary(MatrixOp::kTra, leaf, {"id"}), {"C"});
  report = {};
  RewriteExpression(round_trip, RewriteRules{}, &report);
  std::printf("\ntra(tra(x BY id) BY C) fires: %s\n",
              report.applied.empty() ? "-" : report.applied[0].c_str());
  return 0;
}
