// Figure 17: Conferences — covariance over DBLP-style publication counts,
// joined with the conference ranking to keep A++ venues.
//
// Paper: publications 337Kx266 .. 877Kx882; covariance dominates (>=90%);
// MADlib 77..1814s (omitted from the paper's figure); RMA+MKL 24-70x faster
// than RMA+BAT because cpd on BATs needs single-element result writes.
#include "bench_common.h"
#include "workloads.h"

int main() {
  using namespace rma::bench;
  using namespace rma;
  struct Size {
    int64_t authors;
    int confs;
  };
  // Column-heavy like the paper's pivoted DBLP tables (266..882 conference
  // columns): the O(n·k²) covariance then dominates every system (>= 90%).
  const std::vector<Size> sizes = {{Scaled(10000), 100},
                                   {Scaled(15000), 200},
                                   {Scaled(20000), 300},
                                   {Scaled(25000), 400}};
  baselines::rlike::Options r_opts;

  PaperTable a("Figure 17a: Conference covariance, system comparison "
               "(seconds; paper: 337Kx266 .. 877Kx882)",
               {"authors x confs", "RMA+", "AIDA", "R", "MADlib"});
  PaperTable b("Figure 17b: Conference covariance, RMA+BAT vs RMA+MKL",
               {"authors x confs", "RMA+BAT", "RMA+MKL"});
  for (const auto& size : sizes) {
    const workload::DblpData data =
        workload::GenerateDblp(size.authors, size.confs, 91);
    const std::string label =
        std::to_string(size.authors) + "x" + std::to_string(size.confs);
    const RunResult rma = ConferencesRmaPlus(data, KernelPolicy::kAuto);
    const RunResult aida = ConferencesAida(data);
    const RunResult r = ConferencesR(data, r_opts);
    const RunResult madlib = ConferencesMadlib(data);
    a.AddRow({label, rma.status.ok() ? Secs(rma.total()) : "fail",
              aida.status.ok() ? Secs(aida.total()) : "fail",
              r.status.ok() ? Secs(r.total()) : "fail",
              madlib.status.ok() ? Secs(madlib.total()) : "fail"});
    const RunResult bat = ConferencesRmaPlus(data, KernelPolicy::kBat);
    const RunResult mkl = ConferencesRmaPlus(data, KernelPolicy::kContiguous);
    b.AddRow({label, Secs(bat.total()), Secs(mkl.total())});
  }
  a.AddNote("expected shape (paper Fig. 17a): covariance dominates all "
            "systems; RMA+ (dsyrk-style crossproduct) leads; MADlib is far "
            "behind (single core)");
  a.Print();
  b.AddNote("expected shape (paper Fig. 17b): RMA+MKL 24-70x faster — cpd "
            "over BATs writes single elements");
  b.Print();
  return 0;
}
