// Out-of-core storage tier: cold load (CSV-shaped relation -> paged files),
// warm pool scan, and an eviction-pressure scan with the pool sized to half
// the dataset, so every pass must re-fault about half its extents. The
// eviction-pressure row is the Fig. 13-adjacent case the tier exists for:
// column workloads larger than memory that still run the same staged
// kernels. Baseline at bench/baselines/bench_storage.json (scale 0.05).
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "sql/database.h"
#include "storage/buffer_pool.h"
#include "storage/paged_store.h"
#include "workload/synthetic.h"

namespace rma::bench {
namespace {

std::string TempDir() {
  char tmpl[] = "/tmp/rma_bench_storage_XXXXXX";
  const char* dir = mkdtemp(tmpl);
  if (dir == nullptr) {
    std::perror("mkdtemp");
    std::exit(1);
  }
  return dir;
}

void RemoveDirTree(const std::string& dir) {
  // Stores only ever hold flat c*.col + manifest files.
  const std::string cmd = "rm -rf '" + dir + "'";
  if (std::system(cmd.c_str()) != 0) {
    std::fprintf(stderr, "warning: could not remove %s\n", dir.c_str());
  }
}

/// Full sequential scan of every numeric column through the pin bracket —
/// the access pattern of a staged matrix op's gather stage.
double ScanOnce(const Relation& r) {
  double sum = 0;
  for (int c = 1; c < r.num_columns(); ++c) {
    const BatPtr& col = r.column(c);
    col->PinData().Abort();
    const double* d = col->ContiguousDoubleData();
    const int64_t n = col->size();
    for (int64_t i = 0; i < n; ++i) sum += d[i];
    col->UnpinData();
  }
  return sum;
}

void Run() {
  const int64_t rows = Scaled(400000);
  const int cols = 8;
  const Relation r =
      workload::UniformRelation(rows, cols, 42, 0.0, 1.0, false, "m");
  const int64_t data_bytes = r.ByteSize();
  const std::string shape =
      std::to_string(rows) + "x" + std::to_string(cols);

  PaperTable table("Storage tier: load and scan (" + shape + ")",
                   {"phase", "time", "pool", "evictions"});

  // Cold load: malloc relation -> page files (write-through + fsync).
  {
    const std::string dir = TempDir();
    double secs = 0;
    {
      auto store = PagedStore::Open(dir).ValueOrDie();
      secs = TimeIt([&] { store->SaveTable("m", r).ValueOrDie(); });
    }
    RemoveDirTree(dir);
    table.AddRow({"cold load", Secs(secs), "ample", "0"});
    BenchJson::Record("storage/cold_load", "save", shape, secs, data_bytes,
                      "");
  }

  // Warm scan: pool holds the whole table; repeated scans are pure hits.
  {
    const std::string dir = TempDir();
    PagedStoreOptions opts;
    opts.pool_bytes = 2 * data_bytes;
    auto store = PagedStore::Open(dir, opts).ValueOrDie();
    const Relation paged = store->SaveTable("m", r).ValueOrDie();
    ScanOnce(paged);  // fault everything in
    const double secs = TimeBest(BenchReps(3), [&] { ScanOnce(paged); });
    const BufferPoolStats stats = store->pool()->stats();
    table.AddRow({"warm scan", Secs(secs), "2x data",
                  std::to_string(stats.evictions)});
    BenchJson::Record("storage/warm_scan", "scan", shape, secs, data_bytes,
                      "");
    RemoveDirTree(dir);
  }

  // Eviction pressure: pool is half the dataset, every scan re-faults.
  {
    const std::string dir = TempDir();
    PagedStoreOptions opts;
    opts.pool_bytes = data_bytes / 2;
    auto store = PagedStore::Open(dir, opts).ValueOrDie();
    const Relation paged = store->SaveTable("m", r).ValueOrDie();
    ScanOnce(paged);
    const double secs = TimeBest(BenchReps(3), [&] { ScanOnce(paged); });
    const BufferPoolStats stats = store->pool()->stats();
    if (stats.evictions == 0) {
      std::fprintf(stderr,
                   "warning: eviction-pressure scan never evicted\n");
    }
    table.AddRow({"eviction-pressure scan", Secs(secs), "0.5x data",
                  std::to_string(stats.evictions)});
    BenchJson::Record("storage/eviction_scan", "scan", shape, secs,
                      data_bytes, "");
    RemoveDirTree(dir);
  }

  table.AddNote("warm scans are memory-speed (pool hits); the "
                "eviction-pressure scan pays page reads + checksums for "
                "about half its extents per pass");
  table.Print();
}

}  // namespace
}  // namespace rma::bench

int main(int argc, char** argv) {
  rma::bench::BenchJson::Init("bench_storage", &argc, argv);
  rma::bench::Run();
  return 0;
}
