// Ablation microbenchmarks (google-benchmark): the design choices DESIGN.md
// calls out — BAT vs contiguous kernels per operation, the sort-avoidance
// optimizations, and Householder vs Gram-Schmidt QR.
//
// `--json` (stripped before google-benchmark sees the args) emits
// BENCH_bench_ablation_kernels.json via bench_common's BenchJson recorder —
// the machine-readable artifact the CI perf gate diffs against
// bench/baselines/. Sizes honour RMA_BENCH_SCALE so CI can run small.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>

#include "bench_common.h"
#include "core/algebra.h"
#include "core/rma.h"
#include "matrix/qr.h"
#include "rel/operators.h"
#include "workload/synthetic.h"

namespace rma {
namespace {

RmaOptions Opts(KernelPolicy kernel, SortPolicy sort) {
  RmaOptions o;
  o.kernel = kernel;
  o.sort = sort;
  return o;
}

void SetShapeCounters(benchmark::State& state, int64_t rows, int64_t cols) {
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["cols"] = static_cast<double>(cols);
  state.counters["bytes"] =
      static_cast<double>(rows * cols * static_cast<int64_t>(sizeof(double)));
}

// --- BAT vs contiguous per operation ---------------------------------------

void BM_UnaryOp(benchmark::State& state, MatrixOp op, KernelPolicy kernel,
                int64_t rows, int cols) {
  const Relation r = workload::UniformRelation(rows, cols, 7, 0, 100, true);
  const RmaOptions opts = Opts(kernel, SortPolicy::kOptimized);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RmaUnary(op, r, {"id"}, opts).ValueOrDie());
  }
  SetShapeCounters(state, rows, cols);
}

void BM_BinaryOp(benchmark::State& state, MatrixOp op, KernelPolicy kernel,
                 int64_t rows, int cols) {
  const Relation r = workload::UniformRelation(rows, cols, 7, 0, 100, true);
  Relation s = workload::UniformRelation(rows, cols, 8, 0, 100, true);
  s = rel::Rename(s, "id", "id2").ValueOrDie();
  const RmaOptions opts = Opts(kernel, SortPolicy::kOptimized);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        RmaBinary(op, r, {"id"}, s, {"id2"}, opts).ValueOrDie());
  }
  SetShapeCounters(state, rows, cols);
}

// --- sort policies -----------------------------------------------------------

void BM_SortPolicy(benchmark::State& state, MatrixOp op, SortPolicy sort) {
  const int64_t rows = bench::Scaled(100000);
  const Relation r = workload::ManyOrderColumnsRelation(rows, 8, 7, 11, "r");
  Relation s = workload::ManyOrderColumnsRelation(rows, 8, 7, 13, "s");
  std::vector<std::string> order_r;
  std::vector<std::string> order_s;
  std::vector<std::string> s_names;
  for (int c = 0; c < 8; ++c) {
    order_r.push_back("o" + std::to_string(c));
    order_s.push_back("p" + std::to_string(c));
    s_names.push_back("p" + std::to_string(c));
  }
  s_names.push_back("val");
  s = rel::RenameAll(s, s_names).ValueOrDie();
  const RmaOptions opts = Opts(KernelPolicy::kAuto, sort);
  for (auto _ : state) {
    if (GetOpInfo(op).arity == 1) {
      benchmark::DoNotOptimize(RmaUnary(op, r, order_r, opts).ValueOrDie());
    } else {
      benchmark::DoNotOptimize(
          RmaBinary(op, r, order_r, s, order_s, opts).ValueOrDie());
    }
  }
  SetShapeCounters(state, rows, 8);
}

// --- cross-algebra rewriter ---------------------------------------------------

/// The Sec. 5 covariance pattern mmu(tra(x BY id) BY C, x BY id): with the
/// rewriter on it collapses to cpd(x, x) (symmetric SYRK kernel, no wide
/// transposed intermediate).
void BM_CovariancePattern(benchmark::State& state, bool rewrite) {
  const int64_t rows = bench::Scaled(10000);
  const Relation r = workload::UniformRelation(rows, 30, 11, 0, 100, true);
  RmaOptions opts;
  opts.rewrites.enabled = rewrite;
  auto x = RmaExpr::Leaf(r);
  auto expr = RmaExpr::Binary(
      MatrixOp::kMmu, RmaExpr::Unary(MatrixOp::kTra, x, {"id"}), {"C"}, x,
      {"id"});
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvaluateOptimized(expr, opts).ValueOrDie());
  }
  SetShapeCounters(state, rows, 30);
}

/// Fig. 10's round trip tra(tra(x BY id) BY C): the rewriter replaces both
/// transposes (and the 1-column-per-row intermediate) with a relabel.
void BM_DoubleTranspose(benchmark::State& state, bool rewrite) {
  const int64_t rows = bench::Scaled(5000);
  const Relation r = workload::UniformRelation(rows, 20, 12, 0, 100, true);
  RmaOptions opts;
  opts.rewrites.enabled = rewrite;
  auto expr = RmaExpr::Unary(
      MatrixOp::kTra,
      RmaExpr::Unary(MatrixOp::kTra, RmaExpr::Leaf(r), {"id"}), {"C"});
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvaluateOptimized(expr, opts).ValueOrDie());
  }
  SetShapeCounters(state, rows, 20);
}

// --- Householder vs Gram-Schmidt QR -----------------------------------------

void BM_QrAlgorithm(benchmark::State& state, bool householder) {
  const int64_t n = state.range(0);
  const Relation rel = workload::UniformRelation(n, 20, 9, 0, 100, true);
  DenseMatrix a(n, 20);
  for (int64_t j = 0; j < 20; ++j) {
    const auto col = ToDoubleVector(*rel.column(static_cast<int>(j) + 1));
    a.SetCol(j, col);
  }
  DenseMatrix q;
  DenseMatrix r;
  for (auto _ : state) {
    if (householder) {
      HouseholderQr(a, &q, &r).Abort();
    } else {
      GramSchmidtQr(a, &q, &r).Abort();
    }
    benchmark::DoNotOptimize(q);
  }
  SetShapeCounters(state, n, 20);
}

// --- machine-readable reporting ----------------------------------------------

/// Console output as usual, plus one BenchJson entry per run: name, per-
/// iteration wall time, and the shape/bytes counters the benchmarks set.
/// The kernel field is the trailing name component ("bat", "contiguous",
/// "rewrite_on", ...), the op field the leading one.
class JsonForwardingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    benchmark::ConsoleReporter::ReportRuns(reports);
    for (const Run& run : reports) {
      if (run.error_occurred) continue;
      const std::string name = run.benchmark_name();
      const size_t slash = name.find('/');
      const std::string op = slash == std::string::npos
                                 ? name
                                 : name.substr(0, slash);
      // The variant is the second name segment; anything after it is a
      // google-benchmark Arg suffix ("qr/householder/20000"), not a kernel.
      std::string kernel;
      if (slash != std::string::npos) {
        const size_t next = name.find('/', slash + 1);
        kernel = name.substr(slash + 1, next == std::string::npos
                                            ? std::string::npos
                                            : next - slash - 1);
      }
      const double per_iter_seconds =
          run.iterations > 0
              ? run.real_accumulated_time / static_cast<double>(run.iterations)
              : run.real_accumulated_time;
      std::string shape;
      auto rows = run.counters.find("rows");
      auto cols = run.counters.find("cols");
      if (rows != run.counters.end() && cols != run.counters.end()) {
        shape = std::to_string(static_cast<int64_t>(rows->second.value)) +
                "x" + std::to_string(static_cast<int64_t>(cols->second.value));
      }
      auto bytes = run.counters.find("bytes");
      rma::bench::BenchJson::Record(
          name, op, shape, per_iter_seconds,
          bytes != run.counters.end()
              ? static_cast<int64_t>(bytes->second.value)
              : 0,
          kernel);
    }
  }
};

}  // namespace
}  // namespace rma

int main(int argc, char** argv) {
  using namespace rma;
  bench::BenchJson::Init("bench_ablation_kernels", &argc, argv);
  const int64_t kRows = bench::Scaled(20000);
  const int kCols = 30;
  const int64_t kSq = bench::Scaled(400);  // square ops

  benchmark::RegisterBenchmark("inv/bat", [&](benchmark::State& s) {
    BM_UnaryOp(s, MatrixOp::kInv, KernelPolicy::kBat, kSq, static_cast<int>(kSq));
  });
  benchmark::RegisterBenchmark("inv/contiguous", [&](benchmark::State& s) {
    BM_UnaryOp(s, MatrixOp::kInv, KernelPolicy::kContiguous, kSq,
               static_cast<int>(kSq));
  });
  benchmark::RegisterBenchmark("qqr/bat", [&](benchmark::State& s) {
    BM_UnaryOp(s, MatrixOp::kQqr, KernelPolicy::kBat, kRows, kCols);
  });
  benchmark::RegisterBenchmark("qqr/contiguous", [&](benchmark::State& s) {
    BM_UnaryOp(s, MatrixOp::kQqr, KernelPolicy::kContiguous, kRows, kCols);
  });
  benchmark::RegisterBenchmark("cpd/bat", [&](benchmark::State& s) {
    BM_BinaryOp(s, MatrixOp::kCpd, KernelPolicy::kBat, kRows, kCols);
  });
  benchmark::RegisterBenchmark("cpd/contiguous", [&](benchmark::State& s) {
    BM_BinaryOp(s, MatrixOp::kCpd, KernelPolicy::kContiguous, kRows, kCols);
  });
  benchmark::RegisterBenchmark("add/bat", [&](benchmark::State& s) {
    BM_BinaryOp(s, MatrixOp::kAdd, KernelPolicy::kBat, kRows, kCols);
  });
  benchmark::RegisterBenchmark("add/contiguous", [&](benchmark::State& s) {
    BM_BinaryOp(s, MatrixOp::kAdd, KernelPolicy::kContiguous, kRows, kCols);
  });

  benchmark::RegisterBenchmark("add/sort_always", [](benchmark::State& s) {
    BM_SortPolicy(s, MatrixOp::kAdd, SortPolicy::kAlways);
  });
  benchmark::RegisterBenchmark("add/sort_optimized", [](benchmark::State& s) {
    BM_SortPolicy(s, MatrixOp::kAdd, SortPolicy::kOptimized);
  });
  benchmark::RegisterBenchmark("qqr/sort_always", [](benchmark::State& s) {
    BM_SortPolicy(s, MatrixOp::kQqr, SortPolicy::kAlways);
  });
  benchmark::RegisterBenchmark("qqr/sort_optimized", [](benchmark::State& s) {
    BM_SortPolicy(s, MatrixOp::kQqr, SortPolicy::kOptimized);
  });

  benchmark::RegisterBenchmark("cov_pattern/rewrite_off",
                               [](benchmark::State& s) {
    BM_CovariancePattern(s, false);
  });
  benchmark::RegisterBenchmark("cov_pattern/rewrite_on",
                               [](benchmark::State& s) {
    BM_CovariancePattern(s, true);
  });
  benchmark::RegisterBenchmark("double_tra/rewrite_off",
                               [](benchmark::State& s) {
    BM_DoubleTranspose(s, false);
  });
  benchmark::RegisterBenchmark("double_tra/rewrite_on",
                               [](benchmark::State& s) {
    BM_DoubleTranspose(s, true);
  });

  benchmark::RegisterBenchmark("qr/householder", [](benchmark::State& s) {
    BM_QrAlgorithm(s, true);
  })->Arg(bench::Scaled(20000));
  benchmark::RegisterBenchmark("qr/gram_schmidt", [](benchmark::State& s) {
    BM_QrAlgorithm(s, false);
  })->Arg(bench::Scaled(20000));

  benchmark::Initialize(&argc, argv);
  JsonForwardingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  bench::BenchJson::Flush();
  return 0;
}
