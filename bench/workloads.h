#ifndef RMA_BENCH_WORKLOADS_H_
#define RMA_BENCH_WORKLOADS_H_

#include <string>

#include "baselines/rlike/rlike.h"
#include "core/options.h"
#include "util/status.h"
#include "workload/bixi.h"
#include "workload/dblp.h"

namespace rma::bench {

/// Outcome of one mixed-workload run on one system (Figs. 15-18).
struct RunResult {
  Status status;              ///< non-OK: the system failed (Table 6 "fail")
  double load_seconds = 0;    ///< CSV load (R bars only, Fig. 15)
  double prep_seconds = 0;    ///< relational part (solid bar)
  double matrix_seconds = 0;  ///< matrix part incl. data transformation
  double check = 0;           ///< workload-specific checksum / coefficient

  double total() const { return load_seconds + prep_seconds + matrix_seconds; }
};

// --- (1) Trips: ordinary linear regression, Fig. 15 -------------------------
// Data prep: trip pairs performed >= 50 times, station coordinates joined in,
// per-trip distance. Matrix: OLS via MMU(INV(CPD(A,A)), CPD(A,V)).
// `check` is the recovered distance coefficient (generator slope ~240 s/km).

RunResult TripsRmaPlus(const workload::BixiData& data, KernelPolicy policy);
RunResult TripsAida(const workload::BixiData& data);
RunResult TripsR(const workload::BixiData& data,
                 const baselines::rlike::Options& opts);
RunResult TripsMadlib(const workload::BixiData& data);

// --- (2) Journeys: multiple linear regression, Fig. 16 ----------------------
// Chains popular station pairs into journeys of `num_trips` hops, then
// regresses total duration on the per-hop distances.

RunResult JourneysRmaPlus(const Relation& journeys, int num_trips,
                          KernelPolicy policy);
RunResult JourneysAida(const Relation& journeys, int num_trips);
RunResult JourneysR(const Relation& journeys, int num_trips,
                    const baselines::rlike::Options& opts);
RunResult JourneysMadlib(const Relation& journeys, int num_trips);

// --- (3) Conferences: covariance computation, Fig. 17 -----------------------
// Covariance matrix over the publication counts; join the result with the
// ranking table and keep A++ conferences. `check` is the output row count.

RunResult ConferencesRmaPlus(const workload::DblpData& data,
                             KernelPolicy policy);
RunResult ConferencesAida(const workload::DblpData& data);
RunResult ConferencesR(const workload::DblpData& data,
                       const baselines::rlike::Options& opts);
RunResult ConferencesMadlib(const workload::DblpData& data);

// --- (4) Trip count: matrix addition, Fig. 18 -------------------------------
// Adds two years of per-rider trip counts. `check` is the grand total.

RunResult TripCountRmaPlus(const Relation& year1, const Relation& year2,
                           KernelPolicy policy);
RunResult TripCountAida(const Relation& year1, const Relation& year2);
RunResult TripCountR(const Relation& year1, const Relation& year2,
                     const baselines::rlike::Options& opts);
RunResult TripCountMadlib(const Relation& year1, const Relation& year2);

}  // namespace rma::bench

#endif  // RMA_BENCH_WORKLOADS_H_
