// Table 5: add over sparse relations. Two relations (500K tuples scaled,
// one order + 10 application attributes, values 1..5M) with a growing share
// of zeros; zero-suppressed columns make add faster as sparsity grows
// (MonetDB's compression in the paper). Paper: 5M tuples, 1.68s @0% down to
// 0.76s @100%.
#include "bench_common.h"
#include "core/rma.h"
#include "rel/operators.h"
#include "workload/synthetic.h"

int main() {
  using namespace rma::bench;
  using namespace rma;
  PaperTable table(
      "Table 5: add over sparse relations in RMA+ (500K tuples x 10 attrs; "
      "paper: 5M tuples)",
      {"% zeros", "sec"});
  const int64_t tuples = Scaled(500000);
  for (int pct = 0; pct <= 100; pct += 10) {
    const double share = pct / 100.0;
    Relation r = workload::CompressRelation(
        workload::SparseRelation(tuples, 10, share, 31, "r"), 0.05);
    Relation s = workload::CompressRelation(
        workload::SparseRelation(tuples, 10, share, 32, "s"), 0.05);
    s = rel::Rename(s, "id", "id2").ValueOrDie();
    RmaOptions opts;
    opts.sort = SortPolicy::kOptimized;
    const double sec =
        TimeIt([&] { Add(r, {"id"}, s, {"id2"}, opts).ValueOrDie(); });
    table.AddRow({std::to_string(pct), Secs(sec)});
  }
  table.AddNote("expected shape (paper Table 5): monotonically faster with "
                "more zeros (compression), about 2x from dense to all-zero");
  table.Print();
  return 0;
}
