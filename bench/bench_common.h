#ifndef RMA_BENCH_BENCH_COMMON_H_
#define RMA_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "util/timer.h"

namespace rma::bench {

/// Scale factor for all row counts, from the RMA_BENCH_SCALE environment
/// variable (default 1.0 — sizes tuned so the full suite runs in minutes;
/// the paper's original sizes are noted per bench).
double ScaleFactor();

/// rows scaled by RMA_BENCH_SCALE (at least 16).
int64_t Scaled(int64_t rows);

/// Times one invocation of `fn` in seconds.
double TimeIt(const std::function<void()>& fn);

/// Formats seconds as "1.23" (fixed, seconds) — paper tables are in sec.
std::string Secs(double s);

/// Formats a percentage as "83".
std::string Pct(double fraction);

/// Aligned paper-style table printer: one instance per table/figure.
class PaperTable {
 public:
  PaperTable(std::string title, std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  /// Appends a free-text note printed under the table.
  void AddNote(std::string note);

  void Print() const;

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> notes_;
};

}  // namespace rma::bench

#endif  // RMA_BENCH_BENCH_COMMON_H_
