#ifndef RMA_BENCH_BENCH_COMMON_H_
#define RMA_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "util/timer.h"

namespace rma::bench {

/// Scale factor for all row counts, from the RMA_BENCH_SCALE environment
/// variable (default 1.0 — sizes tuned so the full suite runs in minutes;
/// the paper's original sizes are noted per bench).
double ScaleFactor();

/// rows scaled by RMA_BENCH_SCALE (at least 16).
int64_t Scaled(int64_t rows);

/// Times one invocation of `fn` in seconds.
double TimeIt(const std::function<void()>& fn);

/// Minimum over `reps` timed invocations — sheds scheduler noise, which a
/// single TimeIt cannot (the perf gate diffs these numbers across runs).
double TimeBest(int reps, const std::function<void()>& fn);

/// Repetition count for best-of-N measurements: RMA_BENCH_REPS when set to
/// a positive integer, else `default_reps`. Baseline regeneration exports a
/// higher count to tighten the noise floor without slowing ordinary runs.
int BenchReps(int default_reps);

/// Formats seconds as "1.23" (fixed, seconds) — paper tables are in sec.
std::string Secs(double s);

/// Formats a percentage as "83".
std::string Pct(double fraction);

/// Machine-readable benchmark output for the CI perf gate. When enabled
/// (`--json` on the bench command line, or env RMA_BENCH_JSON=1), every
/// Record() call collects one entry and the process writes
/// `BENCH_<bench>.json` to the working directory at Flush() / exit:
///
///   {"bench": "bench_batch", "scale": 1.0, "simd": "avx2x4", "entries": [
///     {"name": "...", "op": "...", "shape": "RxC", "ns": 1.2e6,
///      "bytes": 0, "kernel": "auto", "regime": "l3"}, ...]}
///
/// `simd` records the vector ISA the numbers were measured under (rma::simd,
/// including the RMA_NO_SIMD override), so a baseline diff can flag
/// apples-to-oranges comparisons. `regime` classifies each entry's touched
/// bytes against the machine's L2/L3 sizes ("l2"/"l3"/"dram"; "" when bytes
/// is unknown), mirroring the calibration regimes.
///
/// `scripts/bench_compare.py` diffs two such files with a noise threshold;
/// `bench/baselines/*.json` holds the checked-in references.
class BenchJson {
 public:
  /// Strips a `--json` flag out of argv (so benches can forward the rest,
  /// e.g. to google-benchmark) and arms the recorder. Also armed by
  /// RMA_BENCH_JSON=1 without the flag. `bench_name` names the output file.
  static void Init(const std::string& bench_name, int* argc, char** argv);

  static bool enabled();

  /// Records one measurement: `op` is the operation or phase measured,
  /// `shape` a free-form size ("60000x24"), `seconds` wall time (stored as
  /// ns), `bytes` the touched payload (0 = unknown), `kernel` the kernel
  /// family or policy chosen ("" = n/a), `shards` the shard count the run
  /// executed under (0 = not a sharded measurement; 1 = explicitly
  /// unsharded, so baseline diffs can pair the two variants).
  static void Record(const std::string& name, const std::string& op,
                     const std::string& shape, double seconds, int64_t bytes,
                     const std::string& kernel, int shards = 0);

  /// Writes BENCH_<bench>.json if armed and entries exist. Registered via
  /// atexit by Init; calling it twice is harmless (second write is
  /// identical).
  static void Flush();
};

/// Aligned paper-style table printer: one instance per table/figure.
class PaperTable {
 public:
  PaperTable(std::string title, std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  /// Appends a free-text note printed under the table.
  void AddNote(std::string note);

  void Print() const;

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> notes_;
};

}  // namespace rma::bench

#endif  // RMA_BENCH_BENCH_COMMON_H_
