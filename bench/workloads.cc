#include "workloads.h"

#include <cmath>
#include <cstdio>

#include "baselines/aidalike/aida.h"
#include "baselines/madliblike/madlib.h"
#include "core/rma.h"
#include "matrix/blas.h"
#include "matrix/lu.h"
#include "rel/operators.h"
#include "util/timer.h"
#include "workload/csv.h"

namespace rma::bench {

namespace {

namespace rl = baselines::rlike;
namespace ml = baselines::madliblike;
namespace ai = baselines::aidalike;

using rel::Expr;

RunResult Fail(Status st) {
  RunResult r;
  r.status = std::move(st);
  return r;
}

#define BENCH_ASSIGN(lhs, expr)                    \
  auto RMA_CONCAT(_b_, __LINE__) = (expr);         \
  if (!RMA_CONCAT(_b_, __LINE__).ok())             \
    return Fail(RMA_CONCAT(_b_, __LINE__).status()); \
  lhs = std::move(RMA_CONCAT(_b_, __LINE__)).ValueUnsafe();

/// RMA options used by RMA+ runs: the paper's optimizer policy with the
/// sort-avoidance optimizations on.
RmaOptions RmaOpts(KernelPolicy policy) {
  RmaOptions opts;
  opts.kernel = policy;
  opts.sort = SortPolicy::kOptimized;
  return opts;
}

/// Distance expression from two coordinate pairs (planar km approximation).
rel::ExprPtr DistExpr(const std::string& lat1, const std::string& lon1,
                      const std::string& lat2, const std::string& lon2) {
  auto dy = Expr::Binary(
      "*",
      Expr::Binary("-", Expr::Column(lat2), Expr::Column(lat1)),
      Expr::LiteralDouble(111.0));
  auto dx = Expr::Binary(
      "*",
      Expr::Binary("-", Expr::Column(lon2), Expr::Column(lon1)),
      Expr::LiteralDouble(78.0));
  return Expr::Call(
      "SQRT", {Expr::Binary("+", Expr::Binary("*", dy, dy),
                            Expr::Binary("*", dx, dx))});
}

// ---------------------------------------------------------------------------
// (1) Trips — ordinary linear regression
// ---------------------------------------------------------------------------

/// Shared relational preparation (RMA+ and AIDA both run it in the column
/// store): per-trip relation (id, start_time, end_time, dist, duration).
Result<Relation> PrepareTrips(const workload::BixiData& data) {
  RMA_ASSIGN_OR_RETURN(
      Relation agg,
      rel::Aggregate(data.trips, {"start_station", "end_station"},
                     {{"COUNT", "", "n"}}));
  RMA_ASSIGN_OR_RETURN(
      Relation pop,
      rel::Select(agg, Expr::Binary(">=", Expr::Column("n"),
                                    Expr::LiteralInt(50))));
  RMA_ASSIGN_OR_RETURN(
      Relation j1, rel::HashJoin(pop, data.stations, {"start_station"},
                                 {"code"}));
  RMA_ASSIGN_OR_RETURN(
      Relation j1p,
      rel::Project(j1, {{Expr::Column("start_station"), "start_station"},
                        {Expr::Column("end_station"), "end_station"},
                        {Expr::Column("lat"), "lat1"},
                        {Expr::Column("lon"), "lon1"}}));
  RMA_ASSIGN_OR_RETURN(
      Relation j2,
      rel::HashJoin(j1p, data.stations, {"end_station"}, {"code"}));
  RMA_ASSIGN_OR_RETURN(
      Relation pairs,
      rel::Project(j2, {{Expr::Column("start_station"), "start_station"},
                        {Expr::Column("end_station"), "end_station"},
                        {DistExpr("lat1", "lon1", "lat", "lon"), "dist"}}));
  RMA_ASSIGN_OR_RETURN(
      Relation trips_d,
      rel::HashJoin(data.trips, pairs, {"start_station", "end_station"},
                    {"start_station", "end_station"}));
  return rel::Project(trips_d, {{Expr::Column("id"), "id"},
                                {Expr::Column("start_time"), "start_time"},
                                {Expr::Column("end_time"), "end_time"},
                                {Expr::Column("dist"), "dist"},
                                {Expr::Column("duration"), "duration"}});
}

/// OLS through relational matrix operations:
/// beta = MMU(INV(CPD(A,A)), CPD(A,V)).
Result<double> OlsRma(const Relation& xy,
                      const std::vector<std::string>& x_cols,
                      const RmaOptions& opts) {
  std::vector<rel::ProjectItem> a_items = {{Expr::Column("id"), "id"},
                                           {Expr::LiteralDouble(1.0), "c0"}};
  int i = 1;
  for (const auto& x : x_cols) {
    a_items.push_back({Expr::Column(x), "c" + std::to_string(i++)});
  }
  RMA_ASSIGN_OR_RETURN(Relation a, rel::Project(xy, a_items));
  RMA_ASSIGN_OR_RETURN(Relation v,
                       rel::Project(xy, {{Expr::Column("id"), "id"},
                                         {Expr::Column("duration"), "y"}}));
  RMA_ASSIGN_OR_RETURN(Relation ata, Cpd(a, {"id"}, a, {"id"}, opts));
  RMA_ASSIGN_OR_RETURN(Relation atv, Cpd(a, {"id"}, v, {"id"}, opts));
  RMA_ASSIGN_OR_RETURN(Relation inv, Inv(ata, {"C"}, opts));
  RMA_ASSIGN_OR_RETURN(Relation beta, Mmu(inv, {"C"}, atv, {"C"}, opts));
  // Row "c1" holds the coefficient of the first regressor.
  for (int64_t r = 0; r < beta.num_rows(); ++r) {
    if (ValueToString(beta.Get(r, 0)) == "c1") {
      return ValueToDouble(beta.Get(r, 1));
    }
  }
  return Status::KeyError("coefficient row not found");
}

/// OLS on dense matrices (NumPy / R matrix world).
Result<double> OlsDense(const DenseMatrix& a, const DenseMatrix& y) {
  RMA_ASSIGN_OR_RETURN(DenseMatrix ata, blas::CrossProd(a, a));
  RMA_ASSIGN_OR_RETURN(DenseMatrix aty, blas::CrossProd(a, y));
  RMA_ASSIGN_OR_RETURN(DenseMatrix inv, Inverse(std::move(ata)));
  RMA_ASSIGN_OR_RETURN(DenseMatrix beta, blas::MatMul(inv, aty));
  return beta(1, 0);
}

}  // namespace

RunResult TripsRmaPlus(const workload::BixiData& data, KernelPolicy policy) {
  RunResult out;
  Timer t;
  BENCH_ASSIGN(Relation trips_d, PrepareTrips(data));
  BENCH_ASSIGN(Relation xy,
               rel::ProjectNames(trips_d, {"id", "dist", "duration"}));
  out.prep_seconds = t.Seconds();
  t.Restart();
  BENCH_ASSIGN(out.check, OlsRma(xy, {"dist"}, RmaOpts(policy)));
  out.matrix_seconds = t.Seconds();
  return out;
}

RunResult TripsAida(const workload::BixiData& data) {
  RunResult out;
  Timer t;
  BENCH_ASSIGN(Relation trips_d, PrepareTrips(data));
  out.prep_seconds = t.Seconds();
  t.Restart();
  // The working set moves into Python: timestamps are boxed value-by-value
  // (incompatible storage formats), numeric columns pass as pointers.
  ai::TabularData td = ai::TabularData::FromRelation(trips_d);
  BENCH_ASSIGN(DenseMatrix x, td.ToMatrix({"dist"}));
  BENCH_ASSIGN(DenseMatrix y, td.ToMatrix({"duration"}));
  DenseMatrix a(x.rows(), 2);
  for (int64_t i = 0; i < x.rows(); ++i) {
    a(i, 0) = 1.0;
    a(i, 1) = x(i, 0);
  }
  BENCH_ASSIGN(out.check, OlsDense(a, y));
  out.matrix_seconds = t.Seconds();
  return out;
}

RunResult TripsR(const workload::BixiData& data,
                 const baselines::rlike::Options& opts) {
  RunResult out;
  // Setup (untimed): the CSV files R would start from.
  const std::string trips_csv = "/tmp/rma_bench_trips.csv";
  const std::string stations_csv = "/tmp/rma_bench_stations.csv";
  {
    Status st = workload::WriteCsv(data.trips, trips_csv);
    if (!st.ok()) return Fail(st);
    st = workload::WriteCsv(data.stations, stations_csv);
    if (!st.ok()) return Fail(st);
  }
  Timer t;
  BENCH_ASSIGN(Relation trips_rel,
               workload::ReadCsv(trips_csv, data.trips.schema()));
  BENCH_ASSIGN(Relation stations_rel,
               workload::ReadCsv(stations_csv, data.stations.schema()));
  rl::DataFrame trips = rl::FromRelation(trips_rel);
  rl::DataFrame stations = rl::FromRelation(stations_rel);
  if (trips.ByteSize() + stations.ByteSize() > opts.memory_budget_bytes) {
    return Fail(Status::ResourceExhausted("R: cannot allocate vector"));
  }
  out.load_seconds = t.Seconds();
  t.Restart();
  // Single-core relational preparation.
  BENCH_ASSIGN(rl::DataFrame counts,
               rl::GroupCount(trips, {"start_station", "end_station"}));
  BENCH_ASSIGN(rl::DataFrame pop, rl::FilterNumeric(counts, "N", ">=", 50));
  BENCH_ASSIGN(rl::DataFrame j1,
               rl::InnerJoin(pop, stations, {"start_station"}, {"code"}));
  BENCH_ASSIGN(rl::DataFrame j2,
               rl::InnerJoin(j1, stations, {"end_station"}, {"code"}));
  // After the two joins the second station's coords are "lat.y"/"lon.y".
  rl::DataFrame pairs = rl::WithColumn(
      j2, "dist", [](const rl::DataFrame& df, int64_t i) {
        const double lat1 = df.Doubles(*df.ColumnIndex("lat"))[i];
        const double lon1 = df.Doubles(*df.ColumnIndex("lon"))[i];
        const double lat2 = df.Doubles(*df.ColumnIndex("lat.y"))[i];
        const double lon2 = df.Doubles(*df.ColumnIndex("lon.y"))[i];
        const double dy = (lat2 - lat1) * 111.0;
        const double dx = (lon2 - lon1) * 78.0;
        return std::sqrt(dx * dx + dy * dy);
      });
  BENCH_ASSIGN(rl::DataFrame trips_d,
               rl::InnerJoin(trips, pairs, {"start_station", "end_station"},
                             {"start_station", "end_station"}));
  out.prep_seconds = t.Seconds();
  t.Restart();
  rl::DataFrame with_one = rl::WithColumn(
      trips_d, "one", [](const rl::DataFrame&, int64_t) { return 1.0; });
  auto a = rl::AsMatrix(with_one, {"one", "dist"}, opts);
  if (!a.ok()) return Fail(a.status());
  auto y = rl::AsMatrix(with_one, {"duration"}, opts);
  if (!y.ok()) return Fail(y.status());
  BENCH_ASSIGN(out.check, OlsDense(*a, *y));
  out.matrix_seconds = t.Seconds();
  return out;
}

RunResult TripsMadlib(const workload::BixiData& data) {
  RunResult out;
  Timer t;
  ml::RowTable trips = ml::RowTable::FromRelation(data.trips);
  ml::RowTable stations = ml::RowTable::FromRelation(data.stations);
  // Composite join key start*1e6+end (row stores join on one column here).
  auto with_pair = [](const ml::RowTable& t2, int s_idx, int e_idx) {
    return t2.WithColumn("pairkey", [=](const std::vector<Value>& row) {
      return ValueToDouble(row[static_cast<size_t>(s_idx)]) * 1e6 +
             ValueToDouble(row[static_cast<size_t>(e_idx)]);
    });
  };
  BENCH_ASSIGN(int ts, trips.ColumnIndex("start_station"));
  BENCH_ASSIGN(int te, trips.ColumnIndex("end_station"));
  ml::RowTable trips_k = with_pair(trips, ts, te);
  BENCH_ASSIGN(ml::RowTable counts, trips_k.GroupCount({"pairkey"}));
  ml::RowTable pop = counts.Filter([](const std::vector<Value>& row) {
    return std::get<int64_t>(row[1]) >= 50;
  });
  // Distance per popular pair: join the two station endpoints back in.
  BENCH_ASSIGN(ml::RowTable pop_trips, pop.Join(trips_k, "pairkey", "pairkey"));
  BENCH_ASSIGN(ml::RowTable j1, pop_trips.Join(stations, "start_station",
                                               "code"));
  BENCH_ASSIGN(ml::RowTable j2, j1.Join(stations, "end_station", "code"));
  BENCH_ASSIGN(int lat1, j2.ColumnIndex("lat"));
  BENCH_ASSIGN(int lon1, j2.ColumnIndex("lon"));
  BENCH_ASSIGN(int lat2, j2.ColumnIndex("lat_2"));
  BENCH_ASSIGN(int lon2, j2.ColumnIndex("lon_2"));
  ml::RowTable trips_d =
      j2.WithColumn("dist", [=](const std::vector<Value>& row) {
        const double dy = (ValueToDouble(row[static_cast<size_t>(lat2)]) -
                           ValueToDouble(row[static_cast<size_t>(lat1)])) *
                          111.0;
        const double dx = (ValueToDouble(row[static_cast<size_t>(lon2)]) -
                           ValueToDouble(row[static_cast<size_t>(lon1)])) *
                          78.0;
        return std::sqrt(dx * dx + dy * dy);
      });
  out.prep_seconds = t.Seconds();
  t.Restart();
  BENCH_ASSIGN(std::vector<double> beta,
               ml::LinRegr(trips_d, {"dist"}, "duration"));
  out.check = beta[1];
  out.matrix_seconds = t.Seconds();
  return out;
}

// ---------------------------------------------------------------------------
// (2) Journeys — multiple linear regression
// ---------------------------------------------------------------------------

namespace {

/// Chaining key base: key = rider * kSeqBase + seq, so key + 1 is the
/// rider's next trip (kSeqBase > workload::kTripsPerRider means keys never
/// straddle riders).
constexpr int64_t kSeqBase = int64_t{1} << 20;

std::vector<std::string> DistCols(int num_trips) {
  std::vector<std::string> out;
  for (int k = 1; k <= num_trips; ++k) {
    out.push_back("dist" + std::to_string(k));
  }
  return out;
}

/// Trip rows keyed for chaining: (key, d1, dist1). Station ids encode
/// positions, so |s1-s2| is the distance proxy the generator used.
Result<Relation> TripKeyLevel(const Relation& journeys) {
  return rel::Project(
      journeys,
      {{Expr::Binary("+",
                     Expr::Binary("*", Expr::Column("rider"),
                                  Expr::LiteralInt(kSeqBase)),
                     Expr::Column("seq")),
        "key"},
       {Expr::Column("duration"), "d1"},
       {Expr::Call("ABS", {Expr::Binary("-", Expr::Column("s1"),
                                        Expr::Column("s2"))}),
        "dist1"}});
}

/// Chains trips into `num_trips`-hop journeys — each hop is a join over the
/// full relation on consecutive keys, like the paper's data preparation —
/// then keeps journeys that appear at least 50 times (identified by their
/// per-hop distances) with their average total duration:
/// result (id, dist1..distk, n, duration).
Result<Relation> BuildJourneys(const Relation& journeys, int num_trips) {
  RMA_ASSIGN_OR_RETURN(Relation lvl, TripKeyLevel(journeys));
  Relation chain = lvl;  // key, d1, dist1
  for (int k = 2; k <= num_trips; ++k) {
    const std::string suffix = std::to_string(k);
    RMA_ASSIGN_OR_RETURN(
        Relation next,
        rel::Project(lvl, {{Expr::Binary("-", Expr::Column("key"),
                                         Expr::LiteralInt(k - 1)),
                            "nkey" + suffix},
                           {Expr::Column("d1"), "d" + suffix},
                           {Expr::Column("dist1"), "dist" + suffix}}));
    RMA_ASSIGN_OR_RETURN(
        chain, rel::HashJoin(chain, next, {"key"}, {"nkey" + suffix}));
  }
  // Total duration per journey, then the >= 50 occurrences filter.
  rel::ExprPtr y = Expr::Column("d1");
  for (int k = 2; k <= num_trips; ++k) {
    y = Expr::Binary("+", y, Expr::Column("d" + std::to_string(k)));
  }
  std::vector<rel::ProjectItem> items;
  for (const auto& d : DistCols(num_trips)) {
    items.push_back({Expr::Column(d), d});
  }
  items.push_back({y, "y"});
  RMA_ASSIGN_OR_RETURN(Relation per_journey, rel::Project(chain, items));
  RMA_ASSIGN_OR_RETURN(
      Relation grouped,
      rel::Aggregate(per_journey, DistCols(num_trips),
                     {{"COUNT", "", "n"}, {"AVG", "y", "duration"}}));
  RMA_ASSIGN_OR_RETURN(
      Relation pop,
      rel::Select(grouped, Expr::Binary(">=", Expr::Column("n"),
                                        Expr::LiteralInt(50))));
  // Add a journey id key for the matrix step.
  std::vector<int64_t> ids(static_cast<size_t>(pop.num_rows()));
  for (int64_t i = 0; i < pop.num_rows(); ++i) {
    ids[static_cast<size_t>(i)] = i;
  }
  std::vector<Attribute> attrs = {{"id", DataType::kInt64}};
  std::vector<BatPtr> cols = {MakeInt64Bat(std::move(ids))};
  for (int c = 0; c < pop.num_columns(); ++c) {
    attrs.push_back(pop.schema().attribute(c));
    cols.push_back(pop.column(c));
  }
  return Relation::Make(Schema::Make(std::move(attrs)).ValueOrDie(),
                        std::move(cols), "journeys");
}

}  // namespace

RunResult JourneysRmaPlus(const Relation& journeys, int num_trips,
                          KernelPolicy policy) {
  RunResult out;
  Timer t;
  BENCH_ASSIGN(Relation xy, BuildJourneys(journeys, num_trips));
  out.prep_seconds = t.Seconds();
  t.Restart();
  BENCH_ASSIGN(out.check, OlsRma(xy, DistCols(num_trips), RmaOpts(policy)));
  out.matrix_seconds = t.Seconds();
  return out;
}

RunResult JourneysAida(const Relation& journeys, int num_trips) {
  RunResult out;
  Timer t;
  BENCH_ASSIGN(Relation xy, BuildJourneys(journeys, num_trips));
  out.prep_seconds = t.Seconds();
  t.Restart();
  // All-numeric working set: pointer pass, no boxing (Fig. 16's point).
  ai::TabularData td = ai::TabularData::FromRelation(xy);
  BENCH_ASSIGN(DenseMatrix x, td.ToMatrix(DistCols(num_trips)));
  BENCH_ASSIGN(DenseMatrix y, td.ToMatrix({"duration"}));
  DenseMatrix a(x.rows(), x.cols() + 1);
  for (int64_t i = 0; i < x.rows(); ++i) {
    a(i, 0) = 1.0;
    for (int64_t j = 0; j < x.cols(); ++j) a(i, j + 1) = x(i, j);
  }
  BENCH_ASSIGN(out.check, OlsDense(a, y));
  out.matrix_seconds = t.Seconds();
  return out;
}

RunResult JourneysR(const Relation& journeys, int num_trips,
                    const baselines::rlike::Options& opts) {
  RunResult out;
  Timer t;
  rl::DataFrame df = rl::FromRelation(journeys);
  rl::DataFrame keyed = rl::WithColumn(
      df, "key", [](const rl::DataFrame& d, int64_t i) {
        return d.Doubles(*d.ColumnIndex("rider"))[i] *
                   static_cast<double>(kSeqBase) +
               d.Doubles(*d.ColumnIndex("seq"))[i];
      });
  rl::DataFrame lvl = rl::WithColumn(
      keyed, "dist1", [](const rl::DataFrame& d, int64_t i) {
        return std::fabs(d.Doubles(*d.ColumnIndex("s1"))[i] -
                         d.Doubles(*d.ColumnIndex("s2"))[i]);
      });
  // lvl: id, rider, seq, s1, s2, duration, key, dist1.
  rl::DataFrame chain = lvl;
  std::vector<std::string> dcols = {"duration"};
  std::vector<std::string> distcols = {"dist1"};
  for (int k = 2; k <= num_trips; ++k) {
    rl::DataFrame next = rl::WithColumn(
        lvl, "nkey", [k](const rl::DataFrame& d, int64_t i) {
          return d.Doubles(*d.ColumnIndex("key"))[i] - (k - 1);
        });
    BENCH_ASSIGN(chain, rl::InnerJoin(chain, next, {"key"}, {"nkey"}));
    // Rename the freshly appended hop columns to unique per-hop names.
    const size_t first_new = chain.names.size() - next.names.size();
    for (size_t c = first_new; c < chain.names.size(); ++c) {
      const size_t src = c - first_new;
      chain.names[c] = next.names[src] + "_h" + std::to_string(k);
    }
    dcols.push_back("duration_h" + std::to_string(k));
    distcols.push_back("dist1_h" + std::to_string(k));
  }
  rl::DataFrame with_y = rl::WithColumn(
      chain, "y", [&dcols](const rl::DataFrame& d, int64_t i) {
        double s = 0;
        for (const auto& c : dcols) s += d.Doubles(*d.ColumnIndex(c))[i];
        return s;
      });
  // Journeys appearing at least 50 times, identified by per-hop distances.
  BENCH_ASSIGN(rl::DataFrame grouped, rl::GroupMean(with_y, distcols, "y"));
  BENCH_ASSIGN(rl::DataFrame pop, rl::FilterNumeric(grouped, "N", ">=", 50));
  rl::DataFrame with_one = rl::WithColumn(
      pop, "one", [](const rl::DataFrame&, int64_t) { return 1.0; });
  out.prep_seconds = t.Seconds();
  t.Restart();
  std::vector<std::string> acols = {"one"};
  for (const auto& c : distcols) acols.push_back(c);
  auto a = rl::AsMatrix(with_one, acols, opts);
  if (!a.ok()) return Fail(a.status());
  auto y = rl::AsMatrix(with_one, {"mean"}, opts);
  if (!y.ok()) return Fail(y.status());
  BENCH_ASSIGN(out.check, OlsDense(*a, *y));
  out.matrix_seconds = t.Seconds();
  return out;
}

RunResult JourneysMadlib(const Relation& journeys, int num_trips) {
  RunResult out;
  Timer t;
  ml::RowTable jt = ml::RowTable::FromRelation(journeys);
  // jt columns: id(0), rider(1), seq(2), s1(3), s2(4), duration(5).
  ml::RowTable keyed = jt.WithColumn("key", [](const std::vector<Value>& r) {
    return ValueToDouble(r[1]) * static_cast<double>(kSeqBase) +
           ValueToDouble(r[2]);
  });
  ml::RowTable lvl = keyed.WithColumn("dist1", [](const std::vector<Value>& r) {
    return std::fabs(ValueToDouble(r[3]) - ValueToDouble(r[4]));
  });
  // lvl columns: ..., key(6), dist1(7).
  ml::RowTable chain = lvl;
  std::vector<std::string> dcols = {"duration"};
  std::vector<std::string> distcols = {"dist1"};
  for (int k = 2; k <= num_trips; ++k) {
    ml::RowTable next = lvl.WithColumn("nkey", [k](const std::vector<Value>& r) {
      return ValueToDouble(r[6]) - static_cast<double>(k - 1);
    });
    BENCH_ASSIGN(chain, chain.Join(next, "key", "nkey"));
    // The join appended next's nine columns (uniquified); read the actual
    // names of the hop's duration and distance back from the table.
    const auto& names = chain.names();
    const size_t base = names.size() - 9;
    dcols.push_back(names[base + 5]);      // duration'
    distcols.push_back(names[base + 7]);   // dist1'
  }
  std::vector<int> didx;
  for (const auto& c : dcols) {
    BENCH_ASSIGN(int i, chain.ColumnIndex(c));
    didx.push_back(i);
  }
  ml::RowTable with_y = chain.WithColumn("y", [&didx](const std::vector<Value>& r) {
    double s = 0;
    for (int i : didx) s += ValueToDouble(r[static_cast<size_t>(i)]);
    return s;
  });
  // Journeys appearing at least 50 times, identified by per-hop distances.
  BENCH_ASSIGN(ml::RowTable grouped, with_y.GroupMean(distcols, "y"));
  const size_t count_col = distcols.size();
  ml::RowTable pop = grouped.Filter([count_col](const std::vector<Value>& row) {
    return ValueToDouble(row[count_col]) >= 50;
  });
  out.prep_seconds = t.Seconds();
  t.Restart();
  BENCH_ASSIGN(std::vector<double> beta, ml::LinRegr(pop, distcols, "mean"));
  out.check = beta.size() > 1 ? beta[1] : 0.0;
  out.matrix_seconds = t.Seconds();
  return out;
}

// ---------------------------------------------------------------------------
// (3) Conferences — covariance computation
// ---------------------------------------------------------------------------

namespace {

std::vector<std::string> ConfCols(const Relation& publications) {
  std::vector<std::string> out;
  for (int c = 1; c < publications.num_columns(); ++c) {
    out.push_back(publications.schema().attribute(c).name);
  }
  return out;
}

/// Centers a dense matrix in place (column means to zero); returns n.
int64_t CenterColumns(DenseMatrix* x) {
  const int64_t n = x->rows();
  for (int64_t j = 0; j < x->cols(); ++j) {
    double mean = 0;
    for (int64_t i = 0; i < n; ++i) mean += (*x)(i, j);
    mean /= static_cast<double>(n);
    for (int64_t i = 0; i < n; ++i) (*x)(i, j) -= mean;
  }
  return n;
}

/// Joins a covariance relation (C + conference columns) with the ranking
/// and keeps A++ conferences.
Result<Relation> SelectTopRated(const Relation& cov, const Relation& ranking) {
  RMA_ASSIGN_OR_RETURN(Relation joined,
                       rel::HashJoin(cov, ranking, {"C"}, {"Conf"}));
  return rel::Select(joined,
                     Expr::Binary("=", Expr::Column("Rating"),
                                  Expr::LiteralString("A++")));
}

}  // namespace

RunResult ConferencesRmaPlus(const workload::DblpData& data,
                             KernelPolicy policy) {
  RunResult out;
  const RmaOptions opts = RmaOpts(policy);
  const std::vector<std::string> confs = ConfCols(data.publications);
  Timer t;
  // Means (one aggregate per conference) and centering via sub.
  std::vector<rel::AggSpec> aggs;
  for (const auto& c : confs) aggs.push_back({"AVG", c, c});
  BENCH_ASSIGN(Relation means, rel::Aggregate(data.publications, {}, aggs));
  BENCH_ASSIGN(Relation authors,
               rel::ProjectNames(data.publications, {"Author"}));
  BENCH_ASSIGN(Relation v_authors, rel::Rename(authors, "Author", "V"));
  BENCH_ASSIGN(Relation means_x, rel::CrossJoin(v_authors, means));
  out.prep_seconds = t.Seconds();
  t.Restart();
  BENCH_ASSIGN(Relation centered, Sub(data.publications, {"Author"}, means_x,
                                      {"V"}, opts));
  BENCH_ASSIGN(Relation centered_p,
               rel::ProjectNames(centered, [&] {
                 std::vector<std::string> cols = {"Author"};
                 for (const auto& c : confs) cols.push_back(c);
                 return cols;
               }()));
  BENCH_ASSIGN(Relation covn,
               Cpd(centered_p, {"Author"}, centered_p, {"Author"}, opts));
  const double n = static_cast<double>(data.publications.num_rows());
  std::vector<rel::ProjectItem> scale = {{Expr::Column("C"), "C"}};
  for (const auto& c : confs) {
    scale.push_back({Expr::Binary("/", Expr::Column(c),
                                  Expr::LiteralDouble(n - 1.0)),
                     c});
  }
  BENCH_ASSIGN(Relation cov, rel::Project(covn, scale));
  out.matrix_seconds = t.Seconds();
  t.Restart();
  BENCH_ASSIGN(Relation sel, SelectTopRated(cov, data.ranking));
  out.prep_seconds += t.Seconds();
  out.check = static_cast<double>(sel.num_rows());
  return out;
}

RunResult ConferencesAida(const workload::DblpData& data) {
  RunResult out;
  const std::vector<std::string> confs = ConfCols(data.publications);
  Timer t;
  // The publications move into Python (author strings are boxed).
  ai::TabularData td = ai::TabularData::FromRelation(data.publications);
  BENCH_ASSIGN(DenseMatrix x, td.ToMatrix(confs));
  const int64_t n = CenterColumns(&x);
  BENCH_ASSIGN(DenseMatrix covm, blas::CrossProd(x, x));
  for (int64_t i = 0; i < covm.rows(); ++i) {
    for (int64_t j = 0; j < covm.cols(); ++j) {
      covm(i, j) /= static_cast<double>(n - 1);
    }
  }
  // AIDA's covariance result has no contextual information: the conference
  // names must be added manually before the join (Sec. 8.6(3)).
  Relation cov_rel = ai::TabularData::MatrixToRelation(covm, confs);
  std::vector<Attribute> attrs = {{"C", DataType::kString}};
  std::vector<BatPtr> cols = {MakeStringBat(confs)};
  for (int c = 0; c < cov_rel.num_columns(); ++c) {
    attrs.push_back(cov_rel.schema().attribute(c));
    cols.push_back(cov_rel.column(c));
  }
  BENCH_ASSIGN(Relation cov,
               Relation::Make(Schema::Make(std::move(attrs)).ValueOrDie(),
                              std::move(cols), "cov"));
  out.matrix_seconds = t.Seconds();
  t.Restart();
  BENCH_ASSIGN(Relation sel, SelectTopRated(cov, data.ranking));
  out.prep_seconds = t.Seconds();
  out.check = static_cast<double>(sel.num_rows());
  return out;
}

RunResult ConferencesR(const workload::DblpData& data,
                       const baselines::rlike::Options& opts) {
  RunResult out;
  const std::vector<std::string> confs = ConfCols(data.publications);
  Timer t;
  rl::DataFrame pub = rl::FromRelation(data.publications);
  rl::DataFrame rank = rl::FromRelation(data.ranking);
  out.load_seconds = t.Seconds();
  t.Restart();
  auto xr = rl::AsMatrix(pub, confs, opts);
  if (!xr.ok()) return Fail(xr.status());
  DenseMatrix x = std::move(*xr);
  const int64_t n = CenterColumns(&x);
  BENCH_ASSIGN(DenseMatrix covm, blas::CrossProd(x, x));
  for (int64_t i = 0; i < covm.rows(); ++i) {
    for (int64_t j = 0; j < covm.cols(); ++j) {
      covm(i, j) /= static_cast<double>(n - 1);
    }
  }
  rl::DataFrame cov = rl::AsDataFrame(covm, confs);
  // Manually attach conference names (no contextual information in R).
  cov.names.insert(cov.names.begin(), "C");
  cov.columns.insert(cov.columns.begin(), rl::RColumn(confs));
  out.matrix_seconds = t.Seconds();
  t.Restart();
  BENCH_ASSIGN(rl::DataFrame joined,
               rl::InnerJoin(cov, rank, {"C"}, {"Conf"}));
  // Filter A++ rows (string filter, single core).
  std::vector<int64_t> keep;
  const auto& ratings = joined.Strings(*joined.ColumnIndex("Rating"));
  for (size_t i = 0; i < ratings.size(); ++i) {
    if (ratings[i] == "A++") keep.push_back(static_cast<int64_t>(i));
  }
  out.prep_seconds = t.Seconds();
  out.check = static_cast<double>(keep.size());
  return out;
}

RunResult ConferencesMadlib(const workload::DblpData& data) {
  RunResult out;
  const std::vector<std::string> confs = ConfCols(data.publications);
  Timer t;
  ml::RowTable pub = ml::RowTable::FromRelation(data.publications);
  out.prep_seconds = t.Seconds();
  t.Restart();
  BENCH_ASSIGN(DenseMatrix covm, ml::CovSingleCore(pub, confs));
  out.matrix_seconds = t.Seconds();
  t.Restart();
  // Join with the ranking (single core, row at a time).
  ml::RowTable rank = ml::RowTable::FromRelation(data.ranking);
  int64_t selected = 0;
  for (int64_t i = 0; i < rank.num_rows(); ++i) {
    if (ValueToString(rank.row(i)[1]) == "A++") ++selected;
  }
  out.prep_seconds += t.Seconds();
  out.check = static_cast<double>(selected);
  (void)covm;
  return out;
}

// ---------------------------------------------------------------------------
// (4) Trip count — matrix addition
// ---------------------------------------------------------------------------

namespace {

std::vector<std::string> DestCols(const Relation& year) {
  std::vector<std::string> out;
  for (int c = 1; c < year.num_columns(); ++c) {
    out.push_back(year.schema().attribute(c).name);
  }
  return out;
}

double SumAll(const Relation& r, const std::vector<std::string>& cols) {
  double s = 0;
  for (const auto& c : cols) {
    const auto v = ToDoubleVector(**r.ColumnByName(c));
    for (double x : v) s += x;
  }
  return s;
}

}  // namespace

RunResult TripCountRmaPlus(const Relation& year1, const Relation& year2,
                           KernelPolicy policy) {
  RunResult out;
  RmaOptions opts = RmaOpts(policy);
  // year2's order attribute must not clash with year1's.
  Timer t;
  auto renamed = rel::Rename(year2, "rider", "rider2");
  if (!renamed.ok()) return Fail(renamed.status());
  BENCH_ASSIGN(Relation total,
               Add(year1, {"rider"}, *renamed, {"rider2"}, opts));
  out.matrix_seconds = t.Seconds();
  out.check = SumAll(total, DestCols(year1));
  return out;
}

RunResult TripCountAida(const Relation& year1, const Relation& year2) {
  RunResult out;
  const std::vector<std::string> dests = DestCols(year1);
  Timer t;
  ai::TabularData t1 = ai::TabularData::FromRelation(year1);
  ai::TabularData t2 = ai::TabularData::FromRelation(year2);
  BENCH_ASSIGN(DenseMatrix m1, t1.ToMatrix(dests));
  BENCH_ASSIGN(DenseMatrix m2, t2.ToMatrix(dests));
  BENCH_ASSIGN(DenseMatrix sum, blas::Add(m1, m2));
  Relation total = ai::TabularData::MatrixToRelation(sum, dests);
  out.matrix_seconds = t.Seconds();
  out.check = SumAll(total, dests);
  return out;
}

RunResult TripCountR(const Relation& year1, const Relation& year2,
                     const baselines::rlike::Options& opts) {
  RunResult out;
  const std::vector<std::string> dests = DestCols(year1);
  Timer t;
  rl::DataFrame d1 = rl::FromRelation(year1);
  rl::DataFrame d2 = rl::FromRelation(year2);
  out.load_seconds = t.Seconds();
  t.Restart();
  auto m1 = rl::AsMatrix(d1, dests, opts);
  if (!m1.ok()) return Fail(m1.status());
  auto m2 = rl::AsMatrix(d2, dests, opts);
  if (!m2.ok()) return Fail(m2.status());
  BENCH_ASSIGN(DenseMatrix sum, blas::Add(*m1, *m2));
  rl::DataFrame total = rl::AsDataFrame(sum, dests);
  out.matrix_seconds = t.Seconds();
  out.check = 0;
  for (const auto& c : dests) {
    const auto& v = total.Doubles(*total.ColumnIndex(c));
    for (double x : v) out.check += x;
  }
  return out;
}

RunResult TripCountMadlib(const Relation& year1, const Relation& year2) {
  RunResult out;
  const std::vector<std::string> dests = DestCols(year1);
  Timer t;
  ml::RowTable t1 = ml::RowTable::FromRelation(year1);
  ml::RowTable t2 = ml::RowTable::FromRelation(year2);
  BENCH_ASSIGN(DenseMatrix m1, ml::ToMatrix(t1, dests));
  BENCH_ASSIGN(DenseMatrix m2, ml::ToMatrix(t2, dests));
  DenseMatrix sum = ml::AddSingleCore(m1, m2);
  out.matrix_seconds = t.Seconds();
  out.check = 0;
  for (int64_t i = 0; i < sum.rows(); ++i) {
    for (int64_t j = 0; j < sum.cols(); ++j) out.check += sum(i, j);
  }
  return out;
}

}  // namespace rma::bench
