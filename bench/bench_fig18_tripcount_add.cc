// Figure 18: Trip count — matrix addition of two years of per-rider trip
// counts (10 destinations). A linear operation: RMA+ stays on BATs
// (no-copy) and beats AIDA/R (transfer) and MADlib; RMA+BAT beats RMA+MKL
// because the copy to the contiguous format cannot be amortized.
// Paper: 1M..15M riders.
#include "bench_common.h"
#include "rel/operators.h"
#include "workloads.h"

int main() {
  using namespace rma::bench;
  using namespace rma;
  const std::vector<int64_t> sizes = {Scaled(200000), Scaled(600000),
                                      Scaled(1000000), Scaled(1500000)};
  baselines::rlike::Options r_opts;

  PaperTable a("Figure 18a: Trip count (add), system comparison (seconds; "
               "paper: 1M..15M riders)",
               {"riders", "RMA+", "AIDA", "R", "MADlib"});
  PaperTable b("Figure 18b: Trip count, RMA+BAT vs RMA+MKL",
               {"riders", "RMA+BAT", "RMA+MKL"});
  for (int64_t n : sizes) {
    const Relation year1 = workload::GenerateTripCounts(n, 10, 101);
    const Relation year2 = workload::GenerateTripCounts(n, 10, 102);
    const RunResult rma = TripCountRmaPlus(year1, year2, KernelPolicy::kAuto);
    const RunResult aida = TripCountAida(year1, year2);
    const RunResult r = TripCountR(year1, year2, r_opts);
    const RunResult madlib = TripCountMadlib(year1, year2);
    a.AddRow({std::to_string(n),
              rma.status.ok() ? Secs(rma.total()) : "fail",
              aida.status.ok() ? Secs(aida.total()) : "fail",
              r.status.ok() ? Secs(r.total()) : "fail",
              madlib.status.ok() ? Secs(madlib.total()) : "fail"});
    const RunResult bat = TripCountRmaPlus(year1, year2, KernelPolicy::kBat);
    const RunResult mkl =
        TripCountRmaPlus(year1, year2, KernelPolicy::kContiguous);
    b.AddRow({std::to_string(n), Secs(bat.total()), Secs(mkl.total())});
  }
  a.AddNote("expected shape (paper Fig. 18a): RMA+ (no-copy BAT add) "
            "fastest; AIDA/R pay transfer/conversion; MADlib slowest");
  a.Print();
  b.AddNote("expected shape (paper Fig. 18b): RMA+BAT beats RMA+MKL in all "
            "settings — the transformation cannot be amortized for add");
  b.Print();
  return 0;
}
