// Figure 16: Journeys — multiple linear regression with 1..5 trips.
//
// All-numeric workload: AIDA's pointer passing keeps it close to RMA+
// (no boxing), R pays for single-core joins, MADlib spends most time on
// row-at-a-time distance computation. Paper: 15M one-trip journeys.
#include "bench_common.h"
#include "workloads.h"

int main() {
  using namespace rma::bench;
  using namespace rma;
  const int64_t journeys_n = Scaled(300000);
  const Relation journeys = workload::GenerateJourneys(journeys_n, 150, 81);
  baselines::rlike::Options r_opts;

  PaperTable a("Figure 16a: Journeys MLR, system comparison (seconds; "
               "paper: 15M one-trip journeys)",
               {"#trips", "RMA+", "AIDA", "R", "MADlib"});
  PaperTable b("Figure 16b: Journeys MLR, RMA+BAT vs RMA+MKL",
               {"#trips", "RMA+BAT", "RMA+MKL"});
  for (int k = 1; k <= 5; ++k) {
    const RunResult rma = JourneysRmaPlus(journeys, k, KernelPolicy::kAuto);
    const RunResult aida = JourneysAida(journeys, k);
    const RunResult r = JourneysR(journeys, k, r_opts);
    const RunResult madlib = JourneysMadlib(journeys, k);
    a.AddRow({std::to_string(k),
              rma.status.ok() ? Secs(rma.total()) : "fail",
              aida.status.ok() ? Secs(aida.total()) : "fail",
              r.status.ok() ? Secs(r.total()) : "fail",
              madlib.status.ok() ? Secs(madlib.total()) : "fail"});
    const RunResult bat = JourneysRmaPlus(journeys, k, KernelPolicy::kBat);
    const RunResult mkl = JourneysRmaPlus(journeys, k,
                                          KernelPolicy::kContiguous);
    b.AddRow({std::to_string(k), Secs(bat.total()), Secs(mkl.total())});
  }
  a.AddNote("expected shape (paper Fig. 16a): RMA+ and AIDA comparable "
            "(purely numeric data), R slower, MADlib slowest (distance "
            "computation dominates its relational part)");
  a.Print();
  b.AddNote("expected shape (paper Fig. 16b): RMA+MKL 1.4-1.9x ahead");
  b.Print();
  return 0;
}
