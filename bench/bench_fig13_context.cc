// Figure 13: the cost of maintaining contextual information.
//
// Relations with a single application column and an increasing number of
// order columns; `add` and `qqr` with and without the sort-avoidance
// optimizations of Sec. 8.1. Paper sizes: (a) 100K tuples x 200..1000 order
// attributes, (b) 1M x 20..100; scaled down by default (RMA_BENCH_SCALE
// raises them).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/exec_context.h"
#include "core/query_cache.h"
#include "core/rma.h"
#include "rel/operators.h"
#include "sql/database.h"
#include "workload/synthetic.h"

namespace rma::bench {
namespace {

Relation RenameOrderCols(const Relation& r, int order_cols) {
  std::vector<std::string> names;
  for (int c = 0; c < order_cols; ++c) names.push_back("p" + std::to_string(c));
  names.push_back("val");
  return rel::RenameAll(r, names).ValueOrDie();
}

void RunSubfigure(const char* title, int64_t tuples,
                  const std::vector<int>& order_cols) {
  PaperTable table(title, {"#order attrs", "add", "add relative-sort", "qqr",
                           "qqr w/o sort"});
  for (int k : order_cols) {
    const Relation r = workload::ManyOrderColumnsRelation(tuples, k, 7, 11, "r");
    const Relation s = RenameOrderCols(
        workload::ManyOrderColumnsRelation(tuples, k, 7, 13, "s"), k);
    std::vector<std::string> order_r;
    for (int c = 0; c < k; ++c) order_r.push_back("o" + std::to_string(c));
    std::vector<std::string> order_s;
    for (int c = 0; c < k; ++c) order_s.push_back("p" + std::to_string(c));

    RmaOptions plain;
    plain.sort = SortPolicy::kAlways;
    RmaOptions opt;
    opt.sort = SortPolicy::kOptimized;

    const double add_plain = TimeIt(
        [&] { Add(r, order_r, s, order_s, plain).ValueOrDie(); });
    const double add_opt = TimeIt(
        [&] { Add(r, order_r, s, order_s, opt).ValueOrDie(); });
    const double qqr_plain = TimeIt([&] { Qqr(r, order_r, plain).ValueOrDie(); });
    const double qqr_opt = TimeIt([&] { Qqr(r, order_r, opt).ValueOrDie(); });
    table.AddRow({std::to_string(k), Secs(add_plain), Secs(add_opt),
                  Secs(qqr_plain), Secs(qqr_opt)});
  }
  table.AddNote("expected shape (paper Fig. 13): unoptimized cost grows with "
                "the order-schema width; the optimized variants stay flat");
  table.Print();
}

/// Back-to-back operations over the same relation on a shared ExecContext:
/// the prepared-argument cache serves the second operation's sort
/// permutation, eliminating its sort stage entirely.
void RunPreparedCache(int64_t tuples, const std::vector<int>& order_cols) {
  PaperTable table("Prepared-argument cache: qqr then rqr over one relation "
                   "(shared execution context)",
                   {"#order attrs", "1st op sort", "2nd op sort (cached)",
                    "2nd op sort (no cache)"});
  for (int k : order_cols) {
    const Relation r = workload::ManyOrderColumnsRelation(tuples, k, 7, 11, "r");
    std::vector<std::string> order;
    for (int c = 0; c < k; ++c) order.push_back("o" + std::to_string(c));

    ExecContext shared{RmaOptions{}};
    RmaStats first;
    shared.mutable_options().stats = &first;
    RmaUnary(&shared, MatrixOp::kQqr, r, order).ValueOrDie();
    RmaStats second;
    shared.mutable_options().stats = &second;
    RmaUnary(&shared, MatrixOp::kRqr, r, order).ValueOrDie();

    RmaOptions uncached;
    uncached.enable_prepared_cache = false;
    ExecContext cold(uncached);
    cold.mutable_options().stats = nullptr;
    RmaUnary(&cold, MatrixOp::kQqr, r, order).ValueOrDie();
    RmaStats cold_second;
    cold.mutable_options().stats = &cold_second;
    RmaUnary(&cold, MatrixOp::kRqr, r, order).ValueOrDie();

    table.AddRow({std::to_string(k), Secs(first.sort_seconds),
                  Secs(second.sort_seconds),
                  Secs(cold_second.sort_seconds)});
  }
  table.AddNote("the shared context reuses the sort permutation: the second "
                "operation's sort stage drops to zero");
  table.Print();
}

/// Database-level query cache: the same SQL statement issued repeatedly
/// against one Database. The first run parses, plans, and sorts; the
/// following runs hit the plan cache (skipping binding/rewriting/planning)
/// and the prepared-argument cache (skipping the order-schema sort).
void RunQueryCacheEffectiveness(int64_t tuples,
                                const std::vector<int>& order_cols) {
  PaperTable table("Query-cache effectiveness: repeated identical SQL "
                   "statement (database-level cache)",
                   {"#order attrs", "1st run (cold)", "2nd run (warm)",
                    "speedup", "plan hit/miss", "prep hit/miss/evict"});
  for (int k : order_cols) {
    sql::Database db;
    db.rma_options.max_threads = 1;
    db.Register("r", workload::ManyOrderColumnsRelation(tuples, k, 7, 11,
                                                        "r"))
        .Abort();
    std::string by;
    for (int c = 0; c < k; ++c) by += (c > 0 ? ", o" : "o") + std::to_string(c);
    const std::string q = "SELECT * FROM QQR(r BY (" + by + "))";
    const double cold = TimeIt([&] { db.Query(q).ValueOrDie(); });
    const double warm = TimeIt([&] { db.Query(q).ValueOrDie(); });
    const QueryCache::Counters c = db.query_cache()->counters();
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.1fx",
                  warm > 0 ? cold / warm : 0.0);
    table.AddRow({std::to_string(k), Secs(cold), Secs(warm), speedup,
                  std::to_string(c.plan_hits) + "/" +
                      std::to_string(c.plan_misses),
                  std::to_string(c.prepared_hits) + "/" +
                      std::to_string(c.prepared_misses) + "/" +
                      std::to_string(c.evictions)});
  }
  table.AddNote("the warm run hits the plan cache and reuses the sort "
                "permutation: wider order schemas widen the gap because the "
                "avoided sort dominates");
  table.Print();
}

}  // namespace
}  // namespace rma::bench

int main() {
  using namespace rma::bench;
  RunSubfigure("Figure 13a: contextual information, 20K tuples "
               "(paper: 100K tuples, 200..1000 attrs)",
               Scaled(20000), {40, 80, 120, 160, 200});
  RunSubfigure("Figure 13b: contextual information, 200K tuples "
               "(paper: 1M tuples, 20..100 attrs)",
               Scaled(200000), {4, 8, 12, 16, 20});
  RunPreparedCache(Scaled(20000), {40, 120, 200});
  RunQueryCacheEffectiveness(Scaled(20000), {40, 120, 200});
  return 0;
}
