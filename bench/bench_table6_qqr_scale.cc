// Table 6: qqr scalability — R vs RMA+ over growing relations.
//
// Paper: 5M/50M/100M tuples x 10/40/70 attrs; R fails (out of memory) on
// the largest configurations while RMA+ switches from the contiguous (MKL)
// kernels to the BAT Gram-Schmidt implementation and keeps going. Scaled:
// 100K/300K/600K tuples with proportional memory budgets.
#include <string>
#include <vector>

#include "baselines/rlike/rlike.h"
#include "bench_common.h"
#include "core/rma.h"
#include "matrix/qr.h"
#include "workload/synthetic.h"

namespace rma::bench {
namespace {

std::vector<std::string> AppCols(int k) {
  std::vector<std::string> out;
  for (int c = 0; c < k; ++c) out.push_back("a" + std::to_string(c));
  return out;
}

std::string RunR(const Relation& rel, int cols,
                 const baselines::rlike::Options& opts) {
  namespace rl = baselines::rlike;
  double sec = 0;
  rl::DataFrame df = rl::FromRelation(rel);
  Status failed;
  sec = TimeIt([&] {
    auto m = rl::AsMatrix(df, AppCols(cols), opts);
    if (!m.ok()) {
      failed = m.status();
      return;
    }
    DenseMatrix q;
    DenseMatrix r;
    // R's default qr() is LINPACK's single-threaded DQRDC; MKL (and our
    // substitute) spread the reflector updates across all cores.
    HouseholderQr(*m, &q, &r, /*threads=*/1).Abort();
    rl::DataFrame out = rl::AsDataFrame(q, AppCols(cols));
  });
  return failed.ok() ? Secs(sec) : "fail";
}

std::string RunRmaPlus(const Relation& rel, int64_t budget_bytes) {
  RmaOptions opts;
  opts.sort = SortPolicy::kOptimized;
  opts.kernel = KernelPolicy::kAuto;
  opts.contiguous_budget_bytes = budget_bytes;
  const double sec = TimeIt([&] { Qqr(rel, {"id"}, opts).ValueOrDie(); });
  return Secs(sec);
}

}  // namespace
}  // namespace rma::bench

int main() {
  using namespace rma::bench;
  using namespace rma;
  // Memory budgets scaled with the data: RMA+ falls back to BATs beyond its
  // contiguous budget; R simply fails.
  const int64_t rma_budget = static_cast<int64_t>(150e6 * ScaleFactor());
  baselines::rlike::Options r_opts;
  r_opts.memory_budget_bytes = static_cast<int64_t>(300e6 * ScaleFactor());

  PaperTable table(
      "Table 6: qqr runtimes, R vs RMA+ (paper: 5M-100M tuples; scaled "
      "100K-600K with proportional memory budgets)",
      {"tuples", "attrs", "R", "RMA+"});
  for (int64_t rows : {Scaled(100000), Scaled(300000), Scaled(600000)}) {
    for (int cols : {10, 40, 70}) {
      const Relation rel = workload::UniformRelation(
          rows, cols, 41, 0, 10000, true, "r");
      table.AddRow({std::to_string(rows), std::to_string(cols),
                    RunR(rel, cols, r_opts), RunRmaPlus(rel, rma_budget)});
    }
  }
  table.AddNote("expected shape (paper Table 6): RMA+ beats R everywhere; R "
                "fails on the largest sizes; RMA+ jumps when it switches to "
                "the BAT Gram-Schmidt algorithm but completes");
  table.Print();
  return 0;
}
