// Sharded stage execution: row-range partitioned Gram / covariance-style
// cross products (tree-reduce merge) and element-wise addition (concat
// merge) versus the unsharded staged path.
//
// The sharded column uses the planner's own decision (max_shards at its
// default, thread budget varied); the unsharded column pins max_shards=1 so
// both run the identical kernels and differ only in the shard lowering. The
// expected shape: at thread budget >= 4 the tree-reduced Gram approaches
// serial / shards (the per-shard SYRK dominates, the O(cols^2 log s) merge
// is noise); at budget 1 the planner refuses to shard and the two columns
// converge. Every BenchJson row carries the executed shard count so the
// perf gate can pair sharded/unsharded variants across baselines.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/exec_context.h"
#include "core/planner.h"
#include "core/rma.h"
#include "matrix/parallel.h"
#include "workload/synthetic.h"

namespace rma::bench {
namespace {

/// Copy of `r` with its key attribute renamed (add/sub require disjoint
/// order schemas between the two arguments).
Relation WithKeyName(const Relation& r, const std::string& key,
                     std::string name) {
  std::vector<Attribute> attrs;
  std::vector<BatPtr> cols;
  for (int i = 0; i < r.schema().num_attributes(); ++i) {
    Attribute a = r.schema().attribute(i);
    if (i == 0) a.name = key;
    attrs.push_back(std::move(a));
    cols.push_back(r.column(i));
  }
  return Relation::Make(Schema::Make(std::move(attrs)).ValueOrDie(),
                        std::move(cols), std::move(name))
      .ValueOrDie();
}

struct Measured {
  double seconds = 0;
  int shards = 1;
};

/// Best-of-N timing of one binary op under `opts`; also reports the shard
/// count the recorded plan executed with.
Measured TimeOp(const RmaOptions& opts, MatrixOp op, const Relation& r,
                const std::vector<std::string>& order_r, const Relation& s,
                const std::vector<std::string>& order_s) {
  Measured m;
  m.seconds = TimeBest(BenchReps(3), [&] {
    ExecContext ctx(opts);
    RmaBinary(&ctx, op, r, order_r, s, order_s).ValueOrDie();
    if (!ctx.plans().empty()) m.shards = ctx.plans().back().shards;
  });
  return m;
}

void AddRow(PaperTable& table, const std::string& label, int budget,
            const Measured& serial, const Measured& sharded,
            const std::string& op, const std::string& shape, int64_t bytes) {
  char speedup[32];
  std::snprintf(speedup, sizeof(speedup), "%.2fx",
                sharded.seconds > 0 ? serial.seconds / sharded.seconds : 0.0);
  table.AddRow({std::to_string(budget), Secs(serial.seconds),
                Secs(sharded.seconds), speedup,
                std::to_string(sharded.shards)});
  const std::string b = std::to_string(budget);
  BenchJson::Record(label + "/threads=" + b + "/unsharded", op, shape,
                    serial.seconds, bytes, "auto", serial.shards);
  BenchJson::Record(label + "/threads=" + b + "/sharded", op, shape,
                    sharded.seconds, bytes, "auto", sharded.shards);
}

void RunGram(int64_t n, int cols) {
  PaperTable table(
      "Sharded Gram matrix (CPD self, tree-reduce merge) vs. unsharded",
      {"thread budget", "unsharded", "sharded", "speedup", "shards"});
  const Relation r = workload::UniformRelation(n, cols, /*seed=*/21, -10.0,
                                               10.0, /*sorted=*/true, "g");
  const std::string shape = std::to_string(n) + "x" + std::to_string(cols);
  const int64_t bytes = n * cols * static_cast<int64_t>(sizeof(double));
  for (int budget : {1, 2, 4}) {
    RmaOptions serial_opts;
    serial_opts.max_threads = budget;
    serial_opts.max_shards = 1;
    RmaOptions shard_opts;
    shard_opts.max_threads = budget;
    const Measured serial =
        TimeOp(serial_opts, MatrixOp::kCpd, r, {"id"}, r, {"id"});
    const Measured sharded =
        TimeOp(shard_opts, MatrixOp::kCpd, r, {"id"}, r, {"id"});
    AddRow(table, "shard/gram", budget, serial, sharded, "cpd-self", shape,
           bytes);
  }
  table.AddNote("hardware threads on this machine: " +
                std::to_string(DefaultThreadCount()) +
                "; at budget 1 the planner refuses to shard and the columns "
                "converge");
  table.Print();
}

void RunCov(int64_t n, int cols) {
  PaperTable table(
      "Sharded covariance-style cross product (CPD r,s) vs. unsharded",
      {"thread budget", "unsharded", "sharded", "speedup", "shards"});
  const Relation r = workload::UniformRelation(n, cols, /*seed=*/22, -10.0,
                                               10.0, /*sorted=*/true, "r");
  const Relation s = workload::UniformRelation(n, cols, /*seed=*/23, -10.0,
                                               10.0, /*sorted=*/true, "s");
  const std::string shape = std::to_string(n) + "x" + std::to_string(cols);
  const int64_t bytes =
      2 * n * cols * static_cast<int64_t>(sizeof(double));
  for (int budget : {1, 4}) {
    RmaOptions serial_opts;
    serial_opts.max_threads = budget;
    serial_opts.max_shards = 1;
    RmaOptions shard_opts;
    shard_opts.max_threads = budget;
    const Measured serial =
        TimeOp(serial_opts, MatrixOp::kCpd, r, {"id"}, s, {"id"});
    const Measured sharded =
        TimeOp(shard_opts, MatrixOp::kCpd, r, {"id"}, s, {"id"});
    AddRow(table, "shard/cov", budget, serial, sharded, "cpd", shape, bytes);
  }
  table.Print();
}

void RunAdd(int64_t n, int cols) {
  PaperTable table(
      "Sharded element-wise addition (concat merge) vs. unsharded",
      {"thread budget", "unsharded", "sharded", "speedup", "shards"});
  const Relation r = workload::UniformRelation(n, cols, /*seed=*/24, -10.0,
                                               10.0, /*sorted=*/true, "r");
  const Relation s = WithKeyName(
      workload::UniformRelation(n, cols, /*seed=*/25, -10.0, 10.0,
                                /*sorted=*/true, "s"),
      "id2", "s");
  const std::string shape = std::to_string(n) + "x" + std::to_string(cols);
  const int64_t bytes =
      2 * n * cols * static_cast<int64_t>(sizeof(double));
  for (int budget : {1, 4}) {
    RmaOptions serial_opts;
    serial_opts.max_threads = budget;
    serial_opts.max_shards = 1;
    RmaOptions shard_opts;
    shard_opts.max_threads = budget;
    const Measured serial =
        TimeOp(serial_opts, MatrixOp::kAdd, r, {"id"}, s, {"id2"});
    const Measured sharded =
        TimeOp(shard_opts, MatrixOp::kAdd, r, {"id"}, s, {"id2"});
    AddRow(table, "shard/add", budget, serial, sharded, "add", shape, bytes);
  }
  table.AddNote("concat-merged results are bit-exact vs. unsharded; the "
                "win is memory-bandwidth bound");
  table.Print();
}

}  // namespace
}  // namespace rma::bench

int main(int argc, char** argv) {
  using namespace rma::bench;
  BenchJson::Init("bench_shard", &argc, argv);
  RunGram(Scaled(400000), /*cols=*/32);
  RunCov(Scaled(300000), /*cols=*/24);
  RunAdd(Scaled(2000000), /*cols=*/8);
  BenchJson::Flush();
  return 0;
}
