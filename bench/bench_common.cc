#include "bench_common.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#include "core/calibration.h"
#include "matrix/simd.h"

namespace rma::bench {

namespace {

struct BenchJsonState {
  std::mutex mu;
  bool enabled = false;
  std::string bench_name;
  struct Entry {
    std::string name;
    std::string op;
    std::string shape;
    double ns = 0;
    int64_t bytes = 0;
    std::string kernel;
    int shards = 0;
  };
  std::vector<Entry> entries;
  size_t flushed_entries = 0;  ///< Flush is a no-op until new entries arrive
};

BenchJsonState& JsonState() {
  static BenchJsonState* state = new BenchJsonState();  // leaked: atexit-safe
  return *state;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

/// Cache regime of an entry touching `bytes` bytes, against the machine's
/// detected L2/L3 sizes — same split the calibration breakpoints use.
const char* RegimeOfBytes(int64_t bytes) {
  if (bytes <= 0) return "";
  static const CacheSizes caches = DetectCacheSizes();
  if (bytes <= caches.l2_bytes) return "l2";
  if (bytes <= caches.l3_bytes) return "l3";
  return "dram";
}

}  // namespace

void BenchJson::Init(const std::string& bench_name, int* argc, char** argv) {
  BenchJsonState& state = JsonState();
  std::lock_guard<std::mutex> lock(state.mu);
  state.bench_name = bench_name;
  const char* env = std::getenv("RMA_BENCH_JSON");
  if (env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0) {
    state.enabled = true;
  }
  if (argc != nullptr) {
    int out = 1;
    for (int i = 1; i < *argc; ++i) {
      if (std::strcmp(argv[i], "--json") == 0) {
        state.enabled = true;
      } else {
        argv[out++] = argv[i];
      }
    }
    for (int i = out; i < *argc; ++i) argv[i] = nullptr;
    *argc = out;
  }
  if (state.enabled) std::atexit(&BenchJson::Flush);
}

bool BenchJson::enabled() {
  BenchJsonState& state = JsonState();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.enabled;
}

void BenchJson::Record(const std::string& name, const std::string& op,
                       const std::string& shape, double seconds, int64_t bytes,
                       const std::string& kernel, int shards) {
  BenchJsonState& state = JsonState();
  std::lock_guard<std::mutex> lock(state.mu);
  if (!state.enabled) return;
  state.entries.push_back(
      {name, op, shape, seconds * 1e9, bytes, kernel, shards});
}

void BenchJson::Flush() {
  BenchJsonState& state = JsonState();
  std::lock_guard<std::mutex> lock(state.mu);
  if (!state.enabled || state.bench_name.empty() || state.entries.empty() ||
      state.entries.size() == state.flushed_entries) {
    return;
  }
  state.flushed_entries = state.entries.size();
  const std::string path = "BENCH_" + state.bench_name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"scale\": %g,\n"
               "  \"simd\": \"%s\",\n  \"entries\": [\n",
               JsonEscape(state.bench_name).c_str(), ScaleFactor(),
               simd::Describe().c_str());
  for (size_t i = 0; i < state.entries.size(); ++i) {
    const auto& e = state.entries[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"op\": \"%s\", \"shape\": \"%s\", "
                 "\"ns\": %.3f, \"bytes\": %lld, \"kernel\": \"%s\", "
                 "\"regime\": \"%s\", \"shards\": %d}%s\n",
                 JsonEscape(e.name).c_str(), JsonEscape(e.op).c_str(),
                 JsonEscape(e.shape).c_str(), e.ns,
                 static_cast<long long>(e.bytes), JsonEscape(e.kernel).c_str(),
                 RegimeOfBytes(e.bytes), e.shards,
                 i + 1 < state.entries.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("bench: wrote %s (%zu entries)\n", path.c_str(),
              state.entries.size());
}

double ScaleFactor() {
  const char* env = std::getenv("RMA_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double v = std::atof(env);
  return v > 0 ? v : 1.0;
}

int64_t Scaled(int64_t rows) {
  return std::max<int64_t>(16, static_cast<int64_t>(rows * ScaleFactor()));
}

double TimeIt(const std::function<void()>& fn) {
  Timer t;
  fn();
  return t.Seconds();
}

double TimeBest(int reps, const std::function<void()>& fn) {
  double best = TimeIt(fn);
  for (int r = 1; r < reps; ++r) best = std::min(best, TimeIt(fn));
  return best;
}

int BenchReps(int default_reps) {
  const char* env = std::getenv("RMA_BENCH_REPS");
  if (env == nullptr || env[0] == '\0') return default_reps;
  const int v = std::atoi(env);
  return v > 0 ? v : default_reps;
}

std::string Secs(double s) {
  char buf[32];
  if (s < 0.01) {
    std::snprintf(buf, sizeof(buf), "%.4f", s);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f", s);
  }
  return buf;
}

std::string Pct(double fraction) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%.0f", fraction * 100.0);
  return buf;
}

PaperTable::PaperTable(std::string title, std::vector<std::string> headers)
    : title_(std::move(title)), headers_(std::move(headers)) {}

void PaperTable::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void PaperTable::AddNote(std::string note) {
  notes_.push_back(std::move(note));
}

void PaperTable::Print() const {
  std::printf("\n== %s ==\n", title_.c_str());
  std::vector<size_t> width(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::printf("%-*s  ", static_cast<int>(width[c]), row[c].c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  size_t total = 0;
  for (size_t w : width) total += w + 2;
  std::printf("%s\n", std::string(total, '-').c_str());
  for (const auto& row : rows_) print_row(row);
  for (const auto& n : notes_) std::printf("note: %s\n", n.c_str());
  std::fflush(stdout);
}

}  // namespace rma::bench
