#include "bench_common.h"

#include <algorithm>
#include <cstdio>

namespace rma::bench {

double ScaleFactor() {
  const char* env = std::getenv("RMA_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double v = std::atof(env);
  return v > 0 ? v : 1.0;
}

int64_t Scaled(int64_t rows) {
  return std::max<int64_t>(16, static_cast<int64_t>(rows * ScaleFactor()));
}

double TimeIt(const std::function<void()>& fn) {
  Timer t;
  fn();
  return t.Seconds();
}

std::string Secs(double s) {
  char buf[32];
  if (s < 0.01) {
    std::snprintf(buf, sizeof(buf), "%.4f", s);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f", s);
  }
  return buf;
}

std::string Pct(double fraction) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%.0f", fraction * 100.0);
  return buf;
}

PaperTable::PaperTable(std::string title, std::vector<std::string> headers)
    : title_(std::move(title)), headers_(std::move(headers)) {}

void PaperTable::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void PaperTable::AddNote(std::string note) {
  notes_.push_back(std::move(note));
}

void PaperTable::Print() const {
  std::printf("\n== %s ==\n", title_.c_str());
  std::vector<size_t> width(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::printf("%-*s  ", static_cast<int>(width[c]), row[c].c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  size_t total = 0;
  for (size_t w : width) total += w + 2;
  std::printf("%s\n", std::string(total, '-').c_str());
  for (const auto& row : rows_) print_row(row);
  for (const auto& n : notes_) std::printf("note: %s\n", n.c_str());
  std::fflush(stdout);
}

}  // namespace rma::bench
