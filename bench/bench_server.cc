// Server front-end under concurrent load: N clients over loopback running
// the mixed Fig. 13 (Gram matrix / QR) + Fig. 15 (OLS) statement shapes
// against one rma server, versus the same statements executed in-process.
//
// What the numbers mean: "in-process" is Database::Execute called N*reps
// times serially from one thread — pure engine time, no protocol. The
// server column adds framing, socket hops, session bookkeeping, and the
// admission gate; with an admission budget below the client count it also
// shows queuing (admission waits > 0). The bench asserts the two paths
// return identical row counts and that the admission high-water mark never
// exceeds the configured budget — the demo of ISSUE 9's acceptance bar.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "client/client.h"
#include "server/server.h"
#include "sql/database.h"
#include "workload/synthetic.h"

namespace rma::bench {
namespace {

/// The mixed workload every client runs: Gram-matrix shapes over m (the
/// Fig. 13 micro-benchmark family) and the OLS normal-equations plan over
/// m and v (Fig. 15). Expected result row counts ride along so the bench
/// can assert streamed results without re-running the engine.
struct Statement {
  std::string sql;
  int64_t rows;
};

std::vector<Statement> MixedWorkload(int app_cols, int64_t tuples) {
  return {
      {"SELECT * FROM MMU(TRA(m BY id) BY C, m BY id);", app_cols},
      {"SELECT * FROM CPD(m BY id, m BY id);", app_cols},
      {"SELECT * FROM QQR(m BY id);", tuples},
      {"SELECT * FROM MMU(INV(CPD(m BY id, m BY id) BY C) BY C,"
       " CPD(m BY id, v BY id) BY C);",
       app_cols},
  };
}

sql::Database MakeDatabase(int64_t tuples, int app_cols) {
  sql::Database db;
  db.Register("m", workload::UniformRelation(tuples, app_cols, /*seed=*/42,
                                             0.0, 10000.0, /*sorted=*/false,
                                             "m"))
      .Abort();
  db.Register("v", workload::UniformRelation(tuples, 1, /*seed=*/7, 0.0,
                                             10000.0, /*sorted=*/false, "v"))
      .Abort();
  return db;
}

double RunInProcess(sql::Database& db, const std::vector<Statement>& work,
                    int clients, int reps, std::atomic<int64_t>* mismatches) {
  return TimeIt([&] {
    for (int c = 0; c < clients; ++c) {
      for (int rep = 0; rep < reps; ++rep) {
        for (const Statement& stmt : work) {
          auto result = db.Execute(stmt.sql);
          if (!result.ok() || result->num_rows() != stmt.rows) {
            ++*mismatches;
          }
        }
      }
    }
  });
}

double RunViaServer(server::Server& server, const std::vector<Statement>& work,
                    int clients, int reps, std::atomic<int64_t>* mismatches) {
  return TimeIt([&] {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        auto conn = client::Client::Connect("127.0.0.1", server.port());
        if (!conn.ok()) {
          ++*mismatches;
          return;
        }
        client::Client cl = std::move(*conn);
        // Half the clients replay through prepared handles, half through
        // one-shot EXECUTE — both paths share the server's plan cache.
        std::vector<uint64_t> handles;
        if (c % 2 == 0) {
          for (const Statement& stmt : work) {
            auto h = cl.Prepare(stmt.sql);
            if (!h.ok()) {
              ++*mismatches;
              return;
            }
            handles.push_back(*h);
          }
        }
        for (int rep = 0; rep < reps; ++rep) {
          for (size_t s = 0; s < work.size(); ++s) {
            auto result = handles.empty() ? cl.Execute(work[s].sql)
                                          : cl.ExecutePrepared(handles[s]);
            if (!result.ok() ||
                result->rows != static_cast<uint64_t>(work[s].rows)) {
              ++*mismatches;
            }
          }
        }
      });
    }
    for (auto& t : threads) t.join();
  });
}

void RunServerBench(int64_t tuples, int app_cols, int clients, int reps) {
  PaperTable table(
      "Concurrent clients through the server front-end vs. in-process "
      "execution (mixed Fig. 13 + Fig. 15 statements, " +
          std::to_string(clients) + " clients x " + std::to_string(reps) +
          " reps)",
      {"admission budget", "in-process", "server", "peak in-flight",
       "admission waits", "rows streamed"});
  const std::vector<Statement> work = MixedWorkload(app_cols, tuples);
  const std::string shape =
      std::to_string(tuples) + "x" + std::to_string(app_cols);
  std::atomic<int64_t> mismatches{0};
  for (int budget : {0, 2, 4}) {  // 0 = thread budget (default)
    sql::Database db = MakeDatabase(tuples, app_cols);
    const double in_process =
        RunInProcess(db, work, clients, reps, &mismatches);

    server::ServerOptions opts;
    opts.port = 0;
    opts.max_inflight_statements = budget;
    opts.max_sessions = clients + 4;
    server::Server server(&db, opts);
    server.Start().Abort();
    const double via_server =
        RunViaServer(server, work, clients, reps, &mismatches);
    server.Stop();
    const server::ServerStats stats = server.stats();

    const int capacity = budget > 0 ? budget : stats.peak_in_flight;
    if (stats.peak_in_flight > capacity) {
      std::fprintf(stderr,
                   "FAIL: admission peak %d exceeded the budget %d\n",
                   stats.peak_in_flight, capacity);
      std::exit(1);
    }
    const std::string label =
        budget > 0 ? std::to_string(budget) : "thread budget";
    table.AddRow({label, Secs(in_process), Secs(via_server),
                  std::to_string(stats.peak_in_flight),
                  std::to_string(stats.admission_waits),
                  std::to_string(stats.rows_streamed)});
    BenchJson::Record("server_mixed_budget_" + label, "server", shape,
                      via_server, 0, "", 0);
    BenchJson::Record("server_mixed_inprocess", "execute", shape, in_process,
                      0, "", 0);
  }
  if (mismatches.load() != 0) {
    std::fprintf(stderr,
                 "FAIL: %lld statements returned wrong results or errors\n",
                 static_cast<long long>(mismatches.load()));
    std::exit(1);
  }
  table.AddNote(
      "server column includes framing, loopback sockets, session "
      "bookkeeping, and admission queuing; identical results asserted "
      "against the in-process path.");
  table.Print();
}

}  // namespace
}  // namespace rma::bench

int main(int argc, char** argv) {
  rma::bench::BenchJson::Init("bench_server", &argc, argv);
  const int64_t tuples = rma::bench::Scaled(20000);
  rma::bench::RunServerBench(tuples, /*app_cols=*/8, /*clients=*/8,
                             /*reps=*/3);
  return 0;
}
