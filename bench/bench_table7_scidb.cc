// Table 7: add followed by a selection — RMA+ vs a SciDB-style array
// engine. SciDB must run an array join (coordinate alignment) before it can
// add two arrays; RMA+ adds column pairs directly. Paper: 1M..15M tuples,
// RMA+ 4.6s..1m39s vs SciDB 1m21s..18m23s (an order of magnitude).
#include "baselines/scidblike/scidb.h"
#include "bench_common.h"
#include "core/rma.h"
#include "rel/operators.h"
#include "storage/bat_ops.h"
#include "workload/synthetic.h"

int main() {
  using namespace rma::bench;
  using namespace rma;
  namespace sc = baselines::scidblike;
  PaperTable table(
      "Table 7: add followed by a selection — RMA+ vs SciDB "
      "(paper: 1M..15M tuples)",
      {"tuples", "RMA+", "SciDB"});
  for (int64_t rows : {Scaled(100000), Scaled(500000), Scaled(1000000),
                       Scaled(1500000)}) {
    const Relation r =
        workload::UniformRelation(rows, 10, 51, 0, 10000, true, "r");
    Relation s = workload::UniformRelation(rows, 10, 52, 0, 10000, true, "s");
    s = rel::Rename(s, "id", "id2").ValueOrDie();
    RmaOptions opts;
    opts.sort = SortPolicy::kOptimized;
    const double rma_sec = TimeIt([&] {
      const Relation sum = Add(r, {"id"}, s, {"id2"}, opts).ValueOrDie();
      (void)bat_ops::SelectNumeric(**sum.ColumnByName("a0"), ">", 15000.0);
    });
    // SciDB: arrays are pre-loaded; the query runs the array join + filter.
    const sc::ChunkedArray a = *sc::ChunkedArray::FromRelation(r, "id");
    const sc::ChunkedArray b = *sc::ChunkedArray::FromRelation(s, "id2");
    const double scidb_sec = TimeIt([&] {
      const sc::ChunkedArray sum = *a.AddJoin(b);
      sum.FilterToRelation("a0", ">", 15000.0).ValueOrDie();
    });
    table.AddRow({std::to_string(rows), Secs(rma_sec), Secs(scidb_sec)});
  }
  table.AddNote("expected shape (paper Table 7): RMA+ outperforms SciDB by "
                "roughly an order of magnitude; the gap is the array join");
  table.Print();
  return 0;
}
