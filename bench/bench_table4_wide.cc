// Table 4: add over wide relations (1000 tuples, 1K..10K application
// attributes) in RMA+. Paper: runtime per column grows with the attribute
// count, but the column store handles thousands of attributes.
#include <vector>

#include "bench_common.h"
#include "core/rma.h"
#include "rel/operators.h"
#include "workload/synthetic.h"

int main() {
  using namespace rma::bench;
  using namespace rma;
  PaperTable table("Table 4: add over wide relations in RMA+ "
                   "(1000 tuples; paper sizes)",
                   {"#attr", "sec"});
  const int64_t tuples = 1000;
  for (int k = 1000; k <= 10000; k += 1000) {
    const int cols = static_cast<int>(Scaled(k));
    const Relation r =
        workload::UniformRelation(tuples, cols, 21, 0, 10000, true, "r");
    Relation s =
        workload::UniformRelation(tuples, cols, 22, 0, 10000, true, "s");
    s = rel::Rename(s, "id", "id2").ValueOrDie();
    RmaOptions opts;
    opts.sort = SortPolicy::kOptimized;
    const double sec =
        TimeIt([&] { Add(r, {"id"}, s, {"id2"}, opts).ValueOrDie(); });
    table.AddRow({std::to_string(cols), Secs(sec)});
  }
  table.AddNote("expected shape (paper Table 4): 0.6s @1K to 62s @10K on the "
                "paper's hardware; the per-attribute cost rises with width");
  table.Print();
  return 0;
}
