// Batched statement execution: the concurrent stage scheduler and
// Database::ExecuteBatch versus one-at-a-time Execute.
//
// Independent statements (QQR/CPD over disjoint relations) run concurrently
// over one shared ExecContext and query cache; the thread budget is split
// across in-flight statements. The expected shape: at thread budget >= 4 on
// a multi-core machine the batched wall clock approaches serial / cores;
// on a single hardware thread the two columns converge (the scheduler adds
// only task-dispatch overhead). The mixed-script scenario interleaves
// CTAS/DROP with analytic SELECTs: per-statement effect analysis schedules
// the dependency DAG, so DDL overlaps the SELECTs that don't touch its
// table instead of serializing the whole script.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/query_cache.h"
#include "matrix/parallel.h"
#include "rel/operators.h"
#include "sql/database.h"
#include "workload/synthetic.h"

namespace rma::bench {
namespace {

sql::Database MakeDatabase(int64_t tuples, int relations, int app_cols,
                           int max_threads) {
  sql::Database db;
  db.rma_options.max_threads = max_threads;
  for (int i = 0; i < relations; ++i) {
    const std::string name = "t" + std::to_string(i);
    db.Register(name,
                workload::UniformRelation(tuples, app_cols,
                                          /*seed=*/11 + i, -10.0, 10.0,
                                          /*sorted=*/false, name))
        .Abort();
  }
  return db;
}

std::vector<std::string> MakeStatements(int relations) {
  std::vector<std::string> out;
  for (int i = 0; i < relations; ++i) {
    const std::string t = "t" + std::to_string(i);
    out.push_back("SELECT * FROM QQR(" + t + " BY id)");
    out.push_back("SELECT * FROM CPD(" + t + " BY id, " + t + " BY id)");
  }
  return out;
}

void RunBatchVsSerial(int64_t tuples, int relations, int app_cols) {
  PaperTable table(
      "Batched independent statements vs. serial execution "
      "(Database::ExecuteBatch, shared query cache)",
      {"thread budget", "serial", "batched", "speedup", "plan hit/miss"});
  const std::string shape =
      std::to_string(tuples) + "x" + std::to_string(app_cols);
  const int64_t bytes = tuples * app_cols * static_cast<int64_t>(sizeof(double));
  for (int budget : {1, 2, 4}) {
    const std::vector<std::string> statements = MakeStatements(relations);
    // Best of 3 cold runs (fresh databases each repetition, so every run
    // plans from scratch): single wall-clock samples of millisecond
    // workloads swing too much for the CI perf gate to diff. RMA_BENCH_REPS
    // raises the count when regenerating baselines.
    const int kReps = BenchReps(3);
    double serial = 0;
    double batched = 0;
    QueryCache::Counters c;
    for (int rep = 0; rep < kReps; ++rep) {
      sql::Database serial_db =
          MakeDatabase(tuples, relations, app_cols, budget);
      sql::Database batch_db =
          MakeDatabase(tuples, relations, app_cols, budget);
      const double s = TimeIt([&] {
        for (const std::string& stmt : statements) {
          serial_db.Execute(stmt).ValueOrDie();
        }
      });
      const double b = TimeIt([&] {
        for (auto& r : batch_db.ExecuteBatch(statements)) {
          r.ValueOrDie();
        }
      });
      if (rep == 0 || s < serial) serial = s;
      if (rep == 0 || b < batched) batched = b;
      c = batch_db.query_cache()->counters();  // cold-cache hit/miss split
    }
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.2fx",
                  batched > 0 ? serial / batched : 0.0);
    table.AddRow({std::to_string(budget), Secs(serial), Secs(batched), speedup,
                  std::to_string(c.plan_hits) + "/" +
                      std::to_string(c.plan_misses)});
    const std::string b = std::to_string(budget);
    BenchJson::Record("batch/threads=" + b + "/serial", "qqr+cpd", shape,
                      serial, bytes, "auto");
    BenchJson::Record("batch/threads=" + b + "/batched", "qqr+cpd", shape,
                      batched, bytes, "auto");
  }
  table.AddNote("hardware threads on this machine: " +
                std::to_string(DefaultThreadCount()) +
                "; the batched column wins once the budget and the cores "
                "allow real overlap");
  table.Print();
}

void RunMixedScript(int64_t tuples, int relations, int app_cols) {
  // Mixed DDL+SELECT script: `relations` disjoint chains of
  // CTAS(QQR(t_i)) → SELECT over the created table, with an analytic
  // SELECT over another base table between them. Barrier-serial execution
  // (one statement at a time, the old ExecuteBatch semantics for DDL) is
  // the baseline; the dependency scheduler overlaps each CTAS with the
  // SELECTs that don't touch its table and only fences the per-chain
  // consumer.
  // Two scheduled variants: level-synchronized waves (every statement at
  // conflict depth d waits for all of depth d-1) versus per-statement
  // readiness (a statement launches when its own dependencies finish). The
  // script's disjoint chains make the difference visible: under waves one
  // slow CTAS holds back every chain's consumer, under readiness only its
  // own.
  PaperTable table(
      "Mixed DDL+SELECT script: barrier-serial vs. wave-scheduled vs. "
      "readiness-scheduled (per-statement effect analysis, "
      "Database::ExecuteBatch)",
      {"thread budget", "barrier-serial", "waves", "readiness", "speedup",
       "invalidations"});
  const std::string shape =
      std::to_string(tuples) + "x" + std::to_string(app_cols);
  const int64_t bytes = tuples * app_cols * static_cast<int64_t>(sizeof(double));
  std::vector<std::string> statements;
  for (int i = 0; i < relations; ++i) {
    const std::string t = "t" + std::to_string(i);
    const std::string other = "t" + std::to_string((i + 1) % relations);
    statements.push_back("CREATE TABLE c" + std::to_string(i) +
                         " AS SELECT * FROM QQR(" + t + " BY id)");
    statements.push_back("SELECT * FROM CPD(" + other + " BY id, " + other +
                         " BY id)");
    statements.push_back("SELECT * FROM c" + std::to_string(i));
    statements.push_back("DROP TABLE c" + std::to_string(i));
  }
  for (int budget : {1, 2, 4}) {
    const int kReps = BenchReps(3);
    double serial = 0;
    double waves = 0;
    double scheduled = 0;
    QueryCache::Counters c;
    for (int rep = 0; rep < kReps; ++rep) {
      sql::Database serial_db =
          MakeDatabase(tuples, relations, app_cols, budget);
      sql::Database waves_db =
          MakeDatabase(tuples, relations, app_cols, budget);
      waves_db.rma_options.batch_schedule = BatchSchedule::kWaves;
      sql::Database batch_db =
          MakeDatabase(tuples, relations, app_cols, budget);
      const double s = TimeIt([&] {
        for (const std::string& stmt : statements) {
          serial_db.Execute(stmt).ValueOrDie();
        }
      });
      const double w = TimeIt([&] {
        for (auto& r : waves_db.ExecuteBatch(statements)) {
          r.ValueOrDie();
        }
      });
      const double b = TimeIt([&] {
        for (auto& r : batch_db.ExecuteBatch(statements)) {
          r.ValueOrDie();
        }
      });
      if (rep == 0 || s < serial) serial = s;
      if (rep == 0 || w < waves) waves = w;
      if (rep == 0 || b < scheduled) scheduled = b;
      c = batch_db.query_cache()->counters();
    }
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.2fx",
                  scheduled > 0 ? serial / scheduled : 0.0);
    table.AddRow({std::to_string(budget), Secs(serial), Secs(waves),
                  Secs(scheduled), speedup,
                  std::to_string(c.plan_invalidations)});
    const std::string b = std::to_string(budget);
    BenchJson::Record("mixed/threads=" + b + "/serial", "ctas+cpd+select",
                      shape, serial, bytes, "auto");
    BenchJson::Record("mixed/threads=" + b + "/waves", "ctas+cpd+select",
                      shape, waves, bytes, "auto");
    // "scheduled" keeps its historical name (baseline continuity); it now
    // measures the default readiness schedule.
    BenchJson::Record("mixed/threads=" + b + "/scheduled", "ctas+cpd+select",
                      shape, scheduled, bytes, "auto");
  }
  table.AddNote(
      "per-table plan invalidation keeps the invalidations column at the "
      "count of plans actually reading a mutated table (the per-chain "
      "SELECT over each dropped c_i), never the whole cache");
  table.Print();
}

void RunSubtreeScheduler(int64_t tuples, int app_cols) {
  const std::string shape =
      std::to_string(tuples) + "x" + std::to_string(app_cols);
  const int64_t bytes = tuples * app_cols * static_cast<int64_t>(sizeof(double));
  // One statement whose expression tree has two independent non-leaf
  // subtrees: ADD(QQR(a), QQR(b)). The stage scheduler forks the right
  // subtree onto the worker pool and joins at the add barrier.
  PaperTable table(
      "Concurrent plan subtrees within one statement "
      "(ADD over two independent QQR pipelines)",
      {"thread budget", "serial subtrees", "concurrent subtrees", "speedup"});
  for (int budget : {1, 2, 4}) {
    sql::Database db;
    db.rma_options.max_threads = budget;
    db.Register("a", workload::UniformRelation(tuples, app_cols, 21, -10.0,
                                               10.0, false, "a"))
        .Abort();
    std::vector<std::string> b_names = {"id2"};
    for (int c = 0; c < app_cols; ++c) {
      b_names.push_back("b" + std::to_string(c));
    }
    db.Register("b",
                rel::RenameAll(workload::UniformRelation(tuples, app_cols, 22,
                                                         -10.0, 10.0, false,
                                                         "b"),
                               b_names)
                    .ValueOrDie())
        .Abort();
    const std::string q =
        "SELECT * FROM ADD(QQR(a BY id) BY id, QQR(b BY id2) BY id2)";

    // Warm the plan and prepared caches once so both measured runs compare
    // steady-state kernel work (the toggle below does not affect the plan
    // fingerprint — scheduling strategy is not plan content); best-of-3 on
    // the warm runs for gate-stable numbers.
    db.Query(q).ValueOrDie();
    db.rma_options.concurrent_subtrees = false;
    const double serial =
        TimeBest(BenchReps(3), [&] { db.Query(q).ValueOrDie(); });
    db.rma_options.concurrent_subtrees = true;
    const double concurrent =
        TimeBest(BenchReps(3), [&] { db.Query(q).ValueOrDie(); });
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.2fx",
                  concurrent > 0 ? serial / concurrent : 0.0);
    table.AddRow({std::to_string(budget), Secs(serial), Secs(concurrent),
                  speedup});
    const std::string b = std::to_string(budget);
    BenchJson::Record("subtrees/threads=" + b + "/serial", "add(qqr,qqr)",
                      shape, serial, bytes, "auto");
    BenchJson::Record("subtrees/threads=" + b + "/concurrent", "add(qqr,qqr)",
                      shape, concurrent, bytes, "auto");
  }
  table.AddNote("the fork engages at budget >= 2; the join sits at the "
                "shape-dependent add barrier");
  table.Print();
}

}  // namespace
}  // namespace rma::bench

int main(int argc, char** argv) {
  using namespace rma::bench;
  BenchJson::Init("bench_batch", &argc, argv);
  RunBatchVsSerial(Scaled(60000), /*relations=*/4, /*app_cols=*/24);
  RunMixedScript(Scaled(60000), /*relations=*/3, /*app_cols=*/24);
  RunSubtreeScheduler(Scaled(60000), /*app_cols=*/24);
  BenchJson::Flush();
  return 0;
}
