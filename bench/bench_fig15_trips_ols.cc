// Figure 15: Trips — ordinary linear regression on BIXI-style data.
//
// (a) System comparison: RMA+, AIDA, R (with CSV load share), MADlib.
// (b) RMA+BAT vs RMA+MKL.
// Paper: 3.1M..14.5M trips; RMA+ and AIDA lead, RMA+ up to 6.3x faster
// than AIDA (date/time transformation), R slow on relational prep, MADlib
// slowest. Scaled sizes by default.
#include "bench_common.h"
#include "workloads.h"

int main() {
  using namespace rma::bench;
  using namespace rma;
  const std::vector<int64_t> sizes = {Scaled(100000), Scaled(200000),
                                      Scaled(350000), Scaled(500000)};
  baselines::rlike::Options r_opts;  // ample memory for this figure

  PaperTable a("Figure 15a: Trips OLS, system comparison "
               "(prep+matrix seconds; paper: 3.1M..14.5M trips)",
               {"trips", "RMA+", "AIDA", "R", "R(load)", "MADlib"});
  PaperTable b("Figure 15b: Trips OLS, RMA+BAT vs RMA+MKL",
               {"trips", "RMA+BAT", "RMA+MKL", "BAT(matrix)", "MKL(matrix)"});
  for (int64_t n : sizes) {
    const workload::BixiData data = workload::GenerateBixi(n, 600, 71);
    const RunResult rma = TripsRmaPlus(data, KernelPolicy::kAuto);
    const RunResult aida = TripsAida(data);
    const RunResult r = TripsR(data, r_opts);
    const RunResult madlib = TripsMadlib(data);
    a.AddRow({std::to_string(n),
              rma.status.ok() ? Secs(rma.total()) : "fail",
              aida.status.ok() ? Secs(aida.total()) : "fail",
              r.status.ok() ? Secs(r.prep_seconds + r.matrix_seconds) : "fail",
              r.status.ok() ? Secs(r.load_seconds) : "fail",
              madlib.status.ok() ? Secs(madlib.total()) : "fail"});
    const RunResult bat = TripsRmaPlus(data, KernelPolicy::kBat);
    const RunResult mkl = TripsRmaPlus(data, KernelPolicy::kContiguous);
    b.AddRow({std::to_string(n), Secs(bat.total()), Secs(mkl.total()),
              Secs(bat.matrix_seconds), Secs(mkl.matrix_seconds)});
    // Sanity: every system recovers the generator's slope (~240 s/km).
    if (rma.status.ok() && (rma.check < 180 || rma.check > 300)) {
      std::printf("WARNING: unexpected OLS slope %.1f\n", rma.check);
    }
  }
  a.AddNote("expected shape (paper Fig. 15a): RMA+ fastest, AIDA pays for "
            "transforming date/time columns to Python, R slow on the "
            "relational part plus CSV load, MADlib slowest");
  a.Print();
  b.AddNote("expected shape (paper Fig. 15b): RMA+MKL 1.8-3.8x faster than "
            "RMA+BAT on this complex-op workload; at laptop scale the "
            "relational preparation dominates the totals, so the kernel "
            "effect shows in the matrix-only columns");
  b.Print();
  return 0;
}
