// Figure 14: the share of data-transformation time in a mixed workload.
//
// (a) R: data.table <-> matrix conversion as % of the total op time.
// (b) RMA+MKL: list-of-BATs <-> contiguous array copies as % of the total.
// Paper: 100K..500K rows x 50 columns; ADD/EMU dominated by transformation
// (up to 92%), complex ops (QQR/DSV/VSV) dominated by compute.
#include <string>
#include <vector>

#include "baselines/rlike/rlike.h"
#include "bench_common.h"
#include "core/rma.h"
#include "matrix/blas.h"
#include "matrix/qr.h"
#include "matrix/svd.h"
#include "rel/operators.h"
#include "workload/synthetic.h"

namespace rma::bench {
namespace {

constexpr int kCols = 50;

std::vector<std::string> AppCols() {
  std::vector<std::string> out;
  for (int c = 0; c < kCols; ++c) out.push_back("a" + std::to_string(c));
  return out;
}

/// RMA+MKL share: forced-contiguous execution with the stats sink; share =
/// (copy-in + copy-out) / (copies + kernel). `s` is the second argument for
/// binary ops: same-shaped for ADD/EMU, kCols x kCols for MMU.
std::string RmaShare(MatrixOp op, const Relation& r, const Relation& s) {
  RmaOptions opts;
  opts.kernel = KernelPolicy::kContiguous;
  opts.sort = SortPolicy::kOptimized;
  RmaStats stats;
  opts.stats = &stats;
  const OpInfo& info = GetOpInfo(op);
  if (info.arity == 1) {
    RmaUnary(op, r, {"id"}, opts).ValueOrDie();
  } else {
    RmaBinary(op, r, {"id"}, s, {"id2"}, opts).ValueOrDie();
  }
  const double transform = stats.TransformSeconds();
  const double total = transform + stats.compute_seconds;
  return Pct(transform / total);
}

/// R share: data.frame -> matrix (+ back) vs the matrix kernel itself.
std::string RShare(MatrixOp op, const baselines::rlike::DataFrame& df,
                   const baselines::rlike::DataFrame& small) {
  namespace rl = baselines::rlike;
  rl::Options opts;
  double t_conv = 0;
  double t_op = 0;
  DenseMatrix a;
  DenseMatrix b;
  t_conv += TimeIt([&] { a = *rl::AsMatrix(df, AppCols(), opts); });
  if (op == MatrixOp::kAdd || op == MatrixOp::kEmu) {
    t_conv += TimeIt([&] { b = *rl::AsMatrix(df, AppCols(), opts); });
  } else if (op == MatrixOp::kMmu) {
    t_conv += TimeIt([&] { b = *rl::AsMatrix(small, AppCols(), opts); });
  }
  DenseMatrix out;
  switch (op) {
    case MatrixOp::kAdd:
      t_op += TimeIt([&] { out = *blas::Add(a, b); });
      break;
    case MatrixOp::kEmu:
      t_op += TimeIt([&] { out = *blas::ElemMul(a, b); });
      break;
    case MatrixOp::kMmu:
      t_op += TimeIt([&] { out = *blas::MatMul(a, b); });
      break;
    case MatrixOp::kQqr: {
      DenseMatrix q;
      DenseMatrix rr;
      // Single-threaded, like R's default LINPACK qr().
      t_op += TimeIt([&] { HouseholderQr(a, &q, &rr, /*threads=*/1).Abort(); });
      out = std::move(q);
      break;
    }
    case MatrixOp::kDsv:
    case MatrixOp::kVsv: {
      SvdResult svd;
      t_op += TimeIt([&] { svd = *Svd(a); });
      out = op == MatrixOp::kDsv
                ? DenseMatrix(static_cast<int64_t>(svd.sigma.size()), 1)
                : std::move(svd.v);
      break;
    }
    default:
      break;
  }
  std::vector<std::string> names;
  for (int64_t c = 0; c < out.cols(); ++c) {
    names.push_back("c" + std::to_string(c));
  }
  t_conv += TimeIt([&] { rl::AsDataFrame(out, names); });
  return Pct(t_conv / (t_conv + t_op));
}

}  // namespace
}  // namespace rma::bench

int main() {
  using namespace rma::bench;
  using namespace rma;
  namespace rl = baselines::rlike;
  const std::vector<MatrixOp> ops = {MatrixOp::kAdd, MatrixOp::kEmu,
                                     MatrixOp::kMmu, MatrixOp::kQqr,
                                     MatrixOp::kDsv, MatrixOp::kVsv};
  const std::vector<int64_t> row_counts = {Scaled(10000), Scaled(30000),
                                           Scaled(50000)};
  // The small square matrix for MMU's right-hand side.
  Relation small = workload::UniformRelation(kCols, kCols, 62, 0, 1, true, "s");
  Relation small2 = rel::Rename(small, "id", "id2").ValueOrDie();
  const rl::DataFrame small_df = rl::FromRelation(small);

  PaperTable ra("Figure 14a: data transformation share (%), R data.table "
                "and matrix (50 columns; paper: 100K..500K rows)",
                {"#rows", "ADD", "EMU", "MMU", "QQR", "DSV", "VSV"});
  PaperTable rb("Figure 14b: data transformation share (%), RMA+ list of "
                "BATs and contiguous array (50 columns)",
                {"#rows", "ADD", "EMU", "MMU", "QQR", "DSV", "VSV"});
  for (int64_t rows : row_counts) {
    const Relation r =
        workload::UniformRelation(rows, kCols, 61, 0, 10000, true, "r");
    // Same-shaped second argument for the element-wise binary ops.
    const Relation elem = rel::Rename(workload::UniformRelation(
                                          rows, kCols, 63, 0, 10000, true, "s"),
                                      "id", "id2")
                              .ValueOrDie();
    const rl::DataFrame df = rl::FromRelation(r);
    std::vector<std::string> row_a = {std::to_string(rows)};
    std::vector<std::string> row_b = {std::to_string(rows)};
    for (MatrixOp op : ops) {
      const bool elementwise =
          op == MatrixOp::kAdd || op == MatrixOp::kEmu;
      row_a.push_back(RShare(op, df, small_df));
      row_b.push_back(RmaShare(op, r, elementwise ? elem : small2));
    }
    ra.AddRow(std::move(row_a));
    rb.AddRow(std::move(row_b));
  }
  ra.AddNote("expected shape (paper Fig. 14a): ~64-84% for ADD/EMU/MMU, "
             "~7-23% for QQR/DSV/VSV");
  ra.Print();
  rb.AddNote("expected shape (paper Fig. 14b): ~80-92% for ADD/EMU/MMU, "
             "~35-55% for QQR/DSV/VSV");
  rb.Print();
  return 0;
}
