#include "core/query_cache.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <utility>

#include "core/calibration.h"

namespace rma {

namespace {

/// Capacity bounds. Plans pin the relations their leaf expressions embed and
/// prepared arguments pin a relation plus a permutation vector, so both sets
/// stay small; LRU keeps the hot statements of a steady workload resident.
constexpr size_t kMaxPlanEntries = 128;
constexpr size_t kMaxPreparedEntries = 256;

/// Upper bound on waiting for an in-flight leader. The leader publishes only
/// when its whole statement finishes (the statement plan accretes during
/// execution), and a waiter still executes the statement itself after
/// borrowing — so waiting past the planning-cost scale buys nothing and only
/// delays the duplicate. The bound keeps dedupe effective for the common
/// fast statement while capping the added latency behind a slow leader; a
/// timed-out waiter simply plans independently (the pre-dedupe behavior).
constexpr std::chrono::milliseconds kDedupWait{100};

uint64_t HashMix(uint64_t h, uint64_t v) {
  // FNV-1a over 8-byte words.
  constexpr uint64_t kPrime = 1099511628211ULL;
  h ^= v;
  return h * kPrime;
}

/// The single hit rule. The options fingerprint always gates; after that an
/// identity snapshot match serves (mutations of unrelated tables bumped the
/// version but changed none of the plan's relations), and exact catalog
/// version is the fallback when either side lacks attribution.
bool PlanServes(const QueryCache::StatementPlan& plan, uint64_t version,
                uint64_t fingerprint,
                const QueryCache::TableSnapshot* tables) {
  if (plan.options_fingerprint != fingerprint) return false;
  if (plan.tables_known && tables != nullptr) {
    return plan.base_tables == *tables;
  }
  return plan.catalog_version == version;
}

}  // namespace

std::string QueryCache::NormalizeStatement(const std::string& sql) {
  std::string out;
  out.reserve(sql.size());
  char quote = '\0';
  bool pending_space = false;
  for (size_t i = 0; i < sql.size(); ++i) {
    const char c = sql[i];
    if (quote == '\0' && c == '-' && i + 1 < sql.size() &&
        sql[i + 1] == '-') {
      // Line comment: skip to (not past) the newline, which the whitespace
      // branch then collapses. Comments separate tokens like whitespace and
      // never reach the key — an apostrophe inside one must not flip the
      // quote state, and comment-only differences must share an entry.
      i += 2;
      while (i < sql.size() && sql[i] != '\n') ++i;
      --i;  // the loop increment lands on the newline / one-past-end
      pending_space = true;
      continue;
    }
    if (quote == '\0' && c == '/' && i + 1 < sql.size() &&
        sql[i + 1] == '*') {
      // Block comment: skip past the closing */; an unterminated comment
      // (which the lexer rejects) swallows the rest of the text.
      i += 2;
      while (i + 1 < sql.size() && !(sql[i] == '*' && sql[i + 1] == '/')) {
        ++i;
      }
      i = (i + 1 < sql.size()) ? i + 1 : sql.size();
      pending_space = true;
      continue;
    }
    if (quote != '\0') {
      out += c;
      if (c == quote) {
        // The lexer treats a doubled quote inside a literal as an escaped
        // quote, not a close; mirror that so quote state cannot
        // desynchronize (two different literals must never share a key).
        if (i + 1 < sql.size() && sql[i + 1] == quote) {
          out += quote;
          ++i;
        } else {
          quote = '\0';
        }
      }
      continue;
    }
    if (c == '\'' || c == '"') {
      if (pending_space && !out.empty()) out += ' ';
      pending_space = false;
      quote = c;
      out += c;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      pending_space = true;
      continue;
    }
    if (pending_space && !out.empty()) out += ' ';
    pending_space = false;
    out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  while (!out.empty() && (out.back() == ';' || out.back() == ' ')) {
    out.pop_back();
  }
  // EXPLAIN [ANALYZE] is presentation, not plan content: the underlying
  // statement shares its cache entry with the bare form.
  for (const char* prefix : {"explain ", "analyze "}) {
    const size_t len = std::string(prefix).size();
    if (out.compare(0, len, prefix) == 0) out.erase(0, len);
  }
  return out;
}

uint64_t QueryCache::OptionsFingerprint(const RmaOptions& opts) {
  uint64_t h = 14695981039346656037ULL;  // FNV offset basis
  h = HashMix(h, static_cast<uint64_t>(opts.kernel));
  h = HashMix(h, static_cast<uint64_t>(opts.sort));
  h = HashMix(h, opts.validate_keys ? 1 : 0);
  h = HashMix(h, static_cast<uint64_t>(opts.contiguous_budget_bytes));
  h = HashMix(h, opts.enable_prepared_cache ? 1 : 0);
  // The shard decision is plan content (OpPlan::shards/merge): toggling
  // sharding limits must not serve a stale plan shape. max_threads joined
  // plan content with sharding — it caps the candidate shard counts.
  h = HashMix(h, static_cast<uint64_t>(opts.max_shards));
  h = HashMix(h, static_cast<uint64_t>(opts.shard_min_rows));
  h = HashMix(h, static_cast<uint64_t>(opts.max_threads));
  const RewriteRules& rw = opts.rewrites;
  uint64_t bits = 0;
  for (bool b : {rw.enabled, rw.mmu_tra_to_cpd, rw.mmu_tra_to_opd,
                 rw.eliminate_double_tra, rw.rnk_of_tra, rw.det_of_tra}) {
    bits = (bits << 1) | (b ? 1 : 0);
  }
  h = HashMix(h, bits);
  // The cost profile prices kernel choices, so it is plan content. The
  // profile fingerprint quantizes per-element rates: EWMA jitter keeps
  // cached plans valid, a materially shifted profile invalidates them.
  return HashMix(h, ResolveCostProfile(opts)->Fingerprint());
}

QueryCache::StatementPlanPtr QueryCache::LookupPlan(
    const std::string& normalized, uint64_t catalog_version,
    uint64_t options_fingerprint, const TableSnapshot* tables) {
  MutexLock lock(mu_);
  auto it = plans_.find(normalized);
  if (it == plans_.end() ||
      !PlanServes(*it->second.plan, catalog_version, options_fingerprint,
                  tables)) {
    ++counters_.plan_misses;
    return nullptr;
  }
  it->second.last_used = ++tick_;
  ++counters_.plan_hits;
  return it->second.plan;
}

void QueryCache::StorePlanLocked(const std::string& normalized,
                                 StatementPlanPtr plan) {
  if (plans_.size() >= kMaxPlanEntries && plans_.count(normalized) == 0) {
    auto victim = plans_.begin();
    for (auto it = plans_.begin(); it != plans_.end(); ++it) {
      if (it->second.last_used < victim->second.last_used) victim = it;
    }
    plans_.erase(victim);
    ++counters_.evictions;
  }
  plans_[normalized] = PlanEntry{std::move(plan), ++tick_};
}

void QueryCache::StorePlan(const std::string& normalized,
                           StatementPlanPtr plan) {
  if (plan == nullptr) return;
  MutexLock lock(mu_);
  StorePlanLocked(normalized, std::move(plan));
}

QueryCache::PlanTicket QueryCache::AcquirePlan(const std::string& normalized,
                                               uint64_t catalog_version,
                                               uint64_t options_fingerprint,
                                               const TableSnapshot* tables) {
  PlanTicket ticket;
  MutexLock lock(mu_);
  for (;;) {
    auto it = plans_.find(normalized);
    if (it != plans_.end() &&
        PlanServes(*it->second.plan, catalog_version, options_fingerprint,
                   tables)) {
      it->second.last_used = ++tick_;
      ++counters_.plan_hits;
      ticket.plan = it->second.plan;
      return ticket;
    }
    auto inf = inflight_.find(normalized);
    if (inf == inflight_.end()) {
      auto entry = std::make_shared<Inflight>();
      entry->catalog_version = catalog_version;
      entry->options_fingerprint = options_fingerprint;
      if (tables != nullptr) {
        entry->tables = *tables;
        entry->tables_known = true;
      }
      inflight_[normalized] = std::move(entry);
      ++counters_.plan_misses;
      ticket.leader = true;
      return ticket;
    }
    const Inflight& leader = *inf->second;
    const bool same_snapshot = leader.tables_known && tables != nullptr &&
                               leader.tables == *tables;
    if (leader.options_fingerprint != options_fingerprint ||
        (!same_snapshot && leader.catalog_version != catalog_version)) {
      // A leader is planning the same text against a different catalog
      // state (snapshot and version both differ) or options fingerprint;
      // its plan cannot serve this statement. Plan independently (stored
      // via StorePlan, no waiters to wake).
      ++counters_.plan_misses;
      return ticket;
    }
    const std::shared_ptr<Inflight> entry = inf->second;
    ++counters_.plan_dedup_waits;
    // Explicit deadline loop instead of wait_for(pred): entry->done is
    // guarded by mu_, and the analysis only sees the lock held if the
    // predicate check stays in this function rather than a lambda.
    const auto deadline = std::chrono::steady_clock::now() + kDedupWait;
    bool completed = true;
    while (!entry->done) {
      if (entry->cv.WaitUntil(mu_, deadline) == std::cv_status::timeout) {
        completed = entry->done;
        break;
      }
    }
    if (!completed) {
      // Liveness backstop (leader stuck or starved): plan independently.
      ++counters_.plan_misses;
      return ticket;
    }
    if (entry->plan != nullptr) {
      // Re-validate the published plan against *this* caller before
      // borrowing: the leader advertised its acquire-time snapshot, but
      // what it bound can diverge (a catalog mutation landed mid-flight
      // — the plan then carries different identities, or none at all for
      // mixed binds). The hit rule is the same one LookupPlan applies;
      // a plan that fails it is planned around independently.
      if (!PlanServes(*entry->plan, catalog_version, options_fingerprint,
                      tables)) {
        ++counters_.plan_misses;
        return ticket;
      }
      ++counters_.plan_hits;
      ticket.plan = entry->plan;
      ticket.borrowed = true;
      return ticket;
    }
    // The leader abandoned (its statement failed before producing a plan).
    // Retry: the next round may find a new leader, or elect this caller.
  }
}

void QueryCache::FinishInflightLocked(const std::string& normalized,
                                      StatementPlanPtr plan) {
  auto it = inflight_.find(normalized);
  if (it == inflight_.end()) return;
  // Waiters hold the shared_ptr, so the entry (and its condition variable)
  // outlives the map erase; they observe done/plan under mu_ when they wake.
  it->second->done = true;
  it->second->plan = std::move(plan);
  it->second->cv.NotifyAll();
  inflight_.erase(it);
}

void QueryCache::PublishPlan(const std::string& normalized,
                             StatementPlanPtr plan) {
  MutexLock lock(mu_);
  if (plan != nullptr) StorePlanLocked(normalized, plan);
  FinishInflightLocked(normalized, std::move(plan));
}

void QueryCache::AbandonPlan(const std::string& normalized) {
  MutexLock lock(mu_);
  FinishInflightLocked(normalized, nullptr);
}

void QueryCache::InvalidatePlansForTables(
    const std::vector<std::string>& written, uint64_t current_version) {
  MutexLock lock(mu_);
  for (auto it = plans_.begin(); it != plans_.end();) {
    const StatementPlan& plan = *it->second.plan;
    bool stale;
    if (plan.tables_known) {
      stale = std::any_of(plan.base_tables.begin(), plan.base_tables.end(),
                          [&written](const auto& entry) {
                            return std::find(written.begin(), written.end(),
                                             entry.first) != written.end();
                          });
    } else {
      // No attribution: the version backstop — any mutation strands it.
      stale = plan.catalog_version != current_version;
    }
    if (stale) {
      it = plans_.erase(it);
      ++counters_.plan_invalidations;
    } else {
      ++it;
    }
  }
}

int64_t QueryCache::EvictPreparedLruLocked() {
  if (prepared_.size() < kMaxPreparedEntries) return 0;
  auto victim = prepared_.begin();
  for (auto it = prepared_.begin(); it != prepared_.end(); ++it) {
    if (it->second.last_used < victim->second.last_used) victim = it;
  }
  prepared_.erase(victim);
  ++counters_.evictions;
  return 1;
}

int64_t QueryCache::StorePrepared(const std::string& key,
                                  std::vector<uint64_t> relations,
                                  PreparedArgPtr arg) {
  if (arg == nullptr) return 0;
  MutexLock lock(mu_);
  int64_t evicted = 0;
  if (prepared_.count(key) == 0) evicted = EvictPreparedLruLocked();
  prepared_[key] = PreparedEntry{std::move(arg), std::move(relations), ++tick_};
  return evicted;
}

PreparedArgPtr QueryCache::LookupPrepared(const std::string& key) {
  MutexLock lock(mu_);
  auto it = prepared_.find(key);
  if (it == prepared_.end()) {
    ++counters_.prepared_misses;
    return nullptr;
  }
  it->second.last_used = ++tick_;
  ++counters_.prepared_hits;
  return it->second.arg;
}

void QueryCache::EvictRelation(uint64_t relation_identity) {
  MutexLock lock(mu_);
  for (auto it = prepared_.begin(); it != prepared_.end();) {
    const auto& rels = it->second.relations;
    if (std::find(rels.begin(), rels.end(), relation_identity) != rels.end()) {
      it = prepared_.erase(it);
      ++counters_.evictions;
    } else {
      ++it;
    }
  }
}

void QueryCache::EvictKey(const std::string& key) {
  MutexLock lock(mu_);
  if (prepared_.erase(key) > 0) ++counters_.evictions;
}

QueryCache::Counters QueryCache::counters() const {
  MutexLock lock(mu_);
  return counters_;
}

size_t QueryCache::plan_entries() const {
  MutexLock lock(mu_);
  return plans_.size();
}

size_t QueryCache::prepared_entries() const {
  MutexLock lock(mu_);
  return prepared_.size();
}

}  // namespace rma
