#include "core/shard.h"

#include "util/logging.h"

namespace rma {

std::vector<ShardSpec> MakeShardSpecs(int64_t rows, int shards,
                                      std::vector<int> columns) {
  RMA_CHECK(rows >= 0 && shards >= 1);
  std::vector<ShardSpec> specs(static_cast<size_t>(shards));
  const int64_t base = rows / shards;
  const int64_t extra = rows % shards;
  int64_t begin = 0;
  for (int s = 0; s < shards; ++s) {
    ShardSpec& spec = specs[static_cast<size_t>(s)];
    spec.shard = s;
    spec.begin = begin;
    spec.end = begin + base + (s < extra ? 1 : 0);
    spec.columns = columns;
    begin = spec.end;
  }
  return specs;
}

std::vector<BatPtr> SliceColumns(const std::vector<BatPtr>& cols,
                                 const ShardSpec& spec) {
  std::vector<BatPtr> out;
  out.reserve(cols.size());
  for (const auto& c : cols) out.push_back(SliceBat(c, spec.begin, spec.rows()));
  return out;
}

}  // namespace rma
