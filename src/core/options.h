#ifndef RMA_CORE_OPTIONS_H_
#define RMA_CORE_OPTIONS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/result.h"

namespace rma {

class CostProfile;

/// Where the base result of a relational matrix operation is computed
/// (Sec. 7.3).
enum class KernelPolicy : int {
  /// Cost-based selection (core/planner.h): the planner weighs the
  /// column-at-a-time cost (operation-class penalty, sparse-column density)
  /// against gather + dense kernel + scatter for the operation's shape.
  /// Element-wise operations stay on BATs; cpd and decompositions are
  /// delegated to the contiguous kernels; `contiguous_budget_bytes` stays a
  /// hard ceiling — past it the no-copy BAT algorithms take over whenever
  /// one exists.
  kAuto = 0,
  /// Force the no-copy column-at-a-time algorithms (RMA+BAT).
  kBat = 1,
  /// Force gather-to-contiguous + dense kernels + scatter-back (RMA+MKL).
  kContiguous = 2,
};

/// Whether the engine applies the sort-avoidance optimizations of Sec. 8.1.
enum class SortPolicy : int {
  kAlways = 0,     ///< sort every argument by its order schema
  kOptimized = 1,  ///< skip/relax sorting where the result is unaffected
};

/// How Database::ExecuteBatch orders statements whose effects conflict
/// (sql/effects.h). Both schedules honour the same dependency DAG and
/// produce identical results; they differ in how much concurrency they
/// extract from it.
enum class BatchSchedule : int {
  /// Per-statement readiness: a statement launches the moment its own
  /// dependencies complete. No wave barriers — a slow statement delays only
  /// its transitive dependents, not unrelated chains.
  kReadiness = 0,
  /// Level-synchronized waves (ScheduleWaves): statements at conflict-chain
  /// depth d all wait for depth d-1 to finish. Simpler, fully deterministic
  /// wave numbering; kept for comparison and as a conservative fallback.
  kWaves = 1,
};

/// Wall-clock breakdown of one relational matrix operation, filled when
/// RmaOptions::stats is set. Backs the Fig. 13/14 experiments.
struct RmaStats {
  double sort_seconds = 0;           ///< order-schema sorting / key alignment
  double transform_in_seconds = 0;   ///< BATs -> contiguous array (gather)
  double compute_seconds = 0;        ///< the matrix kernel itself
  double transform_out_seconds = 0;  ///< base result -> BATs (scatter)
  double morph_seconds = 0;          ///< contextual-information handling
  double merge_seconds = 0;          ///< shard merge/reduce barrier

  /// Per-shard wall times of the sharded stage chain (gather+kernel+scatter),
  /// indexed by shard id; empty when the op ran unsharded. Diagnostic only:
  /// shard walls overlap in real time, so they are reported per op (EXPLAIN
  /// ANALYZE) but never folded into aggregate context totals.
  std::vector<double> shard_seconds;

  // Query-cache effectiveness (core/query_cache.h). Plan counters track
  // whole-statement physical-plan reuse; prepared counters track sort-
  // permutation / alignment reuse; evictions count cache entries dropped to
  // stay within the capacity bound.
  int64_t plan_cache_hits = 0;
  int64_t plan_cache_misses = 0;
  int64_t prepared_cache_hits = 0;
  int64_t prepared_cache_misses = 0;
  int64_t prepared_cache_evictions = 0;

  // Buffer-pool activity attributed to this context's statements (zero for
  // purely in-memory databases). Recorded as statement-level deltas of the
  // store's pool counters (storage/buffer_pool.h).
  int64_t pool_hits = 0;
  int64_t pool_misses = 0;
  int64_t pool_evictions = 0;
  int64_t pool_writebacks = 0;

  double TransformSeconds() const {
    return transform_in_seconds + transform_out_seconds;
  }
  double TotalSeconds() const {
    return sort_seconds + transform_in_seconds + compute_seconds +
           transform_out_seconds + morph_seconds + merge_seconds;
  }
};

/// Toggles for the cross-algebra rewrites of `core/algebra.h`. They are
/// applied by plan-level evaluators (EvaluateExpression and the SQL
/// executor); individual RmaUnary/RmaBinary calls ignore them.
struct RewriteRules {
  bool enabled = true;
  /// mmu(tra(x BY U) BY C, y BY V) → cpd(x BY U, y BY V).
  bool mmu_tra_to_cpd = true;
  /// mmu(x BY U, tra(y BY V) BY C) → opd(x BY U, y BY V); requires the
  /// application schema of leaf y to be lexicographically sorted.
  bool mmu_tra_to_opd = true;
  /// tra(tra(x BY U) BY C) → relabel (no matrix computation at all).
  bool eliminate_double_tra = true;
  /// rnk(tra(x BY U) BY C) → rnk(x BY U); rank is transpose-invariant.
  bool rnk_of_tra = true;
  /// det(tra(x BY U) BY C) → det(x BY U); requires the application schema
  /// of leaf x to be lexicographically sorted (else the implicit row
  /// permutation could flip the determinant's sign).
  bool det_of_tra = true;
};

/// Per-call options for relational matrix operations.
struct RmaOptions {
  KernelPolicy kernel = KernelPolicy::kAuto;
  SortPolicy sort = SortPolicy::kAlways;

  /// Verify that order schemas form keys (duplicate rows => Invalid). The
  /// check is free on the sorting path; on sort-avoiding paths it costs one
  /// hash pass and can be disabled for trusted inputs.
  bool validate_keys = true;

  /// Memory ceiling for the contiguous path: kAuto never gathers more than
  /// this many bytes when a column-at-a-time algorithm exists. Within the
  /// ceiling, the planner's cost model (core/planner.h) picks the kernel
  /// from the operation shape.
  int64_t contiguous_budget_bytes = int64_t{4} * 1024 * 1024 * 1024;

  /// Worker-thread budget for kernel stages (0 = hardware concurrency).
  /// Installed around kernel execution via ScopedThreadBudget so the whole
  /// matrix layer honours it.
  int max_threads = 0;

  /// Let the concurrent stage scheduler (core/scheduler.h) evaluate
  /// independent subtrees of a relational-matrix expression on the shared
  /// worker pool, splitting the thread budget across in-flight subtrees.
  /// Takes effect only when the effective budget leaves headroom (>= 2);
  /// results and recorded plan order are identical to serial evaluation.
  bool concurrent_subtrees = true;

  /// Statement ordering for batched execution (Database::ExecuteBatch).
  BatchSchedule batch_schedule = BatchSchedule::kReadiness;

  /// Shape floor for offloading a subtree: subtrees whose estimated result
  /// (rows x application columns, from the lowered plan) stays under this
  /// many elements run inline — a task dispatch costs more than a tiny
  /// kernel. 0 = offload whenever the tree structure allows.
  int64_t parallel_min_elements = 0;

  /// Upper bound on row-range shards per operation (>= 1). The planner picks
  /// the actual count from calibrated per-shard costs, capped by this, the
  /// effective thread budget, and `shard_min_rows`; 1 disables sharding.
  /// 0 is rejected by ValidateRmaOptions — "no shards" is not a meaningful
  /// request and silently treating it as 1 has masked config typos.
  int max_shards = 16;

  /// Minimum rows per shard (>= 1): an op is never split finer than this, so
  /// tiny inputs keep the single-DAG path regardless of `max_shards`.
  int64_t shard_min_rows = 4096;

  /// Reuse sort permutations across operations sharing an ExecContext:
  /// preparing the same (relation, order schema) twice hits a cache instead
  /// of re-sorting. Covers e.g. the covariance pipeline tra+mmu and the OLS
  /// workloads.
  bool enable_prepared_cache = true;

  /// Cost profile pricing the planner's kernel families (core/calibration.h).
  /// Null resolves through `calibration_path`, then the process default
  /// (env RMA_CALIBRATION, else the analytic constants). Shared so the
  /// execution feedback loop can refine the same profile the planner reads.
  std::shared_ptr<CostProfile> cost_profile;

  /// Calibration JSON file consulted when `cost_profile` is null: loaded if
  /// readable, otherwise probed once and saved there (memoized per path).
  std::string calibration_path;

  /// Feed measured per-op stage times (RmaStats) back into the resolved
  /// cost profile (EWMA refinement). Only refinable profiles (probed or
  /// loaded — never the shared analytic default) accept updates.
  bool refine_cost_profile = true;

  /// Optional timing sink (not owned). Writes are serialized per
  /// ExecContext; don't point two concurrently executing contexts at one
  /// sink (database-level aggregate counters live in QueryCache::Counters
  /// instead).
  RmaStats* stats = nullptr;

  /// Cross-algebra rewrites applied by plan-level evaluators.
  RewriteRules rewrites;
};

/// Rejects out-of-range option values with a descriptive Status instead of
/// letting them silently fall back downstream: max_shards/shard_min_rows of 0
/// (or negative), negative max_threads / parallel_min_elements, and a
/// non-positive contiguous budget are all configuration errors. Checked at
/// every RmaUnary/RmaBinary entry (and therefore by everything above them).
Status ValidateRmaOptions(const RmaOptions& opts);

}  // namespace rma

#endif  // RMA_CORE_OPTIONS_H_
