#include "core/exec_context.h"

#include <sstream>
#include <utility>

#include "core/query_cache.h"

namespace rma {

BatPtr PreparedArg::OrderColumn(size_t i) const {
  const BatPtr& col = rel.column(split.order_idx[i]);
  return identity() ? col : col->Take(perm);
}

BatPtr PreparedArg::AppColumnBat(size_t j) const {
  const BatPtr& col = rel.column(split.app_idx[j]);
  return identity() ? col : col->Take(perm);
}

std::vector<double> PreparedArg::AppColumnDense(size_t j) const {
  const BatPtr& col = rel.column(split.app_idx[j]);
  if (identity()) return ToDoubleVector(*col);
  return GatherDoubleVector(*col, perm);
}

ArgShape PreparedArg::Shape() const {
  return MakeArgShape(rel, split.app_idx, rows);
}

ExecContext::ExecContext() : ExecContext(RmaOptions{}) {}

ExecContext::ExecContext(const RmaOptions& opts)
    : ExecContext(opts, nullptr) {}

ExecContext::ExecContext(const RmaOptions& opts,
                         std::shared_ptr<QueryCache> cache)
    : opts_(opts),
      cache_(cache != nullptr ? std::move(cache)
                              : std::make_shared<QueryCache>()) {}

void ExecContext::RecordStage(Stage stage, double seconds) {
  auto add = [&](RmaStats* stats) {
    switch (stage) {
      case Stage::kPrepare:
        stats->sort_seconds += seconds;
        break;
      case Stage::kGather:
        stats->transform_in_seconds += seconds;
        break;
      case Stage::kKernel:
        stats->compute_seconds += seconds;
        break;
      case Stage::kScatter:
        stats->transform_out_seconds += seconds;
        break;
      case Stage::kMorph:
        stats->morph_seconds += seconds;
        break;
    }
  };
  add(&totals_);
  if (in_op_ && !op_stats_.empty()) add(&op_stats_.back());
  if (opts_.stats != nullptr) add(opts_.stats);
}

void ExecContext::BeginOp() {
  op_stats_.emplace_back();
  in_op_ = true;
}

void ExecContext::EndOp() {
  in_op_ = false;
  // An op that failed before reaching RecordPlan (prepare error, dimension
  // check) leaves an orphan stats entry; drop it so op_stats() stays
  // aligned with plans() for every recorded plan.
  if (op_stats_.size() > plans_.size()) op_stats_.pop_back();
}

void ExecContext::RecordPlanCache(bool hit) {
  plan_outcome_ = hit ? PlanCacheOutcome::kHit : PlanCacheOutcome::kMiss;
  auto add = [&](RmaStats* stats) {
    if (hit) {
      ++stats->plan_cache_hits;
    } else {
      ++stats->plan_cache_misses;
    }
  };
  add(&totals_);
  if (opts_.stats != nullptr) add(opts_.stats);
}

void ExecContext::CountPrepared(bool hit) {
  if (hit) {
    ++cache_hits_;
  } else {
    ++cache_misses_;
  }
  auto add = [&](RmaStats* stats) {
    if (hit) {
      ++stats->prepared_cache_hits;
    } else {
      ++stats->prepared_cache_misses;
    }
  };
  add(&totals_);
  if (in_op_ && !op_stats_.empty()) add(&op_stats_.back());
  if (opts_.stats != nullptr) add(opts_.stats);
}

void ExecContext::CountEvictions(int64_t n) {
  if (n == 0) return;
  totals_.prepared_cache_evictions += n;
  if (in_op_ && !op_stats_.empty()) {
    op_stats_.back().prepared_cache_evictions += n;
  }
  if (opts_.stats != nullptr) opts_.stats->prepared_cache_evictions += n;
}

std::string ExecContext::PreparedKey(const Relation& r,
                                     const std::vector<std::string>& order,
                                     bool avoid_sort) {
  // The identity token covers the column data and the attribute names
  // (renames construct new relations); the relation name matters because the
  // cached PreparedArg's relation feeds result assembly (relation name,
  // det/rnk context value); the order schema and the sort-avoidance variant
  // complete the key. validate_keys is part of the key because an entry
  // prepared without validation must not satisfy a later lookup that
  // expects the key check to have run (the cache outlives option changes).
  std::ostringstream os;
  os << "sort:" << r.identity() << '|' << r.name() << '|';
  for (const auto& o : order) os << o << ';';
  os << '|' << (avoid_sort ? 1 : 0);
  return os.str();
}

std::string ExecContext::AlignedKey(const Relation& s,
                                    const std::vector<std::string>& order_s,
                                    const Relation& r,
                                    const std::vector<std::string>& order_r) {
  // The alignment permutation maps s's rows onto r's *physical* key order,
  // so it depends on both relations' data (identities) and both order
  // schemas.
  std::ostringstream os;
  os << "align:" << s.identity() << '|' << s.name() << '|';
  for (const auto& o : order_s) os << o << ';';
  os << "|to:" << r.identity() << '|';
  for (const auto& o : order_r) os << o << ';';
  return os.str();
}

std::string ExecContext::KeySuffix() const {
  return opts_.validate_keys ? "|v1" : "|v0";
}

PreparedArgPtr ExecContext::LookupPrepared(
    const Relation& r, const std::vector<std::string>& order, bool avoid_sort) {
  if (!opts_.enable_prepared_cache) return nullptr;
  PreparedArgPtr found =
      cache_->LookupPrepared(PreparedKey(r, order, avoid_sort) + KeySuffix());
  CountPrepared(found != nullptr);
  return found;
}

void ExecContext::StorePrepared(const Relation& r,
                                const std::vector<std::string>& order,
                                bool avoid_sort, PreparedArgPtr prepared) {
  if (!opts_.enable_prepared_cache) return;
  CountEvictions(
      cache_->StorePrepared(PreparedKey(r, order, avoid_sort) + KeySuffix(),
                            {r.identity()}, std::move(prepared)));
}

PreparedArgPtr ExecContext::LookupAligned(
    const Relation& s, const std::vector<std::string>& order_s,
    const Relation& r, const std::vector<std::string>& order_r) {
  if (!opts_.enable_prepared_cache) return nullptr;
  PreparedArgPtr found = cache_->LookupPrepared(
      AlignedKey(s, order_s, r, order_r) + KeySuffix());
  CountPrepared(found != nullptr);
  return found;
}

void ExecContext::StoreAligned(const Relation& s,
                               const std::vector<std::string>& order_s,
                               const Relation& r,
                               const std::vector<std::string>& order_r,
                               PreparedArgPtr prepared) {
  if (!opts_.enable_prepared_cache) return;
  CountEvictions(cache_->StorePrepared(
      AlignedKey(s, order_s, r, order_r) + KeySuffix(),
      {s.identity(), r.identity()}, std::move(prepared)));
}

}  // namespace rma
