#include "core/exec_context.h"

#include <sstream>
#include <utility>

namespace rma {

namespace {

/// Bound on cached prepared arguments; a context usually serves one query
/// or expression tree, so a small cache covers the reuse patterns and the
/// eviction policy stays trivial.
constexpr size_t kMaxCachedPreparedArgs = 64;

}  // namespace

BatPtr PreparedArg::OrderColumn(size_t i) const {
  const BatPtr& col = rel.column(split.order_idx[i]);
  return identity() ? col : col->Take(perm);
}

BatPtr PreparedArg::AppColumnBat(size_t j) const {
  const BatPtr& col = rel.column(split.app_idx[j]);
  return identity() ? col : col->Take(perm);
}

std::vector<double> PreparedArg::AppColumnDense(size_t j) const {
  const BatPtr& col = rel.column(split.app_idx[j]);
  if (identity()) return ToDoubleVector(*col);
  return GatherDoubleVector(*col, perm);
}

ArgShape PreparedArg::Shape() const {
  return MakeArgShape(rel, split.app_idx, rows);
}

void ExecContext::RecordStage(Stage stage, double seconds) {
  auto add = [&](RmaStats* stats) {
    switch (stage) {
      case Stage::kPrepare:
        stats->sort_seconds += seconds;
        break;
      case Stage::kGather:
        stats->transform_in_seconds += seconds;
        break;
      case Stage::kKernel:
        stats->compute_seconds += seconds;
        break;
      case Stage::kScatter:
        stats->transform_out_seconds += seconds;
        break;
      case Stage::kMorph:
        stats->morph_seconds += seconds;
        break;
    }
  };
  add(&totals_);
  if (opts_.stats != nullptr) add(opts_.stats);
}

std::string ExecContext::CacheKey(const Relation& r,
                                  const std::vector<std::string>& order,
                                  bool avoid_sort) {
  // Column identity (shared immutable BATs) plus attribute names covers
  // renamed views over the same data; the relation name matters because the
  // cached PreparedArg's relation feeds result assembly (relation name,
  // det/rnk context value); the order schema and the sort-avoidance variant
  // complete the key.
  std::ostringstream os;
  os << r.name() << '|';
  for (int i = 0; i < r.num_columns(); ++i) {
    os << r.column(i).get() << ':' << r.schema().attribute(i).name << ';';
  }
  os << '|';
  for (const auto& o : order) os << o << ';';
  os << '|' << (avoid_sort ? 1 : 0);
  return os.str();
}

PreparedArgPtr ExecContext::LookupPrepared(const Relation& r,
                                           const std::vector<std::string>& order,
                                           bool avoid_sort) const {
  if (!opts_.enable_prepared_cache) return nullptr;
  auto it = cache_.find(CacheKey(r, order, avoid_sort));
  if (it == cache_.end()) {
    ++cache_misses_;
    return nullptr;
  }
  ++cache_hits_;
  return it->second;
}

void ExecContext::StorePrepared(const Relation& r,
                                const std::vector<std::string>& order,
                                bool avoid_sort, PreparedArgPtr prepared) {
  if (!opts_.enable_prepared_cache) return;
  if (cache_.size() >= kMaxCachedPreparedArgs) cache_.clear();
  cache_[CacheKey(r, order, avoid_sort)] = std::move(prepared);
}

}  // namespace rma
