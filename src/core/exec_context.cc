#include "core/exec_context.h"

#include <algorithm>
#include <deque>
#include <sstream>
#include <utility>

#include "core/query_cache.h"
#include "matrix/parallel.h"

namespace rma {

namespace {

/// One open operation bracket. Ops begin and end on the same thread, so the
/// bracket lives in thread-local state: RecordStage/RecordPlan/CountPrepared
/// reach the open entry without taking the context mutex, and concurrent ops
/// of different threads (batched statements, concurrent subtrees) never see
/// each other's partial stats.
struct OpenOp {
  ExecContext* ctx = nullptr;
  RmaStats stats;
  bool has_plan = false;
  OpPlan plan;
  /// Keys this op stored into the shared prepared cache — the evict-on-error
  /// journal: an op that fails after storing (e.g. a dimension check after a
  /// successful sort) must not leave entries behind in the database-level
  /// cache.
  std::vector<std::string> stored_keys;
};

/// Deque: stable references across push_back/pop_back (nested brackets).
thread_local std::deque<OpenOp> t_open_ops;

OpenOp* TopOpenOp(const ExecContext* ctx) {
  for (auto it = t_open_ops.rbegin(); it != t_open_ops.rend(); ++it) {
    if (it->ctx == ctx) return &*it;
  }
  return nullptr;
}

void AddStage(RmaStats* stats, Stage stage, double seconds) {
  switch (stage) {
    case Stage::kPrepare:
      stats->sort_seconds += seconds;
      break;
    case Stage::kGather:
      stats->transform_in_seconds += seconds;
      break;
    case Stage::kKernel:
      stats->compute_seconds += seconds;
      break;
    case Stage::kScatter:
      stats->transform_out_seconds += seconds;
      break;
    case Stage::kMorph:
      stats->morph_seconds += seconds;
      break;
    case Stage::kMerge:
      stats->merge_seconds += seconds;
      break;
  }
}

void AddStats(RmaStats* into, const RmaStats& from) {
  into->sort_seconds += from.sort_seconds;
  into->transform_in_seconds += from.transform_in_seconds;
  into->compute_seconds += from.compute_seconds;
  into->transform_out_seconds += from.transform_out_seconds;
  into->morph_seconds += from.morph_seconds;
  into->merge_seconds += from.merge_seconds;
  // shard_seconds stays per-op: shard walls overlap in real time, so summing
  // them across ops would double-count against the wall-clock totals.
  into->plan_cache_hits += from.plan_cache_hits;
  into->plan_cache_misses += from.plan_cache_misses;
  into->prepared_cache_hits += from.prepared_cache_hits;
  into->prepared_cache_misses += from.prepared_cache_misses;
  into->prepared_cache_evictions += from.prepared_cache_evictions;
  into->pool_hits += from.pool_hits;
  into->pool_misses += from.pool_misses;
  into->pool_evictions += from.pool_evictions;
  into->pool_writebacks += from.pool_writebacks;
}

}  // namespace

BatPtr PreparedArg::OrderColumn(size_t i) const {
  const BatPtr& col = rel.column(split.order_idx[i]);
  return identity() ? col : col->Take(perm);
}

BatPtr PreparedArg::AppColumnBat(size_t j) const {
  const BatPtr& col = rel.column(split.app_idx[j]);
  return identity() ? col : col->Take(perm);
}

std::vector<double> PreparedArg::AppColumnDense(size_t j) const {
  const BatPtr& col = rel.column(split.app_idx[j]);
  if (identity()) return ToDoubleVector(*col);
  return GatherDoubleVector(*col, perm);
}

ArgShape PreparedArg::Shape() const {
  return MakeArgShape(rel, split.app_idx, rows);
}

ExecContext::ExecContext() : ExecContext(RmaOptions{}) {}

ExecContext::ExecContext(const RmaOptions& opts)
    : ExecContext(opts, nullptr) {}

ExecContext::ExecContext(const RmaOptions& opts,
                         std::shared_ptr<QueryCache> cache)
    : opts_(opts),
      cache_(cache != nullptr ? std::move(cache)
                              : std::make_shared<QueryCache>()) {
  // Pin the cost profile once: every downstream resolution (PlanOp per op,
  // RefineCostModel per commit, OptionsFingerprint per statement) then takes
  // the explicit-profile fast path instead of re-walking the
  // calibration_path memoization map under its global mutex.
  opts_.cost_profile = ResolveCostProfile(opts_);
}

int ExecContext::effective_thread_budget() const {
  const int ambient = CurrentThreadBudget();
  const int own = opts_.max_threads;
  if (ambient > 0 && own > 0) return std::min(ambient, own);
  return ambient > 0 ? ambient : own;
}

void ExecContext::RecordStage(Stage stage, double seconds) {
  if (OpenOp* op = TopOpenOp(this)) AddStage(&op->stats, stage, seconds);
  MutexLock lock(mu_);
  AddStage(&totals_, stage, seconds);
  if (opts_.stats != nullptr) AddStage(opts_.stats, stage, seconds);
}

void ExecContext::RecordShardTimes(const std::vector<double>& shard_walls) {
  if (OpenOp* op = TopOpenOp(this)) op->stats.shard_seconds = shard_walls;
  MutexLock lock(mu_);
  if (opts_.stats != nullptr) opts_.stats->shard_seconds = shard_walls;
}

void ExecContext::RecordPlan(const OpPlan& plan) {
  if (OpenOp* op = TopOpenOp(this)) {
    op->plan = plan;
    op->has_plan = true;
    return;
  }
  MutexLock lock(mu_);
  plans_.push_back(plan);
  op_stats_.emplace_back();  // keep plans() and op_stats() aligned
}

void ExecContext::BeginOp() {
  t_open_ops.push_back(OpenOp{});
  t_open_ops.back().ctx = this;
}

void ExecContext::EndOp(bool commit) {
  // The op bracket is strictly nested per thread, so this context's
  // innermost open op is the back entry; tolerate interleaved contexts by
  // searching backwards.
  for (auto it = t_open_ops.rbegin(); it != t_open_ops.rend(); ++it) {
    if (it->ctx != this) continue;
    OpenOp op = std::move(*it);
    t_open_ops.erase(std::next(it).base());
    if (commit && op.has_plan) {
      RefineCostModel(op.plan, op.stats);
      MutexLock lock(mu_);
      plans_.push_back(std::move(op.plan));
      op_stats_.push_back(op.stats);
    } else if (!commit && !op.stored_keys.empty()) {
      // Evict-on-error: drop every prepared entry the failed op published,
      // so the shared cache never retains state from a statement that
      // failed mid-prepare.
      for (const std::string& key : op.stored_keys) cache_->EvictKey(key);
    }
    return;
  }
}

void ExecContext::RefineCostModel(const OpPlan& plan,
                                  const RmaStats& stats) const {
  if (!opts_.refine_cost_profile) return;
  const CostProfilePtr profile = ResolveCostProfile(opts_);
  if (!profile->refinable()) return;
  if (plan.kernel == KernelChoice::kBat) {
    profile->Refine(BatCostFamily(plan.op), plan.bat_elements,
                    stats.compute_seconds);
  } else {
    profile->Refine(CostKernel::kDenseFlop, plan.flops, stats.compute_seconds);
  }
  profile->Refine(CostKernel::kGather, plan.gather_elements,
                  stats.transform_in_seconds);
  profile->Refine(CostKernel::kScatter, plan.scatter_elements,
                  stats.transform_out_seconds);
  // A cached prepare records zero sort seconds; Refine ignores it (a reused
  // permutation says nothing about sort throughput).
  profile->Refine(CostKernel::kSort, plan.sort_elements, stats.sort_seconds);
}

void ExecContext::RecordPlanCache(bool hit) {
  MutexLock lock(mu_);
  plan_outcome_ = hit ? PlanCacheOutcome::kHit : PlanCacheOutcome::kMiss;
  auto add = [&](RmaStats* stats) {
    if (hit) {
      ++stats->plan_cache_hits;
    } else {
      ++stats->plan_cache_misses;
    }
  };
  add(&totals_);
  if (opts_.stats != nullptr) add(opts_.stats);
}

ExecContext::PlanCacheOutcome ExecContext::plan_cache_outcome() const {
  MutexLock lock(mu_);
  return plan_outcome_;
}

void ExecContext::MergeChild(const ExecContext& child) {
  // The child is quiescent by contract, but its counters were written under
  // its own mutex — take it so the reads here have a real acquire edge (and
  // so the analysis can check them). Contexts form a strict parent<-child
  // tree and only the parent merges, so the two-lock order cannot cycle.
  MutexLock child_lock(child.mu_);
  MutexLock lock(mu_);
  AddStats(&totals_, child.totals_);
  if (opts_.stats != nullptr) AddStats(opts_.stats, child.totals_);
  plans_.insert(plans_.end(), child.plans_.begin(), child.plans_.end());
  op_stats_.insert(op_stats_.end(), child.op_stats_.begin(),
                   child.op_stats_.end());
  cache_hits_ += child.cache_hits_;
  cache_misses_ += child.cache_misses_;
}

RmaOptions ExecContext::MakeChildOptions() const {
  RmaOptions child = opts_;
  child.stats = nullptr;  // the child's totals are merged back exactly once
  return child;
}

int64_t ExecContext::cache_hits() const {
  MutexLock lock(mu_);
  return cache_hits_;
}

int64_t ExecContext::cache_misses() const {
  MutexLock lock(mu_);
  return cache_misses_;
}

void ExecContext::CountPrepared(bool hit) {
  if (OpenOp* op = TopOpenOp(this)) {
    if (hit) {
      ++op->stats.prepared_cache_hits;
    } else {
      ++op->stats.prepared_cache_misses;
    }
  }
  MutexLock lock(mu_);
  if (hit) {
    ++cache_hits_;
    ++totals_.prepared_cache_hits;
    if (opts_.stats != nullptr) ++opts_.stats->prepared_cache_hits;
  } else {
    ++cache_misses_;
    ++totals_.prepared_cache_misses;
    if (opts_.stats != nullptr) ++opts_.stats->prepared_cache_misses;
  }
}

void ExecContext::CountEvictions(int64_t n) {
  if (n == 0) return;
  if (OpenOp* op = TopOpenOp(this)) op->stats.prepared_cache_evictions += n;
  MutexLock lock(mu_);
  totals_.prepared_cache_evictions += n;
  if (opts_.stats != nullptr) opts_.stats->prepared_cache_evictions += n;
}

void ExecContext::RecordPoolDelta(int64_t hits, int64_t misses,
                                  int64_t evictions, int64_t writebacks) {
  if (hits == 0 && misses == 0 && evictions == 0 && writebacks == 0) return;
  if (OpenOp* op = TopOpenOp(this)) {
    op->stats.pool_hits += hits;
    op->stats.pool_misses += misses;
    op->stats.pool_evictions += evictions;
    op->stats.pool_writebacks += writebacks;
  }
  MutexLock lock(mu_);
  auto add = [&](RmaStats* stats) {
    stats->pool_hits += hits;
    stats->pool_misses += misses;
    stats->pool_evictions += evictions;
    stats->pool_writebacks += writebacks;
  };
  add(&totals_);
  if (opts_.stats != nullptr) add(opts_.stats);
}

std::string ExecContext::PreparedKey(const Relation& r,
                                     const std::vector<std::string>& order,
                                     bool avoid_sort) {
  // The identity token covers the column data and the attribute names
  // (renames construct new relations); the relation name matters because the
  // cached PreparedArg's relation feeds result assembly (relation name,
  // det/rnk context value); the order schema and the sort-avoidance variant
  // complete the key. validate_keys is part of the key because an entry
  // prepared without validation must not satisfy a later lookup that
  // expects the key check to have run (the cache outlives option changes).
  std::ostringstream os;
  os << "sort:" << r.identity() << '|' << r.name() << '|';
  for (const auto& o : order) os << o << ';';
  os << '|' << (avoid_sort ? 1 : 0);
  return os.str();
}

std::string ExecContext::AlignedKey(const Relation& s,
                                    const std::vector<std::string>& order_s,
                                    const Relation& r,
                                    const std::vector<std::string>& order_r) {
  // The alignment permutation maps s's rows onto r's *physical* key order,
  // so it depends on both relations' data (identities) and both order
  // schemas.
  std::ostringstream os;
  os << "align:" << s.identity() << '|' << s.name() << '|';
  for (const auto& o : order_s) os << o << ';';
  os << "|to:" << r.identity() << '|';
  for (const auto& o : order_r) os << o << ';';
  return os.str();
}

std::string ExecContext::KeySuffix() const {
  return opts_.validate_keys ? "|v1" : "|v0";
}

PreparedArgPtr ExecContext::LookupPrepared(
    const Relation& r, const std::vector<std::string>& order, bool avoid_sort) {
  if (!opts_.enable_prepared_cache) return nullptr;
  PreparedArgPtr found =
      cache_->LookupPrepared(PreparedKey(r, order, avoid_sort) + KeySuffix());
  CountPrepared(found != nullptr);
  return found;
}

void ExecContext::StoreByKey(std::string key, std::vector<uint64_t> relations,
                             PreparedArgPtr prepared) {
  if (OpenOp* op = TopOpenOp(this)) op->stored_keys.push_back(key);
  CountEvictions(
      cache_->StorePrepared(std::move(key), std::move(relations),
                            std::move(prepared)));
}

void ExecContext::StorePrepared(const Relation& r,
                                const std::vector<std::string>& order,
                                bool avoid_sort, PreparedArgPtr prepared) {
  if (!opts_.enable_prepared_cache) return;
  StoreByKey(PreparedKey(r, order, avoid_sort) + KeySuffix(), {r.identity()},
             std::move(prepared));
}

PreparedArgPtr ExecContext::LookupAligned(
    const Relation& s, const std::vector<std::string>& order_s,
    const Relation& r, const std::vector<std::string>& order_r) {
  if (!opts_.enable_prepared_cache) return nullptr;
  PreparedArgPtr found = cache_->LookupPrepared(
      AlignedKey(s, order_s, r, order_r) + KeySuffix());
  CountPrepared(found != nullptr);
  return found;
}

void ExecContext::StoreAligned(const Relation& s,
                               const std::vector<std::string>& order_s,
                               const Relation& r,
                               const std::vector<std::string>& order_r,
                               PreparedArgPtr prepared) {
  if (!opts_.enable_prepared_cache) return;
  StoreByKey(AlignedKey(s, order_s, r, order_r) + KeySuffix(),
             {s.identity(), r.identity()}, std::move(prepared));
}

}  // namespace rma
