#include "core/ops.h"

#include <array>

#include "util/logging.h"
#include "util/string_util.h"

namespace rma {

namespace {

constexpr Extent kR1 = Extent::kR1;
constexpr Extent kR2 = Extent::kR2;
constexpr Extent kRS = Extent::kRStar;
constexpr Extent kC1 = Extent::kC1;
constexpr Extent kC2 = Extent::kC2;
constexpr Extent kCS = Extent::kCStar;
constexpr Extent kOne = Extent::kOne;

// Table 1 of the paper (one deviation: vsv is (c1,c1) — see DESIGN.md).
constexpr std::array<OpInfo, 19> kOps = {{
    // op, name, arity, shape, square, single-order, union-compat,
    // row-order-invariant, relative-align-ok
    {MatrixOp::kEmu, "emu", 2, {kRS, kCS}, false, false, true, false, true},
    {MatrixOp::kMmu, "mmu", 2, {kR1, kC2}, false, false, false, false, false},
    {MatrixOp::kOpd, "opd", 2, {kR1, kR2}, false, false, false, false, false},
    {MatrixOp::kCpd, "cpd", 2, {kC1, kC2}, false, false, false, false, true},
    {MatrixOp::kAdd, "add", 2, {kRS, kCS}, false, false, true, false, true},
    {MatrixOp::kSub, "sub", 2, {kRS, kCS}, false, false, true, false, true},
    // tra cannot skip sorting: its result columns are named by the sorted
    // order values, so column content must follow the same order.
    {MatrixOp::kTra, "tra", 1, {kC1, kR1}, false, true, false, false, false},
    {MatrixOp::kSol, "sol", 2, {kC1, kC2}, false, false, false, false, true},
    {MatrixOp::kInv, "inv", 1, {kR1, kC1}, true, false, false, false, false},
    {MatrixOp::kEvc, "evc", 1, {kR1, kC1}, true, false, false, false, false},
    {MatrixOp::kEvl, "evl", 1, {kR1, kOne}, true, false, false, false, false},
    {MatrixOp::kQqr, "qqr", 1, {kR1, kC1}, false, false, false, true, false},
    {MatrixOp::kRqr, "rqr", 1, {kC1, kC1}, false, false, false, true, false},
    {MatrixOp::kDsv, "dsv", 1, {kC1, kC1}, false, false, false, true, false},
    // usv cannot skip sorting: completing the thin U to a full orthonormal
    // basis is not permutation-equivariant for rectangular inputs.
    {MatrixOp::kUsv, "usv", 1, {kR1, kR1}, false, true, false, false, false},
    {MatrixOp::kVsv, "vsv", 1, {kC1, kC1}, false, false, false, true, false},
    {MatrixOp::kDet, "det", 1, {kOne, kOne}, true, false, false, false, false},
    {MatrixOp::kRnk, "rnk", 1, {kOne, kOne}, false, false, false, true, false},
    {MatrixOp::kChf, "chf", 1, {kR1, kC1}, true, false, false, false, false},
}};

}  // namespace

const OpInfo& GetOpInfo(MatrixOp op) {
  for (const auto& info : kOps) {
    if (info.op == op) return info;
  }
  RMA_CHECK(false && "unknown MatrixOp");
  return kOps[0];
}

Result<MatrixOp> ParseMatrixOp(const std::string& name) {
  const std::string lower = ToLower(name);
  for (const auto& info : kOps) {
    if (lower == info.name) return info.op;
  }
  return Status::KeyError("unknown relational matrix operation: " + name);
}

int64_t ResultExtent(Extent e, int64_t rows1, int64_t cols1, int64_t rows2,
                     int64_t cols2) {
  switch (e) {
    case Extent::kR1:
      return rows1;
    case Extent::kR2:
      return rows2;
    case Extent::kRStar:
      return rows1;  // validated equal to rows2
    case Extent::kC1:
      return cols1;
    case Extent::kC2:
      return cols2;
    case Extent::kCStar:
      return cols1;  // validated equal to cols2
    case Extent::kOne:
      return 1;
  }
  return -1;
}

}  // namespace rma
