#include <utility>

#include "core/exec_internal.h"
#include "core/rma.h"
#include "matrix/blas.h"
#include "matrix/parallel.h"
#include "storage/bat_ops.h"
#include "storage/paged_bat.h"
#include "util/timer.h"

namespace rma {

namespace internal {

namespace {

/// True if both prepared arguments view the same application data in the
/// same row order (self-application, e.g. the covariance cpd(x, x)).
bool SameAppData(const PreparedArg& a, const PreparedArg& b) {
  if (a.split.app_idx.size() != b.split.app_idx.size()) return false;
  for (size_t i = 0; i < a.split.app_idx.size(); ++i) {
    if (a.rel.column(a.split.app_idx[i]).get() !=
        b.rel.column(b.split.app_idx[i]).get()) {
      return false;
    }
  }
  return a.perm == b.perm;
}

}  // namespace

Result<std::vector<BatPtr>> DispatchUnary(ExecContext& ctx, const OpPlan& plan,
                                          const PreparedArg& p) {
  const MatrixOp op = plan.op;
  const int64_t n = p.rows;
  const int64_t k = p.app_cols();
  ScopedThreadBudget budget(ctx.effective_thread_budget());
  Timer timer;
  if (plan.kernel == KernelChoice::kBat) {
    // The ordered column extraction is part of the sort stage on the no-copy
    // path (there is no transformation to charge it to).
    kernel::Columns cols = GatherColumns(p);
    ctx.RecordStage(Stage::kPrepare, timer.Seconds());
    timer.Restart();
    kernel::Columns base;
    switch (op) {
      case MatrixOp::kInv:
        RMA_RETURN_NOT_OK(kernel::BatInv(&cols));
        base = std::move(cols);
        break;
      case MatrixOp::kQqr: {
        kernel::Columns q;
        kernel::Columns rr;
        RMA_RETURN_NOT_OK(kernel::BatQr(cols, &q, &rr));
        base = std::move(q);
        break;
      }
      case MatrixOp::kRqr: {
        kernel::Columns q;
        kernel::Columns rr;
        RMA_RETURN_NOT_OK(kernel::BatQr(cols, &q, &rr));
        base = std::move(rr);
        break;
      }
      case MatrixOp::kDet: {
        RMA_ASSIGN_OR_RETURN(double d, kernel::BatDet(std::move(cols)));
        base = {{d}};
        break;
      }
      case MatrixOp::kTra: {
        base.assign(static_cast<size_t>(n),
                    std::vector<double>(static_cast<size_t>(k), 0.0));
        for (int64_t j = 0; j < k; ++j) {
          const auto& col = cols[static_cast<size_t>(j)];
          for (int64_t i = 0; i < n; ++i) {
            base[static_cast<size_t>(i)][static_cast<size_t>(j)] =
                col[static_cast<size_t>(i)];
          }
        }
        break;
      }
      default: {
        // No column-at-a-time algorithm: fall back to the dense kernels
        // (the transformation is exactly the cost the policy avoids when a
        // BAT algorithm exists).
        const DenseMatrix in = kernel::ColumnsToMatrix(cols);
        RMA_ASSIGN_OR_RETURN(DenseMatrix out,
                             kernel::DenseCompute(op, in, nullptr));
        base = kernel::MatrixToColumns(out);
        break;
      }
    }
    ctx.RecordStage(Stage::kKernel, timer.Seconds());
    return ColumnsToBats(std::move(base));
  }
  const DenseMatrix in = GatherMatrix(p);
  ctx.RecordStage(Stage::kGather, timer.Seconds());
  timer.Restart();
  RMA_ASSIGN_OR_RETURN(DenseMatrix out, kernel::DenseCompute(op, in, nullptr));
  ctx.RecordStage(Stage::kKernel, timer.Seconds());
  timer.Restart();
  std::vector<BatPtr> bats = ColumnsToBats(kernel::MatrixToColumns(out));
  ctx.RecordStage(Stage::kScatter, timer.Seconds());
  return bats;
}

Result<std::vector<BatPtr>> DispatchBinary(ExecContext& ctx,
                                           const OpPlan& plan,
                                           const PreparedArg& pr,
                                           const PreparedArg& ps) {
  const MatrixOp op = plan.op;
  const OpInfo& info = GetOpInfo(op);
  ScopedThreadBudget budget(ctx.effective_thread_budget());
  Timer timer;
  if (plan.kernel == KernelChoice::kBat && info.union_compatible) {
    // Operate BAT-at-a-time; preserves the sparse fast path (Table 5).
    std::vector<BatPtr> base;
    for (int64_t j = 0; j < pr.app_cols(); ++j) {
      const BatPtr a = pr.AppColumnBat(static_cast<size_t>(j));
      const BatPtr b = ps.AppColumnBat(static_cast<size_t>(j));
      switch (op) {
        case MatrixOp::kAdd:
          base.push_back(bat_ops::AddColumns(a, b));
          break;
        case MatrixOp::kSub:
          base.push_back(bat_ops::SubColumns(a, b));
          break;
        default:
          base.push_back(bat_ops::MulColumns(a, b));
          break;
      }
    }
    ctx.RecordStage(Stage::kKernel, timer.Seconds());
    return base;
  }
  if (plan.kernel == KernelChoice::kBat && op == MatrixOp::kCpd) {
    // cpd stays on the BATs themselves (element-at-a-time fetches).
    std::vector<BatPtr> ca;
    std::vector<BatPtr> cb;
    for (int64_t j = 0; j < pr.app_cols(); ++j) {
      ca.push_back(pr.AppColumnBat(static_cast<size_t>(j)));
    }
    for (int64_t j = 0; j < ps.app_cols(); ++j) {
      cb.push_back(ps.AppColumnBat(static_cast<size_t>(j)));
    }
    ctx.RecordStage(Stage::kPrepare, timer.Seconds());
    timer.Restart();
    RMA_ASSIGN_OR_RETURN(kernel::Columns out, kernel::BatCpd(ca, cb));
    ctx.RecordStage(Stage::kKernel, timer.Seconds());
    return ColumnsToBats(std::move(out));
  }
  if (plan.kernel == KernelChoice::kBat) {
    kernel::Columns ca = GatherColumns(pr);
    kernel::Columns cb = GatherColumns(ps);
    ctx.RecordStage(Stage::kPrepare, timer.Seconds());
    timer.Restart();
    kernel::Columns out;
    switch (op) {
      case MatrixOp::kMmu: {
        RMA_ASSIGN_OR_RETURN(out, kernel::BatMmu(ca, cb));
        break;
      }
      case MatrixOp::kSol: {
        RMA_ASSIGN_OR_RETURN(out, kernel::BatSol(ca, cb));
        break;
      }
      default: {
        const DenseMatrix a = kernel::ColumnsToMatrix(ca);
        const DenseMatrix b = kernel::ColumnsToMatrix(cb);
        RMA_ASSIGN_OR_RETURN(DenseMatrix dense,
                             kernel::DenseCompute(op, a, &b));
        out = kernel::MatrixToColumns(dense);
        break;
      }
    }
    ctx.RecordStage(Stage::kKernel, timer.Seconds());
    return ColumnsToBats(std::move(out));
  }
  if (plan.kernel == KernelChoice::kDenseSyrk) {
    // Self cross product cpd(x, x): gather once and run the symmetric SYRK
    // kernel (the paper's cblas_dsyrk call for the covariance workload).
    const DenseMatrix a = GatherMatrix(pr);
    ctx.RecordStage(Stage::kGather, timer.Seconds());
    timer.Restart();
    const DenseMatrix dense = blas::Syrk(a);
    ctx.RecordStage(Stage::kKernel, timer.Seconds());
    timer.Restart();
    std::vector<BatPtr> bats = ColumnsToBats(kernel::MatrixToColumns(dense));
    ctx.RecordStage(Stage::kScatter, timer.Seconds());
    return bats;
  }
  const DenseMatrix a = GatherMatrix(pr);
  const DenseMatrix b = GatherMatrix(ps);
  ctx.RecordStage(Stage::kGather, timer.Seconds());
  timer.Restart();
  RMA_ASSIGN_OR_RETURN(DenseMatrix dense, kernel::DenseCompute(op, a, &b));
  ctx.RecordStage(Stage::kKernel, timer.Seconds());
  timer.Restart();
  std::vector<BatPtr> bats = ColumnsToBats(kernel::MatrixToColumns(dense));
  ctx.RecordStage(Stage::kScatter, timer.Seconds());
  return bats;
}

}  // namespace internal

// ---------------------------------------------------------------------------
// Entry points: prepare -> plan -> dispatch -> assemble
// ---------------------------------------------------------------------------

Result<Relation> RmaUnary(ExecContext* ctx, MatrixOp op, const Relation& r,
                          const std::vector<std::string>& order) {
  RMA_CHECK(ctx != nullptr);
  RMA_RETURN_NOT_OK(ValidateRmaOptions(ctx->options()));
  const OpInfo& info = GetOpInfo(op);
  if (info.arity != 1) {
    return Status::Invalid(std::string(info.name) + " is a binary operation");
  }
  ScopedOpStats op_stats(ctx);
  // Residency bracket: paged columns stay pinned (contiguous, fault-free)
  // from the prepare-stage gather through the assemble-stage scatter, so
  // every raw-pointer fast path below sees stable data; pin failures (torn
  // pages) surface here as the operation's Status. Malloc-backed columns
  // make this a no-op.
  PinnedRelations residency;
  RMA_RETURN_NOT_OK(residency.Pin(r));
  // --- prepare ---------------------------------------------------------------
  RMA_ASSIGN_OR_RETURN(PreparedArgPtr p,
                       internal::PrepareArgument(*ctx, r, order, info,
                                                 /*skip_sort_allowed=*/true));
  const int64_t n = p->rows;
  const int64_t k = p->app_cols();
  if (info.requires_square && n != k) {
    return Status::Invalid(std::string(info.name) +
                           ": application part must be square (" +
                           std::to_string(n) + "x" + std::to_string(k) + ")");
  }
  if ((op == MatrixOp::kQqr || op == MatrixOp::kRqr) && n < k) {
    return Status::Invalid("qr: requires at least as many rows as columns");
  }
  // --- plan ------------------------------------------------------------------
  const OpPlan plan = PlanOp(op, ctx->options(), p->Shape(), nullptr);
  ctx->RecordPlan(plan);
  // --- kernel stages ---------------------------------------------------------
  RMA_ASSIGN_OR_RETURN(std::vector<BatPtr> base,
                       internal::DispatchUnary(*ctx, plan, *p));
  // --- morph + merge ---------------------------------------------------------
  Timer timer;
  Result<Relation> result = internal::AssembleUnary(info, *p, std::move(base));
  ctx->RecordStage(Stage::kMorph, timer.Seconds());
  if (result.ok()) op_stats.Commit();
  return result;
}

Result<Relation> RmaBinary(ExecContext* ctx, MatrixOp op, const Relation& r,
                           const std::vector<std::string>& order_r,
                           const Relation& s,
                           const std::vector<std::string>& order_s) {
  RMA_CHECK(ctx != nullptr);
  RMA_RETURN_NOT_OK(ValidateRmaOptions(ctx->options()));
  const OpInfo& info = GetOpInfo(op);
  if (info.arity != 2) {
    return Status::Invalid(std::string(info.name) + " is a unary operation");
  }
  ScopedOpStats op_stats(ctx);
  // Residency bracket for both arguments (see RmaUnary).
  PinnedRelations residency;
  RMA_RETURN_NOT_OK(residency.Pin(r));
  RMA_RETURN_NOT_OK(residency.Pin(s));
  // --- prepare ---------------------------------------------------------------
  RMA_ASSIGN_OR_RETURN(
      internal::BinaryArgs args,
      internal::PrepareBinaryArgs(*ctx, info, r, order_r, s, order_s));
  const PreparedArg& pr = *args.left;
  const PreparedArg& ps = *args.right;
  RMA_RETURN_NOT_OK(internal::CheckBinaryDims(info, pr, ps));
  // --- plan ------------------------------------------------------------------
  const ArgShape right_shape = ps.Shape();
  const bool self_cross =
      op == MatrixOp::kCpd && internal::SameAppData(pr, ps);
  OpPlan plan =
      PlanOp(op, ctx->options(), pr.Shape(), &right_shape, self_cross);
  // The subtree scheduler may have shrunk the thread budget since planning;
  // clamp the shard count so the recorded plan matches what actually runs.
  internal::ClampShards(*ctx, &plan);
  ctx->RecordPlan(plan);
  // --- kernel stages ---------------------------------------------------------
  RMA_ASSIGN_OR_RETURN(
      std::vector<BatPtr> base,
      plan.shards > 1 ? internal::DispatchShardedBinary(*ctx, plan, pr, ps)
                      : internal::DispatchBinary(*ctx, plan, pr, ps));
  // --- morph + merge ---------------------------------------------------------
  Timer timer;
  Result<Relation> result =
      internal::AssembleBinary(info, pr, ps, std::move(base));
  ctx->RecordStage(Stage::kMorph, timer.Seconds());
  if (result.ok()) op_stats.Commit();
  return result;
}

Result<Relation> RmaUnary(MatrixOp op, const Relation& r,
                          const std::vector<std::string>& order,
                          const RmaOptions& opts) {
  ExecContext ctx(opts);
  return RmaUnary(&ctx, op, r, order);
}

Result<Relation> RmaBinary(MatrixOp op, const Relation& r,
                           const std::vector<std::string>& order_r,
                           const Relation& s,
                           const std::vector<std::string>& order_s,
                           const RmaOptions& opts) {
  ExecContext ctx(opts);
  return RmaBinary(&ctx, op, r, order_r, s, order_s);
}

}  // namespace rma
