#include "core/planner.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_set>
#include <utility>

#include "core/algebra.h"
#include "core/constructors.h"
#include "core/kernels.h"
#include "matrix/parallel.h"
#include "storage/sparse_bat.h"

namespace rma {

namespace {

// --- cost model -------------------------------------------------------------
//
// Element counts are priced through a CostProfile (core/calibration.h): each
// kernel family carries a per-element rate plus a fixed overhead. The
// default (analytic) profile uses dimensionless element-operation units —
// one unit is one streamed read-modify-write over a contiguous double, and
// only the ratio between the column-at-a-time (BAT) path and the
// gather/kernel/scatter (contiguous) path matters. Its penalties encode
// what Sec. 7.3 and Fig. 17 measure: element-wise BAT operations run at
// streaming speed (and skip zeros on compressed columns), axpy-based
// kernels are close to dense speed, column-at-a-time decompositions lose
// locality, and cpd degrades to element-at-a-time BUNfetch calls — the
// 24-70x delegation win. Probed/refined profiles replace the constants with
// measured seconds for this machine.

double Flops(MatrixOp op, const ArgShape& a, const ArgShape* b) {
  const double n = static_cast<double>(a.rows);
  const double k = static_cast<double>(a.cols);
  switch (op) {
    case MatrixOp::kAdd:
    case MatrixOp::kSub:
    case MatrixOp::kEmu:
    case MatrixOp::kTra:
      return n * k;
    case MatrixOp::kMmu:
      return n * k * static_cast<double>(b == nullptr ? 1 : b->cols);
    case MatrixOp::kCpd:
      return n * k * static_cast<double>(b == nullptr ? 1 : b->cols);
    case MatrixOp::kOpd:
      return n * k * static_cast<double>(b == nullptr ? 1 : b->rows);
    case MatrixOp::kSol:
      return 2.0 * n * k * k;
    case MatrixOp::kInv:
      return n * n * n;
    case MatrixOp::kDet:
      return n * n * n / 3.0;
    case MatrixOp::kQqr:
    case MatrixOp::kRqr:
      return 2.0 * n * k * k;
    default:
      // svd/eigen/chf/rnk: contiguous-only; the estimate is informational.
      return 2.0 * n * k * k + k * k * k;
  }
}

/// Result shape of the base result, from Table 1.
ArgShape ResultShape(const OpInfo& info, const ArgShape& a, const ArgShape* b) {
  const int64_t r2 = b == nullptr ? 0 : b->rows;
  const int64_t c2 = b == nullptr ? 0 : b->cols;
  ArgShape out;
  out.rows = ResultExtent(info.shape.rows, a.rows, a.cols, r2, c2);
  out.cols = ResultExtent(info.shape.cols, a.rows, a.cols, r2, c2);
  return out;
}

std::vector<Stage> StagesFor(KernelChoice kernel) {
  if (kernel == KernelChoice::kBat) {
    return {Stage::kPrepare, Stage::kKernel, Stage::kMorph};
  }
  return {Stage::kPrepare, Stage::kGather, Stage::kKernel, Stage::kScatter,
          Stage::kMorph};
}

// Element-equivalent price of launching one shard: a pool dispatch, a budget
// install, and the cold start of a worker's cache working set. Calibrated
// loosely — it only needs to keep shard counts away from shapes where a
// task costs more than its slice of the kernel.
constexpr double kShardForkElements = 32768.0;

/// Picks plan.shards / plan.merge for the already-chosen kernel. Sharding is
/// considered for two op classes, matching the merge contracts the executor
/// implements (core/shard_exec.cc):
///   - element-wise union-compatible ops over fully dense contiguous columns
///     (ordered concat of disjoint row ranges; bit-exact),
///   - cross products on the dense/SYRK kernels (per-shard partial Gram
///     matrices summed pairwise; associative up to FP rounding).
/// The count is chosen from calibrated per-shard costs: candidate s halves
/// the per-shard element count, which a piecewise profile prices in the
/// cache regime that work actually fits in, plus per-shard fork overhead and
/// the O(cols^2 log s) tree-reduce. Sharding must beat the unsharded estimate
/// by a margin or the plan stays at shards=1.
void DecideShards(const OpInfo& info, const RmaOptions& opts,
                  const ArgShape& left, const ArgShape* right,
                  const CostProfile& profile, OpPlan* plan) {
  MergeKind merge = MergeKind::kNone;
  if (info.union_compatible && right != nullptr && left.contiguous &&
      right->contiguous && left.density >= 1.0 && right->density >= 1.0) {
    merge = MergeKind::kConcat;
  } else if (plan->op == MatrixOp::kCpd && right != nullptr &&
             left.contiguous && right->contiguous &&
             plan->kernel != KernelChoice::kBat) {
    merge = MergeKind::kTreeReduce;
  } else {
    return;
  }

  const int budget =
      opts.max_threads > 0 ? opts.max_threads : DefaultThreadCount();
  const int64_t row_cap = left.rows / std::max<int64_t>(1, opts.shard_min_rows);
  const int cap = static_cast<int>(std::min<int64_t>(
      std::min<int64_t>(opts.max_shards, budget), row_cap));
  if (cap < 2) return;

  const bool on_bat = plan->kernel == KernelChoice::kBat;
  const CostKernel family =
      on_bat ? BatCostFamily(plan->op) : CostKernel::kDenseFlop;
  // Chosen-path work; the dense path also splits its gather across shards.
  const double elements = on_bat ? plan->bat_elements : plan->flops;
  const double gather = on_bat ? 0.0 : plan->gather_elements;
  const double out_cols = static_cast<double>(
      merge == MergeKind::kTreeReduce ? left.cols * left.cols : 0);

  const double unsharded = profile.Cost(family, elements) +
                           profile.Cost(CostKernel::kGather, gather);
  double best_cost = unsharded;
  int best_s = 1;
  for (int s = 2; s <= cap; s *= 2) {
    const double ds = static_cast<double>(s);
    // Shards run concurrently: the modeled wall time is one shard's chain
    // plus the serial merge and the fork overhead of launching s tasks.
    double cost = profile.Cost(family, elements / ds) +
                  profile.Cost(CostKernel::kGather, gather / ds) +
                  ds * profile.Cost(family, kShardForkElements);
    if (merge == MergeKind::kTreeReduce) {
      cost += profile.Cost(CostKernel::kBatStream,
                           std::log2(ds) * out_cols);
    }
    if (cost < best_cost) {
      best_cost = cost;
      best_s = s;
    }
  }
  // Demand a clear win: sharding perturbs tree-reduced rounding and spends
  // pool slots, so a marginal estimate is not worth it.
  if (best_s > 1 && best_cost < 0.75 * unsharded) {
    plan->shards = best_s;
    plan->merge = merge;
    plan->stages.insert(plan->stages.end() - 1, Stage::kMerge);
  }
}

}  // namespace

CostKernel BatCostFamily(MatrixOp op) {
  switch (op) {
    case MatrixOp::kAdd:
    case MatrixOp::kSub:
    case MatrixOp::kEmu:
      return CostKernel::kBatStream;
    case MatrixOp::kMmu:
      return CostKernel::kBatAxpy;
    case MatrixOp::kTra:
      return CostKernel::kBatTranspose;
    case MatrixOp::kCpd:
      return CostKernel::kBatFetch;
    default:
      return CostKernel::kBatDecomp;
  }
}

const char* StageName(Stage s) {
  switch (s) {
    case Stage::kPrepare:
      return "prepare";
    case Stage::kGather:
      return "gather";
    case Stage::kKernel:
      return "kernel";
    case Stage::kScatter:
      return "scatter";
    case Stage::kMorph:
      return "morph";
    case Stage::kMerge:
      return "merge";
  }
  return "?";
}

const char* MergeKindName(MergeKind m) {
  switch (m) {
    case MergeKind::kNone:
      return "none";
    case MergeKind::kConcat:
      return "concat";
    case MergeKind::kTreeReduce:
      return "tree-reduce";
  }
  return "?";
}

const char* KernelChoiceName(KernelChoice k) {
  switch (k) {
    case KernelChoice::kBat:
      return "bat";
    case KernelChoice::kDense:
      return "dense";
    case KernelChoice::kDenseSyrk:
      return "dense-syrk";
  }
  return "?";
}

std::string OpPlan::DebugString() const {
  std::ostringstream os;
  os << GetOpInfo(op).name << " kernel=" << KernelChoiceName(kernel)
     << " stages=[";
  for (size_t i = 0; i < stages.size(); ++i) {
    if (i > 0) os << ' ';
    os << StageName(stages[i]);
  }
  os << "] cost(bat)=" << cost_bat << " cost(dense)=" << cost_dense
     << " cost-model=" << CostSourceName(cost_source);
  if (!cost_regime.empty()) os << " regime=" << cost_regime;
  if (shards > 1) os << " shards=" << shards << " merge=" << MergeKindName(merge);
  if (over_budget) os << " over-budget";
  return os.str();
}

OpPlan PlanOp(MatrixOp op, const RmaOptions& opts, const ArgShape& left,
              const ArgShape* right, bool self_cross) {
  const OpInfo& info = GetOpInfo(op);
  OpPlan plan;
  plan.op = op;
  plan.left = left;
  if (right != nullptr) plan.right = *right;

  const double flops = Flops(op, left, right);
  const ArgShape out = ResultShape(info, left, right);
  const CostProfilePtr profile = ResolveCostProfile(opts);

  // Contiguous path: gather each argument, run the dense kernel, scatter the
  // base result. A self cross product gathers only once and halves the
  // kernel work (SYRK). Sparse columns decompress on gather, so density
  // does not discount the copy.
  double gather = static_cast<double>(left.rows) * static_cast<double>(left.cols);
  if (right != nullptr && !self_cross) {
    gather += static_cast<double>(right->rows) * static_cast<double>(right->cols);
  }
  const double scatter =
      static_cast<double>(out.rows) * static_cast<double>(out.cols);
  plan.flops = self_cross ? flops / 2.0 : flops;
  plan.gather_elements = gather;
  plan.scatter_elements = scatter;
  plan.sort_elements =
      static_cast<double>(left.rows) +
      (right != nullptr && !self_cross ? static_cast<double>(right->rows) : 0);
  plan.cost_dense = profile->Cost(CostKernel::kGather, gather) +
                    profile->Cost(CostKernel::kDenseFlop, plan.flops) +
                    profile->Cost(CostKernel::kScatter, scatter);

  // Column-at-a-time path: no transformation, but the kernel runs at its
  // family's (slower) rate. Element-wise operations stream only the stored
  // entries of compressed columns (Table 5), which the density factor
  // captures.
  double bat_elements = flops;
  if (info.union_compatible) {
    const double d_right = right == nullptr ? 1.0 : right->density;
    bat_elements *= std::min(1.0, (left.density + d_right) / 2.0);
  }
  plan.bat_elements = bat_elements;
  plan.cost_bat = profile->Cost(BatCostFamily(op), bat_elements);
  plan.cost_source = profile->Source();

  const int64_t contiguous_bytes =
      left.ContiguousBytes() +
      (right != nullptr && !self_cross ? right->ContiguousBytes() : 0);
  plan.over_budget = contiguous_bytes > opts.contiguous_budget_bytes;

  const bool has_bat = kernel::HasBatKernel(op);
  const KernelChoice dense =
      self_cross ? KernelChoice::kDenseSyrk : KernelChoice::kDense;
  switch (opts.kernel) {
    case KernelPolicy::kBat:
      plan.kernel = has_bat ? KernelChoice::kBat : dense;
      break;
    case KernelPolicy::kContiguous:
      plan.kernel = dense;
      break;
    case KernelPolicy::kAuto:
      if (!has_bat) {
        plan.kernel = dense;
      } else if (plan.over_budget) {
        // Memory ceiling: never materialize a contiguous copy beyond the
        // budget when a no-copy algorithm exists.
        plan.kernel = KernelChoice::kBat;
      } else {
        plan.kernel = plan.cost_bat <= plan.cost_dense ? KernelChoice::kBat
                                                       : dense;
      }
      break;
  }
  plan.stages = StagesFor(plan.kernel);
  DecideShards(info, opts, left, right, *profile, &plan);

  // Surface which cache regime priced the chosen path (piecewise profiles
  // only; single-rate profiles leave this empty and EXPLAIN output
  // unchanged).
  const bool on_bat = plan.kernel == KernelChoice::kBat;
  const KernelCost chosen =
      profile->Get(on_bat ? BatCostFamily(op) : CostKernel::kDenseFlop);
  if (chosen.NumRegimes() > 1) {
    const double elements = on_bat ? plan.bat_elements : plan.flops;
    plan.cost_regime =
        CostRegimeLabel(chosen.RegimeOf(elements), chosen.NumRegimes());
  }
  return plan;
}

ArgShape MakeArgShape(const Relation& r, const std::vector<int>& app_idx,
                      int64_t rows) {
  ArgShape shape;
  shape.rows = rows;
  shape.cols = static_cast<int64_t>(app_idx.size());
  if (shape.cols > 0 && shape.rows > 0) {
    double density = 0;
    for (int idx : app_idx) {
      const Bat* col = r.column(idx).get();
      const auto* sparse = dynamic_cast<const SparseDoubleBat*>(col);
      density += sparse == nullptr
                     ? 1.0
                     : static_cast<double>(sparse->NumNonZero()) /
                           static_cast<double>(shape.rows);
      if (col->ContiguousDoubleData() == nullptr) shape.contiguous = false;
    }
    shape.density = density / static_cast<double>(shape.cols);
  }
  return shape;
}

Result<ArgShape> ShapeOf(const Relation& r,
                         const std::vector<std::string>& order) {
  RMA_ASSIGN_OR_RETURN(OrderSplit split, SplitSchema(r, order));
  return MakeArgShape(r, split.app_idx, r.num_rows());
}

// --- expression-level planning ----------------------------------------------

namespace {

/// Identity of a leaf's prepare work: the column data plus the order schema.
std::string PrepareKey(const Relation& r,
                       const std::vector<std::string>& order) {
  std::ostringstream os;
  for (const auto& col : r.columns()) os << col.get() << ',';
  os << '|';
  for (const auto& o : order) os << o << ',';
  return os.str();
}

Result<PlanNodePtr> PlanNodeFor(const RmaExprPtr& expr, const RmaOptions& opts,
                                std::unordered_set<std::string>* prepared) {
  if (expr == nullptr) return Status::Invalid("null RMA expression");
  auto node = std::make_shared<PlanNode>();
  switch (expr->kind) {
    case RmaExpr::Kind::kLeaf: {
      node->kind = PlanNode::Kind::kScan;
      node->relation_name = expr->relation.name();
      node->out_shape.rows = expr->relation.num_rows();
      node->out_shape.cols = expr->relation.num_columns();
      return node;
    }
    case RmaExpr::Kind::kRelabel: {
      if (expr->children.size() != 1) {
        return Status::Invalid("relabel node expects exactly one child");
      }
      RMA_ASSIGN_OR_RETURN(PlanNodePtr child,
                           PlanNodeFor(expr->children[0], opts, prepared));
      node->kind = PlanNode::Kind::kRelabel;
      node->relabel_attr = expr->relabel_attr;
      node->out_shape = child->out_shape;
      node->children = {std::move(child)};
      return node;
    }
    case RmaExpr::Kind::kOp:
      break;
  }
  if (expr->children.empty() || expr->children.size() > 2 ||
      expr->children.size() != expr->orders.size()) {
    return Status::Invalid("malformed RMA expression node");
  }
  node->kind = PlanNode::Kind::kOp;
  node->orders = expr->orders;
  std::vector<ArgShape> shapes;
  for (size_t i = 0; i < expr->children.size(); ++i) {
    const RmaExprPtr& child = expr->children[i];
    RMA_ASSIGN_OR_RETURN(PlanNodePtr child_plan,
                         PlanNodeFor(child, opts, prepared));
    ArgShape shape;
    if (child->kind == RmaExpr::Kind::kLeaf) {
      RMA_ASSIGN_OR_RETURN(shape,
                           ShapeOf(child->relation, expr->orders[i]));
      const std::string key = PrepareKey(child->relation, expr->orders[i]);
      node->cached_prepare.push_back(prepared->count(key) > 0);
      prepared->insert(key);
    } else {
      // An operation result: the parent's order schema consumes the lead
      // (origin) columns, leaving the base-result width as application part.
      shape = child_plan->out_shape;
      node->cached_prepare.push_back(false);
    }
    shapes.push_back(shape);
    node->children.push_back(std::move(child_plan));
  }
  // Self cross product: both arguments view the same columns under the same
  // order schema (covers distinct leaf nodes wrapping one relation, the
  // shape SQL produces for CPD(x BY U, x BY U)).
  bool self_cross = false;
  if (expr->op == MatrixOp::kCpd && expr->children.size() == 2 &&
      expr->orders[0] == expr->orders[1]) {
    const RmaExprPtr& a = expr->children[0];
    const RmaExprPtr& b = expr->children[1];
    if (a == b) {
      self_cross = true;
    } else if (a->kind == RmaExpr::Kind::kLeaf &&
               b->kind == RmaExpr::Kind::kLeaf &&
               a->relation.num_columns() == b->relation.num_columns()) {
      self_cross = true;
      for (int c = 0; c < a->relation.num_columns(); ++c) {
        if (a->relation.column(c).get() != b->relation.column(c).get()) {
          self_cross = false;
        }
      }
    }
  }
  node->op_plan =
      PlanOp(expr->op, opts, shapes[0],
             shapes.size() > 1 ? &shapes[1] : nullptr, self_cross);
  node->out_shape = ResultShape(GetOpInfo(expr->op), shapes[0],
                                shapes.size() > 1 ? &shapes[1] : nullptr);
  return node;
}

void RenderNode(const PlanNodePtr& node, int depth, std::ostringstream* os) {
  for (int i = 0; i < depth; ++i) *os << "  ";
  switch (node->kind) {
    case PlanNode::Kind::kScan:
      *os << "scan " << node->relation_name << " [" << node->out_shape.rows
          << " rows x " << node->out_shape.cols << " cols]\n";
      break;
    case PlanNode::Kind::kRelabel:
      *os << "relabel BY " << node->relabel_attr
          << " [no matrix computation]\n";
      break;
    case PlanNode::Kind::kOp: {
      *os << node->op_plan.DebugString() << " BY ";
      for (size_t i = 0; i < node->orders.size(); ++i) {
        if (i > 0) *os << " / ";
        *os << '[';
        for (size_t j = 0; j < node->orders[i].size(); ++j) {
          if (j > 0) *os << ' ';
          *os << node->orders[i][j];
        }
        *os << ']';
      }
      *os << " out=" << node->out_shape.rows << 'x' << node->out_shape.cols;
      for (size_t i = 0; i < node->cached_prepare.size(); ++i) {
        if (node->cached_prepare[i]) {
          *os << " (arg" << i + 1 << " prepare cached)";
        }
      }
      *os << '\n';
      break;
    }
  }
  for (const auto& child : node->children) RenderNode(child, depth + 1, os);
}

}  // namespace

Result<PlanNodePtr> PlanExpression(const RmaExprPtr& expr,
                                   const RmaOptions& opts,
                                   RewriteReport* report) {
  const RmaExprPtr rewritten = RewriteExpression(expr, opts.rewrites, report);
  std::unordered_set<std::string> prepared;
  return PlanNodeFor(rewritten, opts, &prepared);
}

std::string RenderPlan(const PlanNodePtr& plan) {
  std::ostringstream os;
  if (plan != nullptr) RenderNode(plan, 0, &os);
  return os.str();
}

}  // namespace rma
