#include "core/algebra.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "core/constructors.h"
#include "core/exec_context.h"
#include "storage/bat_ops.h"

namespace rma {

namespace {

const std::vector<std::string> kContextOrder = {kContextAttrName};

bool IsOpNode(const RmaExprPtr& e, MatrixOp op) {
  return e != nullptr && e->kind == RmaExpr::Kind::kOp && e->op == op;
}

/// True if the node is a transpose whose result may be substituted away:
/// un-aliased (an alias would become the relation name that det/rnk lead
/// columns report) with a single-attribute order schema.
bool IsSubstitutableTra(const RmaExprPtr& e) {
  return IsOpNode(e, MatrixOp::kTra) && e->alias.empty() &&
         e->orders.size() == 1 && e->orders[0].size() == 1;
}

/// True if `leaf`'s application schema relative to `order` is strictly
/// lexicographically sorted (the precondition under which dropping the
/// sorted-attribute-name row permutation of µ_C(tra(·)) is sound).
bool LeafAppSchemaSorted(const RmaExprPtr& leaf,
                         const std::vector<std::string>& order) {
  if (leaf == nullptr || leaf->kind != RmaExpr::Kind::kLeaf) return false;
  const Schema& schema = leaf->relation.schema();
  std::string prev;
  bool first = true;
  for (int i = 0; i < schema.num_attributes(); ++i) {
    const std::string& name = schema.attribute(i).name;
    if (std::find(order.begin(), order.end(), name) != order.end()) continue;
    if (!first && !(prev < name)) return false;
    prev = name;
    first = false;
  }
  return true;
}

/// One bottom-up rewrite pass. Returns the (possibly shared) node and
/// appends fired rule names to `report`.
RmaExprPtr RewritePass(const RmaExprPtr& e, const RewriteRules& rules,
                       RewriteReport* report, bool* changed) {
  if (e == nullptr || e->kind != RmaExpr::Kind::kOp) return e;

  // Children first.
  auto node = e;
  std::vector<RmaExprPtr> kids;
  bool kid_changed = false;
  for (const auto& c : e->children) {
    RmaExprPtr k = RewritePass(c, rules, report, &kid_changed);
    kids.push_back(std::move(k));
  }
  if (kid_changed) {
    node = std::make_shared<RmaExpr>(*e);
    node->children = std::move(kids);
    *changed = true;
  }

  auto fire = [&](const char* rule, RmaExprPtr replacement) {
    if (report != nullptr) report->applied.push_back(rule);
    replacement->alias = node->alias;
    *changed = true;
    return replacement;
  };

  // Malformed arity (e.g. a unary SQL call of a binary operation) is
  // rejected by evaluation; don't index past the children here.
  const bool binary = node->children.size() == 2 && node->orders.size() == 2;
  const bool unary = node->children.size() == 1 && node->orders.size() == 1;

  // mmu(tra(x BY U) BY C, y BY V) → cpd(x BY U, y BY V).
  if (rules.mmu_tra_to_cpd && binary && node->op == MatrixOp::kMmu &&
      node->orders[0] == kContextOrder &&
      IsSubstitutableTra(node->children[0])) {
    const RmaExprPtr& tra = node->children[0];
    return fire("mmu_tra_to_cpd",
                RmaExpr::Binary(MatrixOp::kCpd, tra->children[0],
                                tra->orders[0], node->children[1],
                                node->orders[1]));
  }

  // mmu(x BY U, tra(y BY V) BY C) → opd(x BY U, y BY V).
  if (rules.mmu_tra_to_opd && binary && node->op == MatrixOp::kMmu &&
      node->orders[1] == kContextOrder &&
      IsSubstitutableTra(node->children[1]) &&
      LeafAppSchemaSorted(node->children[1]->children[0],
                          node->children[1]->orders[0])) {
    const RmaExprPtr& tra = node->children[1];
    return fire("mmu_tra_to_opd",
                RmaExpr::Binary(MatrixOp::kOpd, node->children[0],
                                node->orders[0], tra->children[0],
                                tra->orders[0]));
  }

  // tra(tra(x BY U) BY C) → relabel(x, U).
  if (rules.eliminate_double_tra && unary && node->op == MatrixOp::kTra &&
      node->orders[0] == kContextOrder &&
      IsSubstitutableTra(node->children[0])) {
    const RmaExprPtr& tra = node->children[0];
    auto relabel = std::make_shared<RmaExpr>();
    relabel->kind = RmaExpr::Kind::kRelabel;
    relabel->children = {tra->children[0]};
    relabel->relabel_attr = tra->orders[0][0];
    return fire("eliminate_double_tra", std::move(relabel));
  }

  // rnk(tra(x BY U) BY C) → rnk(x BY U).
  if (rules.rnk_of_tra && unary && node->op == MatrixOp::kRnk &&
      node->orders[0] == kContextOrder &&
      IsSubstitutableTra(node->children[0])) {
    const RmaExprPtr& tra = node->children[0];
    return fire("rnk_of_tra", RmaExpr::Unary(MatrixOp::kRnk, tra->children[0],
                                             tra->orders[0]));
  }

  // det(tra(x BY U) BY C) → det(x BY U).
  if (rules.det_of_tra && unary && node->op == MatrixOp::kDet &&
      node->orders[0] == kContextOrder &&
      IsSubstitutableTra(node->children[0]) &&
      LeafAppSchemaSorted(node->children[0]->children[0],
                          node->children[0]->orders[0])) {
    const RmaExprPtr& tra = node->children[0];
    return fire("det_of_tra", RmaExpr::Unary(MatrixOp::kDet, tra->children[0],
                                             tra->orders[0]));
  }

  return node;
}

/// Evaluates a kRelabel node: the closed form of tra(tra(x BY U) BY C).
/// The result is `in` with U stringified into the context attribute C and
/// the application columns cast to DOUBLE and emitted in lexicographic
/// order — exactly the schema and tuples the two transposes would produce.
Result<Relation> EvaluateRelabel(const Relation& in,
                                 const std::string& order_attr) {
  RMA_ASSIGN_OR_RETURN(OrderSplit split, SplitSchema(in, {order_attr}));
  const BatPtr& order_col = in.column(split.order_idx[0]);
  if (!bat_ops::IsKey({order_col})) {
    return Status::Invalid("order schema is not a key of the relation");
  }
  // The inner transpose would have turned the stringified order values into
  // attribute names; a collision there is a schema error, so it must stay
  // one here (e.g. DOUBLE values 1.0 and 1 both printing as "1").
  const int64_t n = in.num_rows();
  std::vector<std::string> context(static_cast<size_t>(n));
  std::unordered_set<std::string> seen;
  seen.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    context[static_cast<size_t>(i)] = order_col->GetString(i);
    if (!seen.insert(context[static_cast<size_t>(i)]).second) {
      return Status::Invalid(
          "result attribute names collide (value '" +
          context[static_cast<size_t>(i)] +
          "' of attribute " + order_attr + " is not unique as a string)");
    }
  }
  std::vector<std::pair<std::string, int>> apps;
  for (int idx : split.app_idx) {
    apps.emplace_back(in.schema().attribute(idx).name, idx);
  }
  std::sort(apps.begin(), apps.end());
  std::vector<Attribute> attrs = {{kContextAttrName, DataType::kString}};
  std::vector<BatPtr> cols = {MakeStringBat(std::move(context))};
  for (const auto& [name, idx] : apps) {
    attrs.push_back(Attribute{name, DataType::kDouble});
    cols.push_back(MakeDoubleBat(ToDoubleVector(*in.column(idx))));
  }
  RMA_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(attrs)));
  return Relation::Make(std::move(schema), std::move(cols), in.name());
}

}  // namespace

RmaExprPtr RmaExpr::Leaf(Relation r) {
  auto e = std::make_shared<RmaExpr>();
  e->kind = Kind::kLeaf;
  e->relation = std::move(r);
  return e;
}

RmaExprPtr RmaExpr::Unary(MatrixOp op, RmaExprPtr child,
                          std::vector<std::string> order) {
  auto e = std::make_shared<RmaExpr>();
  e->kind = Kind::kOp;
  e->op = op;
  e->children = {std::move(child)};
  e->orders = {std::move(order)};
  return e;
}

RmaExprPtr RmaExpr::Binary(MatrixOp op, RmaExprPtr left,
                           std::vector<std::string> order_left,
                           RmaExprPtr right,
                           std::vector<std::string> order_right) {
  auto e = std::make_shared<RmaExpr>();
  e->kind = Kind::kOp;
  e->op = op;
  e->children = {std::move(left), std::move(right)};
  e->orders = {std::move(order_left), std::move(order_right)};
  return e;
}

RmaExprPtr RewriteExpression(const RmaExprPtr& expr, const RewriteRules& rules,
                             RewriteReport* report) {
  if (!rules.enabled) return expr;
  RmaExprPtr cur = expr;
  // Rules only shrink the tree, so the fixpoint is reached quickly; the cap
  // is a safety net, not a tuning knob.
  for (int round = 0; round < 8; ++round) {
    bool changed = false;
    cur = RewritePass(cur, rules, report, &changed);
    if (!changed) break;
  }
  return cur;
}

Result<Relation> EvaluateExpression(const RmaExprPtr& expr, ExecContext* ctx) {
  if (expr == nullptr) return Status::Invalid("null RMA expression");
  Result<Relation> out = [&]() -> Result<Relation> {
    switch (expr->kind) {
      case RmaExpr::Kind::kLeaf:
        return expr->relation;
      case RmaExpr::Kind::kRelabel: {
        if (expr->children.size() != 1) {
          return Status::Invalid("relabel node expects exactly one child");
        }
        RMA_ASSIGN_OR_RETURN(Relation in,
                             EvaluateExpression(expr->children[0], ctx));
        return EvaluateRelabel(in, expr->relabel_attr);
      }
      case RmaExpr::Kind::kOp: {
        if (expr->children.empty() || expr->children.size() > 2 ||
            expr->children.size() != expr->orders.size()) {
          return Status::Invalid("malformed RMA expression node");
        }
        RMA_ASSIGN_OR_RETURN(Relation left,
                             EvaluateExpression(expr->children[0], ctx));
        if (expr->children.size() == 1) {
          return RmaUnary(ctx, expr->op, left, expr->orders[0]);
        }
        RMA_ASSIGN_OR_RETURN(Relation right,
                             EvaluateExpression(expr->children[1], ctx));
        return RmaBinary(ctx, expr->op, left, expr->orders[0], right,
                         expr->orders[1]);
      }
    }
    return Status::Invalid("unreachable RMA expression kind");
  }();
  if (out.ok() && !expr->alias.empty()) out->set_name(expr->alias);
  return out;
}

Result<Relation> EvaluateExpression(const RmaExprPtr& expr,
                                    const RmaOptions& opts) {
  ExecContext ctx(opts);
  return EvaluateExpression(expr, &ctx);
}

Result<Relation> EvaluateOptimized(const RmaExprPtr& expr, ExecContext* ctx,
                                   RewriteReport* report) {
  return EvaluateExpression(
      RewriteExpression(expr, ctx->options().rewrites, report), ctx);
}

Result<Relation> EvaluateOptimized(const RmaExprPtr& expr,
                                   const RmaOptions& opts,
                                   RewriteReport* report) {
  ExecContext ctx(opts);
  return EvaluateOptimized(expr, &ctx, report);
}

}  // namespace rma
