#ifndef RMA_CORE_QUERY_CACHE_H_
#define RMA_CORE_QUERY_CACHE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/exec_context.h"
#include "core/options.h"
#include "core/planner.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace rma {

/// Database-level query cache shared by every statement (and every
/// ExecContext) of one catalog. It amortizes the two expensive per-statement
/// derivations across repeated queries:
///
///  - **statement plans**: the rewritten relational-matrix expression trees
///    and their lowered physical PlanNode trees, keyed on the normalized
///    statement text. A repeated identical statement skips parsing-side
///    binding, the cross-algebra rewriter, and the planner entirely.
///  - **prepared arguments**: order-schema sort permutations and relative-
///    alignment permutations, keyed on the stable relation identity token
///    (storage/relation.h) plus the order schema. A repeated operation over
///    the same relation skips the sort — the paper's single biggest cost for
///    wide order schemas (Fig. 13).
///
/// Invalidation is per-table, anchored on relation identities: a statement
/// plan records the base tables it reads as (lower-cased name, relation
/// identity) pairs captured when the statement bound them, and hits only
/// while the caller's current snapshot matches exactly — so a catalog
/// mutation of table A never costs cached plans that read only table B,
/// and a copied Database sharing this cache can never borrow a plan whose
/// leaves embed the other catalog's relations (identities are process-wide
/// unique and never recycled). The owning catalog (sql::Database) still
/// bumps a monotone version on Register/Drop/CREATE TABLE AS and passes the
/// written table names to InvalidatePlansForTables, which eagerly evicts
/// exactly the plans reading a written table; the version remains the
/// correctness backstop for plans whose table set could not be attributed
/// (`tables_known` false) — those hit only at the exact version they were
/// built at, as before. Prepared entries are keyed on identity tokens that
/// new relations can never collide with, so they are invalidated precisely
/// via EvictRelation when the catalog replaces or drops a relation.
///
/// Concurrent identical statements (ExecuteBatch dispatches whole runs at
/// once) are deduplicated: AcquirePlan elects one leader per normalized key
/// to plan while the rest wait and borrow the published plan, so a batch of
/// N identical statements plans once instead of N times racing to fill the
/// same entry.
///
/// All methods are thread-safe (one mutex); contexts of concurrent queries
/// may share one cache.
class QueryCache {
 public:
  /// One cached FROM-clause relational-matrix operation of a statement: the
  /// rewritten expression with leaf relations bound (re-evaluation runs it
  /// directly) plus the lowered physical plan and the fired rewrite rules
  /// (EXPLAIN / provenance).
  struct CachedOp {
    RmaExprPtr rewritten;
    PlanNodePtr plan;
    std::vector<std::string> rewrites;
  };

  /// Identity snapshot of the base tables a statement reads: (lower-cased
  /// table name, Relation::identity() when the statement captured it),
  /// sorted by name, de-duplicated. Two snapshots are interchangeable iff
  /// they compare equal — same tables, same relation objects.
  using TableSnapshot = std::vector<std::pair<std::string, uint64_t>>;

  /// The cached plan of one whole statement, in FROM-clause traversal order.
  struct StatementPlan {
    std::vector<CachedOp> ops;
    uint64_t catalog_version = 0;
    uint64_t options_fingerprint = 0;
    /// The read-set snapshot the statement was bound against. With
    /// `tables_known`, the plan hits for any caller whose current snapshot
    /// is equal (regardless of catalog version — mutations of other tables
    /// don't matter); without it, only the exact catalog version hits.
    TableSnapshot base_tables;
    bool tables_known = false;
  };
  using StatementPlanPtr = std::shared_ptr<const StatementPlan>;

  /// Cumulative effectiveness counters (also mirrored into RmaStats sinks by
  /// the contexts that use the cache).
  struct Counters {
    int64_t plan_hits = 0;
    int64_t plan_misses = 0;
    int64_t plan_invalidations = 0;  ///< entries dropped by catalog mutation
    int64_t plan_dedup_waits = 0;    ///< statements that waited on a leader
    int64_t prepared_hits = 0;
    int64_t prepared_misses = 0;
    int64_t evictions = 0;           ///< entries dropped for capacity/eviction
  };

  /// Canonical form of a statement for plan-cache keying: lower-cased
  /// outside string literals, whitespace collapsed, `--` line and `/* */`
  /// block comments stripped (mirroring the lexer, so a comment — even one
  /// containing an apostrophe — never changes the key or desynchronizes
  /// quote tracking), a leading EXPLAIN [ANALYZE] prefix and a trailing
  /// semicolon stripped (so `SELECT …`, `select …;` and
  /// `EXPLAIN ANALYZE SELECT …` share one plan).
  static std::string NormalizeStatement(const std::string& sql);

  /// Fingerprint of every RmaOptions field that affects plan content.
  /// A changed kernel/sort policy, rewrite toggle, or (materially shifted)
  /// cost profile must miss — calibration changes kernel choices, so cached
  /// plans priced under the old profile cannot be served.
  static uint64_t OptionsFingerprint(const RmaOptions& opts);

  // --- statement plans -------------------------------------------------------

  /// Returns the cached plan for `normalized` iff it can serve a caller at
  /// `catalog_version` / `options_fingerprint` / `tables` (the caller's
  /// current read-set snapshot; may be null when unattributable): the
  /// fingerprint must match, and then either the entry's identity snapshot
  /// equals `tables`, or — for entries or callers without a snapshot — the
  /// catalog version matches exactly. Null (a miss) otherwise.
  StatementPlanPtr LookupPlan(const std::string& normalized,
                              uint64_t catalog_version,
                              uint64_t options_fingerprint,
                              const TableSnapshot* tables = nullptr);

  void StorePlan(const std::string& normalized, StatementPlanPtr plan);

  /// Catalog mutation wrote `written` (lower-cased table names): eagerly
  /// drops the plan entries whose recorded read set intersects it, plus —
  /// the version backstop — every entry without an attributed table set
  /// that was built at an older version. Entries reading only other tables
  /// survive and keep hitting via their identity snapshots.
  void InvalidatePlansForTables(const std::vector<std::string>& written,
                                uint64_t current_version);

  // --- in-flight statement dedupe -------------------------------------------

  /// Outcome of AcquirePlan. Exactly one of three shapes:
  ///  - `plan` non-null: serve it (a cache hit, or borrowed from a leader
  ///    that just published — `borrowed` distinguishes the two);
  ///  - `leader` true: this caller plans and MUST call PublishPlan (success)
  ///    or AbandonPlan (failure) — waiters are blocked on it;
  ///  - both false/null: plan independently and store via StorePlan (an
  ///    incompatible leader was in flight, or waiting timed out).
  struct PlanTicket {
    StatementPlanPtr plan;
    bool leader = false;
    bool borrowed = false;
  };

  /// Combined lookup + leader election for one statement execution. On a
  /// miss with no compatible in-flight leader, the caller is elected leader;
  /// identical concurrent statements block (bounded — see kDedupWait) until
  /// the leader publishes, then borrow its plan instead of re-planning.
  PlanTicket AcquirePlan(const std::string& normalized,
                         uint64_t catalog_version,
                         uint64_t options_fingerprint,
                         const TableSnapshot* tables = nullptr);

  /// Leader completed: stores the plan and wakes every waiter with it.
  void PublishPlan(const std::string& normalized, StatementPlanPtr plan);

  /// Leader failed before producing a plan: wakes waiters empty-handed;
  /// each retries AcquirePlan (and may be elected the new leader).
  void AbandonPlan(const std::string& normalized);

  // --- prepared arguments ----------------------------------------------------

  /// `relations` lists the identity tokens of every relation the prepared
  /// argument was derived from (one for a sort, two for an alignment), so
  /// EvictRelation can invalidate precisely. Returns the number of entries
  /// evicted to make room.
  int64_t StorePrepared(const std::string& key,
                        std::vector<uint64_t> relations, PreparedArgPtr arg);

  PreparedArgPtr LookupPrepared(const std::string& key);

  /// Drops every prepared argument derived from the relation with this
  /// identity token (the catalog is replacing or dropping it).
  void EvictRelation(uint64_t relation_identity);

  /// Drops one prepared entry by exact key. Used by the evict-on-error path:
  /// an operation that fails after publishing a prepared argument takes its
  /// entries back out so a failed statement leaves no state in the shared
  /// cache. Missing keys are ignored (a concurrent statement may have
  /// already evicted or replaced the entry).
  void EvictKey(const std::string& key);

  // --- introspection ---------------------------------------------------------

  Counters counters() const;
  size_t plan_entries() const;
  size_t prepared_entries() const;

 private:
  struct PreparedEntry {
    PreparedArgPtr arg;
    std::vector<uint64_t> relations;
    uint64_t last_used = 0;
  };
  struct PlanEntry {
    StatementPlanPtr plan;
    uint64_t last_used = 0;
  };
  /// One in-flight planning leader; waiters hold the shared_ptr so the
  /// condition variable outlives the map entry. Every field is guarded by
  /// the owning cache's mu_ (the analysis cannot express a nested struct
  /// guarded by its container's mutex, so this one stays prose): writers
  /// and waiters alike only touch an Inflight while holding QueryCache::mu_.
  struct Inflight {
    uint64_t catalog_version = 0;
    uint64_t options_fingerprint = 0;
    TableSnapshot tables;  ///< the leader's read-set snapshot
    bool tables_known = false;
    bool done = false;
    StatementPlanPtr plan;  ///< null after AbandonPlan
    CondVar cv;
  };

  int64_t EvictPreparedLruLocked() RMA_REQUIRES(mu_);
  void StorePlanLocked(const std::string& normalized, StatementPlanPtr plan)
      RMA_REQUIRES(mu_);
  void FinishInflightLocked(const std::string& normalized,
                            StatementPlanPtr plan) RMA_REQUIRES(mu_);

  mutable Mutex mu_;
  std::unordered_map<std::string, PlanEntry> plans_ RMA_GUARDED_BY(mu_);
  std::unordered_map<std::string, std::shared_ptr<Inflight>> inflight_
      RMA_GUARDED_BY(mu_);
  std::unordered_map<std::string, PreparedEntry> prepared_
      RMA_GUARDED_BY(mu_);
  uint64_t tick_ RMA_GUARDED_BY(mu_) = 0;
  Counters counters_ RMA_GUARDED_BY(mu_);
};

using QueryCachePtr = std::shared_ptr<QueryCache>;

}  // namespace rma

#endif  // RMA_CORE_QUERY_CACHE_H_
