#include "core/rma.h"

#include <numeric>
#include <utility>

#include "core/constructors.h"
#include "core/kernels.h"
#include "matrix/blas.h"
#include "storage/bat_ops.h"
#include "storage/sparse_bat.h"
#include "util/timer.h"

namespace rma {

namespace {

/// One prepared argument: schema split, row order, and handles to the
/// (possibly reordered) order-part and application-part BATs.
struct Prepared {
  OrderSplit split;
  std::vector<int64_t> perm;  // empty => identity (rows already in order)
  int64_t rows = 0;

  const Relation* rel = nullptr;

  bool identity() const { return perm.empty(); }
  int64_t app_cols() const { return static_cast<int64_t>(split.app_idx.size()); }

  /// Order-part column `i` of the result (gathered by perm when needed).
  BatPtr OrderColumn(size_t i) const {
    const BatPtr& col = rel->column(split.order_idx[i]);
    return identity() ? col : col->Take(perm);
  }

  /// Application column `j` reordered, kept as a BAT (sparse preserved on
  /// the identity path).
  BatPtr AppColumnBat(size_t j) const {
    const BatPtr& col = rel->column(split.app_idx[j]);
    return identity() ? col : col->Take(perm);
  }

  /// Application column `j` as a dense double vector.
  std::vector<double> AppColumnDense(size_t j) const {
    const BatPtr& col = rel->column(split.app_idx[j]);
    if (identity()) return ToDoubleVector(*col);
    return GatherDoubleVector(*col, perm);
  }

  int64_t AppBytes() const {
    return rows * app_cols() * static_cast<int64_t>(sizeof(double));
  }
};

bool IsIdentity(const std::vector<int64_t>& perm) {
  for (size_t i = 0; i < perm.size(); ++i) {
    if (perm[i] != static_cast<int64_t>(i)) return false;
  }
  return true;
}

/// Hash-based key-uniqueness check, O(n) (used on sort-avoiding paths).
Status CheckKeyHashed(const std::vector<BatPtr>& keys) {
  if (!bat_ops::IsKey(keys)) {
    return Status::Invalid("order schema is not a key of the relation");
  }
  return Status::OK();
}

/// Sorts (or avoids sorting) one argument per the SortPolicy.
Result<Prepared> PrepareArgument(const Relation& r,
                                 const std::vector<std::string>& order,
                                 const OpInfo& info, const RmaOptions& opts,
                                 bool skip_sort_allowed) {
  if (order.empty()) {
    return Status::Invalid("order schema must not be empty");
  }
  Prepared p;
  p.rel = &r;
  p.rows = r.num_rows();
  RMA_ASSIGN_OR_RETURN(p.split, SplitSchema(r, order));
  if (info.requires_single_order && order.size() != 1) {
    return Status::Invalid(std::string(info.name) +
                           ": order schema must contain exactly one attribute");
  }
  std::vector<BatPtr> keys;
  for (int i : p.split.order_idx) keys.push_back(r.column(i));
  const bool avoid_sort = skip_sort_allowed &&
                          opts.sort == SortPolicy::kOptimized &&
                          info.row_order_invariant;
  if (avoid_sort) {
    if (opts.validate_keys) RMA_RETURN_NOT_OK(CheckKeyHashed(keys));
    return p;  // identity perm
  }
  bool unique = true;
  std::vector<int64_t> perm = bat_ops::ArgSortUnique(keys, &unique);
  if (opts.validate_keys && !unique) {
    return Status::Invalid("order schema is not a key of the relation");
  }
  if (!IsIdentity(perm)) p.perm = std::move(perm);
  return p;
}

/// Builds the dense input matrix for the contiguous kernels (the
/// BATs -> contiguous copy that Fig. 14 measures).
DenseMatrix GatherMatrix(const Prepared& p) {
  const int64_t n = p.rows;
  const int64_t k = p.app_cols();
  DenseMatrix m(n, k);
  for (int64_t j = 0; j < k; ++j) {
    const Bat& col = *p.rel->column(p.split.app_idx[static_cast<size_t>(j)]);
    if (p.identity()) {
      if (col.type() == DataType::kDouble) {
        if (const auto* d = dynamic_cast<const DoubleBat*>(&col)) {
          const auto& v = d->data();
          for (int64_t i = 0; i < n; ++i) m(i, j) = v[static_cast<size_t>(i)];
          continue;
        }
      }
      for (int64_t i = 0; i < n; ++i) m(i, j) = col.GetDouble(i);
    } else {
      for (int64_t i = 0; i < n; ++i) m(i, j) = col.GetDouble(p.perm[static_cast<size_t>(i)]);
    }
  }
  return m;
}

kernel::Columns GatherColumns(const Prepared& p) {
  kernel::Columns cols(static_cast<size_t>(p.app_cols()));
  for (size_t j = 0; j < cols.size(); ++j) cols[j] = p.AppColumnDense(j);
  return cols;
}

/// Whether this op+policy runs on the BAT path.
bool UseBatPath(MatrixOp op, const OpInfo& info, const RmaOptions& opts,
                int64_t input_bytes) {
  switch (opts.kernel) {
    case KernelPolicy::kBat:
      return kernel::HasBatKernel(op);
    case KernelPolicy::kContiguous:
      return false;
    case KernelPolicy::kAuto:
      // The paper's optimizer: element-wise linear ops stay on BATs (no
      // transformation pays off); complex ops are delegated unless the data
      // exceeds the memory budget for a contiguous copy.
      if (info.union_compatible) return true;  // add/sub/emu
      if (input_bytes > opts.contiguous_budget_bytes) {
        return kernel::HasBatKernel(op);
      }
      return false;
  }
  return false;
}

std::string OpColumnName(const OpInfo& info) { return info.name; }

constexpr const char* kContextAttr = kContextAttrName;

/// Assembles the final relation: `lead` columns (row origins) followed by
/// the base-result columns named `result_names`.
Result<Relation> Merge(std::vector<Attribute> lead_attrs,
                       std::vector<BatPtr> lead_cols,
                       const std::vector<std::string>& result_names,
                       std::vector<BatPtr> result_cols,
                       const std::string& rel_name) {
  RMA_CHECK(result_names.size() == result_cols.size());
  std::vector<Attribute> attrs = std::move(lead_attrs);
  for (const auto& n : result_names) {
    attrs.push_back(Attribute{n, DataType::kDouble});
  }
  auto schema = Schema::Make(std::move(attrs));
  if (!schema.ok()) {
    return Status::Invalid(
        "result attribute names collide (" + schema.status().message() +
        "); rename attributes of the arguments to disambiguate");
  }
  std::vector<BatPtr> cols = std::move(lead_cols);
  for (auto& c : result_cols) cols.push_back(std::move(c));
  return Relation::Make(std::move(*schema), std::move(cols), rel_name);
}

std::vector<BatPtr> ColumnsToBats(kernel::Columns cols) {
  std::vector<BatPtr> out;
  out.reserve(cols.size());
  for (auto& c : cols) out.push_back(MakeDoubleBat(std::move(c)));
  return out;
}

/// Result column names for the base result, per Table 2/3 (column origin).
Result<std::vector<std::string>> ColumnOriginNames(const OpInfo& info,
                                                   const Prepared& r,
                                                   const Prepared* s) {
  switch (info.shape.cols) {
    case Extent::kC1:
    case Extent::kCStar:
      return SchemaCast(r.rel->schema(), r.split.app_idx);
    case Extent::kC2:
      RMA_CHECK(s != nullptr);
      return SchemaCast(s->rel->schema(), s->split.app_idx);
    case Extent::kR1: {  // ▽U of r (|U| = 1)
      std::vector<int64_t> perm = r.perm;
      if (perm.empty()) {
        // The column cast needs sorted values even when the rows themselves
        // stayed unsorted (usv under SortPolicy::kOptimized).
        std::vector<BatPtr> key = {r.rel->column(r.split.order_idx[0])};
        perm = bat_ops::ArgSort(key);
      }
      return ColumnCast(*r.rel, r.split.order_idx[0], perm);
    }
    case Extent::kR2: {  // ▽V of s (|V| = 1)
      RMA_CHECK(s != nullptr);
      std::vector<int64_t> perm = s->perm;
      if (perm.empty()) {
        std::vector<BatPtr> key = {s->rel->column(s->split.order_idx[0])};
        perm = bat_ops::ArgSort(key);
      }
      return ColumnCast(*s->rel, s->split.order_idx[0], perm);
    }
    case Extent::kOne:
      return std::vector<std::string>{OpColumnName(info)};
    case Extent::kRStar:
      break;
  }
  return Status::Invalid("unsupported column extent");
}

}  // namespace

// ---------------------------------------------------------------------------
// Unary operations
// ---------------------------------------------------------------------------

Result<Relation> RmaUnary(MatrixOp op, const Relation& r,
                          const std::vector<std::string>& order,
                          const RmaOptions& opts) {
  const OpInfo& info = GetOpInfo(op);
  if (info.arity != 1) {
    return Status::Invalid(std::string(info.name) + " is a binary operation");
  }
  Timer timer;
  RMA_ASSIGN_OR_RETURN(Prepared p,
                       PrepareArgument(r, order, info, opts,
                                       /*skip_sort_allowed=*/true));
  const int64_t n = p.rows;
  const int64_t k = p.app_cols();
  if (info.requires_square && n != k) {
    return Status::Invalid(std::string(info.name) +
                           ": application part must be square (" +
                           std::to_string(n) + "x" + std::to_string(k) + ")");
  }
  if ((op == MatrixOp::kQqr || op == MatrixOp::kRqr) && n < k) {
    return Status::Invalid("qr: requires at least as many rows as columns");
  }
  if (opts.stats != nullptr) opts.stats->sort_seconds += timer.Seconds();

  // --- eval: base result ----------------------------------------------------
  timer.Restart();
  const bool bat_path = UseBatPath(op, info, opts, p.AppBytes());
  kernel::Columns base;
  if (bat_path) {
    kernel::Columns cols = GatherColumns(p);
    if (opts.stats != nullptr) opts.stats->sort_seconds += timer.Seconds();
    timer.Restart();
    switch (op) {
      case MatrixOp::kInv:
        RMA_RETURN_NOT_OK(kernel::BatInv(&cols));
        base = std::move(cols);
        break;
      case MatrixOp::kQqr: {
        kernel::Columns q;
        kernel::Columns rr;
        RMA_RETURN_NOT_OK(kernel::BatQr(cols, &q, &rr));
        base = std::move(q);
        break;
      }
      case MatrixOp::kRqr: {
        kernel::Columns q;
        kernel::Columns rr;
        RMA_RETURN_NOT_OK(kernel::BatQr(cols, &q, &rr));
        base = std::move(rr);
        break;
      }
      case MatrixOp::kDet: {
        RMA_ASSIGN_OR_RETURN(double d, kernel::BatDet(std::move(cols)));
        base = {{d}};
        break;
      }
      case MatrixOp::kTra: {
        base.assign(static_cast<size_t>(n),
                    std::vector<double>(static_cast<size_t>(k), 0.0));
        for (int64_t j = 0; j < k; ++j) {
          const auto& col = cols[static_cast<size_t>(j)];
          for (int64_t i = 0; i < n; ++i) {
            base[static_cast<size_t>(i)][static_cast<size_t>(j)] =
                col[static_cast<size_t>(i)];
          }
        }
        break;
      }
      default: {
        // No column-at-a-time algorithm: fall back to the dense kernels
        // (the transformation is exactly the cost the policy avoids when a
        // BAT algorithm exists).
        const DenseMatrix in = kernel::ColumnsToMatrix(cols);
        RMA_ASSIGN_OR_RETURN(DenseMatrix out,
                             kernel::DenseCompute(op, in, nullptr));
        base = kernel::MatrixToColumns(out);
        break;
      }
    }
    if (opts.stats != nullptr) opts.stats->compute_seconds += timer.Seconds();
  } else {
    const DenseMatrix in = GatherMatrix(p);
    if (opts.stats != nullptr) {
      opts.stats->transform_in_seconds += timer.Seconds();
    }
    timer.Restart();
    RMA_ASSIGN_OR_RETURN(DenseMatrix out, kernel::DenseCompute(op, in, nullptr));
    if (opts.stats != nullptr) opts.stats->compute_seconds += timer.Seconds();
    timer.Restart();
    base = kernel::MatrixToColumns(out);
    if (opts.stats != nullptr) {
      opts.stats->transform_out_seconds += timer.Seconds();
    }
  }

  // --- morph + merge: contextual information (Table 2) ----------------------
  timer.Restart();
  Result<Relation> result = [&]() -> Result<Relation> {
    if (info.shape.rows == Extent::kOne) {
      // det/rnk: γ(r ◦ OP(µ(r)), (C, op)).
      std::vector<Attribute> lead = {{kContextAttr, DataType::kString}};
      std::vector<BatPtr> lead_cols = {MakeStringBat({r.name()})};
      return Merge(std::move(lead), std::move(lead_cols),
                   {OpColumnName(info)}, ColumnsToBats(std::move(base)),
                   r.name());
    }
    RMA_ASSIGN_OR_RETURN(std::vector<std::string> names,
                         ColumnOriginNames(info, p, nullptr));
    if (info.shape.rows == Extent::kR1) {
      // Row origin: the order part of r, in sorted order.
      std::vector<Attribute> lead;
      std::vector<BatPtr> lead_cols;
      for (size_t i = 0; i < p.split.order_idx.size(); ++i) {
        lead.push_back(r.schema().attribute(p.split.order_idx[i]));
        lead_cols.push_back(p.OrderColumn(i));
      }
      return Merge(std::move(lead), std::move(lead_cols), names,
                   ColumnsToBats(std::move(base)), r.name());
    }
    // (c1,*): row origin is ∆Ū — attribute names of the application schema
    // as values of the new C attribute.
    std::vector<Attribute> lead = {{kContextAttr, DataType::kString}};
    std::vector<BatPtr> lead_cols = {
        MakeStringBat(SchemaCast(r.schema(), p.split.app_idx))};
    return Merge(std::move(lead), std::move(lead_cols), names,
                 ColumnsToBats(std::move(base)), r.name());
  }();
  if (opts.stats != nullptr) opts.stats->morph_seconds += timer.Seconds();
  return result;
}

// ---------------------------------------------------------------------------
// Binary operations
// ---------------------------------------------------------------------------

namespace {

/// Validates binary dimension prerequisites (Table 1).
Status CheckBinaryDims(const OpInfo& info, const Prepared& r,
                       const Prepared& s) {
  switch (info.op) {
    case MatrixOp::kAdd:
    case MatrixOp::kSub:
    case MatrixOp::kEmu: {
      if (r.rows != s.rows || r.app_cols() != s.app_cols()) {
        return Status::Invalid(std::string(info.name) +
                               ": application parts must have equal shape");
      }
      // Non-overlapping order schemas (the result inherits both).
      for (int i : r.split.order_idx) {
        const std::string& name = r.rel->schema().attribute(i).name;
        for (int j : s.split.order_idx) {
          if (s.rel->schema().attribute(j).name == name) {
            return Status::Invalid(std::string(info.name) +
                                   ": order schemas overlap on '" + name +
                                   "'");
          }
        }
      }
      return Status::OK();
    }
    case MatrixOp::kMmu:
      if (r.app_cols() != s.rows) {
        return Status::Invalid("mmu: inner dimensions differ");
      }
      return Status::OK();
    case MatrixOp::kCpd:
      if (r.rows != s.rows) {
        return Status::Invalid("cpd: argument cardinalities differ");
      }
      return Status::OK();
    case MatrixOp::kOpd:
      if (r.app_cols() != s.app_cols()) {
        return Status::Invalid("opd: application schemas differ in width");
      }
      return Status::OK();
    case MatrixOp::kSol:
      if (r.rows != s.rows) {
        return Status::Invalid("sol: argument cardinalities differ");
      }
      if (s.app_cols() != 1) {
        return Status::Invalid(
            "sol: second argument must have a single application attribute");
      }
      if (r.rows < r.app_cols()) {
        return Status::Invalid("sol: system is underdetermined");
      }
      return Status::OK();
    default:
      return Status::Invalid("not a binary operation");
  }
}

}  // namespace

Result<Relation> RmaBinary(MatrixOp op, const Relation& r,
                           const std::vector<std::string>& order_r,
                           const Relation& s,
                           const std::vector<std::string>& order_s,
                           const RmaOptions& opts) {
  const OpInfo& info = GetOpInfo(op);
  if (info.arity != 2) {
    return Status::Invalid(std::string(info.name) + " is a unary operation");
  }
  Timer timer;
  RMA_ASSIGN_OR_RETURN(Prepared pr,
                       PrepareArgument(r, order_r, info, opts,
                                       /*skip_sort_allowed=*/false));
  // opd's column cast is over s's order schema: |V| = 1.
  if (op == MatrixOp::kOpd && order_s.size() != 1) {
    return Status::Invalid("opd: second order schema must contain exactly "
                           "one attribute");
  }

  // Relative alignment (Sec. 8.1): for element-wise operations only the
  // relative row order matters — keep r in physical order and align s's
  // rows to r's keys by hashing instead of sorting both.
  Prepared ps;
  bool aligned = false;
  if (opts.sort == SortPolicy::kOptimized && info.relative_align_ok) {
    Prepared cand;
    cand.rel = &s;
    cand.rows = s.num_rows();
    auto split = SplitSchema(s, order_s);
    if (split.ok()) {
      cand.split = std::move(*split);
      std::vector<BatPtr> rkeys;
      for (int i : pr.split.order_idx) rkeys.push_back(r.column(i));
      std::vector<BatPtr> skeys;
      for (int i : cand.split.order_idx) skeys.push_back(s.column(i));
      if (rkeys.size() == skeys.size()) {
        bool type_match = true;
        for (size_t i = 0; i < rkeys.size(); ++i) {
          if (rkeys[i]->type() != skeys[i]->type()) type_match = false;
        }
        if (type_match && r.num_rows() == s.num_rows()) {
          // Same key columns (self-application, e.g. cpd(A, A)): the
          // alignment is the identity — skip the hash pass entirely.
          bool same_bats = true;
          for (size_t i = 0; i < rkeys.size(); ++i) {
            if (rkeys[i].get() != skeys[i].get()) same_bats = false;
          }
          if (same_bats) {
            if (opts.validate_keys) RMA_RETURN_NOT_OK(CheckKeyHashed(rkeys));
            ps = std::move(cand);
            pr.perm.clear();
            aligned = true;
          } else if (auto align = bat_ops::AlignByKey(skeys, rkeys);
                     align.ok()) {
            // A successful alignment is a bijection between the two key
            // sets, which already proves both order schemas are keys — no
            // separate validation pass.
            cand.perm = std::move(*align);
            if (IsIdentity(cand.perm)) cand.perm.clear();
            ps = std::move(cand);
            // r keeps its physical order.
            pr.perm.clear();
            aligned = true;
          }
        }
      }
    }
  }
  if (!aligned) {
    RMA_ASSIGN_OR_RETURN(ps, PrepareArgument(s, order_s, info, opts,
                                             /*skip_sort_allowed=*/false));
  }
  RMA_RETURN_NOT_OK(CheckBinaryDims(info, pr, ps));
  if (opts.stats != nullptr) opts.stats->sort_seconds += timer.Seconds();

  // --- eval ------------------------------------------------------------------
  timer.Restart();
  const bool elementwise = info.union_compatible;
  const bool bat_path =
      UseBatPath(op, info, opts, pr.AppBytes() + ps.AppBytes());
  std::vector<BatPtr> base_bats;
  if (bat_path && elementwise) {
    // Operate BAT-at-a-time; preserves the sparse fast path (Table 5).
    for (int64_t j = 0; j < pr.app_cols(); ++j) {
      const BatPtr a = pr.AppColumnBat(static_cast<size_t>(j));
      const BatPtr b = ps.AppColumnBat(static_cast<size_t>(j));
      switch (op) {
        case MatrixOp::kAdd:
          base_bats.push_back(bat_ops::AddColumns(a, b));
          break;
        case MatrixOp::kSub:
          base_bats.push_back(bat_ops::SubColumns(a, b));
          break;
        default:
          base_bats.push_back(bat_ops::MulColumns(a, b));
          break;
      }
    }
    if (opts.stats != nullptr) opts.stats->compute_seconds += timer.Seconds();
  } else if (bat_path && op == MatrixOp::kCpd) {
    // cpd stays on the BATs themselves (element-at-a-time fetches).
    std::vector<BatPtr> ca;
    std::vector<BatPtr> cb;
    for (int64_t j = 0; j < pr.app_cols(); ++j) {
      ca.push_back(pr.AppColumnBat(static_cast<size_t>(j)));
    }
    for (int64_t j = 0; j < ps.app_cols(); ++j) {
      cb.push_back(ps.AppColumnBat(static_cast<size_t>(j)));
    }
    if (opts.stats != nullptr) opts.stats->sort_seconds += timer.Seconds();
    timer.Restart();
    RMA_ASSIGN_OR_RETURN(kernel::Columns out, kernel::BatCpd(ca, cb));
    base_bats = ColumnsToBats(std::move(out));
    if (opts.stats != nullptr) opts.stats->compute_seconds += timer.Seconds();
  } else if (bat_path) {
    kernel::Columns ca = GatherColumns(pr);
    kernel::Columns cb = GatherColumns(ps);
    if (opts.stats != nullptr) opts.stats->sort_seconds += timer.Seconds();
    timer.Restart();
    kernel::Columns out;
    switch (op) {
      case MatrixOp::kMmu: {
        RMA_ASSIGN_OR_RETURN(out, kernel::BatMmu(ca, cb));
        break;
      }
      case MatrixOp::kSol: {
        RMA_ASSIGN_OR_RETURN(out, kernel::BatSol(ca, cb));
        break;
      }
      default: {
        const DenseMatrix a = kernel::ColumnsToMatrix(ca);
        const DenseMatrix b = kernel::ColumnsToMatrix(cb);
        RMA_ASSIGN_OR_RETURN(DenseMatrix dense,
                             kernel::DenseCompute(op, a, &b));
        out = kernel::MatrixToColumns(dense);
        break;
      }
    }
    base_bats = ColumnsToBats(std::move(out));
    if (opts.stats != nullptr) opts.stats->compute_seconds += timer.Seconds();
  } else if (op == MatrixOp::kCpd && pr.rel == ps.rel &&
             pr.split.app_idx == ps.split.app_idx && pr.perm == ps.perm) {
    // Self cross product cpd(x, x): gather once and run the symmetric SYRK
    // kernel (the paper's cblas_dsyrk call for the covariance workload).
    const DenseMatrix a = GatherMatrix(pr);
    if (opts.stats != nullptr) {
      opts.stats->transform_in_seconds += timer.Seconds();
    }
    timer.Restart();
    const DenseMatrix dense = blas::Syrk(a);
    if (opts.stats != nullptr) opts.stats->compute_seconds += timer.Seconds();
    timer.Restart();
    base_bats = ColumnsToBats(kernel::MatrixToColumns(dense));
    if (opts.stats != nullptr) {
      opts.stats->transform_out_seconds += timer.Seconds();
    }
  } else {
    const DenseMatrix a = GatherMatrix(pr);
    const DenseMatrix b = GatherMatrix(ps);
    if (opts.stats != nullptr) {
      opts.stats->transform_in_seconds += timer.Seconds();
    }
    timer.Restart();
    RMA_ASSIGN_OR_RETURN(DenseMatrix dense, kernel::DenseCompute(op, a, &b));
    if (opts.stats != nullptr) opts.stats->compute_seconds += timer.Seconds();
    timer.Restart();
    base_bats = ColumnsToBats(kernel::MatrixToColumns(dense));
    if (opts.stats != nullptr) {
      opts.stats->transform_out_seconds += timer.Seconds();
    }
  }

  // --- morph + merge ----------------------------------------------------------
  timer.Restart();
  Result<Relation> result = [&]() -> Result<Relation> {
    RMA_ASSIGN_OR_RETURN(std::vector<std::string> names,
                         ColumnOriginNames(info, pr, &ps));
    std::vector<Attribute> lead;
    std::vector<BatPtr> lead_cols;
    switch (info.shape.rows) {
      case Extent::kR1:
        for (size_t i = 0; i < pr.split.order_idx.size(); ++i) {
          lead.push_back(r.schema().attribute(pr.split.order_idx[i]));
          lead_cols.push_back(pr.OrderColumn(i));
        }
        break;
      case Extent::kRStar:
        // add/sub/emu: γ(µU(r) ∥ µV(s) ∥ OP(...), U ◦ V ◦ Ū).
        for (size_t i = 0; i < pr.split.order_idx.size(); ++i) {
          lead.push_back(r.schema().attribute(pr.split.order_idx[i]));
          lead_cols.push_back(pr.OrderColumn(i));
        }
        for (size_t i = 0; i < ps.split.order_idx.size(); ++i) {
          lead.push_back(s.schema().attribute(ps.split.order_idx[i]));
          lead_cols.push_back(ps.OrderColumn(i));
        }
        break;
      case Extent::kC1:
        lead.push_back(Attribute{kContextAttr, DataType::kString});
        lead_cols.push_back(
            MakeStringBat(SchemaCast(r.schema(), pr.split.app_idx)));
        break;
      default:
        return Status::Invalid("unsupported row extent for binary op");
    }
    return Merge(std::move(lead), std::move(lead_cols), names,
                 std::move(base_bats), r.name());
  }();
  if (opts.stats != nullptr) opts.stats->morph_seconds += timer.Seconds();
  return result;
}

}  // namespace rma
