#include "core/calibration.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <map>
#include <numeric>
#include <random>
#include <sstream>
#include <utility>
#include <vector>

#include "core/kernels.h"
#include "core/options.h"
#include "matrix/simd.h"
#include "storage/bat.h"
#include "storage/bat_ops.h"
#include "util/timer.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace rma {

namespace {

struct KernelNameEntry {
  CostKernel kernel;
  const char* name;
};

constexpr KernelNameEntry kKernelNames[] = {
    {CostKernel::kBatStream, "bat_stream"},
    {CostKernel::kBatAxpy, "bat_axpy"},
    {CostKernel::kBatDecomp, "bat_decomp"},
    {CostKernel::kBatTranspose, "bat_transpose"},
    {CostKernel::kBatFetch, "bat_fetch"},
    {CostKernel::kDenseFlop, "dense_flop"},
    {CostKernel::kGather, "gather"},
    {CostKernel::kScatter, "scatter"},
    {CostKernel::kSort, "sort"},
};

/// The planner's pre-calibration constants (see the cost-model comment in
/// planner.cc). Dimensionless element-operation units; fixed overhead zero.
constexpr double kAnalyticPerElement[kNumCostKernels] = {
    /*bat_stream=*/1.0,    /*bat_axpy=*/1.5, /*bat_decomp=*/3.0,
    /*bat_transpose=*/4.0, /*bat_fetch=*/12.0,
    /*dense_flop=*/1.0,    /*gather=*/1.0,   /*scatter=*/1.0,
    /*sort=*/1.0,
};

}  // namespace

const char* CostKernelName(CostKernel k) {
  for (const auto& e : kKernelNames) {
    if (e.kernel == k) return e.name;
  }
  return "?";
}

bool CostKernelFromName(const std::string& name, CostKernel* out) {
  for (const auto& e : kKernelNames) {
    if (name == e.name) {
      *out = e.kernel;
      return true;
    }
  }
  return false;
}

std::string CostRegimeLabel(int regime, int num_regimes) {
  if (num_regimes <= 1) return "linear";
  if (num_regimes == 3) {
    // The canonical cache split the breakpoint probe produces.
    static const char* kNames[3] = {"l2", "l3", "dram"};
    if (regime >= 0 && regime < 3) return kNames[regime];
  }
  return "r" + std::to_string(regime);
}

const char* CostSourceName(CostSource s) {
  switch (s) {
    case CostSource::kAnalytic:
      return "analytic";
    case CostSource::kProbed:
      return "probed";
    case CostSource::kRefined:
      return "refined";
  }
  return "?";
}

CostProfile::CostProfile() {
  for (int i = 0; i < kNumCostKernels; ++i) {
    costs_[i].per_element = kAnalyticPerElement[i];
  }
}

CostProfile CostProfile::Analytic() { return CostProfile(); }

CostProfile::CostProfile(const CostProfile& other) {
  MutexLock lock(other.mu_);
  for (int i = 0; i < kNumCostKernels; ++i) costs_[i] = other.costs_[i];
  refinable_ = other.refinable_;
}

CostProfile& CostProfile::operator=(const CostProfile& other) {
  if (this == &other) return *this;
  KernelCost copy[kNumCostKernels];
  bool refinable;
  {
    MutexLock lock(other.mu_);
    for (int i = 0; i < kNumCostKernels; ++i) copy[i] = other.costs_[i];
    refinable = other.refinable_;
  }
  MutexLock lock(mu_);
  for (int i = 0; i < kNumCostKernels; ++i) costs_[i] = copy[i];
  refinable_ = refinable;
  return *this;
}

KernelCost CostProfile::Get(CostKernel k) const {
  MutexLock lock(mu_);
  return costs_[static_cast<int>(k)];
}

void CostProfile::Set(CostKernel k, const KernelCost& cost) {
  MutexLock lock(mu_);
  costs_[static_cast<int>(k)] = cost;
}

double CostProfile::Cost(CostKernel k, double elements) const {
  MutexLock lock(mu_);
  const KernelCost& c = costs_[static_cast<int>(k)];
  return c.fixed + elements * c.RateFor(elements);
}

int CostProfile::MaxRegimes() const {
  MutexLock lock(mu_);
  int max = 1;
  for (const KernelCost& c : costs_) max = std::max(max, c.NumRegimes());
  return max;
}

void CostProfile::Refine(CostKernel k, double elements, double seconds) {
  // Tiny observations are dominated by timer granularity and per-op
  // bookkeeping, not kernel throughput; folding them in would drag the rate
  // toward noise.
  if (elements < 1024 || seconds <= 0) return;
  MutexLock lock(mu_);
  if (!refinable_) return;
  KernelCost& c = costs_[static_cast<int>(k)];
  const double observed = std::max(0.0, seconds - c.fixed) / elements;
  if (observed <= 0) return;
  if (c.rates.empty()) {
    c.per_element =
        (1.0 - kRefineAlpha) * c.per_element + kRefineAlpha * observed;
  } else {
    // Only the regime the observation actually exercised moves; a DRAM-sized
    // workload says nothing about the L2-resident rate.
    const int r = c.RegimeOf(elements);
    c.rates[static_cast<size_t>(r)] =
        (1.0 - kRefineAlpha) * c.rates[static_cast<size_t>(r)] +
        kRefineAlpha * observed;
    if (r == 0) c.per_element = c.rates[0];
  }
  c.source = CostSource::kRefined;
  ++c.refinements;
}

bool CostProfile::refinable() const {
  MutexLock lock(mu_);
  return refinable_;
}

void CostProfile::set_refinable(bool on) {
  MutexLock lock(mu_);
  refinable_ = on;
}

CostSource CostProfile::Source() const {
  MutexLock lock(mu_);
  CostSource best = CostSource::kAnalytic;
  for (const KernelCost& c : costs_) {
    if (static_cast<int>(c.source) > static_cast<int>(best)) best = c.source;
  }
  return best;
}

uint64_t CostProfile::Fingerprint() const {
  MutexLock lock(mu_);
  uint64_t h = 14695981039346656037ULL;  // FNV offset basis
  constexpr uint64_t kPrime = 1099511628211ULL;
  // Quantize to eighth-of-an-octave: per-op EWMA jitter keeps the same
  // fingerprint, a materially shifted value (>~9%) changes it. Both the
  // rate and the fixed overhead are priced (Cost = fixed + n*per_element),
  // so both are part of the fingerprint — profiles differing only in fixed
  // costs can flip small-shape kernel choices.
  const auto quantize = [](double v) -> uint64_t {
    if (v <= 0) return 0x9e3779b97f4a7c15ULL;  // sentinel for "absent"
    return static_cast<uint64_t>(std::llround(std::log2(v) * 8.0));
  };
  for (const KernelCost& c : costs_) {
    h = (h ^ quantize(c.per_element)) * kPrime;
    h = (h ^ quantize(c.fixed)) * kPrime;
    // Piecewise structure is part of the model: a regime rate shifting, a
    // breakpoint moving, or regimes appearing at all must invalidate plans.
    h = (h ^ static_cast<uint64_t>(c.rates.size())) * kPrime;
    for (double r : c.rates) h = (h ^ quantize(r)) * kPrime;
    for (int64_t b : c.breakpoints) {
      h = (h ^ static_cast<uint64_t>(b)) * kPrime;
    }
  }
  return h;
}

// --- JSON serialization -----------------------------------------------------
//
// The document is deliberately tiny and self-contained (no third-party JSON
// dependency). Version 2 records the SIMD ISA the rates were measured under
// and, for piecewise entries, the regime breakpoints/rates:
//   {"version": 2, "simd": "avx2x4", "kernels": {"bat_stream":
//       {"per_element": 1e-9, "fixed": 2e-7, "source": "probed",
//        "refinements": 0, "breakpoints": [131072], "rates":
//        [8e-10, 1.9e-9]}, ...}}
// Version 1 documents (no "simd", no arrays) still load as single-rate
// entries.

std::string CostProfile::ToJson() const {
  KernelCost copy[kNumCostKernels];
  {
    MutexLock lock(mu_);
    for (int i = 0; i < kNumCostKernels; ++i) copy[i] = costs_[i];
  }
  std::ostringstream os;
  os << "{\n  \"version\": 2,\n  \"simd\": \"" << simd::Describe()
     << "\",\n  \"kernels\": {\n";
  for (int i = 0; i < kNumCostKernels; ++i) {
    const KernelCost& c = copy[i];
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "    \"%s\": {\"per_element\": %.12e, \"fixed\": %.12e, "
                  "\"source\": \"%s\", \"refinements\": %lld",
                  CostKernelName(static_cast<CostKernel>(i)), c.per_element,
                  c.fixed, CostSourceName(c.source),
                  static_cast<long long>(c.refinements));
    os << buf;
    if (!c.rates.empty()) {
      os << ", \"breakpoints\": [";
      for (size_t b = 0; b < c.breakpoints.size(); ++b) {
        os << (b ? ", " : "") << c.breakpoints[b];
      }
      os << "], \"rates\": [";
      for (size_t r = 0; r < c.rates.size(); ++r) {
        std::snprintf(buf, sizeof(buf), "%s%.12e", r ? ", " : "", c.rates[r]);
        os << buf;
      }
      os << "]";
    }
    os << "}" << (i + 1 < kNumCostKernels ? "," : "") << "\n";
  }
  os << "  }\n}\n";
  return os.str();
}

namespace {

/// Minimal recursive-descent scanner for the calibration document. Accepts
/// any whitespace layout; rejects structurally broken input with Invalid.
struct JsonScanner {
  const std::string& s;
  size_t i = 0;

  void SkipSpace() {
    while (i < s.size() &&
           std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
  }
  bool Consume(char c) {
    SkipSpace();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return false;
  }
  bool ReadString(std::string* out) {
    SkipSpace();
    if (i >= s.size() || s[i] != '"') return false;
    ++i;
    out->clear();
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\') return false;  // escapes never appear in our docs
      *out += s[i++];
    }
    if (i >= s.size()) return false;
    ++i;
    return true;
  }
  bool ReadNumber(double* out) {
    SkipSpace();
    const char* begin = s.c_str() + i;
    char* end = nullptr;
    *out = std::strtod(begin, &end);
    if (end == begin) return false;
    i += static_cast<size_t>(end - begin);
    return true;
  }
  bool ReadNumberArray(std::vector<double>* out) {
    if (!Consume('[')) return false;
    out->clear();
    if (Consume(']')) return true;  // empty array
    while (true) {
      double v = 0;
      if (!ReadNumber(&v)) return false;
      out->push_back(v);
      if (Consume(',')) continue;
      if (Consume(']')) return true;
      return false;
    }
  }
};

}  // namespace

Result<CostProfile> CostProfile::FromJson(const std::string& json) {
  JsonScanner sc{json};
  const auto invalid = [](const char* what) {
    return Status::Invalid(std::string("calibration JSON: ") + what);
  };
  if (!sc.Consume('{')) return invalid("expected top-level object");
  CostProfile profile = CostProfile::Analytic();
  bool saw_kernels = false;
  while (true) {
    std::string key;
    if (!sc.ReadString(&key)) return invalid("expected member name");
    if (!sc.Consume(':')) return invalid("expected ':'");
    if (key == "version") {
      double v = 0;
      if (!sc.ReadNumber(&v)) return invalid("bad version");
      if (v != 1 && v != 2) return invalid("unsupported version");
    } else if (key == "simd") {
      std::string isa;
      if (!sc.ReadString(&isa)) return invalid("bad simd");
      if (isa != simd::Describe()) {
        std::fprintf(stderr,
                     "rma: calibration file was measured under simd=%s but "
                     "this process runs %s; rates may be stale (re-probe by "
                     "deleting the file)\n",
                     isa.c_str(), simd::Describe().c_str());
      }
    } else if (key == "kernels") {
      saw_kernels = true;
      if (!sc.Consume('{')) return invalid("kernels must be an object");
      while (!sc.Consume('}')) {
        std::string name;
        if (!sc.ReadString(&name)) return invalid("expected kernel name");
        if (!sc.Consume(':') || !sc.Consume('{')) {
          return invalid("expected kernel object");
        }
        KernelCost cost;
        while (true) {
          std::string field;
          if (!sc.ReadString(&field)) return invalid("expected field name");
          if (!sc.Consume(':')) return invalid("expected ':'");
          if (field == "per_element") {
            if (!sc.ReadNumber(&cost.per_element)) {
              return invalid("bad per_element");
            }
          } else if (field == "fixed") {
            if (!sc.ReadNumber(&cost.fixed)) return invalid("bad fixed");
          } else if (field == "source") {
            std::string src;
            if (!sc.ReadString(&src)) return invalid("bad source");
            if (src == "probed") {
              cost.source = CostSource::kProbed;
            } else if (src == "refined") {
              cost.source = CostSource::kRefined;
            } else if (src == "analytic") {
              cost.source = CostSource::kAnalytic;
            } else {
              return invalid("unknown source");
            }
          } else if (field == "refinements") {
            double n = 0;
            if (!sc.ReadNumber(&n)) return invalid("bad refinements");
            cost.refinements = static_cast<int64_t>(n);
          } else if (field == "breakpoints") {
            std::vector<double> raw;
            if (!sc.ReadNumberArray(&raw)) return invalid("bad breakpoints");
            cost.breakpoints.clear();
            for (double b : raw) {
              cost.breakpoints.push_back(static_cast<int64_t>(b));
            }
          } else if (field == "rates") {
            if (!sc.ReadNumberArray(&cost.rates)) return invalid("bad rates");
          } else {
            return invalid("unknown kernel field");
          }
          if (sc.Consume(',')) continue;
          if (sc.Consume('}')) break;
          return invalid("expected ',' or '}'");
        }
        if (!(cost.per_element > 0) || !std::isfinite(cost.per_element) ||
            cost.fixed < 0 || !std::isfinite(cost.fixed)) {
          return invalid("non-positive or non-finite cost");
        }
        if (!cost.rates.empty()) {
          if (cost.breakpoints.size() + 1 != cost.rates.size()) {
            return invalid("breakpoints/rates size mismatch");
          }
          for (double r : cost.rates) {
            if (!(r > 0) || !std::isfinite(r)) {
              return invalid("non-positive or non-finite regime rate");
            }
          }
          for (size_t b = 0; b < cost.breakpoints.size(); ++b) {
            if (cost.breakpoints[b] <= 0 ||
                (b > 0 && cost.breakpoints[b] <= cost.breakpoints[b - 1])) {
              return invalid("breakpoints must be positive and ascending");
            }
          }
        } else if (!cost.breakpoints.empty()) {
          return invalid("breakpoints without rates");
        }
        CostKernel k;
        if (CostKernelFromName(name, &k)) profile.Set(k, cost);
        // Unknown kernel names are ignored: older binaries read newer files.
        if (sc.Consume(',')) continue;
        if (sc.Consume('}')) break;
        return invalid("expected ',' or '}'");
      }
    } else {
      return invalid("unknown top-level member");
    }
    if (sc.Consume(',')) continue;
    if (sc.Consume('}')) break;
    return invalid("expected ',' or '}'");
  }
  if (!saw_kernels) return invalid("missing kernels object");
  profile.set_refinable(true);
  return profile;
}

Status CostProfile::SaveFile(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot write calibration file: " + path);
  out << ToJson();
  out.flush();
  if (!out) return Status::IoError("failed writing calibration file: " + path);
  return Status::OK();
}

Result<CostProfile> CostProfile::LoadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot read calibration file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return FromJson(buf.str());
}

// --- startup micro-probes ---------------------------------------------------

namespace {

/// Best-of-N wall time of `fn` in seconds.
double BestOf(int reps, const std::function<void()>& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Timer t;
    fn();
    best = std::min(best, t.Seconds());
  }
  return best;
}

/// Fits {fixed, per_element} from two (elements, seconds) samples. Falls
/// back to a pure rate when the slope comes out non-positive (noise).
KernelCost FitCost(int64_t n1, double t1, int64_t n2, double t2) {
  KernelCost c;
  c.source = CostSource::kProbed;
  const double slope =
      (t2 - t1) / static_cast<double>(std::max<int64_t>(1, n2 - n1));
  if (slope > 0) {
    c.per_element = slope;
    c.fixed = std::max(0.0, t1 - slope * static_cast<double>(n1));
  } else {
    c.per_element =
        std::max({t1 / static_cast<double>(n1), t2 / static_cast<double>(n2),
                  1e-12});
    c.fixed = 0.0;
  }
  return c;
}

std::vector<double> ProbeVector(int64_t n, uint64_t seed) {
  std::vector<double> v(static_cast<size_t>(n));
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  for (double& x : v) x = dist(rng);
  return v;
}

std::vector<int64_t> ShuffledPerm(int64_t n, uint64_t seed) {
  std::vector<int64_t> perm(static_cast<size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  std::shuffle(perm.begin(), perm.end(), std::mt19937_64(seed));
  return perm;
}

/// One timed pass of family `k` over `elements` elements. The loop bodies
/// mirror what the priced stages actually execute: bat_ops primitives for
/// the BAT families and the strided copies, a register-blocked product loop
/// for dense flops, argsort for the sort stage.
double ProbeOnce(CostKernel k, int64_t elements, int reps) {
  volatile double sink = 0;  // defeat dead-code elimination
  switch (k) {
    case CostKernel::kBatStream: {
      const std::vector<double> a = ProbeVector(elements, 1);
      const std::vector<double> b = ProbeVector(elements, 2);
      return BestOf(reps, [&] { sink += bat_ops::AddDense(a, b).back(); });
    }
    case CostKernel::kBatAxpy: {
      const std::vector<double> x = ProbeVector(elements, 3);
      std::vector<double> y = ProbeVector(elements, 4);
      return BestOf(reps, [&] {
        bat_ops::Axpy(1.000001, x, &y);
        sink += y.back();
      });
    }
    case CostKernel::kBatDecomp: {
      // elements models flops (2nk^2): invert to a row count for k=8 cols.
      const int64_t cols = 8;
      const int64_t rows =
          std::max<int64_t>(cols, elements / (2 * cols * cols));
      kernel::Columns a(static_cast<size_t>(cols));
      for (int64_t j = 0; j < cols; ++j) {
        a[static_cast<size_t>(j)] = ProbeVector(rows, 10 + j);
      }
      return BestOf(reps, [&] {
        kernel::Columns q, r;
        kernel::BatQr(a, &q, &r).Abort();
        sink += q[0][0];
      });
    }
    case CostKernel::kBatTranspose: {
      const std::vector<double> a = ProbeVector(elements, 5);
      std::vector<double> out(a.size());
      const int64_t rows = std::max<int64_t>(1, elements / 64);
      return BestOf(reps, [&] {
        for (int64_t i = 0; i < elements; ++i) {
          out[static_cast<size_t>((i % rows) * 64 + i / rows) % a.size()] =
              a[static_cast<size_t>(i)];
        }
        sink += out.back();
      });
    }
    case CostKernel::kBatFetch: {
      const BatPtr col = MakeDoubleBat(ProbeVector(elements, 6));
      return BestOf(reps, [&] {
        double acc = 0;
        for (int64_t i = 0; i < elements; ++i) acc += col->GetDouble(i);
        sink += acc;
      });
    }
    case CostKernel::kDenseFlop: {
      // GEMM-style register-blocked inner product: elements counts flops.
      const int64_t n = std::max<int64_t>(64, elements / 2);
      const std::vector<double> a = ProbeVector(n, 7);
      const std::vector<double> b = ProbeVector(n, 8);
      return BestOf(reps, [&] { sink += bat_ops::Dot(a, b); });
    }
    case CostKernel::kGather: {
      const BatPtr col = MakeDoubleBat(ProbeVector(elements, 9));
      const std::vector<int64_t> perm = ShuffledPerm(elements, 11);
      std::vector<double> dst(static_cast<size_t>(elements));
      return BestOf(reps, [&] {
        bat_ops::GatherColumnToStrided(*col, perm, dst.data(), 1);
        sink += dst.back();
      });
    }
    case CostKernel::kScatter: {
      const std::vector<double> src = ProbeVector(elements, 12);
      std::vector<double> dst(static_cast<size_t>(elements));
      return BestOf(reps, [&] {
        bat_ops::CopyDenseToStrided(src.data(), elements, dst.data(), 1);
        sink += dst.back();
      });
    }
    case CostKernel::kSort: {
      std::vector<int64_t> keys(static_cast<size_t>(elements));
      std::iota(keys.begin(), keys.end(), 0);
      std::shuffle(keys.begin(), keys.end(), std::mt19937_64(13));
      const BatPtr col = MakeInt64Bat(std::move(keys));
      return BestOf(reps, [&] {
        sink += static_cast<double>(bat_ops::ArgSort({col}).back());
      });
    }
    case CostKernel::kCount_:
      break;
  }
  return 0;
}

}  // namespace

CacheSizes DetectCacheSizes() {
  CacheSizes sizes;
  sizes.l2_bytes = int64_t{1} << 20;
  sizes.l3_bytes = int64_t{8} << 20;
#if defined(_SC_LEVEL2_CACHE_SIZE)
  if (const long l2 = sysconf(_SC_LEVEL2_CACHE_SIZE); l2 > 0) {
    sizes.l2_bytes = l2;
  }
#endif
#if defined(_SC_LEVEL3_CACHE_SIZE)
  if (const long l3 = sysconf(_SC_LEVEL3_CACHE_SIZE); l3 > 0) {
    sizes.l3_bytes = l3;
  }
#endif
  if (sizes.l3_bytes <= sizes.l2_bytes) sizes.l3_bytes = 8 * sizes.l2_bytes;
  return sizes;
}

CostProfile ProbeCostProfile(const ProbeOptions& opts) {
  CostProfile profile = CostProfile::Analytic();
  const int64_t n1 = std::max<int64_t>(1024, opts.small_elements);
  int64_t n2 = std::max<int64_t>(2 * n1, opts.large_elements);
  const int reps = std::max(1, opts.repetitions);

  // Regime boundaries in elements. The streaming probes touch roughly two
  // double streams per element (~16 bytes), so a family leaves cache level
  // c once 16n exceeds its capacity. This is approximate for the
  // flop-counted families (dense_flop, bat_decomp), where elements model
  // arithmetic rather than footprint — the breakpoints still separate
  // "small" from "streaming" shapes, which is what the planner needs.
  std::vector<int64_t> breakpoints;
  if (opts.cache_breakpoints) {
    const CacheSizes caches = DetectCacheSizes();
    for (int64_t bytes : {caches.l2_bytes, caches.l3_bytes}) {
      const int64_t bp = bytes / 16;
      if (bp > n1 && (breakpoints.empty() || bp > breakpoints.back())) {
        breakpoints.push_back(bp);
      }
    }
    // Keep the base two-point fit inside the first regime so rates[0] is
    // genuinely the cache-resident rate.
    if (!breakpoints.empty()) {
      n2 = std::max(2 * n1, std::min(n2, breakpoints.front()));
    }
  }

  for (int i = 0; i < kNumCostKernels; ++i) {
    const CostKernel k = static_cast<CostKernel>(i);
    const double t1 = ProbeOnce(k, n1, reps);
    const double t2 = ProbeOnce(k, n2, reps);
    KernelCost cost = FitCost(n1, t1, n2, t2);
    if (!breakpoints.empty()) {
      // Super-linear families stay bounded: a multi-megabyte argsort or QR
      // probe would dominate the whole pass for little planning signal.
      const bool super_linear =
          k == CostKernel::kSort || k == CostKernel::kBatDecomp;
      const int64_t cap = super_linear
                              ? std::min(opts.max_probe_elements, int64_t{1}
                                                                      << 18)
                              : opts.max_probe_elements;
      cost.breakpoints = breakpoints;
      cost.rates.assign(breakpoints.size() + 1, cost.per_element);
      for (size_t r = 1; r < cost.rates.size(); ++r) {
        const int64_t lower = breakpoints[r - 1];
        const int64_t upper =
            r < breakpoints.size() ? breakpoints[r] : 4 * lower;
        const int64_t n = std::min(cap, std::min(4 * lower, upper));
        if (n <= lower) {
          // The regime starts beyond the probe ceiling: inherit the deepest
          // measured rate rather than extrapolating.
          cost.rates[r] = cost.rates[r - 1];
          continue;
        }
        const double t = ProbeOnce(k, n, reps);
        double rate = std::max(0.0, t - cost.fixed) / static_cast<double>(n);
        // Deeper memory levels cannot be cheaper per element; letting a
        // noisy inversion through would teach the planner to prefer huge
        // working sets.
        rate = std::max({rate, cost.rates[r - 1], 1e-12});
        cost.rates[r] = rate;
      }
      cost.per_element = cost.rates[0];
    }
    profile.Set(k, cost);
  }
  profile.set_refinable(true);
  return profile;
}

// --- default profile resolution ---------------------------------------------

namespace {

/// Loads `path`; probes and saves there when the file is missing (the
/// probes-run-once-per-machine flow). A *corrupt* file warns and falls back
/// to the analytic constants — never a crash, and the broken file is left
/// in place for inspection rather than silently overwritten.
CostProfilePtr LoadOrProbe(const std::string& path) {
  Result<CostProfile> loaded = CostProfile::LoadFile(path);
  if (loaded.ok()) {
    return std::make_shared<CostProfile>(std::move(*loaded));
  }
  if (!loaded.status().IsIoError()) {
    std::fprintf(
        stderr,
        "rma: calibration file %s is corrupt (%s); falling back to the "
        "analytic cost model\n",
        path.c_str(), loaded.status().ToString().c_str());
    return std::make_shared<CostProfile>(CostProfile::Analytic());
  }
  auto probed = std::make_shared<CostProfile>(ProbeCostProfile());
  if (Status s = probed->SaveFile(path); !s.ok()) {
    std::fprintf(stderr, "rma: %s; calibration will re-probe next start\n",
                 s.ToString().c_str());
  }
  return probed;
}

}  // namespace

const CostProfilePtr& DefaultCostProfile() {
  static const CostProfilePtr profile = [] {
    const char* env = std::getenv("RMA_CALIBRATION");
    if (env == nullptr || env[0] == '\0') {
      // Deterministic default: the analytic constants, non-refinable (the
      // process-wide profile must not drift under test workloads).
      return std::make_shared<CostProfile>(CostProfile::Analytic());
    }
    return LoadOrProbe(env);
  }();
  return profile;
}

namespace {

/// Per-path profile memo: resolution runs on every PlanOp, the file work
/// must happen once per calibration path. File-scope (not function-local
/// statics) so the guarded_by relation is visible to the analysis.
Mutex g_profile_memo_mu;
std::map<std::string, CostProfilePtr>& ProfileMemo()
    RMA_REQUIRES(g_profile_memo_mu) {
  static std::map<std::string, CostProfilePtr>* memo =
      new std::map<std::string, CostProfilePtr>();
  return *memo;
}

}  // namespace

CostProfilePtr ResolveCostProfile(const RmaOptions& opts) {
  if (opts.cost_profile != nullptr) return opts.cost_profile;
  if (!opts.calibration_path.empty()) {
    MutexLock lock(g_profile_memo_mu);
    std::map<std::string, CostProfilePtr>& by_path = ProfileMemo();
    auto it = by_path.find(opts.calibration_path);
    if (it != by_path.end()) return it->second;
    CostProfilePtr p = LoadOrProbe(opts.calibration_path);
    by_path.emplace(opts.calibration_path, p);
    return p;
  }
  return DefaultCostProfile();
}

}  // namespace rma
