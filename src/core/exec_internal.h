#ifndef RMA_CORE_EXEC_INTERNAL_H_
#define RMA_CORE_EXEC_INTERNAL_H_

#include <vector>

#include "core/exec_context.h"
#include "core/kernels.h"
#include "core/ops.h"
#include "matrix/dense_matrix.h"
#include "storage/relation.h"
#include "util/result.h"

/// Internal surface of the staged executor. The pipeline is split by stage:
///
///   prepare.cc   — argument preparation: schema split, order-schema sort /
///                  key alignment, prepared-argument caching, gathers
///   dispatch.cc  — kernel-stage execution per the physical plan (OpPlan),
///                  plus the RmaUnary/RmaBinary entry points that string the
///                  stages together
///   assemble.cc  — result assembly: morphing of contextual information and
///                  the final relation merge (Table 2/3)
///
/// rma.h stays the stable thin API; nothing here is exported.
namespace rma::internal {

// --- prepare.cc -------------------------------------------------------------

/// Sorts (or avoids sorting / reuses a cached permutation for) one argument.
/// Cache misses record their elapsed time against Stage::kPrepare; hits
/// record nothing, so a fully cached op reports sort_seconds == 0.
Result<PreparedArgPtr> PrepareArgument(ExecContext& ctx, const Relation& r,
                                       const std::vector<std::string>& order,
                                       const OpInfo& info,
                                       bool skip_sort_allowed);

struct BinaryArgs {
  PreparedArgPtr left;
  PreparedArgPtr right;
};

/// Prepares both arguments of a binary operation, applying the relative-
/// alignment optimization of Sec. 8.1 when the policy and operation allow.
Result<BinaryArgs> PrepareBinaryArgs(ExecContext& ctx, const OpInfo& info,
                                     const Relation& r,
                                     const std::vector<std::string>& order_r,
                                     const Relation& s,
                                     const std::vector<std::string>& order_s);

/// Validates binary dimension prerequisites (Table 1).
Status CheckBinaryDims(const OpInfo& info, const PreparedArg& r,
                       const PreparedArg& s);

/// Builds the dense input matrix for the contiguous kernels (the
/// BATs -> contiguous copy that Fig. 14 measures).
DenseMatrix GatherMatrix(const PreparedArg& p);

/// Extracts the application part as per-column double vectors (the working
/// format of the column-at-a-time kernels).
kernel::Columns GatherColumns(const PreparedArg& p);

// --- dispatch.cc ------------------------------------------------------------

/// Runs the kernel stage of a unary operation per `plan`, returning the
/// base-result columns. Records gather/kernel/scatter stage times.
Result<std::vector<BatPtr>> DispatchUnary(ExecContext& ctx, const OpPlan& plan,
                                          const PreparedArg& p);

/// Binary counterpart.
Result<std::vector<BatPtr>> DispatchBinary(ExecContext& ctx,
                                           const OpPlan& plan,
                                           const PreparedArg& pr,
                                           const PreparedArg& ps);

// --- shard_exec.cc ----------------------------------------------------------

/// Clamps plan->shards to the context's effective thread budget at dispatch
/// time (subtree forking may have shrunk it since planning). Dropping under
/// two shards reverts the plan to the unsharded shape (merge kind and stage
/// removed), so the recorded plan always matches what actually ran.
void ClampShards(const ExecContext& ctx, OpPlan* plan);

/// Kernel-stage execution of a row-range sharded binary operation
/// (plan.shards > 1): one stage chain per shard on the shared pool under a
/// split thread budget, then the plan's merge stage — ordered concatenation
/// for element-wise ops, pairwise tree-reduction of per-shard partials for
/// cross products. Records summed per-shard stage seconds (CPU-time
/// semantics, which the cost-model refinement expects), per-shard wall times
/// via ExecContext::RecordShardTimes, and the merge under Stage::kMerge.
/// Falls back to DispatchBinary if an input unexpectedly lacks contiguous
/// double storage.
Result<std::vector<BatPtr>> DispatchShardedBinary(ExecContext& ctx,
                                                  const OpPlan& plan,
                                                  const PreparedArg& pr,
                                                  const PreparedArg& ps);

// --- assemble.cc ------------------------------------------------------------

/// Morph + merge for unary operations: attaches contextual information
/// (row/column origins, Table 2) to the base result.
Result<Relation> AssembleUnary(const OpInfo& info, const PreparedArg& p,
                               std::vector<BatPtr> base);

/// Binary counterpart (Table 3).
Result<Relation> AssembleBinary(const OpInfo& info, const PreparedArg& pr,
                                const PreparedArg& ps,
                                std::vector<BatPtr> base);

std::vector<BatPtr> ColumnsToBats(kernel::Columns cols);

}  // namespace rma::internal

#endif  // RMA_CORE_EXEC_INTERNAL_H_
