#include <algorithm>
#include <utility>

#include "core/exec_internal.h"
#include "core/shard.h"
#include "matrix/blas.h"
#include "matrix/parallel.h"
#include "matrix/simd.h"
#include "storage/bat_ops.h"
#include "util/timer.h"

namespace rma {

namespace internal {

namespace {

/// Per-shard stage timings, measured on the worker that ran the shard and
/// published to the dispatcher at the join. Workers never call
/// ExecContext::RecordStage themselves: the op bracket is thread-local to the
/// dispatching thread, so a pool thread's recording would hit the context
/// totals but miss the op entry.
struct ShardTiming {
  double gather = 0;
  double kernel = 0;
  double wall = 0;
};

/// The operation's application columns in prepared row order. Identity
/// permutations hand back the stored columns (zero-copy); sorted arguments
/// materialize once here, on the dispatching thread, before the fan-out.
std::vector<BatPtr> AppColumns(const PreparedArg& p) {
  std::vector<BatPtr> cols;
  cols.reserve(static_cast<size_t>(p.app_cols()));
  for (int64_t j = 0; j < p.app_cols(); ++j) {
    cols.push_back(p.AppColumnBat(static_cast<size_t>(j)));
  }
  return cols;
}

bool AllContiguous(const std::vector<BatPtr>& cols) {
  for (const auto& c : cols) {
    if (c->ContiguousDoubleData() == nullptr) return false;
  }
  return true;
}

/// Row-major pack of one shard's slice views (every column contiguous; the
/// tiled pack runs at full speed on the offset pointers).
DenseMatrix PackShard(const std::vector<BatPtr>& cols, int64_t rows) {
  const int64_t k = static_cast<int64_t>(cols.size());
  DenseMatrix m(rows, k);
  std::vector<const double*> ptrs(cols.size());
  for (size_t j = 0; j < cols.size(); ++j) {
    ptrs[j] = cols[j]->ContiguousDoubleData();
  }
  bat_ops::PackColumnsRowMajor(ptrs.data(), k, nullptr, rows, m.data());
  return m;
}

/// Runs `fn(spec)` for every shard: shards 1..S-1 as shared-pool tasks,
/// shard 0 inline on the dispatcher, cooperative join (a waiting dispatcher
/// executes queued tasks, so a saturated pool cannot deadlock the join).
template <typename Fn>
void RunShards(const std::vector<ShardSpec>& specs, const Fn& fn) {
  ThreadPool& pool = ThreadPool::Shared();
  std::vector<ThreadPool::TaskPtr> tasks;
  tasks.reserve(specs.size() - 1);
  for (size_t s = 1; s < specs.size(); ++s) {
    const ShardSpec& spec = specs[s];
    tasks.push_back(pool.Submit([&fn, &spec] { fn(spec); }));
  }
  fn(specs[0]);
  for (const auto& task : tasks) pool.Wait(task);
}

/// Commits the joined shard timings from the bracket-owning thread: summed
/// stage seconds (CPU-time semantics — the refinement loop divides them by
/// total elements) plus the per-shard walls for EXPLAIN ANALYZE.
void RecordShardStages(ExecContext& ctx, Stage work_stage,
                       const std::vector<ShardTiming>& timings) {
  double gather = 0;
  double kernel = 0;
  std::vector<double> walls;
  walls.reserve(timings.size());
  for (const ShardTiming& t : timings) {
    gather += t.gather;
    kernel += t.kernel;
    walls.push_back(t.wall);
  }
  if (gather > 0) ctx.RecordStage(work_stage, gather);
  ctx.RecordStage(Stage::kKernel, kernel);
  ctx.RecordShardTimes(walls);
}

/// Element-wise ops under MergeKind::kConcat: every shard applies the SIMD
/// kernel to its row range, writing into disjoint ranges of the final output
/// columns — the ordered concatenation is the write pattern itself, so the
/// merge stage is just the move of the finished columns into BATs. Bit-exact
/// with the unsharded path: the element-wise SIMD kernels are bit-identical
/// to their scalar loops and carry no cross-element state.
Result<std::vector<BatPtr>> DispatchConcat(ExecContext& ctx, const OpPlan& plan,
                                           const PreparedArg& pr,
                                           const PreparedArg& ps,
                                           int per_shard_budget) {
  const MatrixOp op = plan.op;
  const int64_t n = pr.rows;
  const int64_t k = pr.app_cols();
  Timer timer;
  const std::vector<BatPtr> left = AppColumns(pr);
  const std::vector<BatPtr> right = AppColumns(ps);
  if (!AllContiguous(left) || !AllContiguous(right)) {
    return DispatchBinary(ctx, plan, pr, ps);
  }
  // Column extraction is part of the prepare stage on the no-copy path (it
  // is free for identity permutations, a one-time gather otherwise).
  ctx.RecordStage(Stage::kPrepare, timer.Seconds());

  std::vector<std::vector<double>> out(static_cast<size_t>(k));
  for (auto& col : out) col.resize(static_cast<size_t>(n));
  const std::vector<ShardSpec> specs =
      MakeShardSpecs(n, plan.shards, pr.split.app_idx);
  std::vector<ShardTiming> timings(specs.size());

  auto run = [&](const ShardSpec& spec) {
    ScopedThreadBudget budget(per_shard_budget);
    Timer wall;
    Timer stage;
    const std::vector<BatPtr> la = SliceColumns(left, spec);
    const std::vector<BatPtr> ra = SliceColumns(right, spec);
    ShardTiming& t = timings[static_cast<size_t>(spec.shard)];
    t.gather = stage.Seconds();
    stage.Restart();
    for (int64_t j = 0; j < k; ++j) {
      const double* a = la[static_cast<size_t>(j)]->ContiguousDoubleData();
      const double* b = ra[static_cast<size_t>(j)]->ContiguousDoubleData();
      double* o = out[static_cast<size_t>(j)].data() + spec.begin;
      switch (op) {
        case MatrixOp::kAdd:
          simd::Add(a, b, o, spec.rows());
          break;
        case MatrixOp::kSub:
          simd::Sub(a, b, o, spec.rows());
          break;
        default:  // kEmu
          simd::Mul(a, b, o, spec.rows());
          break;
      }
    }
    t.kernel = stage.Seconds();
    t.wall = wall.Seconds();
  };
  RunShards(specs, run);

  RecordShardStages(ctx, Stage::kPrepare, timings);
  timer.Restart();
  std::vector<BatPtr> base = ColumnsToBats(std::move(out));
  ctx.RecordStage(Stage::kMerge, timer.Seconds());
  return base;
}

/// Cross products under MergeKind::kTreeReduce: each shard gathers its row
/// range into a contiguous matrix and computes a full-size partial Gram
/// matrix (X_s^T X_s, cols x cols); the merge sums the partials pairwise
/// (O(cols^2) per addition, log2(shards) rounds). Summation order is fixed
/// by the tree, so results are deterministic for a given shard count but
/// associate differently from the unsharded single accumulation — equal up
/// to FP rounding, the documented tree-reduce contract.
Result<std::vector<BatPtr>> DispatchTreeReduce(ExecContext& ctx,
                                               const OpPlan& plan,
                                               const PreparedArg& pr,
                                               const PreparedArg& ps,
                                               int per_shard_budget) {
  const bool syrk = plan.kernel == KernelChoice::kDenseSyrk;
  const int64_t n = pr.rows;
  Timer timer;
  const std::vector<BatPtr> left = AppColumns(pr);
  const std::vector<BatPtr> right = syrk ? std::vector<BatPtr>{} : AppColumns(ps);
  if (!AllContiguous(left) || !AllContiguous(right)) {
    return DispatchBinary(ctx, plan, pr, ps);
  }
  ctx.RecordStage(Stage::kGather, timer.Seconds());

  const int S = plan.shards;
  const std::vector<ShardSpec> specs =
      MakeShardSpecs(n, S, pr.split.app_idx);
  std::vector<ShardTiming> timings(specs.size());
  std::vector<DenseMatrix> partials(static_cast<size_t>(S));
  std::vector<Status> statuses(static_cast<size_t>(S));

  auto run = [&](const ShardSpec& spec) {
    ScopedThreadBudget budget(per_shard_budget);
    const size_t i = static_cast<size_t>(spec.shard);
    Timer wall;
    Timer stage;
    const DenseMatrix a = PackShard(SliceColumns(left, spec), spec.rows());
    const DenseMatrix b =
        syrk ? DenseMatrix()
             : PackShard(SliceColumns(right, spec), spec.rows());
    timings[i].gather = stage.Seconds();
    stage.Restart();
    if (syrk) {
      partials[i] = blas::Syrk(a);
    } else {
      Result<DenseMatrix> partial = blas::CrossProd(a, b);
      if (partial.ok()) {
        partials[i] = std::move(partial).ValueUnsafe();
      } else {
        statuses[i] = partial.status();
      }
    }
    timings[i].kernel = stage.Seconds();
    timings[i].wall = wall.Seconds();
  };
  RunShards(specs, run);
  for (const Status& st : statuses) RMA_RETURN_NOT_OK(st);

  RecordShardStages(ctx, Stage::kGather, timings);
  timer.Restart();
  for (int stride = 1; stride < S; stride *= 2) {
    for (int i = 0; i + stride < S; i += 2 * stride) {
      RMA_RETURN_NOT_OK(blas::AddInPlace(&partials[static_cast<size_t>(i)],
                                         partials[static_cast<size_t>(i + stride)]));
    }
  }
  DenseMatrix total = std::move(partials[0]);
  ctx.RecordStage(Stage::kMerge, timer.Seconds());
  timer.Restart();
  std::vector<BatPtr> base = ColumnsToBats(kernel::MatrixToColumns(total));
  ctx.RecordStage(Stage::kScatter, timer.Seconds());
  return base;
}

}  // namespace

void ClampShards(const ExecContext& ctx, OpPlan* plan) {
  if (plan->shards <= 1) return;
  int budget = ctx.effective_thread_budget();
  if (budget <= 0) budget = DefaultThreadCount();
  const int shards = std::min(plan->shards, budget);
  if (shards >= 2) {
    plan->shards = shards;
    return;
  }
  // The subtree fork left us a single slot: a serial sharded run would only
  // pay the merge, so revert to the unsharded plan shape.
  plan->shards = 1;
  plan->merge = MergeKind::kNone;
  plan->stages.erase(
      std::remove(plan->stages.begin(), plan->stages.end(), Stage::kMerge),
      plan->stages.end());
}

Result<std::vector<BatPtr>> DispatchShardedBinary(ExecContext& ctx,
                                                  const OpPlan& plan,
                                                  const PreparedArg& pr,
                                                  const PreparedArg& ps) {
  ScopedThreadBudget outer(ctx.effective_thread_budget());
  int budget = CurrentThreadBudget();
  if (budget <= 0) budget = DefaultThreadCount();
  const int per_shard_budget = std::max(1, budget / plan.shards);
  switch (plan.merge) {
    case MergeKind::kConcat:
      return DispatchConcat(ctx, plan, pr, ps, per_shard_budget);
    case MergeKind::kTreeReduce:
      return DispatchTreeReduce(ctx, plan, pr, ps, per_shard_budget);
    case MergeKind::kNone:
      break;
  }
  return DispatchBinary(ctx, plan, pr, ps);
}

}  // namespace internal

}  // namespace rma
