#ifndef RMA_CORE_PLANNER_H_
#define RMA_CORE_PLANNER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/calibration.h"
#include "core/options.h"
#include "core/ops.h"
#include "storage/relation.h"
#include "util/result.h"

namespace rma {

struct RmaExpr;
using RmaExprPtr = std::shared_ptr<RmaExpr>;
struct RewriteReport;

/// The execution stages of one relational matrix operation, following the
/// paper's measured decomposition (Fig. 13/14): order-schema sorting, the
/// BATs -> contiguous gather, the matrix kernel, the scatter back to BATs,
/// and the morphing of contextual information.
enum class Stage : int {
  kPrepare = 0,  ///< order-schema sort / key alignment (sort_seconds)
  kGather = 1,   ///< BATs -> contiguous array (transform_in_seconds)
  kKernel = 2,   ///< the matrix kernel itself (compute_seconds)
  kScatter = 3,  ///< base result -> BATs (transform_out_seconds)
  kMorph = 4,    ///< contextual-information handling (morph_seconds)
  kMerge = 5,    ///< shard merge/reduce barrier (merge_seconds)
};

const char* StageName(Stage s);

/// How per-shard partial results combine when an operation is row-range
/// sharded (see docs/ARCHITECTURE.md, "Sharded stage execution").
enum class MergeKind : int {
  kNone = 0,        ///< unsharded: single stage DAG, nothing to merge
  kConcat = 1,      ///< ordered concatenation of disjoint row ranges
                    ///< (element-wise ops; bit-exact by construction)
  kTreeReduce = 2,  ///< pairwise summation of per-shard partials
                    ///< (Gram/cross products; associative up to FP rounding)
};

const char* MergeKindName(MergeKind m);

/// Where the kernel stage of an operation runs (Sec. 7.3).
enum class KernelChoice : int {
  kBat = 0,        ///< column-at-a-time over BATs, no contiguous copy
  kDense = 1,      ///< gather -> contiguous kernel -> scatter
  kDenseSyrk = 2,  ///< self cross product on the symmetric rank-k kernel
};

const char* KernelChoiceName(KernelChoice k);

/// The cost-profile family pricing an op's column-at-a-time kernel
/// (core/calibration.h): streaming for element-wise ops, axpy for mmu,
/// element-at-a-time scatter for tra, BUNfetch for cpd, decomposition
/// otherwise. Shared by the planner (pricing) and the execution feedback
/// loop (refinement).
CostKernel BatCostFamily(MatrixOp op);

/// Shape summary of one prepared argument, the planner's input.
struct ArgShape {
  int64_t rows = 0;
  int64_t cols = 0;       ///< application-schema width
  double density = 1.0;   ///< avg non-zero share of the application columns
                          ///< (sparse columns lower it; dense columns are 1)
  /// All application columns expose contiguous double storage (dense double
  /// columns or their slice views) — the precondition for zero-copy row-range
  /// sharding. Operation results are always dense doubles, so the default is
  /// true; MakeArgShape clears it for int64/string/sparse columns.
  bool contiguous = true;
  /// Bytes a contiguous copy of the application part would occupy.
  int64_t ContiguousBytes() const {
    return rows * cols * static_cast<int64_t>(sizeof(double));
  }
};

/// The physical plan of a single relational matrix operation: the chosen
/// kernel, the stages it implies, and the cost estimates that drove the
/// choice (element-operation units; see the model in planner.cc).
struct OpPlan {
  MatrixOp op = MatrixOp::kInv;
  KernelChoice kernel = KernelChoice::kDense;
  std::vector<Stage> stages;

  double cost_bat = 0;    ///< estimated cost of the column-at-a-time path
  double cost_dense = 0;  ///< estimated cost of gather + kernel + scatter
  bool over_budget = false;  ///< contiguous copy exceeded the memory ceiling

  /// Row-range shard count (1 = unsharded) and the merge contract for
  /// combining per-shard results. Chosen from calibrated per-shard costs:
  /// shard only when splitting drops the per-shard work into a cheaper cache
  /// regime and the win beats per-shard fork overhead plus the merge cost.
  int shards = 1;
  MergeKind merge = MergeKind::kNone;

  /// Which cost model priced this op (analytic constants, startup probes,
  /// or stats-refined) — surfaced by EXPLAIN.
  CostSource cost_source = CostSource::kAnalytic;

  /// Cache regime (CostRegimeLabel) the chosen path's kernel family priced
  /// its work in. Empty when the profile is single-rate — EXPLAIN omits it
  /// so analytic-model output is unchanged.
  std::string cost_regime;

  /// Element counts behind the estimates, per priced family. Recorded at
  /// plan time so ExecContext can feed measured per-stage seconds back into
  /// the cost profile (seconds / elements = observed per-element rate).
  double flops = 0;             ///< dense kernel work (SYRK-halved)
  double bat_elements = 0;      ///< density-scaled column-at-a-time work
  double gather_elements = 0;   ///< BATs -> contiguous copy size
  double scatter_elements = 0;  ///< result -> BATs copy size
  double sort_elements = 0;     ///< rows sorted across both arguments

  ArgShape left;
  ArgShape right;  ///< zeroed for unary operations

  /// One-line rendering: "cpd kernel=dense stages=[prepare gather kernel
  /// scatter morph] cost(bat)=... cost(dense)=...".
  std::string DebugString() const;
};

/// Chooses the kernel for `op` given the argument shapes and the options'
/// policy. `right` is null for unary operations; `self_cross` marks
/// cpd(x, x) over the identical prepared argument (SYRK-eligible).
/// This is the single decision point both the executor and EXPLAIN use.
OpPlan PlanOp(MatrixOp op, const RmaOptions& opts, const ArgShape& left,
              const ArgShape* right, bool self_cross = false);

// --- expression-level planning (EXPLAIN) ------------------------------------

/// A node of a physical expression plan: scans feed staged operations.
struct PlanNode;
using PlanNodePtr = std::shared_ptr<PlanNode>;

struct PlanNode {
  enum class Kind { kScan, kOp, kRelabel };
  Kind kind = Kind::kScan;

  // kScan
  std::string relation_name;

  // kOp
  OpPlan op_plan;
  std::vector<std::vector<std::string>> orders;
  /// Whether the prepared-argument cache is expected to serve this child's
  /// sort permutation (a previously planned node prepared the same
  /// (relation, order schema) pair).
  std::vector<bool> cached_prepare;

  // kRelabel
  std::string relabel_attr;

  ArgShape out_shape;  ///< result shape (rows x application columns)
  std::vector<PlanNodePtr> children;
};

/// Lowers a (possibly rewritten) expression tree into a physical plan by
/// propagating shapes from the leaf relations through Table 1's shape types
/// and running PlanOp at every operation node. Applies the rewrite rules of
/// `opts.rewrites` first when `report` is non-null or rewrites are enabled.
Result<PlanNodePtr> PlanExpression(const RmaExprPtr& expr,
                                   const RmaOptions& opts,
                                   RewriteReport* report = nullptr);

/// Multi-line rendering of a physical plan tree (EXPLAIN output): one node
/// per line, indented by depth, with kernels, stages, and cost estimates.
std::string RenderPlan(const PlanNodePtr& plan);

/// Computes the shape summary of a relation under an order schema without
/// sorting: rows, application width, and the sparse-column density.
Result<ArgShape> ShapeOf(const Relation& r,
                         const std::vector<std::string>& order);

/// Shape summary from an already-resolved application column set (the
/// single implementation behind ShapeOf and PreparedArg::Shape).
ArgShape MakeArgShape(const Relation& r, const std::vector<int>& app_idx,
                      int64_t rows);

}  // namespace rma

#endif  // RMA_CORE_PLANNER_H_
