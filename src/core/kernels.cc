#include "core/kernels.h"

#include <algorithm>
#include <cmath>

#include "matrix/blas.h"
#include "matrix/cholesky.h"
#include "matrix/eigen.h"
#include "matrix/lu.h"
#include "matrix/qr.h"
#include "matrix/svd.h"
#include "storage/bat_ops.h"

namespace rma::kernel {

int64_t NumRows(const Columns& c) {
  return c.empty() ? 0 : static_cast<int64_t>(c[0].size());
}

DenseMatrix ColumnsToMatrix(const Columns& c) {
  const int64_t n = NumRows(c);
  const int64_t k = static_cast<int64_t>(c.size());
  DenseMatrix m(n, k);
  std::vector<const double*> ptrs(c.size());
  for (size_t j = 0; j < c.size(); ++j) ptrs[j] = c[j].data();
  bat_ops::PackColumnsRowMajor(ptrs.data(), k, /*perm=*/nullptr, n, m.data());
  return m;
}

Columns MatrixToColumns(const DenseMatrix& m) {
  const int64_t n = m.rows();
  const int64_t k = m.cols();
  Columns c(static_cast<size_t>(k),
            std::vector<double>(static_cast<size_t>(n)));
  std::vector<double*> ptrs(c.size());
  for (size_t j = 0; j < c.size(); ++j) ptrs[j] = c[j].data();
  bat_ops::UnpackRowMajorToColumns(m.data(), n, k, ptrs.data());
  return c;
}

Status BatInv(Columns* a) {
  const int64_t n = NumRows(*a);
  if (static_cast<int64_t>(a->size()) != n) {
    return Status::Invalid("inv: matrix must be square");
  }
  Columns& b = *a;
  // BR starts as the identity (Algorithm 2, IDmatrix).
  Columns br(static_cast<size_t>(n),
             std::vector<double>(static_cast<size_t>(n), 0.0));
  for (int64_t i = 0; i < n; ++i) br[static_cast<size_t>(i)][static_cast<size_t>(i)] = 1.0;
  for (int64_t i = 0; i < n; ++i) {
    // Column pivoting: pick the column with the largest |value| in row i.
    int64_t p = i;
    double best = std::fabs(b[static_cast<size_t>(i)][static_cast<size_t>(i)]);
    for (int64_t j = i + 1; j < n; ++j) {
      const double v = std::fabs(b[static_cast<size_t>(j)][static_cast<size_t>(i)]);
      if (v > best) {
        best = v;
        p = j;
      }
    }
    if (best == 0.0) return Status::NumericError("inv: singular matrix");
    if (p != i) {
      std::swap(b[static_cast<size_t>(i)], b[static_cast<size_t>(p)]);
      std::swap(br[static_cast<size_t>(i)], br[static_cast<size_t>(p)]);
    }
    // v1 <- sel(B_i, i); B_i <- B_i / v1; BR_i <- BR_i / v1.
    const double v1 = b[static_cast<size_t>(i)][static_cast<size_t>(i)];
    bat_ops::Scale(1.0 / v1, &b[static_cast<size_t>(i)]);
    bat_ops::Scale(1.0 / v1, &br[static_cast<size_t>(i)]);
    // For j != i: v2 <- sel(B_j, i); B_j -= B_i*v2; BR_j -= BR_i*v2.
    for (int64_t j = 0; j < n; ++j) {
      if (j == i) continue;
      const double v2 = b[static_cast<size_t>(j)][static_cast<size_t>(i)];
      if (v2 == 0.0) continue;
      bat_ops::Axpy(-v2, b[static_cast<size_t>(i)], &b[static_cast<size_t>(j)]);
      bat_ops::Axpy(-v2, br[static_cast<size_t>(i)], &br[static_cast<size_t>(j)]);
    }
  }
  *a = std::move(br);
  return Status::OK();
}

Status BatQr(const Columns& a, Columns* q, Columns* r) {
  const int64_t n = NumRows(a);
  const int64_t k = static_cast<int64_t>(a.size());
  if (n < k) return Status::Invalid("qr: requires rows >= cols");
  *q = a;
  *r = Columns(static_cast<size_t>(k),
               std::vector<double>(static_cast<size_t>(k), 0.0));
  for (int64_t j = 0; j < k; ++j) {
    auto& qj = (*q)[static_cast<size_t>(j)];
    for (int64_t i = 0; i < j; ++i) {
      const auto& qi = (*q)[static_cast<size_t>(i)];
      const double s = bat_ops::Dot(qi, qj);
      (*r)[static_cast<size_t>(j)][static_cast<size_t>(i)] = s;  // R[i][j]
      bat_ops::Axpy(-s, qi, &qj);
    }
    const double norm = std::sqrt(bat_ops::Dot(qj, qj));
    (*r)[static_cast<size_t>(j)][static_cast<size_t>(j)] = norm;
    if (norm > 0.0) bat_ops::Scale(1.0 / norm, &qj);
  }
  return Status::OK();
}

Result<double> BatDet(Columns a) {
  const int64_t n = NumRows(a);
  if (static_cast<int64_t>(a.size()) != n) {
    return Status::Invalid("det: matrix must be square");
  }
  double det = 1.0;
  for (int64_t i = 0; i < n; ++i) {
    int64_t p = i;
    double best = std::fabs(a[static_cast<size_t>(i)][static_cast<size_t>(i)]);
    for (int64_t j = i + 1; j < n; ++j) {
      const double v = std::fabs(a[static_cast<size_t>(j)][static_cast<size_t>(i)]);
      if (v > best) {
        best = v;
        p = j;
      }
    }
    if (best == 0.0) return 0.0;
    if (p != i) {
      std::swap(a[static_cast<size_t>(i)], a[static_cast<size_t>(p)]);
      det = -det;
    }
    const double pivot = a[static_cast<size_t>(i)][static_cast<size_t>(i)];
    det *= pivot;
    for (int64_t j = i + 1; j < n; ++j) {
      const double f = a[static_cast<size_t>(j)][static_cast<size_t>(i)] / pivot;
      if (f == 0.0) continue;
      bat_ops::Axpy(-f, a[static_cast<size_t>(i)], &a[static_cast<size_t>(j)]);
    }
  }
  return det;
}

Result<Columns> BatMmu(const Columns& a, const Columns& b) {
  const int64_t inner = static_cast<int64_t>(a.size());
  if (inner != NumRows(b)) {
    return Status::Invalid("mmu: inner dimensions differ");
  }
  const int64_t n = NumRows(a);
  Columns c(b.size(), std::vector<double>(static_cast<size_t>(n), 0.0));
  // Result column j = sum_k B[k][j] * A_col_k — a linear combination of A's
  // columns, evaluated with vectorized axpy.
  for (size_t j = 0; j < b.size(); ++j) {
    for (int64_t p = 0; p < inner; ++p) {
      const double w = b[j][static_cast<size_t>(p)];
      if (w == 0.0) continue;
      bat_ops::Axpy(w, a[static_cast<size_t>(p)], &c[j]);
    }
  }
  return c;
}

Result<Columns> BatCpd(const std::vector<BatPtr>& a,
                       const std::vector<BatPtr>& b) {
  if (a.empty() || b.empty() || a[0]->size() != b[0]->size()) {
    return Status::Invalid("cpd: row counts differ");
  }
  const int64_t n = a[0]->size();
  Columns c(b.size(), std::vector<double>(a.size(), 0.0));
  for (size_t j = 0; j < b.size(); ++j) {
    const Bat& bj = *b[j];
    for (size_t i = 0; i < a.size(); ++i) {
      const Bat& ai = *a[i];
      // Element-at-a-time fetches (MonetDB BUNfetch): cpd does not reduce
      // to whole-column BAT operations.
      double s = 0.0;
      for (int64_t row = 0; row < n; ++row) {
        s += ai.GetDouble(row) * bj.GetDouble(row);
      }
      c[j][i] = s;
    }
  }
  return c;
}

Result<Columns> BatSol(const Columns& a, const Columns& b) {
  const int64_t k = static_cast<int64_t>(a.size());
  if (NumRows(a) != NumRows(b)) {
    return Status::Invalid("sol: row counts differ");
  }
  Columns q;
  Columns r;
  RMA_RETURN_NOT_OK(BatQr(a, &q, &r));
  Columns x(b.size(), std::vector<double>(static_cast<size_t>(k), 0.0));
  for (size_t col = 0; col < b.size(); ++col) {
    // Qᵀ b, then back substitution with R (stored column-wise).
    std::vector<double> qtb(static_cast<size_t>(k), 0.0);
    for (int64_t i = 0; i < k; ++i) {
      qtb[static_cast<size_t>(i)] = bat_ops::Dot(q[static_cast<size_t>(i)], b[col]);
    }
    for (int64_t i = k - 1; i >= 0; --i) {
      double s = qtb[static_cast<size_t>(i)];
      for (int64_t p = i + 1; p < k; ++p) {
        s -= r[static_cast<size_t>(p)][static_cast<size_t>(i)] *
             x[col][static_cast<size_t>(p)];
      }
      const double d = r[static_cast<size_t>(i)][static_cast<size_t>(i)];
      if (d == 0.0) return Status::NumericError("sol: rank-deficient system");
      x[col][static_cast<size_t>(i)] = s / d;
    }
  }
  return x;
}

bool HasBatKernel(MatrixOp op) {
  switch (op) {
    case MatrixOp::kAdd:
    case MatrixOp::kSub:
    case MatrixOp::kEmu:
    case MatrixOp::kInv:
    case MatrixOp::kQqr:
    case MatrixOp::kRqr:
    case MatrixOp::kDet:
    case MatrixOp::kMmu:
    case MatrixOp::kCpd:
    case MatrixOp::kSol:
    case MatrixOp::kTra:
      return true;
    default:
      return false;
  }
}

namespace {

DenseMatrix DiagFromSigma(const std::vector<double>& sigma, int64_t k) {
  DenseMatrix d(k, k, 0.0);
  for (int64_t i = 0; i < std::min<int64_t>(k, static_cast<int64_t>(sigma.size())); ++i) {
    d(i, i) = sigma[static_cast<size_t>(i)];
  }
  return d;
}

DenseMatrix PadColumns(const DenseMatrix& m, int64_t cols) {
  if (m.cols() == cols) return m;
  DenseMatrix out(m.rows(), cols, 0.0);
  for (int64_t i = 0; i < m.rows(); ++i) {
    for (int64_t j = 0; j < m.cols(); ++j) out(i, j) = m(i, j);
  }
  return out;
}

DenseMatrix Scalar(double v) {
  DenseMatrix m(1, 1);
  m(0, 0) = v;
  return m;
}

}  // namespace

Result<DenseMatrix> DenseCompute(MatrixOp op, const DenseMatrix& a,
                                 const DenseMatrix* b) {
  switch (op) {
    case MatrixOp::kAdd:
      return blas::Add(a, *b);
    case MatrixOp::kSub:
      return blas::Sub(a, *b);
    case MatrixOp::kEmu:
      return blas::ElemMul(a, *b);
    case MatrixOp::kMmu:
      return blas::MatMul(a, *b);
    case MatrixOp::kCpd:
      return blas::CrossProd(a, *b);
    case MatrixOp::kOpd:
      return blas::OuterProd(a, *b);
    case MatrixOp::kTra:
      return a.Transposed();
    case MatrixOp::kSol:
      return SolveLeastSquares(a, *b);
    case MatrixOp::kInv:
      return Inverse(a);
    case MatrixOp::kDet: {
      RMA_ASSIGN_OR_RETURN(double d, Determinant(a));
      return Scalar(d);
    }
    case MatrixOp::kRnk: {
      RMA_ASSIGN_OR_RETURN(int64_t r, MatrixRank(a));
      return Scalar(static_cast<double>(r));
    }
    case MatrixOp::kQqr: {
      DenseMatrix q;
      DenseMatrix r;
      RMA_RETURN_NOT_OK(HouseholderQr(a, &q, &r));
      return q;
    }
    case MatrixOp::kRqr: {
      DenseMatrix q;
      DenseMatrix r;
      RMA_RETURN_NOT_OK(HouseholderQr(a, &q, &r));
      return r;
    }
    case MatrixOp::kChf:
      return Cholesky(a);
    case MatrixOp::kEvc: {
      if (!IsSymmetric(a)) {
        return Status::NumericError(
            "evc: eigenvectors require a symmetric matrix (general "
            "eigenvectors may be complex)");
      }
      std::vector<double> values;
      DenseMatrix vectors;
      RMA_RETURN_NOT_OK(SymmetricEigen(a, &values, &vectors));
      return vectors;
    }
    case MatrixOp::kEvl: {
      std::vector<double> values;
      RMA_RETURN_NOT_OK(Eigenvalues(a, &values));
      DenseMatrix m(static_cast<int64_t>(values.size()), 1);
      for (size_t i = 0; i < values.size(); ++i) {
        m(static_cast<int64_t>(i), 0) = values[i];
      }
      return m;
    }
    case MatrixOp::kDsv: {
      RMA_ASSIGN_OR_RETURN(SvdResult s, Svd(a));
      return DiagFromSigma(s.sigma, a.cols());
    }
    case MatrixOp::kUsv:
      return SvdFullU(a);
    case MatrixOp::kVsv: {
      RMA_ASSIGN_OR_RETURN(SvdResult s, Svd(a));
      return PadColumns(s.v, a.cols());
    }
  }
  return Status::Invalid("unknown matrix operation");
}

}  // namespace rma::kernel
