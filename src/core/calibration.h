#ifndef RMA_CORE_CALIBRATION_H_
#define RMA_CORE_CALIBRATION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/mutex.h"
#include "util/result.h"
#include "util/thread_annotations.h"

namespace rma {

/// The kernel families the planner prices (core/planner.cc). Each family
/// gets one probe and one refinable cost entry; the planner's analytic
/// constants are the seed values when no calibration ran.
enum class CostKernel : int {
  kBatStream = 0,   ///< element-wise streaming over BAT columns (add/sub/emu)
  kBatAxpy,         ///< vectorized axpy column combines (mmu)
  kBatDecomp,       ///< column-at-a-time decompositions (inv/qqr/rqr/det/sol)
  kBatTranspose,    ///< element-at-a-time scatter (tra)
  kBatFetch,        ///< per-element virtual BUNfetch (cpd)
  kDenseFlop,       ///< contiguous dense kernel inner loops
  kGather,          ///< BATs -> contiguous strided copy (transform in)
  kScatter,         ///< contiguous -> BATs copy (transform out)
  kSort,            ///< order-schema argsort / key alignment
  kCount_,          ///< sentinel
};
constexpr int kNumCostKernels = static_cast<int>(CostKernel::kCount_);

const char* CostKernelName(CostKernel k);
/// Inverse of CostKernelName; returns false for unknown names.
bool CostKernelFromName(const std::string& name, CostKernel* out);

/// How a kernel family's cost entry was derived, in increasing order of
/// trust: the planner's analytic constants, a startup micro-probe, or
/// online refinement from measured per-op RmaStats.
enum class CostSource : int {
  kAnalytic = 0,
  kProbed = 1,
  kRefined = 2,
};

const char* CostSourceName(CostSource s);

/// Cost of one kernel family: a fixed per-operation overhead plus a
/// per-element rate. Under the analytic profile the rate is the planner's
/// dimensionless penalty constant and the overhead is zero, so cost ratios
/// reproduce the pre-calibration model exactly; probed/refined profiles
/// measure both in seconds.
///
/// Piecewise extension: a single rate is a poor fit across cache levels —
/// streaming kernels run several times faster L2-resident than from DRAM,
/// which skews BAT-vs-dense choices whenever the probe size and the actual
/// working set land in different regimes. When `rates` is non-empty the
/// entry is piecewise-linear: regime r covers element counts up to
/// breakpoints[r] (the last regime is unbounded), each with its own
/// per-element rate. `breakpoints.size() == rates.size() - 1`, breakpoints
/// strictly ascending. Empty `rates` keeps the legacy single-rate model and
/// `per_element` stays authoritative; with regimes, `per_element` mirrors
/// rates[0] so code that ignores regimes still sees a sane rate.
struct KernelCost {
  double per_element = 1.0;
  double fixed = 0.0;
  CostSource source = CostSource::kAnalytic;
  int64_t refinements = 0;  ///< EWMA updates applied to this entry
  std::vector<int64_t> breakpoints;  ///< regime upper bounds, in elements
  std::vector<double> rates;         ///< per-regime per-element rates

  /// Number of pricing regimes (1 for the legacy single-rate model).
  int NumRegimes() const {
    return rates.empty() ? 1 : static_cast<int>(rates.size());
  }
  /// The regime pricing `elements`: first r with elements <= breakpoints[r],
  /// else the last (unbounded) regime. Always 0 for single-rate entries.
  int RegimeOf(double elements) const {
    if (rates.empty()) return 0;
    for (size_t r = 0; r < breakpoints.size(); ++r) {
      if (elements <= static_cast<double>(breakpoints[r])) {
        return static_cast<int>(r);
      }
    }
    return static_cast<int>(rates.size()) - 1;
  }
  /// The per-element rate applied to `elements` under this entry.
  double RateFor(double elements) const {
    return rates.empty() ? per_element : rates[RegimeOf(elements)];
  }
};

/// Human-readable label for regime `regime` of an entry with `num_regimes`
/// regimes: "linear" for single-rate entries, "l2"/"l3"/"dram" for the
/// canonical three-regime cache split, "r<N>" otherwise.
std::string CostRegimeLabel(int regime, int num_regimes);

/// Per-machine cost profile of the planner's kernel families. Thread-safe:
/// concurrent statements price plans while the execution feedback loop
/// refines entries (one mutex, same discipline as ExecContext/QueryCache).
///
/// Lifecycle: Analytic() seeds the model with the planner's constants;
/// Probe() (core/calibration.cc) measures the families at a few sizes and
/// fits {fixed, per_element}; Save/Load round-trip the profile through JSON
/// so probes run once per machine (RmaOptions::calibration_path, env
/// RMA_CALIBRATION); ExecContext::EndOp feeds measured per-op stats back via
/// Refine() so repeated workloads converge toward observed costs.
class CostProfile {
 public:
  CostProfile();

  /// The planner's pre-calibration analytic constants (see planner.cc):
  /// dimensionless element-operation units, zero fixed overhead.
  static CostProfile Analytic();

  KernelCost Get(CostKernel k) const;
  void Set(CostKernel k, const KernelCost& cost);

  /// Estimated cost of processing `elements` elements with family `k`:
  /// fixed + elements * rate, where the rate is the regime's rate for
  /// piecewise entries (KernelCost::RateFor) and per_element otherwise.
  /// Units are seconds for probed/refined profiles and element-operation
  /// units for the analytic profile — only ratios between families matter
  /// to the planner.
  double Cost(CostKernel k, double elements) const;

  /// The largest NumRegimes() across entries: 1 means the profile is purely
  /// single-rate (analytic or legacy v1), >1 means cache breakpoints were
  /// probed or loaded.
  int MaxRegimes() const;

  /// Online refinement from one measured execution: `seconds` observed for
  /// `elements` elements. Folds the observation into the rate of the regime
  /// containing `elements` (per_element for single-rate entries) with an
  /// EWMA (alpha = kRefineAlpha) and marks the entry kRefined. No-ops when
  /// refinement is disabled (the shared analytic default must stay
  /// deterministic) or the observation is too small to be signal.
  void Refine(CostKernel k, double elements, double seconds);

  /// Whether Refine() applies. Off for Analytic() (and the process-wide
  /// default profile), on for probed/loaded profiles.
  bool refinable() const;
  void set_refinable(bool on);

  /// The dominant source across entries (refined > probed > analytic):
  /// EXPLAIN reports which model priced each op.
  CostSource Source() const;

  /// Fingerprint over quantized per-element rates (eighth-of-an-octave
  /// resolution), including every regime rate and breakpoint of piecewise
  /// entries. Plan caches mix it into their options fingerprint, so a
  /// materially changed profile invalidates cached plans while per-op EWMA
  /// jitter does not churn the cache.
  uint64_t Fingerprint() const;

  /// Serializes to the calibration JSON document (version 2: top-level
  /// "simd" records the ISA the rates were measured under; piecewise
  /// entries carry "breakpoints"/"rates" arrays).
  std::string ToJson() const;
  /// Parses a calibration JSON document, version 1 (single-rate) or 2
  /// (piecewise). Unknown kernel names are ignored; malformed documents
  /// return Invalid (callers fall back to Analytic()). A "simd" field that
  /// does not match the running binary's ISA warns to stderr — the rates
  /// still load, but a re-probe would be more faithful.
  static Result<CostProfile> FromJson(const std::string& json);

  Status SaveFile(const std::string& path) const;
  static Result<CostProfile> LoadFile(const std::string& path);

  CostProfile(const CostProfile& other);
  CostProfile& operator=(const CostProfile& other);

  static constexpr double kRefineAlpha = 0.2;

 private:
  mutable Mutex mu_;
  KernelCost costs_[kNumCostKernels] RMA_GUARDED_BY(mu_);
  bool refinable_ RMA_GUARDED_BY(mu_) = false;
};

using CostProfilePtr = std::shared_ptr<CostProfile>;

/// L2/L3 data-cache sizes in bytes, from sysconf where the platform exposes
/// them, with 1 MiB / 8 MiB fallbacks so breakpoints always exist.
struct CacheSizes {
  int64_t l2_bytes;
  int64_t l3_bytes;
};
CacheSizes DetectCacheSizes();

/// Options for the startup micro-probes.
struct ProbeOptions {
  /// Element counts each family is timed at; {fixed, per_element} are fitted
  /// by least squares over the sizes. Small by design: the whole probe pass
  /// stays well under a second.
  int64_t small_elements = 1 << 12;
  int64_t large_elements = 1 << 16;
  int repetitions = 3;  ///< best-of-N to shed scheduler noise
  /// Probe additional sizes bracketing the L2/L3 cache boundaries and fit a
  /// piecewise rate per regime (KernelCost::rates). Off: the legacy
  /// two-point single-rate fit.
  bool cache_breakpoints = true;
  /// Ceiling on any single probe's element count. Regimes whose sizes lie
  /// entirely above it inherit the previous regime's rate instead of being
  /// probed (keeps the probe pass bounded on machines with huge L3).
  int64_t max_probe_elements = 1 << 22;
};

/// Times the planner's kernel families (BAT streaming/axpy/decomposition/
/// fetch, dense flops, gather/scatter strided copies, argsort) at two sizes
/// and fits a KernelCost per family; with `cache_breakpoints` it also times
/// sizes past the L2/L3 boundaries and fits per-regime rates. The result is
/// refinable.
CostProfile ProbeCostProfile(const ProbeOptions& opts = ProbeOptions());

/// The process-wide default profile consulted when RmaOptions carries no
/// explicit cost_profile. Resolved once, from the RMA_CALIBRATION
/// environment variable:
///  - unset: the analytic constants (deterministic, no probes at startup);
///  - set to a readable calibration file: loaded from JSON;
///  - set to a missing/corrupt path: probes run and the result is saved
///    there (a corrupt file warns to stderr and falls back to probing —
///    never a crash).
const CostProfilePtr& DefaultCostProfile();

/// Resolves the profile an options struct denotes: its explicit profile, a
/// profile loaded/probed from its calibration_path, or the process default.
/// Never null. (Implemented in calibration.cc; used by the planner and the
/// options fingerprint.)
struct RmaOptions;
CostProfilePtr ResolveCostProfile(const RmaOptions& opts);

}  // namespace rma

#endif  // RMA_CORE_CALIBRATION_H_
