#ifndef RMA_CORE_CALIBRATION_H_
#define RMA_CORE_CALIBRATION_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "util/result.h"

namespace rma {

/// The kernel families the planner prices (core/planner.cc). Each family
/// gets one probe and one refinable cost entry; the planner's analytic
/// constants are the seed values when no calibration ran.
enum class CostKernel : int {
  kBatStream = 0,   ///< element-wise streaming over BAT columns (add/sub/emu)
  kBatAxpy,         ///< vectorized axpy column combines (mmu)
  kBatDecomp,       ///< column-at-a-time decompositions (inv/qqr/rqr/det/sol)
  kBatTranspose,    ///< element-at-a-time scatter (tra)
  kBatFetch,        ///< per-element virtual BUNfetch (cpd)
  kDenseFlop,       ///< contiguous dense kernel inner loops
  kGather,          ///< BATs -> contiguous strided copy (transform in)
  kScatter,         ///< contiguous -> BATs copy (transform out)
  kSort,            ///< order-schema argsort / key alignment
  kCount_,          ///< sentinel
};
constexpr int kNumCostKernels = static_cast<int>(CostKernel::kCount_);

const char* CostKernelName(CostKernel k);
/// Inverse of CostKernelName; returns false for unknown names.
bool CostKernelFromName(const std::string& name, CostKernel* out);

/// How a kernel family's cost entry was derived, in increasing order of
/// trust: the planner's analytic constants, a startup micro-probe, or
/// online refinement from measured per-op RmaStats.
enum class CostSource : int {
  kAnalytic = 0,
  kProbed = 1,
  kRefined = 2,
};

const char* CostSourceName(CostSource s);

/// Cost of one kernel family: a fixed per-operation overhead plus a
/// per-element rate. Under the analytic profile the rate is the planner's
/// dimensionless penalty constant and the overhead is zero, so cost ratios
/// reproduce the pre-calibration model exactly; probed/refined profiles
/// measure both in seconds.
struct KernelCost {
  double per_element = 1.0;
  double fixed = 0.0;
  CostSource source = CostSource::kAnalytic;
  int64_t refinements = 0;  ///< EWMA updates applied to this entry
};

/// Per-machine cost profile of the planner's kernel families. Thread-safe:
/// concurrent statements price plans while the execution feedback loop
/// refines entries (one mutex, same discipline as ExecContext/QueryCache).
///
/// Lifecycle: Analytic() seeds the model with the planner's constants;
/// Probe() (core/calibration.cc) measures the families at a few sizes and
/// fits {fixed, per_element}; Save/Load round-trip the profile through JSON
/// so probes run once per machine (RmaOptions::calibration_path, env
/// RMA_CALIBRATION); ExecContext::EndOp feeds measured per-op stats back via
/// Refine() so repeated workloads converge toward observed costs.
class CostProfile {
 public:
  CostProfile();

  /// The planner's pre-calibration analytic constants (see planner.cc):
  /// dimensionless element-operation units, zero fixed overhead.
  static CostProfile Analytic();

  KernelCost Get(CostKernel k) const;
  void Set(CostKernel k, const KernelCost& cost);

  /// Estimated cost of processing `elements` elements with family `k`:
  /// fixed + elements * per_element. Units are seconds for probed/refined
  /// profiles and element-operation units for the analytic profile — only
  /// ratios between families matter to the planner.
  double Cost(CostKernel k, double elements) const;

  /// Online refinement from one measured execution: `seconds` observed for
  /// `elements` elements. Folds the observation into per_element with an
  /// EWMA (alpha = kRefineAlpha) and marks the entry kRefined. No-ops when
  /// refinement is disabled (the shared analytic default must stay
  /// deterministic) or the observation is too small to be signal.
  void Refine(CostKernel k, double elements, double seconds);

  /// Whether Refine() applies. Off for Analytic() (and the process-wide
  /// default profile), on for probed/loaded profiles.
  bool refinable() const;
  void set_refinable(bool on);

  /// The dominant source across entries (refined > probed > analytic):
  /// EXPLAIN reports which model priced each op.
  CostSource Source() const;

  /// Fingerprint over quantized per-element rates (eighth-of-an-octave
  /// resolution). Plan caches mix it into their options fingerprint, so a
  /// materially changed profile invalidates cached plans while per-op EWMA
  /// jitter does not churn the cache.
  uint64_t Fingerprint() const;

  /// Serializes to the calibration JSON document.
  std::string ToJson() const;
  /// Parses a calibration JSON document. Unknown kernel names are ignored;
  /// malformed documents return Invalid (callers fall back to Analytic()).
  static Result<CostProfile> FromJson(const std::string& json);

  Status SaveFile(const std::string& path) const;
  static Result<CostProfile> LoadFile(const std::string& path);

  CostProfile(const CostProfile& other);
  CostProfile& operator=(const CostProfile& other);

  static constexpr double kRefineAlpha = 0.2;

 private:
  mutable std::mutex mu_;
  KernelCost costs_[kNumCostKernels];
  bool refinable_ = false;
};

using CostProfilePtr = std::shared_ptr<CostProfile>;

/// Options for the startup micro-probes.
struct ProbeOptions {
  /// Element counts each family is timed at; {fixed, per_element} are fitted
  /// by least squares over the sizes. Small by design: the whole probe pass
  /// stays well under a second.
  int64_t small_elements = 1 << 12;
  int64_t large_elements = 1 << 16;
  int repetitions = 3;  ///< best-of-N to shed scheduler noise
};

/// Times the planner's kernel families (BAT streaming/axpy/decomposition/
/// fetch, dense flops, gather/scatter strided copies, argsort) at two sizes
/// and fits a KernelCost per family. The result is refinable.
CostProfile ProbeCostProfile(const ProbeOptions& opts = ProbeOptions());

/// The process-wide default profile consulted when RmaOptions carries no
/// explicit cost_profile. Resolved once, from the RMA_CALIBRATION
/// environment variable:
///  - unset: the analytic constants (deterministic, no probes at startup);
///  - set to a readable calibration file: loaded from JSON;
///  - set to a missing/corrupt path: probes run and the result is saved
///    there (a corrupt file warns to stderr and falls back to probing —
///    never a crash).
const CostProfilePtr& DefaultCostProfile();

/// Resolves the profile an options struct denotes: its explicit profile, a
/// profile loaded/probed from its calibration_path, or the process default.
/// Never null. (Implemented in calibration.cc; used by the planner and the
/// options fingerprint.)
struct RmaOptions;
CostProfilePtr ResolveCostProfile(const RmaOptions& opts);

}  // namespace rma

#endif  // RMA_CORE_CALIBRATION_H_
