#ifndef RMA_CORE_SCHEDULER_H_
#define RMA_CORE_SCHEDULER_H_

#include "core/algebra.h"
#include "core/exec_context.h"
#include "core/planner.h"
#include "storage/relation.h"
#include "util/result.h"

namespace rma {

/// Concurrent stage scheduler: the DAG executor over relational-matrix
/// expression trees.
///
/// A rewritten expression tree makes independent subtrees explicit — the two
/// arguments of a binary operation depend on disjoint inputs and can run
/// concurrently; the operation itself is a barrier that needs both results
/// (its kernel dispatch is shape-dependent, so the join sits exactly where
/// the child shapes become known). EvaluateExpressionConcurrent walks the
/// tree in lockstep with its lowered PlanNode tree (when available — the
/// query cache stores one per statement op) and:
///
///  - schedules the right-hand subtree of a fork onto the shared ThreadPool
///    while the left runs inline on the calling thread (cooperative join:
///    waiting threads execute queued tasks, so nested forks cannot deadlock
///    a bounded pool),
///  - splits the caller's effective thread budget across the in-flight
///    subtrees (each side's kernels install their share via
///    ScopedThreadBudget), keeping total worker fan-out bounded by the
///    statement's budget,
///  - skips forking for subtrees the plan shows to be trivial
///    (RmaOptions::parallel_min_elements) and falls back to plain serial
///    EvaluateExpression when the budget has no headroom or
///    RmaOptions::concurrent_subtrees is off.
///
/// Offloaded subtrees evaluate on child ExecContexts borrowing the same
/// QueryCache; each child is merged back into `ctx` at its join in child
/// order, so plans()/op_stats() come out in the serial order regardless of
/// completion order. Results are identical to EvaluateExpression.
Result<Relation> EvaluateExpressionConcurrent(const RmaExprPtr& expr,
                                              ExecContext* ctx,
                                              const PlanNodePtr& plan =
                                                  nullptr);

}  // namespace rma

#endif  // RMA_CORE_SCHEDULER_H_
