#ifndef RMA_CORE_KERNELS_H_
#define RMA_CORE_KERNELS_H_

#include <vector>

#include "core/ops.h"
#include "matrix/dense_matrix.h"
#include "storage/bat.h"
#include "util/result.h"

namespace rma::kernel {

/// Column-major working format of the BAT execution path: one double vector
/// per application column (a sorted BAT tail). No copy into a contiguous
/// 2-D array is needed — this is the "no-copy" RMA+BAT mode of Sec. 7.3.
using Columns = std::vector<std::vector<double>>;

int64_t NumRows(const Columns& c);

/// Gather to row-major (the BATs -> "MKL format" copy of Fig. 14).
DenseMatrix ColumnsToMatrix(const Columns& c);
/// Scatter a dense result back to columns (the copy back to BATs).
Columns MatrixToColumns(const DenseMatrix& m);

// --- column-at-a-time (BAT) kernels ---------------------------------------

/// Gauss-Jordan inversion over columns: the paper's Algorithm 2, extended
/// with column pivoting for numerical robustness. In/out: `a` holds the
/// square matrix as columns and is replaced by its inverse.
Status BatInv(Columns* a);

/// Modified Gram-Schmidt QR over columns (the Gander baseline the paper
/// runs on BATs, Sec. 8.3). Produces thin Q and R (as columns), with
/// diag(R) >= 0 to match the dense Householder kernel.
Status BatQr(const Columns& a, Columns* q, Columns* r);

/// Determinant by Gaussian elimination over columns (column pivoting).
Result<double> BatDet(Columns a);

/// Matrix product A·B where each result column is a linear combination of
/// A's columns (vectorized per column).
Result<Columns> BatMmu(const Columns& a, const Columns& b);

/// Cross product AᵀB over BATs. The paper observes that cpd cannot be
/// reduced to whole-column BAT operations: every result cell is a dot
/// product fetched element by element (BUNfetch). The per-element virtual
/// accessor models that cost, which is why delegating cpd to the contiguous
/// kernels pays off 24-70x on wide relations (Sec. 8.6(3), Fig. 17b).
Result<Columns> BatCpd(const std::vector<BatPtr>& a,
                       const std::vector<BatPtr>& b);

/// Least-squares / exact solve on columns (via BatQr + back substitution).
Result<Columns> BatSol(const Columns& a, const Columns& b);

/// True if the op has a genuine column-at-a-time implementation; the
/// remaining complex ops (svd/eigen/chf/opd) fall back to the contiguous
/// kernels even under KernelPolicy::kBat (counted as transform time).
bool HasBatKernel(MatrixOp op);

// --- contiguous (dense) kernel dispatch ------------------------------------

/// Computes the base result of `op` on dense input(s); `b` is null for
/// unary operations. Shape prerequisites are validated by the caller.
Result<DenseMatrix> DenseCompute(MatrixOp op, const DenseMatrix& a,
                                 const DenseMatrix* b);

}  // namespace rma::kernel

#endif  // RMA_CORE_KERNELS_H_
