#ifndef RMA_CORE_ALGEBRA_H_
#define RMA_CORE_ALGEBRA_H_

#include <memory>
#include <string>
#include <vector>

#include "core/options.h"
#include "core/ops.h"
#include "core/rma.h"
#include "storage/relation.h"
#include "util/result.h"

namespace rma {

/// Cross-algebra expression trees and the rewriting optimizer.
///
/// The paper's conclusion names "cross algebra optimizations that involve
/// both relational and linear algebra operations" as the opportunity RMA
/// opens. This module implements the linear-algebra side of that idea:
/// nested relational matrix operations are represented as expression trees,
/// algebraic identities rewrite the trees, and only then is the (smaller)
/// plan executed. The identities are set-semantics equivalences — the
/// rewritten expression returns the same relation (same schema, same
/// multiset of tuples) as the original; only the physical row order may
/// differ, which relations do not carry.
///
/// Rules (toggled via RewriteRules in core/options.h):
///
///   mmu(tra(x BY U) BY C, y BY V)  →  cpd(x BY U, y BY V)
///     µ_C(tra(x)) is µ_U(x)ᵀ with rows permuted from schema order to
///     sorted-attribute-name order; cpd produces the same tuples with row
///     origin ∆Ū. This is exactly the covariance pattern of Sec. 5
///     (w4 = tra(w3); w5 = mmu(w4, w3)) and saves materializing the
///     transposed relation, re-sorting it by C, and one operation's worth
///     of contextual-information handling; the self-application
///     cpd(x, x) additionally runs on the symmetric SYRK kernel.
///
///   mmu(x BY U, tra(y BY V) BY C)  →  opd(x BY U, y BY V)
///     Valid when leaf y's application schema is lexicographically sorted
///     (µ_C(tra(y)) pairs x's j-th application column with y's j-th
///     *sorted* attribute, opd with the j-th *schema-order* attribute).
///
///   tra(tra(x BY U) BY C)  →  relabel(x, U)
///     Fig. 10's round trip: the result is x with attribute U stringified
///     into the context attribute C and the application columns emitted in
///     lexicographic order — no matrix computation at all.
///
///   rnk(tra(x BY U) BY C)  →  rnk(x BY U)
///     Rank is invariant under transposition and row permutation.
///
///   det(tra(x BY U) BY C)  →  det(x BY U)
///     det(Aᵀ) = det(A); requires leaf x's application schema to be
///     lexicographically sorted, because the rewrite drops the implicit
///     row permutation of µ_C(tra(x)) whose parity could flip the sign.
///
/// The SQL executor routes every FROM-clause operation tree through
/// RewriteExpression when RmaOptions::rewrites.enabled is set.

struct RmaExpr;
using RmaExprPtr = std::shared_ptr<RmaExpr>;

/// A node of a relational-matrix-algebra expression.
struct RmaExpr {
  enum class Kind {
    kLeaf,     ///< an input relation
    kOp,       ///< a relational matrix operation over child expressions
    kRelabel,  ///< double-transpose closed form (produced by rewriting only)
  };
  Kind kind = Kind::kLeaf;

  /// kLeaf: the input relation (shared columns; cheap to copy).
  Relation relation;

  // kOp
  MatrixOp op = MatrixOp::kInv;
  std::vector<RmaExprPtr> children;                ///< 1 or 2 (kRelabel: 1)
  std::vector<std::vector<std::string>> orders;    ///< BY list per child

  /// kRelabel: the order attribute of the eliminated inner transpose; its
  /// stringified values become the context attribute C of the result.
  std::string relabel_attr;

  /// Result name override (SQL `AS alias` on this node), applied post-eval.
  std::string alias;

  static RmaExprPtr Leaf(Relation r);
  static RmaExprPtr Unary(MatrixOp op, RmaExprPtr child,
                          std::vector<std::string> order);
  static RmaExprPtr Binary(MatrixOp op, RmaExprPtr left,
                           std::vector<std::string> order_left,
                           RmaExprPtr right,
                           std::vector<std::string> order_right);
};

/// Which rewrites fired, in application order ("mmu_tra_to_cpd", ...).
struct RewriteReport {
  std::vector<std::string> applied;
  int fired() const { return static_cast<int>(applied.size()); }
};

/// Applies the enabled identities bottom-up to a fixpoint and returns the
/// rewritten tree (input is not modified; untouched subtrees are shared).
RmaExprPtr RewriteExpression(const RmaExprPtr& expr, const RewriteRules& rules,
                             RewriteReport* report = nullptr);

/// Evaluates the tree: leaves pass through, kOp nodes run RmaUnary/
/// RmaBinary, kRelabel nodes build the double-transpose result directly
/// from the child relation. The whole tree shares one execution context,
/// so repeated operations over the same relation (the covariance pipeline
/// tra+mmu, the OLS workloads) reuse prepared arguments.
Result<Relation> EvaluateExpression(const RmaExprPtr& expr,
                                    const RmaOptions& opts = {});

/// Context-sharing variant used by pipeline evaluators (the SQL executor
/// threads one context through a whole statement).
Result<Relation> EvaluateExpression(const RmaExprPtr& expr, ExecContext* ctx);

/// RewriteExpression (honouring opts.rewrites) followed by
/// EvaluateExpression — the entry point the SQL executor uses.
Result<Relation> EvaluateOptimized(const RmaExprPtr& expr,
                                   const RmaOptions& opts = {},
                                   RewriteReport* report = nullptr);

/// Context-sharing variant of EvaluateOptimized.
Result<Relation> EvaluateOptimized(const RmaExprPtr& expr, ExecContext* ctx,
                                   RewriteReport* report);

}  // namespace rma

#endif  // RMA_CORE_ALGEBRA_H_
