#include <utility>

#include "core/constructors.h"
#include "core/exec_internal.h"
#include "storage/bat_ops.h"

namespace rma::internal {

namespace {

constexpr const char* kContextAttr = kContextAttrName;

std::string OpColumnName(const OpInfo& info) { return info.name; }

/// Assembles the final relation: `lead` columns (row origins) followed by
/// the base-result columns named `result_names`.
Result<Relation> Merge(std::vector<Attribute> lead_attrs,
                       std::vector<BatPtr> lead_cols,
                       const std::vector<std::string>& result_names,
                       std::vector<BatPtr> result_cols,
                       const std::string& rel_name) {
  RMA_CHECK(result_names.size() == result_cols.size());
  std::vector<Attribute> attrs = std::move(lead_attrs);
  for (const auto& n : result_names) {
    attrs.push_back(Attribute{n, DataType::kDouble});
  }
  auto schema = Schema::Make(std::move(attrs));
  if (!schema.ok()) {
    return Status::Invalid(
        "result attribute names collide (" + schema.status().message() +
        "); rename attributes of the arguments to disambiguate");
  }
  std::vector<BatPtr> cols = std::move(lead_cols);
  for (auto& c : result_cols) cols.push_back(std::move(c));
  return Relation::Make(std::move(*schema), std::move(cols), rel_name);
}

/// Result column names for the base result, per Table 2/3 (column origin).
Result<std::vector<std::string>> ColumnOriginNames(const OpInfo& info,
                                                   const PreparedArg& r,
                                                   const PreparedArg* s) {
  switch (info.shape.cols) {
    case Extent::kC1:
    case Extent::kCStar:
      return SchemaCast(r.rel.schema(), r.split.app_idx);
    case Extent::kC2:
      RMA_CHECK(s != nullptr);
      return SchemaCast(s->rel.schema(), s->split.app_idx);
    case Extent::kR1: {  // ▽U of r (|U| = 1)
      std::vector<int64_t> perm = r.perm;
      if (perm.empty()) {
        // The column cast needs sorted values even when the rows themselves
        // stayed unsorted (usv under SortPolicy::kOptimized).
        std::vector<BatPtr> key = {r.rel.column(r.split.order_idx[0])};
        perm = bat_ops::ArgSort(key);
      }
      return ColumnCast(r.rel, r.split.order_idx[0], perm);
    }
    case Extent::kR2: {  // ▽V of s (|V| = 1)
      RMA_CHECK(s != nullptr);
      std::vector<int64_t> perm = s->perm;
      if (perm.empty()) {
        std::vector<BatPtr> key = {s->rel.column(s->split.order_idx[0])};
        perm = bat_ops::ArgSort(key);
      }
      return ColumnCast(s->rel, s->split.order_idx[0], perm);
    }
    case Extent::kOne:
      return std::vector<std::string>{OpColumnName(info)};
    case Extent::kRStar:
      break;
  }
  return Status::Invalid("unsupported column extent");
}

}  // namespace

std::vector<BatPtr> ColumnsToBats(kernel::Columns cols) {
  std::vector<BatPtr> out;
  out.reserve(cols.size());
  for (auto& c : cols) out.push_back(MakeDoubleBat(std::move(c)));
  return out;
}

Result<Relation> AssembleUnary(const OpInfo& info, const PreparedArg& p,
                               std::vector<BatPtr> base) {
  const Relation& r = p.rel;
  if (info.shape.rows == Extent::kOne) {
    // det/rnk: γ(r ◦ OP(µ(r)), (C, op)).
    std::vector<Attribute> lead = {{kContextAttr, DataType::kString}};
    std::vector<BatPtr> lead_cols = {MakeStringBat({r.name()})};
    return Merge(std::move(lead), std::move(lead_cols),
                 {OpColumnName(info)}, std::move(base), r.name());
  }
  RMA_ASSIGN_OR_RETURN(std::vector<std::string> names,
                       ColumnOriginNames(info, p, nullptr));
  if (info.shape.rows == Extent::kR1) {
    // Row origin: the order part of r, in sorted order.
    std::vector<Attribute> lead;
    std::vector<BatPtr> lead_cols;
    for (size_t i = 0; i < p.split.order_idx.size(); ++i) {
      lead.push_back(r.schema().attribute(p.split.order_idx[i]));
      lead_cols.push_back(p.OrderColumn(i));
    }
    return Merge(std::move(lead), std::move(lead_cols), names,
                 std::move(base), r.name());
  }
  // (c1,*): row origin is ∆Ū — attribute names of the application schema
  // as values of the new C attribute.
  std::vector<Attribute> lead = {{kContextAttr, DataType::kString}};
  std::vector<BatPtr> lead_cols = {
      MakeStringBat(SchemaCast(r.schema(), p.split.app_idx))};
  return Merge(std::move(lead), std::move(lead_cols), names,
               std::move(base), r.name());
}

Result<Relation> AssembleBinary(const OpInfo& info, const PreparedArg& pr,
                                const PreparedArg& ps,
                                std::vector<BatPtr> base) {
  const Relation& r = pr.rel;
  const Relation& s = ps.rel;
  RMA_ASSIGN_OR_RETURN(std::vector<std::string> names,
                       ColumnOriginNames(info, pr, &ps));
  std::vector<Attribute> lead;
  std::vector<BatPtr> lead_cols;
  switch (info.shape.rows) {
    case Extent::kR1:
      for (size_t i = 0; i < pr.split.order_idx.size(); ++i) {
        lead.push_back(r.schema().attribute(pr.split.order_idx[i]));
        lead_cols.push_back(pr.OrderColumn(i));
      }
      break;
    case Extent::kRStar:
      // add/sub/emu: γ(µU(r) ∥ µV(s) ∥ OP(...), U ◦ V ◦ Ū).
      for (size_t i = 0; i < pr.split.order_idx.size(); ++i) {
        lead.push_back(r.schema().attribute(pr.split.order_idx[i]));
        lead_cols.push_back(pr.OrderColumn(i));
      }
      for (size_t i = 0; i < ps.split.order_idx.size(); ++i) {
        lead.push_back(s.schema().attribute(ps.split.order_idx[i]));
        lead_cols.push_back(ps.OrderColumn(i));
      }
      break;
    case Extent::kC1:
      lead.push_back(Attribute{kContextAttr, DataType::kString});
      lead_cols.push_back(
          MakeStringBat(SchemaCast(r.schema(), pr.split.app_idx)));
      break;
    default:
      return Status::Invalid("unsupported row extent for binary op");
  }
  return Merge(std::move(lead), std::move(lead_cols), names,
               std::move(base), r.name());
}

}  // namespace rma::internal
