#include "core/constructors.h"

#include "storage/bat_ops.h"

namespace rma {

Result<OrderSplit> SplitSchema(const Relation& r,
                               const std::vector<std::string>& order) {
  OrderSplit split;
  RMA_ASSIGN_OR_RETURN(split.order_idx, r.schema().IndicesOf(order));
  split.app_idx = r.schema().ComplementOf(split.order_idx);
  for (int i : split.app_idx) {
    const Attribute& a = r.schema().attribute(i);
    if (!IsNumeric(a.type)) {
      return Status::TypeError(
          "application attribute '" + a.name +
          "' is not numeric; add it to the order schema or project it away");
    }
  }
  return split;
}

Result<DenseMatrix> MatrixConstructor(const Relation& r,
                                      const std::vector<std::string>& order) {
  RMA_ASSIGN_OR_RETURN(OrderSplit split, SplitSchema(r, order));
  std::vector<BatPtr> keys;
  for (int i : split.order_idx) keys.push_back(r.column(i));
  bool unique = true;
  std::vector<int64_t> perm;
  if (keys.empty()) {
    return Status::Invalid("order schema must not be empty");
  }
  perm = bat_ops::ArgSortUnique(keys, &unique);
  if (!unique) {
    return Status::Invalid("order schema is not a key of the relation");
  }
  const int64_t n = r.num_rows();
  const int64_t k = static_cast<int64_t>(split.app_idx.size());
  DenseMatrix m(n, k);
  for (int64_t j = 0; j < k; ++j) {
    const std::vector<double> col = GatherDoubleVector(
        *r.column(split.app_idx[static_cast<size_t>(j)]), perm);
    m.SetCol(j, col);
  }
  return m;
}

Result<Relation> RelationConstructor(const DenseMatrix& m, Schema schema,
                                     std::string name) {
  if (schema.num_attributes() != m.cols()) {
    return Status::Invalid("relation constructor: schema arity mismatch");
  }
  std::vector<BatPtr> cols;
  cols.reserve(static_cast<size_t>(m.cols()));
  for (int64_t j = 0; j < m.cols(); ++j) {
    cols.push_back(MakeDoubleBat(m.Col(j)));
  }
  return Relation::Make(std::move(schema), std::move(cols), std::move(name));
}

std::vector<std::string> SchemaCast(const Schema& schema,
                                    const std::vector<int>& indices) {
  std::vector<std::string> out;
  out.reserve(indices.size());
  for (int i : indices) out.push_back(schema.attribute(i).name);
  return out;
}

Result<std::vector<std::string>> ColumnCast(const Relation& r, int column,
                                            const std::vector<int64_t>& perm) {
  const BatPtr& bat = r.column(column);
  std::vector<std::string> out;
  out.reserve(perm.size());
  for (int64_t p : perm) out.push_back(bat->GetString(p));
  return out;
}

}  // namespace rma
