#ifndef RMA_CORE_EXEC_CONTEXT_H_
#define RMA_CORE_EXEC_CONTEXT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/constructors.h"
#include "core/options.h"
#include "core/ops.h"
#include "core/planner.h"
#include "storage/relation.h"
#include "util/mutex.h"
#include "util/result.h"
#include "util/thread_annotations.h"

namespace rma {

class QueryCache;

/// One prepared argument of a relational matrix operation: the schema split,
/// the row order (sort permutation), and the owning relation handle. Owns a
/// Relation by value (shared column pointers — cheap), so cached instances
/// stay valid after the caller's relation goes out of scope.
struct PreparedArg {
  OrderSplit split;
  std::vector<int64_t> perm;  ///< empty => identity (rows already in order)
  int64_t rows = 0;
  Relation rel;

  bool identity() const { return perm.empty(); }
  int64_t app_cols() const { return static_cast<int64_t>(split.app_idx.size()); }

  /// Order-part column `i` of the result (gathered by perm when needed).
  BatPtr OrderColumn(size_t i) const;

  /// Application column `j` reordered, kept as a BAT (sparse preserved on
  /// the identity path).
  BatPtr AppColumnBat(size_t j) const;

  /// Application column `j` as a dense double vector.
  std::vector<double> AppColumnDense(size_t j) const;

  int64_t AppBytes() const {
    return rows * app_cols() * static_cast<int64_t>(sizeof(double));
  }

  /// Shape summary for the planner (rows, app width, sparse density).
  ArgShape Shape() const;
};

using PreparedArgPtr = std::shared_ptr<const PreparedArg>;

/// Per-pipeline execution state threaded through the staged executor:
///
///  - the options (kernel/sort policies, budgets),
///  - the worker-thread budget installed around kernel stages,
///  - per-stage wall-clock aggregation (RmaStats): per-op (the options'
///    stats sink and the op_stats() log), and cumulative across the context,
///  - a **borrowed** prepared-argument cache: the context delegates to a
///    QueryCache — the database-level cache when one was attached (so sort
///    permutations are shared across statements and contexts), or a private
///    per-context cache otherwise (the pre-promotion behavior),
///  - the physical plans of every executed operation (introspection, tests,
///    EXPLAIN ANALYZE).
///
/// Thread-safety: stats aggregation, plan recording, and the cache counters
/// are mutex-guarded, and each op bracket (BeginOp/EndOp) lives in
/// thread-local state, so concurrent statements of one batch — and child
/// subtree evaluations merged back via MergeChild — may share one context.
/// An operation must still begin and end on the same thread (RmaUnary/
/// RmaBinary run each op on one thread), and mutable_options() must not be
/// used while other threads execute on the context. plans() and op_stats()
/// are appended together at op commit, so they stay aligned; read them after
/// the concurrent work has joined.
class ExecContext {
 public:
  ExecContext();
  explicit ExecContext(const RmaOptions& opts);
  /// Borrows `cache` (shared, database-level) instead of creating a private
  /// one. Passing null falls back to a private cache.
  ExecContext(const RmaOptions& opts, std::shared_ptr<QueryCache> cache);

  const RmaOptions& options() const { return opts_; }
  RmaOptions& mutable_options() { return opts_; }

  /// Free-form owner label for stats attribution ("session-7", "batch", ...).
  /// A long-lived context — a server session's, which accumulates totals()
  /// and op_stats() across every statement of that session — carries the
  /// name its numbers should be reported under. Same write discipline as
  /// mutable_options(): set while no statements execute on the context.
  void set_attribution(std::string label) { attribution_ = std::move(label); }
  const std::string& attribution() const { return attribution_; }

  /// The cache this context borrows from (never null).
  const std::shared_ptr<QueryCache>& cache() const { return cache_; }

  /// Worker threads kernel stages may use (0 = hardware concurrency).
  int thread_budget() const { return opts_.max_threads; }

  /// The budget kernel stages should install: the minimum of the positive
  /// caps among the ambient ScopedThreadBudget (installed by the stage
  /// scheduler around a subtree) and the options' max_threads. 0 = no cap
  /// (hardware concurrency).
  int effective_thread_budget() const;

  /// Records `seconds` against a stage: the per-op sink (options().stats,
  /// when set), the open per-op log entry, and the context-wide totals.
  void RecordStage(Stage stage, double seconds);

  /// Attaches per-shard wall times (indexed by shard id) to the operation
  /// this thread has open — and to the options' stats sink. Called by the
  /// sharded executor from the bracket-owning thread after the shard join;
  /// purely diagnostic (EXPLAIN ANALYZE), never folded into totals().
  void RecordShardTimes(const std::vector<double>& shard_walls);

  /// Cumulative per-stage totals across all operations run on this context.
  /// The returned reference is only stable once concurrent work has joined
  /// (see the class comment); the lock bracket inside gives that quiescent
  /// reader an acquire edge against the last writer.
  const RmaStats& totals() const {
    MutexLock lock(mu_);
    return totals_;
  }

  /// Records the physical plan of the operation this thread has open (it is
  /// published to plans() when the op commits), or appends directly when no
  /// op bracket is open.
  void RecordPlan(const OpPlan& plan);
  /// Quiescent-read accessor; see totals().
  const std::vector<OpPlan>& plans() const {
    MutexLock lock(mu_);
    return plans_;
  }

  /// Brackets one relational matrix operation for the per-op stats log
  /// (EXPLAIN ANALYZE). Stages recorded between BeginOp and EndOp accrue to
  /// the op entry; EndOp(true) publishes {plan, stats} to plans()/op_stats()
  /// as one aligned pair and feeds the measured stage times back into the
  /// resolved cost profile (EWMA refinement; no-op for the non-refinable
  /// analytic default). EndOp(false) — the op failed — drops the entry and
  /// evicts every prepared-argument key the op stored from the shared cache,
  /// so a statement that fails mid-prepare leaves no entry behind
  /// (evict-on-error).
  void BeginOp();
  void EndOp(bool commit);
  /// Quiescent-read accessor; see totals().
  const std::vector<RmaStats>& op_stats() const {
    MutexLock lock(mu_);
    return op_stats_;
  }

  /// Statement-level plan-cache provenance, recorded by the SQL layer.
  enum class PlanCacheOutcome { kNotConsulted, kHit, kMiss };
  void RecordPlanCache(bool hit);
  PlanCacheOutcome plan_cache_outcome() const;

  /// Buffer-pool activity attributed to the statement this context just ran:
  /// the SQL layer snapshots the store's pool counters around a statement
  /// and records the delta here (totals, stats sink, and the open op entry
  /// when one exists). All-zero deltas are dropped, so purely in-memory
  /// databases never touch the pool fields.
  void RecordPoolDelta(int64_t hits, int64_t misses, int64_t evictions,
                       int64_t writebacks);

  /// Absorbs a quiescent child context (same borrowed cache) created for a
  /// concurrently evaluated subtree: appends its plans/op_stats in order and
  /// accumulates its totals and cache counters (also into this context's
  /// stats sink). The child's sink should be null to avoid double counting —
  /// MakeChildOptions() arranges that.
  void MergeChild(const ExecContext& child);

  /// This context's options with the stats sink cleared, for child contexts
  /// whose totals are merged back via MergeChild.
  RmaOptions MakeChildOptions() const;

  /// Prepared-argument cache, borrowed from cache(). Returns the cached
  /// prepared argument for (r's identity, order, avoid_sort) or null.
  /// `avoid_sort` distinguishes the identity-permutation variant produced
  /// under SortPolicy::kOptimized.
  PreparedArgPtr LookupPrepared(const Relation& r,
                                const std::vector<std::string>& order,
                                bool avoid_sort);
  void StorePrepared(const Relation& r, const std::vector<std::string>& order,
                     bool avoid_sort, PreparedArgPtr prepared);

  /// Relative-alignment variant (Sec. 8.1): s's rows aligned to r's physical
  /// key order. The cached permutation depends on both relations.
  PreparedArgPtr LookupAligned(const Relation& s,
                               const std::vector<std::string>& order_s,
                               const Relation& r,
                               const std::vector<std::string>& order_r);
  void StoreAligned(const Relation& s, const std::vector<std::string>& order_s,
                    const Relation& r, const std::vector<std::string>& order_r,
                    PreparedArgPtr prepared);

  /// Per-context prepared-cache counters (cache-sharing contexts also
  /// aggregate into the QueryCache's own counters).
  int64_t cache_hits() const;
  int64_t cache_misses() const;

 private:
  static std::string PreparedKey(const Relation& r,
                                 const std::vector<std::string>& order,
                                 bool avoid_sort);
  static std::string AlignedKey(const Relation& s,
                                const std::vector<std::string>& order_s,
                                const Relation& r,
                                const std::vector<std::string>& order_r);

  /// Options-dependent key suffix: a prepared argument computed without key
  /// validation must not be served to a context that requires it.
  std::string KeySuffix() const;

  /// Folds one committed op's measured stage seconds into the cost profile
  /// the options resolve to (core/calibration.h). Uses the element counts
  /// the planner recorded on the OpPlan; runs outside mu_ (the profile has
  /// its own mutex).
  void RefineCostModel(const OpPlan& plan, const RmaStats& stats) const;

  void CountPrepared(bool hit);
  void CountEvictions(int64_t n);
  void StoreByKey(std::string key, std::vector<uint64_t> relations,
                  PreparedArgPtr prepared);

  /// opts_ is written only during construction / via mutable_options()
  /// (whose contract forbids concurrent execution), so reads need no lock;
  /// writes *through* the opts_.stats sink pointer are guarded by mu_
  /// (RMA_PT_GUARDED_BY cannot attach to a field of an options struct, so
  /// that part of the invariant stays prose).
  RmaOptions opts_;
  std::string attribution_;
  std::shared_ptr<QueryCache> cache_;

  /// Guards totals_, plans_, op_stats_, the cache counters, the plan-cache
  /// outcome, and writes to the opts_.stats sink.
  mutable Mutex mu_;
  RmaStats totals_ RMA_GUARDED_BY(mu_);
  std::vector<OpPlan> plans_ RMA_GUARDED_BY(mu_);
  std::vector<RmaStats> op_stats_ RMA_GUARDED_BY(mu_);
  PlanCacheOutcome plan_outcome_ RMA_GUARDED_BY(mu_) =
      PlanCacheOutcome::kNotConsulted;
  int64_t cache_hits_ RMA_GUARDED_BY(mu_) = 0;
  int64_t cache_misses_ RMA_GUARDED_BY(mu_) = 0;
};

/// RAII bracket for ExecContext::BeginOp/EndOp. Destruction without
/// Commit() counts as failure: the op's stats entry is dropped and its
/// cache stores are evicted (see ExecContext::EndOp).
class ScopedOpStats {
 public:
  explicit ScopedOpStats(ExecContext* ctx) : ctx_(ctx) { ctx_->BeginOp(); }
  ~ScopedOpStats() { ctx_->EndOp(committed_); }
  void Commit() { committed_ = true; }
  ScopedOpStats(const ScopedOpStats&) = delete;
  ScopedOpStats& operator=(const ScopedOpStats&) = delete;

 private:
  ExecContext* ctx_;
  bool committed_ = false;
};

}  // namespace rma

#endif  // RMA_CORE_EXEC_CONTEXT_H_
