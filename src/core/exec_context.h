#ifndef RMA_CORE_EXEC_CONTEXT_H_
#define RMA_CORE_EXEC_CONTEXT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/constructors.h"
#include "core/options.h"
#include "core/ops.h"
#include "core/planner.h"
#include "storage/relation.h"
#include "util/result.h"

namespace rma {

/// One prepared argument of a relational matrix operation: the schema split,
/// the row order (sort permutation), and the owning relation handle. Owns a
/// Relation by value (shared column pointers — cheap), so cached instances
/// stay valid after the caller's relation goes out of scope.
struct PreparedArg {
  OrderSplit split;
  std::vector<int64_t> perm;  ///< empty => identity (rows already in order)
  int64_t rows = 0;
  Relation rel;

  bool identity() const { return perm.empty(); }
  int64_t app_cols() const { return static_cast<int64_t>(split.app_idx.size()); }

  /// Order-part column `i` of the result (gathered by perm when needed).
  BatPtr OrderColumn(size_t i) const;

  /// Application column `j` reordered, kept as a BAT (sparse preserved on
  /// the identity path).
  BatPtr AppColumnBat(size_t j) const;

  /// Application column `j` as a dense double vector.
  std::vector<double> AppColumnDense(size_t j) const;

  int64_t AppBytes() const {
    return rows * app_cols() * static_cast<int64_t>(sizeof(double));
  }

  /// Shape summary for the planner (rows, app width, sparse density).
  ArgShape Shape() const;
};

using PreparedArgPtr = std::shared_ptr<const PreparedArg>;

/// Per-pipeline execution state threaded through the staged executor:
///
///  - the options (kernel/sort policies, budgets),
///  - the worker-thread budget installed around kernel stages,
///  - per-stage wall-clock aggregation (RmaStats), both per-op (the
///    options' stats sink) and cumulative across the context,
///  - a prepared-argument cache keyed on (relation columns, order schema)
///    so repeated operations over the same relation — the covariance
///    pipeline tra+mmu, the OLS workloads — reuse sort permutations
///    instead of re-sorting,
///  - the physical plans of every executed operation (introspection and
///    tests).
///
/// A context is single-threaded state: share one per query/expression, not
/// across concurrent queries.
class ExecContext {
 public:
  ExecContext() = default;
  explicit ExecContext(const RmaOptions& opts) : opts_(opts) {}

  const RmaOptions& options() const { return opts_; }
  RmaOptions& mutable_options() { return opts_; }

  /// Worker threads kernel stages may use (0 = hardware concurrency).
  int thread_budget() const { return opts_.max_threads; }

  /// Records `seconds` against a stage: both the per-op sink
  /// (options().stats, when set) and the context-wide totals.
  void RecordStage(Stage stage, double seconds);

  /// Cumulative per-stage totals across all operations run on this context.
  const RmaStats& totals() const { return totals_; }

  /// Records the physical plan of an executed operation.
  void RecordPlan(const OpPlan& plan) { plans_.push_back(plan); }
  const std::vector<OpPlan>& plans() const { return plans_; }

  /// Prepared-argument cache. Returns the cached prepared argument for
  /// (r's columns, order, avoid_sort) or null. `avoid_sort` distinguishes
  /// the identity-permutation variant produced under SortPolicy::kOptimized.
  PreparedArgPtr LookupPrepared(const Relation& r,
                                const std::vector<std::string>& order,
                                bool avoid_sort) const;
  void StorePrepared(const Relation& r, const std::vector<std::string>& order,
                     bool avoid_sort, PreparedArgPtr prepared);

  int64_t cache_hits() const { return cache_hits_; }
  int64_t cache_misses() const { return cache_misses_; }

 private:
  static std::string CacheKey(const Relation& r,
                              const std::vector<std::string>& order,
                              bool avoid_sort);

  RmaOptions opts_;
  RmaStats totals_;
  std::vector<OpPlan> plans_;
  std::unordered_map<std::string, PreparedArgPtr> cache_;
  mutable int64_t cache_hits_ = 0;
  mutable int64_t cache_misses_ = 0;
};

}  // namespace rma

#endif  // RMA_CORE_EXEC_CONTEXT_H_
