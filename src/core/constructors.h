#ifndef RMA_CORE_CONSTRUCTORS_H_
#define RMA_CORE_CONSTRUCTORS_H_

#include <string>
#include <vector>

#include "matrix/dense_matrix.h"
#include "storage/relation.h"
#include "util/result.h"

namespace rma {

/// The split of a relation schema into order schema U and application
/// schema Ū (Sec. 4): U ⊎ Ū = R.
struct OrderSplit {
  std::vector<int> order_idx;  ///< positions of U, in the order given
  std::vector<int> app_idx;    ///< positions of Ū, in schema order
};

/// Resolves the order schema by name and validates that every application
/// attribute is numeric.
Result<OrderSplit> SplitSchema(const Relation& r,
                               const std::vector<std::string>& order);

/// Matrix constructor µ_U(r) (Def. 4.2): the application part of `r` sorted
/// by the order schema, as a dense matrix. Returns Invalid if U is not a
/// key. (Reference/specification form; the execution engine fuses the same
/// steps with its kernels.)
Result<DenseMatrix> MatrixConstructor(const Relation& r,
                                      const std::vector<std::string>& order);

/// Relation constructor γ(m, schema) (Def. 4.4): a relation over `schema`
/// whose tuples are the rows of `m`; all attributes are DOUBLE.
Result<Relation> RelationConstructor(const DenseMatrix& m, Schema schema,
                                     std::string name = "r");

/// Schema cast ∆U (Sec. 3.2): the attribute names of `U` as a single string
/// column (used as values of the C attribute of (c1,*)-shaped results).
std::vector<std::string> SchemaCast(const Schema& schema,
                                    const std::vector<int>& indices);

/// Column cast ▽U (Sec. 3.1): the sorted values of a single key attribute,
/// rendered as attribute names. Requires |indices| == 1.
Result<std::vector<std::string>> ColumnCast(const Relation& r, int column,
                                            const std::vector<int64_t>& perm);

}  // namespace rma

#endif  // RMA_CORE_CONSTRUCTORS_H_
