#include "core/options.h"

#include <string>

namespace rma {

Status ValidateRmaOptions(const RmaOptions& opts) {
  if (opts.max_shards < 1) {
    return Status::Invalid(
        "RmaOptions::max_shards must be >= 1 (got " +
        std::to_string(opts.max_shards) +
        "); use 1 to disable sharding, not 0");
  }
  if (opts.shard_min_rows < 1) {
    return Status::Invalid(
        "RmaOptions::shard_min_rows must be >= 1 (got " +
        std::to_string(opts.shard_min_rows) + ")");
  }
  if (opts.max_threads < 0) {
    return Status::Invalid(
        "RmaOptions::max_threads must be >= 0 (got " +
        std::to_string(opts.max_threads) + "); 0 means hardware concurrency");
  }
  if (opts.parallel_min_elements < 0) {
    return Status::Invalid(
        "RmaOptions::parallel_min_elements must be >= 0 (got " +
        std::to_string(opts.parallel_min_elements) + ")");
  }
  if (opts.contiguous_budget_bytes <= 0) {
    return Status::Invalid(
        "RmaOptions::contiguous_budget_bytes must be > 0 (got " +
        std::to_string(opts.contiguous_budget_bytes) + ")");
  }
  return Status::OK();
}

}  // namespace rma
