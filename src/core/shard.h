#ifndef RMA_CORE_SHARD_H_
#define RMA_CORE_SHARD_H_

#include <cstdint>
#include <vector>

#include "storage/bat.h"

namespace rma {

/// One row-range shard of an operation's input: shard id, the half-open row
/// range it covers, and the (application) column set it reads. This is the
/// complete description of a shard's input — deliberately free of pointers
/// into the executing process — so the same contract can later describe a
/// shard living in another NUMA pool or process (see docs/ARCHITECTURE.md,
/// "Sharded stage execution"). In-process execution resolves it against
/// column BATs via SliceColumns.
struct ShardSpec {
  int shard = 0;       ///< shard id in [0, total shards)
  int64_t begin = 0;   ///< first row (inclusive)
  int64_t end = 0;     ///< past-the-end row
  std::vector<int> columns;  ///< application column indices this shard reads

  int64_t rows() const { return end - begin; }
};

/// Splits `rows` into `shards` contiguous balanced ranges (the first
/// `rows % shards` ranges hold one extra row). `columns` is copied onto each
/// spec. shards must be >= 1; empty ranges never occur for rows >= shards.
std::vector<ShardSpec> MakeShardSpecs(int64_t rows, int shards,
                                      std::vector<int> columns = {});

/// Zero-copy slice views of `cols` restricted to the spec's row range
/// (SliceBat per column: contiguous double columns yield DoubleSliceBat
/// views; anything else materializes, which the planner's contiguity gate
/// keeps off the sharded path).
std::vector<BatPtr> SliceColumns(const std::vector<BatPtr>& cols,
                                 const ShardSpec& spec);

}  // namespace rma

#endif  // RMA_CORE_SHARD_H_
