#ifndef RMA_CORE_RMA_H_
#define RMA_CORE_RMA_H_

#include <string>
#include <vector>

#include "core/ops.h"
#include "core/options.h"
#include "storage/relation.h"
#include "util/result.h"

namespace rma {

/// Relational matrix algebra (Sec. 4): every operation takes relations plus
/// an order schema per argument and returns a relation that combines the
/// matrix base result with inherited contextual information (origins).
///
/// Example (the paper's introduction):
///   auto v = Inv(rating, {"User"});   // SELECT * FROM INV(rating BY User)
///
/// The order schema must form a key; its complement (the application
/// schema) must be numeric and supplies the matrix values.
///
/// Execution is staged (prepare -> plan -> gather/kernel/scatter -> morph;
/// see docs/ARCHITECTURE.md): the planner picks the kernel per operation
/// shape, and an ExecContext carries stats, the thread budget, and the
/// prepared-argument cache. The RmaOptions entry points below wrap a fresh
/// context per call; pipeline evaluators (EvaluateExpression, the SQL
/// executor) share one context across operations so sort permutations are
/// reused.

class ExecContext;

/// Generic unary entry point, op ∈ {tra, inv, evc, evl, qqr, rqr, dsv, usv,
/// vsv, det, rnk, chf}.
Result<Relation> RmaUnary(MatrixOp op, const Relation& r,
                          const std::vector<std::string>& order,
                          const RmaOptions& opts = {});

/// Generic binary entry point, op ∈ {emu, mmu, opd, cpd, add, sub, sol}.
Result<Relation> RmaBinary(MatrixOp op, const Relation& r,
                           const std::vector<std::string>& order_r,
                           const Relation& s,
                           const std::vector<std::string>& order_s,
                           const RmaOptions& opts = {});

/// Context-sharing variants: repeated operations over the same relation on
/// one context reuse prepared arguments (sort permutations), and per-stage
/// timings aggregate into the context totals.
Result<Relation> RmaUnary(ExecContext* ctx, MatrixOp op, const Relation& r,
                          const std::vector<std::string>& order);
Result<Relation> RmaBinary(ExecContext* ctx, MatrixOp op, const Relation& r,
                           const std::vector<std::string>& order_r,
                           const Relation& s,
                           const std::vector<std::string>& order_s);

// --- named wrappers --------------------------------------------------------

#define RMA_DECLARE_UNARY(Name, Op)                                        \
  inline Result<Relation> Name(const Relation& r,                          \
                               const std::vector<std::string>& order,      \
                               const RmaOptions& opts = {}) {              \
    return RmaUnary(MatrixOp::Op, r, order, opts);                         \
  }

#define RMA_DECLARE_BINARY(Name, Op)                                       \
  inline Result<Relation> Name(const Relation& r,                          \
                               const std::vector<std::string>& order_r,    \
                               const Relation& s,                          \
                               const std::vector<std::string>& order_s,    \
                               const RmaOptions& opts = {}) {              \
    return RmaBinary(MatrixOp::Op, r, order_r, s, order_s, opts);          \
  }

RMA_DECLARE_UNARY(Tra, kTra)   ///< transpose
RMA_DECLARE_UNARY(Inv, kInv)   ///< inversion
RMA_DECLARE_UNARY(Evc, kEvc)   ///< eigenvectors (symmetric input)
RMA_DECLARE_UNARY(Evl, kEvl)   ///< eigenvalues
RMA_DECLARE_UNARY(Qqr, kQqr)   ///< Q of QR
RMA_DECLARE_UNARY(Rqr, kRqr)   ///< R of QR
RMA_DECLARE_UNARY(Dsv, kDsv)   ///< singular values (diagonal matrix)
RMA_DECLARE_UNARY(Usv, kUsv)   ///< left singular vectors (full)
RMA_DECLARE_UNARY(Vsv, kVsv)   ///< right singular vectors
RMA_DECLARE_UNARY(Det, kDet)   ///< determinant
RMA_DECLARE_UNARY(Rnk, kRnk)   ///< rank
RMA_DECLARE_UNARY(Chf, kChf)   ///< Cholesky factor

RMA_DECLARE_BINARY(Emu, kEmu)  ///< element-wise multiplication
RMA_DECLARE_BINARY(Mmu, kMmu)  ///< matrix multiplication
RMA_DECLARE_BINARY(Opd, kOpd)  ///< outer product
RMA_DECLARE_BINARY(Cpd, kCpd)  ///< cross product
RMA_DECLARE_BINARY(Add, kAdd)  ///< addition
RMA_DECLARE_BINARY(Sub, kSub)  ///< subtraction
RMA_DECLARE_BINARY(Sol, kSol)  ///< solve / least squares

#undef RMA_DECLARE_UNARY
#undef RMA_DECLARE_BINARY

}  // namespace rma

#endif  // RMA_CORE_RMA_H_
