#include <memory>
#include <utility>

#include "core/constructors.h"
#include "core/exec_internal.h"
#include "storage/bat_ops.h"
#include "util/timer.h"

namespace rma::internal {

namespace {

bool IsIdentity(const std::vector<int64_t>& perm) {
  for (size_t i = 0; i < perm.size(); ++i) {
    if (perm[i] != static_cast<int64_t>(i)) return false;
  }
  return true;
}

/// Hash-based key-uniqueness check, O(n) (used on sort-avoiding paths).
Status CheckKeyHashed(const std::vector<BatPtr>& keys) {
  if (!bat_ops::IsKey(keys)) {
    return Status::Invalid("order schema is not a key of the relation");
  }
  return Status::OK();
}

/// The sort itself (or its hash-validated avoidance), uncached.
Result<std::shared_ptr<PreparedArg>> ComputePrepared(
    const Relation& r, const std::vector<std::string>& order,
    const RmaOptions& opts, bool avoid_sort) {
  auto p = std::make_shared<PreparedArg>();
  p->rel = r;
  p->rows = r.num_rows();
  RMA_ASSIGN_OR_RETURN(p->split, SplitSchema(r, order));
  std::vector<BatPtr> keys;
  for (int i : p->split.order_idx) keys.push_back(r.column(i));
  if (avoid_sort) {
    if (opts.validate_keys) RMA_RETURN_NOT_OK(CheckKeyHashed(keys));
    return p;  // identity perm
  }
  bool unique = true;
  std::vector<int64_t> perm = bat_ops::ArgSortUnique(keys, &unique);
  if (opts.validate_keys && !unique) {
    return Status::Invalid("order schema is not a key of the relation");
  }
  if (!IsIdentity(perm)) p->perm = std::move(perm);
  return p;
}

}  // namespace

Result<PreparedArgPtr> PrepareArgument(ExecContext& ctx, const Relation& r,
                                       const std::vector<std::string>& order,
                                       const OpInfo& info,
                                       bool skip_sort_allowed) {
  if (order.empty()) {
    return Status::Invalid("order schema must not be empty");
  }
  if (info.requires_single_order && order.size() != 1) {
    return Status::Invalid(std::string(info.name) +
                           ": order schema must contain exactly one attribute");
  }
  const RmaOptions& opts = ctx.options();
  const bool avoid_sort = skip_sort_allowed &&
                          opts.sort == SortPolicy::kOptimized &&
                          info.row_order_invariant;
  if (PreparedArgPtr cached = ctx.LookupPrepared(r, order, avoid_sort)) {
    return cached;  // no prepare time recorded: the sort is reused
  }
  Timer timer;
  auto computed = ComputePrepared(r, order, opts, avoid_sort);
  ctx.RecordStage(Stage::kPrepare, timer.Seconds());
  RMA_RETURN_NOT_OK(computed.status());
  PreparedArgPtr prepared = *computed;
  ctx.StorePrepared(r, order, avoid_sort, prepared);
  return prepared;
}

Result<BinaryArgs> PrepareBinaryArgs(ExecContext& ctx, const OpInfo& info,
                                     const Relation& r,
                                     const std::vector<std::string>& order_r,
                                     const Relation& s,
                                     const std::vector<std::string>& order_s) {
  const RmaOptions& opts = ctx.options();
  BinaryArgs out;
  RMA_ASSIGN_OR_RETURN(out.left,
                       PrepareArgument(ctx, r, order_r, info,
                                       /*skip_sort_allowed=*/false));
  // opd's column cast is over s's order schema: |V| = 1.
  if (info.op == MatrixOp::kOpd && order_s.size() != 1) {
    return Status::Invalid("opd: second order schema must contain exactly "
                           "one attribute");
  }

  // Relative alignment (Sec. 8.1): for element-wise operations only the
  // relative row order matters — keep r in physical order and align s's
  // rows to r's keys by hashing instead of sorting both.
  if (opts.sort == SortPolicy::kOptimized && info.relative_align_ok) {
    // A previously computed alignment of s onto r (this statement or, with a
    // shared database-level cache, an earlier one) is reused outright: the
    // whole pipeline over (r, s) pays for one hash alignment, not one per
    // operation.
    if (PreparedArgPtr cached = ctx.LookupAligned(s, order_s, r, order_r)) {
      if (!out.left->identity()) {
        auto relaxed = std::make_shared<PreparedArg>(*out.left);
        relaxed->perm.clear();
        out.left = std::move(relaxed);
      }
      out.right = cached;
      return out;
    }
    Timer timer;
    auto cand = std::make_shared<PreparedArg>();
    cand->rel = s;
    cand->rows = s.num_rows();
    auto split = SplitSchema(s, order_s);
    if (split.ok()) {
      cand->split = std::move(*split);
      std::vector<BatPtr> rkeys;
      for (int i : out.left->split.order_idx) rkeys.push_back(r.column(i));
      std::vector<BatPtr> skeys;
      for (int i : cand->split.order_idx) skeys.push_back(s.column(i));
      bool type_match = rkeys.size() == skeys.size();
      for (size_t i = 0; type_match && i < rkeys.size(); ++i) {
        if (rkeys[i]->type() != skeys[i]->type()) type_match = false;
      }
      if (type_match && r.num_rows() == s.num_rows()) {
        // Same key columns (self-application, e.g. cpd(A, A)): the
        // alignment is the identity — skip the hash pass entirely.
        bool same_bats = true;
        for (size_t i = 0; i < rkeys.size(); ++i) {
          if (rkeys[i].get() != skeys[i].get()) same_bats = false;
        }
        if (same_bats) {
          if (opts.validate_keys) {
            const Status st = CheckKeyHashed(rkeys);
            if (!st.ok()) {
              ctx.RecordStage(Stage::kPrepare, timer.Seconds());
              return st;
            }
          }
          out.right = std::move(cand);
        } else if (auto align = bat_ops::AlignByKey(skeys, rkeys);
                   align.ok()) {
          // A successful alignment is a bijection between the two key
          // sets, which already proves both order schemas are keys — no
          // separate validation pass.
          cand->perm = std::move(*align);
          if (IsIdentity(cand->perm)) cand->perm.clear();
          out.right = std::move(cand);
        }
      }
      if (out.right != nullptr) {
        // r keeps its physical order.
        if (!out.left->identity()) {
          auto relaxed = std::make_shared<PreparedArg>(*out.left);
          relaxed->perm.clear();
          out.left = std::move(relaxed);
        }
        ctx.RecordStage(Stage::kPrepare, timer.Seconds());
        ctx.StoreAligned(s, order_s, r, order_r, out.right);
        return out;
      }
    }
    ctx.RecordStage(Stage::kPrepare, timer.Seconds());
  }
  RMA_ASSIGN_OR_RETURN(out.right,
                       PrepareArgument(ctx, s, order_s, info,
                                       /*skip_sort_allowed=*/false));
  return out;
}

Status CheckBinaryDims(const OpInfo& info, const PreparedArg& r,
                       const PreparedArg& s) {
  switch (info.op) {
    case MatrixOp::kAdd:
    case MatrixOp::kSub:
    case MatrixOp::kEmu: {
      if (r.rows != s.rows || r.app_cols() != s.app_cols()) {
        return Status::Invalid(std::string(info.name) +
                               ": application parts must have equal shape");
      }
      // Non-overlapping order schemas (the result inherits both).
      for (int i : r.split.order_idx) {
        const std::string& name = r.rel.schema().attribute(i).name;
        for (int j : s.split.order_idx) {
          if (s.rel.schema().attribute(j).name == name) {
            return Status::Invalid(std::string(info.name) +
                                   ": order schemas overlap on '" + name +
                                   "'");
          }
        }
      }
      return Status::OK();
    }
    case MatrixOp::kMmu:
      if (r.app_cols() != s.rows) {
        return Status::Invalid("mmu: inner dimensions differ");
      }
      return Status::OK();
    case MatrixOp::kCpd:
      if (r.rows != s.rows) {
        return Status::Invalid("cpd: argument cardinalities differ");
      }
      return Status::OK();
    case MatrixOp::kOpd:
      if (r.app_cols() != s.app_cols()) {
        return Status::Invalid("opd: application schemas differ in width");
      }
      return Status::OK();
    case MatrixOp::kSol:
      if (r.rows != s.rows) {
        return Status::Invalid("sol: argument cardinalities differ");
      }
      if (s.app_cols() != 1) {
        return Status::Invalid(
            "sol: second argument must have a single application attribute");
      }
      if (r.rows < r.app_cols()) {
        return Status::Invalid("sol: system is underdetermined");
      }
      return Status::OK();
    default:
      return Status::Invalid("not a binary operation");
  }
}

DenseMatrix GatherMatrix(const PreparedArg& p) {
  const int64_t n = p.rows;
  const int64_t k = p.app_cols();
  DenseMatrix m(n, k);
  // All-dense inputs take the tiled multi-column transpose, which fills each
  // destination cache line while it is resident instead of sweeping the
  // row-major matrix once per column.
  std::vector<const double*> ptrs(static_cast<size_t>(k), nullptr);
  bool all_dense = true;
  for (int64_t j = 0; j < k; ++j) {
    const Bat& col = *p.rel.column(p.split.app_idx[static_cast<size_t>(j)]);
    if (const double* d = col.ContiguousDoubleData()) {
      ptrs[static_cast<size_t>(j)] = d;
    } else {
      all_dense = false;
      break;
    }
  }
  if (all_dense) {
    bat_ops::PackColumnsRowMajor(ptrs.data(), k,
                                 p.identity() ? nullptr : p.perm.data(), n,
                                 m.data());
    return m;
  }
  static const std::vector<int64_t> kIdentity;
  for (int64_t j = 0; j < k; ++j) {
    const Bat& col = *p.rel.column(p.split.app_idx[static_cast<size_t>(j)]);
    bat_ops::GatherColumnToStrided(col, p.identity() ? kIdentity : p.perm,
                                   m.data() + j, k);
  }
  return m;
}

kernel::Columns GatherColumns(const PreparedArg& p) {
  kernel::Columns cols(static_cast<size_t>(p.app_cols()));
  for (size_t j = 0; j < cols.size(); ++j) cols[j] = p.AppColumnDense(j);
  return cols;
}

}  // namespace rma::internal
