#include "core/scheduler.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "core/query_cache.h"
#include "matrix/parallel.h"

namespace rma {

namespace {

/// The parallelism available to this evaluation: the effective budget
/// (ambient scheduler share ∧ options cap), falling back to the hardware
/// when unbounded.
int ResolveBudget(const ExecContext& ctx) {
  const int budget = ctx.effective_thread_budget();
  return budget > 0 ? budget : DefaultThreadCount();
}

/// The plan child matching an expression child, when the lowered tree is
/// present and structurally in sync (PlanExpression mirrors the rewritten
/// expression 1:1; a stale or absent plan degrades to shape-blind forking,
/// never to wrong results).
PlanNodePtr PlanChild(const PlanNodePtr& plan, const RmaExprPtr& expr,
                      size_t i) {
  if (plan == nullptr || expr == nullptr) return nullptr;
  if (plan->children.size() != expr->children.size()) return nullptr;
  return plan->children[i];
}

/// Whether evaluating this subtree is worth a pool task: it must contain at
/// least one operation (leaves are free), and — when the lowered plan knows
/// the subtree's shape — its result must clear the configured element floor.
bool WorthOffloading(const RmaExprPtr& expr, const PlanNodePtr& plan,
                     int64_t min_elements) {
  if (expr == nullptr || expr->kind == RmaExpr::Kind::kLeaf) return false;
  if (min_elements > 0 && plan != nullptr) {
    const int64_t elements = plan->out_shape.rows * plan->out_shape.cols;
    if (elements < min_elements) return false;
  }
  return true;
}

/// Holder for a subtree evaluated off-thread: the child context (borrowing
/// the parent's cache) and the slot its result lands in. Heap-allocated and
/// shared with the task so the submitting frame can fail fast while the
/// task still owns valid state.
struct Fork {
  Fork(const RmaOptions& opts, std::shared_ptr<QueryCache> cache)
      : ctx(opts, std::move(cache)),
        result(Status::Invalid("subtree not evaluated")) {}

  ExecContext ctx;
  Result<Relation> result;
};

Result<Relation> EvalNode(const RmaExprPtr& expr, const PlanNodePtr& plan,
                          ExecContext* ctx, int budget);

/// Evaluates all children of `expr` (concurrently when the structure, the
/// budget, and the shapes allow), then runs the node itself by delegating a
/// shallow copy with leaf children to the serial evaluator — one code path
/// for kernels, relabel, aliasing, and arity checks.
Result<Relation> EvalOpNode(const RmaExprPtr& expr, const PlanNodePtr& plan,
                            ExecContext* ctx, int budget) {
  const size_t arity = expr->children.size();
  std::vector<Relation> inputs(arity);

  const int64_t min_elements = ctx->options().parallel_min_elements;
  const bool fork = arity == 2 && budget >= 2 &&
                    WorthOffloading(expr->children[0],
                                    PlanChild(plan, expr, 0), min_elements) &&
                    WorthOffloading(expr->children[1],
                                    PlanChild(plan, expr, 1), min_elements);
  if (fork) {
    // Shape-dependent barrier: both subtrees are independent up to this
    // node's kernel dispatch, which needs both shapes. Split the budget,
    // offload the right subtree, run the left inline, join, merge.
    const int right_budget = std::max(1, budget / 2);
    const int left_budget = std::max(1, budget - right_budget);
    auto child = std::make_shared<Fork>(ctx->MakeChildOptions(), ctx->cache());
    const RmaExprPtr right_expr = expr->children[1];
    const PlanNodePtr right_plan = PlanChild(plan, expr, 1);
    ThreadPool::TaskPtr task =
        ThreadPool::Shared().Submit([child, right_expr, right_plan,
                                     right_budget] {
          ScopedThreadBudget share(right_budget);
          child->result =
              EvalNode(right_expr, right_plan, &child->ctx, right_budget);
        });
    Result<Relation> left = [&]() -> Result<Relation> {
      ScopedThreadBudget share(left_budget);
      return EvalNode(expr->children[0], PlanChild(plan, expr, 0), ctx,
                      left_budget);
    }();
    ThreadPool::Shared().Wait(task);  // barrier; rethrows task exceptions
    // Merge in child order so plans()/op_stats() match serial evaluation.
    ctx->MergeChild(child->ctx);
    RMA_RETURN_NOT_OK(left.status());
    RMA_RETURN_NOT_OK(child->result.status());
    inputs[0] = std::move(*left);
    inputs[1] = std::move(*child->result);
  } else {
    for (size_t i = 0; i < arity; ++i) {
      RMA_ASSIGN_OR_RETURN(inputs[i],
                           EvalNode(expr->children[i], PlanChild(plan, expr, i),
                                    ctx, budget));
    }
  }

  // Delegate the node's own operation to the serial evaluator over a
  // shallow copy whose children are materialized leaves.
  auto node = std::make_shared<RmaExpr>(*expr);
  node->children.clear();
  for (auto& in : inputs) node->children.push_back(RmaExpr::Leaf(std::move(in)));
  return EvaluateExpression(node, ctx);
}

Result<Relation> EvalNode(const RmaExprPtr& expr, const PlanNodePtr& plan,
                          ExecContext* ctx, int budget) {
  if (expr == nullptr) return Status::Invalid("null RMA expression");
  switch (expr->kind) {
    case RmaExpr::Kind::kLeaf: {
      Relation out = expr->relation;
      if (!expr->alias.empty()) out.set_name(expr->alias);
      return out;
    }
    case RmaExpr::Kind::kOp:
    case RmaExpr::Kind::kRelabel:
      if (expr->children.empty() || expr->children.size() > 2) {
        return EvaluateExpression(expr, ctx);  // let it report the arity error
      }
      return EvalOpNode(expr, plan, ctx, budget);
  }
  return Status::Invalid("unreachable RMA expression kind");
}

}  // namespace

Result<Relation> EvaluateExpressionConcurrent(const RmaExprPtr& expr,
                                              ExecContext* ctx,
                                              const PlanNodePtr& plan) {
  RMA_CHECK(ctx != nullptr);
  const int budget = ResolveBudget(*ctx);
  if (!ctx->options().concurrent_subtrees || budget < 2) {
    return EvaluateExpression(expr, ctx);
  }
  return EvalNode(expr, plan, ctx, budget);
}

}  // namespace rma
