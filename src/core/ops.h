#ifndef RMA_CORE_OPS_H_
#define RMA_CORE_OPS_H_

#include <string>

#include "util/result.h"

namespace rma {

/// The matrix operations of the R matrix algebra covered by RMA (Sec. 3.2).
enum class MatrixOp : int {
  kEmu,  ///< element-wise multiplication
  kMmu,  ///< matrix multiplication
  kOpd,  ///< outer product (m · nᵀ)
  kCpd,  ///< cross product (mᵀ · n)
  kAdd,  ///< matrix addition
  kSub,  ///< matrix subtraction
  kTra,  ///< transpose
  kSol,  ///< solve linear system / least squares
  kInv,  ///< inversion
  kEvc,  ///< eigenvectors
  kEvl,  ///< eigenvalues
  kQqr,  ///< Q factor of QR
  kRqr,  ///< R factor of QR
  kDsv,  ///< singular values of SVD (as diag matrix, cf. Table 1)
  kUsv,  ///< full left singular vectors
  kVsv,  ///< right singular vectors
  kDet,  ///< determinant
  kRnk,  ///< rank
  kChf,  ///< Cholesky factorization
};

/// One extent (row or column count) of a result matrix, relative to the
/// inputs (Table 1): r1/r2 = rows of input 1/2, c1/c2 = columns of input
/// 1/2, r*/c* = both inputs agree, 1 = scalar extent.
enum class Extent : int { kR1, kR2, kRStar, kC1, kC2, kCStar, kOne };

/// Shape type (rows-extent, cols-extent) of an operation (Table 1).
struct ShapeType {
  Extent rows;
  Extent cols;
};

/// Static metadata for one relational matrix operation, driving input
/// validation, the sort-avoidance optimizations, and the morphing of
/// contextual information (Table 2).
struct OpInfo {
  MatrixOp op;
  const char* name;  ///< lower-case RMA name ("inv", "qqr", ...)
  int arity;         ///< 1 or 2
  ShapeType shape;
  bool requires_square;        ///< inv, evc, evl, chf, det
  bool requires_single_order;  ///< tra, usv: |U| = 1 (column cast of values)
  bool union_compatible;       ///< emu/add/sub: equal application schemas
  /// Result is invariant under input row permutation once origins are
  /// attached (qqr, usv, tra, rnk) — SortPolicy::kOptimized skips sorting.
  bool row_order_invariant;
  /// Binary op where only relative row order matters (emu/add/sub):
  /// kOptimized aligns s to r by key hash instead of sorting both.
  bool relative_align_ok;
};

/// Name of the contextual-information attribute that (c1,*)- and (1,1)-shaped
/// operations add to their result (the paper's attribute C, Sec. 4.2).
inline constexpr char kContextAttrName[] = "C";

/// Metadata lookup.
const OpInfo& GetOpInfo(MatrixOp op);

/// Parses an operation name, case-insensitive ("INV", "inv"). KeyError if
/// unknown.
Result<MatrixOp> ParseMatrixOp(const std::string& name);

/// Number of rows/cols the base result will have, given input dimensions
/// (rows1×cols1 and, for binary ops, rows2×cols2).
int64_t ResultExtent(Extent e, int64_t rows1, int64_t cols1, int64_t rows2,
                     int64_t cols2);

}  // namespace rma

#endif  // RMA_CORE_OPS_H_
