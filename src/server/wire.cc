#include "server/wire.h"

#include <cstring>

namespace rma::server {

namespace {

/// Doubles travel as IEEE-754 bit patterns; memcpy is the sanctioned
/// bit_cast in C++17.
uint64_t DoubleBits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double BitsDouble(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

/// The wire is little-endian; on a little-endian host the contiguous tails
/// of fixed-width columns ARE the wire representation, so whole columns
/// move with one memcpy. Big-endian hosts take the byte-shuffling path.
bool LittleEndianHost() {
  const uint32_t probe = 1;
  unsigned char byte;
  std::memcpy(&byte, &probe, 1);
  return byte == 1;
}

}  // namespace

Status SendFrame(Socket& sock, MessageType type, const std::string& payload) {
  if (payload.size() + 1 > kMaxFrameBytes) {
    return Status::Invalid("frame payload exceeds kMaxFrameBytes");
  }
  const uint32_t len = static_cast<uint32_t>(payload.size()) + 1;
  char head[5];
  head[0] = static_cast<char>(len & 0xff);
  head[1] = static_cast<char>((len >> 8) & 0xff);
  head[2] = static_cast<char>((len >> 16) & 0xff);
  head[3] = static_cast<char>((len >> 24) & 0xff);
  head[4] = static_cast<char>(type);
  // One send for header+type keeps small control frames in one segment;
  // the payload follows separately to avoid copying row batches.
  RMA_RETURN_NOT_OK(sock.SendAll(head, sizeof(head)));
  if (!payload.empty()) {
    RMA_RETURN_NOT_OK(sock.SendAll(payload.data(), payload.size()));
  }
  return Status::OK();
}

Result<Frame> RecvFrame(Socket& sock) {
  unsigned char head[4];
  RMA_RETURN_NOT_OK(sock.RecvAll(head, sizeof(head)));
  const uint32_t len = static_cast<uint32_t>(head[0]) |
                       (static_cast<uint32_t>(head[1]) << 8) |
                       (static_cast<uint32_t>(head[2]) << 16) |
                       (static_cast<uint32_t>(head[3]) << 24);
  if (len == 0) return Status::IoError("zero-length frame");
  if (len > kMaxFrameBytes) {
    return Status::IoError("frame length " + std::to_string(len) +
                           " exceeds limit");
  }
  unsigned char type;
  RMA_RETURN_NOT_OK(sock.RecvAll(&type, 1));
  Frame frame;
  frame.type = static_cast<MessageType>(type);
  frame.payload.resize(len - 1);
  if (len > 1) {
    RMA_RETURN_NOT_OK(sock.RecvAll(frame.payload.data(), frame.payload.size()));
  }
  return frame;
}

void WireWriter::PutU32(uint32_t v) {
  out_.push_back(static_cast<char>(v & 0xff));
  out_.push_back(static_cast<char>((v >> 8) & 0xff));
  out_.push_back(static_cast<char>((v >> 16) & 0xff));
  out_.push_back(static_cast<char>((v >> 24) & 0xff));
}

void WireWriter::PutU64(uint64_t v) {
  PutU32(static_cast<uint32_t>(v & 0xffffffffu));
  PutU32(static_cast<uint32_t>(v >> 32));
}

void WireWriter::PutF64(double v) { PutU64(DoubleBits(v)); }

void WireWriter::PutString(const std::string& s) {
  PutU32(static_cast<uint32_t>(s.size()));
  out_.append(s);
}

void WireWriter::PutRaw(const void* p, size_t n) {
  out_.append(static_cast<const char*>(p), n);
}

Status WireReader::Need(size_t n) const {
  if (pos_ + n > data_.size()) {
    return Status::IoError("truncated frame: need " + std::to_string(n) +
                           " bytes at offset " + std::to_string(pos_) +
                           " of " + std::to_string(data_.size()));
  }
  return Status::OK();
}

Result<uint8_t> WireReader::GetU8() {
  RMA_RETURN_NOT_OK(Need(1));
  return static_cast<uint8_t>(data_[pos_++]);
}

Result<uint32_t> WireReader::GetU32() {
  RMA_RETURN_NOT_OK(Need(4));
  const auto* p = reinterpret_cast<const unsigned char*>(data_.data() + pos_);
  pos_ += 4;
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

Result<uint64_t> WireReader::GetU64() {
  RMA_ASSIGN_OR_RETURN(uint32_t lo, GetU32());
  RMA_ASSIGN_OR_RETURN(uint32_t hi, GetU32());
  return static_cast<uint64_t>(lo) | (static_cast<uint64_t>(hi) << 32);
}

Result<int64_t> WireReader::GetI64() {
  RMA_ASSIGN_OR_RETURN(uint64_t v, GetU64());
  return static_cast<int64_t>(v);
}

Result<double> WireReader::GetF64() {
  RMA_ASSIGN_OR_RETURN(uint64_t v, GetU64());
  return BitsDouble(v);
}

Status WireReader::GetRaw(void* out, size_t n) {
  RMA_RETURN_NOT_OK(Need(n));
  std::memcpy(out, data_.data() + pos_, n);
  pos_ += n;
  return Status::OK();
}

Result<std::string> WireReader::GetString() {
  RMA_ASSIGN_OR_RETURN(uint32_t len, GetU32());
  RMA_RETURN_NOT_OK(Need(len));
  std::string out = data_.substr(pos_, len);
  pos_ += len;
  return out;
}

std::string EncodeResultHeader(const Schema& schema) {
  WireWriter w;
  w.PutU32(static_cast<uint32_t>(schema.num_attributes()));
  for (const Attribute& attr : schema.attributes()) {
    w.PutString(attr.name);
    w.PutU8(static_cast<uint8_t>(attr.type));
  }
  return w.Take();
}

std::string EncodeRowBatch(const Relation& rel, int64_t begin, int64_t count) {
  WireWriter w;
  const int ncols = rel.num_columns();
  // Fixed-width columns dominate result sets here; reserving their exact
  // footprint up front keeps the append loop realloc-free.
  w.Reserve(4 + static_cast<size_t>(count) * static_cast<size_t>(ncols) * 8);
  w.PutU32(static_cast<uint32_t>(count));
  const bool le_host = LittleEndianHost();
  for (int col = 0; col < ncols; ++col) {
    const Bat& bat = *rel.column(col);
    switch (rel.schema().attribute(col).type) {
      case DataType::kInt64: {
        const auto* typed = dynamic_cast<const Int64Bat*>(&bat);
        if (typed != nullptr && le_host) {
          w.PutRaw(typed->data().data() + begin,
                   static_cast<size_t>(count) * sizeof(int64_t));
        } else {
          for (int64_t row = begin; row < begin + count; ++row) {
            w.PutI64(std::get<int64_t>(bat.GetValue(row)));
          }
        }
        break;
      }
      case DataType::kDouble: {
        // Covers DoubleBat and the zero-copy shard slice views alike.
        const double* data = bat.ContiguousDoubleData();
        if (data != nullptr && le_host) {
          w.PutRaw(data + begin, static_cast<size_t>(count) * sizeof(double));
        } else {
          for (int64_t row = begin; row < begin + count; ++row) {
            w.PutF64(bat.GetDouble(row));
          }
        }
        break;
      }
      case DataType::kString: {
        for (int64_t row = begin; row < begin + count; ++row) {
          w.PutString(bat.GetString(row));
        }
        break;
      }
    }
  }
  return w.Take();
}

Result<Schema> DecodeResultHeader(const std::string& payload) {
  WireReader r(payload);
  RMA_ASSIGN_OR_RETURN(uint32_t ncols, r.GetU32());
  // Each column needs at least a length-prefixed name (4 bytes) and a type
  // tag; a claimed count the payload cannot possibly hold is rejected before
  // it sizes an allocation.
  if (static_cast<uint64_t>(ncols) * 5 > r.Remaining()) {
    return Status::IoError("result header claims " + std::to_string(ncols) +
                           " columns but only " +
                           std::to_string(r.Remaining()) + " bytes follow");
  }
  std::vector<Attribute> attrs;
  attrs.reserve(ncols);
  for (uint32_t i = 0; i < ncols; ++i) {
    Attribute attr;
    RMA_ASSIGN_OR_RETURN(attr.name, r.GetString());
    RMA_ASSIGN_OR_RETURN(uint8_t type, r.GetU8());
    if (type > static_cast<uint8_t>(DataType::kString)) {
      return Status::IoError("unknown column type tag " + std::to_string(type));
    }
    attr.type = static_cast<DataType>(type);
    attrs.push_back(std::move(attr));
  }
  return Schema::Make(std::move(attrs));
}

Result<Relation> DecodeRowBatch(const Schema& schema,
                                const std::string& payload) {
  WireReader r(payload);
  RMA_ASSIGN_OR_RETURN(uint32_t nrows, r.GetU32());
  const int ncols = schema.num_attributes();
  const bool le_host = LittleEndianHost();
  // The row count is untrusted: bound it by what the payload can actually
  // hold before sizing any allocation (8 bytes per fixed-width cell, at
  // least a 4-byte length prefix per string cell). A corrupt or hostile
  // count then fails as a clean IoError instead of a ~34 GB bad_alloc.
  auto check_claimed = [&r, nrows](size_t min_bytes_per_row) -> Status {
    if (static_cast<uint64_t>(nrows) * min_bytes_per_row > r.Remaining()) {
      return Status::IoError("row batch claims " + std::to_string(nrows) +
                             " rows but only " +
                             std::to_string(r.Remaining()) +
                             " payload bytes remain");
    }
    return Status::OK();
  };
  std::vector<BatPtr> columns;
  columns.reserve(static_cast<size_t>(ncols));
  for (int col = 0; col < ncols; ++col) {
    switch (schema.attribute(col).type) {
      case DataType::kInt64: {
        RMA_RETURN_NOT_OK(check_claimed(sizeof(int64_t)));
        std::vector<int64_t> data(nrows);
        if (le_host) {
          RMA_RETURN_NOT_OK(
              r.GetRaw(data.data(), data.size() * sizeof(int64_t)));
        } else {
          for (auto& v : data) {
            RMA_ASSIGN_OR_RETURN(v, r.GetI64());
          }
        }
        columns.push_back(MakeInt64Bat(std::move(data)));
        break;
      }
      case DataType::kDouble: {
        RMA_RETURN_NOT_OK(check_claimed(sizeof(double)));
        std::vector<double> data(nrows);
        if (le_host) {
          RMA_RETURN_NOT_OK(
              r.GetRaw(data.data(), data.size() * sizeof(double)));
        } else {
          for (auto& v : data) {
            RMA_ASSIGN_OR_RETURN(v, r.GetF64());
          }
        }
        columns.push_back(MakeDoubleBat(std::move(data)));
        break;
      }
      case DataType::kString: {
        RMA_RETURN_NOT_OK(check_claimed(/*length prefix*/ 4));
        std::vector<std::string> data(nrows);
        for (auto& v : data) {
          RMA_ASSIGN_OR_RETURN(v, r.GetString());
        }
        columns.push_back(MakeStringBat(std::move(data)));
        break;
      }
    }
  }
  if (!r.AtEnd()) return Status::IoError("trailing bytes after row batch");
  return Relation::Make(schema, std::move(columns), "batch");
}

std::string EncodeError(const Status& status) {
  WireWriter w;
  w.PutU32(static_cast<uint32_t>(status.code()));
  w.PutString(status.message());
  return w.Take();
}

Status DecodeError(const std::string& payload) {
  WireReader r(payload);
  auto code = r.GetU32();
  auto msg = r.GetString();
  if (!code.ok() || !msg.ok()) {
    return Status::IoError("malformed error frame");
  }
  if (*code == 0 || *code > static_cast<uint32_t>(StatusCode::kUnknownError)) {
    return Status(StatusCode::kUnknownError, *msg);
  }
  return Status(static_cast<StatusCode>(*code), *msg);
}

}  // namespace rma::server
