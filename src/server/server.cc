#include "server/server.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "matrix/parallel.h"
#include "server/session.h"
#include "server/wire.h"

namespace rma::server {

namespace {
/// How long a refused connection may take to send its HELLO before the
/// server gives up on delivering the capacity error and just closes.
constexpr int kRefusalHelloTimeoutMs = 5000;
/// Poll granularity while a refuser waits for the HELLO: it re-checks the
/// drain flag this often so shutdown is never held up by a stalled client.
constexpr int kRefuserPollMs = 100;
}  // namespace

Server::Server(sql::Database* db, ServerOptions opts)
    : db_(db), opts_(std::move(opts)) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (started_) return Status::Invalid("server already started");
  thread_budget_ = db_->rma_options.max_threads > 0
                       ? db_->rma_options.max_threads
                       : DefaultThreadCount();
  capacity_ = opts_.max_inflight_statements > 0
                  ? opts_.max_inflight_statements
                  : thread_budget_;
  if (opts_.max_sessions < 1) {
    return Status::Invalid("max_sessions must be >= 1");
  }
  RMA_ASSIGN_OR_RETURN(
      listener_,
      ListenSocket::Listen(opts_.host, opts_.port, opts_.listen_backlog));
  started_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void Server::AcceptLoop() {
  while (true) {
    Result<Socket> accepted = listener_.Accept();
    // Each accept also sweeps up threads of sessions that have since ended,
    // so a long-running server under connection churn holds O(live
    // connections) thread handles, not one per connection ever accepted.
    ReapFinishedThreads();
    if (!accepted.ok()) return;  // listener closed by Stop(), or fatal
    uint64_t id = 0;
    uint64_t token = 0;
    bool refuse_stopping = false;
    bool refuse_capacity = false;
    {
      MutexLock lock(mu_);
      token = ++next_token_;
      if (stopping_) {
        refuse_stopping = true;
      } else if (stats_.active_sessions >= opts_.max_sessions) {
        refuse_capacity = true;
        ++stats_.sessions_refused;
      } else {
        id = ++next_session_id_;
        ++stats_.sessions_accepted;
        ++stats_.active_sessions;
      }
    }
    if (refuse_stopping) continue;  // socket closes; client sees EOF
    if (refuse_capacity) {
      // Answer with a reason instead of a bare EOF — but only after the
      // client's HELLO arrives, otherwise closing right after the send
      // races the client's own write and it sees EPIPE, not the error.
      // (No WELCOME is sent; the client's handshake surfaces this error.)
      std::thread refuser([this, token, max_sessions = opts_.max_sessions,
                           sock = std::move(*accepted)]() mutable {
        const uint64_t sock_token = RegisterSocket(&sock);
        // Poll for the HELLO so neither a drain nor Stop() is held up by a
        // client that connected and went silent; a half-sent frame that
        // wedges RecvFrame is broken by Stop()'s socket Shutdown().
        const auto deadline =
            std::chrono::steady_clock::now() +
            std::chrono::milliseconds(kRefusalHelloTimeoutMs);
        while (!draining() && std::chrono::steady_clock::now() < deadline) {
          Result<bool> readable = sock.WaitReadable(kRefuserPollMs);
          if (!readable.ok()) break;
          if (!*readable) continue;
          (void)RecvFrame(sock);
          break;
        }
        SendFrame(sock, MessageType::kError,
                  EncodeError(Status::ResourceExhausted(
                      "server at session capacity (" +
                      std::to_string(max_sessions) + ")")))
            .IgnoreError();
        UnregisterSocket(sock_token);
        NoteThreadFinished(token);
      });
      MutexLock lock(mu_);
      session_threads_.emplace(token, std::move(refuser));
      continue;
    }
    std::thread worker([this, id, token,
                        sock = std::move(*accepted)]() mutable {
      Session session(id, std::move(sock), this);
      session.Serve();
      {
        MutexLock lock(mu_);
        --stats_.active_sessions;
        cv_.NotifyAll();
      }
      NoteThreadFinished(token);
    });
    MutexLock lock(mu_);
    session_threads_.emplace(token, std::move(worker));
  }
}

void Server::ReapFinishedThreads() {
  std::vector<std::thread> done;
  {
    MutexLock lock(mu_);
    std::vector<uint64_t> unmatched;
    for (const uint64_t token : finished_tokens_) {
      auto it = session_threads_.find(token);
      if (it == session_threads_.end()) {
        // The worker announced itself before its spawner inserted the
        // handle; keep the token for the next sweep (Stop() joins the
        // handle regardless).
        unmatched.push_back(token);
        continue;
      }
      done.push_back(std::move(it->second));
      session_threads_.erase(it);
    }
    finished_tokens_.swap(unmatched);
  }
  // Join outside the lock: the thread's last act was NoteThreadFinished,
  // so these joins are near-instant — but never block others on mu_.
  for (std::thread& t : done) {
    if (t.joinable()) t.join();
  }
}

uint64_t Server::RegisterSocket(Socket* sock) {
  MutexLock lock(mu_);
  const uint64_t token = ++next_token_;
  live_sockets_.emplace(token, sock);
  if (stopping_) sock->Shutdown();  // too late: fail its I/O immediately
  return token;
}

void Server::UnregisterSocket(uint64_t token) {
  MutexLock lock(mu_);
  live_sockets_.erase(token);
  cv_.NotifyAll();  // Stop()'s drain wait watches live_sockets_
}

void Server::NoteThreadFinished(uint64_t token) {
  MutexLock lock(mu_);
  finished_tokens_.push_back(token);
}

int Server::tracked_session_threads() const {
  MutexLock lock(mu_);
  return static_cast<int>(session_threads_.size());
}

void Server::Stop() {
  if (!started_) return;
  {
    MutexLock lock(mu_);
    stopping_ = true;
    cv_.NotifyAll();  // wake admission waiters so they refuse promptly
  }
  // Shut the listener down (unblocks AcceptLoop's accept(2) without
  // touching the descriptor under it), join the acceptor, then close —
  // closing first would race Accept's read of the fd and could recycle
  // the descriptor under a concurrent accept(2).
  listener_.Shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();
  // Drain phase: sessions notice the drain flag within their poll interval
  // (idle ones) or after finishing and streaming their in-flight statement
  // (busy ones). A stalled or hostile peer — half-sent frame, reader that
  // stopped consuming its stream — never notices, so the wait is bounded:
  // past the deadline every still-registered socket is Shutdown(), which
  // fails the blocked Recv/Send and lets its thread reach the join below.
  {
    MutexLock lock(mu_);
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(std::max(0, opts_.drain_timeout_ms));
    while (!live_sockets_.empty()) {
      if (cv_.WaitUntil(mu_, deadline) == std::cv_status::timeout) break;
    }
    for (auto& [token, sock] : live_sockets_) {
      sock->Shutdown();
    }
  }
  std::map<uint64_t, std::thread> workers;
  {
    MutexLock lock(mu_);
    workers.swap(session_threads_);
  }
  for (auto& [token, t] : workers) {
    if (t.joinable()) t.join();
  }
  {
    // All threads are joined; tokens they announced while we swapped the
    // map out have no handle left to reap.
    MutexLock lock(mu_);
    finished_tokens_.clear();
  }
  started_ = false;
}

ServerStats Server::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

int Server::AdmitStatement() {
  MutexLock lock(mu_);
  const uint64_t ticket = next_ticket_++;
  bool waited = false;
  // FIFO: a ticket is only considered once every earlier ticket has been
  // served (or the server started draining), so a burst from one session
  // cannot leapfrog older waiters from others.
  while (!stopping_ && (ticket != serving_ || in_flight_ >= capacity_)) {
    waited = true;
    cv_.Wait(mu_);
  }
  if (stopping_) {
    // Keep the serving counter moving so concurrently refused waiters
    // behind this ticket also get to observe the drain and return.
    if (ticket == serving_) {
      ++serving_;
      cv_.NotifyAll();
    }
    return 0;
  }
  ++serving_;
  ++in_flight_;
  if (waited) ++stats_.admission_waits;
  stats_.peak_in_flight = std::max(stats_.peak_in_flight, in_flight_);
  cv_.NotifyAll();
  // The same admission-time split ExecuteBatch applies: the budget divided
  // across everything in flight once this statement is admitted.
  return std::max(1, thread_budget_ / in_flight_);
}

void Server::FinishStatement() {
  MutexLock lock(mu_);
  --in_flight_;
  cv_.NotifyAll();
}

bool Server::draining() const {
  MutexLock lock(mu_);
  return stopping_;
}

void Server::CountStatementResult(bool ok) {
  MutexLock lock(mu_);
  ++stats_.statements_executed;
  if (!ok) ++stats_.statements_failed;
}

void Server::CountStreamed(int64_t rows, int64_t batches) {
  MutexLock lock(mu_);
  stats_.rows_streamed += rows;
  stats_.batches_streamed += batches;
}

void Server::CountRefusedStatement() {
  MutexLock lock(mu_);
  ++stats_.statements_refused;
}

}  // namespace rma::server
