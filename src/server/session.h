#ifndef RMA_SERVER_SESSION_H_
#define RMA_SERVER_SESSION_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "core/exec_context.h"
#include "server/wire.h"
#include "sql/database.h"
#include "util/socket.h"

namespace rma::server {

class Server;

/// One client connection's server-side state, serving its frame loop on a
/// dedicated thread.
///
/// A session owns:
///  - its RmaOptions, seeded from the database's options at accept time and
///    mutated by SET_OPTION frames (including a per-session calibration
///    profile via the `calibration_path` key) — one client forcing the
///    scalar BAT kernels never changes another's plans;
///  - a persistent ExecContext borrowing the database's QueryCache, so the
///    session's statements share plans and prepared arguments with every
///    other session while per-stage stats accumulate under this session's
///    attribution label ("session-<id>");
///  - prepared-statement handles: PREPARE parses and normalizes the text
///    and returns a handle; EXECUTE_PREPARED replays it through the shared
///    plan cache, so the second execution (from *any* session) skips
///    planning entirely.
///
/// Statements are serial within a session; concurrency comes from sessions.
/// Error isolation: a statement failure answers with an ERROR frame and the
/// session continues; only protocol violations and socket failures end it.
class Session {
 public:
  Session(uint64_t id, Socket sock, Server* server);

  /// Runs the session to completion: handshake, then the request loop until
  /// the client says goodbye, disconnects, violates the protocol, or the
  /// server drains. Never throws; always leaves the socket closed.
  void Serve();

  uint64_t id() const { return id_; }

 private:
  /// HELLO/WELCOME exchange; refuses protocol-version mismatches.
  Status Handshake();
  /// Dispatches one request frame; sets *done for GOODBYE and for refused
  /// statements during drain.
  Status HandleFrame(const Frame& frame, bool* done);
  Status HandleSetOption(const std::string& payload);
  Status HandlePrepare(const std::string& payload);
  /// Admission → execution → streaming for one statement text.
  Status ExecuteStatement(const std::string& sql, bool* done);
  /// RESULT_HEADER + ROW_BATCH* + COMPLETE for `rel`.
  Status StreamResult(const Relation& rel, double seconds);
  /// Best-effort ERROR frame (send failures end the session anyway).
  Status SendError(const Status& error);

  const uint64_t id_;
  Socket sock_;
  Server* const server_;
  sql::Database* const db_;
  RmaOptions options_;
  std::unique_ptr<ExecContext> ctx_;
  std::map<uint64_t, std::string> prepared_;
  uint64_t next_handle_ = 1;
};

}  // namespace rma::server

#endif  // RMA_SERVER_SESSION_H_
