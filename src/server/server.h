#ifndef RMA_SERVER_SERVER_H_
#define RMA_SERVER_SERVER_H_

#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "sql/database.h"
#include "util/mutex.h"
#include "util/result.h"
#include "util/socket.h"
#include "util/thread_annotations.h"

namespace rma::server {

/// Server configuration. Every limit is enforced, not advisory; see
/// docs/OPERATIONS.md for tuning guidance.
struct ServerOptions {
  /// Bind address. The server speaks an unauthenticated protocol, so the
  /// default stays on loopback; expose it deliberately.
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (tests, the smoke script) that
  /// Server::port() reports after Start().
  uint16_t port = 0;
  /// Concurrent sessions; connection attempts beyond this are refused with
  /// an ERROR frame before the handshake.
  int max_sessions = 64;
  /// Statements concurrently *executing* across all sessions (the admission
  /// budget). 0 derives the bound from the database's thread budget
  /// (rma_options.max_threads, else hardware concurrency): with every slot
  /// busy each statement still gets at least one worker thread.
  int max_inflight_statements = 0;
  /// Rows per ROW_BATCH frame when streaming a result set.
  int64_t row_batch_rows = 256;
  /// listen(2) backlog.
  int listen_backlog = 64;
  /// How long Stop() waits for live sessions to finish their in-flight
  /// statement and notice the drain flag before it forcibly shuts their
  /// sockets down. Bounds shutdown against a stalled or hostile client
  /// (half-sent frame, reader that stopped consuming its stream); a healthy
  /// drain finishes well inside it and never waits the full timeout.
  int drain_timeout_ms = 5000;
  /// Directory the `calibration_path` session option may name files in.
  /// Empty (the default) disables the option over the wire entirely: the
  /// protocol is unauthenticated, so a network-supplied path must never
  /// reach the filesystem outside an explicit operator-configured
  /// allowlist. Values are bare file names resolved against this directory
  /// and loaded read-only — the load-or-probe-and-save lifecycle of
  /// in-process RmaOptions does not apply to sessions.
  std::string calibration_dir;
};

/// Monitoring counters (Server::stats(); a consistent snapshot).
struct ServerStats {
  int64_t sessions_accepted = 0;
  int64_t sessions_refused = 0;   ///< over max_sessions
  int64_t statements_executed = 0;
  int64_t statements_failed = 0;  ///< executed but returned an error
  int64_t statements_refused = 0; ///< admission refused (server draining)
  int64_t rows_streamed = 0;
  int64_t batches_streamed = 0;
  /// Admissions that had to wait for a slot (the backpressure signal: a
  /// rising rate means clients submit faster than the budget drains).
  int64_t admission_waits = 0;
  /// High-water mark of concurrently executing statements; never exceeds
  /// the configured admission budget.
  int peak_in_flight = 0;
  int active_sessions = 0;
};

/// Multi-client SQL server over a shared sql::Database.
///
/// One thread per session (thread-per-connection; the admission gate — not
/// the connection count — bounds compute). Each session holds its own
/// RmaOptions and a persistent ExecContext borrowing the database's
/// QueryCache, so plans and prepared arguments warm up across *all*
/// sessions while stats accumulate per session. Statements pass the
/// admission gate before executing: at most `max_inflight_statements` run
/// at once, FIFO across sessions (per-session fairness — a session issues
/// one statement at a time, so slots round-robin through waiting sessions),
/// and each admitted statement installs an admission-time split of the
/// thread budget via ScopedThreadBudget — the same discipline
/// Database::ExecuteBatch applies in-process. Result sets stream back in
/// row-batch frames; a slow reader blocks only its own socket (the slot is
/// released when execution finishes, before streaming), so backpressure
/// lands on the connection, never on the worker pool.
///
/// Shutdown is a drain with a deadline: Stop() refuses new connections and
/// new statements, gives live sessions `drain_timeout_ms` to finish their
/// in-flight statement and stream its result, then calls Socket::Shutdown()
/// on every session socket still open — unwedging threads blocked in a
/// half-sent frame or a send to a reader that stopped consuming — and joins
/// every session thread. One session's failure (parse error, unknown
/// table, protocol violation) is answered on that session alone; no other
/// session's stream is disturbed.
class Server {
 public:
  /// `db` is borrowed and must outlive the server. Its rma_options at
  /// session-accept time seed each session's options.
  Server(sql::Database* db, ServerOptions opts);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the accept loop. Fails if the port is taken.
  Status Start();

  /// Graceful shutdown: refuse new work, drain in-flight statements, join
  /// all session threads. Idempotent; also run by the destructor.
  void Stop();

  /// The bound port (after Start(); resolves port 0 to the actual one).
  uint16_t port() const { return listener_.port(); }

  ServerStats stats() const;

  // --- session-facing internals (used by server::Session) -------------------

  /// Blocks until an execution slot frees (FIFO), then returns the
  /// statement's thread share (>= 1). Returns 0 when the server is
  /// draining: the statement must be refused.
  int AdmitStatement();
  /// Releases the slot taken by AdmitStatement.
  void FinishStatement();
  /// True once Stop() began; sessions finish their current statement and
  /// close.
  bool draining() const;
  void CountStatementResult(bool ok);
  void CountStreamed(int64_t rows, int64_t batches);
  void CountRefusedStatement();

  /// Registers a live session socket so Stop() can Shutdown() it if the
  /// drain deadline passes. Returns a token for UnregisterSocket; the
  /// caller must keep `sock` alive until it unregisters. A socket
  /// registered after Stop() began is shut down immediately.
  uint64_t RegisterSocket(Socket* sock);
  void UnregisterSocket(uint64_t token);

  /// Session/refuser threads call this (with the token their spawner gave
  /// them) as their last act, making the thread reapable by the accept
  /// loop's next sweep instead of accumulating until Stop().
  void NoteThreadFinished(uint64_t token);

  sql::Database* database() const { return db_; }
  const ServerOptions& options() const { return opts_; }

  /// Session threads still tracked (live plus finished-but-unreaped);
  /// monitoring/tests observe reaping through this staying bounded under
  /// connection churn.
  int tracked_session_threads() const;

 private:
  void AcceptLoop();
  /// Joins threads that announced NoteThreadFinished (near-instant: they
  /// are past their last statement). Must be called without mu_ held.
  void ReapFinishedThreads();

  sql::Database* db_;
  ServerOptions opts_;
  ListenSocket listener_;
  std::thread accept_thread_;
  bool started_ = false;

  /// The admission budget (resolved from max_inflight_statements) and the
  /// thread budget it splits; fixed at Start().
  int capacity_ = 1;
  int thread_budget_ = 1;

  mutable Mutex mu_;
  CondVar cv_;
  bool stopping_ RMA_GUARDED_BY(mu_) = false;
  /// FIFO admission: tickets are taken in arrival order and served in
  /// ticket order, so no session can starve another even under a saturated
  /// budget.
  uint64_t next_ticket_ RMA_GUARDED_BY(mu_) = 0;
  uint64_t serving_ RMA_GUARDED_BY(mu_) = 0;
  int in_flight_ RMA_GUARDED_BY(mu_) = 0;
  uint64_t next_session_id_ RMA_GUARDED_BY(mu_) = 0;
  /// Session and refuser threads keyed by token. Workers announce
  /// themselves in finished_tokens_ when done; the accept loop reaps those
  /// entries so the map tracks roughly the live connection count, not every
  /// connection ever accepted.
  uint64_t next_token_ RMA_GUARDED_BY(mu_) = 0;
  std::map<uint64_t, std::thread> session_threads_ RMA_GUARDED_BY(mu_);
  std::vector<uint64_t> finished_tokens_ RMA_GUARDED_BY(mu_);
  /// Sockets of live sessions (and refusers), for Stop()'s post-deadline
  /// Shutdown(). Entries stay valid because owners unregister before
  /// destroying the socket.
  std::map<uint64_t, Socket*> live_sockets_ RMA_GUARDED_BY(mu_);
  ServerStats stats_ RMA_GUARDED_BY(mu_);
};

}  // namespace rma::server

#endif  // RMA_SERVER_SERVER_H_
