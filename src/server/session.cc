#include "server/session.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <utility>

#include "core/calibration.h"
#include "matrix/parallel.h"
#include "server/server.h"
#include "sql/parser.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace rma::server {

namespace {

/// How often an idle session re-checks the server's drain flag. Bounds the
/// shutdown latency contributed by idle connections.
constexpr int kDrainPollMs = 100;

Result<bool> ParseBool(const std::string& v) {
  const std::string s = ToLower(v);
  if (s == "1" || s == "true" || s == "on") return true;
  if (s == "0" || s == "false" || s == "off") return false;
  return Status::Invalid("not a boolean: '" + v + "'");
}

Result<int64_t> ParseInt(const std::string& v) {
  char* end = nullptr;
  errno = 0;
  const long long parsed = std::strtoll(v.c_str(), &end, 10);
  if (errno != 0 || end == v.c_str() || *end != '\0') {
    return Status::Invalid("not an integer: '" + v + "'");
  }
  return static_cast<int64_t>(parsed);
}

/// Applies one session option. The key set mirrors docs/OPERATIONS.md;
/// unknown keys are errors (a typo silently ignored is a misconfigured
/// session that looks configured). `calibration_dir` is the server's
/// allowlist for the calibration_path key.
Status ApplyOption(RmaOptions* opts, const std::string& key,
                   const std::string& value,
                   const std::string& calibration_dir) {
  const std::string k = ToLower(key);
  if (k == "kernel") {
    const std::string v = ToLower(value);
    if (v == "auto") {
      opts->kernel = KernelPolicy::kAuto;
    } else if (v == "bat") {
      opts->kernel = KernelPolicy::kBat;
    } else if (v == "contiguous") {
      opts->kernel = KernelPolicy::kContiguous;
    } else {
      return Status::Invalid("kernel must be auto|bat|contiguous, got '" +
                             value + "'");
    }
    return Status::OK();
  }
  if (k == "sort") {
    const std::string v = ToLower(value);
    if (v == "always") {
      opts->sort = SortPolicy::kAlways;
    } else if (v == "optimized") {
      opts->sort = SortPolicy::kOptimized;
    } else {
      return Status::Invalid("sort must be always|optimized, got '" + value +
                             "'");
    }
    return Status::OK();
  }
  if (k == "batch_schedule") {
    const std::string v = ToLower(value);
    if (v == "readiness") {
      opts->batch_schedule = BatchSchedule::kReadiness;
    } else if (v == "waves") {
      opts->batch_schedule = BatchSchedule::kWaves;
    } else {
      return Status::Invalid("batch_schedule must be readiness|waves, got '" +
                             value + "'");
    }
    return Status::OK();
  }
  if (k == "validate_keys") {
    RMA_ASSIGN_OR_RETURN(opts->validate_keys, ParseBool(value));
    return Status::OK();
  }
  if (k == "concurrent_subtrees") {
    RMA_ASSIGN_OR_RETURN(opts->concurrent_subtrees, ParseBool(value));
    return Status::OK();
  }
  if (k == "enable_prepared_cache") {
    RMA_ASSIGN_OR_RETURN(opts->enable_prepared_cache, ParseBool(value));
    return Status::OK();
  }
  if (k == "refine_cost_profile") {
    RMA_ASSIGN_OR_RETURN(opts->refine_cost_profile, ParseBool(value));
    return Status::OK();
  }
  if (k == "max_threads") {
    RMA_ASSIGN_OR_RETURN(int64_t v, ParseInt(value));
    opts->max_threads = static_cast<int>(v);
    return Status::OK();
  }
  if (k == "max_shards") {
    RMA_ASSIGN_OR_RETURN(int64_t v, ParseInt(value));
    opts->max_shards = static_cast<int>(v);
    return Status::OK();
  }
  if (k == "shard_min_rows") {
    RMA_ASSIGN_OR_RETURN(opts->shard_min_rows, ParseInt(value));
    return Status::OK();
  }
  if (k == "parallel_min_elements") {
    RMA_ASSIGN_OR_RETURN(opts->parallel_min_elements, ParseInt(value));
    return Status::OK();
  }
  if (k == "contiguous_budget_bytes") {
    RMA_ASSIGN_OR_RETURN(opts->contiguous_budget_bytes, ParseInt(value));
    return Status::OK();
  }
  if (k == "calibration_path") {
    // The protocol is unauthenticated, so a network-supplied path must not
    // become a filesystem primitive: values are confined to the server's
    // configured calibration directory (empty = option disabled) and the
    // profile is loaded eagerly, read-only — never the in-process
    // load-or-probe-and-save lifecycle, which would let a client make the
    // server write to an arbitrary path.
    if (calibration_dir.empty()) {
      return Status::Invalid(
          "calibration_path is disabled on this server "
          "(no calibration directory configured)");
    }
    if (value.empty() || value.front() == '.' ||
        value.find('/') != std::string::npos ||
        value.find('\\') != std::string::npos) {
      return Status::Invalid(
          "calibration_path must be a plain file name inside the server's "
          "calibration directory, got '" + value + "'");
    }
    RMA_ASSIGN_OR_RETURN(
        CostProfile profile,
        CostProfile::LoadFile(calibration_dir + "/" + value));
    opts->cost_profile = std::make_shared<CostProfile>(std::move(profile));
    opts->calibration_path.clear();
    return Status::OK();
  }
  return Status::Invalid("unknown session option: '" + key + "'");
}

uint8_t EncodeOutcome(ExecContext::PlanCacheOutcome outcome) {
  switch (outcome) {
    case ExecContext::PlanCacheOutcome::kNotConsulted:
      return 0;
    case ExecContext::PlanCacheOutcome::kHit:
      return 1;
    case ExecContext::PlanCacheOutcome::kMiss:
      return 2;
  }
  return 0;
}

}  // namespace

Session::Session(uint64_t id, Socket sock, Server* server)
    : id_(id),
      sock_(std::move(sock)),
      server_(server),
      db_(server->database()),
      options_(db_->rma_options) {
  // The database's stats sink (if any) is per-context state; sharing one
  // sink across concurrently executing sessions would race on it.
  options_.stats = nullptr;
  ctx_ = std::make_unique<ExecContext>(options_, db_->query_cache());
  ctx_->set_attribution("session-" + std::to_string(id_));
}

Status Session::Handshake() {
  // Pre-HELLO wait uses the same drain poll as the request loop: a client
  // that connects and never speaks must not pin this thread past a drain.
  // (A half-sent HELLO can still wedge RecvFrame below; Server::Stop
  // breaks that by shutting the registered socket down after its drain
  // deadline.)
  while (true) {
    if (server_->draining()) {
      return Status::ResourceExhausted("server draining: handshake refused");
    }
    RMA_ASSIGN_OR_RETURN(bool readable, sock_.WaitReadable(kDrainPollMs));
    if (readable) break;
  }
  RMA_ASSIGN_OR_RETURN(Frame frame, RecvFrame(sock_));
  if (frame.type != MessageType::kHello) {
    const Status err = Status::Invalid("expected HELLO as the first frame");
    SendError(err).IgnoreError();
    return err;
  }
  WireReader reader(frame.payload);
  RMA_ASSIGN_OR_RETURN(uint32_t version, reader.GetU32());
  if (version != kProtocolVersion) {
    const Status err = Status::Invalid(
        "protocol version mismatch: client speaks v" +
        std::to_string(version) + ", server speaks v" +
        std::to_string(kProtocolVersion));
    SendError(err).IgnoreError();
    return err;
  }
  WireWriter w;
  w.PutU32(kProtocolVersion);
  w.PutU64(id_);
  return SendFrame(sock_, MessageType::kWelcome, w.str());
}

void Session::Serve() {
  // Registered for the lifetime of the frame loop: Server::Stop shuts the
  // socket down past its drain deadline, failing any blocked Recv/Send
  // here. Unregister strictly before Close() so Stop never touches a
  // dying descriptor.
  const uint64_t sock_token = server_->RegisterSocket(&sock_);
  if (Handshake().ok()) {
    bool done = false;
    while (!done) {
      if (server_->draining()) break;
      Result<bool> readable = sock_.WaitReadable(kDrainPollMs);
      if (!readable.ok()) break;
      if (!*readable) continue;  // idle; re-check the drain flag
      Result<Frame> frame = RecvFrame(sock_);
      if (!frame.ok()) break;  // disconnect (clean or mid-frame)
      if (!HandleFrame(*frame, &done).ok()) break;
    }
  }
  server_->UnregisterSocket(sock_token);
  sock_.Close();
}

Status Session::HandleFrame(const Frame& frame, bool* done) {
  switch (frame.type) {
    case MessageType::kGoodbye:
      *done = true;
      return Status::OK();
    case MessageType::kSetOption:
      return HandleSetOption(frame.payload);
    case MessageType::kPrepare:
      return HandlePrepare(frame.payload);
    case MessageType::kExecute: {
      WireReader reader(frame.payload);
      Result<std::string> sql = reader.GetString();
      if (!sql.ok()) return sql.status();  // torn frame: close the session
      return ExecuteStatement(*sql, done);
    }
    case MessageType::kExecutePrepared: {
      WireReader reader(frame.payload);
      Result<uint64_t> handle = reader.GetU64();
      if (!handle.ok()) return handle.status();
      auto it = prepared_.find(*handle);
      if (it == prepared_.end()) {
        // Application-level error: answer and keep the session alive.
        return SendError(Status::KeyError("unknown prepared statement handle " +
                                          std::to_string(*handle)));
      }
      return ExecuteStatement(it->second, done);
    }
    default:
      // A request type this server does not understand is a protocol
      // violation; answer once, then HandleFrame's caller closes.
      SendError(Status::Invalid(
                    "unexpected frame type " +
                    std::to_string(static_cast<int>(frame.type))))
          .IgnoreError();
      return Status::Invalid("protocol violation");
  }
}

Status Session::HandleSetOption(const std::string& payload) {
  WireReader reader(payload);
  Result<std::string> key = reader.GetString();
  if (!key.ok()) return key.status();
  Result<std::string> value = reader.GetString();
  if (!value.ok()) return value.status();

  RmaOptions updated = options_;
  Status st = ApplyOption(&updated, *key, *value,
                          server_->options().calibration_dir);
  if (st.ok()) st = ValidateRmaOptions(updated);
  if (!st.ok()) return SendError(st);  // options unchanged
  options_ = std::move(updated);
  // Serial within the session, so mutating the persistent context between
  // statements is within mutable_options()'s contract.
  ctx_->mutable_options() = options_;
  return SendFrame(sock_, MessageType::kOptionAck, "");
}

Status Session::HandlePrepare(const std::string& payload) {
  WireReader reader(payload);
  Result<std::string> sql = reader.GetString();
  if (!sql.ok()) return sql.status();
  // Parse now so a malformed statement fails at PREPARE, not first EXECUTE.
  Result<sql::Statement> parsed = sql::Parse(*sql);
  if (!parsed.ok()) return SendError(parsed.status());
  const uint64_t handle = next_handle_++;
  prepared_[handle] = *sql;
  WireWriter w;
  w.PutU64(handle);
  return SendFrame(sock_, MessageType::kPrepareAck, w.str());
}

Status Session::ExecuteStatement(const std::string& sql, bool* done) {
  const int share = server_->AdmitStatement();
  if (share == 0) {
    // Draining: refuse the statement and end the session after answering.
    server_->CountRefusedStatement();
    *done = true;
    return SendError(Status::ResourceExhausted(
        "server draining: statement refused"));
  }
  Timer timer;
  Result<Relation> result{Status::Invalid("statement not executed")};
  {
    // The statement's kernels and subtree forks inherit the admission-time
    // share of the server's thread budget (further capped by the session's
    // own max_threads via ExecContext::effective_thread_budget).
    ScopedThreadBudget budget_share(share);
    result = db_->ExecuteOn(sql, ctx_.get());
  }
  // Release the execution slot before streaming: a slow reader exerts
  // backpressure on its own socket, not on the admission budget.
  server_->FinishStatement();
  const double seconds = timer.Seconds();
  server_->CountStatementResult(result.ok());
  if (!result.ok()) return SendError(result.status());
  return StreamResult(*result, seconds);
}

Status Session::StreamResult(const Relation& rel, double seconds) {
  RMA_RETURN_NOT_OK(SendFrame(sock_, MessageType::kResultHeader,
                              EncodeResultHeader(rel.schema())));
  const int64_t rows = rel.num_rows();
  const int64_t batch_rows = std::max<int64_t>(1, server_->options().row_batch_rows);
  int64_t batches = 0;
  for (int64_t begin = 0; begin < rows; begin += batch_rows) {
    const int64_t count = std::min(batch_rows, rows - begin);
    RMA_RETURN_NOT_OK(SendFrame(sock_, MessageType::kRowBatch,
                                EncodeRowBatch(rel, begin, count)));
    ++batches;
  }
  WireWriter w;
  w.PutU64(static_cast<uint64_t>(rows));
  w.PutF64(seconds);
  w.PutU8(EncodeOutcome(ctx_->plan_cache_outcome()));
  RMA_RETURN_NOT_OK(SendFrame(sock_, MessageType::kComplete, w.str()));
  server_->CountStreamed(rows, batches);
  return Status::OK();
}

Status Session::SendError(const Status& error) {
  return SendFrame(sock_, MessageType::kError, EncodeError(error));
}

}  // namespace rma::server
