#ifndef RMA_SERVER_WIRE_H_
#define RMA_SERVER_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/relation.h"
#include "storage/schema.h"
#include "util/result.h"
#include "util/socket.h"

namespace rma::server {

/// Protocol version spoken by this build. The client sends its version in
/// HELLO; the server refuses a different *major* (the whole u32 today —
/// split into major/minor when a compatible extension first ships) with an
/// ERROR frame before any other traffic. See docs/PROTOCOL.md for the
/// normative spec; this header is its implementation.
inline constexpr uint32_t kProtocolVersion = 1;

/// Frames larger than this are refused on receive — a corrupt or hostile
/// length prefix must not become a 4 GiB allocation. Row batches are sized
/// by the server well below this.
inline constexpr uint32_t kMaxFrameBytes = 64u * 1024 * 1024;

/// Message types. The type byte leads every frame body. Requests flow
/// client → server, responses server → client; see docs/PROTOCOL.md for the
/// per-type payload layouts and the worked byte-level example.
enum class MessageType : uint8_t {
  kHello = 1,         ///< c→s: u32 protocol version
  kWelcome = 2,       ///< s→c: u32 protocol version, u64 session id
  kSetOption = 3,     ///< c→s: str key, str value (session-scoped RmaOptions)
  kOptionAck = 4,     ///< s→c: empty
  kPrepare = 5,       ///< c→s: str sql
  kPrepareAck = 6,    ///< s→c: u64 statement handle
  kExecute = 7,       ///< c→s: str sql
  kExecutePrepared = 8,  ///< c→s: u64 statement handle
  kResultHeader = 9,  ///< s→c: u32 ncols, then per column: str name, u8 type
  kRowBatch = 10,     ///< s→c: u32 nrows, then columns in header order
  kComplete = 11,     ///< s→c: u64 rows, f64 seconds, u8 plan-cache outcome
  kError = 12,        ///< s→c: u32 status code, str message
  kGoodbye = 13,      ///< c→s: empty; server closes after in-flight work
};

/// One decoded frame: the type byte plus the raw payload after it.
struct Frame {
  MessageType type;
  std::string payload;
};

/// Sends one frame: u32 little-endian length (type byte + payload), the
/// type byte, the payload. Blocking; partial writes are looped internally.
Status SendFrame(Socket& sock, MessageType type, const std::string& payload);

/// Receives one frame. IoError whose message starts with "connection
/// closed" means the peer hung up cleanly between frames.
Result<Frame> RecvFrame(Socket& sock);

/// Append-only little-endian payload builder. All multi-byte integers on
/// the wire are little-endian; doubles travel as their IEEE-754 bit
/// patterns in a u64.
class WireWriter {
 public:
  void PutU8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutF64(double v);
  /// u32 byte length + raw bytes (no terminator).
  void PutString(const std::string& s);
  /// Raw bytes, appended verbatim (caller guarantees wire byte order).
  void PutRaw(const void* p, size_t n);

  void Reserve(size_t n) { out_.reserve(out_.size() + n); }

  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Bounds-checked reader over a received payload. Every getter fails with
/// IoError("truncated frame ...") instead of reading past the end, so a
/// torn or malicious payload cannot walk off the buffer.
class WireReader {
 public:
  explicit WireReader(const std::string& data) : data_(data) {}

  Result<uint8_t> GetU8();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<int64_t> GetI64();
  Result<double> GetF64();
  Result<std::string> GetString();
  /// Copies `n` raw bytes into `out` (caller interprets wire byte order).
  Status GetRaw(void* out, size_t n);

  bool AtEnd() const { return pos_ == data_.size(); }
  /// Bytes not yet consumed. Decoders check claimed element counts against
  /// this before sizing allocations, so a hostile count in a small frame
  /// fails with IoError instead of attempting a multi-gigabyte allocation.
  size_t Remaining() const { return data_.size() - pos_; }

 private:
  Status Need(size_t n) const;
  const std::string& data_;
  size_t pos_ = 0;
};

// --- result-set encoding (server side) / decoding (client side) -------------

/// RESULT_HEADER payload for `schema`.
std::string EncodeResultHeader(const Schema& schema);

/// ROW_BATCH payload for rows [begin, begin+count) of `rel`: u32 row count,
/// then one column at a time in schema order — i64/f64 columns as `count`
/// 8-byte little-endian values back to back, string columns as `count`
/// (u32 length + bytes) entries. Column-major within the batch keeps the
/// column store's contiguous tails intact: fixed-width columns encode and
/// decode as single memcpys instead of per-cell boxed values.
std::string EncodeRowBatch(const Relation& rel, int64_t begin, int64_t count);

/// Decodes a RESULT_HEADER payload back into a schema.
Result<Schema> DecodeResultHeader(const std::string& payload);

/// Decodes a ROW_BATCH payload against `schema` into a standalone relation
/// (the streaming unit handed to client callbacks).
Result<Relation> DecodeRowBatch(const Schema& schema,
                                const std::string& payload);

/// ERROR payload round-trip: the status code travels as its numeric value
/// so a client-side Status carries the same code the server-side one did.
std::string EncodeError(const Status& status);
Status DecodeError(const std::string& payload);

}  // namespace rma::server

#endif  // RMA_SERVER_WIRE_H_
