#include "matrix/qr.h"

#include <cmath>
#include <vector>

#include "matrix/parallel.h"
#include "matrix/simd.h"

namespace rma {

namespace {

/// Work threshold below which reflector applications stay sequential
/// (thread-spawn latency would dominate).
constexpr int64_t kParallelWork = int64_t{1} << 18;

/// Column-major workspace: the factorization walks down columns, so keeping
/// each column contiguous is what makes the dense path beat the BAT
/// Gram-Schmidt algorithm on tall inputs (DenseMatrix itself is row-major).
using ColumnStore = std::vector<std::vector<double>>;

ColumnStore ToColumns(const DenseMatrix& a) {
  const int64_t m = a.rows();
  const int64_t k = a.cols();
  ColumnStore cols(static_cast<size_t>(k),
                   std::vector<double>(static_cast<size_t>(m)));
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < k; ++j) {
      cols[static_cast<size_t>(j)][static_cast<size_t>(i)] = a(i, j);
    }
  }
  return cols;
}

// Applies the reflector in `v` (scaled so v[j] = 1, entries below j) to
// columns [c_begin, c_end) of `cols`. With SIMD enabled each column is one
// vector dot plus one vector axpy over the sub-diagonal range; the scalar
// fallback processes columns four at a time so each pass over `v` feeds four
// accumulators — the register blocking that lets the dense path outrun the
// column-at-a-time BAT algorithm.
void ApplyReflector(const std::vector<double>& v, int64_t j, double beta,
                    ColumnStore* cols, int64_t c_begin, int64_t c_end) {
  const int64_t m = static_cast<int64_t>(v.size());
  const double* vd = v.data();
  if (simd::Enabled()) {
    const int64_t len = m - j - 1;
    int64_t c4 = c_begin;
    // Four columns per pass so `v` is streamed once per group, matching the
    // memory traffic of the scalar register-blocked path below.
    for (; c4 + 3 < c_end; c4 += 4) {
      double* c0 = (*cols)[static_cast<size_t>(c4)].data();
      double* c1 = (*cols)[static_cast<size_t>(c4 + 1)].data();
      double* c2 = (*cols)[static_cast<size_t>(c4 + 2)].data();
      double* c3 = (*cols)[static_cast<size_t>(c4 + 3)].data();
      double s[4];
      simd::Dot4(vd + j + 1, c0 + j + 1, c1 + j + 1, c2 + j + 1, c3 + j + 1,
                 len, s);
      s[0] = (c0[j] + s[0]) * beta;
      s[1] = (c1[j] + s[1]) * beta;
      s[2] = (c2[j] + s[2]) * beta;
      s[3] = (c3[j] + s[3]) * beta;
      c0[j] -= s[0];
      c1[j] -= s[1];
      c2[j] -= s[2];
      c3[j] -= s[3];
      const double neg[4] = {-s[0], -s[1], -s[2], -s[3]};
      simd::AxpyTo4(neg, vd + j + 1, c0 + j + 1, c1 + j + 1, c2 + j + 1,
                    c3 + j + 1, len);
    }
    for (int64_t c = c4; c < c_end; ++c) {
      double* cc = (*cols)[static_cast<size_t>(c)].data();
      double s = cc[j] + simd::Dot(vd + j + 1, cc + j + 1, len);
      s *= beta;
      cc[j] -= s;
      simd::Axpy(-s, vd + j + 1, cc + j + 1, len);
    }
    return;
  }
  int64_t c = c_begin;
  for (; c + 3 < c_end; c += 4) {
    double* c0 = (*cols)[static_cast<size_t>(c)].data();
    double* c1 = (*cols)[static_cast<size_t>(c + 1)].data();
    double* c2 = (*cols)[static_cast<size_t>(c + 2)].data();
    double* c3 = (*cols)[static_cast<size_t>(c + 3)].data();
    double s0 = c0[j];
    double s1 = c1[j];
    double s2 = c2[j];
    double s3 = c3[j];
    for (int64_t i = j + 1; i < m; ++i) {
      const double vi = vd[i];
      s0 += vi * c0[i];
      s1 += vi * c1[i];
      s2 += vi * c2[i];
      s3 += vi * c3[i];
    }
    s0 *= beta;
    s1 *= beta;
    s2 *= beta;
    s3 *= beta;
    c0[j] -= s0;
    c1[j] -= s1;
    c2[j] -= s2;
    c3[j] -= s3;
    for (int64_t i = j + 1; i < m; ++i) {
      const double vi = vd[i];
      c0[i] -= s0 * vi;
      c1[i] -= s1 * vi;
      c2[i] -= s2 * vi;
      c3[i] -= s3 * vi;
    }
  }
  for (; c < c_end; ++c) {
    double* cc = (*cols)[static_cast<size_t>(c)].data();
    double s = cc[j];
    for (int64_t i = j + 1; i < m; ++i) s += vd[i] * cc[i];
    s *= beta;
    cc[j] -= s;
    for (int64_t i = j + 1; i < m; ++i) cc[i] -= s * vd[i];
  }
}

// Householder factorization in-place over the column store: reflectors below
// the diagonal (scaled so v[j] = 1) + `betas`, R in the upper triangle. The
// trailing-matrix update distributes columns across `threads` workers
// (columns are independent given the reflector) — the "MKL leverages the
// hardware" behaviour of Sec. 8.3.
void HouseholderInPlace(ColumnStore* cols, std::vector<double>* betas,
                        int threads) {
  const int64_t k = static_cast<int64_t>(cols->size());
  const int64_t m =
      k == 0 ? 0 : static_cast<int64_t>((*cols)[0].size());
  betas->assign(static_cast<size_t>(k), 0.0);
  for (int64_t j = 0; j < k; ++j) {
    auto& cj = (*cols)[static_cast<size_t>(j)];
    // Build the reflector for column j below the diagonal.
    const double norm2 = simd::SumSquares(cj.data() + j, m - j);
    const double norm = std::sqrt(norm2);
    if (norm == 0.0) continue;  // zero column: nothing to eliminate
    const double x0 = cj[static_cast<size_t>(j)];
    const double alpha = x0 >= 0 ? -norm : norm;
    // v = x - alpha*e1, normalized so v[j] = 1.
    const double v0 = x0 - alpha;
    if (v0 == 0.0) {  // already in e1 direction
      cj[static_cast<size_t>(j)] = alpha;
      continue;
    }
    for (int64_t i = j + 1; i < m; ++i) cj[static_cast<size_t>(i)] /= v0;
    const double beta = -v0 / alpha;  // 2/(vᵀv) with v[j]=1 scaling
    (*betas)[static_cast<size_t>(j)] = beta;
    cj[static_cast<size_t>(j)] = alpha;
    // Apply the reflector to the remaining columns.
    const int64_t cols_left = k - j - 1;
    if (threads != 1 && cols_left > 1 && (m - j) * cols_left > kParallelWork) {
      ParallelFor(
          j + 1, k,
          [&](int64_t lo, int64_t hi) {
            ApplyReflector(cj, j, beta, cols, lo, hi);
          },
          /*min_chunk=*/1, threads);
    } else {
      ApplyReflector(cj, j, beta, cols, j + 1, k);
    }
  }
}

// Accumulates Q (m×qcols, qcols <= m) from the in-place reflectors by
// applying them in reverse to the first qcols columns of the identity.
ColumnStore AccumulateQ(const ColumnStore& h, const std::vector<double>& betas,
                        int64_t m, int64_t qcols, int threads) {
  const int64_t k = static_cast<int64_t>(h.size());
  ColumnStore q(static_cast<size_t>(qcols),
                std::vector<double>(static_cast<size_t>(m), 0.0));
  for (int64_t i = 0; i < std::min(m, qcols); ++i) {
    q[static_cast<size_t>(i)][static_cast<size_t>(i)] = 1.0;
  }
  for (int64_t j = k - 1; j >= 0; --j) {
    const double beta = betas[static_cast<size_t>(j)];
    if (beta == 0.0) continue;
    const auto& hj = h[static_cast<size_t>(j)];
    if (threads != 1 && qcols > 1 && (m - j) * qcols > kParallelWork) {
      ParallelFor(
          0, qcols,
          [&](int64_t lo, int64_t hi) {
            ApplyReflector(hj, j, beta, &q, lo, hi);
          },
          /*min_chunk=*/1, threads);
    } else {
      ApplyReflector(hj, j, beta, &q, 0, qcols);
    }
  }
  return q;
}

DenseMatrix ColumnsToMatrix(const ColumnStore& cols, int64_t m) {
  const int64_t k = static_cast<int64_t>(cols.size());
  DenseMatrix out(m, k);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < k; ++j) {
      out(i, j) = cols[static_cast<size_t>(j)][static_cast<size_t>(i)];
    }
  }
  return out;
}

// Flips signs so diag(R) >= 0 (columns of Q flip accordingly).
void NormalizeSigns(DenseMatrix* q, DenseMatrix* r) {
  const int64_t k = r->rows();
  for (int64_t j = 0; j < k; ++j) {
    if ((*r)(j, j) < 0.0) {
      for (int64_t c = j; c < r->cols(); ++c) (*r)(j, c) = -(*r)(j, c);
      for (int64_t i = 0; i < q->rows(); ++i) (*q)(i, j) = -(*q)(i, j);
    }
  }
}

}  // namespace

Status HouseholderQr(const DenseMatrix& a, DenseMatrix* q, DenseMatrix* r,
                     int threads) {
  const int64_t m = a.rows();
  const int64_t k = a.cols();
  if (m < k) return Status::Invalid("qr: requires rows >= cols");
  ColumnStore h = ToColumns(a);
  std::vector<double> betas;
  HouseholderInPlace(&h, &betas, threads);
  *r = DenseMatrix(k, k, 0.0);
  for (int64_t i = 0; i < k; ++i) {
    for (int64_t j = i; j < k; ++j) {
      (*r)(i, j) = h[static_cast<size_t>(j)][static_cast<size_t>(i)];
    }
  }
  *q = ColumnsToMatrix(AccumulateQ(h, betas, m, k, threads), m);
  NormalizeSigns(q, r);
  return Status::OK();
}

Status GramSchmidtQr(const DenseMatrix& a, DenseMatrix* q, DenseMatrix* r) {
  const int64_t m = a.rows();
  const int64_t k = a.cols();
  if (m < k) return Status::Invalid("qr: requires rows >= cols");
  *q = a;
  *r = DenseMatrix(k, k, 0.0);
  for (int64_t j = 0; j < k; ++j) {
    // Modified Gram-Schmidt: orthogonalize column j against q_0..q_{j-1}.
    for (int64_t i = 0; i < j; ++i) {
      double s = 0.0;
      for (int64_t p = 0; p < m; ++p) s += (*q)(p, i) * (*q)(p, j);
      (*r)(i, j) = s;
      for (int64_t p = 0; p < m; ++p) (*q)(p, j) -= s * (*q)(p, i);
    }
    double norm2 = 0.0;
    for (int64_t p = 0; p < m; ++p) norm2 += (*q)(p, j) * (*q)(p, j);
    const double norm = std::sqrt(norm2);
    (*r)(j, j) = norm;
    if (norm > 0.0) {
      for (int64_t p = 0; p < m; ++p) (*q)(p, j) /= norm;
    }
  }
  NormalizeSigns(q, r);
  return Status::OK();
}

Status FullQ(const DenseMatrix& a, DenseMatrix* q_full, int threads) {
  const int64_t m = a.rows();
  if (m < a.cols()) return Status::Invalid("qr: requires rows >= cols");
  ColumnStore h = ToColumns(a);
  std::vector<double> betas;
  HouseholderInPlace(&h, &betas, threads);
  *q_full = ColumnsToMatrix(AccumulateQ(h, betas, m, m, threads), m);
  // Match the sign convention of HouseholderQr on the first k columns.
  for (int64_t j = 0; j < a.cols(); ++j) {
    if (h[static_cast<size_t>(j)][static_cast<size_t>(j)] < 0.0) {
      for (int64_t i = 0; i < m; ++i) (*q_full)(i, j) = -(*q_full)(i, j);
    }
  }
  return Status::OK();
}

}  // namespace rma
