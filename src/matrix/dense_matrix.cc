#include "matrix/dense_matrix.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace rma {

std::vector<double> DenseMatrix::Col(int64_t j) const {
  std::vector<double> out(static_cast<size_t>(rows_));
  for (int64_t i = 0; i < rows_; ++i) out[static_cast<size_t>(i)] = (*this)(i, j);
  return out;
}

std::vector<double> DenseMatrix::Row(int64_t i) const {
  const double* p = row_ptr(i);
  return std::vector<double>(p, p + cols_);
}

void DenseMatrix::SetCol(int64_t j, const std::vector<double>& v) {
  RMA_DCHECK(static_cast<int64_t>(v.size()) == rows_);
  for (int64_t i = 0; i < rows_; ++i) (*this)(i, j) = v[static_cast<size_t>(i)];
}

DenseMatrix DenseMatrix::Transposed() const {
  DenseMatrix t(cols_, rows_);
  constexpr int64_t kBlock = 32;
  for (int64_t ib = 0; ib < rows_; ib += kBlock) {
    for (int64_t jb = 0; jb < cols_; jb += kBlock) {
      const int64_t ie = std::min(ib + kBlock, rows_);
      const int64_t je = std::min(jb + kBlock, cols_);
      for (int64_t i = ib; i < ie; ++i) {
        for (int64_t j = jb; j < je; ++j) t(j, i) = (*this)(i, j);
      }
    }
  }
  return t;
}

double DenseMatrix::MaxAbsDiff(const DenseMatrix& o) const {
  RMA_CHECK(rows_ == o.rows_ && cols_ == o.cols_);
  double m = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    m = std::max(m, std::fabs(data_[i] - o.data_[i]));
  }
  return m;
}

std::string DenseMatrix::ToString(int64_t max_rows) const {
  std::ostringstream out;
  out << rows_ << "x" << cols_ << " matrix\n";
  const int64_t shown = std::min(rows_, max_rows);
  for (int64_t i = 0; i < shown; ++i) {
    for (int64_t j = 0; j < cols_; ++j) {
      out << (j == 0 ? "" : " ") << (*this)(i, j);
    }
    out << "\n";
  }
  if (shown < rows_) out << "...\n";
  return out.str();
}

}  // namespace rma
