#include "matrix/cholesky.h"

#include <cmath>

namespace rma {

Result<DenseMatrix> Cholesky(const DenseMatrix& a) {
  const int64_t n = a.rows();
  if (n != a.cols()) return Status::Invalid("chf: matrix must be square");
  constexpr double kSymTol = 1e-8;
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i + 1; j < n; ++j) {
      if (std::fabs(a(i, j) - a(j, i)) >
          kSymTol * (1.0 + std::fabs(a(i, j)))) {
        return Status::NumericError("chf: matrix is not symmetric");
      }
    }
  }
  DenseMatrix u(n, n, 0.0);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i; j < n; ++j) {
      double s = a(i, j);
      for (int64_t k = 0; k < i; ++k) s -= u(k, i) * u(k, j);
      if (i == j) {
        if (s <= 0.0) {
          return Status::NumericError("chf: matrix is not positive definite");
        }
        u(i, j) = std::sqrt(s);
      } else {
        u(i, j) = s / u(i, i);
      }
    }
  }
  return u;
}

}  // namespace rma
