#include "matrix/blas.h"

#include <algorithm>
#include <cmath>

#include "matrix/parallel.h"

namespace rma {
namespace blas {

namespace {

// Inner kernel: C[i0:i1) += A[i0:i1) * B with i-k-j loop order so the B row
// is streamed contiguously and C rows stay hot.
void GemmBand(const DenseMatrix& a, const DenseMatrix& b, DenseMatrix* c,
              int64_t i0, int64_t i1) {
  const int64_t k = a.cols();
  const int64_t n = b.cols();
  for (int64_t i = i0; i < i1; ++i) {
    double* ci = c->row_ptr(i);
    const double* ai = a.row_ptr(i);
    for (int64_t p = 0; p < k; ++p) {
      const double aip = ai[p];
      if (aip == 0.0) continue;
      const double* bp = b.row_ptr(p);
      for (int64_t j = 0; j < n; ++j) ci[j] += aip * bp[j];
    }
  }
}

}  // namespace

Result<DenseMatrix> MatMul(const DenseMatrix& a, const DenseMatrix& b) {
  if (a.cols() != b.rows()) {
    return Status::Invalid("MatMul: inner dimensions differ");
  }
  DenseMatrix c(a.rows(), b.cols(), 0.0);
  const int64_t work_per_row = a.cols() * b.cols();
  const int64_t min_chunk = std::max<int64_t>(1, (1 << 16) / std::max<int64_t>(1, work_per_row));
  ParallelFor(
      0, a.rows(),
      [&](int64_t lo, int64_t hi) { GemmBand(a, b, &c, lo, hi); }, min_chunk);
  return c;
}

Result<DenseMatrix> CrossProd(const DenseMatrix& a, const DenseMatrix& b) {
  if (a.rows() != b.rows()) {
    return Status::Invalid("CrossProd: row counts differ");
  }
  if (&a == &b) return Syrk(a);  // AᵀA is symmetric: half the work
  const int64_t m = a.cols();
  const int64_t n = b.cols();
  const int64_t r = a.rows();
  DenseMatrix c(m, n, 0.0);
  // Accumulate rank-1 updates row by row: C += a_rowᵀ * b_row. Parallelize
  // over output rows (columns of A) to keep writes disjoint.
  ParallelFor(
      0, m,
      [&](int64_t lo, int64_t hi) {
        for (int64_t p = 0; p < r; ++p) {
          const double* ap = a.row_ptr(p);
          const double* bp = b.row_ptr(p);
          for (int64_t i = lo; i < hi; ++i) {
            const double aip = ap[i];
            if (aip == 0.0) continue;
            double* ci = c.row_ptr(i);
            for (int64_t j = 0; j < n; ++j) ci[j] += aip * bp[j];
          }
        }
      },
      std::max<int64_t>(1, (1 << 14) / std::max<int64_t>(1, n)));
  return c;
}

DenseMatrix Syrk(const DenseMatrix& a) {
  const int64_t k = a.cols();
  const int64_t r = a.rows();
  DenseMatrix c(k, k, 0.0);
  ParallelFor(
      0, k,
      [&](int64_t lo, int64_t hi) {
        for (int64_t p = 0; p < r; ++p) {
          const double* ap = a.row_ptr(p);
          for (int64_t i = lo; i < hi; ++i) {
            const double aip = ap[i];
            if (aip == 0.0) continue;
            double* ci = c.row_ptr(i);
            // Only the upper triangle from i on; mirrored below.
            for (int64_t j = i; j < k; ++j) ci[j] += aip * ap[j];
          }
        }
      },
      std::max<int64_t>(1, (1 << 14) / std::max<int64_t>(1, k)));
  for (int64_t i = 0; i < k; ++i) {
    for (int64_t j = 0; j < i; ++j) c(i, j) = c(j, i);
  }
  return c;
}

Result<DenseMatrix> OuterProd(const DenseMatrix& a, const DenseMatrix& b) {
  if (a.cols() != b.cols()) {
    return Status::Invalid("OuterProd: column counts differ");
  }
  const int64_t m = a.rows();
  const int64_t n = b.rows();
  const int64_t k = a.cols();
  DenseMatrix c(m, n, 0.0);
  ParallelFor(
      0, m,
      [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          const double* ai = a.row_ptr(i);
          double* ci = c.row_ptr(i);
          for (int64_t j = 0; j < n; ++j) {
            const double* bj = b.row_ptr(j);
            double s = 0.0;
            for (int64_t p = 0; p < k; ++p) s += ai[p] * bj[p];
            ci[j] = s;
          }
        }
      },
      std::max<int64_t>(1, (1 << 14) / std::max<int64_t>(1, n * k)));
  return c;
}

namespace {

template <typename F>
Result<DenseMatrix> ZipElementwise(const DenseMatrix& a, const DenseMatrix& b,
                                   F f, const char* what) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return Status::Invalid(std::string(what) + ": shapes differ");
  }
  DenseMatrix c(a.rows(), a.cols());
  const double* pa = a.data();
  const double* pb = b.data();
  double* pc = c.data();
  const int64_t n = a.rows() * a.cols();
  for (int64_t i = 0; i < n; ++i) pc[i] = f(pa[i], pb[i]);
  return c;
}

}  // namespace

Result<DenseMatrix> Add(const DenseMatrix& a, const DenseMatrix& b) {
  return ZipElementwise(a, b, [](double x, double y) { return x + y; }, "Add");
}
Result<DenseMatrix> Sub(const DenseMatrix& a, const DenseMatrix& b) {
  return ZipElementwise(a, b, [](double x, double y) { return x - y; }, "Sub");
}
Result<DenseMatrix> ElemMul(const DenseMatrix& a, const DenseMatrix& b) {
  return ZipElementwise(a, b, [](double x, double y) { return x * y; },
                        "ElemMul");
}

Result<std::vector<double>> MatVec(const DenseMatrix& a,
                                   const std::vector<double>& x) {
  if (a.cols() != static_cast<int64_t>(x.size())) {
    return Status::Invalid("MatVec: dimension mismatch");
  }
  std::vector<double> y(static_cast<size_t>(a.rows()), 0.0);
  for (int64_t i = 0; i < a.rows(); ++i) {
    const double* ai = a.row_ptr(i);
    double s = 0.0;
    for (int64_t j = 0; j < a.cols(); ++j) s += ai[j] * x[static_cast<size_t>(j)];
    y[static_cast<size_t>(i)] = s;
  }
  return y;
}

double FrobeniusNorm(const DenseMatrix& a) {
  double s = 0.0;
  const double* p = a.data();
  const int64_t n = a.rows() * a.cols();
  for (int64_t i = 0; i < n; ++i) s += p[i] * p[i];
  return std::sqrt(s);
}

}  // namespace blas
}  // namespace rma
