#include "matrix/blas.h"

#include <algorithm>
#include <cmath>

#include "matrix/parallel.h"
#include "matrix/simd.h"

namespace rma {
namespace blas {

namespace {

// Rank-4 update with the scalar loop's zero-skip semantics: a fully nonzero
// group takes the fused kernel, a fully zero group is skipped, and a mixed
// group falls back to per-coefficient Axpy so a zero coefficient never
// touches its input row — 0 * inf would otherwise inject NaN that the
// scalar path (and the k % 4 tail) skips.
void Axpy4ZeroSkip(const double a4[4], const double* x0, const double* x1,
                   const double* x2, const double* x3, double* y, int64_t n) {
  const bool nz0 = a4[0] != 0.0;
  const bool nz1 = a4[1] != 0.0;
  const bool nz2 = a4[2] != 0.0;
  const bool nz3 = a4[3] != 0.0;
  if (nz0 && nz1 && nz2 && nz3) {
    simd::Axpy4(a4, x0, x1, x2, x3, y, n);
    return;
  }
  if (nz0) simd::Axpy(a4[0], x0, y, n);
  if (nz1) simd::Axpy(a4[1], x1, y, n);
  if (nz2) simd::Axpy(a4[2], x2, y, n);
  if (nz3) simd::Axpy(a4[3], x3, y, n);
}

// Inner kernel: C[i0:i1) += A[i0:i1) * B with i-k-j loop order so the B row
// is streamed contiguously and C rows stay hot. Four B rows per pass (rank-4
// update) quarter the C-row load/store traffic; zero coefficients keep the
// banded-input skip via Axpy4ZeroSkip.
void GemmBand(const DenseMatrix& a, const DenseMatrix& b, DenseMatrix* c,
              int64_t i0, int64_t i1) {
  const int64_t k = a.cols();
  const int64_t n = b.cols();
  for (int64_t i = i0; i < i1; ++i) {
    double* ci = c->row_ptr(i);
    const double* ai = a.row_ptr(i);
    int64_t p = 0;
    for (; p + 4 <= k; p += 4) {
      const double a4[4] = {ai[p], ai[p + 1], ai[p + 2], ai[p + 3]};
      Axpy4ZeroSkip(a4, b.row_ptr(p), b.row_ptr(p + 1), b.row_ptr(p + 2),
                    b.row_ptr(p + 3), ci, n);
    }
    for (; p < k; ++p) {
      const double aip = ai[p];
      if (aip == 0.0) continue;
      simd::Axpy(aip, b.row_ptr(p), ci, n);
    }
  }
}

}  // namespace

Result<DenseMatrix> MatMul(const DenseMatrix& a, const DenseMatrix& b) {
  if (a.cols() != b.rows()) {
    return Status::Invalid("MatMul: inner dimensions differ");
  }
  DenseMatrix c(a.rows(), b.cols(), 0.0);
  const int64_t work_per_row = a.cols() * b.cols();
  const int64_t min_chunk = std::max<int64_t>(1, (1 << 16) / std::max<int64_t>(1, work_per_row));
  ParallelFor(
      0, a.rows(),
      [&](int64_t lo, int64_t hi) { GemmBand(a, b, &c, lo, hi); }, min_chunk);
  return c;
}

Result<DenseMatrix> CrossProd(const DenseMatrix& a, const DenseMatrix& b) {
  if (a.rows() != b.rows()) {
    return Status::Invalid("CrossProd: row counts differ");
  }
  if (&a == &b) return Syrk(a);  // AᵀA is symmetric: half the work
  const int64_t m = a.cols();
  const int64_t n = b.cols();
  const int64_t r = a.rows();
  DenseMatrix c(m, n, 0.0);
  // Accumulate rank-4 updates: C += Σ a_rowᵀ * b_row over four input rows per
  // pass, which keeps each C row loaded once per group. Parallelize over
  // output rows (columns of A) to keep writes disjoint.
  ParallelFor(
      0, m,
      [&](int64_t lo, int64_t hi) {
        int64_t p = 0;
        for (; p + 4 <= r; p += 4) {
          const double* ap0 = a.row_ptr(p);
          const double* ap1 = a.row_ptr(p + 1);
          const double* ap2 = a.row_ptr(p + 2);
          const double* ap3 = a.row_ptr(p + 3);
          const double* bp0 = b.row_ptr(p);
          const double* bp1 = b.row_ptr(p + 1);
          const double* bp2 = b.row_ptr(p + 2);
          const double* bp3 = b.row_ptr(p + 3);
          for (int64_t i = lo; i < hi; ++i) {
            const double a4[4] = {ap0[i], ap1[i], ap2[i], ap3[i]};
            Axpy4ZeroSkip(a4, bp0, bp1, bp2, bp3, c.row_ptr(i), n);
          }
        }
        for (; p < r; ++p) {
          const double* ap = a.row_ptr(p);
          const double* bp = b.row_ptr(p);
          for (int64_t i = lo; i < hi; ++i) {
            const double aip = ap[i];
            if (aip == 0.0) continue;
            simd::Axpy(aip, bp, c.row_ptr(i), n);
          }
        }
      },
      std::max<int64_t>(1, (1 << 14) / std::max<int64_t>(1, n)));
  return c;
}

DenseMatrix Syrk(const DenseMatrix& a) {
  const int64_t k = a.cols();
  const int64_t r = a.rows();
  DenseMatrix c(k, k, 0.0);
  ParallelFor(
      0, k,
      [&](int64_t lo, int64_t hi) {
        // Only the upper triangle from i on; mirrored after the loop. Four
        // input rows per pass keep each C row loaded once per group.
        int64_t p = 0;
        for (; p + 4 <= r; p += 4) {
          const double* ap0 = a.row_ptr(p);
          const double* ap1 = a.row_ptr(p + 1);
          const double* ap2 = a.row_ptr(p + 2);
          const double* ap3 = a.row_ptr(p + 3);
          for (int64_t i = lo; i < hi; ++i) {
            const double a4[4] = {ap0[i], ap1[i], ap2[i], ap3[i]};
            Axpy4ZeroSkip(a4, ap0 + i, ap1 + i, ap2 + i, ap3 + i,
                          c.row_ptr(i) + i, k - i);
          }
        }
        for (; p < r; ++p) {
          const double* ap = a.row_ptr(p);
          for (int64_t i = lo; i < hi; ++i) {
            const double aip = ap[i];
            if (aip == 0.0) continue;
            simd::Axpy(aip, ap + i, c.row_ptr(i) + i, k - i);
          }
        }
      },
      std::max<int64_t>(1, (1 << 14) / std::max<int64_t>(1, k)));
  for (int64_t i = 0; i < k; ++i) {
    for (int64_t j = 0; j < i; ++j) c(i, j) = c(j, i);
  }
  return c;
}

Result<DenseMatrix> OuterProd(const DenseMatrix& a, const DenseMatrix& b) {
  if (a.cols() != b.cols()) {
    return Status::Invalid("OuterProd: column counts differ");
  }
  const int64_t m = a.rows();
  const int64_t n = b.rows();
  const int64_t k = a.cols();
  DenseMatrix c(m, n, 0.0);
  ParallelFor(
      0, m,
      [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          const double* ai = a.row_ptr(i);
          double* ci = c.row_ptr(i);
          for (int64_t j = 0; j < n; ++j) {
            ci[j] = simd::Dot(ai, b.row_ptr(j), k);
          }
        }
      },
      std::max<int64_t>(1, (1 << 14) / std::max<int64_t>(1, n * k)));
  return c;
}

namespace {

using ZipFn = void (*)(const double*, const double*, double*, int64_t);

Result<DenseMatrix> ZipElementwise(const DenseMatrix& a, const DenseMatrix& b,
                                   ZipFn f, const char* what) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return Status::Invalid(std::string(what) + ": shapes differ");
  }
  DenseMatrix c(a.rows(), a.cols());
  f(a.data(), b.data(), c.data(), a.rows() * a.cols());
  return c;
}

}  // namespace

Status AddInPlace(DenseMatrix* a, const DenseMatrix& b) {
  if (a->rows() != b.rows() || a->cols() != b.cols()) {
    return Status::Invalid("AddInPlace: shapes differ");
  }
  // simd::Add loads both inputs before storing each lane group, so out == a
  // aliasing is well-defined on every dispatch path.
  simd::Add(a->data(), b.data(), a->data(), a->rows() * a->cols());
  return Status::OK();
}

Result<DenseMatrix> Add(const DenseMatrix& a, const DenseMatrix& b) {
  return ZipElementwise(a, b, simd::Add, "Add");
}
Result<DenseMatrix> Sub(const DenseMatrix& a, const DenseMatrix& b) {
  return ZipElementwise(a, b, simd::Sub, "Sub");
}
Result<DenseMatrix> ElemMul(const DenseMatrix& a, const DenseMatrix& b) {
  return ZipElementwise(a, b, simd::Mul, "ElemMul");
}

Result<std::vector<double>> MatVec(const DenseMatrix& a,
                                   const std::vector<double>& x) {
  if (a.cols() != static_cast<int64_t>(x.size())) {
    return Status::Invalid("MatVec: dimension mismatch");
  }
  std::vector<double> y(static_cast<size_t>(a.rows()), 0.0);
  const int64_t rows = a.rows();
  const int64_t cols = a.cols();
  int64_t i = 0;
  for (; i + 4 <= rows; i += 4) {
    simd::Dot4(x.data(), a.row_ptr(i), a.row_ptr(i + 1), a.row_ptr(i + 2),
               a.row_ptr(i + 3), cols, y.data() + i);
  }
  for (; i < rows; ++i) {
    y[static_cast<size_t>(i)] = simd::Dot(a.row_ptr(i), x.data(), cols);
  }
  return y;
}

double FrobeniusNorm(const DenseMatrix& a) {
  return std::sqrt(simd::SumSquares(a.data(), a.rows() * a.cols()));
}

}  // namespace blas
}  // namespace rma
