#include "matrix/lu.h"

#include <cmath>

#include "matrix/blas.h"
#include "matrix/qr.h"
#include "matrix/simd.h"

namespace rma {

Status LuDecompose(DenseMatrix* a, std::vector<int64_t>* piv, int* sign) {
  const int64_t n = a->rows();
  if (n != a->cols()) return Status::Invalid("LU: matrix must be square");
  piv->assign(static_cast<size_t>(n), 0);
  *sign = 1;
  DenseMatrix& m = *a;
  for (int64_t k = 0; k < n; ++k) {
    // Partial pivoting: largest |value| in column k at/below the diagonal.
    int64_t p = k;
    double best = std::fabs(m(k, k));
    for (int64_t i = k + 1; i < n; ++i) {
      const double v = std::fabs(m(i, k));
      if (v > best) {
        best = v;
        p = i;
      }
    }
    (*piv)[static_cast<size_t>(k)] = p;
    if (best == 0.0) return Status::NumericError("LU: singular matrix");
    if (p != k) {
      for (int64_t j = 0; j < n; ++j) std::swap(m(k, j), m(p, j));
      *sign = -*sign;
    }
    const double pivot = m(k, k);
    for (int64_t i = k + 1; i < n; ++i) {
      const double l = m(i, k) / pivot;
      m(i, k) = l;
      if (l == 0.0) continue;
      simd::Axpy(-l, m.row_ptr(k) + k + 1, m.row_ptr(i) + k + 1, n - k - 1);
    }
  }
  return Status::OK();
}

Result<double> Determinant(DenseMatrix a) {
  if (a.rows() != a.cols()) {
    return Status::Invalid("det: matrix must be square");
  }
  std::vector<int64_t> piv;
  int sign = 1;
  Status st = LuDecompose(&a, &piv, &sign);
  if (st.IsNumericError()) return 0.0;  // exactly singular => det 0
  RMA_RETURN_NOT_OK(st);
  double det = sign;
  for (int64_t i = 0; i < a.rows(); ++i) det *= a(i, i);
  return det;
}

Result<DenseMatrix> Inverse(DenseMatrix a) {
  const int64_t n = a.rows();
  if (n != a.cols()) return Status::Invalid("inv: matrix must be square");
  DenseMatrix inv = DenseMatrix::Identity(n);
  // Gauss-Jordan with partial pivoting, applied to [A | I].
  for (int64_t k = 0; k < n; ++k) {
    int64_t p = k;
    double best = std::fabs(a(k, k));
    for (int64_t i = k + 1; i < n; ++i) {
      const double v = std::fabs(a(i, k));
      if (v > best) {
        best = v;
        p = i;
      }
    }
    if (best == 0.0) return Status::NumericError("inv: singular matrix");
    if (p != k) {
      for (int64_t j = 0; j < n; ++j) {
        std::swap(a(k, j), a(p, j));
        std::swap(inv(k, j), inv(p, j));
      }
    }
    const double inv_pivot = 1.0 / a(k, k);
    simd::Scale(inv_pivot, a.row_ptr(k), n);
    simd::Scale(inv_pivot, inv.row_ptr(k), n);
    for (int64_t i = 0; i < n; ++i) {
      if (i == k) continue;
      const double f = a(i, k);
      if (f == 0.0) continue;
      simd::Axpy(-f, a.row_ptr(k), a.row_ptr(i), n);
      simd::Axpy(-f, inv.row_ptr(k), inv.row_ptr(i), n);
    }
  }
  return inv;
}

Result<DenseMatrix> SolveSquare(DenseMatrix a, DenseMatrix b) {
  const int64_t n = a.rows();
  if (n != a.cols()) return Status::Invalid("solve: matrix must be square");
  if (b.rows() != n) return Status::Invalid("solve: rhs row count mismatch");
  std::vector<int64_t> piv;
  int sign = 1;
  RMA_RETURN_NOT_OK(LuDecompose(&a, &piv, &sign));
  // Apply the row swaps to B.
  for (int64_t k = 0; k < n; ++k) {
    const int64_t p = piv[static_cast<size_t>(k)];
    if (p != k) {
      for (int64_t j = 0; j < b.cols(); ++j) std::swap(b(k, j), b(p, j));
    }
  }
  // Forward substitution (L unit-lower).
  for (int64_t k = 0; k < n; ++k) {
    for (int64_t i = k + 1; i < n; ++i) {
      const double l = a(i, k);
      if (l == 0.0) continue;
      simd::Axpy(-l, b.row_ptr(k), b.row_ptr(i), b.cols());
    }
  }
  // Back substitution (U upper).
  for (int64_t k = n - 1; k >= 0; --k) {
    const double d = a(k, k);
    for (int64_t j = 0; j < b.cols(); ++j) b(k, j) /= d;
    for (int64_t i = 0; i < k; ++i) {
      const double u = a(i, k);
      if (u == 0.0) continue;
      simd::Axpy(-u, b.row_ptr(k), b.row_ptr(i), b.cols());
    }
  }
  return b;
}

Result<DenseMatrix> SolveLeastSquares(const DenseMatrix& a,
                                      const DenseMatrix& b) {
  if (a.rows() < a.cols()) {
    return Status::Invalid("sol: system is underdetermined (rows < cols)");
  }
  if (a.rows() != b.rows()) {
    return Status::Invalid("sol: rhs row count mismatch");
  }
  if (a.rows() == a.cols()) return SolveSquare(a, b);
  DenseMatrix q;
  DenseMatrix r;
  RMA_RETURN_NOT_OK(HouseholderQr(a, &q, &r));
  // x = R⁻¹ Qᵀ b ; R is k×k upper triangular.
  RMA_ASSIGN_OR_RETURN(DenseMatrix qtb, blas::CrossProd(q, b));
  const int64_t k = r.rows();
  for (int64_t i = k - 1; i >= 0; --i) {
    const double d = r(i, i);
    if (d == 0.0) return Status::NumericError("sol: rank-deficient system");
    for (int64_t j = 0; j < qtb.cols(); ++j) {
      double s = qtb(i, j);
      for (int64_t p = i + 1; p < k; ++p) s -= r(i, p) * qtb(p, j);
      qtb(i, j) = s / d;
    }
  }
  return qtb;
}

}  // namespace rma
