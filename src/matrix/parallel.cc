#include "matrix/parallel.h"

#include <algorithm>
#include <thread>
#include <vector>

namespace rma {

int DefaultThreadCount() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

namespace {
thread_local int g_thread_budget = 0;  // 0 = no budget installed
}  // namespace

int CurrentThreadBudget() { return g_thread_budget; }

ScopedThreadBudget::ScopedThreadBudget(int max_threads)
    : previous_(g_thread_budget) {
  if (max_threads > 0) g_thread_budget = max_threads;
}

ScopedThreadBudget::~ScopedThreadBudget() { g_thread_budget = previous_; }

void ParallelFor(int64_t begin, int64_t end,
                 const std::function<void(int64_t, int64_t)>& fn,
                 int64_t min_chunk, int max_threads) {
  const int64_t n = end - begin;
  if (n <= 0) return;
  if (max_threads <= 0) max_threads = g_thread_budget;
  if (max_threads <= 0) max_threads = DefaultThreadCount();
  const int64_t wanted = (n + min_chunk - 1) / min_chunk;
  const int threads = static_cast<int>(
      std::max<int64_t>(1, std::min<int64_t>(max_threads, wanted)));
  if (threads == 1) {
    fn(begin, end);
    return;
  }
  const int64_t chunk = (n + threads - 1) / threads;
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    const int64_t lo = begin + t * chunk;
    const int64_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    pool.emplace_back([&fn, lo, hi] { fn(lo, hi); });
  }
  for (auto& th : pool) th.join();
}

}  // namespace rma
