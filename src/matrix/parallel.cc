#include "matrix/parallel.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace rma {

int DefaultThreadCount() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

namespace {
thread_local int g_thread_budget = 0;  // 0 = no budget installed
}  // namespace

int CurrentThreadBudget() { return g_thread_budget; }

ScopedThreadBudget::ScopedThreadBudget(int max_threads)
    : previous_(g_thread_budget) {
  if (max_threads > 0) g_thread_budget = max_threads;
}

ScopedThreadBudget::~ScopedThreadBudget() { g_thread_budget = previous_; }

void ParallelFor(int64_t begin, int64_t end,
                 const std::function<void(int64_t, int64_t)>& fn,
                 int64_t min_chunk, int max_threads) {
  const int64_t n = end - begin;
  if (n <= 0) return;
  if (max_threads <= 0) max_threads = g_thread_budget;
  if (max_threads <= 0) max_threads = DefaultThreadCount();
  const int64_t wanted = (n + min_chunk - 1) / min_chunk;
  const int threads = static_cast<int>(
      std::max<int64_t>(1, std::min<int64_t>(max_threads, wanted)));
  if (threads == 1) {
    fn(begin, end);
    return;
  }
  // Fresh std::threads start with no ambient budget, so a nested ParallelFor
  // inside `fn` would otherwise see budget 0 and fan out to the full
  // DefaultThreadCount() per worker — oversubscribing the machine. Each
  // worker inherits an even split of the caller's resolved budget instead,
  // bounding total fan-out by `max_threads`.
  const int per_worker = std::max(1, static_cast<int>(max_threads) / threads);
  const int64_t chunk = (n + threads - 1) / threads;
  Mutex error_mu;
  std::exception_ptr first_error;
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    const int64_t lo = begin + t * chunk;
    const int64_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    pool.emplace_back([&fn, &error_mu, &first_error, lo, hi, per_worker] {
      ScopedThreadBudget inherited(per_worker);
      // Exception barrier: a raw std::thread terminates the process on an
      // escaped exception. Capture the first one and rethrow after join.
      try {
        fn(lo, hi);
      } catch (...) {
        MutexLock lock(error_mu);
        if (first_error == nullptr) first_error = std::current_exception();
      }
    });
  }
  for (auto& th : pool) th.join();
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

// --- ThreadPool -------------------------------------------------------------

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) threads = std::max(2, DefaultThreadCount());
  workers_.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (auto& th : workers_) th.join();
  // Mark abandoned tasks done so no waiter can block forever.
  MutexLock lock(mu_);
  for (const TaskPtr& task : queue_) {
    MutexLock task_lock(task->mu_);
    task->done_.store(true, std::memory_order_release);
    task->cv_.NotifyAll();
  }
  queue_.clear();
}

ThreadPool::TaskPtr ThreadPool::Submit(std::function<void()> fn) {
  auto task = std::make_shared<Task>();
  task->fn_ = std::move(fn);
  bool inline_run = false;
  {
    MutexLock lock(mu_);
    if (stop_) {
      inline_run = true;  // shutting down: run inline, don't drop the work
    } else {
      queue_.push_back(task);
    }
  }
  if (inline_run) {
    RunTask(task);
  } else {
    cv_.NotifyOne();
  }
  return task;
}

void ThreadPool::RunTask(const TaskPtr& task) {
  try {
    task->fn_();
  } catch (...) {
    task->error_ = std::current_exception();
  }
  task->fn_ = nullptr;
  {
    MutexLock lock(task->mu_);
    task->done_.store(true, std::memory_order_release);
  }
  task->cv_.NotifyAll();
}

bool ThreadPool::TryRunOne() {
  TaskPtr task;
  {
    MutexLock lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  RunTask(task);
  return true;
}

void ThreadPool::Wait(const TaskPtr& task) {
  if (task == nullptr) return;
  while (!task->done()) {
    // Cooperative join: drain queued work instead of blocking, so a task
    // waiting on its own sub-tasks makes progress even when every worker is
    // occupied by an ancestor.
    if (TryRunOne()) continue;
    // done_ flips under task->mu_, so checking it while holding the lock
    // cannot race the notify; the 1ms bound re-polls the queue for new
    // helpable work either way.
    MutexLock lock(task->mu_);
    if (!task->done()) {
      task->cv_.WaitFor(task->mu_, std::chrono::milliseconds(1));
    }
  }
  if (task->error_ != nullptr) std::rethrow_exception(task->error_);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    TaskPtr task;
    {
      // Explicit predicate loop (not cv.wait(pred)): the guarded reads of
      // stop_/queue_ stay in this function, where the analysis sees mu_ held.
      MutexLock lock(mu_);
      while (!stop_ && queue_.empty()) cv_.Wait(mu_);
      if (stop_) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    RunTask(task);
  }
}

ThreadPool& ThreadPool::Shared() {
  // Leaked on purpose: worker threads must outlive every static destructor
  // that could still submit work.
  static ThreadPool* pool = new ThreadPool();
  return *pool;
}

}  // namespace rma
