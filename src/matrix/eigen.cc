#include "matrix/eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace rma {

bool IsSymmetric(const DenseMatrix& a, double tol) {
  if (a.rows() != a.cols()) return false;
  for (int64_t i = 0; i < a.rows(); ++i) {
    for (int64_t j = i + 1; j < a.cols(); ++j) {
      if (std::fabs(a(i, j) - a(j, i)) > tol * (1.0 + std::fabs(a(i, j)))) {
        return false;
      }
    }
  }
  return true;
}

Status SymmetricEigen(const DenseMatrix& a, std::vector<double>* values,
                      DenseMatrix* vectors) {
  const int64_t n = a.rows();
  if (n != a.cols()) return Status::Invalid("eigen: matrix must be square");
  DenseMatrix m = a;
  DenseMatrix v = DenseMatrix::Identity(n);
  constexpr int kMaxSweeps = 100;
  constexpr double kTol = 1e-14;
  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    double off = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = i + 1; j < n; ++j) off += m(i, j) * m(i, j);
    }
    if (std::sqrt(off) <= kTol * (1.0 + std::fabs(m(0, 0)))) break;
    for (int64_t p = 0; p < n - 1; ++p) {
      for (int64_t q = p + 1; q < n; ++q) {
        const double apq = m(p, q);
        if (std::fabs(apq) < 1e-300) continue;
        const double theta = (m(q, q) - m(p, p)) / (2.0 * apq);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(1.0 + theta * theta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        // Rotate rows/columns p and q of M: M = JᵀMJ.
        for (int64_t i = 0; i < n; ++i) {
          const double mip = m(i, p);
          const double miq = m(i, q);
          m(i, p) = c * mip - s * miq;
          m(i, q) = s * mip + c * miq;
        }
        for (int64_t i = 0; i < n; ++i) {
          const double mpi = m(p, i);
          const double mqi = m(q, i);
          m(p, i) = c * mpi - s * mqi;
          m(q, i) = s * mpi + c * mqi;
        }
        for (int64_t i = 0; i < n; ++i) {
          const double vip = v(i, p);
          const double viq = v(i, q);
          v(i, p) = c * vip - s * viq;
          v(i, q) = s * vip + c * viq;
        }
      }
    }
  }
  // Sort eigenpairs by descending eigenvalue (R's eigen() convention).
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&m](int64_t x, int64_t y) {
    return m(x, x) > m(y, y);
  });
  values->assign(static_cast<size_t>(n), 0.0);
  *vectors = DenseMatrix(n, n, 0.0);
  for (int64_t j = 0; j < n; ++j) {
    const int64_t src = order[static_cast<size_t>(j)];
    (*values)[static_cast<size_t>(j)] = m(src, src);
    for (int64_t i = 0; i < n; ++i) (*vectors)(i, j) = v(i, src);
  }
  // Deterministic sign convention (largest-|component| positive).
  for (int64_t j = 0; j < n; ++j) {
    int64_t arg = 0;
    double best = -1.0;
    for (int64_t i = 0; i < n; ++i) {
      const double v_abs = std::fabs((*vectors)(i, j));
      if (v_abs > best) {
        best = v_abs;
        arg = i;
      }
    }
    if ((*vectors)(arg, j) < 0.0) {
      for (int64_t i = 0; i < n; ++i) (*vectors)(i, j) = -(*vectors)(i, j);
    }
  }
  return Status::OK();
}

namespace {

// Reduces M in place to upper Hessenberg form with Householder reflectors.
void HessenbergReduce(DenseMatrix* m) {
  const int64_t n = m->rows();
  for (int64_t k = 0; k < n - 2; ++k) {
    double norm2 = 0.0;
    for (int64_t i = k + 1; i < n; ++i) norm2 += (*m)(i, k) * (*m)(i, k);
    const double norm = std::sqrt(norm2);
    if (norm == 0.0) continue;
    const double x0 = (*m)(k + 1, k);
    const double alpha = x0 >= 0 ? -norm : norm;
    const double v0 = x0 - alpha;
    if (v0 == 0.0) continue;
    std::vector<double> v(static_cast<size_t>(n), 0.0);
    v[static_cast<size_t>(k + 1)] = 1.0;
    for (int64_t i = k + 2; i < n; ++i) {
      v[static_cast<size_t>(i)] = (*m)(i, k) / v0;
    }
    const double beta = -v0 / alpha;
    // M = (I - beta v vᵀ) M (I - beta v vᵀ)
    for (int64_t j = 0; j < n; ++j) {  // left
      double s = 0.0;
      for (int64_t i = k + 1; i < n; ++i) s += v[static_cast<size_t>(i)] * (*m)(i, j);
      s *= beta;
      for (int64_t i = k + 1; i < n; ++i) (*m)(i, j) -= s * v[static_cast<size_t>(i)];
    }
    for (int64_t i = 0; i < n; ++i) {  // right
      double s = 0.0;
      for (int64_t j = k + 1; j < n; ++j) s += (*m)(i, j) * v[static_cast<size_t>(j)];
      s *= beta;
      for (int64_t j = k + 1; j < n; ++j) (*m)(i, j) -= s * v[static_cast<size_t>(j)];
    }
  }
}

// Solves the trailing 2x2 block; returns false for a complex pair.
bool TwoByTwoEigen(double a, double b, double c, double d, double* l1,
                   double* l2) {
  const double tr = a + d;
  const double det = a * d - b * c;
  const double disc = tr * tr / 4.0 - det;
  if (disc < 0.0) return false;
  const double root = std::sqrt(disc);
  *l1 = tr / 2.0 + root;
  *l2 = tr / 2.0 - root;
  return true;
}

}  // namespace

Status GeneralEigenvalues(const DenseMatrix& a, std::vector<double>* values) {
  const int64_t n0 = a.rows();
  if (n0 != a.cols()) return Status::Invalid("evl: matrix must be square");
  DenseMatrix m = a;
  HessenbergReduce(&m);
  values->clear();
  int64_t n = n0;  // active block is m[0..n)
  int iter = 0;
  constexpr int kMaxIterPerEig = 200;
  while (n > 0) {
    // Deflate tiny subdiagonals.
    int64_t l = n - 1;
    while (l > 0 && std::fabs(m(l, l - 1)) >
                        1e-14 * (std::fabs(m(l - 1, l - 1)) +
                                 std::fabs(m(l, l)) + 1e-300)) {
      --l;
    }
    if (l == n - 1) {  // 1x1 block converged
      values->push_back(m(n - 1, n - 1));
      --n;
      iter = 0;
      continue;
    }
    if (l == n - 2) {  // try trailing 2x2 block
      double l1 = 0.0;
      double l2 = 0.0;
      if (TwoByTwoEigen(m(n - 2, n - 2), m(n - 2, n - 1), m(n - 1, n - 2),
                        m(n - 1, n - 1), &l1, &l2)) {
        values->push_back(l1);
        values->push_back(l2);
        n -= 2;
        iter = 0;
        continue;
      }
      // Complex pair: only representable after it separates — it will not,
      // so report it.
      return Status::NumericError(
          "evl: matrix has complex eigenvalues, not representable in a "
          "relation of doubles");
    }
    if (++iter > kMaxIterPerEig) {
      return Status::NumericError("evl: QR iteration did not converge");
    }
    // Wilkinson shift from the trailing 2x2 of the active block.
    const double aa = m(n - 2, n - 2);
    const double bb = m(n - 2, n - 1);
    const double cc = m(n - 1, n - 2);
    const double dd = m(n - 1, n - 1);
    double mu = dd;
    double l1 = 0.0;
    double l2 = 0.0;
    if (TwoByTwoEigen(aa, bb, cc, dd, &l1, &l2)) {
      mu = std::fabs(l1 - dd) < std::fabs(l2 - dd) ? l1 : l2;
    } else if (iter % 7 == 0) {
      mu = std::fabs(bb) + std::fabs(cc);  // exceptional shift
    }
    // Explicit shifted QR step on the active Hessenberg block via Givens.
    std::vector<double> cs(static_cast<size_t>(n), 1.0);
    std::vector<double> sn(static_cast<size_t>(n), 0.0);
    for (int64_t i = 0; i < n; ++i) m(i, i) -= mu;
    for (int64_t k = 0; k < n - 1; ++k) {
      const double x = m(k, k);
      const double y = m(k + 1, k);
      const double r = std::hypot(x, y);
      const double c = r == 0.0 ? 1.0 : x / r;
      const double s = r == 0.0 ? 0.0 : y / r;
      cs[static_cast<size_t>(k)] = c;
      sn[static_cast<size_t>(k)] = s;
      for (int64_t j = k; j < n; ++j) {
        const double t1 = m(k, j);
        const double t2 = m(k + 1, j);
        m(k, j) = c * t1 + s * t2;
        m(k + 1, j) = -s * t1 + c * t2;
      }
    }
    for (int64_t k = 0; k < n - 1; ++k) {  // RQ: apply transposed rotations
      const double c = cs[static_cast<size_t>(k)];
      const double s = sn[static_cast<size_t>(k)];
      for (int64_t i = 0; i <= std::min(k + 2, n - 1); ++i) {
        const double t1 = m(i, k);
        const double t2 = m(i, k + 1);
        m(i, k) = c * t1 + s * t2;
        m(i, k + 1) = -s * t1 + c * t2;
      }
    }
    for (int64_t i = 0; i < n; ++i) m(i, i) += mu;
  }
  std::sort(values->begin(), values->end(), std::greater<double>());
  return Status::OK();
}

Status Eigenvalues(const DenseMatrix& a, std::vector<double>* values) {
  if (IsSymmetric(a)) {
    DenseMatrix vectors;
    return SymmetricEigen(a, values, &vectors);
  }
  return GeneralEigenvalues(a, values);
}

}  // namespace rma
