#ifndef RMA_MATRIX_PARALLEL_H_
#define RMA_MATRIX_PARALLEL_H_

#include <cstdint>
#include <functional>

namespace rma {

/// Number of worker threads the kernels use (hardware concurrency, >= 1).
int DefaultThreadCount();

/// Runs fn(begin..end) split across threads in contiguous chunks. Falls back
/// to inline execution for small ranges. `fn` receives (chunk_begin,
/// chunk_end) and must be thread-safe across disjoint chunks. `max_threads`
/// caps the worker count (0 = DefaultThreadCount(); 1 = run inline — used to
/// model single-threaded competitors).
void ParallelFor(int64_t begin, int64_t end,
                 const std::function<void(int64_t, int64_t)>& fn,
                 int64_t min_chunk = 1024, int max_threads = 0);

}  // namespace rma

#endif  // RMA_MATRIX_PARALLEL_H_
