#ifndef RMA_MATRIX_PARALLEL_H_
#define RMA_MATRIX_PARALLEL_H_

#include <cstdint>
#include <functional>

namespace rma {

/// Number of worker threads the kernels use (hardware concurrency, >= 1).
int DefaultThreadCount();

/// The ambient per-thread worker budget applied when ParallelFor is called
/// with `max_threads == 0`. 0 means "no budget set" (DefaultThreadCount()).
/// The execution context installs the budget of RmaOptions::max_threads for
/// the duration of a kernel stage via ScopedThreadBudget, so the whole
/// matrix layer honours the context without every kernel signature carrying
/// a thread count.
int CurrentThreadBudget();

/// RAII guard installing a thread budget for the current thread; restores
/// the previous budget on destruction. `max_threads <= 0` leaves the budget
/// unchanged.
class ScopedThreadBudget {
 public:
  explicit ScopedThreadBudget(int max_threads);
  ~ScopedThreadBudget();

  ScopedThreadBudget(const ScopedThreadBudget&) = delete;
  ScopedThreadBudget& operator=(const ScopedThreadBudget&) = delete;

 private:
  int previous_;
};

/// Runs fn(begin..end) split across threads in contiguous chunks. Falls back
/// to inline execution for small ranges. `fn` receives (chunk_begin,
/// chunk_end) and must be thread-safe across disjoint chunks. `max_threads`
/// caps the worker count (0 = the ambient ScopedThreadBudget, falling back
/// to DefaultThreadCount(); 1 = run inline — used to model single-threaded
/// competitors).
void ParallelFor(int64_t begin, int64_t end,
                 const std::function<void(int64_t, int64_t)>& fn,
                 int64_t min_chunk = 1024, int max_threads = 0);

}  // namespace rma

#endif  // RMA_MATRIX_PARALLEL_H_
