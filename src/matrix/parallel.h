#ifndef RMA_MATRIX_PARALLEL_H_
#define RMA_MATRIX_PARALLEL_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace rma {

/// Number of worker threads the kernels use (hardware concurrency, >= 1).
int DefaultThreadCount();

/// The ambient per-thread worker budget applied when ParallelFor is called
/// with `max_threads == 0`. 0 means "no budget set" (DefaultThreadCount()).
/// The execution context installs the budget of RmaOptions::max_threads for
/// the duration of a kernel stage via ScopedThreadBudget, so the whole
/// matrix layer honours the context without every kernel signature carrying
/// a thread count.
int CurrentThreadBudget();

/// RAII guard installing a thread budget for the current thread; restores
/// the previous budget on destruction. `max_threads <= 0` leaves the budget
/// unchanged.
class ScopedThreadBudget {
 public:
  explicit ScopedThreadBudget(int max_threads);
  ~ScopedThreadBudget();

  ScopedThreadBudget(const ScopedThreadBudget&) = delete;
  ScopedThreadBudget& operator=(const ScopedThreadBudget&) = delete;

 private:
  int previous_;
};

/// Runs fn(begin..end) split across threads in contiguous chunks. Falls back
/// to inline execution for small ranges. `fn` receives (chunk_begin,
/// chunk_end) and must be thread-safe across disjoint chunks. `max_threads`
/// caps the worker count (0 = the ambient ScopedThreadBudget, falling back
/// to DefaultThreadCount(); 1 = run inline — used to model single-threaded
/// competitors).
///
/// Workers inherit a split of the caller's resolved budget (each gets
/// `max(1, budget / workers)`), so a nested ParallelFor inside `fn` cannot
/// fan out past the caller's budget. If `fn` throws, all workers are joined
/// and the first exception is rethrown on the calling thread.
void ParallelFor(int64_t begin, int64_t end,
                 const std::function<void(int64_t, int64_t)>& fn,
                 int64_t min_chunk = 1024, int max_threads = 0);

/// A small persistent worker pool for coarse-grained tasks (concurrent plan
/// subtrees, batched statements). Kernels keep using ParallelFor for
/// fine-grained data parallelism; the pool schedules the *structural*
/// concurrency above them.
///
/// Waiting is cooperative: Wait() executes queued tasks on the waiting
/// thread while its task is pending, so fork/join recursion (a pool task
/// that submits and waits on further tasks) cannot deadlock even on a
/// single-worker pool.
class ThreadPool {
 public:
  /// One submitted task. `done()` becomes true after the task ran (or was
  /// abandoned by pool shutdown); an exception thrown by the task is
  /// captured and rethrown by ThreadPool::Wait.
  class Task {
   public:
    bool done() const { return done_.load(std::memory_order_acquire); }

   private:
    friend class ThreadPool;
    /// fn_ and error_ are not lock-guarded: fn_ is written once before the
    /// task is published to the queue and consumed by the single thread that
    /// runs it; error_ is written by that thread before the release store to
    /// done_, and read by waiters only after observing done_ (acquire) — the
    /// atomic is the synchronization edge, not mu_. mu_ exists solely to
    /// pair with cv_ so a done_ flip cannot race a waiter between its check
    /// and its sleep.
    std::function<void()> fn_;
    std::atomic<bool> done_{false};
    std::exception_ptr error_;
    Mutex mu_;
    CondVar cv_;
  };
  using TaskPtr = std::shared_ptr<Task>;

  /// `threads <= 0` sizes the pool to DefaultThreadCount() (at least 2, so
  /// structural concurrency exists even on single-core machines).
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `fn`; worker threads start with no ambient thread budget (the
  /// task installs its own ScopedThreadBudget if it needs one).
  TaskPtr Submit(std::function<void()> fn);

  /// Runs one queued task on the calling thread. Returns false if the queue
  /// was empty.
  bool TryRunOne();

  /// Blocks until `task` completed, executing other queued tasks while
  /// waiting (cooperative join). Rethrows the task's exception, if any.
  void Wait(const TaskPtr& task);

  /// The process-wide shared pool used by the stage scheduler and batched
  /// statement execution.
  static ThreadPool& Shared();

 private:
  void WorkerLoop();
  static void RunTask(const TaskPtr& task);

  Mutex mu_;
  CondVar cv_;
  std::deque<TaskPtr> queue_ RMA_GUARDED_BY(mu_);
  bool stop_ RMA_GUARDED_BY(mu_) = false;
  /// Written only by the constructor before any concurrency exists; joined
  /// by the destructor after every worker observed stop_. Not lock-guarded.
  std::vector<std::thread> workers_;
};

}  // namespace rma

#endif  // RMA_MATRIX_PARALLEL_H_
