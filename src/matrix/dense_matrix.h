#ifndef RMA_MATRIX_DENSE_MATRIX_H_
#define RMA_MATRIX_DENSE_MATRIX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/logging.h"

namespace rma {

/// Dense row-major matrix of doubles over one contiguous allocation.
///
/// This is the "external library format" of the paper (Sec. 7.3): delegating
/// a matrix operation to the contiguous kernels requires copying BAT columns
/// into this layout and copying results back — exactly the transformation
/// cost measured in Fig. 14.
class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(int64_t rows, int64_t cols, double init = 0.0)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows * cols), init) {
    RMA_DCHECK(rows >= 0 && cols >= 0);
  }

  static DenseMatrix Identity(int64_t n) {
    DenseMatrix m(n, n, 0.0);
    for (int64_t i = 0; i < n; ++i) m(i, i) = 1.0;
    return m;
  }

  /// Wraps an existing row-major buffer (must have rows*cols entries).
  static DenseMatrix FromRowMajor(int64_t rows, int64_t cols,
                                  std::vector<double> data) {
    RMA_CHECK(static_cast<int64_t>(data.size()) == rows * cols);
    DenseMatrix m;
    m.rows_ = rows;
    m.cols_ = cols;
    m.data_ = std::move(data);
    return m;
  }

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& operator()(int64_t i, int64_t j) {
    RMA_DCHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<size_t>(i * cols_ + j)];
  }
  double operator()(int64_t i, int64_t j) const {
    RMA_DCHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<size_t>(i * cols_ + j)];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  double* row_ptr(int64_t i) { return data_.data() + i * cols_; }
  const double* row_ptr(int64_t i) const { return data_.data() + i * cols_; }

  /// Copies of a single column / row.
  std::vector<double> Col(int64_t j) const;
  std::vector<double> Row(int64_t i) const;
  void SetCol(int64_t j, const std::vector<double>& v);

  DenseMatrix Transposed() const;

  /// Max |a-b| over all entries; matrices must be the same shape.
  double MaxAbsDiff(const DenseMatrix& o) const;

  /// True if same shape and all entries within eps.
  bool AllClose(const DenseMatrix& o, double eps = 1e-9) const {
    return rows_ == o.rows_ && cols_ == o.cols_ && MaxAbsDiff(o) <= eps;
  }

  std::string ToString(int64_t max_rows = 12) const;

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace rma

#endif  // RMA_MATRIX_DENSE_MATRIX_H_
