#ifndef RMA_MATRIX_CHOLESKY_H_
#define RMA_MATRIX_CHOLESKY_H_

#include "matrix/dense_matrix.h"
#include "util/result.h"

namespace rma {

/// Cholesky factorization of a symmetric positive-definite matrix.
/// Returns the upper-triangular factor U with UᵀU = A (R's `chol`
/// convention, which the paper's CHF follows). Non-SPD input yields
/// NumericError.
Result<DenseMatrix> Cholesky(const DenseMatrix& a);

}  // namespace rma

#endif  // RMA_MATRIX_CHOLESKY_H_
