#ifndef RMA_MATRIX_QR_H_
#define RMA_MATRIX_QR_H_

#include "matrix/dense_matrix.h"
#include "util/result.h"

namespace rma {

/// Householder QR of an m×k matrix with m ≥ k. Produces the thin factors:
/// Q is m×k with orthonormal columns, R is k×k upper triangular.
///
/// The factorization is sign-normalized (diag(R) ≥ 0), which makes it unique
/// for full-rank inputs. Uniqueness is what allows the `qqr` sort-avoidance
/// optimization (Sec. 8.1): QR of a row permutation P·A yields P·Q with the
/// same R, so results agree up to row order, which origins capture.
///
/// `threads` distributes the reflector applications across workers
/// (0 = all hardware threads, 1 = sequential — the competitor simulations
/// use 1 to model R's single-threaded LINPACK qr()).
Status HouseholderQr(const DenseMatrix& a, DenseMatrix* q, DenseMatrix* r,
                     int threads = 0);

/// Modified Gram-Schmidt QR with the same contract as HouseholderQr. This is
/// the column-at-a-time algorithm the paper runs over BATs (Sec. 8.3, the
/// Gander baseline); exposed here for testing both against each other.
Status GramSchmidtQr(const DenseMatrix& a, DenseMatrix* q, DenseMatrix* r);

/// Full orthogonal factor: m×m Q whose first k columns equal the thin Q
/// (used to complete USV's full left-singular basis).
Status FullQ(const DenseMatrix& a, DenseMatrix* q_full, int threads = 0);

}  // namespace rma

#endif  // RMA_MATRIX_QR_H_
