#ifndef RMA_MATRIX_BLAS_H_
#define RMA_MATRIX_BLAS_H_

#include "matrix/dense_matrix.h"
#include "util/result.h"

namespace rma {

/// Level-3 style kernels over contiguous row-major matrices. All kernels are
/// cache-blocked and parallelized over row bands; dimension mismatches return
/// Status::Invalid.
namespace blas {

/// C = A * B  (A: m×k, B: k×n).
Result<DenseMatrix> MatMul(const DenseMatrix& a, const DenseMatrix& b);

/// C = Aᵀ * B (A: m×k, B: m×n) — the paper's CPD (R crossprod).
Result<DenseMatrix> CrossProd(const DenseMatrix& a, const DenseMatrix& b);

/// C = Aᵀ * A, exploiting symmetry (cblas_dsyrk analogue used for the
/// covariance workload of Fig. 17).
DenseMatrix Syrk(const DenseMatrix& a);

/// C = A * Bᵀ (A: m×k, B: n×k) — the paper's OPD (R %o% on row vectors).
Result<DenseMatrix> OuterProd(const DenseMatrix& a, const DenseMatrix& b);

/// a += b element-wise (equal shapes) — the partial-reduce primitive of the
/// sharded executor's tree-reduction merge (per-shard Gram partials summed
/// pairwise). Rides the SIMD Add form; bit-identical to the scalar loop.
Status AddInPlace(DenseMatrix* a, const DenseMatrix& b);

/// Element-wise operations (equal shapes).
Result<DenseMatrix> Add(const DenseMatrix& a, const DenseMatrix& b);
Result<DenseMatrix> Sub(const DenseMatrix& a, const DenseMatrix& b);
Result<DenseMatrix> ElemMul(const DenseMatrix& a, const DenseMatrix& b);

/// y = A * x  (A: m×n, x: n).
Result<std::vector<double>> MatVec(const DenseMatrix& a,
                                   const std::vector<double>& x);

/// Frobenius norm.
double FrobeniusNorm(const DenseMatrix& a);

}  // namespace blas
}  // namespace rma

#endif  // RMA_MATRIX_BLAS_H_
