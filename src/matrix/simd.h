#ifndef RMA_MATRIX_SIMD_H_
#define RMA_MATRIX_SIMD_H_

#include <cstdint>
#include <string>

/// Portable SIMD wrapper for the double-precision hot loops.
///
/// The binary stays portable: AVX2 bodies are compiled behind
/// `__attribute__((target("avx2")))` so the baseline ISA of the translation
/// unit is unchanged, and they are only entered after a runtime
/// `__builtin_cpu_supports("avx2")` check. On aarch64 NEON is part of the
/// baseline ISA and needs no dispatch. Everything falls back to plain scalar
/// loops, and setting `RMA_NO_SIMD=1` (or calling `ForceScalar(true)` from a
/// test) pins the scalar path at runtime.
///
/// Numerics contract: the element-wise kernels (Add/Sub/Mul/Axpy/Scale) are
/// bit-identical to their scalar loops — no FMA contraction, same per-element
/// operation, scalar tail for the last `n % Width()` elements. The reductions
/// (Dot/Sum/SumSquares) use lane-wise partial sums (and FMA contraction on
/// x86), so they associate differently from the scalar left fold; callers
/// must not rely on bit-equality of reduction results across ISAs.

#if !defined(RMA_FORCE_SCALAR_BUILD)
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define RMA_SIMD_AVX2 1
#include <immintrin.h>
#elif defined(__aarch64__)
#define RMA_SIMD_NEON 1
#include <arm_neon.h>
#endif
#endif

namespace rma {
namespace simd {

/// True when a vector ISA is compiled in, supported by this CPU, and not
/// disabled via RMA_NO_SIMD / ForceScalar.
bool Enabled();

/// Doubles per vector lane group: 4 (AVX2), 2 (NEON), or 1 (scalar).
int Width();

/// "avx2", "neon", or "scalar" — reflects the *active* path, so a build with
/// AVX2 compiled in reports "scalar" when RMA_NO_SIMD is set.
const char* IsaName();

/// Compact build tag for logs and bench artifacts: "avx2x4", "neon x2" style
/// ("scalar" when vectorization is off).
std::string Describe();

/// Test hook: true pins the scalar path regardless of CPU support; false
/// restores environment-based detection.
void ForceScalar(bool on);

namespace detail {

#if defined(RMA_SIMD_AVX2)

__attribute__((target("avx2"))) inline void AddAvx2(const double* a,
                                                    const double* b,
                                                    double* out, int64_t n) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, _mm256_add_pd(_mm256_loadu_pd(a + i),
                                            _mm256_loadu_pd(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] + b[i];
}

__attribute__((target("avx2"))) inline void SubAvx2(const double* a,
                                                    const double* b,
                                                    double* out, int64_t n) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, _mm256_sub_pd(_mm256_loadu_pd(a + i),
                                            _mm256_loadu_pd(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] - b[i];
}

__attribute__((target("avx2"))) inline void MulAvx2(const double* a,
                                                    const double* b,
                                                    double* out, int64_t n) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, _mm256_mul_pd(_mm256_loadu_pd(a + i),
                                            _mm256_loadu_pd(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] * b[i];
}

// y += alpha * x. Separate mul+add (no FMA) keeps every element bit-identical
// to the scalar loop.
__attribute__((target("avx2"))) inline void AxpyAvx2(double alpha,
                                                     const double* x,
                                                     double* y, int64_t n) {
  const __m256d va = _mm256_set1_pd(alpha);
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d prod = _mm256_mul_pd(va, _mm256_loadu_pd(x + i));
    _mm256_storeu_pd(y + i, _mm256_add_pd(_mm256_loadu_pd(y + i), prod));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

__attribute__((target("avx2"))) inline void ScaleAvx2(double alpha, double* x,
                                                      int64_t n) {
  const __m256d va = _mm256_set1_pd(alpha);
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(x + i, _mm256_mul_pd(va, _mm256_loadu_pd(x + i)));
  }
  for (; i < n; ++i) x[i] *= alpha;
}

__attribute__((target("avx2"))) inline double HSumAvx2(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d pair = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_add_sd(pair, _mm_unpackhi_pd(pair, pair)));
}

__attribute__((target("avx2,fma"))) inline double DotAvx2(const double* a,
                                                      const double* b,
                                                      int64_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i),
                           acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 4),
                           _mm256_loadu_pd(b + i + 4), acc1);
  }
  for (; i + 4 <= n; i += 4) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i),
                           acc0);
  }
  double s = HSumAvx2(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) s += a[i] * b[i];
  return s;
}

__attribute__((target("avx2"))) inline double SumAvx2(const double* a,
                                                      int64_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_add_pd(acc0, _mm256_loadu_pd(a + i));
    acc1 = _mm256_add_pd(acc1, _mm256_loadu_pd(a + i + 4));
  }
  for (; i + 4 <= n; i += 4) {
    acc0 = _mm256_add_pd(acc0, _mm256_loadu_pd(a + i));
  }
  double s = HSumAvx2(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) s += a[i];
  return s;
}

__attribute__((target("avx2,fma"))) inline double SumSquaresAvx2(const double* a,
                                                             int64_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d v0 = _mm256_loadu_pd(a + i);
    const __m256d v1 = _mm256_loadu_pd(a + i + 4);
    acc0 = _mm256_fmadd_pd(v0, v0, acc0);
    acc1 = _mm256_fmadd_pd(v1, v1, acc1);
  }
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(a + i);
    acc0 = _mm256_fmadd_pd(v, v, acc0);
  }
  double s = HSumAvx2(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) s += a[i] * a[i];
  return s;
}

#elif defined(RMA_SIMD_NEON)

inline void AddNeon(const double* a, const double* b, double* out, int64_t n) {
  int64_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(out + i, vaddq_f64(vld1q_f64(a + i), vld1q_f64(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] + b[i];
}

inline void SubNeon(const double* a, const double* b, double* out, int64_t n) {
  int64_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(out + i, vsubq_f64(vld1q_f64(a + i), vld1q_f64(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] - b[i];
}

inline void MulNeon(const double* a, const double* b, double* out, int64_t n) {
  int64_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(out + i, vmulq_f64(vld1q_f64(a + i), vld1q_f64(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] * b[i];
}

inline void AxpyNeon(double alpha, const double* x, double* y, int64_t n) {
  const float64x2_t va = vdupq_n_f64(alpha);
  int64_t i = 0;
  for (; i + 2 <= n; i += 2) {
    // Separate mul+add (no vfmaq) to match scalar rounding per element.
    const float64x2_t prod = vmulq_f64(va, vld1q_f64(x + i));
    vst1q_f64(y + i, vaddq_f64(vld1q_f64(y + i), prod));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

inline void ScaleNeon(double alpha, double* x, int64_t n) {
  const float64x2_t va = vdupq_n_f64(alpha);
  int64_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(x + i, vmulq_f64(va, vld1q_f64(x + i)));
  }
  for (; i < n; ++i) x[i] *= alpha;
}

inline double DotNeon(const double* a, const double* b, int64_t n) {
  float64x2_t acc = vdupq_n_f64(0.0);
  int64_t i = 0;
  for (; i + 2 <= n; i += 2) {
    acc = vaddq_f64(acc, vmulq_f64(vld1q_f64(a + i), vld1q_f64(b + i)));
  }
  double s = vaddvq_f64(acc);
  for (; i < n; ++i) s += a[i] * b[i];
  return s;
}

inline double SumNeon(const double* a, int64_t n) {
  float64x2_t acc = vdupq_n_f64(0.0);
  int64_t i = 0;
  for (; i + 2 <= n; i += 2) acc = vaddq_f64(acc, vld1q_f64(a + i));
  double s = vaddvq_f64(acc);
  for (; i < n; ++i) s += a[i];
  return s;
}

inline double SumSquaresNeon(const double* a, int64_t n) {
  float64x2_t acc = vdupq_n_f64(0.0);
  int64_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t v = vld1q_f64(a + i);
    acc = vaddq_f64(acc, vmulq_f64(v, v));
  }
  double s = vaddvq_f64(acc);
  for (; i < n; ++i) s += a[i] * a[i];
  return s;
}

#endif  // RMA_SIMD_AVX2 / RMA_SIMD_NEON

#if defined(RMA_SIMD_AVX2)

// Interleaves four source columns into rows of four: a 4x4 in-register
// transpose per block, so both the loads and the strided stores are full
// vectors. dst row i gets {c0[i], c1[i], c2[i], c3[i]} at dst + i*stride.
__attribute__((target("avx2"))) inline void Pack4Avx2(
    const double* c0, const double* c1, const double* c2, const double* c3,
    double* dst, int64_t stride, int64_t n) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d r0 = _mm256_loadu_pd(c0 + i);
    const __m256d r1 = _mm256_loadu_pd(c1 + i);
    const __m256d r2 = _mm256_loadu_pd(c2 + i);
    const __m256d r3 = _mm256_loadu_pd(c3 + i);
    const __m256d t0 = _mm256_unpacklo_pd(r0, r1);
    const __m256d t1 = _mm256_unpackhi_pd(r0, r1);
    const __m256d t2 = _mm256_unpacklo_pd(r2, r3);
    const __m256d t3 = _mm256_unpackhi_pd(r2, r3);
    double* d = dst + i * stride;
    _mm256_storeu_pd(d, _mm256_permute2f128_pd(t0, t2, 0x20));
    _mm256_storeu_pd(d + stride, _mm256_permute2f128_pd(t1, t3, 0x20));
    _mm256_storeu_pd(d + 2 * stride, _mm256_permute2f128_pd(t0, t2, 0x31));
    _mm256_storeu_pd(d + 3 * stride, _mm256_permute2f128_pd(t1, t3, 0x31));
  }
  for (; i < n; ++i) {
    double* d = dst + i * stride;
    d[0] = c0[i];
    d[1] = c1[i];
    d[2] = c2[i];
    d[3] = c3[i];
  }
}

__attribute__((target("avx2"))) inline void Unpack4Avx2(
    const double* src, int64_t stride, int64_t n, double* c0, double* c1,
    double* c2, double* c3) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double* s = src + i * stride;
    const __m256d r0 = _mm256_loadu_pd(s);
    const __m256d r1 = _mm256_loadu_pd(s + stride);
    const __m256d r2 = _mm256_loadu_pd(s + 2 * stride);
    const __m256d r3 = _mm256_loadu_pd(s + 3 * stride);
    const __m256d t0 = _mm256_unpacklo_pd(r0, r1);
    const __m256d t1 = _mm256_unpackhi_pd(r0, r1);
    const __m256d t2 = _mm256_unpacklo_pd(r2, r3);
    const __m256d t3 = _mm256_unpackhi_pd(r2, r3);
    _mm256_storeu_pd(c0 + i, _mm256_permute2f128_pd(t0, t2, 0x20));
    _mm256_storeu_pd(c1 + i, _mm256_permute2f128_pd(t1, t3, 0x20));
    _mm256_storeu_pd(c2 + i, _mm256_permute2f128_pd(t0, t2, 0x31));
    _mm256_storeu_pd(c3 + i, _mm256_permute2f128_pd(t1, t3, 0x31));
  }
  for (; i < n; ++i) {
    const double* s = src + i * stride;
    c0[i] = s[0];
    c1[i] = s[1];
    c2[i] = s[2];
    c3[i] = s[3];
  }
}

// Four dot products sharing one pass over `v`: out[q] = Σ v[i]*c_q[i].
__attribute__((target("avx2,fma"))) inline void Dot4Avx2(
    const double* v, const double* c0, const double* c1, const double* c2,
    const double* c3, int64_t n, double out[4]) {
  __m256d a0 = _mm256_setzero_pd();
  __m256d a1 = _mm256_setzero_pd();
  __m256d a2 = _mm256_setzero_pd();
  __m256d a3 = _mm256_setzero_pd();
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d vv = _mm256_loadu_pd(v + i);
    a0 = _mm256_fmadd_pd(vv, _mm256_loadu_pd(c0 + i), a0);
    a1 = _mm256_fmadd_pd(vv, _mm256_loadu_pd(c1 + i), a1);
    a2 = _mm256_fmadd_pd(vv, _mm256_loadu_pd(c2 + i), a2);
    a3 = _mm256_fmadd_pd(vv, _mm256_loadu_pd(c3 + i), a3);
  }
  out[0] = HSumAvx2(a0);
  out[1] = HSumAvx2(a1);
  out[2] = HSumAvx2(a2);
  out[3] = HSumAvx2(a3);
  for (; i < n; ++i) {
    out[0] += v[i] * c0[i];
    out[1] += v[i] * c1[i];
    out[2] += v[i] * c2[i];
    out[3] += v[i] * c3[i];
  }
}

// Rank-4 update: y[i] += a0*x0[i] + a1*x1[i] + a2*x2[i] + a3*x3[i], with the
// same left-to-right association as the scalar fallback.
__attribute__((target("avx2"))) inline void Axpy4Avx2(
    const double a[4], const double* x0, const double* x1, const double* x2,
    const double* x3, double* y, int64_t n) {
  const __m256d va0 = _mm256_set1_pd(a[0]);
  const __m256d va1 = _mm256_set1_pd(a[1]);
  const __m256d va2 = _mm256_set1_pd(a[2]);
  const __m256d va3 = _mm256_set1_pd(a[3]);
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d acc = _mm256_loadu_pd(y + i);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(va0, _mm256_loadu_pd(x0 + i)));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(va1, _mm256_loadu_pd(x1 + i)));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(va2, _mm256_loadu_pd(x2 + i)));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(va3, _mm256_loadu_pd(x3 + i)));
    _mm256_storeu_pd(y + i, acc);
  }
  for (; i < n; ++i) {
    y[i] = (((y[i] + a[0] * x0[i]) + a[1] * x1[i]) + a[2] * x2[i]) +
           a[3] * x3[i];
  }
}

// Four axpys sharing one pass over `x`: y_q[i] += a[q] * x[i].
__attribute__((target("avx2"))) inline void AxpyTo4Avx2(
    const double a[4], const double* x, double* y0, double* y1, double* y2,
    double* y3, int64_t n) {
  const __m256d va0 = _mm256_set1_pd(a[0]);
  const __m256d va1 = _mm256_set1_pd(a[1]);
  const __m256d va2 = _mm256_set1_pd(a[2]);
  const __m256d va3 = _mm256_set1_pd(a[3]);
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d vx = _mm256_loadu_pd(x + i);
    _mm256_storeu_pd(y0 + i, _mm256_add_pd(_mm256_loadu_pd(y0 + i),
                                           _mm256_mul_pd(va0, vx)));
    _mm256_storeu_pd(y1 + i, _mm256_add_pd(_mm256_loadu_pd(y1 + i),
                                           _mm256_mul_pd(va1, vx)));
    _mm256_storeu_pd(y2 + i, _mm256_add_pd(_mm256_loadu_pd(y2 + i),
                                           _mm256_mul_pd(va2, vx)));
    _mm256_storeu_pd(y3 + i, _mm256_add_pd(_mm256_loadu_pd(y3 + i),
                                           _mm256_mul_pd(va3, vx)));
  }
  for (; i < n; ++i) {
    y0[i] += a[0] * x[i];
    y1[i] += a[1] * x[i];
    y2[i] += a[2] * x[i];
    y3[i] += a[3] * x[i];
  }
}

#endif  // RMA_SIMD_AVX2

}  // namespace detail

/// out[i] = a[i] + b[i]
inline void Add(const double* a, const double* b, double* out, int64_t n) {
#if defined(RMA_SIMD_AVX2)
  if (Enabled()) return detail::AddAvx2(a, b, out, n);
#elif defined(RMA_SIMD_NEON)
  if (Enabled()) return detail::AddNeon(a, b, out, n);
#endif
  for (int64_t i = 0; i < n; ++i) out[i] = a[i] + b[i];
}

/// out[i] = a[i] - b[i]
inline void Sub(const double* a, const double* b, double* out, int64_t n) {
#if defined(RMA_SIMD_AVX2)
  if (Enabled()) return detail::SubAvx2(a, b, out, n);
#elif defined(RMA_SIMD_NEON)
  if (Enabled()) return detail::SubNeon(a, b, out, n);
#endif
  for (int64_t i = 0; i < n; ++i) out[i] = a[i] - b[i];
}

/// out[i] = a[i] * b[i]
inline void Mul(const double* a, const double* b, double* out, int64_t n) {
#if defined(RMA_SIMD_AVX2)
  if (Enabled()) return detail::MulAvx2(a, b, out, n);
#elif defined(RMA_SIMD_NEON)
  if (Enabled()) return detail::MulNeon(a, b, out, n);
#endif
  for (int64_t i = 0; i < n; ++i) out[i] = a[i] * b[i];
}

/// y[i] += alpha * x[i]
inline void Axpy(double alpha, const double* x, double* y, int64_t n) {
#if defined(RMA_SIMD_AVX2)
  if (Enabled()) return detail::AxpyAvx2(alpha, x, y, n);
#elif defined(RMA_SIMD_NEON)
  if (Enabled()) return detail::AxpyNeon(alpha, x, y, n);
#endif
  for (int64_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

/// x[i] *= alpha
inline void Scale(double alpha, double* x, int64_t n) {
#if defined(RMA_SIMD_AVX2)
  if (Enabled()) return detail::ScaleAvx2(alpha, x, n);
#elif defined(RMA_SIMD_NEON)
  if (Enabled()) return detail::ScaleNeon(alpha, x, n);
#endif
  for (int64_t i = 0; i < n; ++i) x[i] *= alpha;
}

/// Σ a[i] * b[i] — lane-associated; not bit-identical to the scalar fold.
inline double Dot(const double* a, const double* b, int64_t n) {
#if defined(RMA_SIMD_AVX2)
  if (Enabled()) return detail::DotAvx2(a, b, n);
#elif defined(RMA_SIMD_NEON)
  if (Enabled()) return detail::DotNeon(a, b, n);
#endif
  double s = 0.0;
  for (int64_t i = 0; i < n; ++i) s += a[i] * b[i];
  return s;
}

/// Σ a[i] — lane-associated.
inline double Sum(const double* a, int64_t n) {
#if defined(RMA_SIMD_AVX2)
  if (Enabled()) return detail::SumAvx2(a, n);
#elif defined(RMA_SIMD_NEON)
  if (Enabled()) return detail::SumNeon(a, n);
#endif
  double s = 0.0;
  for (int64_t i = 0; i < n; ++i) s += a[i];
  return s;
}

/// Interleaves four equal-length columns into rows of four:
/// dst[i*stride + {0,1,2,3}] = {c0[i], c1[i], c2[i], c3[i]}. Requires
/// stride >= 4. Pure data movement, so bit-identical across paths.
inline void Pack4(const double* c0, const double* c1, const double* c2,
                  const double* c3, double* dst, int64_t stride, int64_t n) {
#if defined(RMA_SIMD_AVX2)
  if (Enabled()) return detail::Pack4Avx2(c0, c1, c2, c3, dst, stride, n);
#endif
  for (int64_t i = 0; i < n; ++i) {
    double* d = dst + i * stride;
    d[0] = c0[i];
    d[1] = c1[i];
    d[2] = c2[i];
    d[3] = c3[i];
  }
}

/// Inverse of Pack4: c?[i] = src[i*stride + ?].
inline void Unpack4(const double* src, int64_t stride, int64_t n, double* c0,
                    double* c1, double* c2, double* c3) {
#if defined(RMA_SIMD_AVX2)
  if (Enabled()) return detail::Unpack4Avx2(src, stride, n, c0, c1, c2, c3);
#endif
  for (int64_t i = 0; i < n; ++i) {
    const double* s = src + i * stride;
    c0[i] = s[0];
    c1[i] = s[1];
    c2[i] = s[2];
    c3[i] = s[3];
  }
}

/// Four dot products sharing one pass over `v`: out[q] = Σ v[i]*c_q[i].
/// Lane-associated like Dot.
inline void Dot4(const double* v, const double* c0, const double* c1,
                 const double* c2, const double* c3, int64_t n,
                 double out[4]) {
#if defined(RMA_SIMD_AVX2)
  if (Enabled()) return detail::Dot4Avx2(v, c0, c1, c2, c3, n, out);
#endif
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    s0 += v[i] * c0[i];
    s1 += v[i] * c1[i];
    s2 += v[i] * c2[i];
    s3 += v[i] * c3[i];
  }
  out[0] = s0;
  out[1] = s1;
  out[2] = s2;
  out[3] = s3;
}

/// Rank-4 update: y[i] += a[0]*x0[i] + a[1]*x1[i] + a[2]*x2[i] + a[3]*x3[i]
/// (left-to-right association in both paths, so modes agree bitwise).
inline void Axpy4(const double a[4], const double* x0, const double* x1,
                  const double* x2, const double* x3, double* y, int64_t n) {
#if defined(RMA_SIMD_AVX2)
  if (Enabled()) return detail::Axpy4Avx2(a, x0, x1, x2, x3, y, n);
#endif
  for (int64_t i = 0; i < n; ++i) {
    y[i] = (((y[i] + a[0] * x0[i]) + a[1] * x1[i]) + a[2] * x2[i]) +
           a[3] * x3[i];
  }
}

/// Four axpys sharing one pass over `x`: y_q[i] += a[q] * x[i]. Per-element
/// identical to four Axpy calls.
inline void AxpyTo4(const double a[4], const double* x, double* y0, double* y1,
                    double* y2, double* y3, int64_t n) {
#if defined(RMA_SIMD_AVX2)
  if (Enabled()) return detail::AxpyTo4Avx2(a, x, y0, y1, y2, y3, n);
#endif
  for (int64_t i = 0; i < n; ++i) {
    y0[i] += a[0] * x[i];
    y1[i] += a[1] * x[i];
    y2[i] += a[2] * x[i];
    y3[i] += a[3] * x[i];
  }
}

/// Σ a[i]² — lane-associated.
inline double SumSquares(const double* a, int64_t n) {
#if defined(RMA_SIMD_AVX2)
  if (Enabled()) return detail::SumSquaresAvx2(a, n);
#elif defined(RMA_SIMD_NEON)
  if (Enabled()) return detail::SumSquaresNeon(a, n);
#endif
  double s = 0.0;
  for (int64_t i = 0; i < n; ++i) s += a[i] * a[i];
  return s;
}

}  // namespace simd
}  // namespace rma

#endif  // RMA_MATRIX_SIMD_H_
