#ifndef RMA_MATRIX_SVD_H_
#define RMA_MATRIX_SVD_H_

#include <vector>

#include "matrix/dense_matrix.h"
#include "util/result.h"

namespace rma {

/// Singular value decomposition A = U · diag(σ) · Vᵀ.
struct SvdResult {
  DenseMatrix u;              ///< m×p thin left singular vectors (p=min(m,k)).
  std::vector<double> sigma;  ///< p singular values, descending.
  DenseMatrix v;              ///< k×p right singular vectors.
};

/// One-sided Jacobi SVD (robust, dependency-free). Handles any shape.
Result<SvdResult> Svd(const DenseMatrix& a);

/// Full m×m left factor: the thin U completed to an orthonormal basis
/// (extra columns correspond to singular value 0). Backs the paper's USV,
/// whose shape type (r1,r1) prescribes an |r|×|r| result.
Result<DenseMatrix> SvdFullU(const DenseMatrix& a);

/// Numerical rank: number of singular values above
/// max(m,k)·σ_max·eps_factor (R's qr()/Matrix::rankMatrix convention).
Result<int64_t> MatrixRank(const DenseMatrix& a, double eps_factor = 1e-12);

}  // namespace rma

#endif  // RMA_MATRIX_SVD_H_
