#ifndef RMA_MATRIX_LU_H_
#define RMA_MATRIX_LU_H_

#include "matrix/dense_matrix.h"
#include "util/result.h"

namespace rma {

/// LU factorization with partial pivoting, packed in-place (L unit-lower,
/// U upper). `piv[k]` is the row swapped into position k; `*sign` is the
/// permutation parity (+1/-1). Returns NumericError for singular input.
Status LuDecompose(DenseMatrix* a, std::vector<int64_t>* piv, int* sign);

/// det(A) for square A (0.0 for exactly-singular input).
Result<double> Determinant(DenseMatrix a);

/// A⁻¹ via Gauss-Jordan with partial pivoting; NumericError when singular.
Result<DenseMatrix> Inverse(DenseMatrix a);

/// Solves A·X = B for square non-singular A (X has the shape of B).
Result<DenseMatrix> SolveSquare(DenseMatrix a, DenseMatrix b);

/// Solves min ‖A·x − b‖₂ via QR for m×n A with m ≥ n (exact solve when
/// square). This implements the paper's `sol` on rectangular inputs.
Result<DenseMatrix> SolveLeastSquares(const DenseMatrix& a,
                                      const DenseMatrix& b);

}  // namespace rma

#endif  // RMA_MATRIX_LU_H_
