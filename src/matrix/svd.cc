#include "matrix/svd.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "matrix/qr.h"

namespace rma {

namespace {

// One-sided Jacobi on W (m×k, m >= k): rotates column pairs until mutually
// orthogonal; V accumulates the rotations.
void OneSidedJacobi(DenseMatrix* w, DenseMatrix* v) {
  const int64_t m = w->rows();
  const int64_t k = w->cols();
  *v = DenseMatrix::Identity(k);
  constexpr double kTol = 1e-14;
  constexpr int kMaxSweeps = 60;
  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    bool rotated = false;
    for (int64_t p = 0; p < k - 1; ++p) {
      for (int64_t q = p + 1; q < k; ++q) {
        double alpha = 0.0;
        double beta = 0.0;
        double gamma = 0.0;
        for (int64_t i = 0; i < m; ++i) {
          const double wp = (*w)(i, p);
          const double wq = (*w)(i, q);
          alpha += wp * wp;
          beta += wq * wq;
          gamma += wp * wq;
        }
        if (std::fabs(gamma) <= kTol * std::sqrt(alpha * beta)) continue;
        rotated = true;
        const double zeta = (beta - alpha) / (2.0 * gamma);
        const double t = (zeta >= 0 ? 1.0 : -1.0) /
                         (std::fabs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        for (int64_t i = 0; i < m; ++i) {
          const double wp = (*w)(i, p);
          const double wq = (*w)(i, q);
          (*w)(i, p) = c * wp - s * wq;
          (*w)(i, q) = s * wp + c * wq;
        }
        for (int64_t i = 0; i < k; ++i) {
          const double vp = (*v)(i, p);
          const double vq = (*v)(i, q);
          (*v)(i, p) = c * vp - s * vq;
          (*v)(i, q) = s * vp + c * vq;
        }
      }
    }
    if (!rotated) break;
  }
}

Result<SvdResult> SvdTall(const DenseMatrix& a) {
  const int64_t m = a.rows();
  const int64_t k = a.cols();
  DenseMatrix w = a;
  DenseMatrix v;
  OneSidedJacobi(&w, &v);
  SvdResult out;
  out.sigma.assign(static_cast<size_t>(k), 0.0);
  out.u = DenseMatrix(m, k, 0.0);
  out.v = DenseMatrix(k, k, 0.0);
  // Column norms are the singular values; sort descending.
  std::vector<double> norms(static_cast<size_t>(k), 0.0);
  for (int64_t j = 0; j < k; ++j) {
    double s = 0.0;
    for (int64_t i = 0; i < m; ++i) s += w(i, j) * w(i, j);
    norms[static_cast<size_t>(j)] = std::sqrt(s);
  }
  std::vector<int64_t> order(static_cast<size_t>(k));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&norms](int64_t x, int64_t y) {
    return norms[static_cast<size_t>(x)] > norms[static_cast<size_t>(y)];
  });
  for (int64_t j = 0; j < k; ++j) {
    const int64_t src = order[static_cast<size_t>(j)];
    const double sigma = norms[static_cast<size_t>(src)];
    out.sigma[static_cast<size_t>(j)] = sigma;
    if (sigma > 0.0) {
      for (int64_t i = 0; i < m; ++i) out.u(i, j) = w(i, src) / sigma;
    }
    for (int64_t i = 0; i < k; ++i) out.v(i, j) = v(i, src);
  }
  // Deterministic sign convention: the largest-|u| entry of each singular
  // pair is positive. The choice is row-permutation equivariant, which keeps
  // usv/vsv results consistent under the sort-avoidance optimization.
  for (int64_t j = 0; j < k; ++j) {
    int64_t arg = 0;
    double best = -1.0;
    for (int64_t i = 0; i < m; ++i) {
      const double v_abs = std::fabs(out.u(i, j));
      if (v_abs > best) {
        best = v_abs;
        arg = i;
      }
    }
    if (out.u(arg, j) < 0.0) {
      for (int64_t i = 0; i < m; ++i) out.u(i, j) = -out.u(i, j);
      for (int64_t i = 0; i < k; ++i) out.v(i, j) = -out.v(i, j);
    }
  }
  return out;
}

}  // namespace

Result<SvdResult> Svd(const DenseMatrix& a) {
  if (a.empty()) return Status::Invalid("svd: empty matrix");
  if (a.rows() >= a.cols()) return SvdTall(a);
  // Wide matrix: factor the transpose and swap the roles of U and V.
  RMA_ASSIGN_OR_RETURN(SvdResult t, SvdTall(a.Transposed()));
  SvdResult out;
  out.sigma = std::move(t.sigma);
  out.u = std::move(t.v);
  out.v = std::move(t.u);
  return out;
}

Result<DenseMatrix> SvdFullU(const DenseMatrix& a) {
  RMA_ASSIGN_OR_RETURN(SvdResult s, Svd(a));
  if (s.u.cols() == s.u.rows()) return s.u;
  // Complete the thin U to an orthonormal basis of R^m: QR of U with the
  // Householder reflectors extended to the full m×m Q. Since U's non-null
  // columns are orthonormal, the leading columns of Q reproduce them.
  DenseMatrix q;
  RMA_RETURN_NOT_OK(FullQ(s.u, &q));
  return q;
}

Result<int64_t> MatrixRank(const DenseMatrix& a, double eps_factor) {
  RMA_ASSIGN_OR_RETURN(SvdResult s, Svd(a));
  if (s.sigma.empty()) return static_cast<int64_t>(0);
  const double cutoff = static_cast<double>(std::max(a.rows(), a.cols())) *
                        s.sigma.front() * eps_factor;
  int64_t rank = 0;
  for (double v : s.sigma) rank += (v > cutoff && v > 0.0);
  return rank;
}

}  // namespace rma
