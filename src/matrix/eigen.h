#ifndef RMA_MATRIX_EIGEN_H_
#define RMA_MATRIX_EIGEN_H_

#include <vector>

#include "matrix/dense_matrix.h"
#include "util/result.h"

namespace rma {

/// True if the matrix is square and symmetric within `tol`.
bool IsSymmetric(const DenseMatrix& a, double tol = 1e-10);

/// Eigen decomposition of a symmetric matrix via cyclic Jacobi.
/// `values` descending; `vectors` holds the matching eigenvectors as columns.
Status SymmetricEigen(const DenseMatrix& a, std::vector<double>* values,
                      DenseMatrix* vectors);

/// Real eigenvalues of a general square matrix (Hessenberg reduction +
/// shifted QR iteration), sorted descending. Matrices with complex
/// eigenvalues yield NumericError: relations of doubles cannot represent
/// them (documented substitution; R would return complex values).
Status GeneralEigenvalues(const DenseMatrix& a, std::vector<double>* values);

/// Dispatch used by the RMA evl/evc operations: symmetric input uses the
/// Jacobi path; general input falls back to GeneralEigenvalues (evl only —
/// evc requires a symmetric matrix).
Status Eigenvalues(const DenseMatrix& a, std::vector<double>* values);

}  // namespace rma

#endif  // RMA_MATRIX_EIGEN_H_
