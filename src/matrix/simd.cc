#include "matrix/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace rma {
namespace simd {

namespace {

// -1 = use detection, 0 = forced scalar (test hook).
std::atomic<int> g_force_scalar{-1};

bool EnvDisabled() {
  const char* v = std::getenv("RMA_NO_SIMD");
  return v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0;
}

int DetectWidth() {
  if (EnvDisabled()) return 1;
#if defined(RMA_SIMD_AVX2)
  // The reduction kernels contract with FMA, so require both. CPUs with AVX2
  // but no FMA are effectively nonexistent.
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return 4;
  }
#elif defined(RMA_SIMD_NEON)
  return 2;
#endif
  return 1;
}

int DetectedWidth() {
  static const int width = DetectWidth();
  return width;
}

}  // namespace

bool Enabled() { return Width() > 1; }

int Width() {
  if (g_force_scalar.load(std::memory_order_relaxed) == 0) return 1;
  return DetectedWidth();
}

const char* IsaName() {
  if (Width() <= 1) return "scalar";
#if defined(RMA_SIMD_AVX2)
  return "avx2";
#elif defined(RMA_SIMD_NEON)
  return "neon";
#else
  return "scalar";
#endif
}

std::string Describe() {
  const int w = Width();
  if (w <= 1) return "scalar";
  return std::string(IsaName()) + "x" + std::to_string(w);
}

void ForceScalar(bool on) {
  g_force_scalar.store(on ? 0 : -1, std::memory_order_relaxed);
}

}  // namespace simd
}  // namespace rma
