#ifndef RMA_BASELINES_SCIDBLIKE_SCIDB_H_
#define RMA_BASELINES_SCIDBLIKE_SCIDB_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/relation.h"
#include "util/result.h"

namespace rma::baselines::scidblike {

/// Simulation of SciDB's array engine (Table 7): data lives in chunked
/// one-dimensional coordinate space with multiple attributes per cell.
/// Element-wise operations between two arrays require an *array join*
/// (aligning cells by coordinate through per-chunk coordinate indexes)
/// before the values can be combined — the cost that makes SciDB an order
/// of magnitude slower than RMA+ on add-plus-selection.
class ChunkedArray {
 public:
  static constexpr int64_t kChunkSize = 4096;

  /// Builds an array from a relation; `dim` names the INT coordinate
  /// attribute, all other attributes become cell attributes.
  static Result<ChunkedArray> FromRelation(const Relation& r,
                                           const std::string& dim);

  int64_t num_cells() const { return num_cells_; }
  int num_attributes() const { return static_cast<int>(attr_names_.size()); }

  /// Element-wise sum via array join: for each cell of `this`, the matching
  /// coordinate is located in `other` through its chunk indexes.
  Result<ChunkedArray> AddJoin(const ChunkedArray& other) const;

  /// Filter cells by a predicate on one attribute, then export the result
  /// as a relation (the "add followed by a selection" query of Table 7).
  Result<Relation> FilterToRelation(const std::string& attr,
                                    const std::string& op, double threshold,
                                    std::string name = "scidb") const;

 private:
  struct Chunk {
    std::vector<int64_t> coords;              // cell coordinates
    std::vector<std::vector<double>> values;  // per attribute
    std::unordered_map<int64_t, int64_t> index;  // coord -> offset (lazy)
  };

  const Chunk* FindChunk(int64_t coord) const;

  std::vector<std::string> attr_names_;
  std::vector<Chunk> chunks_;
  int64_t num_cells_ = 0;
};

}  // namespace rma::baselines::scidblike

#endif  // RMA_BASELINES_SCIDBLIKE_SCIDB_H_
