#include "baselines/scidblike/scidb.h"

#include <algorithm>

namespace rma::baselines::scidblike {

Result<ChunkedArray> ChunkedArray::FromRelation(const Relation& r,
                                                const std::string& dim) {
  RMA_ASSIGN_OR_RETURN(int dim_idx, r.schema().IndexOf(dim));
  if (r.schema().attribute(dim_idx).type != DataType::kInt64) {
    return Status::TypeError("SciDB dimension must be an integer attribute");
  }
  ChunkedArray arr;
  for (int c = 0; c < r.num_columns(); ++c) {
    if (c == dim_idx) continue;
    if (!IsNumeric(r.schema().attribute(c).type)) {
      return Status::TypeError("SciDB cell attributes must be numeric");
    }
    arr.attr_names_.push_back(r.schema().attribute(c).name);
  }
  const int64_t n = r.num_rows();
  arr.num_cells_ = n;
  const Bat& dims = *r.column(dim_idx);
  for (int64_t start = 0; start < n; start += kChunkSize) {
    const int64_t end = std::min(n, start + kChunkSize);
    Chunk chunk;
    chunk.coords.reserve(static_cast<size_t>(end - start));
    for (int64_t i = start; i < end; ++i) {
      chunk.coords.push_back(static_cast<int64_t>(dims.GetDouble(i)));
    }
    for (int c = 0; c < r.num_columns(); ++c) {
      if (c == dim_idx) continue;
      std::vector<double> v;
      v.reserve(static_cast<size_t>(end - start));
      const Bat& col = *r.column(c);
      for (int64_t i = start; i < end; ++i) v.push_back(col.GetDouble(i));
      chunk.values.push_back(std::move(v));
    }
    // Coordinate index for array joins.
    chunk.index.reserve(chunk.coords.size());
    for (size_t i = 0; i < chunk.coords.size(); ++i) {
      chunk.index.emplace(chunk.coords[i], static_cast<int64_t>(i));
    }
    arr.chunks_.push_back(std::move(chunk));
  }
  return arr;
}

const ChunkedArray::Chunk* ChunkedArray::FindChunk(int64_t coord) const {
  // Chunks are coordinate-ranged in SciDB; our generator loads cells in
  // coordinate order, so locate by binary search over chunk boundaries,
  // falling back to a scan for unordered loads.
  int64_t lo = 0;
  int64_t hi = static_cast<int64_t>(chunks_.size()) - 1;
  while (lo <= hi) {
    const int64_t mid = (lo + hi) / 2;
    const Chunk& c = chunks_[static_cast<size_t>(mid)];
    if (coord < c.coords.front()) {
      hi = mid - 1;
    } else if (coord > c.coords.back()) {
      lo = mid + 1;
    } else {
      return &c;
    }
  }
  return nullptr;
}

Result<ChunkedArray> ChunkedArray::AddJoin(const ChunkedArray& other) const {
  if (num_attributes() != other.num_attributes()) {
    return Status::Invalid("array join: attribute counts differ");
  }
  ChunkedArray out;
  out.attr_names_ = attr_names_;
  out.num_cells_ = 0;
  for (const Chunk& chunk : chunks_) {
    Chunk joined;
    joined.coords.reserve(chunk.coords.size());
    joined.values.assign(static_cast<size_t>(num_attributes()), {});
    for (size_t i = 0; i < chunk.coords.size(); ++i) {
      const int64_t coord = chunk.coords[i];
      // Array join: locate the matching cell in `other` by coordinate.
      const Chunk* oc = other.FindChunk(coord);
      if (oc == nullptr) continue;
      auto it = oc->index.find(coord);
      if (it == oc->index.end()) continue;
      joined.coords.push_back(coord);
      for (int a = 0; a < num_attributes(); ++a) {
        joined.values[static_cast<size_t>(a)].push_back(
            chunk.values[static_cast<size_t>(a)][i] +
            oc->values[static_cast<size_t>(a)][static_cast<size_t>(it->second)]);
      }
    }
    joined.index.reserve(joined.coords.size());
    for (size_t i = 0; i < joined.coords.size(); ++i) {
      joined.index.emplace(joined.coords[i], static_cast<int64_t>(i));
    }
    out.num_cells_ += static_cast<int64_t>(joined.coords.size());
    out.chunks_.push_back(std::move(joined));
  }
  return out;
}

Result<Relation> ChunkedArray::FilterToRelation(const std::string& attr,
                                                const std::string& op,
                                                double threshold,
                                                std::string name) const {
  int attr_idx = -1;
  for (size_t i = 0; i < attr_names_.size(); ++i) {
    if (attr_names_[i] == attr) attr_idx = static_cast<int>(i);
  }
  if (attr_idx < 0) return Status::KeyError("array has no attribute " + attr);
  std::vector<int64_t> coords;
  std::vector<std::vector<double>> vals(attr_names_.size());
  for (const Chunk& chunk : chunks_) {
    const auto& col = chunk.values[static_cast<size_t>(attr_idx)];
    for (size_t i = 0; i < chunk.coords.size(); ++i) {
      const double v = col[i];
      bool keep = false;
      if (op == "<") keep = v < threshold;
      else if (op == "<=") keep = v <= threshold;
      else if (op == ">") keep = v > threshold;
      else if (op == ">=") keep = v >= threshold;
      else if (op == "==") keep = v == threshold;
      else return Status::Invalid("unknown op " + op);
      if (!keep) continue;
      coords.push_back(chunk.coords[i]);
      for (size_t a = 0; a < attr_names_.size(); ++a) {
        vals[a].push_back(chunk.values[a][i]);
      }
    }
  }
  std::vector<Attribute> attrs = {{"coord", DataType::kInt64}};
  std::vector<BatPtr> cols = {MakeInt64Bat(std::move(coords))};
  for (size_t a = 0; a < attr_names_.size(); ++a) {
    attrs.push_back(Attribute{attr_names_[a], DataType::kDouble});
    cols.push_back(MakeDoubleBat(std::move(vals[a])));
  }
  return Relation::Make(Schema::Make(std::move(attrs)).ValueOrDie(),
                        std::move(cols), std::move(name));
}

}  // namespace rma::baselines::scidblike
