#include "baselines/madliblike/madlib.h"

#include <unordered_map>

#include "matrix/lu.h"

namespace rma::baselines::madliblike {

RowTable RowTable::FromRelation(const Relation& r) {
  RowTable t;
  t.names_ = r.schema().Names();
  for (const auto& a : r.schema().attributes()) t.types_.push_back(a.type);
  const int64_t n = r.num_rows();
  t.rows_.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    std::vector<Value> row;
    row.reserve(t.names_.size());
    for (int c = 0; c < r.num_columns(); ++c) row.push_back(r.Get(i, c));
    t.rows_.push_back(std::move(row));
  }
  return t;
}

Relation RowTable::ToRelation(std::string name) const {
  std::vector<Attribute> attrs;
  for (size_t c = 0; c < names_.size(); ++c) {
    attrs.push_back(Attribute{names_[c], types_[c]});
  }
  RelationBuilder b(Schema::Make(std::move(attrs)).ValueOrDie());
  for (const auto& row : rows_) b.AppendRow(row).Abort();
  return b.Finish(std::move(name)).ValueOrDie();
}

Result<int> RowTable::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<int>(i);
  }
  return Status::KeyError("row table has no column " + name);
}

RowTable RowTable::Filter(
    const std::function<bool(const std::vector<Value>&)>& pred) const {
  RowTable out;
  out.names_ = names_;
  out.types_ = types_;
  for (const auto& row : rows_) {
    if (pred(row)) out.rows_.push_back(row);
  }
  return out;
}

Result<RowTable> RowTable::Join(const RowTable& other, const std::string& key,
                                const std::string& other_key) const {
  RMA_ASSIGN_OR_RETURN(int kc, ColumnIndex(key));
  RMA_ASSIGN_OR_RETURN(int okc, other.ColumnIndex(other_key));
  std::unordered_map<std::string, std::vector<int64_t>> index;
  for (int64_t i = 0; i < other.num_rows(); ++i) {
    index[ValueToString(other.rows_[static_cast<size_t>(i)]
                                   [static_cast<size_t>(okc)])]
        .push_back(i);
  }
  RowTable out;
  out.names_ = names_;
  out.types_ = types_;
  for (size_t c = 0; c < other.names_.size(); ++c) {
    std::string nm = other.names_[c];
    auto taken = [&out](const std::string& n) {
      for (const auto& existing : out.names_) {
        if (existing == n) return true;
      }
      return false;
    };
    while (taken(nm)) nm += "_2";
    out.names_.push_back(nm);
    out.types_.push_back(other.types_[c]);
  }
  for (const auto& row : rows_) {
    auto it = index.find(ValueToString(row[static_cast<size_t>(kc)]));
    if (it == index.end()) continue;
    for (int64_t m : it->second) {
      std::vector<Value> joined = row;
      const auto& orow = other.rows_[static_cast<size_t>(m)];
      joined.insert(joined.end(), orow.begin(), orow.end());
      out.rows_.push_back(std::move(joined));
    }
  }
  return out;
}

Result<RowTable> RowTable::GroupCount(
    const std::vector<std::string>& keys) const {
  std::vector<int> kc;
  for (const auto& k : keys) {
    RMA_ASSIGN_OR_RETURN(int i, ColumnIndex(k));
    kc.push_back(i);
  }
  std::unordered_map<std::string, int64_t> group_of;
  RowTable out;
  for (int k : kc) {
    out.names_.push_back(names_[static_cast<size_t>(k)]);
    out.types_.push_back(types_[static_cast<size_t>(k)]);
  }
  out.names_.push_back("n");
  out.types_.push_back(DataType::kInt64);
  for (const auto& row : rows_) {
    std::string key;
    for (int k : kc) {
      key += ValueToString(row[static_cast<size_t>(k)]);
      key += '\x1f';
    }
    auto [it, inserted] =
        group_of.emplace(key, static_cast<int64_t>(out.rows_.size()));
    if (inserted) {
      std::vector<Value> grow;
      for (int k : kc) grow.push_back(row[static_cast<size_t>(k)]);
      grow.push_back(Value(int64_t{0}));
      out.rows_.push_back(std::move(grow));
    }
    Value& cnt = out.rows_[static_cast<size_t>(it->second)].back();
    cnt = Value(std::get<int64_t>(cnt) + 1);
  }
  return out;
}

Result<RowTable> RowTable::GroupMean(const std::vector<std::string>& keys,
                                     const std::string& value) const {
  std::vector<int> kc;
  for (const auto& k : keys) {
    RMA_ASSIGN_OR_RETURN(int i, ColumnIndex(k));
    kc.push_back(i);
  }
  RMA_ASSIGN_OR_RETURN(int vc, ColumnIndex(value));
  std::unordered_map<std::string, int64_t> group_of;
  RowTable out;
  for (int k : kc) {
    out.names_.push_back(names_[static_cast<size_t>(k)]);
    out.types_.push_back(types_[static_cast<size_t>(k)]);
  }
  out.names_.push_back("n");
  out.types_.push_back(DataType::kInt64);
  out.names_.push_back("mean");
  out.types_.push_back(DataType::kDouble);
  std::vector<double> sums;
  for (const auto& row : rows_) {
    std::string key;
    for (int k : kc) {
      key += ValueToString(row[static_cast<size_t>(k)]);
      key += '\x1f';
    }
    auto [it, inserted] =
        group_of.emplace(key, static_cast<int64_t>(out.rows_.size()));
    if (inserted) {
      std::vector<Value> grow;
      for (int k : kc) grow.push_back(row[static_cast<size_t>(k)]);
      grow.push_back(Value(int64_t{0}));
      grow.push_back(Value(0.0));
      out.rows_.push_back(std::move(grow));
      sums.push_back(0.0);
    }
    auto& grow = out.rows_[static_cast<size_t>(it->second)];
    grow[grow.size() - 2] =
        Value(std::get<int64_t>(grow[grow.size() - 2]) + 1);
    sums[static_cast<size_t>(it->second)] +=
        ValueToDouble(row[static_cast<size_t>(vc)]);
  }
  for (size_t g = 0; g < out.rows_.size(); ++g) {
    auto& grow = out.rows_[g];
    const double n = static_cast<double>(
        std::get<int64_t>(grow[grow.size() - 2]));
    grow.back() = Value(sums[g] / n);
  }
  return out;
}

RowTable RowTable::WithColumn(
    const std::string& name,
    const std::function<double(const std::vector<Value>&)>& fn) const {
  RowTable out = *this;
  out.names_.push_back(name);
  out.types_.push_back(DataType::kDouble);
  for (auto& row : out.rows_) {
    const double v = fn(row);
    row.emplace_back(v);
  }
  return out;
}

Result<std::vector<double>> LinRegr(const RowTable& t,
                                    const std::vector<std::string>& x_cols,
                                    const std::string& y_col) {
  std::vector<int> xc;
  for (const auto& c : x_cols) {
    RMA_ASSIGN_OR_RETURN(int i, t.ColumnIndex(c));
    xc.push_back(i);
  }
  RMA_ASSIGN_OR_RETURN(int yc, t.ColumnIndex(y_col));
  const int k = static_cast<int>(xc.size()) + 1;  // + intercept
  DenseMatrix xtx(k, k, 0.0);
  std::vector<double> xty(static_cast<size_t>(k), 0.0);
  std::vector<double> x(static_cast<size_t>(k), 0.0);
  for (int64_t i = 0; i < t.num_rows(); ++i) {
    const auto& row = t.row(i);
    x[0] = 1.0;
    for (size_t j = 0; j < xc.size(); ++j) {
      x[j + 1] = ValueToDouble(row[static_cast<size_t>(xc[j])]);  // unbox
    }
    const double y = ValueToDouble(row[static_cast<size_t>(yc)]);
    for (int a = 0; a < k; ++a) {
      for (int b = 0; b < k; ++b) {
        xtx(a, b) += x[static_cast<size_t>(a)] * x[static_cast<size_t>(b)];
      }
      xty[static_cast<size_t>(a)] += x[static_cast<size_t>(a)] * y;
    }
  }
  DenseMatrix rhs(k, 1);
  for (int a = 0; a < k; ++a) rhs(a, 0) = xty[static_cast<size_t>(a)];
  RMA_ASSIGN_OR_RETURN(DenseMatrix beta, SolveSquare(std::move(xtx), rhs));
  std::vector<double> out(static_cast<size_t>(k));
  for (int a = 0; a < k; ++a) out[static_cast<size_t>(a)] = beta(a, 0);
  return out;
}

DenseMatrix MatMulSingleCore(const DenseMatrix& a, const DenseMatrix& b) {
  DenseMatrix c(a.rows(), b.cols(), 0.0);
  for (int64_t i = 0; i < a.rows(); ++i) {
    for (int64_t p = 0; p < a.cols(); ++p) {
      const double v = a(i, p);
      if (v == 0.0) continue;
      for (int64_t j = 0; j < b.cols(); ++j) c(i, j) += v * b(p, j);
    }
  }
  return c;
}

DenseMatrix CrossProdSingleCore(const DenseMatrix& a, const DenseMatrix& b) {
  DenseMatrix c(a.cols(), b.cols(), 0.0);
  for (int64_t p = 0; p < a.rows(); ++p) {
    for (int64_t i = 0; i < a.cols(); ++i) {
      const double v = a(p, i);
      if (v == 0.0) continue;
      for (int64_t j = 0; j < b.cols(); ++j) c(i, j) += v * b(p, j);
    }
  }
  return c;
}

Result<DenseMatrix> CovSingleCore(const RowTable& t,
                                  const std::vector<std::string>& cols) {
  RMA_ASSIGN_OR_RETURN(DenseMatrix x, ToMatrix(t, cols));
  const int64_t n = x.rows();
  const int64_t k = x.cols();
  if (n < 2) return Status::Invalid("cov: need at least two rows");
  std::vector<double> mean(static_cast<size_t>(k), 0.0);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < k; ++j) mean[static_cast<size_t>(j)] += x(i, j);
  }
  for (auto& m : mean) m /= static_cast<double>(n);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < k; ++j) x(i, j) -= mean[static_cast<size_t>(j)];
  }
  DenseMatrix c = CrossProdSingleCore(x, x);
  for (int64_t i = 0; i < k; ++i) {
    for (int64_t j = 0; j < k; ++j) c(i, j) /= static_cast<double>(n - 1);
  }
  return c;
}

DenseMatrix AddSingleCore(const DenseMatrix& a, const DenseMatrix& b) {
  DenseMatrix c(a.rows(), a.cols());
  for (int64_t i = 0; i < a.rows(); ++i) {
    for (int64_t j = 0; j < a.cols(); ++j) c(i, j) = a(i, j) + b(i, j);
  }
  return c;
}

Result<DenseMatrix> ToMatrix(const RowTable& t,
                             const std::vector<std::string>& cols) {
  std::vector<int> ci;
  for (const auto& c : cols) {
    RMA_ASSIGN_OR_RETURN(int i, t.ColumnIndex(c));
    ci.push_back(i);
  }
  DenseMatrix m(t.num_rows(), static_cast<int64_t>(ci.size()));
  for (int64_t i = 0; i < t.num_rows(); ++i) {
    const auto& row = t.row(i);
    for (size_t j = 0; j < ci.size(); ++j) {
      m(i, static_cast<int64_t>(j)) =
          ValueToDouble(row[static_cast<size_t>(ci[j])]);
    }
  }
  return m;
}

}  // namespace rma::baselines::madliblike
