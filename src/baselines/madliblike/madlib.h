#ifndef RMA_BASELINES_MADLIBLIKE_MADLIB_H_
#define RMA_BASELINES_MADLIBLIKE_MADLIB_H_

#include <functional>
#include <string>
#include <vector>

#include "matrix/dense_matrix.h"
#include "storage/relation.h"
#include "util/result.h"

namespace rma::baselines::madliblike {

/// Simulation of MADlib on PostgreSQL (Sec. 8): a row store processed one
/// tuple at a time on a single core, with matrix functionality provided by
/// UDFs over boxed values. These are the mechanisms behind MADlib being the
/// slowest competitor in Figs. 15-18 (no parallelism, boxed row access).

/// A PostgreSQL-style heap table: rows of boxed values.
class RowTable {
 public:
  static RowTable FromRelation(const Relation& r);
  Relation ToRelation(std::string name = "r") const;

  const std::vector<std::string>& names() const { return names_; }
  int64_t num_rows() const { return static_cast<int64_t>(rows_.size()); }
  const std::vector<Value>& row(int64_t i) const {
    return rows_[static_cast<size_t>(i)];
  }

  Result<int> ColumnIndex(const std::string& name) const;

  /// Sequential scan with a row predicate (single core).
  RowTable Filter(const std::function<bool(const std::vector<Value>&)>& pred) const;

  /// Single-core hash equi-join on one key column per side.
  Result<RowTable> Join(const RowTable& other, const std::string& key,
                        const std::string& other_key) const;

  /// Single-core grouped count; result columns: keys... , "n".
  Result<RowTable> GroupCount(const std::vector<std::string>& keys) const;

  /// Single-core grouped count + mean; result: keys..., "n", "mean".
  Result<RowTable> GroupMean(const std::vector<std::string>& keys,
                             const std::string& value) const;

  /// Appends a computed double column.
  RowTable WithColumn(const std::string& name,
                      const std::function<double(const std::vector<Value>&)>& fn) const;

 private:
  std::vector<std::string> names_;
  std::vector<DataType> types_;
  std::vector<std::vector<Value>> rows_;
};

/// UDF-style linear regression (madlib.linregr): one pass over the rows,
/// unboxing each value, accumulating XᵀX and Xᵀy, then solving the normal
/// equations single-threaded. Returns the coefficient vector.
Result<std::vector<double>> LinRegr(const RowTable& t,
                                    const std::vector<std::string>& x_cols,
                                    const std::string& y_col);

/// Single-threaded dense kernels (matrix_ops.cpp analogues).
DenseMatrix MatMulSingleCore(const DenseMatrix& a, const DenseMatrix& b);
DenseMatrix CrossProdSingleCore(const DenseMatrix& a, const DenseMatrix& b);
Result<DenseMatrix> CovSingleCore(const RowTable& t,
                                  const std::vector<std::string>& cols);
DenseMatrix AddSingleCore(const DenseMatrix& a, const DenseMatrix& b);

/// Extracts numeric columns to a matrix (row-at-a-time, boxed access).
Result<DenseMatrix> ToMatrix(const RowTable& t,
                             const std::vector<std::string>& cols);

}  // namespace rma::baselines::madliblike

#endif  // RMA_BASELINES_MADLIBLIKE_MADLIB_H_
