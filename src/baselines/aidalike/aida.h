#ifndef RMA_BASELINES_AIDALIKE_AIDA_H_
#define RMA_BASELINES_AIDALIKE_AIDA_H_

#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "matrix/dense_matrix.h"
#include "storage/relation.h"
#include "util/result.h"

namespace rma::baselines::aidalike {

/// Simulation of AIDA (D'silva et al., VLDB'18): relational operations run
/// in the column store (shared with RMA+ — AIDA executes them in MonetDB),
/// while matrix operations run in a Python/NumPy world.
///
/// Costs reproduced (Sec. 8.6(1)):
///  * numeric columns cross the boundary by pointer (zero copy per column;
///    a contiguous 2-D copy is still needed for matrix kernels, exactly
///    like RMA+MKL);
///  * non-numeric columns (dates, times, strings) have incompatible storage
///    formats and must be boxed value-by-value into Python objects — the
///    transformation that makes AIDA up to 6.3x slower on the trips
///    workload, and free on the all-numeric journeys workload.

/// A boxed Python object (strings only — numerics stay as C arrays).
struct PyObject {
  std::string repr;
  int64_t refcount = 1;
};

/// A TabularData column: a borrowed numeric BAT or boxed Python objects.
struct PyColumn {
  std::string name;
  std::variant<BatPtr, std::vector<std::unique_ptr<PyObject>>> data;
};

/// The Python-side view of a relation.
class TabularData {
 public:
  /// Moves a relation into Python: numeric columns are passed as pointers,
  /// non-numeric columns are boxed element by element.
  static TabularData FromRelation(const Relation& r);

  /// Materializes the numeric columns as a contiguous matrix for NumPy.
  Result<DenseMatrix> ToMatrix(const std::vector<std::string>& cols) const;

  /// Moves a NumPy matrix back into the database world.
  static Relation MatrixToRelation(const DenseMatrix& m,
                                   const std::vector<std::string>& names);

  /// Moves all columns back into the database (unboxing strings).
  Relation ToRelation(std::string name = "r") const;

  int64_t num_rows() const { return rows_; }

 private:
  std::vector<PyColumn> columns_;
  int64_t rows_ = 0;
};

}  // namespace rma::baselines::aidalike

#endif  // RMA_BASELINES_AIDALIKE_AIDA_H_
