#include "baselines/aidalike/aida.h"

#include "util/logging.h"

namespace rma::baselines::aidalike {

TabularData TabularData::FromRelation(const Relation& r) {
  TabularData td;
  td.rows_ = r.num_rows();
  for (int c = 0; c < r.num_columns(); ++c) {
    PyColumn col;
    col.name = r.schema().attribute(c).name;
    if (IsNumeric(r.schema().attribute(c).type)) {
      col.data = r.column(c);  // zero-copy pointer pass
    } else {
      // Different storage formats: box each value into a Python object.
      std::vector<std::unique_ptr<PyObject>> boxed;
      boxed.reserve(static_cast<size_t>(td.rows_));
      for (int64_t i = 0; i < td.rows_; ++i) {
        auto obj = std::make_unique<PyObject>();
        obj->repr = r.column(c)->GetString(i);
        boxed.push_back(std::move(obj));
      }
      col.data = std::move(boxed);
    }
    td.columns_.push_back(std::move(col));
  }
  return td;
}

Result<DenseMatrix> TabularData::ToMatrix(
    const std::vector<std::string>& cols) const {
  const int64_t k = static_cast<int64_t>(cols.size());
  DenseMatrix m(rows_, k);
  for (int64_t j = 0; j < k; ++j) {
    const PyColumn* found = nullptr;
    for (const auto& c : columns_) {
      if (c.name == cols[static_cast<size_t>(j)]) {
        found = &c;
        break;
      }
    }
    if (found == nullptr) {
      return Status::KeyError("TabularData has no column " +
                              cols[static_cast<size_t>(j)]);
    }
    const auto* bat = std::get_if<BatPtr>(&found->data);
    if (bat == nullptr) {
      return Status::TypeError("matrix over a boxed (non-numeric) column");
    }
    for (int64_t i = 0; i < rows_; ++i) m(i, j) = (*bat)->GetDouble(i);
  }
  return m;
}

Relation TabularData::MatrixToRelation(const DenseMatrix& m,
                                       const std::vector<std::string>& names) {
  RMA_CHECK(static_cast<int64_t>(names.size()) == m.cols());
  std::vector<Attribute> attrs;
  std::vector<BatPtr> cols;
  for (int64_t j = 0; j < m.cols(); ++j) {
    attrs.push_back(Attribute{names[static_cast<size_t>(j)], DataType::kDouble});
    cols.push_back(MakeDoubleBat(m.Col(j)));
  }
  return Relation::Make(Schema::Make(std::move(attrs)).ValueOrDie(),
                        std::move(cols), "aida")
      .ValueOrDie();
}

Relation TabularData::ToRelation(std::string name) const {
  std::vector<Attribute> attrs;
  std::vector<BatPtr> cols;
  for (const auto& c : columns_) {
    if (const auto* bat = std::get_if<BatPtr>(&c.data)) {
      attrs.push_back(Attribute{c.name, (*bat)->type()});
      cols.push_back(*bat);
    } else {
      const auto& boxed =
          std::get<std::vector<std::unique_ptr<PyObject>>>(c.data);
      std::vector<std::string> v;
      v.reserve(boxed.size());
      for (const auto& o : boxed) v.push_back(o->repr);  // unbox
      attrs.push_back(Attribute{c.name, DataType::kString});
      cols.push_back(MakeStringBat(std::move(v)));
    }
  }
  return Relation::Make(Schema::Make(std::move(attrs)).ValueOrDie(),
                        std::move(cols), std::move(name))
      .ValueOrDie();
}

}  // namespace rma::baselines::aidalike
