#ifndef RMA_BASELINES_RLIKE_RLIKE_H_
#define RMA_BASELINES_RLIKE_RLIKE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <variant>
#include <vector>

#include "matrix/dense_matrix.h"
#include "storage/relation.h"
#include "util/result.h"

namespace rma::baselines::rlike {

/// Simulation of the R/data.table baseline of Sec. 8.
///
/// Architectural costs reproduced (and only those — the numeric kernels are
/// shared with RMA+, as R links a tuned BLAS):
///  * relational operations run on a single core with no query optimizer;
///  * matrix operations require converting data.frame <-> matrix, a full
///    per-element copy (the Fig. 14a transformation share);
///  * everything lives in main memory — loads and conversions beyond
///    `memory_budget_bytes` fail, reproducing the "fail" cells of Table 6.

/// One data.frame column: doubles or strings.
using RColumn = std::variant<std::vector<double>, std::vector<std::string>>;

struct DataFrame {
  std::vector<std::string> names;
  std::vector<RColumn> columns;

  int64_t num_rows() const;
  int64_t ByteSize() const;
  Result<int> ColumnIndex(const std::string& name) const;
  const std::vector<double>& Doubles(int col) const;
  const std::vector<std::string>& Strings(int col) const;
};

/// Engine options (one per benchmark run).
struct Options {
  int64_t memory_budget_bytes = int64_t{8} * 1024 * 1024 * 1024;
};

/// data.frame <- relation (copies; numeric columns widen to double).
DataFrame FromRelation(const Relation& r);
Relation ToRelation(const DataFrame& df, std::string name = "r");

/// Single-threaded hash equi-join (no optimizer: always builds on the left).
Result<DataFrame> InnerJoin(const DataFrame& a, const DataFrame& b,
                            const std::vector<std::string>& akeys,
                            const std::vector<std::string>& bkeys);

/// Single-threaded filter on a numeric column (op: "<" "<=" ">" ">=" "==").
Result<DataFrame> FilterNumeric(const DataFrame& df, const std::string& col,
                                const std::string& op, double threshold);

/// Single-threaded grouped count over key columns; appends column "N".
Result<DataFrame> GroupCount(const DataFrame& df,
                             const std::vector<std::string>& keys);

/// Single-threaded grouped count + mean of `value`; appends "N" and "mean".
Result<DataFrame> GroupMean(const DataFrame& df,
                            const std::vector<std::string>& keys,
                            const std::string& value);

/// Appends a computed double column (row-at-a-time apply()).
DataFrame WithColumn(const DataFrame& df, const std::string& name,
                     const std::function<double(const DataFrame&, int64_t)>& fn);

/// data.frame -> matrix (as.matrix): per-element copy of the named columns;
/// ResourceExhausted beyond the memory budget.
Result<DenseMatrix> AsMatrix(const DataFrame& df,
                             const std::vector<std::string>& cols,
                             const Options& opts);

/// matrix -> data.frame (as.data.frame): per-element copy back.
DataFrame AsDataFrame(const DenseMatrix& m,
                      const std::vector<std::string>& names);

}  // namespace rma::baselines::rlike

#endif  // RMA_BASELINES_RLIKE_RLIKE_H_
