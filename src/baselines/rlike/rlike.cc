#include "baselines/rlike/rlike.h"

#include <unordered_map>

#include "util/logging.h"

namespace rma::baselines::rlike {

int64_t DataFrame::num_rows() const {
  if (columns.empty()) return 0;
  if (const auto* d = std::get_if<std::vector<double>>(&columns[0])) {
    return static_cast<int64_t>(d->size());
  }
  return static_cast<int64_t>(
      std::get<std::vector<std::string>>(columns[0]).size());
}

int64_t DataFrame::ByteSize() const {
  int64_t bytes = 0;
  for (const auto& c : columns) {
    if (const auto* d = std::get_if<std::vector<double>>(&c)) {
      bytes += static_cast<int64_t>(d->size() * sizeof(double));
    } else {
      for (const auto& s : std::get<std::vector<std::string>>(c)) {
        bytes += static_cast<int64_t>(sizeof(std::string) + s.capacity());
      }
    }
  }
  return bytes;
}

Result<int> DataFrame::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return static_cast<int>(i);
  }
  return Status::KeyError("data.frame has no column " + name);
}

const std::vector<double>& DataFrame::Doubles(int col) const {
  return std::get<std::vector<double>>(columns[static_cast<size_t>(col)]);
}
const std::vector<std::string>& DataFrame::Strings(int col) const {
  return std::get<std::vector<std::string>>(columns[static_cast<size_t>(col)]);
}

DataFrame FromRelation(const Relation& r) {
  DataFrame df;
  df.names = r.schema().Names();
  const int64_t n = r.num_rows();
  for (int c = 0; c < r.num_columns(); ++c) {
    if (IsNumeric(r.schema().attribute(c).type)) {
      df.columns.emplace_back(ToDoubleVector(*r.column(c)));
    } else {
      std::vector<std::string> v;
      v.reserve(static_cast<size_t>(n));
      for (int64_t i = 0; i < n; ++i) v.push_back(r.column(c)->GetString(i));
      df.columns.emplace_back(std::move(v));
    }
  }
  return df;
}

Relation ToRelation(const DataFrame& df, std::string name) {
  std::vector<Attribute> attrs;
  std::vector<BatPtr> cols;
  for (size_t c = 0; c < df.columns.size(); ++c) {
    if (const auto* d = std::get_if<std::vector<double>>(&df.columns[c])) {
      attrs.push_back(Attribute{df.names[c], DataType::kDouble});
      cols.push_back(MakeDoubleBat(*d));
    } else {
      attrs.push_back(Attribute{df.names[c], DataType::kString});
      cols.push_back(
          MakeStringBat(std::get<std::vector<std::string>>(df.columns[c])));
    }
  }
  return Relation::Make(Schema::Make(std::move(attrs)).ValueOrDie(),
                        std::move(cols), std::move(name))
      .ValueOrDie();
}

namespace {

std::string KeyOf(const DataFrame& df, const std::vector<int>& key_cols,
                  int64_t row) {
  std::string key;
  for (int c : key_cols) {
    if (const auto* d =
            std::get_if<std::vector<double>>(&df.columns[static_cast<size_t>(c)])) {
      key += std::to_string((*d)[static_cast<size_t>(row)]);
    } else {
      key += df.Strings(c)[static_cast<size_t>(row)];
    }
    key += '\x1f';
  }
  return key;
}

DataFrame TakeRows(const DataFrame& df, const std::vector<int64_t>& idx) {
  DataFrame out;
  out.names = df.names;
  for (const auto& c : df.columns) {
    if (const auto* d = std::get_if<std::vector<double>>(&c)) {
      std::vector<double> v;
      v.reserve(idx.size());
      for (int64_t i : idx) v.push_back((*d)[static_cast<size_t>(i)]);
      out.columns.emplace_back(std::move(v));
    } else {
      const auto& s = std::get<std::vector<std::string>>(c);
      std::vector<std::string> v;
      v.reserve(idx.size());
      for (int64_t i : idx) v.push_back(s[static_cast<size_t>(i)]);
      out.columns.emplace_back(std::move(v));
    }
  }
  return out;
}

}  // namespace

Result<DataFrame> InnerJoin(const DataFrame& a, const DataFrame& b,
                            const std::vector<std::string>& akeys,
                            const std::vector<std::string>& bkeys) {
  if (akeys.size() != bkeys.size() || akeys.empty()) {
    return Status::Invalid("join: bad key lists");
  }
  std::vector<int> ak;
  std::vector<int> bk;
  for (const auto& k : akeys) {
    RMA_ASSIGN_OR_RETURN(int i, a.ColumnIndex(k));
    ak.push_back(i);
  }
  for (const auto& k : bkeys) {
    RMA_ASSIGN_OR_RETURN(int i, b.ColumnIndex(k));
    bk.push_back(i);
  }
  // No optimizer: always build on the left input, string-keyed.
  std::unordered_map<std::string, std::vector<int64_t>> index;
  const int64_t an = a.num_rows();
  for (int64_t i = 0; i < an; ++i) index[KeyOf(a, ak, i)].push_back(i);
  std::vector<int64_t> ai;
  std::vector<int64_t> bi;
  const int64_t bn = b.num_rows();
  for (int64_t i = 0; i < bn; ++i) {
    auto it = index.find(KeyOf(b, bk, i));
    if (it == index.end()) continue;
    for (int64_t m : it->second) {
      ai.push_back(m);
      bi.push_back(i);
    }
  }
  DataFrame left = TakeRows(a, ai);
  DataFrame right = TakeRows(b, bi);
  for (size_t c = 0; c < right.columns.size(); ++c) {
    std::string nm = right.names[c];
    auto taken = [&left](const std::string& n) {
      for (const auto& existing : left.names) {
        if (existing == n) return true;
      }
      return false;
    };
    while (taken(nm)) nm += ".y";
    left.names.push_back(nm);
    left.columns.push_back(std::move(right.columns[c]));
  }
  return left;
}

Result<DataFrame> FilterNumeric(const DataFrame& df, const std::string& col,
                                const std::string& op, double threshold) {
  RMA_ASSIGN_OR_RETURN(int c, df.ColumnIndex(col));
  const auto* d = std::get_if<std::vector<double>>(&df.columns[static_cast<size_t>(c)]);
  if (d == nullptr) return Status::TypeError("filter on non-numeric column");
  std::vector<int64_t> keep;
  for (size_t i = 0; i < d->size(); ++i) {
    const double v = (*d)[i];
    bool ok = false;
    if (op == "<") ok = v < threshold;
    else if (op == "<=") ok = v <= threshold;
    else if (op == ">") ok = v > threshold;
    else if (op == ">=") ok = v >= threshold;
    else if (op == "==") ok = v == threshold;
    else return Status::Invalid("unknown op " + op);
    if (ok) keep.push_back(static_cast<int64_t>(i));
  }
  return TakeRows(df, keep);
}

Result<DataFrame> GroupCount(const DataFrame& df,
                             const std::vector<std::string>& keys) {
  std::vector<int> kc;
  for (const auto& k : keys) {
    RMA_ASSIGN_OR_RETURN(int i, df.ColumnIndex(k));
    kc.push_back(i);
  }
  std::unordered_map<std::string, int64_t> group_of;
  std::vector<int64_t> reps;
  std::vector<double> counts;
  const int64_t n = df.num_rows();
  for (int64_t i = 0; i < n; ++i) {
    const std::string key = KeyOf(df, kc, i);
    auto [it, inserted] = group_of.emplace(key, static_cast<int64_t>(reps.size()));
    if (inserted) {
      reps.push_back(i);
      counts.push_back(0.0);
    }
    counts[static_cast<size_t>(it->second)] += 1.0;
  }
  DataFrame grouped = TakeRows(df, reps);
  DataFrame out;
  for (size_t c = 0; c < kc.size(); ++c) {
    out.names.push_back(df.names[static_cast<size_t>(kc[c])]);
    out.columns.push_back(grouped.columns[static_cast<size_t>(kc[c])]);
  }
  out.names.push_back("N");
  out.columns.emplace_back(std::move(counts));
  return out;
}

Result<DataFrame> GroupMean(const DataFrame& df,
                            const std::vector<std::string>& keys,
                            const std::string& value) {
  std::vector<int> kc;
  for (const auto& k : keys) {
    RMA_ASSIGN_OR_RETURN(int i, df.ColumnIndex(k));
    kc.push_back(i);
  }
  RMA_ASSIGN_OR_RETURN(int vc, df.ColumnIndex(value));
  const auto* vals =
      std::get_if<std::vector<double>>(&df.columns[static_cast<size_t>(vc)]);
  if (vals == nullptr) return Status::TypeError("mean of non-numeric column");
  std::unordered_map<std::string, int64_t> group_of;
  std::vector<int64_t> reps;
  std::vector<double> counts;
  std::vector<double> sums;
  const int64_t n = df.num_rows();
  for (int64_t i = 0; i < n; ++i) {
    const std::string key = KeyOf(df, kc, i);
    auto [it, inserted] =
        group_of.emplace(key, static_cast<int64_t>(reps.size()));
    if (inserted) {
      reps.push_back(i);
      counts.push_back(0.0);
      sums.push_back(0.0);
    }
    counts[static_cast<size_t>(it->second)] += 1.0;
    sums[static_cast<size_t>(it->second)] += (*vals)[static_cast<size_t>(i)];
  }
  DataFrame grouped = TakeRows(df, reps);
  DataFrame out;
  for (size_t c = 0; c < kc.size(); ++c) {
    out.names.push_back(df.names[static_cast<size_t>(kc[c])]);
    out.columns.push_back(grouped.columns[static_cast<size_t>(kc[c])]);
  }
  std::vector<double> means(counts.size());
  for (size_t g = 0; g < counts.size(); ++g) means[g] = sums[g] / counts[g];
  out.names.push_back("N");
  out.columns.emplace_back(std::move(counts));
  out.names.push_back("mean");
  out.columns.emplace_back(std::move(means));
  return out;
}

DataFrame WithColumn(const DataFrame& df, const std::string& name,
                     const std::function<double(const DataFrame&, int64_t)>& fn) {
  DataFrame out = df;
  std::vector<double> v(static_cast<size_t>(df.num_rows()));
  for (int64_t i = 0; i < df.num_rows(); ++i) {
    v[static_cast<size_t>(i)] = fn(df, i);
  }
  out.names.push_back(name);
  out.columns.emplace_back(std::move(v));
  return out;
}

Result<DenseMatrix> AsMatrix(const DataFrame& df,
                             const std::vector<std::string>& cols,
                             const Options& opts) {
  const int64_t n = df.num_rows();
  const int64_t k = static_cast<int64_t>(cols.size());
  const int64_t bytes = n * k * static_cast<int64_t>(sizeof(double));
  if (df.ByteSize() + bytes > opts.memory_budget_bytes) {
    return Status::ResourceExhausted(
        "cannot allocate vector: R memory exhausted");
  }
  DenseMatrix m(n, k);
  for (int64_t j = 0; j < k; ++j) {
    RMA_ASSIGN_OR_RETURN(int c, df.ColumnIndex(cols[static_cast<size_t>(j)]));
    const auto* d =
        std::get_if<std::vector<double>>(&df.columns[static_cast<size_t>(c)]);
    if (d == nullptr) {
      return Status::TypeError("as.matrix on non-numeric column");
    }
    // Per-element copy (layout change: column store -> row-major matrix).
    for (int64_t i = 0; i < n; ++i) m(i, j) = (*d)[static_cast<size_t>(i)];
  }
  return m;
}

DataFrame AsDataFrame(const DenseMatrix& m,
                      const std::vector<std::string>& names) {
  RMA_CHECK(static_cast<int64_t>(names.size()) == m.cols());
  DataFrame df;
  df.names = names;
  for (int64_t j = 0; j < m.cols(); ++j) {
    std::vector<double> v(static_cast<size_t>(m.rows()));
    for (int64_t i = 0; i < m.rows(); ++i) v[static_cast<size_t>(i)] = m(i, j);
    df.columns.emplace_back(std::move(v));
  }
  return df;
}

}  // namespace rma::baselines::rlike
