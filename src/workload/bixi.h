#ifndef RMA_WORKLOAD_BIXI_H_
#define RMA_WORKLOAD_BIXI_H_

#include <cstdint>

#include "storage/relation.h"

namespace rma::workload {

/// Synthetic stand-in for the BIXI Montreal bike-sharing dataset (Sec. 8).
/// The real Kaggle dump is not available offline; the generator reproduces
/// its schema, the numeric/non-numeric attribute mix (timestamps as strings,
/// which is what penalizes AIDA's data transfer in Fig. 15), the popularity
/// skew over station pairs (so the "at least 50 trips" filter keeps a
/// non-trivial subset), and a duration ≈ β·distance + noise relationship
/// (so the OLS regression of Fig. 15 recovers a meaningful slope).
struct BixiData {
  /// stations(code INT, name STRING, lat DOUBLE, lon DOUBLE)
  Relation stations;
  /// trips(id INT, start_time STRING, start_station INT, end_time STRING,
  ///       end_station INT, duration INT, is_member INT)
  Relation trips;
};

BixiData GenerateBixi(int64_t num_trips, int num_stations, uint64_t seed);

/// Trips each rider performs in GenerateJourneys; `seq` cycles 0..this-1.
inline constexpr int64_t kTripsPerRider = 24;

/// One-trip journeys for the multiple-linear-regression workload (Fig. 16):
/// journeys(id INT, rider INT, seq INT, s1 INT, s2 INT, duration DOUBLE) —
/// all numeric, which is why AIDA keeps up with RMA+ on this workload.
/// Consecutive trips of one rider (same `rider`, `seq` and `seq`+1) meet in
/// a station, so k-trip journeys are k-1 self-joins over the full relation.
Relation GenerateJourneys(int64_t num_journeys, int num_stations,
                          uint64_t seed);

/// Rider trip counts for the add workload (Fig. 18):
/// riders(rider INT, d0..d9 DOUBLE) — trips per rider to 10 destinations
/// in one year.
Relation GenerateTripCounts(int64_t num_riders, int destinations,
                            uint64_t seed);

}  // namespace rma::workload

#endif  // RMA_WORKLOAD_BIXI_H_
