#include "workload/dblp.h"

#include <cstdio>

#include "util/random.h"

namespace rma::workload {

namespace {

std::string ConfName(int c) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "conf%03d", c);
  return buf;
}

std::string AuthorName(int64_t a) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "author%07lld", static_cast<long long>(a));
  return buf;
}

}  // namespace

DblpData GenerateDblp(int64_t num_authors, int num_conferences,
                      uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> authors;
  authors.reserve(static_cast<size_t>(num_authors));
  for (int64_t a = 0; a < num_authors; ++a) authors.push_back(AuthorName(a));
  std::vector<Attribute> attrs = {{"Author", DataType::kString}};
  std::vector<BatPtr> cols = {MakeStringBat(std::move(authors))};
  // Publication counts: each author publishes at ~3 conferences on average;
  // column-major generation keeps the pivot table sparse like real DBLP.
  std::vector<std::vector<double>> counts(
      static_cast<size_t>(num_conferences),
      std::vector<double>(static_cast<size_t>(num_authors), 0.0));
  for (int64_t a = 0; a < num_authors; ++a) {
    const int venues = static_cast<int>(rng.UniformInt(1, 5));
    for (int v = 0; v < venues; ++v) {
      const int c = static_cast<int>(rng.UniformInt(0, num_conferences - 1));
      counts[static_cast<size_t>(c)][static_cast<size_t>(a)] +=
          static_cast<double>(rng.UniformInt(1, 8));
    }
  }
  for (int c = 0; c < num_conferences; ++c) {
    attrs.push_back(Attribute{ConfName(c), DataType::kDouble});
    cols.push_back(MakeDoubleBat(std::move(counts[static_cast<size_t>(c)])));
  }
  DblpData out;
  out.publications =
      Relation::Make(Schema::Make(std::move(attrs)).ValueOrDie(),
                     std::move(cols), "publication")
          .ValueOrDie();
  // Ranking: ~10% A++, then A+, A, B.
  std::vector<std::string> conf_names;
  std::vector<std::string> ratings;
  for (int c = 0; c < num_conferences; ++c) {
    conf_names.push_back(ConfName(c));
    const double u = rng.Uniform(0.0, 1.0);
    ratings.push_back(u < 0.1    ? "A++"
                      : u < 0.3  ? "A+"
                      : u < 0.6  ? "A"
                                 : "B");
  }
  out.ranking = Relation::Make(Schema::Make({{"Conf", DataType::kString},
                                             {"Rating", DataType::kString}})
                                   .ValueOrDie(),
                               {MakeStringBat(std::move(conf_names)),
                                MakeStringBat(std::move(ratings))},
                               "ranking")
                    .ValueOrDie();
  return out;
}

Relation GeneratePublicationList(int64_t num_rows, int num_authors,
                                 int num_conferences, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> authors;
  std::vector<std::string> confs;
  authors.reserve(static_cast<size_t>(num_rows));
  for (int64_t i = 0; i < num_rows; ++i) {
    authors.push_back(AuthorName(rng.UniformInt(0, num_authors - 1)));
    confs.push_back(ConfName(static_cast<int>(
        rng.UniformInt(0, num_conferences - 1))));
  }
  return Relation::Make(Schema::Make({{"Author", DataType::kString},
                                      {"Conf", DataType::kString}})
                            .ValueOrDie(),
                        {MakeStringBat(std::move(authors)),
                         MakeStringBat(std::move(confs))},
                        "publication_list")
      .ValueOrDie();
}

}  // namespace rma::workload
