#include "workload/bixi.h"

#include <cmath>
#include <cstdio>
#include <numeric>

#include "util/random.h"

namespace rma::workload {

namespace {

std::string FormatTimestamp(int64_t epoch_minutes) {
  // Minutes since 2014-01-01 00:00, rendered as "YYYY-MM-DD HH:MM:00".
  const int64_t minutes = epoch_minutes % 60;
  const int64_t hours = (epoch_minutes / 60) % 24;
  const int64_t days = epoch_minutes / (60 * 24);
  const int64_t year = 2014 + days / 365;
  const int64_t day_of_year = days % 365;
  const int64_t month = day_of_year / 31 + 1;
  const int64_t day = day_of_year % 31 + 1;
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:00",
                static_cast<int>(year), static_cast<int>(month),
                static_cast<int>(day), static_cast<int>(hours),
                static_cast<int>(minutes));
  return buf;
}

// Planar distance in km from lat/lon deltas around Montreal.
double DistanceKm(double lat1, double lon1, double lat2, double lon2) {
  const double dy = (lat2 - lat1) * 111.0;
  const double dx = (lon2 - lon1) * 78.0;  // cos(45.5°)·111
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace

BixiData GenerateBixi(int64_t num_trips, int num_stations, uint64_t seed) {
  Rng rng(seed);
  // Stations around Montreal (45.5 N, -73.6 W).
  std::vector<int64_t> codes;
  std::vector<std::string> names;
  std::vector<double> lats;
  std::vector<double> lons;
  for (int i = 0; i < num_stations; ++i) {
    codes.push_back(1000 + i);
    names.push_back("Station_" + std::to_string(i));
    lats.push_back(45.40 + rng.Uniform(0.0, 0.2));
    lons.push_back(-73.70 + rng.Uniform(0.0, 0.2));
  }
  // Popular station pairs: a Zipf-like skew so that frequent pairs pass the
  // "at least 50 trips" filter.
  const int num_pairs = std::max(16, num_stations * 4);
  std::vector<std::pair<int, int>> pairs;
  pairs.reserve(static_cast<size_t>(num_pairs));
  for (int p = 0; p < num_pairs; ++p) {
    int a = static_cast<int>(rng.UniformInt(0, num_stations - 1));
    int b = static_cast<int>(rng.UniformInt(0, num_stations - 1));
    if (a == b) b = (b + 1) % num_stations;
    pairs.emplace_back(a, b);
  }
  std::vector<int64_t> trip_id;
  std::vector<std::string> start_time;
  std::vector<int64_t> start_station;
  std::vector<std::string> end_time;
  std::vector<int64_t> end_station;
  std::vector<int64_t> duration;
  std::vector<int64_t> is_member;
  trip_id.reserve(static_cast<size_t>(num_trips));
  for (int64_t t = 0; t < num_trips; ++t) {
    // Zipf-ish pair choice: rank ~ u^3 concentrates mass on low ranks.
    const double u = rng.Uniform(0.0, 1.0);
    const int rank = static_cast<int>(u * u * u * (num_pairs - 1));
    const auto [a, b] = pairs[static_cast<size_t>(rank)];
    const double dist = DistanceKm(lats[static_cast<size_t>(a)],
                                   lons[static_cast<size_t>(a)],
                                   lats[static_cast<size_t>(b)],
                                   lons[static_cast<size_t>(b)]);
    // duration ≈ 300s + 240 s/km · dist + noise.
    const double dur =
        300.0 + 240.0 * dist + rng.Normal(0.0, 120.0);
    const int64_t start = rng.UniformInt(0, 4 * 365 * 24 * 60 - 1);
    trip_id.push_back(t);
    start_time.push_back(FormatTimestamp(start));
    start_station.push_back(codes[static_cast<size_t>(a)]);
    end_time.push_back(FormatTimestamp(start + static_cast<int64_t>(dur / 60)));
    end_station.push_back(codes[static_cast<size_t>(b)]);
    duration.push_back(std::max<int64_t>(60, static_cast<int64_t>(dur)));
    is_member.push_back(rng.Bernoulli(0.8) ? 1 : 0);
  }
  BixiData out;
  out.stations =
      Relation::Make(
          Schema::Make({{"code", DataType::kInt64},
                        {"name", DataType::kString},
                        {"lat", DataType::kDouble},
                        {"lon", DataType::kDouble}})
              .ValueOrDie(),
          {MakeInt64Bat(std::move(codes)), MakeStringBat(std::move(names)),
           MakeDoubleBat(std::move(lats)), MakeDoubleBat(std::move(lons))},
          "stations")
          .ValueOrDie();
  out.trips =
      Relation::Make(
          Schema::Make({{"id", DataType::kInt64},
                        {"start_time", DataType::kString},
                        {"start_station", DataType::kInt64},
                        {"end_time", DataType::kString},
                        {"end_station", DataType::kInt64},
                        {"duration", DataType::kInt64},
                        {"is_member", DataType::kInt64}})
              .ValueOrDie(),
          {MakeInt64Bat(std::move(trip_id)), MakeStringBat(std::move(start_time)),
           MakeInt64Bat(std::move(start_station)),
           MakeStringBat(std::move(end_time)),
           MakeInt64Bat(std::move(end_station)),
           MakeInt64Bat(std::move(duration)), MakeInt64Bat(std::move(is_member))},
          "trips")
          .ValueOrDie();
  return out;
}

Relation GenerateJourneys(int64_t num_journeys, int num_stations,
                          uint64_t seed) {
  Rng rng(seed);
  std::vector<int64_t> id(static_cast<size_t>(num_journeys));
  std::iota(id.begin(), id.end(), 0);
  std::vector<int64_t> rider(static_cast<size_t>(num_journeys));
  std::vector<int64_t> seq(static_cast<size_t>(num_journeys));
  std::vector<int64_t> s1;
  std::vector<int64_t> s2;
  std::vector<double> dur;
  s1.reserve(static_cast<size_t>(num_journeys));
  // Each rider performs kTripsPerRider consecutive trips that meet in a
  // station: trip j ends where trip j+1 starts. k-trip journeys are
  // recovered by joining the relation with itself k-1 times on consecutive
  // (rider, seq) — every hop joins the full relation, which is what makes
  // the Fig. 16 runtime grow with the journey length. The hop length is a
  // deterministic function of the current station (1 + s mod 7), so
  // journeys sharing a start station repeat (surviving the ">= 50
  // occurrences" filter) while per-hop distances vary across start
  // stations, keeping the regression design full-rank.
  int64_t cur = rng.UniformInt(0, num_stations - 1);
  for (int64_t i = 0; i < num_journeys; ++i) {
    rider[static_cast<size_t>(i)] = i / kTripsPerRider;
    seq[static_cast<size_t>(i)] = i % kTripsPerRider;
    if (seq[static_cast<size_t>(i)] == 0) {
      cur = rng.UniformInt(0, num_stations - 1);  // new rider, new start
    }
    const int64_t gap = 1 + cur % 7;
    const int64_t next = cur + gap < num_stations ? cur + gap : cur - gap;
    const double hop = std::fabs(static_cast<double>(cur - next));
    s1.push_back(cur);
    s2.push_back(next);
    dur.push_back(200.0 + 50.0 * hop + rng.Normal(0.0, 10.0));
    cur = next;
  }
  return Relation::Make(
             Schema::Make({{"id", DataType::kInt64},
                           {"rider", DataType::kInt64},
                           {"seq", DataType::kInt64},
                           {"s1", DataType::kInt64},
                           {"s2", DataType::kInt64},
                           {"duration", DataType::kDouble}})
                 .ValueOrDie(),
             {MakeInt64Bat(std::move(id)), MakeInt64Bat(std::move(rider)),
              MakeInt64Bat(std::move(seq)), MakeInt64Bat(std::move(s1)),
              MakeInt64Bat(std::move(s2)), MakeDoubleBat(std::move(dur))},
             "journeys")
      .ValueOrDie();
}

Relation GenerateTripCounts(int64_t num_riders, int destinations,
                            uint64_t seed) {
  Rng rng(seed);
  std::vector<int64_t> rider(static_cast<size_t>(num_riders));
  std::iota(rider.begin(), rider.end(), 0);
  std::vector<Attribute> attrs = {{"rider", DataType::kInt64}};
  std::vector<BatPtr> cols = {MakeInt64Bat(std::move(rider))};
  for (int d = 0; d < destinations; ++d) {
    std::vector<double> v(static_cast<size_t>(num_riders));
    for (auto& x : v) x = static_cast<double>(rng.UniformInt(0, 40));
    attrs.push_back(Attribute{"d" + std::to_string(d), DataType::kDouble});
    cols.push_back(MakeDoubleBat(std::move(v)));
  }
  return Relation::Make(Schema::Make(std::move(attrs)).ValueOrDie(),
                        std::move(cols), "trip_counts")
      .ValueOrDie();
}

}  // namespace rma::workload
