#ifndef RMA_WORKLOAD_SYNTHETIC_H_
#define RMA_WORKLOAD_SYNTHETIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/relation.h"

namespace rma::workload {

/// Uniform numeric relation: INT key attribute "id" (a shuffled permutation
/// of 0..n-1, or 0..n-1 in order if `sorted`), plus `app_cols` DOUBLE
/// attributes "a0".. with uniform values in [lo, hi). This is the synthetic
/// data of Sec. 8 ("uniformly distributed values between 0 and 10,000").
Relation UniformRelation(int64_t n, int app_cols, uint64_t seed,
                         double lo = 0.0, double hi = 10000.0,
                         bool sorted = false, std::string name = "r");

/// Relation for the Fig. 13 experiment: `order_cols` INT order attributes
/// "o0".."o<k-1>" and a single DOUBLE application attribute "val". The
/// leading order attributes are constant so that every row comparison walks
/// the whole order schema; the last order attribute makes the key unique.
/// Two relations generated with the same `n`/`order_cols`/`seed` share their
/// key values (required for add's relative alignment).
Relation ManyOrderColumnsRelation(int64_t n, int order_cols, uint64_t seed,
                                  uint64_t value_seed, std::string name = "r");

/// Sparse relation of Table 5: INT key "id" plus `app_cols` DOUBLE columns
/// where a `zero_share` fraction of values is 0 (positions random) and the
/// rest is uniform in [1, 5e6).
Relation SparseRelation(int64_t n, int app_cols, double zero_share,
                        uint64_t seed, std::string name = "r");

/// Compresses all double columns of `r` whose zero share is at least
/// `min_zero_share` (MonetDB's compression stand-in; see SparseDoubleBat).
Relation CompressRelation(const Relation& r, double min_zero_share = 0.5);

}  // namespace rma::workload

#endif  // RMA_WORKLOAD_SYNTHETIC_H_
