#include "workload/synthetic.h"

#include <algorithm>
#include <numeric>

#include "storage/sparse_bat.h"
#include "util/random.h"

namespace rma::workload {

Relation UniformRelation(int64_t n, int app_cols, uint64_t seed, double lo,
                         double hi, bool sorted, std::string name) {
  Rng rng(seed);
  std::vector<int64_t> ids(static_cast<size_t>(n));
  std::iota(ids.begin(), ids.end(), 0);
  if (!sorted) std::shuffle(ids.begin(), ids.end(), rng.engine());
  std::vector<Attribute> attrs = {{"id", DataType::kInt64}};
  std::vector<BatPtr> cols = {MakeInt64Bat(std::move(ids))};
  for (int c = 0; c < app_cols; ++c) {
    std::vector<double> v(static_cast<size_t>(n));
    for (auto& x : v) x = rng.Uniform(lo, hi);
    attrs.push_back(Attribute{"a" + std::to_string(c), DataType::kDouble});
    cols.push_back(MakeDoubleBat(std::move(v)));
  }
  return Relation::Make(Schema::Make(std::move(attrs)).ValueOrDie(),
                        std::move(cols), std::move(name))
      .ValueOrDie();
}

Relation ManyOrderColumnsRelation(int64_t n, int order_cols, uint64_t seed,
                                  uint64_t value_seed, std::string name) {
  RMA_CHECK(order_cols >= 1);
  Rng key_rng(seed);
  std::vector<Attribute> attrs;
  std::vector<BatPtr> cols;
  // Constant leading order attributes (shared across seeds): every row
  // comparison has to walk the entire order schema before it is decided by
  // the unique last attribute, so sort cost grows with the schema width —
  // the regime Fig. 13 measures.
  for (int c = 0; c < order_cols - 1; ++c) {
    std::vector<int64_t> v(static_cast<size_t>(n), 0);
    attrs.push_back(Attribute{"o" + std::to_string(c), DataType::kInt64});
    cols.push_back(MakeInt64Bat(std::move(v)));
  }
  // Unique last order attribute.
  std::vector<int64_t> ids(static_cast<size_t>(n));
  std::iota(ids.begin(), ids.end(), 0);
  std::shuffle(ids.begin(), ids.end(), key_rng.engine());
  attrs.push_back(
      Attribute{"o" + std::to_string(order_cols - 1), DataType::kInt64});
  cols.push_back(MakeInt64Bat(std::move(ids)));
  // One application column (values differ per value_seed).
  Rng val_rng(value_seed);
  std::vector<double> vals(static_cast<size_t>(n));
  for (auto& x : vals) x = val_rng.Uniform(0.0, 10000.0);
  attrs.push_back(Attribute{"val", DataType::kDouble});
  cols.push_back(MakeDoubleBat(std::move(vals)));
  return Relation::Make(Schema::Make(std::move(attrs)).ValueOrDie(),
                        std::move(cols), std::move(name))
      .ValueOrDie();
}

Relation SparseRelation(int64_t n, int app_cols, double zero_share,
                        uint64_t seed, std::string name) {
  Rng rng(seed);
  std::vector<int64_t> ids(static_cast<size_t>(n));
  std::iota(ids.begin(), ids.end(), 0);
  std::vector<Attribute> attrs = {{"id", DataType::kInt64}};
  std::vector<BatPtr> cols = {MakeInt64Bat(std::move(ids))};
  for (int c = 0; c < app_cols; ++c) {
    std::vector<double> v(static_cast<size_t>(n));
    for (auto& x : v) {
      x = rng.Bernoulli(zero_share) ? 0.0 : rng.Uniform(1.0, 5e6);
    }
    attrs.push_back(Attribute{"a" + std::to_string(c), DataType::kDouble});
    cols.push_back(MakeDoubleBat(std::move(v)));
  }
  return Relation::Make(Schema::Make(std::move(attrs)).ValueOrDie(),
                        std::move(cols), std::move(name))
      .ValueOrDie();
}

Relation CompressRelation(const Relation& r, double min_zero_share) {
  std::vector<BatPtr> cols;
  cols.reserve(static_cast<size_t>(r.num_columns()));
  for (const auto& c : r.columns()) {
    cols.push_back(SparseDoubleBat::MaybeCompress(c, min_zero_share));
  }
  return Relation::Make(r.schema(), std::move(cols), r.name()).ValueOrDie();
}

}  // namespace rma::workload
