#ifndef RMA_WORKLOAD_DBLP_H_
#define RMA_WORKLOAD_DBLP_H_

#include <cstdint>

#include "storage/relation.h"

namespace rma::workload {

/// Synthetic stand-in for the DBLP dataset of Sec. 8.6(3): authors with
/// publication counts per conference (the result of SQL PIVOT over a
/// count-aggregate) and a conference ranking table. The real dump is not
/// available offline; cardinalities and sparsity are matched (most authors
/// publish at few conferences).
struct DblpData {
  /// publications(Author STRING, <conf_0>..<conf_{k-1}> DOUBLE)
  Relation publications;
  /// ranking(Conf STRING, Rating STRING) — about 10% rated "A++"
  Relation ranking;
};

DblpData GenerateDblp(int64_t num_authors, int num_conferences, uint64_t seed);

/// The raw (unpivoted) publication list used to exercise rel::PivotCount in
/// tests/examples: publication(Author STRING, Conf STRING).
Relation GeneratePublicationList(int64_t num_rows, int num_authors,
                                 int num_conferences, uint64_t seed);

}  // namespace rma::workload

#endif  // RMA_WORKLOAD_DBLP_H_
