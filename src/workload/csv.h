#ifndef RMA_WORKLOAD_CSV_H_
#define RMA_WORKLOAD_CSV_H_

#include <string>

#include "storage/relation.h"
#include "util/result.h"

namespace rma::workload {

/// Writes a relation as CSV with a header line. String values are quoted
/// when they contain separators/quotes.
Status WriteCsv(const Relation& r, const std::string& path);

/// Reads a CSV produced by WriteCsv. Column types are given by `schema`
/// (the header must match its attribute names). This backs the "load from
/// CSV" share of the R bars in Fig. 15.
Result<Relation> ReadCsv(const std::string& path, const Schema& schema,
                         std::string name = "r");

}  // namespace rma::workload

#endif  // RMA_WORKLOAD_CSV_H_
