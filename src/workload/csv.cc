#include "workload/csv.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace rma::workload {

namespace {

bool NeedsQuoting(const std::string& s) {
  return s.find_first_of(",\"\n") != std::string::npos;
}

std::string QuoteField(const std::string& s) {
  if (!NeedsQuoting(s)) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

/// Splits one CSV line honoring quotes.
std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

}  // namespace

Status WriteCsv(const Relation& r, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) return Status::IoError("cannot open " + path);
  const auto names = r.schema().Names();
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out << ',';
    out << QuoteField(names[i]);
  }
  out << '\n';
  const int64_t n = r.num_rows();
  for (int64_t i = 0; i < n; ++i) {
    for (int c = 0; c < r.num_columns(); ++c) {
      if (c > 0) out << ',';
      out << QuoteField(r.column(c)->GetString(i));
    }
    out << '\n';
  }
  if (!out.good()) return Status::IoError("write failed for " + path);
  return Status::OK();
}

Result<Relation> ReadCsv(const std::string& path, const Schema& schema,
                         std::string name) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::IoError("cannot open " + path);
  std::string line;
  if (!std::getline(in, line)) return Status::IoError("empty file: " + path);
  const std::vector<std::string> header = SplitCsvLine(line);
  if (static_cast<int>(header.size()) != schema.num_attributes()) {
    return Status::Invalid("CSV header does not match the given schema");
  }
  for (int c = 0; c < schema.num_attributes(); ++c) {
    if (header[static_cast<size_t>(c)] != schema.attribute(c).name) {
      return Status::Invalid("CSV header mismatch at column " +
                             std::to_string(c));
    }
  }
  const int ncol = schema.num_attributes();
  std::vector<std::vector<int64_t>> icols(static_cast<size_t>(ncol));
  std::vector<std::vector<double>> dcols(static_cast<size_t>(ncol));
  std::vector<std::vector<std::string>> scols(static_cast<size_t>(ncol));
  // 1-based physical line numbers, counting the header as line 1, so error
  // messages match what editors and `sed -n Np` display.
  int64_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const std::vector<std::string> fields = SplitCsvLine(line);
    if (static_cast<int>(fields.size()) != ncol) {
      return Status::ParseError(
          path + " line " + std::to_string(line_no) + ": expected " +
          std::to_string(ncol) + " fields, got " +
          std::to_string(fields.size()));
    }
    for (int c = 0; c < ncol; ++c) {
      const std::string& f = fields[static_cast<size_t>(c)];
      char* end = nullptr;
      switch (schema.attribute(c).type) {
        case DataType::kInt64: {
          const int64_t v = std::strtoll(f.c_str(), &end, 10);
          if (f.empty() || end != f.c_str() + f.size()) {
            return Status::ParseError(path + " line " +
                                      std::to_string(line_no) + ", column '" +
                                      schema.attribute(c).name +
                                      "': not an integer: '" + f + "'");
          }
          icols[static_cast<size_t>(c)].push_back(v);
          break;
        }
        case DataType::kDouble: {
          const double v = std::strtod(f.c_str(), &end);
          if (f.empty() || end != f.c_str() + f.size()) {
            return Status::ParseError(path + " line " +
                                      std::to_string(line_no) + ", column '" +
                                      schema.attribute(c).name +
                                      "': not a number: '" + f + "'");
          }
          dcols[static_cast<size_t>(c)].push_back(v);
          break;
        }
        case DataType::kString:
          scols[static_cast<size_t>(c)].push_back(f);
          break;
      }
    }
  }
  std::vector<BatPtr> cols;
  for (int c = 0; c < ncol; ++c) {
    switch (schema.attribute(c).type) {
      case DataType::kInt64:
        cols.push_back(MakeInt64Bat(std::move(icols[static_cast<size_t>(c)])));
        break;
      case DataType::kDouble:
        cols.push_back(MakeDoubleBat(std::move(dcols[static_cast<size_t>(c)])));
        break;
      case DataType::kString:
        cols.push_back(MakeStringBat(std::move(scols[static_cast<size_t>(c)])));
        break;
    }
  }
  return Relation::Make(schema, std::move(cols), std::move(name));
}

}  // namespace rma::workload
