#include "client/client.h"

#include <memory>
#include <utility>
#include <vector>

namespace rma::client {

using server::Frame;
using server::MessageType;
using server::RecvFrame;
using server::SendFrame;
using server::WireReader;
using server::WireWriter;

namespace {

/// Stitches the streamed batches back into one relation, column by column.
/// Decoded batches hold plain TypedBat columns (DecodeRowBatch builds
/// them), so each result column is one typed gather over the batch tails —
/// the client-side mirror of the server's columnar batch encoding.
Result<Relation> ConcatBatches(const Schema& schema,
                               const std::vector<Relation>& batches) {
  int64_t total = 0;
  for (const Relation& b : batches) total += b.num_rows();
  std::vector<BatPtr> columns;
  const int ncols = schema.num_attributes();
  columns.reserve(static_cast<size_t>(ncols));
  for (int col = 0; col < ncols; ++col) {
    switch (schema.attribute(col).type) {
      case DataType::kInt64: {
        std::vector<int64_t> data;
        data.reserve(static_cast<size_t>(total));
        for (const Relation& b : batches) {
          const auto* bat = dynamic_cast<const Int64Bat*>(b.column(col).get());
          if (bat == nullptr) return Status::Invalid("batch column not typed");
          data.insert(data.end(), bat->data().begin(), bat->data().end());
        }
        columns.push_back(MakeInt64Bat(std::move(data)));
        break;
      }
      case DataType::kDouble: {
        std::vector<double> data;
        data.reserve(static_cast<size_t>(total));
        for (const Relation& b : batches) {
          const auto* bat = dynamic_cast<const DoubleBat*>(b.column(col).get());
          if (bat == nullptr) return Status::Invalid("batch column not typed");
          data.insert(data.end(), bat->data().begin(), bat->data().end());
        }
        columns.push_back(MakeDoubleBat(std::move(data)));
        break;
      }
      case DataType::kString: {
        std::vector<std::string> data;
        data.reserve(static_cast<size_t>(total));
        for (const Relation& b : batches) {
          const auto* bat = dynamic_cast<const StringBat*>(b.column(col).get());
          if (bat == nullptr) return Status::Invalid("batch column not typed");
          data.insert(data.end(), bat->data().begin(), bat->data().end());
        }
        columns.push_back(MakeStringBat(std::move(data)));
        break;
      }
    }
  }
  return Relation::Make(schema, std::move(columns), "result");
}

}  // namespace

Result<Client> Client::Connect(const std::string& host, uint16_t port) {
  Client c;
  RMA_ASSIGN_OR_RETURN(c.sock_, ConnectSocket(host, port));
  WireWriter hello;
  hello.PutU32(server::kProtocolVersion);
  RMA_RETURN_NOT_OK(SendFrame(c.sock_, MessageType::kHello, hello.str()));
  RMA_ASSIGN_OR_RETURN(Frame frame, RecvFrame(c.sock_));
  if (frame.type == MessageType::kError) {
    return server::DecodeError(frame.payload);
  }
  if (frame.type != MessageType::kWelcome) {
    return Status::IoError("handshake: expected WELCOME, got frame type " +
                           std::to_string(static_cast<int>(frame.type)));
  }
  WireReader reader(frame.payload);
  RMA_ASSIGN_OR_RETURN(uint32_t version, reader.GetU32());
  if (version != server::kProtocolVersion) {
    return Status::IoError("handshake: server answered with protocol v" +
                           std::to_string(version));
  }
  RMA_ASSIGN_OR_RETURN(c.session_id_, reader.GetU64());
  return c;
}

Status Client::SetOption(const std::string& key, const std::string& value) {
  if (!connected()) return Status::IoError("not connected");
  WireWriter w;
  w.PutString(key);
  w.PutString(value);
  RMA_RETURN_NOT_OK(SendFrame(sock_, MessageType::kSetOption, w.str()));
  RMA_ASSIGN_OR_RETURN(Frame frame, RecvFrame(sock_));
  if (frame.type == MessageType::kError) {
    return server::DecodeError(frame.payload);
  }
  if (frame.type != MessageType::kOptionAck) {
    return Status::IoError("expected OPTION_ACK, got frame type " +
                           std::to_string(static_cast<int>(frame.type)));
  }
  return Status::OK();
}

Result<uint64_t> Client::Prepare(const std::string& sql) {
  if (!connected()) return Status::IoError("not connected");
  WireWriter w;
  w.PutString(sql);
  RMA_RETURN_NOT_OK(SendFrame(sock_, MessageType::kPrepare, w.str()));
  RMA_ASSIGN_OR_RETURN(Frame frame, RecvFrame(sock_));
  if (frame.type == MessageType::kError) {
    return server::DecodeError(frame.payload);
  }
  if (frame.type != MessageType::kPrepareAck) {
    return Status::IoError("expected PREPARE_ACK, got frame type " +
                           std::to_string(static_cast<int>(frame.type)));
  }
  WireReader reader(frame.payload);
  return reader.GetU64();
}

Result<ExecResult> Client::Execute(const std::string& sql) {
  WireWriter w;
  w.PutString(sql);
  return RunStatement(MessageType::kExecute, w.str(), nullptr);
}

Result<ExecResult> Client::ExecutePrepared(uint64_t handle) {
  WireWriter w;
  w.PutU64(handle);
  return RunStatement(MessageType::kExecutePrepared, w.str(), nullptr);
}

Result<ExecResult> Client::ExecuteStreaming(const std::string& sql,
                                            const BatchCallback& on_batch) {
  WireWriter w;
  w.PutString(sql);
  return RunStatement(MessageType::kExecute, w.str(), &on_batch);
}

Result<Relation> Client::Query(const std::string& sql) {
  RMA_ASSIGN_OR_RETURN(ExecResult result, Execute(sql));
  return std::move(result.relation);
}

Result<ExecResult> Client::RunStatement(MessageType type,
                                        const std::string& payload,
                                        const BatchCallback* on_batch) {
  if (!connected()) return Status::IoError("not connected");
  RMA_RETURN_NOT_OK(SendFrame(sock_, type, payload));

  ExecResult out;
  bool have_header = false;
  Schema schema;
  // Accumulation path: collect the batches, stitch columns at COMPLETE.
  std::vector<Relation> collected;
  while (true) {
    RMA_ASSIGN_OR_RETURN(Frame frame, RecvFrame(sock_));
    switch (frame.type) {
      case MessageType::kError:
        // Statement-level failure; the session stays usable.
        return server::DecodeError(frame.payload);
      case MessageType::kResultHeader: {
        RMA_ASSIGN_OR_RETURN(schema, server::DecodeResultHeader(frame.payload));
        have_header = true;
        break;
      }
      case MessageType::kRowBatch: {
        if (!have_header) {
          return Status::IoError("ROW_BATCH before RESULT_HEADER");
        }
        RMA_ASSIGN_OR_RETURN(Relation batch,
                             server::DecodeRowBatch(schema, frame.payload));
        ++out.batches;
        if (on_batch != nullptr) {
          Status st = (*on_batch)(batch);
          if (!st.ok()) {
            // Deliberate mid-stream hang-up: the server notices the broken
            // socket on its next send and abandons the stream.
            sock_.Close();
            return st;
          }
        } else {
          collected.push_back(std::move(batch));
        }
        break;
      }
      case MessageType::kComplete: {
        if (!have_header) {
          return Status::IoError("COMPLETE before RESULT_HEADER");
        }
        WireReader reader(frame.payload);
        RMA_ASSIGN_OR_RETURN(out.rows, reader.GetU64());
        RMA_ASSIGN_OR_RETURN(out.server_seconds, reader.GetF64());
        RMA_ASSIGN_OR_RETURN(out.plan_cache, reader.GetU8());
        if (on_batch == nullptr) {
          RMA_ASSIGN_OR_RETURN(out.relation, ConcatBatches(schema, collected));
        }
        return out;
      }
      default:
        return Status::IoError("unexpected frame type " +
                               std::to_string(static_cast<int>(frame.type)) +
                               " in result stream");
    }
  }
}

void Client::Close() {
  if (!connected()) return;
  SendFrame(sock_, MessageType::kGoodbye, "").IgnoreError();
  sock_.Close();
}

}  // namespace rma::client
