#ifndef RMA_CLIENT_CLIENT_H_
#define RMA_CLIENT_CLIENT_H_

#include <cstdint>
#include <functional>
#include <string>

#include "server/wire.h"
#include "storage/relation.h"
#include "util/result.h"
#include "util/socket.h"

namespace rma::client {

/// Outcome of one executed statement, as reported by the server's COMPLETE
/// frame plus what the client observed on the way.
struct ExecResult {
  /// The full result set (empty when ExecuteStreaming consumed the batches
  /// through a callback instead of accumulating).
  Relation relation;
  uint64_t rows = 0;          ///< server-reported row count
  double server_seconds = 0;  ///< server-side execution wall time
  int64_t batches = 0;        ///< ROW_BATCH frames received
  /// Plan-cache provenance: 0 = not consulted, 1 = hit, 2 = miss.
  uint8_t plan_cache = 0;
};

/// Per-batch streaming callback. Each call hands over one decoded row
/// batch as a standalone relation; returning a non-OK status abandons the
/// stream and disconnects (the deliberate mid-stream hang-up).
using BatchCallback = std::function<Status(const Relation& batch)>;

/// Client connection to an rma server (src/server/). Blocking, one
/// statement at a time — the protocol is strictly request/response per
/// session; open several clients for concurrency. Move-only; the session
/// ends when the object dies (GOODBYE is sent by Close()/destructor).
///
/// Errors: statement-level failures (ParseError, KeyError, ...) come back
/// as the server-side Status and leave the connection usable; IoError means
/// the connection itself broke and every later call fails.
class Client {
 public:
  Client() = default;
  ~Client() { Close(); }
  Client(Client&&) = default;
  Client& operator=(Client&&) = default;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects and performs the HELLO/WELCOME handshake (protocol version
  /// check; a full server answers with its capacity error here).
  static Result<Client> Connect(const std::string& host, uint16_t port);

  bool connected() const { return sock_.valid(); }
  uint64_t session_id() const { return session_id_; }

  /// Sets one session option (e.g. "kernel" = "bat", "max_threads" = "2",
  /// "calibration_path" = "profile.json" — a bare file name resolved inside
  /// the server's configured calibration directory, refused otherwise); see
  /// docs/OPERATIONS.md for the key set. Errors leave the session's
  /// options unchanged.
  Status SetOption(const std::string& key, const std::string& value);

  /// Parses and registers `sql` server-side; the handle replays it through
  /// the server's shared plan cache.
  Result<uint64_t> Prepare(const std::string& sql);

  /// Executes one statement, accumulating the streamed batches into
  /// ExecResult::relation.
  Result<ExecResult> Execute(const std::string& sql);
  Result<ExecResult> ExecutePrepared(uint64_t handle);

  /// Executes one statement, handing each row batch to `on_batch` as it
  /// arrives instead of accumulating (constant client memory regardless of
  /// result size).
  Result<ExecResult> ExecuteStreaming(const std::string& sql,
                                      const BatchCallback& on_batch);

  /// Convenience: Execute and return just the relation.
  Result<Relation> Query(const std::string& sql);

  /// Sends GOODBYE and closes. Idempotent.
  void Close();

 private:
  /// Sends one request frame, then consumes the response sequence
  /// (RESULT_HEADER / ROW_BATCH* / COMPLETE, or ERROR).
  Result<ExecResult> RunStatement(server::MessageType type,
                                  const std::string& payload,
                                  const BatchCallback* on_batch);

  Socket sock_;
  uint64_t session_id_ = 0;
};

}  // namespace rma::client

#endif  // RMA_CLIENT_CLIENT_H_
