#include "rel/expression.h"

#include <cmath>

#include "util/string_util.h"

namespace rma::rel {

ExprPtr Expr::Column(std::string name) {
  return ExprPtr(new Expr(Kind::kColumn, std::move(name), Value(int64_t{0}), {}));
}

ExprPtr Expr::Literal(Value v) {
  return ExprPtr(new Expr(Kind::kLiteral, "", std::move(v), {}));
}

ExprPtr Expr::Binary(std::string op, ExprPtr lhs, ExprPtr rhs) {
  return ExprPtr(new Expr(Kind::kBinary, std::move(op), Value(int64_t{0}),
                          {std::move(lhs), std::move(rhs)}));
}

ExprPtr Expr::Unary(std::string op, ExprPtr operand) {
  return ExprPtr(new Expr(Kind::kUnary, std::move(op), Value(int64_t{0}),
                          {std::move(operand)}));
}

ExprPtr Expr::Call(std::string fn, std::vector<ExprPtr> args) {
  return ExprPtr(
      new Expr(Kind::kCall, ToUpper(fn), Value(int64_t{0}), std::move(args)));
}

std::string Expr::ToString() const {
  switch (kind_) {
    case Kind::kColumn:
      return name_;
    case Kind::kLiteral:
      return ValueToString(value_);
    case Kind::kBinary:
      return "(" + children_[0]->ToString() + " " + name_ + " " +
             children_[1]->ToString() + ")";
    case Kind::kUnary:
      return "(" + name_ + " " + children_[0]->ToString() + ")";
    case Kind::kCall: {
      std::string out = name_ + "(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += ", ";
        out += children_[i]->ToString();
      }
      return out + ")";
    }
  }
  return "?";
}

namespace {

bool IsComparisonOp(const std::string& op) {
  return op == "<" || op == "<=" || op == ">" || op == ">=" || op == "=" ||
         op == "==" || op == "<>" || op == "!=";
}

bool IsLogicOp(const std::string& op) { return op == "AND" || op == "OR"; }

bool IsArithmeticOp(const std::string& op) {
  return op == "+" || op == "-" || op == "*" || op == "/" || op == "%";
}

int FunctionArity(const std::string& fn) {
  if (fn == "SQRT" || fn == "ABS" || fn == "LN" || fn == "EXP") return 1;
  if (fn == "POW") return 2;
  return -1;
}

}  // namespace

Result<BoundExpr> Bind(const ExprPtr& expr, const Schema& schema) {
  RMA_CHECK(expr != nullptr);
  BoundExpr out;
  out.kind_ = expr->kind();
  switch (expr->kind()) {
    case Expr::Kind::kColumn: {
      int idx = -1;
      if (!expr->name().empty() && expr->name()[0] == '$') {
        idx = std::atoi(expr->name().c_str() + 1);
        if (idx < 0 || idx >= schema.num_attributes()) {
          return Status::KeyError("column position out of range: " +
                                  expr->name());
        }
      } else {
        RMA_ASSIGN_OR_RETURN(idx, schema.IndexOf(expr->name()));
      }
      out.column_index_ = idx;
      out.type_ = schema.attribute(idx).type;
      return out;
    }
    case Expr::Kind::kLiteral: {
      out.literal_ = expr->value();
      out.type_ = ValueType(expr->value());
      return out;
    }
    case Expr::Kind::kUnary: {
      RMA_ASSIGN_OR_RETURN(BoundExpr child, Bind(expr->children()[0], schema));
      out.op_ = ToUpper(expr->name());
      if (out.op_ == "-") {
        if (!IsNumeric(child.type())) {
          return Status::TypeError("unary - on non-numeric operand");
        }
        out.type_ = child.type();
      } else if (out.op_ == "NOT") {
        out.type_ = DataType::kInt64;
      } else {
        return Status::Invalid("unknown unary operator: " + expr->name());
      }
      out.children_.push_back(std::move(child));
      return out;
    }
    case Expr::Kind::kBinary: {
      RMA_ASSIGN_OR_RETURN(BoundExpr lhs, Bind(expr->children()[0], schema));
      RMA_ASSIGN_OR_RETURN(BoundExpr rhs, Bind(expr->children()[1], schema));
      out.op_ = ToUpper(expr->name());
      if (IsArithmeticOp(out.op_)) {
        if (!IsNumeric(lhs.type()) || !IsNumeric(rhs.type())) {
          return Status::TypeError("arithmetic on non-numeric operand");
        }
        const bool both_int = lhs.type() == DataType::kInt64 &&
                              rhs.type() == DataType::kInt64;
        out.type_ = (both_int && out.op_ != "/") ? DataType::kInt64
                                                 : DataType::kDouble;
      } else if (IsComparisonOp(out.op_) || IsLogicOp(out.op_)) {
        out.type_ = DataType::kInt64;
      } else {
        return Status::Invalid("unknown binary operator: " + expr->name());
      }
      out.children_.push_back(std::move(lhs));
      out.children_.push_back(std::move(rhs));
      return out;
    }
    case Expr::Kind::kCall: {
      const int arity = FunctionArity(expr->name());
      if (arity < 0) {
        return Status::Invalid("unknown function: " + expr->name());
      }
      if (static_cast<int>(expr->children().size()) != arity) {
        return Status::Invalid("wrong argument count for " + expr->name());
      }
      out.op_ = expr->name();
      out.type_ = DataType::kDouble;
      for (const auto& c : expr->children()) {
        RMA_ASSIGN_OR_RETURN(BoundExpr bc, Bind(c, schema));
        if (!IsNumeric(bc.type())) {
          return Status::TypeError(expr->name() + " on non-numeric operand");
        }
        out.children_.push_back(std::move(bc));
      }
      return out;
    }
  }
  return Status::Invalid("unreachable expression kind");
}

Value BoundExpr::Eval(const Relation& r, int64_t row) const {
  switch (kind_) {
    case Expr::Kind::kColumn:
      return r.Get(row, column_index_);
    case Expr::Kind::kLiteral:
      return literal_;
    case Expr::Kind::kUnary: {
      if (op_ == "-") {
        const Value v = children_[0].Eval(r, row);
        if (ValueType(v) == DataType::kInt64) {
          return Value(-std::get<int64_t>(v));
        }
        return Value(-ValueToDouble(v));
      }
      return Value(static_cast<int64_t>(!children_[0].EvalBool(r, row)));
    }
    case Expr::Kind::kBinary: {
      if (op_ == "AND") {
        return Value(static_cast<int64_t>(children_[0].EvalBool(r, row) &&
                                          children_[1].EvalBool(r, row)));
      }
      if (op_ == "OR") {
        return Value(static_cast<int64_t>(children_[0].EvalBool(r, row) ||
                                          children_[1].EvalBool(r, row)));
      }
      const Value lv = children_[0].Eval(r, row);
      const Value rv = children_[1].Eval(r, row);
      if (op_ == "=" || op_ == "==") {
        return Value(static_cast<int64_t>(ValueEquals(lv, rv)));
      }
      if (op_ == "<>" || op_ == "!=") {
        return Value(static_cast<int64_t>(!ValueEquals(lv, rv)));
      }
      if (op_ == "<") return Value(static_cast<int64_t>(ValueLess(lv, rv)));
      if (op_ == ">") return Value(static_cast<int64_t>(ValueLess(rv, lv)));
      if (op_ == "<=") return Value(static_cast<int64_t>(!ValueLess(rv, lv)));
      if (op_ == ">=") return Value(static_cast<int64_t>(!ValueLess(lv, rv)));
      // Arithmetic.
      if (type_ == DataType::kInt64) {
        const int64_t a = std::get<int64_t>(lv);
        const int64_t b = std::get<int64_t>(rv);
        if (op_ == "+") return Value(a + b);
        if (op_ == "-") return Value(a - b);
        if (op_ == "*") return Value(a * b);
        if (op_ == "%") return Value(b == 0 ? int64_t{0} : a % b);
      }
      const double a = ValueToDouble(lv);
      const double b = ValueToDouble(rv);
      if (op_ == "+") return Value(a + b);
      if (op_ == "-") return Value(a - b);
      if (op_ == "*") return Value(a * b);
      if (op_ == "/") return Value(b == 0.0 ? 0.0 : a / b);
      if (op_ == "%") return Value(b == 0.0 ? 0.0 : std::fmod(a, b));
      RMA_CHECK(false && "unknown binary op at eval");
      return Value(int64_t{0});
    }
    case Expr::Kind::kCall: {
      const double a = children_[0].EvalDouble(r, row);
      if (op_ == "SQRT") return Value(std::sqrt(a));
      if (op_ == "ABS") return Value(std::fabs(a));
      if (op_ == "LN") return Value(std::log(a));
      if (op_ == "EXP") return Value(std::exp(a));
      if (op_ == "POW") return Value(std::pow(a, children_[1].EvalDouble(r, row)));
      RMA_CHECK(false && "unknown function at eval");
      return Value(0.0);
    }
  }
  RMA_CHECK(false && "unreachable kind at eval");
  return Value(int64_t{0});
}

bool BoundExpr::EvalBool(const Relation& r, int64_t row) const {
  const Value v = Eval(r, row);
  if (ValueType(v) == DataType::kString) {
    return !std::get<std::string>(v).empty();
  }
  return ValueToDouble(v) != 0.0;
}

}  // namespace rma::rel
