#ifndef RMA_REL_EXPRESSION_H_
#define RMA_REL_EXPRESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "storage/relation.h"
#include "util/result.h"

namespace rma::rel {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Scalar expression AST shared by the relational operators and the SQL
/// front end: column references, literals, arithmetic/comparison/logic, and
/// a small scalar function library (SQRT, ABS, POW, LN, EXP).
///
/// Expressions are unbound (columns referenced by name); `Bind` resolves
/// them against a schema into an efficiently evaluable form.
class Expr {
 public:
  enum class Kind { kColumn, kLiteral, kBinary, kUnary, kCall };

  /// Column reference by (exact) attribute name.
  static ExprPtr Column(std::string name);
  /// Column reference by position (used by the SQL layer after qualified
  /// name resolution; positions survive joins with duplicate names).
  static ExprPtr ColumnAt(int index) {
    return Column("$" + std::to_string(index));
  }
  /// Constant.
  static ExprPtr Literal(Value v);
  static ExprPtr LiteralInt(int64_t v) { return Literal(Value(v)); }
  static ExprPtr LiteralDouble(double v) { return Literal(Value(v)); }
  static ExprPtr LiteralString(std::string v) {
    return Literal(Value(std::move(v)));
  }
  /// Binary operator: + - * / %  < <= > >= = <>  AND OR.
  static ExprPtr Binary(std::string op, ExprPtr lhs, ExprPtr rhs);
  /// Unary operator: - NOT.
  static ExprPtr Unary(std::string op, ExprPtr operand);
  /// Scalar function call by (case-insensitive) name.
  static ExprPtr Call(std::string fn, std::vector<ExprPtr> args);

  Kind kind() const { return kind_; }
  const std::string& name() const { return name_; }   // column/op/function
  const Value& value() const { return value_; }        // literal
  const std::vector<ExprPtr>& children() const { return children_; }

  std::string ToString() const;

 private:
  Expr(Kind kind, std::string name, Value value, std::vector<ExprPtr> children)
      : kind_(kind),
        name_(std::move(name)),
        value_(std::move(value)),
        children_(std::move(children)) {}

  Kind kind_;
  std::string name_;
  Value value_ = Value(int64_t{0});
  std::vector<ExprPtr> children_;
};

/// An expression compiled against a schema: column indices resolved and the
/// result type inferred. Booleans are int64 0/1.
class BoundExpr {
 public:
  DataType type() const { return type_; }

  /// For bound column references: the resolved position (-1 otherwise).
  int column_index() const { return column_index_; }
  bool is_column() const { return kind_ == Expr::Kind::kColumn; }

  /// Evaluates on row `row` of `r` (which must match the bound schema).
  Value Eval(const Relation& r, int64_t row) const;

  /// Evaluates to a double (numeric expressions on hot-ish paths).
  double EvalDouble(const Relation& r, int64_t row) const {
    return ValueToDouble(Eval(r, row));
  }

  /// True iff the value is numeric non-zero (predicate evaluation).
  bool EvalBool(const Relation& r, int64_t row) const;

 private:
  friend Result<BoundExpr> Bind(const ExprPtr& expr, const Schema& schema);

  Expr::Kind kind_;
  DataType type_ = DataType::kInt64;
  int column_index_ = -1;
  Value literal_ = Value(int64_t{0});
  std::string op_;
  std::vector<BoundExpr> children_;
};

/// Resolves column names and checks operator/function applicability.
Result<BoundExpr> Bind(const ExprPtr& expr, const Schema& schema);

}  // namespace rma::rel

#endif  // RMA_REL_EXPRESSION_H_
